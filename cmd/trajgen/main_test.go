package main

import (
	"path/filepath"
	"testing"

	"mdtask/internal/traj"
)

func TestGenerateEnsemble(t *testing.T) {
	dir := t.TempDir()
	if err := run("ensemble", "small", 2, 0, 1, dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.mdt"))
	if err != nil || len(files) != 2 {
		t.Fatalf("files = %v, %v", files, err)
	}
	tr, err := traj.ReadMDTFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if tr.NAtoms != 3341 || tr.NFrames() != 102 {
		t.Errorf("shape = %d/%d", tr.NAtoms, tr.NFrames())
	}
}

func TestGenerateMembrane(t *testing.T) {
	dir := t.TempDir()
	if err := run("membrane", "", 0, 5000, 2, dir); err != nil {
		t.Fatal(err)
	}
	tr, err := traj.ReadMDTFile(filepath.Join(dir, "membrane-5000.mdt"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NAtoms != 5000 || tr.NFrames() != 1 {
		t.Errorf("shape = %d/%d", tr.NAtoms, tr.NFrames())
	}
}

func TestGenerateErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("bogus", "small", 1, 0, 1, dir); err == nil {
		t.Error("bad kind accepted")
	}
	if err := run("ensemble", "bogus", 1, 0, 1, dir); err == nil {
		t.Error("bad size accepted")
	}
}
