package main

import (
	"path/filepath"
	"testing"

	"mdtask/internal/traj"
)

func TestGenerateEnsemble(t *testing.T) {
	dir := t.TempDir()
	if err := run("ensemble", "small", 2, 0, 0, false, 1, dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.mdt"))
	if err != nil || len(files) != 2 {
		t.Fatalf("files = %v, %v", files, err)
	}
	tr, err := traj.ReadMDTFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if tr.NAtoms != 3341 || tr.NFrames() != 102 {
		t.Errorf("shape = %d/%d", tr.NAtoms, tr.NFrames())
	}
}

func TestGenerateMembrane(t *testing.T) {
	dir := t.TempDir()
	if err := run("membrane", "", 0, 5000, 0, true, 2, dir); err != nil {
		t.Fatal(err)
	}
	tr, err := traj.ReadMDTFile(filepath.Join(dir, "membrane-5000.mdt"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NAtoms != 5000 || tr.NFrames() != 1 {
		t.Errorf("shape = %d/%d", tr.NAtoms, tr.NFrames())
	}
}

func TestGenerateExplicitDimensions(t *testing.T) {
	dir := t.TempDir()
	if err := run("ensemble", "small", 2, 7, 9, true, 1, dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.mdt"))
	if err != nil || len(files) != 2 {
		t.Fatalf("files = %v, %v", files, err)
	}
	tr, err := traj.ReadMDTFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if tr.NAtoms != 7 || tr.NFrames() != 9 {
		t.Errorf("shape = %d/%d, want 7/9", tr.NAtoms, tr.NFrames())
	}
}

func TestGenerateErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("bogus", "small", 1, 0, 0, false, 1, dir); err == nil {
		t.Error("bad kind accepted")
	}
	if err := run("ensemble", "bogus", 1, 0, 0, false, 1, dir); err == nil {
		t.Error("bad size accepted")
	}
	// -frames without an explicit -atoms would inherit the membrane-scale
	// atoms default and write hundreds of MB; it must be rejected.
	if err := run("ensemble", "small", 1, 131072, 8, false, 1, dir); err == nil {
		t.Error("-frames without explicit -atoms accepted")
	}
}
