// Command trajgen generates synthetic MD datasets: trajectory ensembles
// for PSA (as .mdt files) and bilayer membranes for the Leaflet Finder
// (as single-frame .mdt files).
//
// Usage:
//
//	trajgen -kind ensemble -size small -n 8 -out data/
//	trajgen -kind membrane -atoms 131072 -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func main() {
	var (
		kind  = flag.String("kind", "ensemble", "what to generate: ensemble | membrane")
		size  = flag.String("size", "small", "ensemble preset: small | medium | large")
		n     = flag.Int("n", 4, "number of trajectories (ensemble)")
		atoms = flag.Int("atoms", 131072, "atom count (membrane)")
		seed  = flag.Uint64("seed", 42, "generator seed")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := run(*kind, *size, *n, *atoms, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "trajgen:", err)
		os.Exit(1)
	}
}

func run(kind, size string, n, atoms int, seed uint64, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	switch kind {
	case "ensemble":
		var preset synth.EnsemblePreset
		switch size {
		case "small":
			preset = synth.Small
		case "medium":
			preset = synth.Medium
		case "large":
			preset = synth.Large
		default:
			return fmt.Errorf("unknown size %q (want small|medium|large)", size)
		}
		ens := synth.Ensemble(preset, n, seed)
		for _, t := range ens {
			path := filepath.Join(out, t.Name+".mdt")
			if err := traj.WriteMDTFile(path, t, 4); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d atoms, %d frames)\n", path, t.NAtoms, t.NFrames())
		}
		return nil
	case "membrane":
		sys := synth.Bilayer(atoms, seed)
		t := traj.New(fmt.Sprintf("membrane-%d", atoms), len(sys.Coords))
		if err := t.AppendFrame(traj.Frame{Coords: sys.Coords}); err != nil {
			return err
		}
		path := filepath.Join(out, t.Name+".mdt")
		if err := traj.WriteMDTFile(path, t, 4); err != nil {
			return err
		}
		lo, hi := sys.CountLeaflets()
		fmt.Printf("wrote %s (%d atoms: leaflets %d/%d, cutoff %.1f)\n",
			path, len(sys.Coords), lo, hi, synth.BilayerCutoff)
		return nil
	default:
		return fmt.Errorf("unknown kind %q (want ensemble|membrane)", kind)
	}
}
