// Command trajgen generates synthetic MD datasets: trajectory ensembles
// for PSA (as .mdt files) and bilayer membranes for the Leaflet Finder
// (as single-frame .mdt files).
//
// Usage:
//
//	trajgen -kind ensemble -size small -n 8 -out data/
//	trajgen -kind membrane -atoms 131072 -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mdtask/internal/obs"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func main() {
	var (
		kind    = flag.String("kind", "ensemble", "what to generate: ensemble | membrane")
		size    = flag.String("size", "small", "ensemble preset: small | medium | large")
		n       = flag.Int("n", 4, "number of trajectories (ensemble)")
		atoms   = flag.Int("atoms", 131072, "atom count (membrane; overrides the ensemble preset when -frames is also set)")
		frames  = flag.Int("frames", 0, "frames per trajectory (with -atoms, overrides the ensemble preset; 0: preset)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		out     = flag.String("out", ".", "output directory")
		version = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("trajgen", obs.Version())
		return
	}
	atomsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "atoms" {
			atomsSet = true
		}
	})
	if err := run(*kind, *size, *n, *atoms, *frames, atomsSet, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "trajgen:", err)
		os.Exit(1)
	}
}

func run(kind, size string, n, atoms, frames int, atomsSet bool, seed uint64, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	switch kind {
	case "ensemble":
		var ens traj.Ensemble
		if frames > 0 {
			// Explicit dimensions (e.g. ensembles sized to exceed a memory
			// budget for the streaming smoke test) instead of a preset.
			// -atoms must be given explicitly: its flag default is the
			// membrane scale (131072), which would silently make each
			// trajectory hundreds of MB here.
			if !atomsSet {
				return fmt.Errorf("-frames for an ensemble requires an explicit -atoms")
			}
			ens = make(traj.Ensemble, n)
			for i := range ens {
				ens[i] = synth.Walk(fmt.Sprintf("walk-%03d", i), atoms, frames, seed, uint64(i))
			}
		} else {
			var preset synth.EnsemblePreset
			switch size {
			case "small":
				preset = synth.Small
			case "medium":
				preset = synth.Medium
			case "large":
				preset = synth.Large
			default:
				return fmt.Errorf("unknown size %q (want small|medium|large)", size)
			}
			ens = synth.Ensemble(preset, n, seed)
		}
		for _, t := range ens {
			path := filepath.Join(out, t.Name+".mdt")
			if err := traj.WriteMDTFile(path, t, 4); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d atoms, %d frames)\n", path, t.NAtoms, t.NFrames())
		}
		return nil
	case "membrane":
		sys := synth.Bilayer(atoms, seed)
		t := traj.New(fmt.Sprintf("membrane-%d", atoms), len(sys.Coords))
		if err := t.AppendFrame(traj.Frame{Coords: sys.Coords}); err != nil {
			return err
		}
		path := filepath.Join(out, t.Name+".mdt")
		if err := traj.WriteMDTFile(path, t, 4); err != nil {
			return err
		}
		lo, hi := sys.CountLeaflets()
		fmt.Printf("wrote %s (%d atoms: leaflets %d/%d, cutoff %.1f)\n",
			path, len(sys.Coords), lo, hi, synth.BilayerCutoff)
		return nil
	default:
		return fmt.Errorf("unknown kind %q (want ensemble|membrane)", kind)
	}
}
