// Command leaflet runs the Leaflet Finder over a membrane snapshot (a
// single-frame .mdt file, or a generated bilayer) on a selectable engine
// and architectural approach, reporting the identified leaflets.
//
// Usage:
//
//	leaflet -atoms 65536 -engine spark -approach tree
//	leaflet -in membrane.mdt -engine mpi -approach 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mdtask/internal/core"
	"mdtask/internal/leaflet"
	"mdtask/internal/linalg"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func main() {
	var (
		in       = flag.String("in", "", "single-frame .mdt membrane file (default: generate)")
		atoms    = flag.Int("atoms", 65536, "atom count when generating a membrane")
		seed     = flag.Uint64("seed", 42, "generator seed")
		engine   = flag.String("engine", "spark", "engine: mpi | spark | dask | pilot")
		approach = flag.String("approach", "tree", "approach: 1|broadcast, 2|task2d, 3|parallel-cc, 4|tree")
		cutoff   = flag.Float64("cutoff", synth.BilayerCutoff, "neighbor cutoff (Å)")
		parallel = flag.Int("parallel", 0, "worker/rank count (0: automatic)")
		tasks    = flag.Int("tasks", 1024, "map task count")
	)
	flag.Parse()
	if err := run(*in, *atoms, *seed, *engine, *approach, *cutoff, *parallel, *tasks); err != nil {
		fmt.Fprintln(os.Stderr, "leaflet:", err)
		os.Exit(1)
	}
}

func parseApproach(s string) (leaflet.Approach, error) {
	switch s {
	case "1", "broadcast":
		return leaflet.Broadcast1D, nil
	case "2", "task2d":
		return leaflet.TaskAPI2D, nil
	case "3", "parallel-cc":
		return leaflet.ParallelCC, nil
	case "4", "tree":
		return leaflet.TreeSearch, nil
	default:
		return 0, fmt.Errorf("unknown approach %q", s)
	}
}

func parseEngine(s string) (core.Engine, error) {
	switch s {
	case "mpi":
		return core.EngineMPI, nil
	case "spark":
		return core.EngineSpark, nil
	case "dask":
		return core.EngineDask, nil
	case "pilot":
		return core.EnginePilot, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want mpi|spark|dask|pilot)", s)
	}
}

func run(in string, atoms int, seed uint64, engineName, approachName string,
	cutoff float64, parallel, tasks int) error {
	eng, err := parseEngine(engineName)
	if err != nil {
		return err
	}
	app, err := parseApproach(approachName)
	if err != nil {
		return err
	}
	var coords []linalg.Vec3
	if in != "" {
		t, err := traj.ReadMDTFile(in)
		if err != nil {
			return err
		}
		if t.NFrames() == 0 {
			return fmt.Errorf("%s contains no frames", in)
		}
		coords = t.FrameCoords(0)
		fmt.Printf("loaded %s: %d atoms\n", in, len(coords))
	} else {
		sys := synth.Bilayer(atoms, seed)
		coords = sys.Coords
		fmt.Printf("generated bilayer: %d atoms, cutoff %.1f Å\n", len(coords), cutoff)
	}

	cfg := core.Config{Engine: eng, Parallelism: parallel, Tasks: tasks}
	start := time.Now()
	res, err := core.LeafletFinder(cfg, coords, cutoff, app)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("engine=%s approach=%q elapsed=%s\n", eng, app, elapsed.Round(time.Millisecond))
	fmt.Printf("tasks=%d edges=%d broadcast=%dB shuffle=%dB\n",
		res.Stats.Tasks, res.Stats.Edges, res.Stats.BroadcastBytes, res.Stats.ShuffleBytes)
	fmt.Printf("components: %d\n", len(res.Components))
	for i, c := range res.Components {
		if i >= 4 {
			fmt.Printf("  ... and %d more\n", len(res.Components)-4)
			break
		}
		fmt.Printf("  leaflet %d: %d atoms (first atom %d)\n", i, len(c), c[0])
	}
	return nil
}
