// Command leaflet runs the Leaflet Finder over a membrane snapshot (a
// single-frame .mdt file, or a generated bilayer) on a selectable engine
// and architectural approach, reporting the identified leaflets. The run
// is dispatched through the jobs.Registry — the same runners
// cmd/mdserver serves over HTTP.
//
// Usage:
//
//	leaflet -atoms 65536 -engine spark -approach tree
//	leaflet -in membrane.mdt -engine mpi -approach 3
//	leaflet -atoms 4096 -engine serial
//	leaflet -atoms 4096 -engine fleet      # loopback coordinator/worker fleet
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mdtask/internal/jobs"
	"mdtask/internal/obs"
	"mdtask/internal/synth"
)

func main() {
	var (
		in       = flag.String("in", "", "single-frame .mdt membrane file (default: generate)")
		atoms    = flag.Int("atoms", 65536, "atom count when generating a membrane")
		seed     = flag.Uint64("seed", 42, "generator seed")
		engine   = flag.String("engine", "spark", "engine: serial | mpi | spark | dask | pilot | fleet")
		approach = flag.String("approach", "tree", "approach: 1|broadcast, 2|task2d, 3|parallel-cc, 4|tree")
		cutoff   = flag.Float64("cutoff", synth.BilayerCutoff, "neighbor cutoff (Å)")
		parallel = flag.Int("parallel", 0, "worker/rank count (0: automatic)")
		tasks    = flag.Int("tasks", 1024, "map task count")
		version  = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("leaflet", obs.Version())
		return
	}
	// Reject unknown selector values at flag-parse time, before any input
	// is loaded or a run starts; the errors list the valid values.
	if err := validateFlags(*engine, *approach); err != nil {
		fmt.Fprintln(os.Stderr, "leaflet:", err)
		os.Exit(2)
	}
	if err := run(*in, *atoms, *seed, *engine, *approach, *cutoff, *parallel, *tasks); err != nil {
		fmt.Fprintln(os.Stderr, "leaflet:", err)
		os.Exit(1)
	}
}

// validateFlags checks the enumerated flag values up front.
func validateFlags(engineName, approachName string) error {
	if _, err := jobs.ParseEngine(engineName); err != nil {
		return fmt.Errorf("-engine: %w", err)
	}
	if _, _, err := jobs.ParseApproach(approachName); err != nil {
		return fmt.Errorf("-approach: %w", err)
	}
	return nil
}

func run(in string, atoms int, seed uint64, engineName, approachName string,
	cutoff float64, parallel, tasks int) error {
	spec := jobs.Spec{
		Analysis:    jobs.AnalysisLeaflet,
		Engine:      engineName,
		Parallelism: parallel,
		Tasks:       tasks,
		Approach:    approachName,
		Cutoff:      cutoff,
	}
	if in != "" {
		spec.Path = in
	} else {
		spec.Synth = &jobs.SynthSpec{Atoms: atoms, Seed: seed}
	}
	norm, input, err := jobs.Resolve(spec)
	if err != nil {
		return err
	}
	if in != "" {
		fmt.Printf("loaded %s: %d atoms\n", in, len(input.Coords))
	} else {
		fmt.Printf("generated bilayer: %d atoms, cutoff %.1f Å\n", len(input.Coords), cutoff)
	}
	start := time.Now()
	out, _, err := jobs.Run(jobs.DefaultRegistry(), norm, input)
	if err != nil {
		return err
	}
	res := out.Leaflet
	fmt.Printf("engine=%s approach=%q elapsed=%s\n", engineName, approachName, time.Since(start).Round(time.Millisecond))
	fmt.Printf("tasks=%d edges=%d broadcast=%dB shuffle=%dB\n",
		res.Stats.Tasks, res.Stats.Edges, res.Stats.BroadcastBytes, res.Stats.ShuffleBytes)
	fmt.Printf("components: %d\n", len(res.Components))
	for i, c := range res.Components {
		if i >= 4 {
			fmt.Printf("  ... and %d more\n", len(res.Components)-4)
			break
		}
		fmt.Printf("  leaflet %d: %d atoms (first atom %d)\n", i, len(c), c[0])
	}
	return nil
}
