package main

import (
	"path/filepath"
	"strings"
	"testing"

	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func TestRunGenerated(t *testing.T) {
	if err := run("", 2000, 1, "spark", "tree", synth.BilayerCutoff, 2, 16); err != nil {
		t.Fatal(err)
	}
}

func TestRunSerialEngine(t *testing.T) {
	// The registry adds a serial engine to the CLI's historical four.
	if err := run("", 2000, 1, "serial", "tree", synth.BilayerCutoff, 1, 16); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	sys := synth.Bilayer(1000, 2)
	tr := traj.New("membrane", len(sys.Coords))
	if err := tr.AppendFrame(traj.Frame{Coords: sys.Coords}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.mdt")
	if err := traj.WriteMDTFile(path, tr, 8); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 0, 0, "mpi", "3", synth.BilayerCutoff, 2, 8); err != nil {
		t.Fatal(err)
	}
}

// Selector flags are rejected up front, before any input is read, with
// errors that list the valid values.
func TestValidateFlags(t *testing.T) {
	if err := validateFlags("spark", "tree"); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	if err := validateFlags("hadoop", "tree"); err == nil {
		t.Error("bad engine passed validation")
	} else if want := "serial|spark|dask|mpi|pilot"; !strings.Contains(err.Error(), want) {
		t.Errorf("engine error %q does not list valid values %q", err, want)
	}
	if err := validateFlags("spark", "bogus"); err == nil {
		t.Error("bad approach passed validation")
	} else if want := "broadcast|task2d|parallel-cc|tree"; !strings.Contains(err.Error(), want) {
		t.Errorf("approach error %q does not list valid values %q", err, want)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 100, 1, "bogus", "tree", 1, 1, 4); err == nil {
		t.Error("bad engine accepted")
	}
	if err := run("", 100, 1, "spark", "bogus", 1, 1, 4); err == nil {
		t.Error("bad approach accepted")
	}
	if err := run("/nonexistent/file.mdt", 0, 0, "spark", "tree", 1, 1, 4); err == nil {
		t.Error("missing file accepted")
	}
}
