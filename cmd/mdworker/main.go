// Command mdworker is the fleet execution agent: it registers with a
// coordinator (cmd/mdserver), heartbeats, leases PSA/Leaflet work
// units over the pull-based HTTP protocol, runs them with the shared
// in-process kernels, and posts results back. Start as many as the
// hardware allows — on one machine or many — and kill any of them
// mid-job: the coordinator requeues their leased units, so no block is
// ever lost.
//
// Usage:
//
//	mdworker -coordinator http://127.0.0.1:8077 -parallel 2
//
// SIGINT/SIGTERM stop leasing, let in-flight units finish posting, and
// deregister gracefully; a hard kill is detected by the coordinator's
// heartbeat failure detector instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdtask/internal/fleet"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://127.0.0.1:8077", "coordinator base URL")
		name        = flag.String("name", defaultName(), "worker display name")
		parallel    = flag.Int("parallel", 1, "concurrent work-unit executors")
		wait        = flag.Duration("register-wait", 30*time.Second, "how long to retry the initial registration")
	)
	flag.Parse()
	if err := run(*coordinator, *name, *parallel, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "mdworker:", err)
		os.Exit(1)
	}
}

// defaultName derives a worker name from the host and pid.
func defaultName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func run(coordinator, name string, parallel int, wait time.Duration) error {
	w, err := fleet.StartWorker(fleet.WorkerOptions{
		Coordinator:  coordinator,
		Name:         name,
		Parallel:     parallel,
		RegisterWait: wait,
		Logf:         log.Printf,
	})
	if err != nil {
		return err
	}
	log.Printf("mdworker %s (%s) pulling from %s with %d executor(s)", w.ID(), name, coordinator, parallel)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("mdworker %s draining (units done: %d)", w.ID(), w.UnitsDone.Load())
	w.Close()
	return nil
}
