// Command mdworker is the fleet execution agent: it registers with a
// coordinator (cmd/mdserver), heartbeats, leases PSA/Leaflet work
// units over the pull-based HTTP protocol, runs them with the shared
// in-process kernels, and posts results back. Start as many as the
// hardware allows — on one machine or many — and kill any of them
// mid-job: the coordinator requeues their leased units, so no block is
// ever lost.
//
// Usage:
//
//	mdworker -coordinator http://127.0.0.1:8077 -parallel 2
//
// SIGINT/SIGTERM stop leasing, let in-flight units finish posting, and
// deregister gracefully; a hard kill is detected by the coordinator's
// heartbeat failure detector instead.
//
// Observability: -metrics-addr serves GET /metrics (Prometheus text)
// with per-unit kernel and lease round-trip histograms, -debug-addr
// serves net/http/pprof, and each executed unit's spans are shipped to
// the coordinator inside its result, parented under the lease that
// granted it — one trace covers both processes.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served at -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdtask/internal/faultinject"
	"mdtask/internal/fleet"
	"mdtask/internal/obs"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://127.0.0.1:8077", "coordinator base URL")
		name        = flag.String("name", defaultName(), "worker display name")
		parallel    = flag.Int("parallel", 1, "concurrent work-unit executors")
		wait        = flag.Duration("register-wait", 30*time.Second, "how long to retry the initial registration")

		ctlTimeout  = flag.Duration("control-timeout", 15*time.Second, "timeout for control-plane calls (register, heartbeat, lease, result post)")
		xferTimeout = flag.Duration("transfer-timeout", 2*time.Minute, "timeout for bulk input/window downloads")

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text) on this address (empty: disabled)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty: disabled)")
		logFormat   = flag.String("log-format", "text", "structured log format: text|json")
		version     = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("mdworker", obs.Version())
		return
	}
	if err := faultinject.ActivateFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "mdworker:", err)
		os.Exit(1)
	}
	opts := fleet.WorkerOptions{
		Coordinator:     *coordinator,
		Name:            *name,
		Parallel:        *parallel,
		RegisterWait:    *wait,
		ControlTimeout:  *ctlTimeout,
		TransferTimeout: *xferTimeout,
		Logf:            log.Printf,
	}
	if err := run(opts, *metricsAddr, *debugAddr, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "mdworker:", err)
		os.Exit(1)
	}
}

// defaultName derives a worker name from the host and pid.
func defaultName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// sideServer wraps a side-listener handler (metrics, pprof) in a
// configured http.Server. The ReadHeaderTimeout matters even on these
// auxiliary ports: a bare http.Serve lets any client hold a connection
// open indefinitely without sending a request line, pinning a goroutine
// per idle connection — the same slowloris hole mdserver and
// fleet.Local already close on their main listeners.
func sideServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
}

func run(opts fleet.WorkerOptions, metricsAddr, debugAddr, logFormat string) error {
	ob := obs.New("mdworker")
	obs.RegisterRuntimeMetrics(ob.Metrics)
	obs.RegisterBuildInfo(ob.Metrics, "mdworker")
	logger := obs.NewLogger(os.Stderr, logFormat)
	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return err
		}
		defer mln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", ob.Metrics.Handler())
		srv := sideServer(obs.Middleware(mux, ob, logger, "mdworker"))
		go func() { _ = srv.Serve(mln) }()
		log.Printf("mdworker metrics on %s/metrics", mln.Addr())
	}
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		dsrv := sideServer(http.DefaultServeMux)
		go func() { _ = dsrv.Serve(dln) }()
		log.Printf("mdworker pprof on %s/debug/pprof/", dln.Addr())
	}
	opts.Obs = ob
	w, err := fleet.StartWorker(opts)
	if err != nil {
		return err
	}
	log.Printf("mdworker %s (%s) pulling from %s with %d executor(s)", w.ID(), opts.Name, opts.Coordinator, opts.Parallel)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("mdworker %s draining (units done: %d)", w.ID(), w.UnitsDone.Load())
	w.Close()
	return nil
}
