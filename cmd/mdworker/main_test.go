package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdtask/internal/fleet"
	"mdtask/internal/psa"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

// TestWorkerDrainsCoordinator points a worker built exactly as main
// builds it at a coordinator and checks it completes a PSA job.
func TestWorkerDrainsCoordinator(t *testing.T) {
	c := fleet.NewCoordinator(fleet.LocalOptions())
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	w, err := fleet.StartWorker(fleet.WorkerOptions{
		Coordinator:  ts.URL,
		Name:         defaultName(),
		Parallel:     2,
		RegisterWait: 5 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ens := make(traj.Ensemble, 4)
	for i := range ens {
		ens[i] = synth.Walk("t", 6, 5, 8, uint64(i))
	}
	job, err := c.SubmitPSA(ens, 2, psa.Opts{Symmetric: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job)
	if err := job.Wait(nil); err != nil {
		t.Fatal(err)
	}
	if w.UnitsDone.Load() == 0 {
		t.Error("worker completed no units")
	}
}

// TestRunRegisterTimeout checks run fails fast when no coordinator is
// listening.
func TestRunRegisterTimeout(t *testing.T) {
	err := run(fleet.WorkerOptions{
		Coordinator:  "http://127.0.0.1:1",
		Name:         "w",
		Parallel:     1,
		RegisterWait: 50 * time.Millisecond,
	}, "", "", "text")
	if err == nil || !strings.Contains(err.Error(), "registering") {
		t.Fatalf("got %v, want registration error", err)
	}
}

// TestSideServerConfigured is the regression test for the bare
// http.Serve the metrics and debug listeners used to run with: both
// must go through a configured http.Server with a ReadHeaderTimeout,
// matching mdserver and fleet.Local, so an idle connection that never
// sends a request line cannot pin a goroutine forever.
func TestSideServerConfigured(t *testing.T) {
	called := false
	srv := sideServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = true
		w.WriteHeader(http.StatusNoContent)
	}))
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatalf("sideServer ReadHeaderTimeout = %v, want > 0", srv.ReadHeaderTimeout)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent || !called {
		t.Fatalf("sideServer did not serve the wrapped handler (status %d, called %v)", resp.StatusCode, called)
	}
}

// TestDefaultName checks the derived worker name carries the pid.
func TestDefaultName(t *testing.T) {
	if name := defaultName(); !strings.Contains(name, "-") {
		t.Errorf("defaultName() = %q", name)
	}
}
