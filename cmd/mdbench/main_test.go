package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run("", "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("not-an-exp", "", false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOneExperimentWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs calibration")
	}
	dir := t.TempDir()
	// tab3 is pure table data (no heavy modeling), but run still
	// calibrates once; tolerated for the non-short suite.
	if err := run("tab3", dir, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "tab3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}
