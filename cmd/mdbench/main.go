// Command mdbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment calibrates per-task costs from the
// repository's real kernels, then sweeps nodes/cores through the cluster
// performance model.
//
// Usage:
//
//	mdbench                 # run everything
//	mdbench -exp fig7       # one experiment
//	mdbench -exp fig2,fig3  # several
//	mdbench -csv out/       # also write CSV files per experiment
//	mdbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mdtask/internal/bench"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		csvDir  = flag.String("csv", "", "directory to write per-experiment CSV files")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if err := run(*expFlag, *csvDir, *list); err != nil {
		fmt.Fprintln(os.Stderr, "mdbench:", err)
		os.Exit(1)
	}
}

func run(expFlag, csvDir string, list bool) error {
	if list {
		for _, e := range bench.Registry {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var exps []bench.Experiment
	if expFlag == "" {
		exps = bench.Registry
	} else {
		for _, id := range strings.Split(expFlag, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}
	fmt.Fprintln(os.Stderr, "calibrating kernel costs on this machine...")
	cal := bench.Calibrate()
	fmt.Fprintf(os.Stderr, "calibration: hausdorff small pair %.4fs, cdist pair %.2gs, edges/atom %.2f\n\n",
		cal.HausdorffPair["small"], cal.CdistPerPair, cal.EdgesPerAtom)

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, e := range exps {
		t := e.Run(cal)
		if err := t.WriteText(os.Stdout); err != nil {
			return err
		}
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, t.ID+".csv"))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
