package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdtask/internal/jobs"
	"mdtask/internal/loadgen"
	"mdtask/internal/obs"
)

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run(config{list: true}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, sc := range loadgen.Scenarios() {
		if !strings.Contains(out.String(), sc.Name) {
			t.Errorf("-list output missing %q", sc.Name)
		}
	}
}

func TestUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	err := run(config{server: "http://127.0.0.1:1", scenario: "bogus"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v, want unknown scenario", err)
	}
}

// TestRunWritesReports drives one real scenario against an in-process
// scheduler and checks the table, JSON, and CSV outputs land.
func TestRunWritesReports(t *testing.T) {
	ob := obs.New("mdload-test")
	obs.RegisterRuntimeMetrics(ob.Metrics)
	sched := jobs.NewScheduler(jobs.DefaultRegistry(), jobs.Options{Workers: 2, QueueDepth: 16, Obs: ob})
	defer sched.Close()
	mux := http.NewServeMux()
	mux.Handle("/metrics", ob.Metrics.Handler())
	mux.Handle("/", jobs.NewServer(sched))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_load.json")
	csvPath := filepath.Join(dir, "load.csv")
	var out bytes.Buffer
	err := run(config{
		server: srv.URL, scenario: "resubmit-storm", jobs: 3, conc: 2, seed: 11,
		jsonPath: jsonPath, csvPath: csvPath, gate: true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "resubmit-storm") || !strings.Contains(out.String(), "invariants:") {
		t.Fatalf("table output missing sections:\n%s", out.String())
	}

	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("reading %s: %v", jsonPath, err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("BENCH_load.json does not parse: %v", err)
	}
	if rep.Benchmark != "mdserver-load" || !rep.OK || len(rep.Scenarios) != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}

	csvBlob, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("reading %s: %v", csvPath, err)
	}
	if !strings.HasPrefix(string(csvBlob), "scenario,endpoint,") {
		t.Fatalf("csv header missing: %q", string(csvBlob)[:40])
	}
}
