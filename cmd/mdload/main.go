// Command mdload drives the production load harness (internal/loadgen)
// against a live mdserver: named Savina-style scenarios — cache-hot
// resubmit storms, delta-append storms, fleet fan-out across all four
// Hausdorff methods, cancel storms, streamed-vs-in-memory mixes, queue
// overload with a 413 probe, and chaos against MDTASK_FAULTS-armed
// workers — with per-endpoint throughput and latency percentiles
// reported as a table, CSV, and BENCH_load.json.
//
// The -gate mode exits non-zero when any deterministic invariant fails
// (lost jobs, counter mismatches, missing Retry-After, WAL skips,
// goroutine leaks); latency is recorded but never gates.
//
// Usage:
//
//	mdload -server http://127.0.0.1:8077                  # full suite
//	mdload -server ... -scenario overload,cancel-storm    # a subset
//	mdload -server ... -gate -json BENCH_load.json        # CI gate
//	mdload -list                                          # scenario ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mdtask/internal/loadgen"
)

func main() {
	var (
		server     = flag.String("server", "http://127.0.0.1:8077", "base URL of the live mdserver")
		scenario   = flag.String("scenario", "all", "comma-separated scenario names (or 'all')")
		jobsN      = flag.Int("jobs", 24, "submission count every scenario scales from")
		conc       = flag.Int("concurrency", 8, "closed-loop client count")
		warmup     = flag.Duration("warmup", 0, "unrecorded warmup before the first scenario")
		duration   = flag.Duration("duration", 0, "cap on each scenario's storm phase (0: run the full job count)")
		seed       = flag.Uint64("seed", 1, "deterministic seed for every generated job spec")
		chaos      = flag.Bool("chaos", false, "require fault evidence from the chaos scenario (workers must run with MDTASK_FAULTS)")
		expectShed = flag.Bool("expect-shed", false, "require the overload scenario to provoke 429s (set when the queue is sized below concurrency)")
		reqWorkers = flag.Bool("require-workers", false, "fail fleet scenarios instead of skipping when no workers are registered")
		oversized  = flag.Int64("oversized-bytes", 2<<20, "size of the 413 probe body")
		jsonPath   = flag.String("json", "", "write the full report as JSON (e.g. BENCH_load.json)")
		csvPath    = flag.String("csv", "", "write per-endpoint latency rows as CSV")
		gate       = flag.Bool("gate", false, "exit non-zero when any invariant fails")
		list       = flag.Bool("list", false, "list scenario names and exit")
	)
	flag.Parse()
	if err := run(config{
		server: *server, scenario: *scenario, jobs: *jobsN, conc: *conc,
		warmup: *warmup, duration: *duration, seed: *seed, chaos: *chaos,
		expectShed: *expectShed, reqWorkers: *reqWorkers, oversized: *oversized,
		jsonPath: *jsonPath, csvPath: *csvPath, gate: *gate, list: *list,
	}, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdload:", err)
		os.Exit(1)
	}
}

type config struct {
	server, scenario  string
	jobs, conc        int
	warmup, duration  time.Duration
	seed              uint64
	chaos, expectShed bool
	reqWorkers, gate  bool
	oversized         int64
	jsonPath, csvPath string
	list              bool
}

// errGate marks an invariant failure so main exits non-zero after the
// report (table, JSON, CSV) has already been written.
var errGate = fmt.Errorf("invariant failures (see report above)")

func run(c config, stdout io.Writer) error {
	if c.list {
		for _, sc := range loadgen.Scenarios() {
			fmt.Fprintf(stdout, "%-16s %s\n", sc.Name, sc.Description)
		}
		return nil
	}
	var names []string
	for _, n := range strings.Split(c.scenario, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	rep, err := loadgen.Run(loadgen.Config{
		Server:         c.server,
		Jobs:           c.jobs,
		Concurrency:    c.conc,
		Warmup:         c.warmup,
		Duration:       c.duration,
		Seed:           c.seed,
		Chaos:          c.chaos,
		ExpectShedding: c.expectShed,
		RequireWorkers: c.reqWorkers,
		OversizedBytes: c.oversized,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "mdload: "+format+"\n", args...)
		},
	}, names)
	if err != nil {
		return err
	}
	loadgen.WriteTable(stdout, rep)
	if c.jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(c.jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", c.jsonPath)
	}
	if c.csvPath != "" {
		f, err := os.Create(c.csvPath)
		if err != nil {
			return err
		}
		if err := loadgen.WriteCSV(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", c.csvPath)
	}
	if c.gate && !rep.OK {
		return errGate
	}
	return nil
}
