// Command psa runs Path Similarity Analysis (all-pairs Hausdorff
// distances) over a directory of .mdt trajectories on a selectable
// task-parallel engine and prints the distance matrix. The run is
// dispatched through the jobs.Registry — the same runners cmd/mdserver
// serves over HTTP.
//
// Usage:
//
//	psa -in data/ -engine dask -parallel 8 -method pruned
//	psa -in data/ -engine serial           # single-goroutine reference
//	psa -in data/ -engine mpi -sym=false   # paper-faithful full N×N schedule
//	psa -in data/ -engine fleet -parallel 4  # loopback coordinator/worker fleet
//	psa -in data/ -max-frames 256          # out-of-core: stream 256-frame windows
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mdtask/internal/jobs"
	"mdtask/internal/obs"
	"mdtask/internal/psa"
)

func main() {
	var (
		in       = flag.String("in", ".", "directory of .mdt trajectory files")
		engine   = flag.String("engine", "dask", "engine: serial | mpi | spark | dask | pilot | fleet")
		parallel = flag.Int("parallel", 0, "worker/rank count (0: automatic)")
		method   = flag.String("method", "naive", "hausdorff method: naive | early-break | pruned | indexed")
		tasks    = flag.Int("tasks", 0, "task count (0: one per worker)")
		clusters = flag.Int("clusters", 0, "also cluster trajectories into k groups (0: off)")
		sym      = flag.Bool("sym", true, "exploit H(A,B)=H(B,A): schedule only diagonal+upper blocks (-sym=false: paper-faithful full matrix)")
		maxFr    = flag.Int("max-frames", 0, "stream trajectories as windows of at most this many frames (out-of-core; 0: fully in memory)")
		version  = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("psa", obs.Version())
		return
	}
	// Reject unknown selector values at flag-parse time, before any input
	// is loaded or a run starts; the errors list the valid values.
	if err := validateFlags(*engine, *method); err != nil {
		fmt.Fprintln(os.Stderr, "psa:", err)
		os.Exit(2)
	}
	if err := run(*in, *engine, *parallel, *method, *tasks, *clusters, *sym, *maxFr); err != nil {
		fmt.Fprintln(os.Stderr, "psa:", err)
		os.Exit(1)
	}
}

// validateFlags checks the enumerated flag values up front.
func validateFlags(engineName, methodName string) error {
	if _, err := jobs.ParseEngine(engineName); err != nil {
		return fmt.Errorf("-engine: %w", err)
	}
	if _, err := jobs.ParseMethod(methodName); err != nil {
		return fmt.Errorf("-method: %w", err)
	}
	return nil
}

func run(in, engineName string, parallel int, methodName string, tasks, clusters int, sym bool, maxFrames int) error {
	spec := jobs.Spec{
		Analysis:          jobs.AnalysisPSA,
		Engine:            engineName,
		Parallelism:       parallel,
		Tasks:             tasks,
		Method:            methodName,
		FullMatrix:        !sym,
		MaxResidentFrames: maxFrames,
		Path:              in,
	}
	norm, input, err := jobs.Resolve(spec)
	if err != nil {
		return err
	}
	refs := input.Refs
	mode := "loaded"
	if input.Ens == nil {
		mode = "streaming"
	}
	fmt.Printf("%s %d trajectories (%d atoms, %d frames each)\n",
		mode, len(refs), refs[0].NAtoms(), refs[0].NFrames())
	start := time.Now()
	res, metrics, err := jobs.Run(jobs.DefaultRegistry(), norm, input)
	if err != nil {
		return err
	}
	mat := res.Matrix
	schedule := "symmetric"
	if !sym {
		schedule = "full"
	}
	fmt.Printf("engine=%s method=%s schedule=%s tasks=%d elapsed=%s\n",
		engineName, methodName, schedule, metrics.Tasks, time.Since(start).Round(time.Millisecond))
	fmt.Printf("kernel frame pairs: evaluated=%d pruned=%d abandoned=%d\n",
		metrics.PairsEvaluated, metrics.PairsPruned, metrics.PairsAbandoned)
	if metrics.NodesVisited+metrics.NodesPruned > 0 {
		fmt.Printf("ball-tree nodes: visited=%d pruned=%d\n",
			metrics.NodesVisited, metrics.NodesPruned)
	}
	if maxFrames > 0 {
		fmt.Printf("streaming: window=%d frames, peak resident=%d frames, bytes streamed=%d\n",
			maxFrames, metrics.PeakResidentFrames, metrics.BytesStreamed)
	}
	for i := 0; i < mat.N; i++ {
		for j := 0; j < mat.N; j++ {
			fmt.Printf("%8.3f", mat.At(i, j))
		}
		fmt.Println()
	}
	if clusters > 0 {
		dendro, err := mat.Cluster(psa.AverageLinkage)
		if err != nil {
			return err
		}
		labels, err := dendro.CutK(clusters)
		if err != nil {
			return err
		}
		fmt.Printf("clusters (k=%d, average linkage):\n", clusters)
		for gi, group := range psa.Clusters(labels) {
			fmt.Printf("  cluster %d:", gi)
			for _, ix := range group {
				fmt.Printf(" %s", refs[ix].Name())
			}
			fmt.Println()
		}
	}
	return nil
}
