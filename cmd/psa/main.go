// Command psa runs Path Similarity Analysis (all-pairs Hausdorff
// distances) over a directory of .mdt trajectories on a selectable
// task-parallel engine and prints the distance matrix.
//
// Usage:
//
//	psa -in data/ -engine dask -parallel 8 -method early-break
//	psa -in data/ -engine mpi -sym=false   # paper-faithful full N×N schedule
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mdtask/internal/core"
	"mdtask/internal/hausdorff"
	"mdtask/internal/psa"
	"mdtask/internal/traj"
)

func main() {
	var (
		in       = flag.String("in", ".", "directory of .mdt trajectory files")
		engine   = flag.String("engine", "dask", "engine: mpi | spark | dask | pilot")
		parallel = flag.Int("parallel", 0, "worker/rank count (0: automatic)")
		method   = flag.String("method", "naive", "hausdorff method: naive | early-break")
		tasks    = flag.Int("tasks", 0, "task count (0: one per worker)")
		clusters = flag.Int("clusters", 0, "also cluster trajectories into k groups (0: off)")
		sym      = flag.Bool("sym", true, "exploit H(A,B)=H(B,A): schedule only diagonal+upper blocks (-sym=false: paper-faithful full matrix)")
	)
	flag.Parse()
	if err := run(*in, *engine, *parallel, *method, *tasks, *clusters, *sym); err != nil {
		fmt.Fprintln(os.Stderr, "psa:", err)
		os.Exit(1)
	}
}

func parseEngine(s string) (core.Engine, error) {
	switch s {
	case "mpi":
		return core.EngineMPI, nil
	case "spark":
		return core.EngineSpark, nil
	case "dask":
		return core.EngineDask, nil
	case "pilot":
		return core.EnginePilot, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want mpi|spark|dask|pilot)", s)
	}
}

func run(in, engineName string, parallel int, methodName string, tasks, clusters int, sym bool) error {
	eng, err := parseEngine(engineName)
	if err != nil {
		return err
	}
	var m hausdorff.Method
	switch methodName {
	case "naive":
		m = hausdorff.Naive
	case "early-break":
		m = hausdorff.EarlyBreak
	default:
		return fmt.Errorf("unknown method %q (want naive|early-break)", methodName)
	}
	paths, err := filepath.Glob(filepath.Join(in, "*.mdt"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .mdt files in %s (generate some with trajgen)", in)
	}
	sort.Strings(paths)
	var ens traj.Ensemble
	for _, p := range paths {
		t, err := traj.ReadMDTFile(p)
		if err != nil {
			return err
		}
		ens = append(ens, t)
	}
	fmt.Printf("loaded %d trajectories (%d atoms, %d frames each)\n",
		len(ens), ens[0].NAtoms, ens[0].NFrames())

	cfg := core.Config{Engine: eng, Parallelism: parallel, Tasks: tasks, FullMatrix: !sym}
	start := time.Now()
	mat, err := core.PSA(cfg, ens, m)
	if err != nil {
		return err
	}
	schedule := "symmetric"
	if !sym {
		schedule = "full"
	}
	fmt.Printf("engine=%s method=%s schedule=%s elapsed=%s\n",
		eng, m, schedule, time.Since(start).Round(time.Millisecond))
	for i := 0; i < mat.N; i++ {
		for j := 0; j < mat.N; j++ {
			fmt.Printf("%8.3f", mat.At(i, j))
		}
		fmt.Println()
	}
	if clusters > 0 {
		dendro, err := mat.Cluster(psa.AverageLinkage)
		if err != nil {
			return err
		}
		labels, err := dendro.CutK(clusters)
		if err != nil {
			return err
		}
		fmt.Printf("clusters (k=%d, average linkage):\n", clusters)
		for gi, group := range psa.Clusters(labels) {
			fmt.Printf("  cluster %d:", gi)
			for _, ix := range group {
				fmt.Printf(" %s", ens[ix].Name)
			}
			fmt.Println()
		}
	}
	return nil
}
