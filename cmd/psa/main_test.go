package main

import (
	"path/filepath"
	"strings"
	"testing"

	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func writeEnsemble(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		tr := synth.Walk("t", 10, 5, 3, uint64(i))
		if err := traj.WriteMDTFile(filepath.Join(dir, tr.Name+string(rune('a'+i))+".mdt"), tr, 8); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunEndToEnd(t *testing.T) {
	dir := writeEnsemble(t)
	if err := run(dir, "spark", 2, "early-break", 0, 2, true, 0); err != nil {
		t.Fatal(err)
	}
	// Paper-faithful full-matrix mode stays available via -sym=false.
	if err := run(dir, "spark", 2, "early-break", 0, 2, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSerialEngine(t *testing.T) {
	// The registry adds a serial engine to the CLI's historical four.
	if err := run(writeEnsemble(t), "serial", 1, "naive", 0, 0, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunPrunedMethod(t *testing.T) {
	if err := run(writeEnsemble(t), "dask", 2, "pruned", 0, 0, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunIndexedMethod(t *testing.T) {
	dir := writeEnsemble(t)
	if err := run(dir, "dask", 2, "indexed", 0, 0, true, 0); err != nil {
		t.Fatal(err)
	}
	// Streamed indexed: window-local ball trees over 2-frame windows.
	if err := run(dir, "serial", 1, "indexed", 0, 0, true, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunStreamed(t *testing.T) {
	// -max-frames streams the on-disk ensemble out of core; every engine
	// accepts it (dask exercised here, serial as the reference path).
	dir := writeEnsemble(t)
	if err := run(dir, "serial", 1, "pruned", 0, 0, true, 2); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, "dask", 2, "naive", 0, 0, false, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(t.TempDir(), "spark", 1, "naive", 0, 0, true, 0); err == nil {
		t.Error("empty directory accepted")
	}
	if err := run(t.TempDir(), "bogus", 1, "naive", 0, 0, true, 0); err == nil {
		t.Error("bad engine accepted")
	}
	if err := run(t.TempDir(), "spark", 1, "bogus", 0, 0, true, 0); err == nil {
		t.Error("bad method accepted")
	}
}

// Selector flags are rejected up front, before any input is read, with
// errors that list the valid values.
func TestValidateFlags(t *testing.T) {
	if err := validateFlags("dask", "pruned"); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	if err := validateFlags("hadoop", "naive"); err == nil {
		t.Error("bad engine passed validation")
	} else if want := "serial|spark|dask|mpi|pilot"; !strings.Contains(err.Error(), want) {
		t.Errorf("engine error %q does not list valid values %q", err, want)
	}
	if err := validateFlags("dask", "exact"); err == nil {
		t.Error("bad method passed validation")
	} else if want := "naive|early-break|pruned|indexed"; !strings.Contains(err.Error(), want) {
		t.Errorf("method error %q does not list valid values %q", err, want)
	}
}
