// Command mdserver is the long-running analysis job service: a JSON
// HTTP API that accepts PSA and Leaflet Finder jobs, schedules them
// across the five engines (serial, spark, dask, mpi, pilot) through a
// bounded FIFO queue, and serves identical resubmissions from a
// content-addressed result cache.
//
// Usage:
//
//	mdserver -addr :8077 -workers 2 -queue 64 -cache 128
//
// Endpoints:
//
//	POST   /v1/jobs              submit a job
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status + progress + metrics
//	GET    /v1/jobs/{id}/result  result of a done job
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/metrics           service-wide metrics
//	GET    /healthz              liveness probe
//
// Example:
//
//	curl -s localhost:8077/v1/jobs -d \
//	  '{"analysis":"psa","engine":"dask","synth":{"count":4,"atoms":16,"frames":8}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdtask/internal/jobs"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		workers = flag.Int("workers", 2, "concurrent job limit")
		queue   = flag.Int("queue", 64, "queued-job limit")
		cache   = flag.Int("cache", 128, "result-cache entries")
		retain  = flag.Int("retain", 4096, "finished-job records retained (oldest evicted beyond this)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *cache, *retain); err != nil {
		fmt.Fprintln(os.Stderr, "mdserver:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, cache, retain int) error {
	sched := jobs.NewScheduler(jobs.DefaultRegistry(), jobs.Options{
		Workers:      workers,
		QueueDepth:   queue,
		CacheEntries: cache,
		MaxJobs:      retain,
	})
	srv := &http.Server{
		Addr:              addr,
		Handler:           jobs.NewServer(sched),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("mdserver listening on %s (workers=%d queue=%d cache=%d)", addr, workers, queue, cache)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("mdserver shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	sched.Close()
	return nil
}
