// Command mdserver is the long-running analysis job service: a JSON
// HTTP API that accepts PSA and Leaflet Finder jobs, schedules them
// across the six engines (serial, spark, dask, mpi, pilot, fleet)
// through a bounded FIFO queue, and serves identical resubmissions
// from a content-addressed result cache.
//
// It also embeds the fleet coordinator: cmd/mdworker processes
// register against the same address and pull the work units of every
// `"engine":"fleet"` job over the worker protocol, so one mdserver
// plus N mdworkers is a complete multi-process deployment.
//
// Usage:
//
//	mdserver -addr :8077 -workers 2 -queue 64 -cache-bytes 268435456
//
// Endpoints:
//
//	POST   /v1/jobs              submit a job
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status + progress + metrics
//	GET    /v1/jobs/{id}/result  result of a done job
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/trace   job trace as Chrome trace_event JSON
//	GET    /v1/metrics           service-wide metrics
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness probe
//	POST   /v1/workers[...]      fleet worker protocol (see internal/fleet)
//	GET    /v1/fleet             fleet coordinator stats
//
// Observability: -trace=off disables span collection (metrics stay
// on), -debug-addr serves net/http/pprof on a side listener,
// -log-format selects text or JSON structured access logs, and
// -version prints the build identity.
//
// Durability: -data-dir enables a write-ahead job journal in that
// directory — acknowledged jobs survive SIGKILL and are re-run from
// their specs on the next boot against the same directory (see the
// "Durability & recovery" section of the README). -fsync picks the
// journal's fsync policy (always|interval|never).
//
// Example:
//
//	curl -s localhost:8077/v1/jobs -d \
//	  '{"analysis":"psa","engine":"fleet","synth":{"count":4,"atoms":16,"frames":8}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served at -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdtask/internal/blockstore"
	"mdtask/internal/faultinject"
	"mdtask/internal/fleet"
	"mdtask/internal/jobs"
	"mdtask/internal/obs"
	"mdtask/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		workers    = flag.Int("workers", 2, "concurrent job limit")
		queue      = flag.Int("queue", 64, "queued-job limit")
		cacheBytes = flag.Int64("cache-bytes", blockstore.DefaultMaxBytes, "result-store byte budget (block + whole-job entries, LRU-evicted)")
		retain     = flag.Int("retain", 4096, "finished-job records retained (oldest evicted beyond this)")
		maxSpec    = flag.Int64("max-spec-bytes", jobs.DefaultMaxSpecBytes, "POST /v1/jobs request-body bound; larger submissions answer 413")
		dataDir    = flag.String("data-dir", "", "durable job-journal directory; jobs survive crashes and restarts (empty: memory-only)")
		fsync      = flag.String("fsync", "always", "journal fsync policy: always|interval|never")

		fleetWorkers = flag.Int("fleet-workers", 0, "in-process fleet workers to attach (0: external mdworkers only)")
		leaseTTL     = flag.Duration("fleet-lease-ttl", 15*time.Second, "fleet work-unit lease before requeue")
		hbTTL        = flag.Duration("fleet-heartbeat-ttl", 5*time.Second, "fleet worker silence before its leases requeue")
		sweep        = flag.Duration("fleet-sweep", 500*time.Millisecond, "fleet failure-detector period")

		trace     = flag.String("trace", "on", "span collection: on|off (metrics are always on)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty: disabled)")
		logFormat = flag.String("log-format", "text", "structured log format: text|json")
		version   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("mdserver", obs.Version())
		return
	}
	cfg := serverConfig{
		addr: *addr, workers: *workers, queue: *queue, retain: *retain,
		cacheBytes:   *cacheBytes,
		maxSpecBytes: *maxSpec,
		dataDir:      *dataDir,
		fsync:        *fsync,
		fleetWorkers: *fleetWorkers,
		fleetOpts:    fleet.Options{LeaseTTL: *leaseTTL, HeartbeatTTL: *hbTTL, SweepEvery: *sweep},
		traceOn:      *trace != "off",
		debugAddr:    *debugAddr,
		logFormat:    *logFormat,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mdserver:", err)
		os.Exit(1)
	}
}

// serverConfig carries the resolved flags.
type serverConfig struct {
	addr                   string
	workers, queue, retain int
	cacheBytes             int64
	maxSpecBytes           int64
	dataDir                string
	fsync                  string
	fleetWorkers           int
	fleetOpts              fleet.Options
	traceOn                bool
	debugAddr              string
	logFormat              string
	// onReady, when non-nil, receives the bound listen address once the
	// server is accepting requests (test hook).
	onReady func(net.Addr)
}

// selfURL derives the base URL in-process fleet workers dial: the
// bound host when the listener is on a specific interface, loopback
// for wildcard binds (0.0.0.0/[::]).
func selfURL(addr net.Addr) (string, error) {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "", err
	}
	ip := net.ParseIP(host)
	if host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port), nil
}

// buildHandler wires the jobs API, the fleet worker protocol, and the
// Prometheus exposition into one mux (shared with the in-process
// server test), wrapped in the standard instrumentation middleware
// (per-endpoint metrics, access log, inbound-traceparent spans).
func buildHandler(sched *jobs.Scheduler, coord *fleet.Coordinator, logger *slog.Logger, jo jobs.ServerOptions) http.Handler {
	fh := coord.Handler()
	mux := http.NewServeMux()
	mux.Handle("/v1/workers", fh)
	mux.Handle("/v1/workers/", fh)
	mux.Handle("/v1/fleet", fh)
	mux.Handle("/v1/fleet/", fh)
	mux.Handle("/metrics", sched.Obs().Metrics.Handler())
	mux.Handle("/", jobs.NewServerWith(sched, jo))
	return obs.Middleware(mux, sched.Obs(), logger, "mdserver")
}

// run serves until ctx is cancelled (main cancels on SIGINT/SIGTERM)
// or the listener fails.
func run(ctx context.Context, cfg serverConfig) error {
	// One content-addressed result store spans the whole process: the
	// scheduler's whole-job entries, every in-process engine's block
	// entries, and the fleet coordinator's unit prefill/record all share
	// it, so work cached by any path is visible to every other.
	store := blockstore.New(cfg.cacheBytes)
	// One observability bundle spans the process: the scheduler's job
	// spans, the coordinator's fleet spans (plus the worker spans it
	// imports), and every metric series share it, so /metrics and
	// /v1/jobs/{id}/trace each tell the whole story.
	ob := obs.New("mdserver")
	if !cfg.traceOn {
		ob = obs.NoTrace()
	}
	obs.RegisterRuntimeMetrics(ob.Metrics)
	obs.RegisterBuildInfo(ob.Metrics, "mdserver")
	logger := obs.NewLogger(os.Stderr, cfg.logFormat)
	// Env-gated fault points (MDTASK_FAULTS) — inert in production, they
	// let the crash-recovery tests and smoke script break the journal at
	// chosen record boundaries.
	if err := faultinject.ActivateFromEnv(); err != nil {
		return err
	}
	if faultinject.Enabled() {
		log.Printf("mdserver fault injection armed: %s=%s", faultinject.EnvVar, os.Getenv(faultinject.EnvVar))
	}
	// The durable job journal (optional): every lifecycle transition is
	// written through it, and on boot the previous process's jobs are
	// replayed — terminal ones as status-only records, queued/running
	// ones re-enqueued and re-run from their specs.
	var journal jobs.Store
	var walStore *jobs.WALStore
	var recovered *jobs.Recovered
	if cfg.dataDir != "" {
		pol, err := wal.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		ws, rec, err := jobs.OpenWALStore(jobs.WALStoreOptions{Dir: cfg.dataDir, Sync: pol})
		if err != nil {
			return fmt.Errorf("opening job journal in %s: %w", cfg.dataDir, err)
		}
		defer ws.Close()
		ws.RegisterMetrics(ob.Metrics)
		walStore, recovered, journal = ws, rec, ws
	}
	fleetOpts := cfg.fleetOpts
	fleetOpts.BlockStore = store
	fleetOpts.Tracer = ob.Tracer
	coord := fleet.NewCoordinator(fleetOpts)
	defer coord.Close()
	sched := jobs.NewScheduler(jobs.RegistryWithFleet(coord), jobs.Options{
		Workers:    cfg.workers,
		QueueDepth: cfg.queue,
		BlockStore: store,
		MaxJobs:    cfg.retain,
		Obs:        ob,
		Journal:    journal,
	})
	if walStore != nil {
		sched.Recover(recovered.Jobs)
		requeued := 0
		for _, j := range recovered.Jobs {
			if !j.State.Terminal() {
				requeued++
			}
		}
		log.Printf("mdserver journal %s: recovered %d job(s) (%d re-enqueued), replayed=%d skipped=%d skipped_bytes=%d unreplayable=%d clean_shutdown=%v",
			cfg.dataDir, len(recovered.Jobs), requeued,
			recovered.Replayed, recovered.Skipped, recovered.SkippedBytes, recovered.Unreplayable, recovered.CleanShutdown)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.debugAddr != "" {
		dln, derr := net.Listen("tcp", cfg.debugAddr)
		if derr != nil {
			return derr
		}
		defer dln.Close()
		// The blank net/http/pprof import registered /debug/pprof on the
		// default mux; serve it on the side listener only.
		go func() { _ = http.Serve(dln, http.DefaultServeMux) }()
		log.Printf("mdserver pprof on %s/debug/pprof/", dln.Addr())
	}
	srv := &http.Server{
		Handler:           buildHandler(sched, coord, logger, jobs.ServerOptions{MaxSpecBytes: cfg.maxSpecBytes}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve before anything dials in: the in-process fleet workers
	// below register over real HTTP against this very listener.
	errc := make(chan error, 1)
	go func() {
		log.Printf("mdserver listening on %s (workers=%d queue=%d cache-bytes=%d fleet-workers=%d)",
			ln.Addr(), cfg.workers, cfg.queue, cfg.cacheBytes, cfg.fleetWorkers)
		errc <- srv.Serve(ln)
	}()

	// Optional in-process fleet workers, so a single mdserver can
	// complete fleet jobs without external mdworker processes.
	var locals []*fleet.Worker
	if cfg.fleetWorkers > 0 {
		base, err := selfURL(ln.Addr())
		if err != nil {
			return err
		}
		for i := 0; i < cfg.fleetWorkers; i++ {
			w, err := fleet.StartWorker(fleet.WorkerOptions{
				Coordinator: base,
				Name:        fmt.Sprintf("mdserver-local-%d", i),
				Logf:        log.Printf,
			})
			if err != nil {
				return fmt.Errorf("starting in-process fleet worker: %w", err)
			}
			locals = append(locals, w)
		}
	}
	defer func() {
		for _, w := range locals {
			w.Close()
		}
	}()
	if cfg.onReady != nil {
		cfg.onReady(ln.Addr())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("mdserver shutting down")
	// Drain before anything else: admission stops (new submissions get
	// 503), idle workers exit instead of picking up queued jobs, and
	// queued jobs stay journaled as queued so the next boot re-enqueues
	// them. Jobs the coordinator aborts below stay `running` in the
	// journal (drain suppresses their shutdown-artefact failures) and
	// likewise re-run on the next boot.
	sched.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// The listener is gone, so no worker can lease or post another
	// unit: close the coordinator first, aborting any in-flight fleet
	// job (its scheduler runner fails with ErrClosed and unblocks) —
	// otherwise sched.Close would wait forever on a fleet job whose
	// workers can no longer reach us.
	coord.Close()
	// Close waits the worker pool out, then journals the clean-shutdown
	// marker: every transition above is durable before we exit.
	sched.Close()
	return nil
}
