package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdtask/internal/jobs"
)

// TestServerSmoke is the in-process version of the CI smoke step:
// bring the service up, check /healthz, submit a tiny synth PSA job,
// poll it to completion, and fetch the result.
func TestServerSmoke(t *testing.T) {
	sched := jobs.NewScheduler(jobs.DefaultRegistry(), jobs.Options{Workers: 1})
	defer sched.Close()
	ts := httptest.NewServer(jobs.NewServer(sched))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	body := `{"analysis":"psa","engine":"dask","synth":{"count":3,"atoms":8,"frames":4}}`
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if st.State != jobs.StateDone {
		t.Fatalf("job finished %s (error %q)", st.State, st.Error)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: got %d", resp.StatusCode)
	}
	var res jobs.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Matrix == nil || res.Matrix.N != 3 {
		t.Fatalf("unexpected result %+v", res)
	}
}
