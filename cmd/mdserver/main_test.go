package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdtask/internal/fleet"
	"mdtask/internal/jobs"
)

// TestServerSmoke is the in-process version of the CI smoke step:
// bring the service up, check /healthz, submit a tiny synth PSA job,
// poll it to completion, and fetch the result.
func TestServerSmoke(t *testing.T) {
	sched := jobs.NewScheduler(jobs.DefaultRegistry(), jobs.Options{Workers: 1})
	defer sched.Close()
	ts := httptest.NewServer(jobs.NewServer(sched))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	body := `{"analysis":"psa","engine":"dask","synth":{"count":3,"atoms":8,"frames":4}}`
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if st.State != jobs.StateDone {
		t.Fatalf("job finished %s (error %q)", st.State, st.Error)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: got %d", resp.StatusCode)
	}
	var res jobs.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Matrix == nil || res.Matrix.N != 3 {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestServerFleetRoundTrip is the in-process version of the CI fleet
// smoke: serve the combined jobs+fleet handler, attach two real fleet
// workers over HTTP, run the same synth PSA job on the serial and
// fleet engines, and require bit-identical matrices.
func TestServerFleetRoundTrip(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.LocalOptions())
	defer coord.Close()
	sched := jobs.NewScheduler(jobs.RegistryWithFleet(coord), jobs.Options{Workers: 2})
	defer sched.Close()
	ts := httptest.NewServer(buildHandler(sched, coord, nil, jobs.ServerOptions{}))
	defer ts.Close()

	for i := 0; i < 2; i++ {
		w, err := fleet.StartWorker(fleet.WorkerOptions{Coordinator: ts.URL, Name: "test-worker"})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
	}

	runJob := func(engine string) *jobs.Result {
		t.Helper()
		body := `{"analysis":"psa","engine":"` + engine + `","synth":{"count":4,"atoms":8,"frames":4,"seed":5}}`
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st jobs.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit on %s: got %d", engine, resp.StatusCode)
		}
		deadline := time.Now().Add(60 * time.Second)
		for !st.State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("%s job stuck in %s", engine, st.State)
			}
			time.Sleep(10 * time.Millisecond)
			resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		if st.State != jobs.StateDone {
			t.Fatalf("%s job finished %s (error %q)", engine, st.State, st.Error)
		}
		resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res jobs.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return &res
	}

	serial := runJob("serial")
	fleetRes := runJob("fleet")
	if fleetRes.Matrix == nil || fleetRes.Matrix.N != serial.Matrix.N {
		t.Fatalf("fleet matrix shape: %+v", fleetRes.Matrix)
	}
	for i := range serial.Matrix.Data {
		if fleetRes.Matrix.Data[i] != serial.Matrix.Data[i] {
			t.Fatalf("fleet matrix differs from serial at %d", i)
		}
	}

	// The coordinator stats endpoint is mounted and saw the work.
	resp, err := http.Get(ts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats fleet.StatsView
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 2 || stats.UnitsCompleted == 0 {
		t.Errorf("fleet stats = %+v", stats)
	}
}

// TestRunWithLocalFleetWorkers boots run() exactly as `mdserver
// -fleet-workers 1` does and proves the single-process fleet mode
// works: the in-process worker registers (which requires the server
// to be accepting requests before workers dial in) and completes a
// fleet job.
func TestRunWithLocalFleetWorkers(t *testing.T) {
	ready := make(chan string, 1)
	cfg := serverConfig{
		addr: "127.0.0.1:0", workers: 1, queue: 8, cacheBytes: 1 << 20, retain: 64,
		fleetWorkers: 1,
		fleetOpts:    fleet.LocalOptions(),
		onReady:      func(a net.Addr) { ready <- "http://" + a.String() },
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()

	var base string
	select {
	case base = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("run never became ready")
	}

	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var stats fleet.StatsView
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Workers != 1 {
		t.Fatalf("fleet stats workers = %d, want 1 in-process worker", stats.Workers)
	}

	body := `{"analysis":"psa","engine":"fleet","synth":{"count":3,"atoms":8,"frames":4}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("fleet job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if st.State != jobs.StateDone {
		t.Fatalf("fleet job finished %s (error %q)", st.State, st.Error)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not shut down")
	}
}

// TestSelfURL covers the wildcard-vs-specific bind cases in-process
// workers dial.
func TestSelfURL(t *testing.T) {
	cases := map[string]string{
		"0.0.0.0:8077":    "http://127.0.0.1:8077",
		"[::]:8077":       "http://127.0.0.1:8077",
		"127.0.0.1:8077":  "http://127.0.0.1:8077",
		"192.0.2.10:8077": "http://192.0.2.10:8077",
	}
	for in, want := range cases {
		got, err := selfURL(fakeAddr(in))
		if err != nil || got != want {
			t.Errorf("selfURL(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
}

type fakeAddr string

func (a fakeAddr) Network() string { return "tcp" }
func (a fakeAddr) String() string  { return string(a) }

// TestRunShutdownWithFleetJobInFlight sends the shutdown signal while
// a fleet job is mid-run: run() must abort the coordinator job,
// unblock the scheduler drain, and return instead of deadlocking on a
// job whose workers can no longer reach the closed listener.
func TestRunShutdownWithFleetJobInFlight(t *testing.T) {
	ready := make(chan string, 1)
	cfg := serverConfig{
		addr: "127.0.0.1:0", workers: 1, queue: 8, cacheBytes: 1 << 20, retain: 64,
		fleetWorkers: 1,
		fleetOpts:    fleet.LocalOptions(),
		onReady:      func(a net.Addr) { ready <- "http://" + a.String() },
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()
	var base string
	select {
	case base = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("run never became ready")
	}

	// A fleet job heavy enough to still be running when we pull the
	// plug (O(frames²) per trajectory pair on one worker).
	body := `{"analysis":"psa","engine":"fleet","synth":{"count":6,"atoms":64,"frames":512}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for st.State == jobs.StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("fleet job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	cancel() // SIGTERM equivalent, mid-job
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run deadlocked shutting down with a fleet job in flight")
	}
}
