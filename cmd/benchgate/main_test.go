package main

import (
	"strings"
	"testing"
)

func baselineFixture() benchFile {
	return benchFile{
		Benchmark: "psa-hausdorff-kernel",
		Ensembles: []benchEnsemble{{
			Kind: "walk",
			Methods: []benchMethod{
				{Method: "naive", PairsEvaluated: 1000, PairsPruned: 0, PairsAbandoned: 0, PrunedFraction: 0},
				{Method: "pruned", PairsEvaluated: 100, PairsPruned: 800, PairsAbandoned: 100, PrunedFraction: 0.9},
				{Method: "indexed", PairsEvaluated: 90, PairsPruned: 810, PairsAbandoned: 100, PrunedFraction: 0.91, NodesVisited: 40, NodesPruned: 10},
			},
		}},
	}
}

func TestGatePassesIdenticalRun(t *testing.T) {
	v, imp := gate(baselineFixture(), baselineFixture(), 0.02)
	if len(v) != 0 || len(imp) != 0 {
		t.Fatalf("identical run: violations=%v improvements=%v", v, imp)
	}
}

func TestGateCatchesMoreEvaluatedPairs(t *testing.T) {
	cur := baselineFixture()
	// 100 -> 150 evaluated with pruned shrinking to keep the total:
	// a genuine efficiency regression.
	cur.Ensembles[0].Methods[1].PairsEvaluated = 150
	cur.Ensembles[0].Methods[1].PairsPruned = 750
	cur.Ensembles[0].Methods[1].PrunedFraction = 0.85
	v, _ := gate(baselineFixture(), cur, 0.02)
	if len(v) != 2 {
		t.Fatalf("violations = %v, want evaluated-pairs and pruned-fraction failures", v)
	}
	if !strings.Contains(v[0], "evaluated pairs") || !strings.Contains(v[1], "pruned fraction") {
		t.Fatalf("violations = %v", v)
	}
}

func TestGateCatchesScheduleDrift(t *testing.T) {
	cur := baselineFixture()
	cur.Ensembles[0].Methods[0].PairsEvaluated = 900 // total 1000 -> 900
	v, _ := gate(baselineFixture(), cur, 0.02)
	if len(v) != 1 || !strings.Contains(v[0], "scheduled pairs changed") {
		t.Fatalf("violations = %v, want schedule-drift failure", v)
	}
}

func TestGateCatchesMissingMeasurement(t *testing.T) {
	cur := baselineFixture()
	cur.Ensembles[0].Methods = cur.Ensembles[0].Methods[:2]
	v, _ := gate(baselineFixture(), cur, 0.02)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("violations = %v, want missing-measurement failure", v)
	}
}

// The indexed kernel must complete strictly fewer full evaluations
// than pruned on every ensemble of the current run — an absolute rule,
// so it trips even when the baseline records the same (bad) numbers.
func TestGateCatchesIndexedEvalParity(t *testing.T) {
	cur := baselineFixture()
	cur.Ensembles[0].Methods[2].PairsEvaluated = 100 // == pruned's
	cur.Ensembles[0].Methods[2].PairsPruned = 800
	v, _ := gate(cur, cur, 0.02)
	if len(v) != 1 || !strings.Contains(v[0], "strictly fewer") {
		t.Fatalf("violations = %v, want indexed-vs-pruned failure", v)
	}
}

func TestGateToleratesSlackAndReportsImprovements(t *testing.T) {
	cur := baselineFixture()
	// +1% evaluated on pruned: inside the 2% tolerance.
	cur.Ensembles[0].Methods[1].PairsEvaluated = 101
	cur.Ensembles[0].Methods[1].PairsPruned = 799
	if v, _ := gate(baselineFixture(), cur, 0.02); len(v) != 0 {
		t.Fatalf("within-tolerance run tripped the gate: %v", v)
	}
	// Fewer evaluated pairs is an improvement, not a violation —
	// indexed improves along with pruned to keep its strict lead.
	cur.Ensembles[0].Methods[1].PairsEvaluated = 50
	cur.Ensembles[0].Methods[1].PairsPruned = 850
	cur.Ensembles[0].Methods[1].PrunedFraction = 0.95
	cur.Ensembles[0].Methods[2].PairsEvaluated = 40
	cur.Ensembles[0].Methods[2].PairsPruned = 860
	cur.Ensembles[0].Methods[2].PrunedFraction = 0.96
	v, imp := gate(baselineFixture(), cur, 0.02)
	if len(v) != 0 || len(imp) != 2 {
		t.Fatalf("improvement run: violations=%v improvements=%v", v, imp)
	}
}
