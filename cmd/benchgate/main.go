// Command benchgate is the kernel-efficiency regression gate: it
// compares a freshly recorded BENCH_psa.json (make bench-json into a
// scratch path) against the committed baseline and fails the build
// when the pruned Hausdorff pipeline loses ground.
//
// Only the deterministic frame-pair counters gate — PairsEvaluated,
// the pruned fraction, and the scheduled-pair total. Wall-clock
// (ns_per_op) is machine-dependent noise on shared CI runners and is
// deliberately ignored. On top of the relative comparison, one
// absolute rule guards the indexed kernel's reason to exist: on every
// ensemble measuring both methods, indexed must complete strictly
// fewer full evaluations than pruned.
//
// Usage:
//
//	benchgate -baseline BENCH_psa.json -current /tmp/bench.json [-tol 0.02]
//
// Exit status 0 means no regression; 1 means the gate tripped (every
// violation is listed); 2 means the inputs could not be read.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mdtask/internal/obs"
)

// benchFile mirrors the layout internal/bench's TestWriteBenchPSAJSON
// records.
type benchFile struct {
	Benchmark  string           `json:"benchmark"`
	Ensembles  []benchEnsemble  `json:"ensembles"`
	BlockCache *benchBlockCache `json:"block_cache"`
}

type benchEnsemble struct {
	Kind         string        `json:"kind"`
	Trajectories int           `json:"trajectories"`
	Atoms        int           `json:"atoms"`
	Frames       int           `json:"frames"`
	Methods      []benchMethod `json:"methods"`
}

type benchMethod struct {
	Method         string  `json:"method"`
	NsPerOp        int64   `json:"ns_per_op"`
	PairsEvaluated int64   `json:"pairs_evaluated"`
	PairsPruned    int64   `json:"pairs_pruned"`
	PairsAbandoned int64   `json:"pairs_abandoned"`
	PrunedFraction float64 `json:"pruned_fraction"`
	NodesVisited   int64   `json:"nodes_visited,omitempty"`
	NodesPruned    int64   `json:"nodes_pruned,omitempty"`
}

// benchBlockCache is the block-store effectiveness record: every field
// is deterministic (synth ensembles, fixed schedule), so the gate
// compares them exactly — no tolerance. Absent from the baseline, the
// section does not gate (pre-block-store baselines stay valid).
type benchBlockCache struct {
	Trajectories      int   `json:"trajectories"`
	GrownTrajectories int   `json:"grown_trajectories"`
	Blocks            int   `json:"blocks"`
	GrownBlocks       int   `json:"grown_blocks"`
	ColdMisses        int64 `json:"cold_misses"`
	WarmHits          int64 `json:"warm_hits"`
	WarmBytesSaved    int64 `json:"warm_bytes_saved"`
	DeltaHits         int64 `json:"delta_hits"`
	DeltaMisses       int64 `json:"delta_misses"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_psa.json", "committed baseline JSON")
		currentPath  = flag.String("current", "", "freshly recorded JSON to gate")
		tol          = flag.Float64("tol", 0.02, "allowed relative slack on evaluated pairs (and absolute slack on pruned fraction)")
		version      = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("benchgate", obs.Version())
		return
	}
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	violations, improvements := gate(baseline, current, *tol)
	for _, msg := range improvements {
		fmt.Println("benchgate: note:", msg)
	}
	if len(violations) > 0 {
		for _, msg := range violations {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", msg)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %d kernel-efficiency regression(s) vs %s (tolerance %.0f%%)\n",
			len(violations), *baselinePath, *tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — counters within %.0f%% of %s across %d ensemble(s)\n",
		*tol*100, *baselinePath, len(baseline.Ensembles))
}

// load reads and parses one bench JSON file.
func load(path string) (benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return benchFile{}, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return benchFile{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// gate compares current against baseline and returns the list of
// violations (gating) and improvements (informational). Rules, per
// (ensemble kind, method) present in the baseline:
//
//   - the pair must exist in current (a vanished measurement gates);
//   - the scheduled-pair total (evaluated+pruned+abandoned) must match
//     exactly — a drift means the benchmark itself changed, and the
//     baseline must be regenerated deliberately, not silently;
//   - evaluated pairs may not exceed baseline × (1+tol);
//   - the pruned fraction may not drop below baseline − tol.
//
// When the baseline carries a block_cache section, its deterministic
// counters must match the current run exactly (hits lost to a keying
// or recording regression show up as a mismatch here).
func gate(baseline, current benchFile, tol float64) (violations, improvements []string) {
	violations = append(violations, gateBlockCache(baseline.BlockCache, current.BlockCache)...)
	violations = append(violations, gateIndexedReduction(current)...)
	cur := make(map[string]benchMethod)
	for _, e := range current.Ensembles {
		for _, m := range e.Methods {
			cur[e.Kind+"/"+m.Method] = m
		}
	}
	for _, e := range baseline.Ensembles {
		for _, b := range e.Methods {
			key := e.Kind + "/" + b.Method
			c, ok := cur[key]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s: missing from current run", key))
				continue
			}
			baseTotal := b.PairsEvaluated + b.PairsPruned + b.PairsAbandoned
			curTotal := c.PairsEvaluated + c.PairsPruned + c.PairsAbandoned
			if baseTotal != curTotal {
				violations = append(violations, fmt.Sprintf(
					"%s: scheduled pairs changed %d -> %d (benchmark drift; regenerate the baseline deliberately)",
					key, baseTotal, curTotal))
				continue
			}
			if limit := float64(b.PairsEvaluated) * (1 + tol); float64(c.PairsEvaluated) > limit {
				violations = append(violations, fmt.Sprintf(
					"%s: evaluated pairs %d > %d (baseline %d × %.2f)",
					key, c.PairsEvaluated, int64(limit), b.PairsEvaluated, 1+tol))
			} else if c.PairsEvaluated < b.PairsEvaluated {
				improvements = append(improvements, fmt.Sprintf(
					"%s: evaluated pairs improved %d -> %d (consider refreshing the baseline)",
					key, b.PairsEvaluated, c.PairsEvaluated))
			}
			if c.PrunedFraction < b.PrunedFraction-tol {
				violations = append(violations, fmt.Sprintf(
					"%s: pruned fraction %.4f < %.4f (baseline %.4f − %.2f)",
					key, c.PrunedFraction, b.PrunedFraction-tol, b.PrunedFraction, tol))
			}
		}
	}
	return violations, improvements
}

// gateIndexedReduction enforces the ball-tree kernel's reason to
// exist: on every ensemble of the current run that measures both
// methods, indexed must complete strictly fewer full dRMS evaluations
// than pruned (the counters are deterministic, so "strictly fewer" is
// a stable property, not a flaky threshold — see docs/kernels.md). The
// rule is absolute on the current run, not relative to the baseline:
// a regenerated baseline cannot launder the property away.
func gateIndexedReduction(current benchFile) (violations []string) {
	for _, e := range current.Ensembles {
		var pruned, indexed *benchMethod
		for i := range e.Methods {
			switch e.Methods[i].Method {
			case "pruned":
				pruned = &e.Methods[i]
			case "indexed":
				indexed = &e.Methods[i]
			}
		}
		if pruned == nil || indexed == nil {
			continue
		}
		if indexed.PairsEvaluated >= pruned.PairsEvaluated {
			violations = append(violations, fmt.Sprintf(
				"%s: indexed evaluated %d pairs, want strictly fewer than pruned's %d",
				e.Kind, indexed.PairsEvaluated, pruned.PairsEvaluated))
		}
	}
	return violations
}

// gateBlockCache compares the block-store scenario counters exactly.
// A nil baseline section skips the gate; a baseline with the section
// requires the current run to carry it too.
func gateBlockCache(base, cur *benchBlockCache) (violations []string) {
	if base == nil {
		return nil
	}
	if cur == nil {
		return []string{"block_cache: missing from current run"}
	}
	if base.Trajectories != cur.Trajectories || base.GrownTrajectories != cur.GrownTrajectories {
		return []string{fmt.Sprintf(
			"block_cache: scenario changed %d→%d trajectories vs baseline %d→%d (regenerate the baseline deliberately)",
			cur.Trajectories, cur.GrownTrajectories, base.Trajectories, base.GrownTrajectories)}
	}
	check := func(name string, b, c int64) {
		if b != c {
			violations = append(violations, fmt.Sprintf("block_cache: %s = %d, baseline %d", name, c, b))
		}
	}
	check("blocks", int64(base.Blocks), int64(cur.Blocks))
	check("grown_blocks", int64(base.GrownBlocks), int64(cur.GrownBlocks))
	check("cold_misses", base.ColdMisses, cur.ColdMisses)
	check("warm_hits", base.WarmHits, cur.WarmHits)
	check("warm_bytes_saved", base.WarmBytesSaved, cur.WarmBytesSaved)
	check("delta_hits", base.DeltaHits, cur.DeltaHits)
	check("delta_misses", base.DeltaMisses, cur.DeltaMisses)
	return violations
}
