// Package entk is an Ensemble-Toolkit-like workflow layer over the
// pilot engine — the higher-level abstraction the paper's Table 1 lists
// for RADICAL-Pilot. Applications are expressed as pipelines of stages
// of tasks with EnTK's execution semantics:
//
//   - pipelines run concurrently with each other;
//   - stages within a pipeline run sequentially (a stage is a barrier);
//   - tasks within a stage run concurrently as Compute-Units on the
//     pilot.
//
// This is the "ensembles of tasks" pattern (§3.3) the paper cites as
// RADICAL-Pilot's strength.
package entk

import (
	"fmt"
	"sync"

	"mdtask/internal/pilot"
)

// Task is one unit of work within a stage.
type Task struct {
	Name        string
	Fn          pilot.UnitFunc
	InputFiles  map[string][]byte
	OutputFiles []string

	// Unit is the executed Compute-Unit, populated by AppManager.Run;
	// use it to retrieve outputs.
	Unit *pilot.Unit
}

// Stage is a barrier-delimited set of concurrent tasks.
type Stage struct {
	Name  string
	Tasks []*Task
}

// Pipeline is a sequential chain of stages.
type Pipeline struct {
	Name   string
	Stages []*Stage
}

// AddStage appends a stage and returns the pipeline for chaining.
func (p *Pipeline) AddStage(s *Stage) *Pipeline {
	p.Stages = append(p.Stages, s)
	return p
}

// AddTask appends a task and returns the stage for chaining.
func (s *Stage) AddTask(t *Task) *Stage {
	s.Tasks = append(s.Tasks, t)
	return s
}

// AppManager executes pipelines on a pilot, like EnTK's AppManager.
type AppManager struct {
	pilot *pilot.Pilot
}

// NewAppManager wraps a running pilot.
func NewAppManager(p *pilot.Pilot) *AppManager {
	return &AppManager{pilot: p}
}

// Run executes the pipelines to completion: pipelines concurrently,
// stages sequentially within each pipeline, tasks concurrently within
// each stage. It returns the first pipeline error (all pipelines run to
// completion or failure regardless).
func (am *AppManager) Run(pipelines ...*Pipeline) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	for _, pl := range pipelines {
		wg.Add(1)
		go func(pl *Pipeline) {
			defer wg.Done()
			record(am.runPipeline(pl))
		}(pl)
	}
	wg.Wait()
	return first
}

// runPipeline executes one pipeline's stages in order.
func (am *AppManager) runPipeline(pl *Pipeline) error {
	for si, stage := range pl.Stages {
		if err := am.runStage(pl, si, stage); err != nil {
			return fmt.Errorf("entk: pipeline %s stage %s: %w", pl.Name, stage.Name, err)
		}
	}
	return nil
}

// runStage submits one stage's tasks as Compute-Units and waits for the
// barrier.
func (am *AppManager) runStage(pl *Pipeline, si int, stage *Stage) error {
	if len(stage.Tasks) == 0 {
		return nil
	}
	descs := make([]pilot.UnitDescription, len(stage.Tasks))
	for i, task := range stage.Tasks {
		descs[i] = pilot.UnitDescription{
			Name:        fmt.Sprintf("%s/%d-%s/%s", pl.Name, si, stage.Name, task.Name),
			Fn:          task.Fn,
			InputFiles:  task.InputFiles,
			OutputFiles: task.OutputFiles,
		}
	}
	units, err := am.pilot.Submit(descs)
	if err != nil {
		return err
	}
	for i, u := range units {
		stage.Tasks[i].Unit = u
	}
	return am.pilot.Wait(units)
}
