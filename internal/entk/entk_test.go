package entk

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mdtask/internal/pilot"
)

func newTestPilot(t *testing.T, cores int) *pilot.Pilot {
	t.Helper()
	cfg := pilot.Config{
		DBLatency:          50 * time.Microsecond,
		AgentPollInterval:  500 * time.Microsecond,
		ClientPollInterval: 500 * time.Microsecond,
	}
	p, err := pilot.NewPilot(cores, t.TempDir(), pilot.NewDB(cfg.DBLatency), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Shutdown)
	return p
}

func TestStagesRunSequentially(t *testing.T) {
	p := newTestPilot(t, 4)
	am := NewAppManager(p)
	var order int64
	var stage1Max, stage2Min int64 = -1, 1 << 62
	mkTask := func(stage int) *Task {
		return &Task{Name: "t", Fn: func(string) error {
			seq := atomic.AddInt64(&order, 1)
			switch stage {
			case 1:
				for {
					old := atomic.LoadInt64(&stage1Max)
					if seq <= old || atomic.CompareAndSwapInt64(&stage1Max, old, seq) {
						break
					}
				}
			case 2:
				for {
					old := atomic.LoadInt64(&stage2Min)
					if seq >= old || atomic.CompareAndSwapInt64(&stage2Min, old, seq) {
						break
					}
				}
			}
			return nil
		}}
	}
	pl := &Pipeline{Name: "p"}
	s1 := &Stage{Name: "s1"}
	s2 := &Stage{Name: "s2"}
	for i := 0; i < 4; i++ {
		s1.AddTask(mkTask(1))
		s2.AddTask(mkTask(2))
	}
	pl.AddStage(s1).AddStage(s2)
	if err := am.Run(pl); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&stage1Max) >= atomic.LoadInt64(&stage2Min) {
		t.Errorf("stage barrier violated: stage1 max seq %d, stage2 min seq %d",
			stage1Max, stage2Min)
	}
}

func TestPipelinesRunConcurrently(t *testing.T) {
	p := newTestPilot(t, 8)
	am := NewAppManager(p)
	var running, peak int64
	mkPipeline := func(name string) *Pipeline {
		return &Pipeline{Name: name, Stages: []*Stage{{Name: "s", Tasks: []*Task{{
			Name: "t",
			Fn: func(string) error {
				c := atomic.AddInt64(&running, 1)
				for {
					old := atomic.LoadInt64(&peak)
					if c <= old || atomic.CompareAndSwapInt64(&peak, old, c) {
						break
					}
				}
				time.Sleep(10 * time.Millisecond)
				atomic.AddInt64(&running, -1)
				return nil
			},
		}}}}}
	}
	if err := am.Run(mkPipeline("a"), mkPipeline("b"), mkPipeline("c")); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&peak) < 2 {
		t.Errorf("pipelines did not overlap: peak = %d", peak)
	}
}

func TestDataFlowsBetweenStagesViaFiles(t *testing.T) {
	p := newTestPilot(t, 2)
	am := NewAppManager(p)
	produce := &Task{
		Name:        "produce",
		OutputFiles: []string{"data.txt"},
		Fn: func(sandbox string) error {
			return os.WriteFile(filepath.Join(sandbox, "data.txt"), []byte("hello"), 0o644)
		},
	}
	pl := &Pipeline{Name: "flow"}
	pl.AddStage((&Stage{Name: "produce"}).AddTask(produce))

	// The consume stage is built after produce completes; EnTK-style
	// applications wire this through the pilot's shared staging area.
	if err := am.Run(pl); err != nil {
		t.Fatal(err)
	}
	data, ok := produce.Unit.Output("data.txt")
	if !ok {
		t.Fatal("produce output missing")
	}
	var got atomic.Value
	consume := &Task{
		Name:       "consume",
		InputFiles: map[string][]byte{"in.txt": data},
		Fn: func(sandbox string) error {
			b, err := os.ReadFile(filepath.Join(sandbox, "in.txt"))
			if err != nil {
				return err
			}
			got.Store(strings.ToUpper(string(b)))
			return nil
		},
	}
	pl2 := &Pipeline{Name: "flow2"}
	pl2.AddStage((&Stage{Name: "consume"}).AddTask(consume))
	if err := am.Run(pl2); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "HELLO" {
		t.Fatalf("consumed %q", got.Load())
	}
}

func TestStageFailureStopsPipeline(t *testing.T) {
	p := newTestPilot(t, 2)
	am := NewAppManager(p)
	var stage2Ran atomic.Bool
	pl := &Pipeline{Name: "failing"}
	pl.AddStage((&Stage{Name: "s1"}).AddTask(&Task{
		Name: "bad",
		Fn:   func(string) error { return errors.New("stage 1 failed") },
	}))
	pl.AddStage((&Stage{Name: "s2"}).AddTask(&Task{
		Name: "never",
		Fn:   func(string) error { stage2Ran.Store(true); return nil },
	}))
	err := am.Run(pl)
	if err == nil || !strings.Contains(err.Error(), "stage 1 failed") {
		t.Fatalf("err = %v", err)
	}
	if stage2Ran.Load() {
		t.Error("stage 2 ran after stage 1 failure")
	}
}

func TestEmptyStageAndPipeline(t *testing.T) {
	p := newTestPilot(t, 2)
	am := NewAppManager(p)
	pl := &Pipeline{Name: "empty"}
	pl.AddStage(&Stage{Name: "nothing"})
	if err := am.Run(pl); err != nil {
		t.Fatal(err)
	}
	if err := am.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyPipelinesManyStages(t *testing.T) {
	p := newTestPilot(t, 8)
	am := NewAppManager(p)
	var count int64
	var pipelines []*Pipeline
	for pi := 0; pi < 5; pi++ {
		pl := &Pipeline{Name: fmt.Sprintf("p%d", pi)}
		for si := 0; si < 3; si++ {
			st := &Stage{Name: fmt.Sprintf("s%d", si)}
			for ti := 0; ti < 4; ti++ {
				st.AddTask(&Task{Name: fmt.Sprintf("t%d", ti), Fn: func(string) error {
					atomic.AddInt64(&count, 1)
					return nil
				}})
			}
			pl.AddStage(st)
		}
		pipelines = append(pipelines, pl)
	}
	if err := am.Run(pipelines...); err != nil {
		t.Fatal(err)
	}
	if count != 5*3*4 {
		t.Errorf("ran %d tasks, want 60", count)
	}
}
