package jobs

import (
	"errors"
	"testing"
	"time"
)

// waitTerminal polls a job to a terminal state.
func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := j.Status()
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSchedulerRunsJob(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	defer s.Close()
	job, err := s.Submit(validPSASpec())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateDone {
		t.Fatalf("job finished %s (error %q)", st.State, st.Error)
	}
	if st.Metrics.Tasks == 0 || st.Progress != 1 {
		t.Errorf("metrics/progress not reported: %+v", st)
	}
	res, _, _ := job.Result()
	if res == nil || res.Matrix == nil || res.Matrix.N != 3 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestSchedulerCacheHit(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	defer s.Close()
	first, err := s.Submit(validPSASpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first)
	tasksAfterFirst := s.Metrics().Engine.Tasks
	if tasksAfterFirst == 0 {
		t.Fatal("first run recorded no engine tasks")
	}

	second, err := s.Submit(validPSASpec())
	if err != nil {
		t.Fatal(err)
	}
	st := second.Status()
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("identical resubmission not served from cache: %+v", st)
	}
	if got := s.Metrics().Engine.Tasks; got != tasksAfterFirst {
		t.Errorf("cache hit re-ran engine tasks: %d -> %d", tasksAfterFirst, got)
	}
	r1, _, _ := first.Result()
	r2, _, _ := second.Result()
	if r1.Matrix != r2.Matrix {
		t.Error("cache hit did not share the stored result")
	}
	m := s.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("cache accounting: %+v", m)
	}
	// The store holds the whole-job entry plus the run's block entries:
	// Count=3 at n1=1 is 6 triangular blocks.
	if m.CacheEntries != 7 {
		t.Errorf("store entries = %d, want 7 (1 job + 6 blocks)", m.CacheEntries)
	}

	// A different engine is a different submission: it must run.
	other := validPSASpec()
	other.Engine = EngineDask
	third, err := s.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, third); st.CacheHit {
		t.Error("different engine served from cache")
	}
}

// The kernel method is result-invariant — naive, early-break and pruned
// produce identical matrices — so resubmitting the same job with a
// different method (or the full-matrix schedule) must be served from the
// cache without re-running any engine tasks.
func TestSchedulerCacheHitAcrossMethods(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	defer s.Close()
	base := validPSASpec()
	base.Method = "naive"
	first, err := s.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first)
	tasksAfterFirst := s.Metrics().Engine.Tasks
	r1, _, _ := first.Result()

	for _, mutate := range []func(*Spec){
		func(sp *Spec) { sp.Method = "early-break" },
		func(sp *Spec) { sp.Method = "pruned" },
		func(sp *Spec) { sp.Method = "pruned"; sp.FullMatrix = true },
	} {
		spec := validPSASpec()
		mutate(&spec)
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		st := job.Status()
		if st.State != StateDone || !st.CacheHit {
			t.Fatalf("method=%q full=%v resubmission not served from cache: %+v",
				spec.Method, spec.FullMatrix, st)
		}
		r2, _, _ := job.Result()
		if r1.Matrix != r2.Matrix {
			t.Errorf("method=%q: cache hit did not share the stored result", spec.Method)
		}
	}
	if got := s.Metrics().Engine.Tasks; got != tasksAfterFirst {
		t.Errorf("cache hits re-ran engine tasks: %d -> %d", tasksAfterFirst, got)
	}
	if m := s.Metrics(); m.CacheHits != 3 || m.CacheMisses != 1 || m.CacheEntries != 7 {
		t.Errorf("cache accounting: %+v", m)
	}
}

// Every engine's PSA runner must surface the kernel's frame-pair
// counters in its job metrics — and, through the scheduler aggregate, at
// /v1/metrics.
func TestJobMetricsCarryKernelCounters(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	defer s.Close()
	for i, eng := range Engines {
		spec := validPSASpec()
		spec.Engine = eng
		spec.Method = "pruned"
		spec.Synth.Seed = uint64(1000 + i) // distinct content: no cache hits
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, job)
		if st.State != StateDone {
			t.Fatalf("%s: job finished %s (%s)", eng, st.State, st.Error)
		}
		m := st.Metrics
		if m.PairsEvaluated == 0 || m.PairsPruned == 0 {
			t.Errorf("%s: kernel counters missing from job metrics: %+v", eng, m)
		}
	}
	agg := s.Metrics().Engine
	if agg.PairsEvaluated == 0 || agg.PairsPruned == 0 {
		t.Errorf("kernel counters missing from service aggregate: %+v", agg)
	}
}

// blockingRegistry registers a psa/serial runner that parks until
// cancelled or released, for deterministic scheduling tests.
func blockingRegistry(started chan<- string, release <-chan struct{}) *Registry {
	reg := NewRegistry()
	must(reg.Register(RunnerName(AnalysisPSA, EngineSerial),
		func(rc *RunContext, spec Spec, in *Input) (*Result, error) {
			started <- spec.Engine
			for {
				select {
				case <-release:
					return &Result{Matrix: nil}, nil
				default:
				}
				if rc.Cancelled() {
					return nil, ErrCancelled
				}
				time.Sleep(time.Millisecond)
			}
		}))
	return reg
}

func TestSchedulerCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s := NewScheduler(blockingRegistry(started, release), Options{Workers: 1})
	defer s.Close()
	spec := validPSASpec()
	spec.Engine = EngineSerial
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := s.Cancel(job.ID()); !ok {
		t.Fatal("cancel of running job rejected")
	}
	st := waitTerminal(t, job)
	if st.State != StateCancelled {
		t.Fatalf("cancelled running job finished %s", st.State)
	}
	if res, _, _ := job.Result(); res != nil {
		t.Error("cancelled job published a result")
	}
	if s.Metrics().CacheEntries != 0 {
		t.Error("cancelled job reached the cache")
	}
}

func TestSchedulerCancelQueuedJobAndQueueBound(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s := NewScheduler(blockingRegistry(started, release), Options{Workers: 1, QueueDepth: 1})
	spec := validPSASpec()
	spec.Engine = EngineSerial

	running, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now parked in the running job

	queued, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: got %v, want ErrQueueFull", err)
	}

	// A queued job cancels immediately, before ever running, and frees
	// its queue slot for a new submission on the spot.
	if _, ok := s.Cancel(queued.ID()); !ok {
		t.Fatal("cancel of queued job rejected")
	}
	if st := queued.Status(); st.State != StateCancelled {
		t.Fatalf("queued job is %s after cancel", st.State)
	}
	replacement, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("queue slot not freed by cancel: %v", err)
	}

	close(release)
	waitTerminal(t, running)
	waitTerminal(t, replacement)
	s.Close()
	if st := queued.Status(); st.Metrics.Tasks != 0 {
		t.Error("cancelled queued job ran anyway")
	}
	// Exactly the running job and the replacement started; the
	// cancelled queued job never did.
	<-started // the replacement's start event
	select {
	case eng := <-started:
		t.Errorf("cancelled queued job started on %s", eng)
	default:
	}
}

func TestSchedulerCancelMissingAndFinished(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	defer s.Close()
	if j, ok := s.Cancel("job-999999"); j != nil || ok {
		t.Error("cancel of unknown job succeeded")
	}
	job, err := s.Submit(validPSASpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	if _, ok := s.Cancel(job.ID()); ok {
		t.Error("cancel of finished job reported a change")
	}
}

func TestSchedulerSubmitValidation(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	bad := validPSASpec()
	bad.Path, bad.Synth = "/nonexistent-dir", nil
	if _, err := s.Submit(bad); err == nil {
		t.Error("unresolvable input accepted")
	}
}

func TestSchedulerClosedSubmit(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	s.Close()
	if _, err := s.Submit(validPSASpec()); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: got %v", err)
	}
}

func TestSchedulerJobTableBounded(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1, MaxJobs: 2})
	defer s.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		spec := validPSASpec()
		spec.Synth.Seed = uint64(100 + i) // distinct content: no cache hits
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, job)
		ids = append(ids, job.ID())
	}
	if got := len(s.Jobs()); got > 2 {
		t.Errorf("job table holds %d records, want <= 2", got)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Error("oldest terminal job record not evicted")
	}
	if _, ok := s.Get(ids[3]); !ok {
		t.Error("newest job record evicted")
	}
}

// Whole-job entries live in the shared block store and are evicted by
// its byte budget: with a budget too small for two job results plus
// their block entries, the older job's entry goes first, so an
// identical resubmission of the newest job still hits while the oldest
// must rerun (possibly rebuilding from whatever block entries remain).
func TestJobEntryEvictionByByteBudget(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1, CacheBytes: 1})
	defer s.Close()
	first, err := s.Submit(validPSASpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first)
	// A 1-byte budget rejects every entry (each is larger than the whole
	// budget), so nothing is cached and resubmission is a miss.
	second, err := s.Submit(validPSASpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, second); st.CacheHit {
		t.Fatal("entry cached despite a budget smaller than any entry")
	}
	m := s.Metrics()
	// Zero-byte entries (the 1×1 diagonal blocks have no pairs) may
	// remain; anything with actual payload must have been refused.
	if m.BlockCache.Bytes != 0 {
		t.Errorf("store retained payload bytes over budget: %+v", m.BlockCache)
	}
	if m.CacheHits != 0 || m.CacheMisses != 2 {
		t.Errorf("cache accounting: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
}
