package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordingStore is a Store that remembers which job ids were
// journaled at submission, so overload tests can prove the
// journal-before-acknowledge invariant: every 202 is journaled, no 429
// ever is.
type recordingStore struct {
	mu      sync.Mutex
	submits []string
}

func (r *recordingStore) JournalSubmit(rec JobRecord) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submits = append(r.submits, rec.ID)
	return nil
}
func (r *recordingStore) JournalState(string, State, string, string, time.Time) error { return nil }
func (r *recordingStore) JournalPrune([]string) error                                 { return nil }
func (r *recordingStore) JournalShutdown() error                                      { return nil }

func (r *recordingStore) ids() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.submits...)
}

// promCounter scrapes one unlabelled counter's value from the
// scheduler's Prometheus registry.
func promCounter(t *testing.T, s *Scheduler, name string) float64 {
	t.Helper()
	var b bytes.Buffer
	if err := s.Obs().Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("counter %s not found in exposition", name)
	return 0
}

// TestAPIOverloadSheddingAccounting saturates the API with concurrent
// submissions against a parked worker and a tiny queue, then audits
// the books: accepted + shed == sent, every 429 carries Retry-After,
// mdtask_jobs_rejected_total matches the shed count EXACTLY, and the
// journal holds precisely the acknowledged ids — no submission is ever
// both journaled and rejected, and none vanishes unaccounted.
func TestAPIOverloadSheddingAccounting(t *testing.T) {
	const depth, storm = 4, 32
	// Every admitted job eventually runs and reports a start event;
	// size the channel so none of them blocks on it after release.
	started := make(chan string, storm+2)
	release := make(chan struct{})
	rec := &recordingStore{}
	s := NewScheduler(blockingRegistry(started, release), Options{Workers: 1, QueueDepth: depth, Journal: rec})
	ts := httptest.NewServer(NewServer(s))
	defer func() {
		ts.Close()
		s.Close()
	}()

	spec := validPSASpec()
	spec.Engine = EngineSerial
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Park the only worker so the queue can only fill, never drain: the
	// storm's accepted/shed split becomes exact, not timing-dependent.
	first := submitJob(t, ts.URL, spec)
	<-started

	type outcome struct {
		code       int
		id         string
		retryAfter string
	}
	outcomes := make([]outcome, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st Status
			_ = json.NewDecoder(resp.Body).Decode(&st)
			outcomes[i] = outcome{code: resp.StatusCode, id: st.ID, retryAfter: resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	accepted := map[string]bool{}
	shed := 0
	for i, o := range outcomes {
		switch o.code {
		case http.StatusAccepted:
			if o.id == "" {
				t.Errorf("submission %d accepted without an id", i)
			}
			accepted[o.id] = true
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter == "" {
				t.Errorf("submission %d shed without Retry-After", i)
			}
		default:
			t.Errorf("submission %d: unexpected status %d", i, o.code)
		}
	}
	// The worker is parked and the queue bounded: exactly depth
	// submissions fit, the rest shed.
	if len(accepted) != depth || shed != storm-depth {
		t.Fatalf("accepted %d / shed %d, want %d / %d", len(accepted), shed, depth, storm-depth)
	}

	// The rejection counter matches the shed count exactly — no
	// double-counted or silent rejections.
	if got := promCounter(t, s, "mdtask_jobs_rejected_total"); got != float64(shed) {
		t.Errorf("mdtask_jobs_rejected_total = %g, want %d", got, shed)
	}
	if got := promCounter(t, s, "mdtask_jobs_submitted_total"); got != float64(len(accepted)+1) {
		t.Errorf("mdtask_jobs_submitted_total = %g, want %d", got, len(accepted)+1)
	}

	// Journal audit: exactly the acknowledged ids (plus the parked
	// first job), in particular nothing that was answered 429.
	journaled := rec.ids()
	wantJournal := map[string]bool{first.ID: true}
	for id := range accepted {
		wantJournal[id] = true
	}
	if len(journaled) != len(wantJournal) {
		t.Fatalf("journal holds %d submissions %v, want %d", len(journaled), journaled, len(wantJournal))
	}
	for _, id := range journaled {
		if !wantJournal[id] {
			t.Errorf("journal holds %s, which the API never acknowledged", id)
		}
	}

	// Drain: every acknowledged job must reach a terminal state.
	close(release)
	for id := range accepted {
		if st := pollJob(t, ts.URL, id); st.State != StateDone {
			t.Errorf("accepted job %s finished %s (%s)", id, st.State, st.Error)
		}
	}
	if st := pollJob(t, ts.URL, first.ID); st.State != StateDone {
		t.Errorf("first job finished %s (%s)", st.State, st.Error)
	}

	// And with the queue drained, the API accepts again.
	st := submitJob(t, ts.URL, spec)
	if st.ID == "" {
		t.Fatal("post-drain submission not accepted")
	}
}
