package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mdtask/internal/faultinject"
	"mdtask/internal/wal"
)

// openStore opens a WALStore in dir, failing the test on error.
func openStore(t *testing.T, dir string, opts ...func(*WALStoreOptions)) (*WALStore, *Recovered) {
	t.Helper()
	o := WALStoreOptions{Dir: dir}
	for _, f := range opts {
		f(&o)
	}
	st, rec, err := OpenWALStore(o)
	if err != nil {
		t.Fatalf("OpenWALStore(%s): %v", dir, err)
	}
	return st, rec
}

// tableJSON renders a recovered job table for comparison: JSON
// round-trips the timestamps exactly as the journal stores them, so
// two on-disk replays of equivalent logs compare byte-identical.
func tableJSON(t *testing.T, jobs []JobRecord) string {
	t.Helper()
	raw, err := json.Marshal(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// copyDir snapshots a data directory — the moral equivalent of a
// SIGKILL at that instant, since the store fsyncs every record.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func testRecord(id string) JobRecord {
	spec, _ := validPSASpec().Normalized()
	now := time.Unix(1700000000, 0).UTC()
	return JobRecord{ID: id, Spec: spec, Key: "key-" + id, State: StateQueued, Created: now, Updated: now}
}

func TestWALStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, rec := openStore(t, dir)
	if len(rec.Jobs) != 0 || rec.CleanShutdown {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	ts := time.Unix(1700000001, 0).UTC()
	if err := st.JournalSubmit(testRecord("job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := st.JournalSubmit(testRecord("job-000002")); err != nil {
		t.Fatal(err)
	}
	if err := st.JournalState("job-000001", StateRunning, "", "", ts); err != nil {
		t.Fatal(err)
	}
	if err := st.JournalState("job-000001", StateDone, "", "digest-1", ts); err != nil {
		t.Fatal(err)
	}
	if err := st.JournalShutdown(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec2 := openStore(t, dir)
	defer st2.Close()
	if !rec2.CleanShutdown {
		t.Error("clean shutdown not detected")
	}
	if len(rec2.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec2.Jobs))
	}
	if j := rec2.Jobs[0]; j.ID != "job-000001" || j.State != StateDone || j.Digest != "digest-1" {
		t.Errorf("job 1 recovered as %+v", j)
	}
	if j := rec2.Jobs[1]; j.ID != "job-000002" || j.State != StateQueued {
		t.Errorf("job 2 recovered as %+v", j)
	}
	if rec2.Skipped != 0 || rec2.Unreplayable != 0 {
		t.Errorf("healthy log reported skipped=%d unreplayable=%d", rec2.Skipped, rec2.Unreplayable)
	}
}

func TestWALStorePruneDropsRecords(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir)
	for i := 1; i <= 3; i++ {
		if err := st.JournalSubmit(testRecord(fmt.Sprintf("job-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.JournalPrune([]string{"job-000001", "job-000003"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, rec := openStore(t, dir)
	defer st2.Close()
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "job-000002" {
		t.Fatalf("prune not replayed: %+v", rec.Jobs)
	}
}

// randomLifecycle journals a deterministic pseudo-random sequence of
// submits, transitions, and prunes, and returns the expected final
// state per surviving job id.
func randomLifecycle(t *testing.T, st *WALStore, rng *rand.Rand, ops int) map[string]State {
	t.Helper()
	expect := make(map[string]State)
	var ids []string
	next := 0
	states := []State{StateRunning, StateDone, StateFailed, StateCancelled}
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(10); {
		case r < 4 || len(ids) == 0: // submit
			next++
			id := fmt.Sprintf("job-%06d", next)
			if err := st.JournalSubmit(testRecord(id)); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			expect[id] = StateQueued
		case r < 8: // transition
			id := ids[rng.Intn(len(ids))]
			s := states[rng.Intn(len(states))]
			if err := st.JournalState(id, s, "", "", time.Unix(1700000000+int64(i), 0).UTC()); err != nil {
				t.Fatal(err)
			}
			expect[id] = s
		default: // prune one terminal job
			for _, id := range ids {
				if expect[id].Terminal() {
					if err := st.JournalPrune([]string{id}); err != nil {
						t.Fatal(err)
					}
					delete(expect, id)
					for k, v := range ids {
						if v == id {
							ids = append(ids[:k], ids[k+1:]...)
							break
						}
					}
					break
				}
			}
		}
	}
	return expect
}

// TestWALStoreReplayIdempotence replays the same on-disk journal
// repeatedly: every replay must reconstruct the identical table, and
// replaying must not mutate the journal.
func TestWALStoreReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, func(o *WALStoreOptions) { o.CompactRecords = 7 })
	randomLifecycle(t, st, rand.New(rand.NewSource(42)), 120)
	st.Close()

	var first string
	for i := 0; i < 3; i++ {
		st, rec := openStore(t, dir, func(o *WALStoreOptions) { o.CompactRecords = 7 })
		got := tableJSON(t, rec.Jobs)
		st.Close()
		if i == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("replay %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestWALStoreSnapshotEquivalence runs identical randomized lifecycle
// sequences through a store that compacts aggressively and one that
// never compacts: snapshot + truncation must preserve exactly the
// replay a full log would give.
func TestWALStoreSnapshotEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		compDir, plainDir := t.TempDir(), t.TempDir()
		comp, _ := openStore(t, compDir, func(o *WALStoreOptions) { o.CompactRecords = 3 })
		plain, _ := openStore(t, plainDir, func(o *WALStoreOptions) { o.CompactRecords = 1 << 30; o.CompactBytes = 1 << 40 })
		randomLifecycle(t, comp, rand.New(rand.NewSource(seed)), 80)
		randomLifecycle(t, plain, rand.New(rand.NewSource(seed)), 80)
		comp.Close()
		plain.Close()

		c2, crec := openStore(t, compDir)
		p2, prec := openStore(t, plainDir)
		if got, want := tableJSON(t, crec.Jobs), tableJSON(t, prec.Jobs); got != want {
			t.Fatalf("seed %d: compacted replay diverged from full-log replay:\n%s\nvs\n%s", seed, got, want)
		}
		c2.Close()
		p2.Close()
	}
}

// TestWALStoreCrashAtEveryRecordBoundary snapshots the data directory
// after every single journal write — each copy is the disk image a
// SIGKILL at that record boundary would leave (the store fsyncs every
// record) — and re-opens them all: no acknowledged record may be lost,
// nothing may be skipped, and the table must match the expectation at
// that instant.
func TestWALStoreCrashAtEveryRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, func(o *WALStoreOptions) { o.CompactRecords = 5 })
	rng := rand.New(rand.NewSource(7))

	type image struct {
		dir    string
		expect string
	}
	var images []image
	snapshot := func() {
		st.mu.Lock()
		expect := tableJSON(t, st.tableLocked())
		st.mu.Unlock()
		images = append(images, image{dir: copyDir(t, dir), expect: expect})
	}
	for i := 0; i < 40; i++ {
		randomLifecycle(t, st, rng, 1)
		snapshot()
	}
	st.Close()

	for i, img := range images {
		st2, rec := openStore(t, img.dir)
		if rec.Skipped != 0 || rec.Unreplayable != 0 {
			t.Errorf("image %d: skipped=%d unreplayable=%d, want 0/0", i, rec.Skipped, rec.Unreplayable)
		}
		if got := tableJSON(t, rec.Jobs); got != img.expect {
			t.Errorf("image %d: recovered table diverged:\n%s\nvs expected\n%s", i, got, img.expect)
		}
		st2.Close()
	}
}

// TestWALStoreUnreplayableTransition checks a state record whose
// submit record is gone surfaces the job as failed (with a reason)
// instead of dropping the evidence.
func TestWALStoreUnreplayableTransition(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir)
	if err := st.JournalSubmit(testRecord("job-000001")); err != nil {
		t.Fatal(err)
	}
	// A transition for a job this journal never admitted.
	if err := st.JournalState("job-999999", StateRunning, "", "", time.Unix(1700000002, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, rec := openStore(t, dir)
	defer st2.Close()
	if rec.Unreplayable != 1 {
		t.Errorf("unreplayable = %d, want 1", rec.Unreplayable)
	}
	var orphan *JobRecord
	for i := range rec.Jobs {
		if rec.Jobs[i].ID == "job-999999" {
			orphan = &rec.Jobs[i]
		}
	}
	if orphan == nil || orphan.State != StateFailed || orphan.Error == "" {
		t.Fatalf("orphaned transition not surfaced as failed: %+v", orphan)
	}
}

// TestWALStoreFsyncFailureDoesNotLoseNextJob is the reviewer scenario
// for the fsync-failure path: a submission rejected because the WAL
// fsync failed must leave no frame behind and must not burn an LSN a
// later acknowledged submission silently collides with.
func TestWALStoreFsyncFailureDoesNotLoseNextJob(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	dir := t.TempDir()
	st, _ := openStore(t, dir)
	if err := faultinject.Activate("wal.sync=error"); err != nil {
		t.Fatal(err)
	}
	if err := st.JournalSubmit(testRecord("job-000001")); err == nil {
		t.Fatal("submit under fsync failure succeeded, want error")
	}
	faultinject.Deactivate()
	if err := st.JournalSubmit(testRecord("job-000002")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, rec := openStore(t, dir)
	defer st2.Close()
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "job-000002" {
		t.Fatalf("recovered %+v, want exactly the acknowledged job-000002 (rejected job gone, acknowledged job kept)", rec.Jobs)
	}
	if rec.Skipped != 0 || rec.Unreplayable != 0 {
		t.Errorf("recovery reported skipped=%d unreplayable=%d, want 0/0", rec.Skipped, rec.Unreplayable)
	}
}

// TestWALStoreDuplicateLSNLastWriterWins hand-crafts the disk image of
// a failed append whose rollback never reached the disk: the rejected
// frame survived at LSN 1 and the next acknowledged submission reused
// the number. Replay must apply both records (last-writer-wins), not
// silently drop the acknowledged one.
func TestWALStoreDuplicateLSNLastWriterWins(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ghost, acked := testRecord("job-000001"), testRecord("job-000002")
	for _, r := range []walRecord{
		{LSN: 1, T: "submit", Job: &ghost},
		{LSN: 1, T: "submit", Job: &acked},
		{LSN: 2, T: "state", ID: "job-000002", State: StateRunning, TS: time.Unix(1700000003, 0).UTC()},
	} {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, rec := openStore(t, dir)
	defer st.Close()
	var got *JobRecord
	for i := range rec.Jobs {
		if rec.Jobs[i].ID == "job-000002" {
			got = &rec.Jobs[i]
		}
	}
	if got == nil || got.State != StateRunning {
		t.Fatalf("acknowledged job-000002 lost to the duplicate LSN: recovered %+v", rec.Jobs)
	}
	// New appends must continue past the replayed maximum.
	if err := st.JournalSubmit(testRecord("job-000003")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, rec2 := openStore(t, dir)
	defer st2.Close()
	if len(rec2.Jobs) != 3 {
		t.Fatalf("recovered %d jobs after post-replay submit, want 3", len(rec2.Jobs))
	}
}

// TestWALStoreShutdownMarkerSurvivesAggressiveCompaction: with
// CompactRecords=1 the marker's own append must not trigger a
// compaction that truncates it, turning a clean shutdown into an
// unclean replay.
func TestWALStoreShutdownMarkerSurvivesAggressiveCompaction(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, func(o *WALStoreOptions) { o.CompactRecords = 1 })
	if err := st.JournalSubmit(testRecord("job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := st.JournalShutdown(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, rec := openStore(t, dir)
	defer st2.Close()
	if !rec.CleanShutdown {
		t.Error("shutdown marker lost to the compaction it triggered itself")
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "job-000001" {
		t.Fatalf("recovered %+v, want the one submitted job", rec.Jobs)
	}
}

// TestWALStoreInjectedJournalError checks the jobs.journal fault point
// makes writes fail visibly — and that the store stays usable after
// the fault clears.
func TestWALStoreInjectedJournalError(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	dir := t.TempDir()
	st, _ := openStore(t, dir)
	if err := faultinject.Activate("jobs.journal=error@2"); err != nil {
		t.Fatal(err)
	}
	if err := st.JournalSubmit(testRecord("job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := st.JournalSubmit(testRecord("job-000002")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected journal write = %v, want ErrInjected", err)
	}
	if st.JournalErrors() != 1 {
		t.Errorf("JournalErrors = %d, want 1", st.JournalErrors())
	}
	if err := st.JournalSubmit(testRecord("job-000003")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, rec := openStore(t, dir)
	defer st2.Close()
	if len(rec.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2 (the faulted write must not be durable)", len(rec.Jobs))
	}
}
