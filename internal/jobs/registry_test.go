package jobs

import (
	"testing"

	"mdtask/internal/leaflet"
	"mdtask/internal/psa"
)

// TestPSARunnersMatchSerial checks every engine's PSA runner produces a
// matrix bit-identical to the serial reference over the same input.
func TestPSARunnersMatchSerial(t *testing.T) {
	spec, err := validPSASpec().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	in, err := ResolveInput(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := psa.Serial(in.Ens, psa.Opts{Symmetric: true, Method: spec.hausdorffMethod()})
	if err != nil {
		t.Fatal(err)
	}
	reg := DefaultRegistry()
	for _, eng := range Engines {
		s := spec
		s.Engine = eng
		_, res, metrics, err := RunLocal(reg, s)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if res.Matrix == nil || res.Matrix.N != want.N {
			t.Fatalf("%s: bad matrix %+v", eng, res.Matrix)
		}
		for i := range want.Data {
			if res.Matrix.Data[i] != want.Data[i] {
				t.Fatalf("%s: matrix differs from serial at %d", eng, i)
			}
		}
		if metrics.Tasks == 0 {
			t.Errorf("%s: no engine tasks recorded", eng)
		}
	}
}

// TestLeafletRunnersMatchSerial checks every engine's Leaflet Finder
// runner partitions the atoms identically to the serial reference.
func TestLeafletRunnersMatchSerial(t *testing.T) {
	spec, err := validLeafletSpec().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	in, err := ResolveInput(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := leaflet.Serial(in.Coords, spec.Cutoff)
	if len(want.Components) != 2 {
		t.Fatalf("reference found %d components, want 2", len(want.Components))
	}
	reg := DefaultRegistry()
	for _, eng := range Engines {
		s := spec
		s.Engine = eng
		_, res, _, err := RunLocal(reg, s)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if res.Leaflet == nil || !leaflet.Equal(res.Leaflet, want) {
			t.Fatalf("%s: assignment differs from serial", eng)
		}
	}
}

// TestRunLocalFullMatrix checks the paper-faithful full schedule stays
// reachable through the registry and agrees with the symmetric one.
func TestRunLocalFullMatrix(t *testing.T) {
	spec := validPSASpec()
	spec.Engine = EngineSerial
	_, sym, _, err := RunLocal(DefaultRegistry(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.FullMatrix = true
	_, full, _, err := RunLocal(DefaultRegistry(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sym.Matrix.Data {
		if sym.Matrix.Data[i] != full.Matrix.Data[i] {
			t.Fatalf("symmetric and full schedules disagree at %d", i)
		}
	}
}

// TestRunLocalErrors checks spec and lookup failures surface.
func TestRunLocalErrors(t *testing.T) {
	if _, _, _, err := RunLocal(DefaultRegistry(), Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, _, _, err := RunLocal(NewRegistry(), validPSASpec()); err == nil {
		t.Error("missing runner accepted")
	}
}

// TestRunContextCancelPreemptsRun checks a pre-cancelled context makes
// runners return ErrCancelled without publishing a result.
func TestRunContextCancelPreemptsRun(t *testing.T) {
	spec, err := validPSASpec().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	in, err := ResolveInput(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range Engines {
		runner, _ := DefaultRegistry().Lookup(RunnerName(AnalysisPSA, eng))
		rc := NewRunContext()
		rc.Cancel()
		res, err := runner(rc, spec, in)
		if err != ErrCancelled || res != nil {
			t.Errorf("%s: cancelled run returned %v, %v", eng, res, err)
		}
	}
}
