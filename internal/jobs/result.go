package jobs

import (
	"time"

	"mdtask/internal/engine"
	"mdtask/internal/leaflet"
	"mdtask/internal/psa"
)

// Result is the output of one analysis job: exactly one of the fields
// is set, matching the job's analysis. Results stored in the cache are
// shared between jobs and must be treated as immutable.
type Result struct {
	// Matrix is the PSA all-pairs Hausdorff distance matrix.
	Matrix *psa.Matrix `json:"matrix,omitempty"`
	// Leaflet is the Leaflet Finder assignment.
	Leaflet *leaflet.Result `json:"leaflet,omitempty"`
}

// MetricsSnapshot is a plain (lock-free, JSON-friendly) copy of an
// engine.Metrics sink.
type MetricsSnapshot struct {
	Tasks          int64         `json:"tasks"`
	Stages         int64         `json:"stages"`
	ComputeTime    time.Duration `json:"compute_ns"`
	MaxTask        time.Duration `json:"max_task_ns"`
	MinTask        time.Duration `json:"min_task_ns"`
	BytesShuffled  int64         `json:"bytes_shuffled"`
	BytesBroadcast int64         `json:"bytes_broadcast"`
	BytesStaged    int64         `json:"bytes_staged"`
	Failures       int64         `json:"failures"`
	// Hausdorff kernel frame-pair accounting: full dRMS evaluations,
	// pairs dismissed in O(1) by a pruning bound or row cut, and
	// evaluations abandoned mid-sum.
	PairsEvaluated int64 `json:"pairs_evaluated"`
	PairsPruned    int64 `json:"pairs_pruned"`
	PairsAbandoned int64 `json:"pairs_abandoned"`
	// Ball-tree descent accounting of the indexed kernel: nodes
	// expanded, and nodes dismissed whole by their aggregate bound.
	NodesVisited int64 `json:"nodes_visited"`
	NodesPruned  int64 `json:"nodes_pruned"`
	// Streamed-path accounting: the largest frame residency any task
	// reached (≤ 2 × max_resident_frames in streamed runs) and the
	// coordinate bytes decoded from trajectory sources.
	PeakResidentFrames int64 `json:"peak_resident_frames"`
	BytesStreamed      int64 `json:"bytes_streamed"`
	// Block-cache accounting: per-block lookups against the
	// content-addressed store (hits skipped their kernel entirely,
	// saving the recorded payload bytes of recomputation).
	BlockCacheHits       int64 `json:"block_cache_hits"`
	BlockCacheMisses     int64 `json:"block_cache_misses"`
	BlockCacheBytesSaved int64 `json:"block_cache_bytes_saved"`
}

// SnapshotOf copies the current totals of a metrics sink (nil-safe).
func SnapshotOf(m *engine.Metrics) MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	s := m.Snapshot()
	return MetricsSnapshot{
		Tasks:          s.Tasks,
		Stages:         s.Stages,
		ComputeTime:    s.ComputeTime,
		MaxTask:        s.MaxTask,
		MinTask:        s.MinTask,
		BytesShuffled:  s.BytesShuffled,
		BytesBroadcast: s.BytesBroadcast,
		BytesStaged:    s.BytesStaged,
		Failures:       s.Failures,
		PairsEvaluated: s.PairsEvaluated,
		PairsPruned:    s.PairsPruned,
		PairsAbandoned: s.PairsAbandoned,
		NodesVisited:   s.NodesVisited,
		NodesPruned:    s.NodesPruned,

		PeakResidentFrames: s.PeakResidentFrames,
		BytesStreamed:      s.BytesStreamed,

		BlockCacheHits:       s.BlockCacheHits,
		BlockCacheMisses:     s.BlockCacheMisses,
		BlockCacheBytesSaved: s.BlockCacheBytesSaved,
	}
}

// resultBytes estimates the retained payload size of a job result, for
// the store's byte-budget accounting.
func resultBytes(r *Result) int64 {
	var n int64 = 64
	if r == nil {
		return n
	}
	if r.Matrix != nil {
		n += int64(len(r.Matrix.Data)) * 8
	}
	if r.Leaflet != nil {
		n += int64(len(r.Leaflet.Labels)) * 4
		for _, c := range r.Leaflet.Components {
			n += int64(len(c)) * 4
		}
	}
	return n
}
