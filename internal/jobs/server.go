package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"mdtask/internal/obs"
)

// DefaultMaxSpecBytes is the default bound on a POST /v1/jobs request
// body. Specs are small JSON documents — a well-formed one is hundreds
// of bytes — so a megabyte leaves generous headroom while keeping one
// hostile or buggy client from ballooning server memory with an
// arbitrarily large body.
const DefaultMaxSpecBytes = 1 << 20

// ServerOptions tunes the HTTP API. The zero value gets defaults.
type ServerOptions struct {
	// MaxSpecBytes bounds the POST /v1/jobs request body; oversized
	// submissions are rejected with 413 before the decoder buffers them
	// (< 1: DefaultMaxSpecBytes).
	MaxSpecBytes int64
}

// NewServer wraps a scheduler in the mdserver HTTP JSON API with
// default options:
//
//	POST   /v1/jobs          submit a job (body: Spec JSON) → Status
//	GET    /v1/jobs          list jobs → []Status
//	GET    /v1/jobs/{id}     job status + progress + metrics → Status
//	GET    /v1/jobs/{id}/result  result of a done job → Result
//	DELETE /v1/jobs/{id}     cancel a queued or running job → Status
//	GET    /v1/jobs/{id}/trace   job trace → Chrome trace_event JSON
//	GET    /v1/metrics       service-wide metrics → ServiceMetrics
//	GET    /healthz          liveness probe
func NewServer(s *Scheduler) http.Handler {
	return NewServerWith(s, ServerOptions{})
}

// NewServerWith is NewServer with explicit options (cmd/mdserver wires
// the -max-spec-bytes flag through here).
func NewServerWith(s *Scheduler, o ServerOptions) http.Handler {
	if o.MaxSpecBytes < 1 {
		o.MaxSpecBytes = DefaultMaxSpecBytes
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		// Bound the body before decoding: json.Decoder otherwise buffers
		// whatever the client sends, so one oversized request could
		// balloon server memory. MaxBytesReader also closes the
		// connection once the limit trips, ending the upload.
		r.Body = http.MaxBytesReader(w, r.Body, o.MaxSpecBytes)
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("job spec exceeds %d bytes", tooBig.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
			return
		}
		job, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			// Load shed, not an outage: tell well-behaved clients when to
			// come back instead of letting them hammer a full queue.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrJournal):
			// The server's fault, not the client's: the spec was fine but
			// durability could not be guaranteed, so nothing was admitted.
			writeError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, job.Status())
		}
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]Status, len(jobs))
		for i, j := range jobs {
			out[i] = j.Status()
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
			return
		}
		res, state, errMsg := job.Result()
		switch state {
		case StateDone:
			if res == nil {
				// A done job recovered from the journal: result bodies are
				// not journaled, only their digest, so the status survived
				// the restart but the matrix did not. Resubmitting the same
				// spec recomputes it byte-identically.
				writeError(w, http.StatusGone, fmt.Errorf("result evicted on restart; resubmit the job to recompute it"))
				return
			}
			writeJSON(w, http.StatusOK, res)
		case StateFailed:
			writeError(w, http.StatusInternalServerError, fmt.Errorf("job failed: %s", errMsg))
		case StateCancelled:
			writeError(w, http.StatusGone, fmt.Errorf("job was cancelled"))
		default:
			writeError(w, http.StatusConflict, fmt.Errorf("job is %s; no result yet", state))
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Cancel(r.PathValue("id"))
		if job == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
			return
		}
		st := job.Status()
		if !ok && st.State != StateCancelled {
			writeError(w, http.StatusConflict, fmt.Errorf("job already %s", st.State))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
			return
		}
		trace := job.TraceID()
		if trace.IsZero() {
			writeError(w, http.StatusNotFound, fmt.Errorf("job %s has no trace (tracing disabled)", job.ID()))
			return
		}
		spans, dropped := s.Obs().Tracer.Spans(trace)
		if len(spans) == 0 {
			writeError(w, http.StatusNotFound, fmt.Errorf("trace %s evicted", trace))
			return
		}
		if dropped > 0 {
			w.Header().Set("X-Trace-Dropped-Spans", fmt.Sprint(dropped))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(obs.ChromeTrace(spans))
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return mux
}

// writeJSON encodes v with status code.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError encodes a JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
