package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"path/filepath"
	"sort"
	"sync"

	"mdtask/internal/linalg"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

// Input is a job's resolved input data. Its content digest covers the
// actual coordinates (not file paths or names), so identical data
// reached through different paths — or regenerated from the same synth
// spec — content-addresses identically.
type Input struct {
	// Refs is the trajectory ensemble of a PSA job as windowed handles —
	// always set for PSA. In a streamed on-disk job they are file-backed
	// and no frame is resident until an engine windows them.
	Refs traj.RefEnsemble
	// Ens is the loaded trajectory ensemble of an in-memory PSA job
	// (nil when the job streams from disk; Refs wrap it otherwise).
	Ens traj.Ensemble
	// Coords is the membrane snapshot of a Leaflet Finder job.
	Coords []linalg.Vec3

	digestOnce sync.Once
	digest     string
	digestErr  error
}

// ContentDigest returns the hex SHA-256 of the input content, computed
// lazily (the one-shot CLI path never needs it) and cached. Streamed
// inputs are digested window by window and hash identically to the
// same data loaded in memory.
func (in *Input) ContentDigest() (string, error) {
	in.digestOnce.Do(func() {
		switch {
		case in.Ens != nil:
			in.digest = ensembleDigest(in.Ens)
		case in.Refs != nil:
			in.digest, in.digestErr = refsDigest(in.Refs)
		default:
			in.digest = coordsDigest(in.Coords)
		}
	})
	return in.digest, in.digestErr
}

// ResolveInput loads or generates the input a normalized spec describes.
func ResolveInput(spec Spec) (*Input, error) {
	switch spec.Analysis {
	case AnalysisPSA:
		if spec.MaxResidentFrames > 0 && spec.Path != "" {
			// Out-of-core: resolve handles without loading any frames.
			refs, err := resolveEnsembleRefs(spec)
			if err != nil {
				return nil, err
			}
			if err := refs.Validate(); err != nil {
				return nil, err
			}
			return &Input{Refs: refs}, nil
		}
		ens, err := resolveEnsemble(spec)
		if err != nil {
			return nil, err
		}
		if err := ens.Validate(); err != nil {
			return nil, err
		}
		return &Input{Ens: ens, Refs: traj.RefsOf(ens)}, nil
	case AnalysisLeaflet:
		coords, err := resolveCoords(spec)
		if err != nil {
			return nil, err
		}
		if len(coords) == 0 {
			return nil, fmt.Errorf("jobs: empty coordinate set")
		}
		return &Input{Coords: coords}, nil
	default:
		return nil, fmt.Errorf("jobs: unknown analysis %q", spec.Analysis)
	}
}

// resolveEnsemble reads a directory of .mdt files (sorted by name) or
// generates a random-walk ensemble.
func resolveEnsemble(spec Spec) (traj.Ensemble, error) {
	if g := spec.Synth; g != nil {
		ens := make(traj.Ensemble, g.Count)
		for i := range ens {
			ens[i] = synth.Walk(fmt.Sprintf("synth-%03d", i), g.Atoms, g.Frames, g.Seed, uint64(i))
		}
		return ens, nil
	}
	paths, err := ensemblePaths(spec.Path)
	if err != nil {
		return nil, err
	}
	ens := make(traj.Ensemble, 0, len(paths))
	for _, p := range paths {
		t, err := traj.ReadMDTFile(p)
		if err != nil {
			return nil, err
		}
		ens = append(ens, t)
	}
	return ens, nil
}

// resolveEnsembleRefs builds file-backed handles over a directory of
// .mdt files: only headers are read here, frames stay on disk until an
// engine windows them.
func resolveEnsembleRefs(spec Spec) (traj.RefEnsemble, error) {
	paths, err := ensemblePaths(spec.Path)
	if err != nil {
		return nil, err
	}
	refs := make(traj.RefEnsemble, 0, len(paths))
	for _, p := range paths {
		r, err := traj.FileRef(p)
		if err != nil {
			return nil, err
		}
		refs = append(refs, r)
	}
	return refs, nil
}

// ensemblePaths lists a PSA input directory's .mdt files, sorted.
func ensemblePaths(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.mdt"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("jobs: no .mdt files in %s (generate some with trajgen)", dir)
	}
	sort.Strings(paths)
	return paths, nil
}

// resolveCoords reads frame 0 of a single-frame .mdt membrane file or
// generates a bilayer.
func resolveCoords(spec Spec) ([]linalg.Vec3, error) {
	if g := spec.Synth; g != nil {
		return synth.Bilayer(g.Atoms, g.Seed).Coords, nil
	}
	t, err := traj.ReadMDTFile(spec.Path)
	if err != nil {
		return nil, err
	}
	if t.NFrames() == 0 {
		return nil, fmt.Errorf("jobs: %s contains no frames", spec.Path)
	}
	return t.FrameCoords(0), nil
}

// ensembleDigest hashes an ensemble's shape and coordinates.
func ensembleDigest(ens traj.Ensemble) string {
	h := sha256.New()
	writeInt(h, int64(len(ens)))
	for _, t := range ens {
		writeInt(h, int64(t.NAtoms))
		writeInt(h, int64(t.NFrames()))
		for _, f := range t.Frames {
			writeCoords(h, f.Coords)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// refsDigest hashes a streamed ensemble frame by frame — one frame
// resident at a time — producing exactly the digest ensembleDigest
// would compute on the loaded data, so streamed and in-memory
// submissions of the same input share one cache entry. The cost is one
// full scan of the on-disk data per submission (content addressing
// cannot be had for less without trusting file metadata); callers that
// cannot afford the scan on the submit path should run through
// RunLocal, which never digests.
func refsDigest(refs traj.RefEnsemble) (string, error) {
	h := sha256.New()
	writeInt(h, int64(len(refs)))
	for _, r := range refs {
		writeInt(h, int64(r.NAtoms()))
		writeInt(h, int64(r.NFrames()))
		src, err := r.Open()
		if err != nil {
			return "", err
		}
		for {
			f, err := src.NextFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				src.Close()
				return "", err
			}
			writeCoords(h, f.Coords)
		}
		if err := src.Close(); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// coordsDigest hashes a coordinate set.
func coordsDigest(coords []linalg.Vec3) string {
	h := sha256.New()
	writeInt(h, int64(len(coords)))
	writeCoords(h, coords)
	return hex.EncodeToString(h.Sum(nil))
}

func writeInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func writeCoords(h hash.Hash, coords []linalg.Vec3) {
	buf := make([]byte, 0, 24*256)
	for i, p := range coords {
		for k := 0; k < 3; k++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p[k]))
		}
		if len(buf) >= 24*256 || i == len(coords)-1 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
}
