package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"mdtask/internal/leaflet"
	"mdtask/internal/linalg"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

// Input is a job's resolved input data. Its content digest covers the
// actual coordinates (not file paths or names), so identical data
// reached through different paths — or regenerated from the same synth
// spec — content-addresses identically.
type Input struct {
	// Refs is the trajectory ensemble of a PSA job as windowed handles —
	// always set for PSA. In a streamed on-disk job they are file-backed
	// and no frame is resident until an engine windows them.
	Refs traj.RefEnsemble
	// Ens is the loaded trajectory ensemble of an in-memory PSA job
	// (nil when the job streams from disk; Refs wrap it otherwise).
	Ens traj.Ensemble
	// Coords is the membrane snapshot of a Leaflet Finder job.
	Coords []linalg.Vec3

	digestOnce sync.Once
	digest     string
	digestErr  error
}

// ContentDigest returns the hex SHA-256 of the input content, computed
// lazily (the one-shot CLI path never needs it) and cached. A PSA
// ensemble digests as the ordered list of its members' per-trajectory
// content digests (traj.Ref.Digest) — the same digests the block cache
// keys blocks under, so the one scan that content-addresses a job also
// warms every per-trajectory digest the engines will need. Streamed
// refs digest frame by frame and hash identically to the same data
// loaded in memory.
func (in *Input) ContentDigest() (string, error) {
	in.digestOnce.Do(func() {
		if in.Refs != nil {
			in.digest, in.digestErr = refsDigest(in.Refs)
			return
		}
		in.digest = leaflet.CoordsDigest(in.Coords)
	})
	return in.digest, in.digestErr
}

// ResolveInput loads or generates the input a normalized spec describes.
func ResolveInput(spec Spec) (*Input, error) {
	switch spec.Analysis {
	case AnalysisPSA:
		if spec.MaxResidentFrames > 0 && spec.Path != "" {
			// Out-of-core: resolve handles without loading any frames.
			refs, err := resolveEnsembleRefs(spec)
			if err != nil {
				return nil, err
			}
			if err := refs.Validate(); err != nil {
				return nil, err
			}
			return &Input{Refs: refs}, nil
		}
		ens, err := resolveEnsemble(spec)
		if err != nil {
			return nil, err
		}
		if err := ens.Validate(); err != nil {
			return nil, err
		}
		return &Input{Ens: ens, Refs: traj.RefsOf(ens)}, nil
	case AnalysisLeaflet:
		coords, err := resolveCoords(spec)
		if err != nil {
			return nil, err
		}
		if len(coords) == 0 {
			return nil, fmt.Errorf("jobs: empty coordinate set")
		}
		return &Input{Coords: coords}, nil
	default:
		return nil, fmt.Errorf("jobs: unknown analysis %q", spec.Analysis)
	}
}

// resolveEnsemble reads a directory of .mdt files (sorted by name) or
// generates a random-walk ensemble.
func resolveEnsemble(spec Spec) (traj.Ensemble, error) {
	if g := spec.Synth; g != nil {
		ens := make(traj.Ensemble, g.Count)
		for i := range ens {
			ens[i] = synth.Walk(fmt.Sprintf("synth-%03d", i), g.Atoms, g.Frames, g.Seed, uint64(i))
		}
		return ens, nil
	}
	paths, err := ensemblePaths(spec.Path)
	if err != nil {
		return nil, err
	}
	ens := make(traj.Ensemble, 0, len(paths))
	for _, p := range paths {
		t, err := traj.ReadMDTFile(p)
		if err != nil {
			return nil, err
		}
		ens = append(ens, t)
	}
	return ens, nil
}

// resolveEnsembleRefs builds file-backed handles over a directory of
// .mdt files: only headers are read here, frames stay on disk until an
// engine windows them.
func resolveEnsembleRefs(spec Spec) (traj.RefEnsemble, error) {
	paths, err := ensemblePaths(spec.Path)
	if err != nil {
		return nil, err
	}
	refs := make(traj.RefEnsemble, 0, len(paths))
	for _, p := range paths {
		r, err := traj.FileRef(p)
		if err != nil {
			return nil, err
		}
		refs = append(refs, r)
	}
	return refs, nil
}

// ensemblePaths lists a PSA input directory's .mdt files, sorted.
func ensemblePaths(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.mdt"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("jobs: no .mdt files in %s (generate some with trajgen)", dir)
	}
	sort.Strings(paths)
	return paths, nil
}

// resolveCoords reads frame 0 of a single-frame .mdt membrane file or
// generates a bilayer.
func resolveCoords(spec Spec) ([]linalg.Vec3, error) {
	if g := spec.Synth; g != nil {
		return synth.Bilayer(g.Atoms, g.Seed).Coords, nil
	}
	t, err := traj.ReadMDTFile(spec.Path)
	if err != nil {
		return nil, err
	}
	if t.NFrames() == 0 {
		return nil, fmt.Errorf("jobs: %s contains no frames", spec.Path)
	}
	return t.FrameCoords(0), nil
}

// refsDigest hashes an ensemble as the ordered list of its members'
// content digests. Each member digests streamed or in-memory data
// identically (traj.Ref.Digest), so streamed and in-memory submissions
// of the same input share one cache entry. The cost is one full scan of
// on-disk data per submission (content addressing cannot be had for
// less without trusting file metadata); callers that cannot afford the
// scan on the submit path should run through RunLocal, which never
// digests.
func refsDigest(refs traj.RefEnsemble) (string, error) {
	ds, err := refs.Digests()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(ds)))
	h.Write(buf[:])
	for _, d := range ds {
		h.Write([]byte(d))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
