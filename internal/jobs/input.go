package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"path/filepath"
	"sort"
	"sync"

	"mdtask/internal/linalg"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

// Input is a job's resolved input data. Its content digest covers the
// actual coordinates (not file paths or names), so identical data
// reached through different paths — or regenerated from the same synth
// spec — content-addresses identically.
type Input struct {
	// Ens is the trajectory ensemble of a PSA job.
	Ens traj.Ensemble
	// Coords is the membrane snapshot of a Leaflet Finder job.
	Coords []linalg.Vec3

	digestOnce sync.Once
	digest     string
}

// ContentDigest returns the hex SHA-256 of the input content, computed
// lazily (the one-shot CLI path never needs it) and cached.
func (in *Input) ContentDigest() string {
	in.digestOnce.Do(func() {
		if in.Ens != nil {
			in.digest = ensembleDigest(in.Ens)
		} else {
			in.digest = coordsDigest(in.Coords)
		}
	})
	return in.digest
}

// ResolveInput loads or generates the input a normalized spec describes.
func ResolveInput(spec Spec) (*Input, error) {
	switch spec.Analysis {
	case AnalysisPSA:
		ens, err := resolveEnsemble(spec)
		if err != nil {
			return nil, err
		}
		if err := ens.Validate(); err != nil {
			return nil, err
		}
		return &Input{Ens: ens}, nil
	case AnalysisLeaflet:
		coords, err := resolveCoords(spec)
		if err != nil {
			return nil, err
		}
		if len(coords) == 0 {
			return nil, fmt.Errorf("jobs: empty coordinate set")
		}
		return &Input{Coords: coords}, nil
	default:
		return nil, fmt.Errorf("jobs: unknown analysis %q", spec.Analysis)
	}
}

// resolveEnsemble reads a directory of .mdt files (sorted by name) or
// generates a random-walk ensemble.
func resolveEnsemble(spec Spec) (traj.Ensemble, error) {
	if g := spec.Synth; g != nil {
		ens := make(traj.Ensemble, g.Count)
		for i := range ens {
			ens[i] = synth.Walk(fmt.Sprintf("synth-%03d", i), g.Atoms, g.Frames, g.Seed, uint64(i))
		}
		return ens, nil
	}
	paths, err := filepath.Glob(filepath.Join(spec.Path, "*.mdt"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("jobs: no .mdt files in %s (generate some with trajgen)", spec.Path)
	}
	sort.Strings(paths)
	ens := make(traj.Ensemble, 0, len(paths))
	for _, p := range paths {
		t, err := traj.ReadMDTFile(p)
		if err != nil {
			return nil, err
		}
		ens = append(ens, t)
	}
	return ens, nil
}

// resolveCoords reads frame 0 of a single-frame .mdt membrane file or
// generates a bilayer.
func resolveCoords(spec Spec) ([]linalg.Vec3, error) {
	if g := spec.Synth; g != nil {
		return synth.Bilayer(g.Atoms, g.Seed).Coords, nil
	}
	t, err := traj.ReadMDTFile(spec.Path)
	if err != nil {
		return nil, err
	}
	if t.NFrames() == 0 {
		return nil, fmt.Errorf("jobs: %s contains no frames", spec.Path)
	}
	return t.FrameCoords(0), nil
}

// ensembleDigest hashes an ensemble's shape and coordinates.
func ensembleDigest(ens traj.Ensemble) string {
	h := sha256.New()
	writeInt(h, int64(len(ens)))
	for _, t := range ens {
		writeInt(h, int64(t.NAtoms))
		writeInt(h, int64(t.NFrames()))
		for _, f := range t.Frames {
			writeCoords(h, f.Coords)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// coordsDigest hashes a coordinate set.
func coordsDigest(coords []linalg.Vec3) string {
	h := sha256.New()
	writeInt(h, int64(len(coords)))
	writeCoords(h, coords)
	return hex.EncodeToString(h.Sum(nil))
}

func writeInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func writeCoords(h hash.Hash, coords []linalg.Vec3) {
	buf := make([]byte, 0, 24*256)
	for i, p := range coords {
		for k := 0; k < 3; k++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p[k]))
		}
		if len(buf) >= 24*256 || i == len(coords)-1 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
}
