package jobs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdtask/internal/obs"
)

// awaitDone polls a job to a terminal state.
func awaitDone(t *testing.T, job *Job) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := job.Status()
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", job.ID(), st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// spansByName indexes a trace for assertions.
func spansByName(spans []obs.WireSpan) map[string][]obs.WireSpan {
	out := make(map[string][]obs.WireSpan)
	for _, ws := range spans {
		out[ws.Name] = append(out[ws.Name], ws)
	}
	return out
}

// The end-to-end tracing contract of a fleet job: one trace covers the
// scheduler's lifecycle spans, the coordinator's fleet spans, and the
// worker-side kernel spans shipped back over the wire protocol, with
// every kernel span parented under the lease that granted its unit.
func TestFleetJobEndToEndTrace(t *testing.T) {
	ob := obs.New("mdserver")
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1, Obs: ob})
	defer s.Close()

	job, err := s.Submit(Spec{
		Analysis:    AnalysisPSA,
		Engine:      EngineFleet,
		Parallelism: 2,
		Method:      "naive",
		Synth:       &SynthSpec{Count: 3, Atoms: 8, Frames: 4, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitDone(t, job)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.TraceID == "" {
		t.Fatal("done job has no trace id in its status")
	}
	trace := job.TraceID()
	if trace.String() != st.TraceID {
		t.Fatalf("Status trace id %s != Job.TraceID %s", st.TraceID, trace)
	}

	spans, dropped := ob.Tracer.Spans(trace)
	if dropped != 0 {
		t.Fatalf("%d spans dropped", dropped)
	}
	byName := spansByName(spans)
	for _, want := range []string{
		"job", "queue.wait", "run", "engine.fleet",
		"fleet.job", "fleet.lease", "fleet.record", "worker.kernel",
	} {
		if len(byName[want]) == 0 {
			var names []string
			for n := range byName {
				names = append(names, n)
			}
			t.Fatalf("trace missing %q spans; have %v", want, names)
		}
	}
	// Every span shares the job's trace id.
	for _, ws := range spans {
		if ws.Trace != trace.String() {
			t.Fatalf("span %q is in trace %s, want %s", ws.Name, ws.Trace, trace)
		}
	}
	// Each worker kernel span nests under one of the lease spans, even
	// though it crossed the wire as a traceparent header and came back
	// inside a unit result.
	leases := make(map[string]bool)
	for _, ws := range byName["fleet.lease"] {
		leases[ws.Span] = true
	}
	for _, k := range byName["worker.kernel"] {
		if !leases[k.Parent] {
			t.Fatalf("worker.kernel span %s parented under %q, not a lease span", k.Span, k.Parent)
		}
		if k.Proc == "mdserver" {
			t.Fatal("worker.kernel span claims the coordinator process")
		}
	}
	// Completed leases carry their outcome.
	for _, l := range byName["fleet.lease"] {
		if l.Attrs["outcome"] == "" {
			t.Fatalf("lease span %s has no outcome attr", l.Span)
		}
	}

	// The exported Chrome trace is valid JSON and names both processes.
	var file struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(obs.ChromeTrace(spans), &file); err != nil {
		t.Fatalf("Chrome export: %v", err)
	}
	procs := make(map[string]bool)
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" {
			procs[ev.Args["name"].(string)] = true
		}
	}
	if !procs["mdserver"] {
		t.Fatalf("export lacks the coordinator process row: %v", procs)
	}
	workerProc := false
	for p := range procs {
		if strings.HasPrefix(p, "local-") {
			workerProc = true
		}
	}
	if !workerProc {
		t.Fatalf("export lacks a worker process row: %v", procs)
	}
}

// An in-process engine's trace nests block spans under the engine
// stage, and cache.do spans under the blocks.
func TestInProcessEngineTrace(t *testing.T) {
	ob := obs.New("mdserver")
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1, Obs: ob})
	defer s.Close()

	job, err := s.Submit(Spec{
		Analysis: AnalysisPSA,
		Engine:   EngineDask,
		Method:   "naive",
		Synth:    &SynthSpec{Count: 3, Atoms: 8, Frames: 4, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := awaitDone(t, job); st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	spans, _ := ob.Tracer.Spans(job.TraceID())
	byName := spansByName(spans)
	for _, want := range []string{"job", "queue.wait", "run", "engine.dask", "psa.block", "cache.do"} {
		if len(byName[want]) == 0 {
			t.Fatalf("trace missing %q spans", want)
		}
	}
	// psa.block spans parent under engine.dask.
	eng := byName["engine.dask"][0]
	for _, b := range byName["psa.block"] {
		if b.Parent != eng.Span {
			t.Fatalf("psa.block parented under %q, want engine span %q", b.Parent, eng.Span)
		}
	}
}

// A whole-job cache hit completes at submission with a (tiny) trace of
// its own, and the second submission's metrics count the hit.
func TestCacheHitJobTrace(t *testing.T) {
	ob := obs.New("mdserver")
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1, Obs: ob})
	defer s.Close()

	spec := Spec{
		Analysis: AnalysisPSA,
		Engine:   EngineSerial,
		Method:   "naive",
		Synth:    &SynthSpec{Count: 2, Atoms: 8, Frames: 4, Seed: 3},
	}
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	awaitDone(t, first)
	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := awaitDone(t, second)
	if !st.CacheHit {
		t.Fatal("second submission missed the job cache")
	}
	spans, _ := ob.Tracer.Spans(second.TraceID())
	if len(spans) != 1 || spans[0].Name != "job" || spans[0].Attrs["cache_hit"] != "true" {
		t.Fatalf("cache-hit trace = %+v, want a single job span with cache_hit", spans)
	}
}

// GET /v1/jobs/{id}/trace serves the Chrome export over the API, and
// 404s for unknown jobs and untraced jobs.
func TestTraceEndpoint(t *testing.T) {
	ob := obs.New("mdserver")
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1, Obs: ob})
	defer s.Close()
	h := NewServer(s)

	job, err := s.Submit(Spec{
		Analysis: AnalysisPSA,
		Engine:   EngineSerial,
		Method:   "naive",
		Synth:    &SynthSpec{Count: 2, Atoms: 8, Frames: 4, Seed: 21},
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitDone(t, job)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+job.ID()+"/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace endpoint: %d %s", rec.Code, rec.Body.String())
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &file); err != nil {
		t.Fatalf("trace body: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/job-999999/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job trace: %d", rec.Code)
	}
}

// With tracing disabled, jobs run normally, statuses carry no trace
// id, and the metrics registry still fills.
func TestTracingDisabled(t *testing.T) {
	ob := obs.NoTrace()
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1, Obs: ob})
	defer s.Close()

	job, err := s.Submit(Spec{
		Analysis: AnalysisPSA,
		Engine:   EngineSerial,
		Method:   "naive",
		Synth:    &SynthSpec{Count: 2, Atoms: 8, Frames: 4, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitDone(t, job)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.TraceID != "" {
		t.Fatalf("trace id %q reported with tracing off", st.TraceID)
	}
	var b strings.Builder
	if err := ob.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mdtask_jobs_submitted_total 1",
		`mdtask_jobs_completed_total{state="done"} 1`,
		"mdtask_job_queue_wait_seconds_count 1",
		"mdtask_block_kernel_seconds_count",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, b.String())
		}
	}
}
