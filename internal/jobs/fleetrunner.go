package jobs

import (
	"errors"

	"mdtask/internal/blockstore"
	"mdtask/internal/fleet"
	"mdtask/internal/leaflet"
	"mdtask/internal/obs"
	"mdtask/internal/psa"
)

// The fleet runners bridge the jobs layer to the distributed
// coordinator/worker engine. Bound to a shared coordinator (the one
// cmd/mdserver embeds and cmd/mdworker processes pull from), a job's
// blocks fan out across whatever workers are registered; with no
// coordinator bound (the CLI one-shot path), each job boots an
// ephemeral in-process loopback fleet sized by the spec's parallelism,
// so `-engine fleet` works standalone while still exercising the full
// wire protocol.

// fleetCoordinator resolves the coordinator a fleet job runs on,
// returning a cleanup for the ephemeral case. A shared coordinator
// already carries the server's block store; an ephemeral loopback
// fleet is handed the scheduler's store so even one-shot fleet jobs
// hit and feed the same cache as every other engine.
func fleetCoordinator(shared *fleet.Coordinator, workers int, store *blockstore.Store, tracer *obs.Tracer) (*fleet.Coordinator, func(), error) {
	if shared != nil {
		return shared, func() {}, nil
	}
	lo := fleet.LocalOptions()
	lo.BlockStore = store
	lo.Tracer = tracer
	lf, err := fleet.StartLocal(workers, lo)
	if err != nil {
		return nil, nil, err
	}
	return lf.C, lf.Close, nil
}

// awaitFleet waits a submitted fleet job out, mapping abort to the
// jobs layer's cooperative-cancellation error.
func awaitFleet(c *fleet.Coordinator, job *fleet.Job, rc *RunContext) error {
	defer c.Drop(job)
	if err := job.Wait(rc.Cancelled); err != nil {
		if errors.Is(err, fleet.ErrAborted) {
			return ErrCancelled
		}
		return err
	}
	return nil
}

// psaFleetRunner builds the PSA runner for the fleet engine.
func psaFleetRunner(shared *fleet.Coordinator) Runner {
	return func(rc *RunContext, spec Spec, in *Input) (*Result, error) {
		if rc.Cancelled() {
			return nil, ErrCancelled
		}
		engSpan := rc.Tracer().StartChild(rc.TraceParent(), "engine."+EngineFleet)
		defer engSpan.End()
		c, cleanup, err := fleetCoordinator(shared, spec.ranks(), rc.BlockStore(), rc.Tracer())
		if err != nil {
			return nil, err
		}
		defer cleanup()
		// Cancellation and metrics are coordinator-side concerns, so the
		// opts carry only what changes the computed values' schedule, the
		// streaming window, and the trace the coordinator's fleet.job span
		// parents under.
		opts := psa.Opts{
			Symmetric:         !spec.FullMatrix,
			Method:            spec.hausdorffMethod(),
			MaxResidentFrames: spec.MaxResidentFrames,
			TraceParent:       engSpan.Context(),
		}
		job, err := c.SubmitPSARefs(in.Refs, spec.groupSize(len(in.Refs)), opts, rc.Metrics())
		if err != nil {
			return nil, err
		}
		if err := awaitFleet(c, job, rc); err != nil {
			return nil, err
		}
		return &Result{Matrix: job.Matrix()}, nil
	}
}

// leafletFleetRunner builds the Leaflet Finder runner for the fleet
// engine. All approaches run the Parallel-CC dataflow over the 2-D
// tiling (only components cross the wire); the tree approach selects
// BallTree edge discovery, the rest pairwise distances.
func leafletFleetRunner(shared *fleet.Coordinator) Runner {
	return func(rc *RunContext, spec Spec, in *Input) (*Result, error) {
		if rc.Cancelled() {
			return nil, ErrCancelled
		}
		approach, _, err := ParseApproach(spec.Approach)
		if err != nil {
			return nil, err
		}
		engSpan := rc.Tracer().StartChild(rc.TraceParent(), "engine."+EngineFleet)
		defer engSpan.End()
		c, cleanup, err := fleetCoordinator(shared, spec.ranks(), rc.BlockStore(), rc.Tracer())
		if err != nil {
			return nil, err
		}
		defer cleanup()
		tree := approach == leaflet.TreeSearch
		job, err := c.SubmitLeaflet(in.Coords, spec.Cutoff, spec.Tasks, tree, rc.Metrics(), engSpan.Context())
		if err != nil {
			return nil, err
		}
		if err := awaitFleet(c, job, rc); err != nil {
			return nil, err
		}
		return &Result{Leaflet: job.Leaflet()}, nil
	}
}
