package jobs

import (
	"container/list"
	"sync"
)

// Cache is a bounded, content-addressed result cache: CacheKey(spec,
// input digest) → *Result, with LRU eviction. Identical resubmissions
// are served from it without re-running any engine tasks.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

// NewCache returns a cache holding up to max results (max < 1: 128).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 128
	}
	return &Cache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached result for key, refreshing its recency.
func (c *Cache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result under key, evicting the least recently used entry
// when full.
func (c *Cache) Put(key string, res *Result) {
	if res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
