package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"mdtask/internal/faultinject"
	"mdtask/internal/obs"
	"mdtask/internal/wal"
)

// Store is the durability sink the scheduler journals every job
// lifecycle transition through: the submitted (normalized) spec and
// cache key, each state change with its error message or result
// digest, prunes of evicted terminal records, and a clean-shutdown
// marker. A nil Store in Options leaves the scheduler memory-only
// (the pre-durability behaviour); WALStore is the crash-recoverable
// implementation cmd/mdserver wires in under -data-dir.
type Store interface {
	// JournalSubmit records an admitted job: its normalized spec, cache
	// key, and initial state (StateQueued, or StateDone with a digest
	// for a whole-job cache hit). A non-nil error MUST mean the record
	// is not durable — the scheduler un-admits the job and fails the
	// submission, so no acknowledged job can be lost.
	JournalSubmit(rec JobRecord) error
	// JournalState records a lifecycle transition.
	JournalState(id string, state State, errMsg, resultDigest string, ts time.Time) error
	// JournalPrune records the eviction of terminal job records, so
	// replay state stays bounded alongside the in-memory table.
	JournalPrune(ids []string) error
	// JournalShutdown records a clean shutdown: every transition before
	// it is known journaled.
	JournalShutdown() error
}

// JobRecord is the durable image of one job: everything recovery
// needs to re-admit it (specs are normalized before journaling, so
// replay never re-validates defaults). Result bodies are NOT
// journaled — only their digest — so a job recovered in StateDone
// keeps its status and provenance but must be resubmitted to
// recompute its matrix (deterministic kernels make the recomputation
// byte-identical).
type JobRecord struct {
	ID      string    `json:"id"`
	Spec    Spec      `json:"spec"`
	Key     string    `json:"key"`
	State   State     `json:"state"`
	Error   string    `json:"error,omitempty"`
	Digest  string    `json:"digest,omitempty"`
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
}

// walRecord is the JSON wire format of one journal entry. LSN is a
// monotone sequence number persisted in snapshots, making replay of a
// log that still carries pre-snapshot records (a crash between
// snapshot rename and log truncation) a no-op for the already-applied
// prefix.
type walRecord struct {
	LSN    uint64     `json:"lsn"`
	T      string     `json:"t"` // submit | state | prune | shutdown
	Job    *JobRecord `json:"job,omitempty"`
	ID     string     `json:"id,omitempty"`
	State  State      `json:"state,omitempty"`
	Err    string     `json:"err,omitempty"`
	Digest string     `json:"digest,omitempty"`
	IDs    []string   `json:"ids,omitempty"`
	TS     time.Time  `json:"ts,omitempty"`
}

// snapshotState is the compacted journal state: the job table at the
// snapshot LSN.
type snapshotState struct {
	LSN  uint64      `json:"lsn"`
	Jobs []JobRecord `json:"jobs"`
}

// Recovered is what OpenWALStore reconstructed from disk.
type Recovered struct {
	// Jobs is the recovered job table in original submission order.
	Jobs []JobRecord
	// Replayed counts journal records applied during recovery
	// (including records a snapshot had already absorbed).
	Replayed int
	// Skipped counts regions the WAL layer could not decode: a torn
	// tail and bit-flipped (CRC-mismatched or corrupted-header)
	// records. Zero on a healthy log.
	Skipped int
	// SkippedBytes is the total size of the skipped regions — one
	// frame's worth for a flipped bit, everything after the damage for
	// a lost log suffix.
	SkippedBytes int64
	// Unreplayable counts records that decoded but could not be applied
	// (unknown type, state for a never-submitted job, unparseable JSON).
	// Affected jobs are surfaced as StateFailed with a reason rather
	// than silently dropped.
	Unreplayable int
	// CleanShutdown reports whether the journal ends with a shutdown
	// marker — an unclean log means the process died with the journal
	// mid-story and recovery re-runs whatever was in flight.
	CleanShutdown bool
}

// WALStoreOptions sizes a WALStore.
type WALStoreOptions struct {
	// Dir is the data directory (wal.log + snapshot live here).
	Dir string
	// Sync is the fsync policy (default wal.SyncAlways: an acknowledged
	// submission survives SIGKILL).
	Sync wal.SyncPolicy
	// SyncInterval bounds the unsynced window under wal.SyncInterval.
	SyncInterval time.Duration
	// CompactBytes triggers snapshot + log truncation when the log
	// exceeds this size (< 1: 1 MiB).
	CompactBytes int64
	// CompactRecords triggers compaction after this many appends since
	// the last snapshot (< 1: 1024).
	CompactRecords int
}

// WALStore is the durable Store: a write-ahead log of lifecycle
// records plus a shadow job table it snapshots and compacts from.
// All methods are safe for concurrent use.
type WALStore struct {
	mu           sync.Mutex
	log          *wal.Log
	o            WALStoreOptions
	lsn          uint64
	jobs         map[string]*JobRecord
	order        []string
	sinceCompact int

	recovered   Recovered
	journalErrs int64
}

// OpenWALStore opens (or creates) the durable job store under o.Dir
// and replays snapshot + log into the recovered job table. The store
// is ready for journaling on return; feed Recovered.Jobs to
// Scheduler.Recover to re-admit them.
func OpenWALStore(o WALStoreOptions) (*WALStore, *Recovered, error) {
	if o.CompactBytes < 1 {
		o.CompactBytes = 1 << 20
	}
	if o.CompactRecords < 1 {
		o.CompactRecords = 1024
	}
	l, walRec, err := wal.Open(wal.Options{Dir: o.Dir, Sync: o.Sync, SyncInterval: o.SyncInterval})
	if err != nil {
		return nil, nil, err
	}
	st := &WALStore{
		log:  l,
		o:    o,
		jobs: make(map[string]*JobRecord),
	}
	rec := &Recovered{Skipped: walRec.Skipped, SkippedBytes: walRec.SkippedBytes}
	if walRec.Snapshot != nil {
		var snap snapshotState
		if err := json.Unmarshal(walRec.Snapshot, &snap); err != nil {
			l.Close()
			return nil, nil, fmt.Errorf("jobs: decoding journal snapshot: %w", err)
		}
		st.lsn = snap.LSN
		for i := range snap.Jobs {
			j := snap.Jobs[i]
			st.jobs[j.ID] = &j
			st.order = append(st.order, j.ID)
		}
	}
	// The guard below compares against the LSN the snapshot was taken
	// at, NOT the running st.lsn: replay is last-writer-wins, so a
	// duplicate LSN in the log (a failed append whose rollback did not
	// reach the disk before a crash, followed by a reuse of its number)
	// applies both records in order instead of silently dropping the
	// acknowledged one.
	snapLSN := st.lsn
	for _, raw := range walRec.Records {
		st.apply(raw, snapLSN, rec)
	}
	st.recovered = *rec
	rec.Jobs = st.tableLocked()
	return st, rec, nil
}

// apply replays one raw journal record into the shadow table. snapLSN
// is the LSN the snapshot (if any) was taken at; records at or below
// it were already absorbed. Above it, records apply unconditionally —
// last-writer-wins on a duplicate LSN (see OpenWALStore).
func (st *WALStore) apply(raw []byte, snapLSN uint64, rec *Recovered) {
	var r walRecord
	if err := json.Unmarshal(raw, &r); err != nil {
		rec.Unreplayable++
		rec.CleanShutdown = false
		return
	}
	rec.Replayed++
	if r.LSN <= snapLSN {
		// Already absorbed by the snapshot (crash landed between
		// snapshot rename and log truncation): re-applying is a no-op.
		return
	}
	if r.LSN > st.lsn {
		st.lsn = r.LSN
	}
	rec.CleanShutdown = false
	switch r.T {
	case "submit":
		if r.Job == nil {
			rec.Unreplayable++
			return
		}
		j := *r.Job
		if _, dup := st.jobs[j.ID]; !dup {
			st.order = append(st.order, j.ID)
		}
		st.jobs[j.ID] = &j
	case "state":
		j, ok := st.jobs[r.ID]
		if !ok {
			// A transition without its submission (lost to a skipped
			// region): surface the job as failed rather than dropping the
			// evidence it existed.
			rec.Unreplayable++
			st.jobs[r.ID] = &JobRecord{
				ID:    r.ID,
				State: StateFailed,
				Error: fmt.Sprintf("jobs: unreplayable journal: %q transition without a surviving submit record", r.State),
			}
			st.order = append(st.order, r.ID)
			return
		}
		j.State, j.Error, j.Digest, j.Updated = r.State, r.Err, r.Digest, r.TS
	case "prune":
		for _, id := range r.IDs {
			if _, ok := st.jobs[id]; ok {
				delete(st.jobs, id)
				for i, oid := range st.order {
					if oid == id {
						st.order = append(st.order[:i], st.order[i+1:]...)
						break
					}
				}
			}
		}
	case "shutdown":
		rec.CleanShutdown = true
	default:
		rec.Unreplayable++
	}
}

// tableLocked copies the shadow table in submission order.
func (st *WALStore) tableLocked() []JobRecord {
	out := make([]JobRecord, 0, len(st.order))
	for _, id := range st.order {
		if j, ok := st.jobs[id]; ok {
			out = append(out, *j)
		}
	}
	return out
}

// append journals one record: assign the next LSN, write it to the
// WAL, apply it to the shadow table, and compact if the log has grown
// past its bounds.
func (st *WALStore) append(r walRecord, shadow func()) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := faultinject.Fire("jobs.journal"); err != nil {
		st.journalErrs++
		return err
	}
	st.lsn++
	r.LSN = st.lsn
	raw, err := json.Marshal(r)
	if err != nil {
		st.journalErrs++
		return err
	}
	if err := st.log.Append(raw); err != nil {
		st.journalErrs++
		st.lsn--
		return err
	}
	shadow()
	st.sinceCompact++
	if st.sinceCompact >= st.o.CompactRecords || st.log.LogBytes() >= st.o.CompactBytes {
		st.compactLocked()
	}
	return nil
}

// compactLocked snapshots the shadow table and truncates the log.
// Failures are counted, not fatal: the un-compacted log remains fully
// replayable.
func (st *WALStore) compactLocked() {
	state, err := json.Marshal(snapshotState{LSN: st.lsn, Jobs: st.tableLocked()})
	if err != nil {
		st.journalErrs++
		return
	}
	if err := st.log.Compact(state); err != nil {
		st.journalErrs++
		return
	}
	st.sinceCompact = 0
}

// JournalSubmit implements Store.
func (st *WALStore) JournalSubmit(rec JobRecord) error {
	return st.append(walRecord{T: "submit", Job: &rec}, func() {
		j := rec
		if _, dup := st.jobs[j.ID]; !dup {
			st.order = append(st.order, j.ID)
		}
		st.jobs[j.ID] = &j
	})
}

// JournalState implements Store.
func (st *WALStore) JournalState(id string, state State, errMsg, resultDigest string, ts time.Time) error {
	return st.append(walRecord{T: "state", ID: id, State: state, Err: errMsg, Digest: resultDigest, TS: ts}, func() {
		if j, ok := st.jobs[id]; ok {
			j.State, j.Error, j.Digest, j.Updated = state, errMsg, resultDigest, ts
		}
	})
}

// JournalPrune implements Store.
func (st *WALStore) JournalPrune(ids []string) error {
	return st.append(walRecord{T: "prune", IDs: ids}, func() {
		for _, id := range ids {
			if _, ok := st.jobs[id]; ok {
				delete(st.jobs, id)
				for i, oid := range st.order {
					if oid == id {
						st.order = append(st.order[:i], st.order[i+1:]...)
						break
					}
				}
			}
		}
	})
}

// JournalShutdown implements Store. It compacts first, then appends
// the marker, so a clean restart replays a snapshot plus exactly one
// shutdown record instead of the whole session's log. The marker is
// written outside the compaction accounting: a compaction triggered
// by the marker's own append (CompactRecords=1) would truncate it and
// make the clean shutdown replay as unclean.
func (st *WALStore) JournalShutdown() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.compactLocked()
	if err := faultinject.Fire("jobs.journal"); err != nil {
		st.journalErrs++
		return err
	}
	st.lsn++
	raw, err := json.Marshal(walRecord{LSN: st.lsn, T: "shutdown"})
	if err != nil {
		st.journalErrs++
		return err
	}
	if err := st.log.Append(raw); err != nil {
		st.journalErrs++
		st.lsn--
		return err
	}
	return st.log.Sync()
}

// Close closes the underlying log.
func (st *WALStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.log.Close()
}

// Recovery returns what OpenWALStore reconstructed (the job list is
// not retained — use the Recovered returned at open).
func (st *WALStore) Recovery() Recovered {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.recovered
}

// JournalErrors counts failed journal writes since open.
func (st *WALStore) JournalErrors() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.journalErrs
}

// RegisterMetrics exposes the store's durability accounting on a
// metrics registry: recovery results (replayed / skipped /
// unreplayable record counts — `wal_records_skipped` > 0 means the
// log saw corruption) and live WAL activity (appends, fsyncs,
// snapshots, log size, journal errors).
func (st *WALStore) RegisterMetrics(m *obs.Registry) {
	m.CounterFunc("mdtask_wal_records_replayed_total",
		"Journal records replayed during the last recovery.",
		func() float64 { return float64(st.recovered.Replayed) })
	m.CounterFunc("mdtask_wal_records_skipped_total",
		"Journal regions skipped during the last recovery (torn tail or CRC mismatch).",
		func() float64 { return float64(st.recovered.Skipped) })
	m.CounterFunc("mdtask_wal_bytes_skipped_total",
		"Total size of the journal regions skipped during the last recovery.",
		func() float64 { return float64(st.recovered.SkippedBytes) })
	m.CounterFunc("mdtask_wal_records_unreplayable_total",
		"Journal records that decoded but could not be applied; affected jobs are marked failed.",
		func() float64 { return float64(st.recovered.Unreplayable) })
	m.CounterFunc("mdtask_wal_appends_total",
		"Records appended to the job journal since boot.",
		func() float64 { return float64(st.log.Stats().Appends) })
	m.CounterFunc("mdtask_wal_fsyncs_total",
		"fsyncs issued by the job journal since boot.",
		func() float64 { return float64(st.log.Stats().Syncs) })
	m.CounterFunc("mdtask_wal_snapshots_total",
		"Snapshot + compaction cycles since boot.",
		func() float64 { return float64(st.log.Stats().Snapshots) })
	m.GaugeFunc("mdtask_wal_log_bytes",
		"Current size of the job journal's append-only log.",
		func() float64 { return float64(st.log.LogBytes()) })
	m.CounterFunc("mdtask_wal_journal_errors_total",
		"Journal writes that failed (the affected submissions were rejected).",
		func() float64 { return float64(st.JournalErrors()) })
}

// resultDigestOf content-addresses a job result (hex SHA-256 of its
// canonical JSON encoding); journaled so a recovered StateDone record
// can be checked against a recomputation.
func resultDigestOf(r *Result) string {
	if r == nil {
		return ""
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
