package jobs

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdtask/internal/faultinject"
)

// TestSchedulerCrashRecovery simulates a SIGKILL mid-workload: one job
// running, two queued, the data directory snapshotted at that instant.
// A fresh scheduler over the copied directory must re-run all three
// from their journaled specs to byte-identical results, and new
// submissions must not collide with recovered ids.
func TestSchedulerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir)
	// Buffered past the job count: once released, the drained jobs'
	// runners must not block on their started-signal sends.
	started := make(chan string, 8)
	release := make(chan struct{})
	s := NewScheduler(blockingRegistry(started, release), Options{Workers: 1, Journal: st})

	spec := validPSASpec()
	spec.Engine = EngineSerial
	var ids []string
	var specs []Spec
	for i := 0; i < 3; i++ {
		sp := spec
		synth := *spec.Synth // distinct content per job, unshared
		synth.Seed = uint64(100 + i)
		sp.Synth = &synth
		job, err := s.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID())
		specs = append(specs, sp)
	}
	<-started // job 1 is running; 2 and 3 are queued — all journaled

	// The "crash": a byte-level copy of the fsynced data directory is
	// exactly what a SIGKILL here would leave behind.
	crashDir := copyDir(t, dir)
	close(release)
	s.Close()
	st.Close()

	st2, rec := openStore(t, crashDir)
	defer st2.Close()
	if rec.CleanShutdown {
		t.Error("mid-workload image reported a clean shutdown")
	}
	if len(rec.Jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(rec.Jobs))
	}
	if rec.Jobs[0].State != StateRunning || rec.Jobs[1].State != StateQueued || rec.Jobs[2].State != StateQueued {
		t.Fatalf("recovered states %s/%s/%s, want running/queued/queued",
			rec.Jobs[0].State, rec.Jobs[1].State, rec.Jobs[2].State)
	}

	s2 := NewScheduler(DefaultRegistry(), Options{Workers: 2, Journal: st2})
	defer s2.Close()
	s2.Recover(rec.Jobs)
	for i, id := range ids {
		job, ok := s2.Get(id)
		if !ok {
			t.Fatalf("job %s lost in recovery", id)
		}
		fin := waitTerminal(t, job)
		if fin.State != StateDone {
			t.Fatalf("recovered job %s finished %s (%s)", id, fin.State, fin.Error)
		}
		// Byte-identical to a fresh run of the same spec: deterministic
		// kernels are what make at-least-once re-execution safe.
		ref := referenceDigest(t, specs[i])
		res, _, _ := job.Result()
		if got := resultDigestOf(res); got != ref {
			t.Errorf("recovered job %s digest %s, reference run %s", id, got, ref)
		}
	}
	fresh, err := s2.Submit(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID() != "job-000004" {
		t.Errorf("post-recovery submission got id %s, want job-000004", fresh.ID())
	}
}

// referenceDigest runs a spec on a throwaway journal-less scheduler
// and returns its result digest.
func referenceDigest(t *testing.T, spec Spec) string {
	t.Helper()
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	defer s.Close()
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, job); fin.State != StateDone {
		t.Fatalf("reference run finished %s (%s)", fin.State, fin.Error)
	}
	res, _, _ := job.Result()
	return resultDigestOf(res)
}

// TestSchedulerCleanShutdownRecovery checks the full graceful cycle:
// run to done, Close journals the shutdown marker, and the next boot
// sees a clean journal whose done record carries a digest that a
// recomputation of the same spec reproduces exactly.
func TestSchedulerCleanShutdownRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir)
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1, Journal: st})
	job, err := s.Submit(validPSASpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	res, _, _ := job.Result()
	digest := resultDigestOf(res)
	id := job.ID()
	s.Close()
	st.Close()

	st2, rec := openStore(t, dir)
	defer st2.Close()
	if !rec.CleanShutdown {
		t.Error("graceful shutdown left an unclean journal")
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].State != StateDone || rec.Jobs[0].Digest != digest {
		t.Fatalf("recovered %+v, want done record with digest %s", rec.Jobs, digest)
	}

	s2 := NewScheduler(DefaultRegistry(), Options{Workers: 1, Journal: st2})
	defer s2.Close()
	s2.Recover(rec.Jobs)
	recovered, ok := s2.Get(id)
	if !ok {
		t.Fatalf("done job %s lost in recovery", id)
	}
	if res2, state, _ := recovered.Result(); state != StateDone || res2 != nil {
		t.Fatalf("recovered done job: state %s, result %v (bodies are not journaled)", state, res2)
	}
	// Resubmitting the spec recomputes the matrix; the digest must
	// match what the journal recorded before the restart.
	rerun, err := s2.Submit(validPSASpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, rerun); fin.State != StateDone {
		t.Fatalf("recomputation finished %s (%s)", fin.State, fin.Error)
	}
	res3, _, _ := rerun.Result()
	if got := resultDigestOf(res3); got != digest {
		t.Errorf("recomputed digest %s, journaled %s", got, digest)
	}
}

// TestSubmitFailsWhenJournalFails checks the durability contract at
// the API edge: if the journal cannot take the submit record, the
// submission is rejected and nothing is admitted — and the id sequence
// does not leak.
func TestSubmitFailsWhenJournalFails(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	dir := t.TempDir()
	st, _ := openStore(t, dir)
	defer st.Close()
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1, Journal: st})
	defer s.Close()
	if err := faultinject.Activate("jobs.journal=error"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(validPSASpec())
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("submit with failing journal = %v, want ErrInjected", err)
	}
	if !errors.Is(err, ErrJournal) {
		// The server maps ErrJournal to a 5xx: the spec was valid, the
		// service just couldn't make it durable.
		t.Fatalf("submit with failing journal = %v, want ErrJournal in the chain", err)
	}
	if got := len(s.Jobs()); got != 0 {
		t.Fatalf("%d jobs admitted despite journal failure", got)
	}
	faultinject.Deactivate()
	job, err := s.Submit(validPSASpec())
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() != "job-000001" {
		t.Errorf("post-failure submission got id %s, want job-000001 (sequence leaked)", job.ID())
	}
	waitTerminal(t, job)
}

// TestServerQueueFullReturns429 checks overload surfaces as 429 with a
// Retry-After hint and lands in the rejection counter.
func TestServerQueueFullReturns429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := NewScheduler(blockingRegistry(started, release), Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	defer close(release)
	spec := validPSASpec()
	spec.Engine = EngineSerial
	if _, err := s.Submit(spec); err != nil { // occupies the worker
		t.Fatal(err)
	}
	<-started
	spec2 := spec
	spec2.Synth.Seed = 2
	if _, err := s.Submit(spec2); err != nil { // fills the queue
		t.Fatal(err)
	}

	ts := httptest.NewServer(NewServer(s))
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"analysis":"psa","engine":"serial","synth":{"count":3,"atoms":8,"frames":4,"seed":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("queue-full POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if got := s.rejectedCtr.Value(); got < 1 {
		t.Errorf("mdtask_jobs_rejected_total = %d, want >= 1", got)
	}
}

// TestServerRecoveredResultGone checks a done job whose result body
// did not survive the restart answers 410, not 200-with-nothing.
func TestServerRecoveredResultGone(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	defer s.Close()
	norm, err := validPSASpec().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0).UTC()
	s.Recover([]JobRecord{{
		ID: "job-000001", Spec: norm, Key: "k", State: StateDone,
		Digest: "d", Created: now, Updated: now,
	}})
	ts := httptest.NewServer(NewServer(s))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/job-000001/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 410 {
		t.Fatalf("result of recovered done job = %d, want 410 Gone", resp.StatusCode)
	}
}

// TestRecoverResolvesFailureVisibly checks a recovered job whose input
// can no longer be resolved is surfaced failed with a reason.
func TestRecoverResolvesFailureVisibly(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	defer s.Close()
	norm, err := validPSASpec().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	norm.Synth = nil
	norm.Path = "/nonexistent/trajectory/file"
	now := time.Unix(1700000000, 0).UTC()
	s.Recover([]JobRecord{{ID: "job-000001", Spec: norm, State: StateQueued, Created: now}})
	job, ok := s.Get("job-000001")
	if !ok {
		t.Fatal("unresolvable job dropped instead of surfaced")
	}
	st := job.Status()
	if st.State != StateFailed || !strings.Contains(st.Error, "recovering") {
		t.Fatalf("unresolvable recovered job: %+v", st)
	}
}
