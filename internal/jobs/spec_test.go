package jobs

import (
	"strings"
	"testing"
)

func validPSASpec() Spec {
	return Spec{
		Analysis: AnalysisPSA,
		Engine:   EngineSpark,
		Synth:    &SynthSpec{Count: 3, Atoms: 8, Frames: 4, Seed: 7},
	}
}

func validLeafletSpec() Spec {
	return Spec{
		Analysis: AnalysisLeaflet,
		Engine:   EngineSpark,
		Approach: "task2d",
		Tasks:    16,
		Synth:    &SynthSpec{Atoms: 600, Seed: 9},
	}
}

func TestNormalizedDefaults(t *testing.T) {
	s, err := Spec{Analysis: AnalysisPSA, Synth: &SynthSpec{}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine != EngineSerial || s.Method != "naive" {
		t.Errorf("got engine=%q method=%q", s.Engine, s.Method)
	}
	if g := s.Synth; g.Count != 4 || g.Atoms != 16 || g.Frames != 8 {
		t.Errorf("synth defaults not applied: %+v", g)
	}
	// Seed 0 is a valid seed, not a defaultable zero value.
	if s.Synth.Seed != 0 {
		t.Errorf("seed 0 was remapped to %d", s.Synth.Seed)
	}

	l, err := Spec{Analysis: AnalysisLeaflet, Synth: &SynthSpec{}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if l.Approach != "tree" || l.Cutoff <= 0 || l.Tasks != 1024 {
		t.Errorf("leaflet defaults not applied: %+v", l)
	}
}

func TestNormalizedPresets(t *testing.T) {
	s, err := Spec{Analysis: AnalysisPSA, Synth: &SynthSpec{Preset: "small", Count: 2}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if s.Synth.Atoms != 3341 || s.Synth.Frames != 102 {
		t.Errorf("preset dims not applied: %+v", s.Synth)
	}
	l, err := Spec{Analysis: AnalysisLeaflet, Synth: &SynthSpec{Preset: "131k"}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if l.Synth.Atoms != 131072 {
		t.Errorf("membrane preset not applied: %+v", l.Synth)
	}
}

func TestNormalizedErrors(t *testing.T) {
	cases := map[string]Spec{
		"missing analysis":   {Synth: &SynthSpec{}},
		"unknown analysis":   {Analysis: "docking", Synth: &SynthSpec{}},
		"unknown engine":     {Analysis: AnalysisPSA, Engine: "hadoop", Synth: &SynthSpec{}},
		"unknown method":     {Analysis: AnalysisPSA, Method: "exact", Synth: &SynthSpec{}},
		"unknown approach":   {Analysis: AnalysisLeaflet, Approach: "5", Synth: &SynthSpec{}},
		"pilot non-task2d":   {Analysis: AnalysisLeaflet, Engine: EnginePilot, Approach: "tree", Synth: &SynthSpec{}},
		"negative cutoff":    {Analysis: AnalysisLeaflet, Cutoff: -1, Synth: &SynthSpec{}},
		"no input":           {Analysis: AnalysisPSA},
		"two inputs":         {Analysis: AnalysisPSA, Path: "/tmp", Synth: &SynthSpec{}},
		"unknown psa preset": {Analysis: AnalysisPSA, Synth: &SynthSpec{Preset: "huge"}},
		"unknown mem preset": {Analysis: AnalysisLeaflet, Synth: &SynthSpec{Preset: "1M"}},
	}
	for name, spec := range cases {
		if _, err := spec.Normalized(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseEngineNames(t *testing.T) {
	for _, e := range Engines {
		got, err := ParseEngine(e)
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %q, %v", e, got, err)
		}
	}
	if got, err := ParseEngine(""); err != nil || got != EngineSerial {
		t.Errorf("empty engine: got %q, %v", got, err)
	}
	if _, err := ParseEngine("hadoop"); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	base, err := validPSASpec().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	key := func(mutate func(*Spec)) string {
		s := base
		if mutate != nil {
			mutate(&s)
		}
		return CacheKey(s, "digest")
	}
	if key(nil) != key(nil) {
		t.Error("cache key not deterministic")
	}
	mutations := map[string]func(*Spec){
		"engine":      func(s *Spec) { s.Engine = EngineMPI },
		"parallelism": func(s *Spec) { s.Parallelism = 8 },
		"tasks":       func(s *Spec) { s.Tasks = 9 },
	}
	for name, m := range mutations {
		if key(m) == key(nil) {
			t.Errorf("cache key ignores %s", name)
		}
	}
	if CacheKey(base, "other-digest") == key(nil) {
		t.Error("cache key ignores input digest")
	}
	// Result-invariant parameters are normalized out of the key: every
	// kernel method produces the identical matrix, as does the full
	// (non-symmetric) schedule.
	invariant := map[string]func(*Spec){
		"method early-break": func(s *Spec) { s.Method = "early-break" },
		"method pruned":      func(s *Spec) { s.Method = "pruned" },
		"full matrix":        func(s *Spec) { s.FullMatrix = true },
	}
	for name, m := range invariant {
		if key(m) != key(nil) {
			t.Errorf("cache key varies with result-invariant %s", name)
		}
	}
}

func TestResolveInputDigestStability(t *testing.T) {
	spec, err := validPSASpec().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ResolveInput(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResolveInput(spec)
	if err != nil {
		t.Fatal(err)
	}
	if digestOf(t, a) != digestOf(t, b) {
		t.Error("regenerated synth input digests differ")
	}
	spec.Synth.Seed++
	c, err := ResolveInput(spec)
	if err != nil {
		t.Fatal(err)
	}
	if digestOf(t, c) == digestOf(t, a) {
		t.Error("digest ignores the generated content")
	}
}

func digestOf(t *testing.T, in *Input) string {
	t.Helper()
	d, err := in.ContentDigest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunnerNameAndRegistry(t *testing.T) {
	reg := DefaultRegistry()
	names := reg.Names()
	if len(names) != len(Engines)*len(Analyses) {
		t.Fatalf("got %d runners: %v", len(names), names)
	}
	for _, a := range Analyses {
		for _, e := range Engines {
			if _, ok := reg.Lookup(RunnerName(a, e)); !ok {
				t.Errorf("missing runner %s", RunnerName(a, e))
			}
		}
	}
	if err := reg.Register(RunnerName(AnalysisPSA, EngineSerial), func(*RunContext, Spec, *Input) (*Result, error) { return nil, nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Register("x", nil); err == nil {
		t.Error("nil runner accepted")
	}
	if !strings.Contains(RunnerName("psa", "mpi"), "/") {
		t.Error("runner name not namespaced")
	}
}
