package jobs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mdtask/internal/blockstore"
	"mdtask/internal/engine"
	"mdtask/internal/obs"
)

// State is a job lifecycle state: queued → running → done|failed|cancelled.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Scheduler errors surfaced to API callers.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is full.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: scheduler closed")
	// ErrJournal is returned by Submit when the durability journal
	// rejects the write (e.g. a full disk): the job was NOT admitted,
	// because acknowledging it would promise a durability the journal
	// cannot deliver.
	ErrJournal = errors.New("jobs: journal write failed")
)

// Job is one scheduled analysis: a normalized spec, its lifecycle
// state, and (once finished) its result and metrics.
type Job struct {
	id         string
	spec       Spec
	key        string
	totalTasks int
	rc         *RunContext

	mu       sync.Mutex
	state    State
	errMsg   string
	cacheHit bool
	created  time.Time
	started  time.Time
	finished time.Time
	result   *Result
	final    MetricsSnapshot
	input    *Input // held until the run starts, then released

	// Tracing: the job's root span, its queue.wait child (ended when a
	// worker picks the job up), and the root's trace id — the handle
	// GET /v1/jobs/{id}/trace exports. All nil/zero with tracing off.
	trace     obs.TraceID
	jobSpan   *obs.Span
	queueSpan *obs.Span
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// TraceID returns the job's trace id (zero when tracing is off).
func (j *Job) TraceID() obs.TraceID {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// Spec returns the job's normalized spec.
func (j *Job) Spec() Spec { return j.spec }

// Status is the JSON view of a job's current state and progress.
type Status struct {
	ID              string     `json:"id"`
	Analysis        string     `json:"analysis"`
	Engine          string     `json:"engine"`
	State           State      `json:"state"`
	Error           string     `json:"error,omitempty"`
	CacheHit        bool       `json:"cache_hit"`
	CancelRequested bool       `json:"cancel_requested,omitempty"`
	Created         time.Time  `json:"created"`
	Started         *time.Time `json:"started,omitempty"`
	Finished        *time.Time `json:"finished,omitempty"`
	TasksDone       int64      `json:"tasks_done"`
	TasksTotal      int        `json:"tasks_total,omitempty"`
	Progress        float64    `json:"progress"`
	// BlockHitRatio is the share of the job's block lookups answered
	// from the store — 1 for a fully warm run, 0 for a cold one, and in
	// between for a delta resubmission that recomputed only its missing
	// blocks. Zero also when the run made no block lookups.
	BlockHitRatio float64         `json:"block_hit_ratio"`
	Metrics       MetricsSnapshot `json:"metrics"`
	// TraceID is the job's distributed trace id; feed it to
	// GET /v1/jobs/{id}/trace. Empty when tracing is disabled.
	TraceID string `json:"trace_id,omitempty"`
}

// Status snapshots the job: state, timing, and metrics — live engine
// metrics while running, the final snapshot once finished.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:              j.id,
		Analysis:        j.spec.Analysis,
		Engine:          j.spec.Engine,
		State:           j.state,
		Error:           j.errMsg,
		CacheHit:        j.cacheHit,
		CancelRequested: j.rc.Cancelled() && !j.state.Terminal(),
		Created:         j.created,
		TasksTotal:      j.totalTasks,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if !j.trace.IsZero() {
		st.TraceID = j.trace.String()
	}
	if j.state.Terminal() {
		st.Metrics = j.final
	} else {
		st.Metrics = SnapshotOf(j.rc.Metrics())
	}
	st.TasksDone = st.Metrics.Tasks
	if looked := st.Metrics.BlockCacheHits + st.Metrics.BlockCacheMisses; looked > 0 {
		st.BlockHitRatio = float64(st.Metrics.BlockCacheHits) / float64(looked)
	}
	switch {
	case j.state == StateDone:
		st.Progress = 1
	case j.totalTasks > 0:
		p := float64(st.TasksDone) / float64(j.totalTasks)
		if p > 0.99 {
			p = 0.99
		}
		st.Progress = p
	}
	return st
}

// Result returns the job's result alongside its state; the result is
// non-nil only in StateDone.
func (j *Job) Result() (*Result, State, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state, j.errMsg
}

// Options sizes a Scheduler.
type Options struct {
	// Workers is the number of jobs run concurrently (< 1: 2).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (< 1: 64); Submit fails with ErrQueueFull beyond it.
	QueueDepth int
	// CacheBytes is the byte budget of the content-addressed result
	// store — per-block kernel results and whole-job results share it
	// (< 1: blockstore.DefaultMaxBytes). Ignored when BlockStore is set.
	CacheBytes int64
	// BlockStore, when non-nil, is a store the scheduler shares with
	// other components instead of owning its own — cmd/mdserver passes
	// the store its fleet coordinator also records into, so fleet
	// workers and in-process engines populate one cache.
	BlockStore *blockstore.Store
	// MaxJobs bounds the retained job records (< 1: 4096). When a new
	// submission would exceed it, the oldest *terminal* job records —
	// status and result — are evicted, after which their ids answer 404.
	// Queued and running jobs are never evicted.
	MaxJobs int
	// Obs, when non-nil, is the observability bundle the scheduler
	// records into: a root span per job (with queue.wait and run
	// children, threaded down into the engines), queue-wait/run-time
	// histograms, job counters, and block-store gauges. Nil falls back
	// to a metrics-only bundle with tracing disabled.
	Obs *obs.Obs
	// Journal, when non-nil, is the durable job store every lifecycle
	// transition is written through (cmd/mdserver wires a WALStore
	// under -data-dir). A journal write failure at submission fails
	// the submission — an acknowledged job is always recoverable. Nil
	// keeps the scheduler memory-only.
	Journal Store
}

// Scheduler owns the job table, the bounded FIFO queue, the worker
// pool, the content-addressed result store (whole-job entries and the
// per-block entries every engine records through it), and the
// service-wide engine-metrics aggregate.
type Scheduler struct {
	reg     *Registry
	store   *blockstore.Store
	journal Store // nil: memory-only
	agg     *engine.Metrics

	obs           *obs.Obs
	queueWaitHist *obs.Histogram
	submittedCtr  *obs.Counter
	rejectedCtr   *obs.Counter

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	journalErrs atomic.Int64

	mu         sync.Mutex
	cond       *sync.Cond // signals workers when pending grows or closed flips
	closed     bool
	draining   bool // closed + leave queued jobs to the journal instead of running them out
	seq        int64
	maxJobs    int
	queueDepth int
	pending    []*Job // FIFO of queued jobs; cancelled ones are removed in place
	jobs       map[string]*Job
	order      []*Job

	wg sync.WaitGroup
}

// NewScheduler starts a scheduler executing jobs from reg.
func NewScheduler(reg *Registry, o Options) *Scheduler {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 64
	}
	if o.MaxJobs < 1 {
		o.MaxJobs = 4096
	}
	store := o.BlockStore
	if store == nil {
		store = blockstore.New(o.CacheBytes)
	}
	ob := o.Obs
	if ob == nil {
		ob = obs.NoTrace()
	}
	s := &Scheduler{
		reg:        reg,
		store:      store,
		journal:    o.Journal,
		agg:        &engine.Metrics{},
		obs:        ob,
		maxJobs:    o.MaxJobs,
		queueDepth: o.QueueDepth,
		jobs:       make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	s.registerMetrics()
	s.wg.Add(o.Workers)
	for i := 0; i < o.Workers; i++ {
		go s.worker()
	}
	return s
}

// registerMetrics wires the scheduler's instruments into its metrics
// registry: lifecycle histograms and counters, plus read-through
// gauges over the shared block store's own accounting. The store's
// single-flight wait observer feeds a histogram of how long follower
// lookups block on an in-flight leader.
func (s *Scheduler) registerMetrics() {
	m := s.obs.Metrics
	s.queueWaitHist = m.Histogram("mdtask_job_queue_wait_seconds",
		"Time jobs spend queued before a worker picks them up.", nil)
	s.submittedCtr = m.Counter("mdtask_jobs_submitted_total",
		"Jobs admitted by the scheduler (including whole-job cache hits).")
	s.rejectedCtr = m.Counter("mdtask_jobs_rejected_total",
		"Submissions shed because the bounded queue was full (the API answers 429 + Retry-After).")
	m.GaugeFunc("mdtask_jobs_queue_depth",
		"Jobs queued but not yet picked up by a worker.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.pending))
		})
	m.CounterFunc("mdtask_jobs_journal_errors_total",
		"Failed journal writes on non-submission transitions (submission failures reject the submission instead).",
		func() float64 { return float64(s.journalErrs.Load()) })
	waitHist := m.Histogram("mdtask_blockstore_do_wait_seconds",
		"Time follower block lookups wait on an in-flight leader computing the same key.", nil)
	s.store.SetWaitObserver(func(d time.Duration) { waitHist.Observe(d.Seconds()) })
	m.GaugeFunc("mdtask_blockstore_entries",
		"Entries resident in the content-addressed block store.",
		func() float64 { return float64(s.store.Stats().Entries) })
	m.GaugeFunc("mdtask_blockstore_bytes",
		"Bytes resident in the content-addressed block store.",
		func() float64 { return float64(s.store.Stats().Bytes) })
	m.CounterFunc("mdtask_blockstore_hits_total",
		"Block store lookups answered from cache.",
		func() float64 { return float64(s.store.Stats().Hits) })
	m.CounterFunc("mdtask_blockstore_misses_total",
		"Block store lookups that missed.",
		func() float64 { return float64(s.store.Stats().Misses) })
	m.CounterFunc("mdtask_blockstore_evictions_total",
		"Block store entries evicted under the byte budget.",
		func() float64 { return float64(s.store.Stats().Evictions) })
	m.CounterFunc("mdtask_jobs_cache_hits_total",
		"Submissions answered whole from the job result cache.",
		func() float64 { return float64(s.cacheHits.Load()) })
}

// Obs returns the scheduler's observability bundle (never nil; its
// Tracer is nil when tracing is disabled).
func (s *Scheduler) Obs() *obs.Obs { return s.obs }

// Submit validates and enqueues a job. The input is resolved (loaded or
// generated) synchronously so the result cache can be consulted
// immediately: an identical earlier submission completes the job on the
// spot, without touching the queue or any engine. The tradeoff is that
// the caller's goroutine pays for input loading and hashing, and each
// queued job holds its input in memory until a worker picks it up —
// QueueDepth bounds that multiplier, and an overloaded (or closed)
// scheduler rejects submissions before resolving their input.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	if _, ok := s.reg.Lookup(RunnerName(norm.Analysis, norm.Engine)); !ok {
		return nil, fmt.Errorf("jobs: no runner registered for %q", RunnerName(norm.Analysis, norm.Engine))
	}
	// Admission control before the expensive input resolution. A full
	// queue also rejects would-be cache hits; under overload, shedding
	// load beats loading inputs just to look them up.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if len(s.pending) >= s.queueDepth {
		s.mu.Unlock()
		s.rejectedCtr.Inc()
		return nil, ErrQueueFull
	}
	s.mu.Unlock()

	in, err := ResolveInput(norm)
	if err != nil {
		return nil, err
	}
	digest, err := in.ContentDigest()
	if err != nil {
		return nil, err
	}
	job := &Job{
		spec:       norm,
		key:        CacheKey(norm, digest),
		totalTasks: PlannedTasks(norm, in),
		rc:         NewRunContext(),
		state:      StateQueued,
		created:    time.Now(),
		input:      in,
	}
	// Engines the runner brings up consult (and populate) the service
	// store block by block, so even a partial overlap with earlier jobs
	// skips the shared kernel work.
	job.rc.SetBlockStore(s.store)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	cached, hitOK := s.store.Get(jobEntryKey(job.key))
	if !hitOK && len(s.pending) >= s.queueDepth {
		s.rejectedCtr.Inc()
		return nil, ErrQueueFull
	}
	s.seq++
	job.id = fmt.Sprintf("job-%06d", s.seq)
	// Journal the admission before acknowledging it: once Submit
	// returns, the job survives a SIGKILL. A journal that cannot take
	// the record fails the submission instead of admitting a job a
	// restart would never have heard of. The fsync rides inside s.mu —
	// admission order and journal order stay identical.
	if s.journal != nil {
		rec := JobRecord{
			ID: job.id, Spec: norm, Key: job.key, State: StateQueued,
			Created: job.created, Updated: job.created,
		}
		if hitOK {
			rec.State = StateDone
			rec.Digest = resultDigestOf(cached.(*Result))
		}
		if jerr := s.journal.JournalSubmit(rec); jerr != nil {
			s.seq--
			return nil, fmt.Errorf("%w: journaling submission: %w", ErrJournal, jerr)
		}
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job)
	s.submittedCtr.Inc()
	// Root span of the job's trace; everything below — queue wait, the
	// run, engine stages, blocks, fleet hops — nests under it.
	job.jobSpan = s.obs.Tracer.StartRoot("job")
	job.jobSpan.SetAttr("job", job.id)
	job.jobSpan.SetAttr("analysis", job.spec.Analysis)
	job.jobSpan.SetAttr("engine", job.spec.Engine)
	if ctx := job.jobSpan.Context(); ctx.Valid() {
		job.trace = ctx.Trace
	}
	if hitOK {
		s.cacheHits.Add(1)
		job.state = StateDone
		job.cacheHit = true
		job.result = cached.(*Result)
		job.finished = job.created
		job.input = nil
		job.jobSpan.SetAttr("cache_hit", "true")
		job.jobSpan.SetAttr("state", string(StateDone))
		job.jobSpan.End()
		s.jobFinished(StateDone)
	} else {
		s.cacheMisses.Add(1)
		job.queueSpan = s.obs.Tracer.StartChild(job.jobSpan.Context(), "queue.wait")
		s.pending = append(s.pending, job)
		s.cond.Signal()
	}
	s.pruneLocked()
	return job, nil
}

// jobFinished counts one job reaching a terminal state.
func (s *Scheduler) jobFinished(state State) {
	s.obs.Metrics.Counter("mdtask_jobs_completed_total",
		"Jobs reaching a terminal state, by state.", "state", string(state)).Inc()
}

// journalState journals a non-submission lifecycle transition.
// Failures are counted rather than surfaced: the in-memory state is
// already committed, and the gap shows up as
// mdtask_jobs_journal_errors_total (worst case, recovery re-runs the
// job — the at-least-once contract absorbs it).
func (s *Scheduler) journalState(id string, state State, errMsg, digest string, ts time.Time) {
	if s.journal == nil {
		return
	}
	if err := s.journal.JournalState(id, state, errMsg, digest, ts); err != nil {
		s.journalErrs.Add(1)
	}
}

// pruneLocked evicts the oldest terminal job records beyond MaxJobs so
// the job table (and the results it pins) stays bounded on a
// long-running server. Callers hold s.mu.
func (s *Scheduler) pruneLocked() {
	if len(s.order) <= s.maxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxJobs
	var evicted []string
	for _, j := range s.order {
		if excess > 0 {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, j.id)
				evicted = append(evicted, j.id)
				excess--
				continue
			}
		}
		kept = append(kept, j)
	}
	// Drop the tail references so evicted jobs can be collected.
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
	if s.journal != nil && len(evicted) > 0 {
		if err := s.journal.JournalPrune(evicted); err != nil {
			s.journalErrs.Add(1)
		}
	}
}

// Get returns the job with the given id.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Cancel requests cancellation of a job: a queued job is cancelled
// immediately (it leaves the queue and will never run); a running job's
// cancel flag is set and the run drains at its next block boundary,
// ending in StateCancelled without publishing a result. Finished jobs
// are unaffected. The boolean reports whether the request changed
// anything.
func (s *Scheduler) Cancel(id string) (*Job, bool) {
	j, ok := s.Get(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	var wasQueued bool
	var changed bool
	switch j.state {
	case StateQueued:
		j.rc.Cancel()
		j.state = StateCancelled
		j.finished = time.Now()
		j.input = nil
		j.queueSpan.SetAttr("outcome", "cancelled")
		j.queueSpan.End()
		j.jobSpan.SetAttr("state", string(StateCancelled))
		j.jobSpan.End()
		s.jobFinished(StateCancelled)
		wasQueued, changed = true, true
	case StateRunning:
		j.rc.Cancel()
		changed = true
	}
	finishedAt := j.finished
	j.mu.Unlock()
	if wasQueued {
		// Free the queue slot immediately (never while holding j.mu:
		// pruneLocked nests the locks the other way round).
		s.unqueue(j)
		s.journalState(j.id, StateCancelled, "", "", finishedAt)
	}
	return j, changed
}

// unqueue removes a job from the pending FIFO, freeing its queue slot
// for new submissions immediately.
func (s *Scheduler) unqueue(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// ServiceMetrics is the JSON view of GET /v1/metrics: job counts by
// state, whole-job cache effectiveness, the shared block store's
// accounting, and the aggregated engine accounting of every job run so
// far. CacheHits/CacheMisses count whole-job submissions answered from
// the store; BlockCache counts every lookup inside it — per-block hits
// from partially overlapping jobs land there, not in CacheHits.
type ServiceMetrics struct {
	Jobs         map[State]int    `json:"jobs"`
	CacheHits    int64            `json:"cache_hits"`
	CacheMisses  int64            `json:"cache_misses"`
	CacheEntries int              `json:"cache_entries"`
	BlockCache   blockstore.Stats `json:"block_cache"`
	Engine       MetricsSnapshot  `json:"engine"`
}

// Metrics snapshots the service-wide view.
func (s *Scheduler) Metrics() ServiceMetrics {
	counts := make(map[State]int)
	for _, j := range s.Jobs() {
		counts[j.Status().State]++
	}
	return ServiceMetrics{
		Jobs:         counts,
		CacheHits:    s.cacheHits.Load(),
		CacheMisses:  s.cacheMisses.Load(),
		CacheEntries: s.store.Len(),
		BlockCache:   s.store.Stats(),
		Engine:       SnapshotOf(s.agg),
	}
}

// BlockStore exposes the scheduler's content-addressed result store
// (shared with whatever components the owner wired it into).
func (s *Scheduler) BlockStore() *blockstore.Store { return s.store }

// Close stops accepting submissions, drains the queue, waits for
// running jobs to finish, and (with a journal wired) records the
// clean-shutdown marker — every transition before it is known durable,
// so the next boot reports a clean restart.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	if s.journal != nil {
		if err := s.journal.JournalShutdown(); err != nil {
			s.journalErrs.Add(1)
		}
	}
}

// BeginDrain stops admission and job pickup without cancelling queued
// work: workers exit instead of starting anything new, and queued jobs
// stay journaled as queued, so the next boot re-enqueues them in
// order. Running jobs keep running — the owner aborts or waits for
// them (cmd/mdserver closes its fleet coordinator next) and then calls
// Close for the shutdown marker. While draining, terminal journal
// writes for failed/cancelled runs are suppressed: a job aborted by
// shutdown stays `running` in the journal and re-runs from its spec on
// the next boot instead of surfacing a spurious failure.
func (s *Scheduler) BeginDrain() {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// worker pulls queued jobs and runs them to a terminal state.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.draining || len(s.pending) == 0 { // draining, or closed and drained
			s.mu.Unlock()
			return
		}
		job := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.runJob(job)
	}
}

// runJob executes one job and publishes its outcome.
func (s *Scheduler) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while queued
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	spec, in := job.spec, job.input
	started := job.started
	s.queueWaitHist.Observe(job.started.Sub(job.created).Seconds())
	job.queueSpan.End()
	// The run span parents the runner's engine stage; the runner reaches
	// it through the RunContext.
	runSpan := s.obs.Tracer.StartChild(job.jobSpan.Context(), "run")
	job.rc.SetObs(s.obs, runSpan.Context())
	job.mu.Unlock()
	s.journalState(job.id, StateRunning, "", "", started)

	var (
		res *Result
		err error
	)
	runner, ok := s.reg.Lookup(RunnerName(spec.Analysis, spec.Engine))
	if !ok {
		err = fmt.Errorf("jobs: no runner registered for %q", RunnerName(spec.Analysis, spec.Engine))
	} else {
		res, err = runner(job.rc, spec, in)
	}

	live := job.rc.Metrics()
	s.agg.MergeFrom(live)

	job.mu.Lock()
	job.input = nil
	job.final = SnapshotOf(live)
	job.finished = time.Now()
	var publish bool
	switch {
	case job.rc.Cancelled() || errors.Is(err, ErrCancelled):
		job.state = StateCancelled
	case err != nil:
		job.state = StateFailed
		job.errMsg = err.Error()
	default:
		job.state = StateDone
		job.result = res
		publish = true
	}
	if err != nil {
		runSpan.SetAttr("error", err.Error())
	}
	runSpan.End()
	job.jobSpan.SetAttr("state", string(job.state))
	job.jobSpan.End()
	state := job.state
	errMsg := job.errMsg
	key := job.key
	finishedAt := job.finished
	runDur := job.finished.Sub(job.started)
	job.mu.Unlock()
	s.obs.Metrics.Histogram("mdtask_job_run_seconds",
		"Wall time of job runs, by analysis and engine.", nil,
		"analysis", spec.Analysis, "engine", spec.Engine).Observe(runDur.Seconds())
	s.jobFinished(state)
	if publish {
		s.store.Put(jobEntryKey(key), res, resultBytes(res))
	}
	// A failed/cancelled outcome during drain is a shutdown artefact
	// (the fleet coordinator aborting in-flight work), not a verdict on
	// the job: leave it `running` in the journal so the next boot
	// re-runs it from its spec. Completed results are always journaled.
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if state == StateDone || !draining {
		var digest string
		if state == StateDone {
			digest = resultDigestOf(res)
		}
		s.journalState(job.id, state, errMsg, digest, finishedAt)
	}
}

// Recover re-admits jobs reconstructed from the journal, in original
// submission order, before the server starts taking new submissions.
//
// Terminal records come back as status-only entries: result bodies are
// not journaled (only their digest), so a recovered done job keeps its
// status and provenance but GET .../result answers 410 Gone until an
// identical resubmission recomputes it — deterministic kernels make
// that recomputation byte-identical to the digest on record.
//
// Queued and running records are re-enqueued and re-run from their
// normalized specs: the at-least-once contract. A record whose input
// no longer resolves is marked failed with the reason (and journaled
// as such) rather than silently dropped. The job counter is restored
// past the highest recovered id so new submissions never collide.
func (s *Scheduler) Recover(recs []JobRecord) {
	recoveredCtr := func(prior State) *obs.Counter {
		return s.obs.Metrics.Counter("mdtask_jobs_recovered_total",
			"Jobs re-admitted from the journal at boot, by the state they held when the previous process exited.",
			"prior", string(prior))
	}
	s.mu.Lock()
	for _, rec := range recs {
		var n int64
		if _, err := fmt.Sscanf(rec.ID, "job-%06d", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	s.mu.Unlock()
	for _, rec := range recs {
		prior := rec.State
		job := &Job{
			id:      rec.ID,
			spec:    rec.Spec,
			key:     rec.Key,
			rc:      NewRunContext(),
			state:   rec.State,
			errMsg:  rec.Error,
			created: rec.Created,
		}
		job.rc.SetBlockStore(s.store)
		if rec.State.Terminal() {
			job.finished = rec.Updated
			s.mu.Lock()
			s.jobs[job.id] = job
			s.order = append(s.order, job)
			s.mu.Unlock()
			recoveredCtr(prior).Inc()
			continue
		}
		// Queued or running when the previous process died: re-run from
		// the spec. Input resolution can fail now even if it succeeded
		// then (file deleted, disk gone) — that is a real failure worth
		// surfacing, not a recovery bug.
		in, err := ResolveInput(rec.Spec)
		if err != nil {
			job.state = StateFailed
			job.errMsg = fmt.Sprintf("jobs: recovering %s job: resolving input: %v", prior, err)
			job.finished = time.Now()
			s.mu.Lock()
			s.jobs[job.id] = job
			s.order = append(s.order, job)
			s.mu.Unlock()
			s.journalState(job.id, StateFailed, job.errMsg, "", job.finished)
			s.jobFinished(StateFailed)
			recoveredCtr(prior).Inc()
			continue
		}
		job.state = StateQueued
		job.totalTasks = PlannedTasks(rec.Spec, in)
		job.input = in
		s.mu.Lock()
		job.jobSpan = s.obs.Tracer.StartRoot("job")
		job.jobSpan.SetAttr("job", job.id)
		job.jobSpan.SetAttr("analysis", job.spec.Analysis)
		job.jobSpan.SetAttr("engine", job.spec.Engine)
		job.jobSpan.SetAttr("recovered_from", string(prior))
		if ctx := job.jobSpan.Context(); ctx.Valid() {
			job.trace = ctx.Trace
		}
		job.queueSpan = s.obs.Tracer.StartChild(job.jobSpan.Context(), "queue.wait")
		s.jobs[job.id] = job
		s.order = append(s.order, job)
		s.pending = append(s.pending, job)
		s.cond.Signal()
		s.mu.Unlock()
		recoveredCtr(prior).Inc()
	}
}

// jobEntryKey namespaces a whole-job result inside the shared store,
// alongside the per-block entries the engines record.
func jobEntryKey(cacheKey string) string { return "job|" + cacheKey }
