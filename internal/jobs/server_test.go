package jobs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdtask/internal/leaflet"
	"mdtask/internal/psa"
)

func newTestServer(t *testing.T, reg *Registry, o Options) (*httptest.Server, *Scheduler) {
	t.Helper()
	s := NewScheduler(reg, o)
	ts := httptest.NewServer(NewServer(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

func doJSON(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func submitJob(t *testing.T, url string, spec Spec) Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, raw := doJSON(t, http.MethodPost, url+"/v1/jobs", string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit: got %d: %s", code, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollJob(t *testing.T, url, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, raw := doJSON(t, http.MethodGet, url+"/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("poll: got %d: %s", code, raw)
		}
		var st Status
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetchResult(t *testing.T, url, id string) (*Result, int) {
	t.Helper()
	code, raw := doJSON(t, http.MethodGet, url+"/v1/jobs/"+id+"/result", "")
	if code != http.StatusOK {
		return nil, code
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return &res, code
}

// TestAPIPSAAllEngines round-trips a PSA job through the HTTP API on
// every engine and checks each matrix is bit-identical to the serial
// runner's.
func TestAPIPSAAllEngines(t *testing.T) {
	ts, _ := newTestServer(t, DefaultRegistry(), Options{Workers: 2})
	spec, err := validPSASpec().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	in, err := ResolveInput(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := psa.Serial(in.Ens, psa.Opts{Symmetric: true, Method: spec.hausdorffMethod()})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range Engines {
		s := validPSASpec()
		s.Engine = eng
		st := submitJob(t, ts.URL, s)
		st = pollJob(t, ts.URL, st.ID)
		if st.State != StateDone {
			t.Fatalf("%s: job finished %s (error %q)", eng, st.State, st.Error)
		}
		res, code := fetchResult(t, ts.URL, st.ID)
		if code != http.StatusOK || res.Matrix == nil {
			t.Fatalf("%s: result fetch failed (%d)", eng, code)
		}
		if res.Matrix.N != want.N {
			t.Fatalf("%s: matrix size %d, want %d", eng, res.Matrix.N, want.N)
		}
		for i := range want.Data {
			if res.Matrix.Data[i] != want.Data[i] {
				t.Fatalf("%s: matrix differs from serial at %d", eng, i)
			}
		}
	}
}

// TestAPILeafletAllEngines round-trips a Leaflet Finder job on every
// engine (task2d, the approach all five support) and checks each
// assignment matches the serial runner's.
func TestAPILeafletAllEngines(t *testing.T) {
	ts, _ := newTestServer(t, DefaultRegistry(), Options{Workers: 2})
	spec, err := validLeafletSpec().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	in, err := ResolveInput(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := leaflet.Serial(in.Coords, spec.Cutoff)
	for _, eng := range Engines {
		s := validLeafletSpec()
		s.Engine = eng
		st := submitJob(t, ts.URL, s)
		st = pollJob(t, ts.URL, st.ID)
		if st.State != StateDone {
			t.Fatalf("%s: job finished %s (error %q)", eng, st.State, st.Error)
		}
		res, code := fetchResult(t, ts.URL, st.ID)
		if code != http.StatusOK || res.Leaflet == nil {
			t.Fatalf("%s: result fetch failed (%d)", eng, code)
		}
		if !leaflet.Equal(res.Leaflet, want) {
			t.Fatalf("%s: assignment differs from serial", eng)
		}
	}
}

// TestAPICacheHit submits the same job twice and asserts the second is
// answered from the result cache without running any engine tasks.
func TestAPICacheHit(t *testing.T) {
	ts, _ := newTestServer(t, DefaultRegistry(), Options{Workers: 1})
	st := submitJob(t, ts.URL, validPSASpec())
	st = pollJob(t, ts.URL, st.ID)
	if st.State != StateDone || st.CacheHit {
		t.Fatalf("first run: %+v", st)
	}
	first, _ := fetchResult(t, ts.URL, st.ID)

	var before ServiceMetrics
	code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if err := json.Unmarshal(raw, &before); err != nil {
		t.Fatal(err)
	}
	if before.Engine.Tasks == 0 {
		t.Fatal("first run recorded no engine tasks")
	}

	st2 := submitJob(t, ts.URL, validPSASpec())
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("identical resubmission not a cache hit: %+v", st2)
	}
	second, _ := fetchResult(t, ts.URL, st2.ID)
	for i := range first.Matrix.Data {
		if first.Matrix.Data[i] != second.Matrix.Data[i] {
			t.Fatal("cached result differs")
		}
	}

	var after ServiceMetrics
	_, raw = doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", "")
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if after.Engine.Tasks != before.Engine.Tasks {
		t.Errorf("cache hit re-ran engine tasks: %d -> %d", before.Engine.Tasks, after.Engine.Tasks)
	}
	if after.CacheHits != 1 {
		t.Errorf("cache hits = %d", after.CacheHits)
	}
}

// TestAPICancel exercises DELETE on a running job: the job must end
// cancelled, with the result endpoint reporting 410 Gone.
func TestAPICancel(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	ts, _ := newTestServer(t, blockingRegistry(started, release), Options{Workers: 1})
	spec := validPSASpec()
	spec.Engine = EngineSerial
	st := submitJob(t, ts.URL, spec)
	<-started
	code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, "")
	if code != http.StatusOK {
		t.Fatalf("cancel: got %d", code)
	}
	st = pollJob(t, ts.URL, st.ID)
	if st.State != StateCancelled {
		t.Fatalf("job finished %s, want cancelled", st.State)
	}
	if _, code := fetchResult(t, ts.URL, st.ID); code != http.StatusGone {
		t.Errorf("result of cancelled job: got %d, want 410", code)
	}
	// Cancelling an already-cancelled job is idempotent.
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, ""); code != http.StatusOK {
		t.Errorf("re-cancel: got %d, want 200", code)
	}
}

// TestAPIErrors covers the 400/404/409 paths.
func TestAPIErrors(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	reg := blockingRegistry(started, release)
	ts, _ := newTestServer(t, reg, Options{Workers: 1})

	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "{not json"); code != http.StatusBadRequest {
		t.Errorf("bad body: got %d", code)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"analysis":"psa","bogus_field":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: got %d", code)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"analysis":"docking","synth":{}}`); code != http.StatusBadRequest {
		t.Errorf("bad spec: got %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999999", ""); code != http.StatusNotFound {
		t.Errorf("missing job: got %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999999/result", ""); code != http.StatusNotFound {
		t.Errorf("missing result: got %d", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/job-999999", ""); code != http.StatusNotFound {
		t.Errorf("missing cancel: got %d", code)
	}

	// A still-running job has no result yet: 409.
	spec := validPSASpec()
	spec.Engine = EngineSerial
	st := submitJob(t, ts.URL, spec)
	<-started
	if _, code := fetchResult(t, ts.URL, st.ID); code != http.StatusConflict {
		t.Errorf("result of running job: got %d, want 409", code)
	}
}

// TestAPISpecBodyBound is the regression test for the unbounded
// POST /v1/jobs decode: an oversized body must answer 413 with a JSON
// error envelope (not buffer server-side), a body exactly at the limit
// must still decode, and the rejection must not admit a job.
func TestAPISpecBodyBound(t *testing.T) {
	s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
	ts := httptest.NewServer(NewServerWith(s, ServerOptions{MaxSpecBytes: 512}))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	huge := `{"analysis":"psa","synth":{"count":2},"method":"` + strings.Repeat("x", 4096) + `"}`
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", huge)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec: got %d, want 413", code)
	}
	var env map[string]string
	if err := json.Unmarshal(raw, &env); err != nil || env["error"] == "" {
		t.Fatalf("413 body is not a JSON error envelope: %q (%v)", raw, err)
	}
	if n := len(s.Jobs()); n != 0 {
		t.Fatalf("rejected oversized spec admitted %d job(s)", n)
	}

	ok := `{"analysis":"psa","synth":{"count":2,"atoms":4,"frames":3}}`
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", ok); code != http.StatusAccepted {
		t.Fatalf("in-bound spec: got %d (%s), want 202", code, raw)
	}
}

// TestAPIListAndHealth covers GET /v1/jobs and /healthz.
func TestAPIListAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, DefaultRegistry(), Options{Workers: 1})
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz: got %d", code)
	}
	st := submitJob(t, ts.URL, validPSASpec())
	pollJob(t, ts.URL, st.ID)
	code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: got %d", code)
	}
	var list []Status
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}
}
