// Package jobs is the serving layer of the repository: a registry of
// named analysis runners (analysis × engine), a bounded FIFO scheduler
// with cooperative cancellation and per-job engine metrics, and a
// content-addressed result cache. cmd/mdserver exposes it over HTTP;
// cmd/psa and cmd/leaflet run their one-shot invocations through the
// same registry.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"mdtask/internal/hausdorff"
	"mdtask/internal/leaflet"
	"mdtask/internal/synth"
)

// Analysis names.
const (
	AnalysisPSA     = "psa"
	AnalysisLeaflet = "leaflet"
)

// Engine names. EngineSerial is the single-goroutine reference runner;
// spark, dask, mpi and pilot are the paper's in-process task-parallel
// engines; fleet is the multi-process coordinator/worker engine
// (internal/fleet).
const (
	EngineSerial = "serial"
	EngineSpark  = "spark"
	EngineDask   = "dask"
	EngineMPI    = "mpi"
	EnginePilot  = "pilot"
	EngineFleet  = "fleet"
)

// Engines lists every engine name a runner is registered for.
var Engines = []string{EngineSerial, EngineSpark, EngineDask, EngineMPI, EnginePilot, EngineFleet}

// Analyses lists every analysis name a runner is registered for.
var Analyses = []string{AnalysisPSA, AnalysisLeaflet}

// SynthSpec describes a deterministically generated input, the serving
// analogue of cmd/trajgen: either a paper preset by name or explicit
// dimensions. All generation is a pure function of the fields, so a
// synth job is fully content-addressable.
type SynthSpec struct {
	// Preset selects a paper size class: for PSA an ensemble preset
	// (small|medium|large), for Leaflet Finder a membrane preset
	// (131k|262k|524k|4M). Empty: explicit dimensions below.
	Preset string `json:"preset,omitempty"`
	// Count is the number of trajectories of a PSA ensemble (default 4).
	Count int `json:"count,omitempty"`
	// Atoms is the per-trajectory atom count for PSA (default 16) or the
	// total membrane atom count for Leaflet Finder (default 2048).
	Atoms int `json:"atoms,omitempty"`
	// Frames is the per-trajectory frame count for PSA (default 8).
	Frames int `json:"frames,omitempty"`
	// Seed seeds the generator; every value, including the zero value,
	// is a valid seed.
	Seed uint64 `json:"seed,omitempty"`
}

// Spec is the full description of an analysis job: what to compute, on
// which engine, and over which input. It is the wire format of
// POST /v1/jobs and the domain of the result-cache key.
type Spec struct {
	// Analysis is "psa" or "leaflet".
	Analysis string `json:"analysis"`
	// Engine is "serial", "spark", "dask", "mpi", "pilot" or "fleet"
	// (default "serial").
	Engine string `json:"engine,omitempty"`
	// Parallelism is the worker/rank count (0: automatic — GOMAXPROCS
	// for shared-memory engines, 4 ranks/cores for mpi/pilot).
	Parallelism int `json:"parallelism,omitempty"`
	// Tasks bounds the task count (0: one per worker for PSA, 1024 for
	// Leaflet Finder, matching the paper).
	Tasks int `json:"tasks,omitempty"`

	// Method is the PSA Hausdorff kernel: "naive" (default),
	// "early-break", "pruned" or "indexed". All four produce identical
	// matrices (see docs/kernels.md for the contract).
	Method string `json:"method,omitempty"`
	// FullMatrix disables PSA's symmetry-aware schedule (paper-faithful
	// full N×N grid).
	FullMatrix bool `json:"full_matrix,omitempty"`
	// MaxResidentFrames, when positive, streams PSA trajectories as
	// bounded frame windows instead of materializing them: with an
	// on-disk Path no engine task ever holds more than two windows of
	// frames, and even synthetic inputs run the windowed kernel. The
	// matrix is bit-identical to the in-memory run. Two caveats: the
	// pilot engine's staging client still materializes the window blobs
	// it stages (the in-process simulation of filesystem staging —
	// pilot unit processes are windowed, the submitting client is not),
	// and the server's content-addressed cache digests a streamed input
	// by scanning it once per submission.
	MaxResidentFrames int `json:"max_resident_frames,omitempty"`

	// Approach is the Leaflet Finder architecture: "broadcast"|"1",
	// "task2d"|"2", "parallel-cc"|"3" or "tree"|"4" (default "tree";
	// the pilot engine supports only "task2d").
	Approach string `json:"approach,omitempty"`
	// Cutoff is the Leaflet Finder neighbor cutoff in Å (default
	// synth.BilayerCutoff).
	Cutoff float64 `json:"cutoff,omitempty"`

	// Path points at on-disk input: a directory of .mdt trajectories for
	// PSA, a single-frame .mdt membrane file for Leaflet Finder.
	// Exactly one of Path and Synth must be set.
	Path string `json:"path,omitempty"`
	// Synth generates the input instead of reading it from disk.
	Synth *SynthSpec `json:"synth,omitempty"`
}

// ParseEngine canonicalizes an engine name, accepting every registered
// engine ("" defaults to serial).
func ParseEngine(s string) (string, error) {
	if s == "" {
		return EngineSerial, nil
	}
	for _, e := range Engines {
		if s == e {
			return e, nil
		}
	}
	return "", fmt.Errorf("jobs: unknown engine %q (want serial|spark|dask|mpi|pilot|fleet)", s)
}

// ParseApproach canonicalizes a Leaflet Finder approach name, accepting
// the cmd/leaflet aliases ("" defaults to tree).
func ParseApproach(s string) (leaflet.Approach, string, error) {
	switch s {
	case "1", "broadcast":
		return leaflet.Broadcast1D, "broadcast", nil
	case "2", "task2d":
		return leaflet.TaskAPI2D, "task2d", nil
	case "3", "parallel-cc":
		return leaflet.ParallelCC, "parallel-cc", nil
	case "", "4", "tree":
		return leaflet.TreeSearch, "tree", nil
	default:
		return 0, "", fmt.Errorf("jobs: unknown approach %q (want broadcast|task2d|parallel-cc|tree)", s)
	}
}

// ParseMethod canonicalizes a PSA Hausdorff method name, accepting every
// hausdorff kernel ("" defaults to naive).
func ParseMethod(s string) (string, error) {
	m, err := hausdorff.ParseMethod(s)
	if err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	return m.String(), nil
}

// Normalized validates the spec and fills every defaultable field, so
// that two specs describing the same work hash identically.
func (s Spec) Normalized() (Spec, error) {
	switch s.Analysis {
	case AnalysisPSA, AnalysisLeaflet:
	case "":
		return Spec{}, fmt.Errorf("jobs: analysis is required (psa|leaflet)")
	default:
		return Spec{}, fmt.Errorf("jobs: unknown analysis %q (want psa|leaflet)", s.Analysis)
	}
	eng, err := ParseEngine(s.Engine)
	if err != nil {
		return Spec{}, err
	}
	s.Engine = eng
	if s.Parallelism < 0 {
		s.Parallelism = 0
	}
	if s.Tasks < 0 {
		s.Tasks = 0
	}
	if (s.Path == "") == (s.Synth == nil) {
		return Spec{}, fmt.Errorf("jobs: exactly one of path and synth must be set")
	}

	if s.MaxResidentFrames < 0 {
		s.MaxResidentFrames = 0
	}

	switch s.Analysis {
	case AnalysisPSA:
		m, err := ParseMethod(s.Method)
		if err != nil {
			return Spec{}, err
		}
		s.Method = m
		s.Approach, s.Cutoff = "", 0
		if s.Synth != nil {
			syn, err := normalizedPSASynth(*s.Synth)
			if err != nil {
				return Spec{}, err
			}
			s.Synth = &syn
		}
	case AnalysisLeaflet:
		_, name, err := ParseApproach(s.Approach)
		if err != nil {
			return Spec{}, err
		}
		s.Approach = name
		if s.Engine == EnginePilot && s.Approach != "task2d" {
			return Spec{}, fmt.Errorf("jobs: the pilot engine supports only the task2d approach, got %q", s.Approach)
		}
		if s.Cutoff < 0 {
			return Spec{}, fmt.Errorf("jobs: cutoff must be positive, got %g", s.Cutoff)
		}
		if s.Cutoff == 0 {
			s.Cutoff = synth.BilayerCutoff
		}
		s.Method, s.FullMatrix, s.MaxResidentFrames = "", false, 0
		if s.Tasks == 0 {
			s.Tasks = 1024
		}
		if s.Synth != nil {
			syn, err := normalizedLeafletSynth(*s.Synth)
			if err != nil {
				return Spec{}, err
			}
			s.Synth = &syn
		}
	}
	return s, nil
}

// normalizedPSASynth fills a PSA generator spec's defaults.
func normalizedPSASynth(g SynthSpec) (SynthSpec, error) {
	if g.Preset != "" {
		found := false
		for _, p := range synth.EnsemblePresets {
			if p.Name == g.Preset {
				g.Atoms, g.Frames, found = p.NAtoms, p.NFrames, true
				break
			}
		}
		if !found {
			return SynthSpec{}, fmt.Errorf("jobs: unknown ensemble preset %q (want small|medium|large)", g.Preset)
		}
	}
	if g.Count <= 0 {
		g.Count = 4
	}
	if g.Atoms <= 0 {
		g.Atoms = 16
	}
	if g.Frames <= 0 {
		g.Frames = 8
	}
	return g, nil
}

// normalizedLeafletSynth fills a membrane generator spec's defaults.
func normalizedLeafletSynth(g SynthSpec) (SynthSpec, error) {
	if g.Preset != "" {
		found := false
		for _, p := range synth.MembranePresets {
			if p.Name == g.Preset {
				g.Atoms, found = p.NAtoms, true
				break
			}
		}
		if !found {
			return SynthSpec{}, fmt.Errorf("jobs: unknown membrane preset %q (want 131k|262k|524k|4M)", g.Preset)
		}
	}
	g.Count, g.Frames = 0, 0
	if g.Atoms <= 0 {
		g.Atoms = 2048
	}
	return g, nil
}

// RunnerName is the registry key of an (analysis, engine) pair.
func RunnerName(analysis, engine string) string { return analysis + "/" + engine }

// CacheKey content-addresses a normalized spec plus the digest of its
// resolved input data. Result-invariant parameters are normalized out:
// the PSA kernel method (naive, early-break, pruned and indexed are
// all exact — they produce bit-identical matrices), the FullMatrix schedule
// toggle (the symmetric schedule mirrors the identical values), and
// MaxResidentFrames (the streamed kernel is bit-identical to the
// in-memory one), so a resubmission differing only in those hits the
// existing entry. Fields
// that change where or how much engine work runs (engine, sizing) stay
// in the key, so resubmitting on a different engine re-runs.
func CacheKey(s Spec, inputDigest string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v2|%s|%s|p=%d|t=%d|a=%s|c=%x|in=%s",
		s.Analysis, s.Engine, s.Parallelism, s.Tasks,
		s.Approach, s.Cutoff, inputDigest)
	return hex.EncodeToString(h.Sum(nil))
}
