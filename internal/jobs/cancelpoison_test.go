package jobs

import (
	"sync/atomic"
	"testing"
	"time"

	"mdtask/internal/psa"
)

// A job cancelled mid-run must leave no partially-computed block
// observable in the shared store: the identical resubmission misses
// every block, runs fresh kernels, and assembles the same matrix a
// never-cancelled run would — not a zero-filled tail recorded by the
// cancelled attempt.
func TestCancelledJobPoisonsNoBlockEntries(t *testing.T) {
	started := make(chan struct{}, 1)
	var calls atomic.Int64
	reg := NewRegistry()
	must(reg.Register(RunnerName(AnalysisPSA, EngineSerial),
		func(rc *RunContext, spec Spec, in *Input) (*Result, error) {
			blocks, err := psa.Partition(len(in.Refs), 1, true)
			if err != nil {
				return nil, err
			}
			if calls.Add(1) == 1 {
				started <- struct{}{}
				for !rc.Cancelled() {
					time.Sleep(time.Millisecond)
				}
				// Attempt a block with cancellation already signalled: its
				// kernel zero-fills, and the store must refuse the value.
				if _, err := psa.ComputeBlockRefs(in.Refs, blocks[1], psa.Opts{
					Symmetric: true,
					Cancel:    rc.Cancelled,
					Cache:     rc.BlockStore(),
				}); err != nil {
					return nil, err
				}
				return nil, ErrCancelled
			}
			// Resubmissions run the real cached block path.
			results := make([]psa.BlockResult, len(blocks))
			for i, b := range blocks {
				r, err := psa.ComputeBlockRefs(in.Refs, b, psa.Opts{
					Symmetric: true,
					Cache:     rc.BlockStore(),
					Metrics:   rc.Metrics(),
				})
				if err != nil {
					return nil, err
				}
				results[i] = r
			}
			return &Result{Matrix: psa.Assemble(len(in.Refs), results)}, nil
		}))

	s := NewScheduler(reg, Options{Workers: 1})
	defer s.Close()
	spec := validPSASpec()
	spec.Engine = EngineSerial

	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := s.Cancel(first.ID()); !ok {
		t.Fatal("cancel rejected")
	}
	if st := waitTerminal(t, first); st.State != StateCancelled {
		t.Fatalf("first job finished %s", st.State)
	}
	if n := s.Metrics().CacheEntries; n != 0 {
		t.Fatalf("cancelled job left %d store entries", n)
	}

	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, second)
	if st.State != StateDone {
		t.Fatalf("resubmission finished %s (%s)", st.State, st.Error)
	}
	if st.CacheHit {
		t.Fatal("resubmission of a cancelled job served from the whole-job cache")
	}
	if st.Metrics.BlockCacheHits != 0 {
		t.Fatalf("resubmission hit %d blocks of a cancelled run", st.Metrics.BlockCacheHits)
	}

	// Reference matrix, computed outside any cache.
	norm, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	in, err := ResolveInput(norm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := psa.SerialRefs(in.Refs, psa.Opts{Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	res, _, _ := second.Result()
	if res == nil || res.Matrix == nil || len(res.Matrix.Data) != len(want.Data) {
		t.Fatalf("bad resubmission result %+v", res)
	}
	for i := range want.Data {
		if res.Matrix.Data[i] != want.Data[i] {
			t.Fatalf("matrix element %d differs: %v vs %v", i, res.Matrix.Data[i], want.Data[i])
		}
	}
}
