package jobs

import (
	"runtime"
	"testing"
	"time"
)

// Cancelling a streamed PSA job mid-window must drain cleanly: the job
// ends cancelled (or, if the race is lost, done) and every goroutine
// the engine spawned — pool workers, loopback fleet servers, worker
// agents — is gone afterwards. Run under -race in the dedicated CI
// step; the goroutine-count check catches leaks either way.
func TestStreamedCancelLeaksNoGoroutines(t *testing.T) {
	for _, engine := range []string{EngineDask, EngineFleet} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			baseline := stableGoroutines(t)
			s := NewScheduler(DefaultRegistry(), Options{Workers: 1})
			spec := Spec{
				Analysis:          AnalysisPSA,
				Engine:            engine,
				Parallelism:       2,
				Method:            "naive",
				MaxResidentFrames: 8,
				// Large enough that cancellation lands mid-run: the
				// streamed naive kernel scans 2·F² directed pairs per
				// trajectory pair, re-decoding windows as it goes.
				Synth: &SynthSpec{Count: 4, Atoms: 16, Frames: 128, Seed: 99},
			}
			job, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				st := job.Status()
				if st.State == StateRunning || st.State.Terminal() {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job stuck in %s", st.State)
				}
				time.Sleep(time.Millisecond)
			}
			s.Cancel(job.ID())
			st := waitTerminal(t, job)
			if st.State != StateCancelled && st.State != StateDone {
				t.Fatalf("job finished %s", st.State)
			}
			s.Close()

			// The scheduler worker, engine pools and any loopback fleet
			// must all be gone; allow a short settle for network teardown.
			settleDeadline := time.Now().Add(10 * time.Second)
			for {
				if n := runtime.NumGoroutine(); n <= baseline+1 {
					return
				}
				if time.Now().After(settleDeadline) {
					buf := make([]byte, 1<<16)
					n := runtime.Stack(buf, true)
					t.Fatalf("goroutines leaked after streamed cancel: baseline %d, now %d\n%s",
						baseline, runtime.NumGoroutine(), buf[:n])
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// stableGoroutines samples the goroutine count after a settle pause so
// leftovers from earlier tests don't inflate the baseline.
func stableGoroutines(t *testing.T) int {
	t.Helper()
	n := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
		if m := runtime.NumGoroutine(); m < n {
			n = m
		}
	}
	return n
}
