package jobs

import (
	"net/http"
	"sync"
	"testing"
)

// The tests in this file are only meaningful under -race (CI runs the
// suite with it): they hammer the scheduler's terminal transitions
// from many goroutines at once and assert the invariants that must
// hold whoever wins each race.

// TestSchedulerCancelWhileRunningRace races a storm of Cancel and
// Status calls against a running job's drain-to-cancelled transition.
func TestSchedulerCancelWhileRunningRace(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s := NewScheduler(blockingRegistry(started, release), Options{Workers: 1})
	defer s.Close()
	spec := validPSASpec()
	spec.Engine = EngineSerial
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Cancel(job.ID())
				_ = job.Status()
				_ = s.Metrics()
			}
		}()
	}
	wg.Wait()

	st := waitTerminal(t, job)
	if st.State != StateCancelled {
		t.Fatalf("job finished %s, want cancelled", st.State)
	}
	if res, _, _ := job.Result(); res != nil {
		t.Error("cancelled job published a result")
	}
	if s.Metrics().CacheEntries != 0 {
		t.Error("cancelled job reached the cache")
	}
}

// TestAPIDeleteAfterDoneRace races DELETE against result and status
// reads on a finished job: every DELETE must answer 409 (the job is
// already done, cancellation changes nothing) and the result must stay
// served with 200 throughout.
func TestAPIDeleteAfterDoneRace(t *testing.T) {
	ts, _ := newTestServer(t, DefaultRegistry(), Options{Workers: 1})
	st := submitJob(t, ts.URL, validPSASpec())
	if st = pollJob(t, ts.URL, st.ID); st.State != StateDone {
		t.Fatalf("job finished %s", st.State)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch g % 3 {
				case 0:
					if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, ""); code != http.StatusConflict {
						t.Errorf("DELETE after done: got %d, want 409", code)
					}
				case 1:
					if _, code := fetchResult(t, ts.URL, st.ID); code != http.StatusOK {
						t.Errorf("result after done: got %d, want 200", code)
					}
				default:
					if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, ""); code != http.StatusOK {
						t.Errorf("status after done: got %d, want 200", code)
					}
				}
			}
		}()
	}
	wg.Wait()

	if final := pollJob(t, ts.URL, st.ID); final.State != StateDone {
		t.Fatalf("done job mutated to %s by racing DELETEs", final.State)
	}
}

// TestAPIDeleteWhileRunningRace races concurrent DELETEs against a
// running job: whoever wins, every DELETE observes either the
// cancellation request taking effect or the already-cancelled state —
// both 200 — and the job drains to cancelled exactly once.
func TestAPIDeleteWhileRunningRace(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	ts, _ := newTestServer(t, blockingRegistry(started, release), Options{Workers: 1})
	spec := validPSASpec()
	spec.Engine = EngineSerial
	st := submitJob(t, ts.URL, spec)
	<-started

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, "")
				if code != http.StatusOK {
					t.Errorf("DELETE on running/cancelled job: got %d, want 200", code)
				}
			}
		}()
	}
	wg.Wait()

	if final := pollJob(t, ts.URL, st.ID); final.State != StateCancelled {
		t.Fatalf("job finished %s, want cancelled", final.State)
	}
}
