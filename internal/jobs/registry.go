package jobs

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mdtask/internal/blockstore"
	"mdtask/internal/dask"
	"mdtask/internal/engine"
	"mdtask/internal/fleet"
	"mdtask/internal/hausdorff"
	"mdtask/internal/leaflet"
	"mdtask/internal/obs"
	"mdtask/internal/pilot"
	"mdtask/internal/psa"
	"mdtask/internal/rdd"
	"mdtask/internal/traj"
)

// ErrCancelled is returned by runners whose job was cooperatively
// cancelled mid-run; the scheduler maps it to StateCancelled.
var ErrCancelled = errors.New("jobs: job cancelled")

// RunContext is the per-run handle a Runner receives: a cooperative
// cancellation flag polled at block boundaries, the live metrics sink
// of whatever engine the runner brought up (so a running job's status
// can report progress), and the content-addressed block store the run
// consults (nil on the uncached one-shot path).
type RunContext struct {
	cancelled atomic.Bool
	live      atomic.Pointer[engine.Metrics]
	store     atomic.Pointer[blockstore.Store]

	// Observability of the run, set by the owner before the runner
	// starts (the scheduler points obs at its shared bundle and span at
	// the job's run span; the one-shot CLI path leaves both zero, which
	// disables tracing). Plain fields: every handoff to the running
	// goroutine is ordered by the scheduler's queue mutex.
	obs  *obs.Obs
	span obs.SpanContext
}

// NewRunContext returns a context with a fresh metrics sink.
func NewRunContext() *RunContext {
	rc := &RunContext{}
	rc.live.Store(&engine.Metrics{})
	return rc
}

// Cancel requests cooperative cancellation.
func (rc *RunContext) Cancel() { rc.cancelled.Store(true) }

// Cancelled reports whether cancellation was requested. Runners (and
// the engine task bodies they configure) poll it at block boundaries.
func (rc *RunContext) Cancelled() bool { return rc.cancelled.Load() }

// Metrics returns the current live metrics sink.
func (rc *RunContext) Metrics() *engine.Metrics { return rc.live.Load() }

// SetMetrics publishes an engine-owned sink (an rdd Context's or dask
// Client's) as the run's live metrics.
func (rc *RunContext) SetMetrics(m *engine.Metrics) {
	if m != nil {
		rc.live.Store(m)
	}
}

// SetBlockStore attaches the content-addressed block store the run's
// engines consult and record into (the scheduler sets its own at
// submission; nil leaves the run uncached).
func (rc *RunContext) SetBlockStore(s *blockstore.Store) {
	if s != nil {
		rc.store.Store(s)
	}
}

// BlockStore returns the run's block store, or nil when uncached.
func (rc *RunContext) BlockStore() *blockstore.Store { return rc.store.Load() }

// SetObs attaches the run's observability bundle and the span context
// engine-level spans parent under. Must be called before the runner
// starts; nil o leaves tracing disabled.
func (rc *RunContext) SetObs(o *obs.Obs, parent obs.SpanContext) {
	rc.obs = o
	rc.span = parent
}

// Obs returns the run's observability bundle, or nil.
func (rc *RunContext) Obs() *obs.Obs { return rc.obs }

// Tracer returns the run's tracer (nil when tracing is disabled —
// every method of a nil tracer no-ops).
func (rc *RunContext) Tracer() *obs.Tracer {
	if rc.obs == nil {
		return nil
	}
	return rc.obs.Tracer
}

// TraceParent returns the span context engine spans parent under
// (zero when tracing is disabled).
func (rc *RunContext) TraceParent() obs.SpanContext { return rc.span }

// Runner executes one analysis job over already-resolved input and
// returns its result. Runners must poll rc for cancellation and leave
// engine accounting reachable through rc.Metrics().
type Runner func(rc *RunContext, spec Spec, in *Input) (*Result, error)

// Registry maps runner names (RunnerName(analysis, engine)) to runners.
// It replaces the hand-rolled engine-dispatch switches the CLIs used to
// carry, and is the extension point for new analyses or engines.
type Registry struct {
	mu      sync.RWMutex
	runners map[string]Runner
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{runners: make(map[string]Runner)}
}

// Register adds a named runner; registering a nil runner or a duplicate
// name is an error.
func (r *Registry) Register(name string, fn Runner) error {
	if fn == nil {
		return fmt.Errorf("jobs: nil runner %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.runners[name]; dup {
		return fmt.Errorf("jobs: duplicate runner %q", name)
	}
	r.runners[name] = fn
	return nil
}

// Lookup returns the runner registered under name.
func (r *Registry) Lookup(name string) (Runner, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.runners[name]
	return fn, ok
}

// Names lists the registered runner names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.runners))
	for name := range r.runners {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry returns a registry with both analyses registered on
// all six engines. Fleet jobs boot an ephemeral in-process fleet each —
// the CLI one-shot behaviour; servers embedding a shared coordinator
// use RegistryWithFleet.
func DefaultRegistry() *Registry {
	return RegistryWithFleet(nil)
}

// RegistryWithFleet returns the default registry with the fleet
// runners bound to coordinator c, so fleet jobs fan out over whatever
// workers are registered with c (cmd/mdserver passes its embedded
// coordinator). A nil c makes every fleet job boot an ephemeral
// loopback fleet sized by its spec's parallelism instead.
func RegistryWithFleet(c *fleet.Coordinator) *Registry {
	r := NewRegistry()
	for _, eng := range Engines {
		if eng == EngineFleet {
			continue
		}
		must(r.Register(RunnerName(AnalysisPSA, eng), psaRunner(eng)))
		must(r.Register(RunnerName(AnalysisLeaflet, eng), leafletRunner(eng)))
	}
	must(r.Register(RunnerName(AnalysisPSA, EngineFleet), psaFleetRunner(c)))
	must(r.Register(RunnerName(AnalysisLeaflet, EngineFleet), leafletFleetRunner(c)))
	return r
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// ranks resolves the process count of the distributed-memory engines.
func (s Spec) ranks() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return 4
}

// groupSize resolves PSA's block edge length n1 for an N-trajectory
// ensemble ("one task per core" unless Tasks overrides).
func (s Spec) groupSize(n int) int {
	wantTasks := s.Tasks
	if wantTasks <= 0 {
		wantTasks = s.ranks()
	}
	return psa.DefaultGroupSize(n, wantTasks)
}

// hausdorffMethod maps a normalized method name to the kernel.
func (s Spec) hausdorffMethod() hausdorff.Method {
	m, err := hausdorff.ParseMethod(s.Method)
	if err != nil {
		return hausdorff.Naive
	}
	return m
}

// PlannedTasks estimates how many engine tasks a job will run, for
// progress reporting (0: unknown).
func PlannedTasks(spec Spec, in *Input) int {
	switch spec.Analysis {
	case AnalysisPSA:
		blocks, err := psa.Partition(len(in.Refs), spec.groupSize(len(in.Refs)), !spec.FullMatrix)
		if err != nil {
			return 0
		}
		return len(blocks)
	case AnalysisLeaflet:
		if spec.Engine == EngineSerial {
			return 1 // the serial runner is one task, whatever the plan says
		}
		if spec.Engine == EngineFleet {
			// The fleet runs every approach over the 2-D tiling.
			return len(leaflet.Plan2D(len(in.Coords), spec.Tasks))
		}
		if spec.Approach == "broadcast" {
			parts := spec.Tasks
			if spec.Engine == EngineMPI {
				parts = spec.ranks()
			}
			lens, _ := leaflet.Plan1D(len(in.Coords), parts)
			return len(lens)
		}
		return len(leaflet.Plan2D(len(in.Coords), spec.Tasks))
	}
	return 0
}

// psaRunner builds the PSA runner for one engine.
func psaRunner(engineName string) Runner {
	return func(rc *RunContext, spec Spec, in *Input) (*Result, error) {
		refs := in.Refs
		// The engine stage span covers scheduling plus every block task;
		// per-block psa.block spans (and their cache.do children) nest
		// under it through opts.
		engSpan := rc.Tracer().StartChild(rc.TraceParent(), "engine."+engineName)
		defer engSpan.End()
		opts := psa.Opts{
			Symmetric:         !spec.FullMatrix,
			Method:            spec.hausdorffMethod(),
			Cancel:            rc.Cancelled,
			MaxResidentFrames: spec.MaxResidentFrames,
			Tracer:            rc.Tracer(),
			TraceParent:       engSpan.Context(),
			// Every task body consults the run's block store (nil on the
			// uncached one-shot path), so blocks shared with earlier jobs
			// skip their kernels whatever the engine.
			Cache: rc.BlockStore(),
		}
		if o := rc.Obs(); o != nil {
			opts.KernelHist = o.Metrics.Histogram("mdtask_block_kernel_seconds",
				"Wall time of block kernels (PSA blocks and Leaflet tiles).", nil)
		}
		if opts.Method == hausdorff.Pruned && opts.MaxResidentFrames == 0 {
			// Build the packed representation (contiguous frames +
			// per-frame pruning statistics) once up front, O(F·N) per
			// trajectory, so no timed kernel task pays for it. Runs after
			// the cache lookup: a cache hit never packs. The streamed
			// kernel packs windows on the fly instead, so it skips this.
			for _, t := range in.Ens {
				t.Packed()
			}
		}
		n1 := spec.groupSize(len(refs))
		var (
			mat *psa.Matrix
			err error
		)
		// Every engine records the kernel's frame-pair counters through
		// opts.Metrics into the sink its tasks already account to.
		switch engineName {
		case EngineSerial:
			opts.Metrics = rc.Metrics()
			mat, err = runPSASerial(rc, refs, n1, opts)
		case EngineSpark:
			ctx := rdd.NewContext(spec.Parallelism)
			rc.SetMetrics(ctx.Metrics)
			opts.Metrics = ctx.Metrics
			mat, err = psa.RunRDDRefs(ctx, refs, n1, opts)
		case EngineDask:
			client := dask.NewClient(spec.Parallelism)
			rc.SetMetrics(client.Metrics)
			opts.Metrics = client.Metrics
			mat, err = psa.RunDaskRefs(client, refs, n1, opts)
		case EngineMPI:
			opts.Metrics = rc.Metrics()
			mat, err = psa.RunMPIRefs(spec.ranks(), refs, n1, opts)
		case EnginePilot:
			p, cleanup, perr := startPilot(spec.ranks(), rc.Metrics())
			if perr != nil {
				return nil, perr
			}
			defer cleanup()
			opts.Metrics = rc.Metrics()
			mat, err = psa.RunPilotRefs(p, refs, n1, opts)
		default:
			return nil, fmt.Errorf("jobs: unknown engine %q", engineName)
		}
		if err != nil {
			return nil, err
		}
		if rc.Cancelled() {
			return nil, ErrCancelled
		}
		return &Result{Matrix: mat}, nil
	}
}

// runPSASerial runs the block schedule sequentially on one goroutine,
// recording one engine task per block so progress reporting and the
// metrics surface match the parallel engines.
func runPSASerial(rc *RunContext, refs traj.RefEnsemble, n1 int, opts psa.Opts) (*psa.Matrix, error) {
	blocks, err := psa.Partition(len(refs), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	m := rc.Metrics()
	results := make([]psa.BlockResult, 0, len(blocks))
	for _, b := range blocks {
		if rc.Cancelled() {
			return nil, ErrCancelled
		}
		start := time.Now()
		br, err := psa.ComputeBlockRefs(refs, b, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, br)
		m.RecordTask(time.Since(start))
	}
	m.RecordStage()
	return psa.Assemble(len(refs), results), nil
}

// leafletRunner builds the Leaflet Finder runner for one engine.
func leafletRunner(engineName string) Runner {
	return func(rc *RunContext, spec Spec, in *Input) (*Result, error) {
		approach, _, err := ParseApproach(spec.Approach)
		if err != nil {
			return nil, err
		}
		coords, cutoff, tasks := in.Coords, spec.Cutoff, spec.Tasks
		engSpan := rc.Tracer().StartChild(rc.TraceParent(), "engine."+engineName)
		defer engSpan.End()
		cancel := leaflet.WithCancel(rc.Cancelled)
		// tileOpts wires the run's block store into the tile-parallel
		// drivers, keyed under the input's content digest, with cache
		// accounting routed to the engine sink m. The serial and pilot
		// paths have no per-tile unit and rely on whole-job entries.
		tileOpts := func(m *engine.Metrics) []leaflet.Option {
			out := []leaflet.Option{cancel, leaflet.WithTrace(rc.Tracer(), engSpan.Context())}
			if store := rc.BlockStore(); store != nil {
				if digest, derr := in.ContentDigest(); derr == nil {
					out = append(out, leaflet.WithBlockCache(store, digest, m))
				}
			}
			return out
		}
		var res *leaflet.Result
		switch engineName {
		case EngineSerial:
			start := time.Now()
			res = leaflet.Serial(coords, cutoff, cancel)
			rc.Metrics().RecordTask(time.Since(start))
			rc.Metrics().RecordStage()
		case EngineSpark:
			ctx := rdd.NewContext(spec.Parallelism)
			rc.SetMetrics(ctx.Metrics)
			res, err = leaflet.RunRDD(ctx, approach, coords, cutoff, tasks, tileOpts(ctx.Metrics)...)
		case EngineDask:
			client := dask.NewClient(spec.Parallelism)
			rc.SetMetrics(client.Metrics)
			res, err = leaflet.RunDask(client, approach, coords, cutoff, tasks, tileOpts(client.Metrics)...)
		case EngineMPI:
			res, err = leaflet.RunMPI(spec.ranks(), approach, coords, cutoff, tasks,
				append(tileOpts(rc.Metrics()), leaflet.WithMetrics(rc.Metrics()))...)
		case EnginePilot:
			p, cleanup, perr := startPilot(spec.ranks(), rc.Metrics())
			if perr != nil {
				return nil, perr
			}
			defer cleanup()
			res, err = leaflet.RunPilot(p, coords, cutoff, tasks, cancel)
		default:
			return nil, fmt.Errorf("jobs: unknown engine %q", engineName)
		}
		if err != nil {
			return nil, err
		}
		if rc.Cancelled() {
			return nil, ErrCancelled
		}
		return &Result{Leaflet: res}, nil
	}
}

// startPilot brings up a pilot with a temporary staging directory and
// the given metrics sink, returning a cleanup function.
func startPilot(cores int, m *engine.Metrics) (*pilot.Pilot, func(), error) {
	dir, err := os.MkdirTemp("", "mdtask-jobs-pilot-*")
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: creating pilot staging dir: %w", err)
	}
	cfg := pilot.Defaults()
	db := pilot.NewDB(cfg.DBLatency)
	p, err := pilot.NewPilot(cores, dir, db, cfg, m)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return p, func() {
		p.Shutdown()
		os.RemoveAll(dir)
	}, nil
}

// Resolve normalizes a spec and loads or generates its input — the
// first half of a one-shot run, split out so callers can report (and
// time) input loading separately from engine execution.
func Resolve(spec Spec) (Spec, *Input, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return Spec{}, nil, err
	}
	in, err := ResolveInput(norm)
	if err != nil {
		return Spec{}, nil, err
	}
	return norm, in, nil
}

// Run executes an already-resolved spec synchronously on the calling
// goroutine, returning the result and the engine metrics of the run.
// The run is uncached; use RunCached to attach a block store.
func Run(reg *Registry, spec Spec, in *Input) (*Result, MetricsSnapshot, error) {
	return RunCached(reg, spec, in, nil)
}

// RunCached is Run with a content-addressed block store attached: every
// engine's task bodies consult store before running their kernels and
// record completed results into it, so consecutive runs sharing content
// (same input on another engine, or a grown ensemble) recompute only
// missing blocks. A nil store runs uncached.
func RunCached(reg *Registry, spec Spec, in *Input, store *blockstore.Store) (*Result, MetricsSnapshot, error) {
	name := RunnerName(spec.Analysis, spec.Engine)
	runner, ok := reg.Lookup(name)
	if !ok {
		return nil, MetricsSnapshot{}, fmt.Errorf("jobs: no runner registered for %q", name)
	}
	rc := NewRunContext()
	rc.SetBlockStore(store)
	res, err := runner(rc, spec, in)
	return res, SnapshotOf(rc.Metrics()), err
}

// RunLocal is Resolve followed by Run — the one-shot path for callers
// that don't need the two phases separated.
func RunLocal(reg *Registry, spec Spec) (*Input, *Result, MetricsSnapshot, error) {
	norm, in, err := Resolve(spec)
	if err != nil {
		return nil, nil, MetricsSnapshot{}, err
	}
	res, metrics, err := Run(reg, norm, in)
	return in, res, metrics, err
}
