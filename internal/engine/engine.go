// Package engine provides the shared execution machinery of the four
// task-parallel runtimes in this repository: a bounded worker pool with
// panic capture, per-task timing, and the metrics structure every
// runtime reports. The rdd, dask, pilot and mpi packages build their
// framework-specific semantics on top of these primitives.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics accumulates execution statistics of a runtime instance.
// All fields are safe for concurrent update through the methods.
type Metrics struct {
	mu             sync.Mutex
	Tasks          int64
	Stages         int64
	ComputeTime    time.Duration // summed task wall time
	MaxTask        time.Duration
	MinTask        time.Duration
	BytesShuffled  int64
	BytesBroadcast int64
	BytesStaged    int64 // pilot file staging
	Failures       int64

	// Hausdorff kernel frame-pair accounting (see hausdorff.Counters):
	// pairs whose dRMS ran to completion, pairs dismissed in O(1) by a
	// pruning bound or the early-break row cut, and evaluations
	// abandoned mid-sum. Their sum is the total frame pairs scheduled,
	// whatever the kernel method.
	PairsEvaluated int64
	PairsPruned    int64
	PairsAbandoned int64

	// Ball-tree descent accounting of the indexed kernel (see
	// hausdorff.Counters): nodes expanded and nodes dismissed whole by
	// their aggregate lower bound. Additive to — never part of — the
	// pair-sum invariant above; both stay zero for the flat methods.
	NodesVisited int64
	NodesPruned  int64

	// Streaming accounting of the out-of-core trajectory path:
	// PeakResidentFrames is the largest number of frames any single
	// task held materialized at once (≤ 2 × the configured window in
	// streamed runs), and BytesStreamed is the total coordinate bytes
	// decoded from trajectory sources — window re-scans count every
	// time, making the streaming read amplification visible.
	PeakResidentFrames int64
	BytesStreamed      int64

	// Block-cache accounting: task bodies that consult the
	// content-addressed block store count each lookup as a hit (the
	// kernel was skipped and BlockCacheBytesSaved grows by the cached
	// payload size) or a miss (the kernel ran and its result was
	// recorded). Hits run no kernel work, so on a fully warm run the
	// frame-pair counters stay zero while BlockCacheHits equals the
	// schedule's block count.
	BlockCacheHits       int64
	BlockCacheMisses     int64
	BlockCacheBytesSaved int64
}

// RecordTask accounts one completed task of the given duration.
func (m *Metrics) RecordTask(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Tasks++
	m.ComputeTime += d
	if d > m.MaxTask {
		m.MaxTask = d
	}
	if m.MinTask == 0 || d < m.MinTask {
		m.MinTask = d
	}
}

// RecordStage accounts one stage/phase barrier.
func (m *Metrics) RecordStage() { atomic.AddInt64(&m.Stages, 1) }

// AddShuffle accounts bytes moved through a shuffle.
func (m *Metrics) AddShuffle(n int64) { atomic.AddInt64(&m.BytesShuffled, n) }

// AddBroadcast accounts bytes moved through a broadcast.
func (m *Metrics) AddBroadcast(n int64) { atomic.AddInt64(&m.BytesBroadcast, n) }

// AddStaged accounts bytes written to/read from staging files.
func (m *Metrics) AddStaged(n int64) { atomic.AddInt64(&m.BytesStaged, n) }

// RecordFailure accounts one failed task.
func (m *Metrics) RecordFailure() { atomic.AddInt64(&m.Failures, 1) }

// AddPairs accounts Hausdorff kernel frame-pair work: full evaluations,
// O(1)-pruned pairs, and mid-sum abandons.
func (m *Metrics) AddPairs(evaluated, pruned, abandoned int64) {
	atomic.AddInt64(&m.PairsEvaluated, evaluated)
	atomic.AddInt64(&m.PairsPruned, pruned)
	atomic.AddInt64(&m.PairsAbandoned, abandoned)
}

// AddNodes accounts the indexed kernel's ball-tree descent work:
// nodes expanded and nodes dismissed whole by their aggregate bound.
func (m *Metrics) AddNodes(visited, pruned int64) {
	atomic.AddInt64(&m.NodesVisited, visited)
	atomic.AddInt64(&m.NodesPruned, pruned)
}

// ObservePeakResident widens the peak simultaneously-resident frame
// count to at least frames.
func (m *Metrics) ObservePeakResident(frames int64) {
	for {
		cur := atomic.LoadInt64(&m.PeakResidentFrames)
		if frames <= cur || atomic.CompareAndSwapInt64(&m.PeakResidentFrames, cur, frames) {
			return
		}
	}
}

// AddStreamed accounts coordinate bytes decoded from trajectory
// sources.
func (m *Metrics) AddStreamed(n int64) { atomic.AddInt64(&m.BytesStreamed, n) }

// AddBlockCache accounts block-store lookups: hits (with the payload
// bytes the cache saved recomputing) and misses.
func (m *Metrics) AddBlockCache(hits, misses, bytesSaved int64) {
	atomic.AddInt64(&m.BlockCacheHits, hits)
	atomic.AddInt64(&m.BlockCacheMisses, misses)
	atomic.AddInt64(&m.BlockCacheBytesSaved, bytesSaved)
}

// Snapshot returns a copy of the metrics safe to read.
func (m *Metrics) Snapshot() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Tasks:          m.Tasks,
		Stages:         atomic.LoadInt64(&m.Stages),
		ComputeTime:    m.ComputeTime,
		MaxTask:        m.MaxTask,
		MinTask:        m.MinTask,
		BytesShuffled:  atomic.LoadInt64(&m.BytesShuffled),
		BytesBroadcast: atomic.LoadInt64(&m.BytesBroadcast),
		BytesStaged:    atomic.LoadInt64(&m.BytesStaged),
		Failures:       atomic.LoadInt64(&m.Failures),
		PairsEvaluated: atomic.LoadInt64(&m.PairsEvaluated),
		PairsPruned:    atomic.LoadInt64(&m.PairsPruned),
		PairsAbandoned: atomic.LoadInt64(&m.PairsAbandoned),
		NodesVisited:   atomic.LoadInt64(&m.NodesVisited),
		NodesPruned:    atomic.LoadInt64(&m.NodesPruned),

		PeakResidentFrames: atomic.LoadInt64(&m.PeakResidentFrames),
		BytesStreamed:      atomic.LoadInt64(&m.BytesStreamed),

		BlockCacheHits:       atomic.LoadInt64(&m.BlockCacheHits),
		BlockCacheMisses:     atomic.LoadInt64(&m.BlockCacheMisses),
		BlockCacheBytesSaved: atomic.LoadInt64(&m.BlockCacheBytesSaved),
	}
}

// MergeFrom folds the current totals of another sink into m: counters
// and durations add, task extrema widen. The job scheduler uses it to
// aggregate per-job engine metrics into a service-wide view.
func (m *Metrics) MergeFrom(other *Metrics) {
	if other == nil {
		return
	}
	s := other.Snapshot()
	m.mu.Lock()
	m.Tasks += s.Tasks
	m.ComputeTime += s.ComputeTime
	if s.MaxTask > m.MaxTask {
		m.MaxTask = s.MaxTask
	}
	if s.MinTask > 0 && (m.MinTask == 0 || s.MinTask < m.MinTask) {
		m.MinTask = s.MinTask
	}
	m.mu.Unlock()
	atomic.AddInt64(&m.Stages, s.Stages)
	atomic.AddInt64(&m.BytesShuffled, s.BytesShuffled)
	atomic.AddInt64(&m.BytesBroadcast, s.BytesBroadcast)
	atomic.AddInt64(&m.BytesStaged, s.BytesStaged)
	atomic.AddInt64(&m.Failures, s.Failures)
	m.AddPairs(s.PairsEvaluated, s.PairsPruned, s.PairsAbandoned)
	m.AddNodes(s.NodesVisited, s.NodesPruned)
	m.ObservePeakResident(s.PeakResidentFrames)
	m.AddStreamed(s.BytesStreamed)
	m.AddBlockCache(s.BlockCacheHits, s.BlockCacheMisses, s.BlockCacheBytesSaved)
}

// TaskPanicError wraps a panic recovered from a task so callers get an
// error instead of a crashed process.
type TaskPanicError struct {
	Task  int
	Value interface{}
}

func (e *TaskPanicError) Error() string {
	return fmt.Sprintf("engine: task %d panicked: %v", e.Task, e.Value)
}

// Pool is a bounded parallel-for executor.
type Pool struct {
	workers int
	metrics *Metrics
}

// NewPool creates a pool with the given parallelism; values < 1 default
// to GOMAXPROCS. The metrics sink may be nil.
func NewPool(workers int, m *Metrics) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, metrics: m}
}

// Workers returns the pool's parallelism.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for i in [0, n) on the pool's workers and returns
// the first error (including recovered panics). All n iterations are
// attempted even after an error so that partial results are complete.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		next    int64 = -1
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	record := func(err error) {
		if err != nil {
			if p.metrics != nil {
				p.metrics.RecordFailure()
			}
			errOnce.Do(func() { first = err })
		}
	}
	run := func(i int) {
		start := time.Now()
		defer func() {
			if v := recover(); v != nil {
				record(&TaskPanicError{Task: i, Value: v})
			}
			if p.metrics != nil {
				p.metrics.RecordTask(time.Since(start))
			}
		}()
		record(fn(i))
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return first
}

// Timed runs fn and returns its wall-clock duration alongside its error.
func Timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
