package engine

import (
	"reflect"
	"testing"
)

// The scheduler's service-wide aggregate and the fleet's cross-process
// result fold both rely on Snapshot and MergeFrom seeing every field.
// These reflection tests fail the moment someone adds a Metrics field
// without extending them, instead of silently dropping the new counter
// from /v1/metrics.

// setDistinct fills every exported field of m with a distinct nonzero
// value (field index + 1) and returns the expected values by name.
func setDistinct(t *testing.T, m *Metrics) map[string]int64 {
	t.Helper()
	want := make(map[string]int64)
	rv := reflect.ValueOf(m).Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue // the mutex
		}
		if f.Type.Kind() != reflect.Int64 {
			t.Fatalf("Metrics.%s has kind %s; extend this test for non-int64 fields", f.Name, f.Type.Kind())
		}
		v := int64(i + 1)
		rv.Field(i).SetInt(v)
		want[f.Name] = v
	}
	return want
}

func exportedValues(m *Metrics) map[string]int64 {
	got := make(map[string]int64)
	rv := reflect.ValueOf(m).Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		if !rt.Field(i).IsExported() {
			continue
		}
		got[rt.Field(i).Name] = rv.Field(i).Int()
	}
	return got
}

func TestMetricsSnapshotCoversEveryField(t *testing.T) {
	var m Metrics
	want := setDistinct(t, &m)
	snap := m.Snapshot()
	got := exportedValues(&snap)
	for name, w := range want {
		if got[name] != w {
			t.Errorf("Snapshot drops or mangles Metrics.%s: got %d, want %d", name, got[name], w)
		}
	}
}

func TestMetricsMergeFromCoversEveryField(t *testing.T) {
	var src, dst Metrics
	want := setDistinct(t, &src)
	dst.MergeFrom(&src)
	snap := dst.Snapshot()
	got := exportedValues(&snap)
	// Merging into a zero sink must carry every field over: counters and
	// durations add from zero, extrema (MaxTask, MinTask,
	// PeakResidentFrames) widen from zero.
	for name, w := range want {
		if got[name] != w {
			t.Errorf("MergeFrom drops or mangles Metrics.%s: got %d, want %d", name, got[name], w)
		}
	}
}

func TestMetricsMergeFromNil(t *testing.T) {
	var dst Metrics
	dst.MergeFrom(nil) // must not panic
	if got := dst.Snapshot().Tasks; got != 0 {
		t.Fatalf("MergeFrom(nil) mutated the sink: Tasks = %d", got)
	}
}
