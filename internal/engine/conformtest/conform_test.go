// Package conformtest locks down the cross-engine PSA contract: every
// engine × every kernel method × both schedules × both residency modes
// (fully in-memory and streamed out-of-core windows) must produce the
// bit-identical distance matrix, with self-consistent metrics counters.
// It runs through the jobs registry — the exact dispatch surface
// cmd/psa and cmd/mdserver use — and replaces the ad-hoc per-driver
// comparison tests the psa package used to carry.
package conformtest

import (
	"fmt"
	"path/filepath"
	"testing"

	"mdtask/internal/hausdorff"
	"mdtask/internal/jobs"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

const (
	confN      = 4
	confAtoms  = 6
	confFrames = 6
	confWindow = 2
	confSeed   = 23
)

// writeConformEnsemble generates the shared input ensemble and writes
// it as .mdt files, returning the directory.
func writeConformEnsemble(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < confN; i++ {
		tr := synth.Walk(fmt.Sprintf("c%d", i), confAtoms, confFrames, confSeed, uint64(i))
		if err := traj.WriteMDTFile(filepath.Join(dir, tr.Name+".mdt"), tr, 8); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// expectedDirectedPairs is the frame-pair total every run's counters
// must sum to: each scheduled trajectory comparison scans 2·F² directed
// pairs, and the symmetric schedule drops the diagonal and mirror half.
func expectedDirectedPairs(fullMatrix bool) int64 {
	perPair := int64(2 * confFrames * confFrames)
	if fullMatrix {
		return int64(confN*confN) * perPair
	}
	return int64(confN*(confN-1)/2) * perPair
}

func TestPSAEngineConformance(t *testing.T) {
	dir := writeConformEnsemble(t)
	reg := jobs.DefaultRegistry()

	// Reference: the serial naive in-memory matrix.
	_, ref, _, err := jobs.RunLocal(reg, jobs.Spec{
		Analysis: jobs.AnalysisPSA, Engine: jobs.EngineSerial, Path: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Matrix
	if want.N != confN {
		t.Fatalf("reference matrix is %d×%d, want %d", want.N, want.N, confN)
	}

	for _, engine := range jobs.Engines {
		for _, m := range hausdorff.Methods {
			method := m.String()
			for _, fullMatrix := range []bool{false, true} {
				for _, maxFrames := range []int{0, confWindow} {
					engine, method, fullMatrix, maxFrames := engine, method, fullMatrix, maxFrames
					name := fmt.Sprintf("%s/%s/full=%v/window=%d", engine, method, fullMatrix, maxFrames)
					t.Run(name, func(t *testing.T) {
						spec := jobs.Spec{
							Analysis:          jobs.AnalysisPSA,
							Engine:            engine,
							Parallelism:       2,
							Method:            method,
							FullMatrix:        fullMatrix,
							MaxResidentFrames: maxFrames,
							Path:              dir,
						}
						in, res, metrics, err := jobs.RunLocal(reg, spec)
						if err != nil {
							t.Fatal(err)
						}
						got := res.Matrix
						if got.N != want.N {
							t.Fatalf("matrix is %d×%d, want %d", got.N, got.N, want.N)
						}
						for i := range want.Data {
							if got.Data[i] != want.Data[i] {
								t.Fatalf("matrix differs from serial naive reference at flat index %d: %v != %v",
									i, got.Data[i], want.Data[i])
							}
						}

						// Counter invariant: every scheduled directed frame
						// pair lands in exactly one bucket.
						total := metrics.PairsEvaluated + metrics.PairsPruned + metrics.PairsAbandoned
						if wantPairs := expectedDirectedPairs(fullMatrix); total != wantPairs {
							t.Fatalf("counters evaluated=%d pruned=%d abandoned=%d sum to %d, want %d",
								metrics.PairsEvaluated, metrics.PairsPruned, metrics.PairsAbandoned, total, wantPairs)
						}
						if metrics.PairsEvaluated <= 0 {
							t.Fatal("no evaluations recorded")
						}
						// Node counters are additive to the pair invariant:
						// the indexed kernel must report descent work, the
						// flat methods must report none.
						if method == "indexed" {
							if metrics.NodesVisited <= 0 {
								t.Fatal("indexed run visited no ball-tree nodes")
							}
						} else if metrics.NodesVisited != 0 || metrics.NodesPruned != 0 {
							t.Fatalf("flat method %q recorded node counters: visited=%d pruned=%d",
								method, metrics.NodesVisited, metrics.NodesPruned)
						}

						if maxFrames > 0 {
							// Streamed runs resolve file-backed handles (no
							// loaded ensemble) and respect the residency bound.
							if in.Ens != nil {
								t.Fatal("streamed run materialized the ensemble at resolve time")
							}
							if metrics.PeakResidentFrames == 0 || metrics.PeakResidentFrames > 2*confWindow {
								t.Fatalf("peak resident %d frames, want 1..%d", metrics.PeakResidentFrames, 2*confWindow)
							}
							if metrics.BytesStreamed <= 0 {
								t.Fatal("streamed run accounted no streamed bytes")
							}
						} else {
							if in.Ens == nil {
								t.Fatal("in-memory run did not load the ensemble")
							}
							if metrics.PeakResidentFrames != 0 || metrics.BytesStreamed != 0 {
								t.Fatalf("in-memory run recorded streaming accounting: peak=%d bytes=%d",
									metrics.PeakResidentFrames, metrics.BytesStreamed)
							}
						}
					})
				}
			}
		}
	}
}

// Streamed and in-memory submissions of the same on-disk input must
// share a cache identity: the input digest is computed window by window
// for streamed refs, and the spec normalizes max_resident_frames out of
// the cache key.
func TestStreamedCacheIdentity(t *testing.T) {
	dir := writeConformEnsemble(t)
	base := jobs.Spec{Analysis: jobs.AnalysisPSA, Engine: jobs.EngineSerial, Path: dir}
	normMem, inMem, err := jobs.Resolve(base)
	if err != nil {
		t.Fatal(err)
	}
	streamed := base
	streamed.MaxResidentFrames = confWindow
	normStr, inStr, err := jobs.Resolve(streamed)
	if err != nil {
		t.Fatal(err)
	}
	dMem, err := inMem.ContentDigest()
	if err != nil {
		t.Fatal(err)
	}
	dStr, err := inStr.ContentDigest()
	if err != nil {
		t.Fatal(err)
	}
	if dMem != dStr {
		t.Fatalf("streamed digest %s != in-memory digest %s", dStr, dMem)
	}
	if jobs.CacheKey(normMem, dMem) != jobs.CacheKey(normStr, dStr) {
		t.Fatal("streamed submission does not hit the in-memory cache entry")
	}
}
