// Cold-vs-warm-cache column of the conformance matrix: every engine ×
// method × schedule must be bit-identical when served from a warm block
// store, with kernel work dropping to exactly the missing-block share —
// zero on a fully warm store, only the new row/column blocks on a
// grown ensemble.
package conformtest

import (
	"fmt"
	"testing"

	"mdtask/internal/blockstore"
	"mdtask/internal/hausdorff"
	"mdtask/internal/jobs"
	"mdtask/internal/psa"
)

// conformBlocks is the schedule size of the conformance spec
// (Parallelism=2 → n1=2 over the 4-trajectory ensemble).
func conformBlocks(t *testing.T, fullMatrix bool) int {
	t.Helper()
	blocks, err := psa.Partition(confN, 2, !fullMatrix)
	if err != nil {
		t.Fatal(err)
	}
	return len(blocks)
}

func TestPSAWarmCacheConformance(t *testing.T) {
	dir := writeConformEnsemble(t)
	reg := jobs.DefaultRegistry()
	_, ref, _, err := jobs.RunLocal(reg, jobs.Spec{
		Analysis: jobs.AnalysisPSA, Engine: jobs.EngineSerial, Path: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Matrix

	for _, engine := range jobs.Engines {
		for _, m := range hausdorff.Methods {
			method := m.String()
			for _, fullMatrix := range []bool{false, true} {
				for _, maxFrames := range []int{0, confWindow} {
					engine, method, fullMatrix, maxFrames := engine, method, fullMatrix, maxFrames
					name := fmt.Sprintf("%s/%s/full=%v/window=%d", engine, method, fullMatrix, maxFrames)
					t.Run(name, func(t *testing.T) {
						store := blockstore.New(0)
						spec := jobs.Spec{
							Analysis:          jobs.AnalysisPSA,
							Engine:            engine,
							Parallelism:       2,
							Method:            method,
							FullMatrix:        fullMatrix,
							MaxResidentFrames: maxFrames,
							Path:              dir,
						}
						norm, in, err := jobs.Resolve(spec)
						if err != nil {
							t.Fatal(err)
						}
						nBlocks := int64(conformBlocks(t, fullMatrix))

						cold, coldM, err := jobs.RunCached(reg, norm, in, store)
						if err != nil {
							t.Fatal(err)
						}
						for i := range want.Data {
							if cold.Matrix.Data[i] != want.Data[i] {
								t.Fatalf("cold matrix differs at %d", i)
							}
						}
						if coldM.BlockCacheHits != 0 || coldM.BlockCacheMisses != nBlocks {
							t.Fatalf("cold lookups: hits=%d misses=%d, want 0/%d",
								coldM.BlockCacheHits, coldM.BlockCacheMisses, nBlocks)
						}

						warm, warmM, err := jobs.RunCached(reg, norm, in, store)
						if err != nil {
							t.Fatal(err)
						}
						for i := range want.Data {
							if warm.Matrix.Data[i] != want.Data[i] {
								t.Fatalf("warm matrix differs at %d", i)
							}
						}
						if warmM.BlockCacheHits != nBlocks || warmM.BlockCacheMisses != 0 {
							t.Fatalf("warm lookups: hits=%d misses=%d, want %d/0",
								warmM.BlockCacheHits, warmM.BlockCacheMisses, nBlocks)
						}
						// Every block was served from the store: no kernel ran.
						if total := warmM.PairsEvaluated + warmM.PairsPruned + warmM.PairsAbandoned; total != 0 {
							t.Fatalf("warm run evaluated %d directed pairs, want 0", total)
						}
						if warmM.NodesVisited != 0 || warmM.NodesPruned != 0 {
							t.Fatalf("warm run descended ball trees: visited=%d pruned=%d",
								warmM.NodesVisited, warmM.NodesPruned)
						}
						if warmM.BlockCacheBytesSaved <= 0 {
							t.Fatal("warm run saved no bytes")
						}
					})
				}
			}
		}
	}
}

// Growing a cached ensemble by one trajectory must recompute only the
// new row/column blocks — O(ΔN·N) of the O(N²) schedule — on every
// engine, and still assemble the bit-identical full matrix.
func TestPSADeltaResubmissionRunsOnlyMissingBlocks(t *testing.T) {
	const (
		baseN  = 4
		grownN = 5
		atoms  = 8
		frames = 4
		seed   = 101
	)
	synthSpec := func(count int, engine string) jobs.Spec {
		return jobs.Spec{
			Analysis: jobs.AnalysisPSA,
			Engine:   engine,
			Tasks:    64, // force n1=1: one block per trajectory pair
			Synth:    &jobs.SynthSpec{Count: count, Atoms: atoms, Frames: frames, Seed: seed},
		}
	}
	reg := jobs.DefaultRegistry()

	// Uncached reference for the grown ensemble.
	_, ref, _, err := jobs.RunLocal(reg, synthSpec(grownN, jobs.EngineSerial))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Matrix

	// n1=1 triangular schedules: 10 blocks over 4, 15 over 5 — the 5
	// new ones are trajectory 4's row, of which the 1×1 diagonal block
	// holds no pairs, so exactly 4 new comparisons × 2F² directed pairs
	// run on the delta submission.
	const (
		baseBlocks  = baseN * (baseN + 1) / 2
		grownBlocks = grownN * (grownN + 1) / 2
		deltaPairs  = int64(baseN * 2 * frames * frames)
	)

	for _, engine := range jobs.Engines {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			store := blockstore.New(0)

			norm1, in1, err := jobs.Resolve(synthSpec(baseN, engine))
			if err != nil {
				t.Fatal(err)
			}
			_, m1, err := jobs.RunCached(reg, norm1, in1, store)
			if err != nil {
				t.Fatal(err)
			}
			if m1.BlockCacheMisses != baseBlocks || m1.BlockCacheHits != 0 {
				t.Fatalf("base run lookups: hits=%d misses=%d, want 0/%d",
					m1.BlockCacheHits, m1.BlockCacheMisses, baseBlocks)
			}

			norm2, in2, err := jobs.Resolve(synthSpec(grownN, engine))
			if err != nil {
				t.Fatal(err)
			}
			res, m2, err := jobs.RunCached(reg, norm2, in2, store)
			if err != nil {
				t.Fatal(err)
			}
			if m2.BlockCacheHits != baseBlocks || m2.BlockCacheMisses != grownBlocks-baseBlocks {
				t.Fatalf("delta run lookups: hits=%d misses=%d, want %d/%d",
					m2.BlockCacheHits, m2.BlockCacheMisses, baseBlocks, grownBlocks-baseBlocks)
			}
			if total := m2.PairsEvaluated + m2.PairsPruned + m2.PairsAbandoned; total != deltaPairs {
				t.Fatalf("delta run scanned %d directed pairs, want %d (the new row only)",
					total, deltaPairs)
			}
			if res.Matrix.N != grownN {
				t.Fatalf("delta matrix is %d×%d", res.Matrix.N, res.Matrix.N)
			}
			for i := range want.Data {
				if res.Matrix.Data[i] != want.Data[i] {
					t.Fatalf("%s: delta-assembled matrix differs from reference at flat index %d: %v != %v",
						engine, i, res.Matrix.Data[i], want.Data[i])
				}
			}
		})
	}
}
