package engine

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllIterations(t *testing.T) {
	p := NewPool(4, nil)
	var count int64
	seen := make([]int32, 100)
	err := p.ForEach(100, func(i int) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt32(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestPoolErrorPropagation(t *testing.T) {
	p := NewPool(3, nil)
	want := errors.New("boom")
	var ran int64
	err := p.ForEach(50, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 7 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	if ran != 50 {
		t.Errorf("only %d iterations ran; all should be attempted", ran)
	}
}

func TestPoolPanicCapture(t *testing.T) {
	m := &Metrics{}
	p := NewPool(2, m)
	err := p.ForEach(10, func(i int) error {
		if i == 3 {
			panic("kaboom")
		}
		return nil
	})
	var pe *TaskPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want TaskPanicError", err)
	}
	if pe.Task != 3 {
		t.Errorf("panicked task = %d", pe.Task)
	}
	if m.Snapshot().Failures != 1 {
		t.Errorf("failures = %d", m.Snapshot().Failures)
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, nil)
	if p.Workers() < 1 {
		t.Errorf("Workers = %d", p.Workers())
	}
	if err := p.ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("ForEach(0) = %v", err)
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := &Metrics{}
	m.RecordTask(2 * time.Millisecond)
	m.RecordTask(5 * time.Millisecond)
	m.RecordStage()
	m.AddShuffle(100)
	m.AddBroadcast(50)
	m.AddStaged(25)
	s := m.Snapshot()
	if s.Tasks != 2 || s.Stages != 1 {
		t.Errorf("tasks=%d stages=%d", s.Tasks, s.Stages)
	}
	if s.ComputeTime != 7*time.Millisecond {
		t.Errorf("compute = %v", s.ComputeTime)
	}
	if s.MaxTask != 5*time.Millisecond || s.MinTask != 2*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.MinTask, s.MaxTask)
	}
	if s.BytesShuffled != 100 || s.BytesBroadcast != 50 || s.BytesStaged != 25 {
		t.Errorf("bytes = %d/%d/%d", s.BytesShuffled, s.BytesBroadcast, s.BytesStaged)
	}
}

func TestMetricsPairCounters(t *testing.T) {
	m := &Metrics{}
	m.AddPairs(10, 20, 5)
	m.AddPairs(1, 2, 3)
	s := m.Snapshot()
	if s.PairsEvaluated != 11 || s.PairsPruned != 22 || s.PairsAbandoned != 8 {
		t.Errorf("pairs = %d/%d/%d", s.PairsEvaluated, s.PairsPruned, s.PairsAbandoned)
	}
	agg := &Metrics{}
	agg.AddPairs(100, 0, 0)
	agg.MergeFrom(m)
	if got := agg.Snapshot(); got.PairsEvaluated != 111 || got.PairsPruned != 22 || got.PairsAbandoned != 8 {
		t.Errorf("merged pairs = %d/%d/%d", got.PairsEvaluated, got.PairsPruned, got.PairsAbandoned)
	}
}

func TestTimed(t *testing.T) {
	d, err := Timed(func() error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err != nil || d < 5*time.Millisecond {
		t.Errorf("d=%v err=%v", d, err)
	}
}

func TestPoolMoreWorkersThanTasks(t *testing.T) {
	p := NewPool(64, nil)
	var count int64
	if err := p.ForEach(3, func(int) error { atomic.AddInt64(&count, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d", count)
	}
}
