package cluster

import (
	mathrand "math/rand"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func alloc(m Machine, nodes, cpn int) Alloc {
	return Alloc{Machine: m, Nodes: nodes, CoresPerNode: cpn}
}

func TestSlowdown(t *testing.T) {
	m := Comet()
	if got := m.Slowdown(24); got != 1 {
		t.Errorf("Comet at physical cores: slowdown = %v", got)
	}
	w := Wrangler()
	under := w.Slowdown(24)
	over := w.Slowdown(32)
	if over <= under {
		t.Errorf("oversubscribed slowdown %v should exceed %v", over, under)
	}
	// Total throughput with all 48 logical cores should still beat 24
	// physical cores: 48/slowdown(48) > 24/slowdown(24).
	if 48/w.Slowdown(48) <= 24/w.Slowdown(24) {
		t.Error("hyper-threading provides no aggregate benefit")
	}
}

func TestEstimateMoreCoresFaster(t *testing.T) {
	w := Workload{Phases: []Phase{{Name: "p", Tasks: UniformTasks(256, 1.0)}}}
	for _, fw := range Frameworks {
		p := DefaultProfile(fw)
		t1 := Estimate(p, alloc(Comet(), 1, 16), w)
		t2 := Estimate(p, alloc(Comet(), 4, 16), w)
		if t1.Failed != "" || t2.Failed != "" {
			t.Fatalf("%v: unexpected failure %q %q", fw, t1.Failed, t2.Failed)
		}
		if t2.Makespan >= t1.Makespan {
			t.Errorf("%v: 4 nodes (%.1fs) not faster than 1 (%.1fs)", fw, t2.Makespan, t1.Makespan)
		}
	}
}

func TestThroughputOrdering(t *testing.T) {
	// The paper's headline: Dask > Spark >> RADICAL-Pilot on null tasks.
	w := Workload{Phases: []Phase{{Name: "null", Tasks: UniformTasks(4096, 0)}}}
	a := alloc(Wrangler(), 1, 24)
	rate := func(fw Framework) float64 {
		p := DefaultProfile(fw)
		p.Startup = 0
		return Estimate(p, a, w).Throughput(4096)
	}
	dask, spark, rp := rate(Dask), rate(Spark), rate(RadicalPilot)
	if !(dask > spark && spark > rp) {
		t.Fatalf("ordering violated: dask=%.0f spark=%.0f rp=%.0f", dask, spark, rp)
	}
	if dask < 5*spark {
		t.Errorf("Dask (%.0f/s) should be ~an order above Spark (%.0f/s)", dask, spark)
	}
	if rp > 100 {
		t.Errorf("RADICAL-Pilot throughput %.0f/s exceeds the paper's <100 plateau", rp)
	}
}

func TestRPPlateauAcrossNodes(t *testing.T) {
	w := Workload{Phases: []Phase{{Name: "null", Tasks: UniformTasks(8192, 0)}}}
	p := DefaultProfile(RadicalPilot)
	p.Startup = 0
	r1 := Estimate(p, alloc(Wrangler(), 1, 24), w).Throughput(8192)
	r4 := Estimate(p, alloc(Wrangler(), 4, 24), w).Throughput(8192)
	if r4 > 1.2*r1 {
		t.Errorf("RP throughput scaled with nodes (%.0f -> %.0f); should plateau", r1, r4)
	}
}

func TestMemoryLimitFails(t *testing.T) {
	w := Workload{Phases: []Phase{{
		Name:            "big",
		Tasks:           UniformTasks(64, 1),
		MemPerTaskBytes: 10 << 30, // 10 GB x 24 workers > 128 GB node
	}}}
	res := Estimate(DefaultProfile(Spark), alloc(Comet(), 1, 24), w)
	if res.Failed == "" {
		t.Fatal("memory overcommit not detected")
	}
	if !strings.Contains(res.Failed, "memory") {
		t.Errorf("failure message %q", res.Failed)
	}
	// MPI with factor 1.0 may fit where Dask with factor 3.0 fails.
	w.Phases[0].MemPerTaskBytes = 4 << 30
	if res := Estimate(DefaultProfile(MPI), alloc(Comet(), 1, 24), w); res.Failed != "" {
		t.Errorf("MPI failed: %s", res.Failed)
	}
	if res := Estimate(DefaultProfile(Dask), alloc(Comet(), 1, 24), w); res.Failed == "" {
		t.Error("Dask's 3x object overhead should exceed node memory")
	}
}

func TestMaxTasksLimit(t *testing.T) {
	p := DefaultProfile(Spark)
	p.MaxTasks = 100
	w := Workload{Phases: []Phase{{Name: "p", Tasks: UniformTasks(101, 0)}}}
	if res := Estimate(p, alloc(Comet(), 1, 24), w); res.Failed == "" {
		t.Error("MaxTasks not enforced")
	}
}

func TestBroadcastShapes(t *testing.T) {
	// MPI broadcast grows with rank count; Spark's stays flat.
	w := func() Workload {
		return Workload{Phases: []Phase{{
			Name:           "bc",
			Tasks:          UniformTasks(64, 0.01),
			BroadcastBytes: 100 << 20,
		}}}
	}
	mpiSmall := Estimate(DefaultProfile(MPI), alloc(Comet(), 1, 24), w()).Broadcast
	mpiBig := Estimate(DefaultProfile(MPI), alloc(Comet(), 8, 24), w()).Broadcast
	if mpiBig <= mpiSmall {
		t.Errorf("MPI broadcast did not grow with ranks: %v -> %v", mpiSmall, mpiBig)
	}
	sparkSmall := Estimate(DefaultProfile(Spark), alloc(Comet(), 1, 24), w()).Broadcast
	sparkBig := Estimate(DefaultProfile(Spark), alloc(Comet(), 8, 24), w()).Broadcast
	if sparkBig > sparkSmall*1.5 {
		t.Errorf("Spark broadcast not ~flat: %v -> %v", sparkSmall, sparkBig)
	}
}

func TestShuffleCosts(t *testing.T) {
	w := Workload{Phases: []Phase{{
		Name:         "sh",
		Tasks:        UniformTasks(64, 0.01),
		ShuffleBytes: 1 << 30,
	}}}
	a := alloc(Comet(), 4, 24)
	spark := Estimate(DefaultProfile(Spark), a, w).Shuffle
	dask := Estimate(DefaultProfile(Dask), a, w).Shuffle
	rp := Estimate(DefaultProfile(RadicalPilot), a, w).Shuffle
	if dask <= spark {
		t.Errorf("Dask shuffle (%v) should cost more than Spark's (%v)", dask, spark)
	}
	if rp <= 0 {
		t.Error("RP filesystem-based exchange should cost time")
	}
}

func TestStaticVsDispatchSchedule(t *testing.T) {
	tasks := UniformTasks(100, 1)
	static := staticSchedule(tasks, 10, 1, 0)
	if static != 10 {
		t.Errorf("static makespan = %v, want 10", static)
	}
	disp := dispatchSchedule(tasks, 10, 1, 0, 0.001)
	if disp < 10 || disp > 11 {
		t.Errorf("dispatch makespan = %v, want ~10", disp)
	}
	// Dispatch serialization dominates when tasks are tiny.
	nullDisp := dispatchSchedule(UniformTasks(1000, 0), 10, 1, 0, 0.01)
	if nullDisp < 9.99 {
		t.Errorf("dispatcher-bound makespan = %v, want ~10", nullDisp)
	}
}

func TestEmptyWorkloadAndAlloc(t *testing.T) {
	res := Estimate(DefaultProfile(MPI), alloc(Comet(), 0, 0), Workload{})
	if res.Failed == "" {
		t.Error("empty allocation accepted")
	}
	res = Estimate(DefaultProfile(MPI), alloc(Comet(), 1, 24), Workload{})
	if res.Failed != "" || res.Makespan != DefaultProfile(MPI).Startup {
		t.Errorf("empty workload: %+v", res)
	}
}

func TestColdStartOverhead(t *testing.T) {
	w := func(cold bool) Workload {
		return Workload{Phases: []Phase{{Name: "p", Tasks: UniformTasks(32, 0.1), ColdStart: cold}}}
	}
	p := DefaultProfile(RadicalPilot)
	warm := Estimate(p, alloc(Wrangler(), 1, 32), w(false)).Makespan
	cold := Estimate(p, alloc(Wrangler(), 1, 32), w(true)).Makespan
	if cold <= warm+5 {
		t.Errorf("cold start added too little: %v vs %v", cold, warm)
	}
}

func TestSortedDescending(t *testing.T) {
	in := []float64{1, 3, 2}
	out := SortedDescending(in)
	if out[0] != 3 || out[1] != 2 || out[2] != 1 {
		t.Errorf("SortedDescending = %v", out)
	}
	if in[0] != 1 {
		t.Error("input mutated")
	}
}

func TestResultThroughput(t *testing.T) {
	r := Result{Makespan: 2}
	if got := r.Throughput(100); got != 50 {
		t.Errorf("Throughput = %v", got)
	}
	r.Failed = "x"
	if got := r.Throughput(100); got != 0 {
		t.Errorf("failed Throughput = %v", got)
	}
}

func TestFrameworkStrings(t *testing.T) {
	names := map[Framework]string{
		MPI: "MPI4py", Spark: "Spark", Dask: "Dask", RadicalPilot: "RADICAL-Pilot",
	}
	for fw, want := range names {
		if fw.String() != want {
			t.Errorf("%d.String() = %q", int(fw), fw.String())
		}
	}
	if !strings.Contains(Framework(42).String(), "42") {
		t.Error("unknown framework string")
	}
}

func TestIOBytesSerializedAtFSBandwidth(t *testing.T) {
	w := Workload{Phases: []Phase{{
		Name:    "io",
		Tasks:   UniformTasks(64, 0),
		IOBytes: 30 << 30, // 30 GB at 3 GB/s = 10s regardless of cores
	}}}
	p := DefaultProfile(MPI)
	p.Startup = 0
	small := Estimate(p, alloc(Comet(), 1, 24), w)
	big := Estimate(p, alloc(Comet(), 8, 24), w)
	if small.IO < 9 || big.IO < 9 {
		t.Errorf("IO time = %v / %v, want ~10s", small.IO, big.IO)
	}
}

// Property: the makespan never beats the ideal lower bound
// (total-compute/cores and the dispatch-serialization floor), and adding
// cores never hurts, across randomized workloads.
func TestEstimateBoundsQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(args []reflect.Value, r *mathrand.Rand) {
			args[0] = reflect.ValueOf(uint64(r.Int63()))
			args[1] = reflect.ValueOf(1 + r.Intn(500))
			// Stay within physical cores: oversubscribing a non-HT
			// machine legitimately never helps.
			args[2] = reflect.ValueOf(1 + r.Intn(20))
		},
	}
	f := func(seed uint64, nTasks, cores int) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		tasks := make([]float64, nTasks)
		var total float64
		for i := range tasks {
			tasks[i] = r.Float64()
			total += tasks[i]
		}
		w := Workload{Phases: []Phase{{Name: "p", Tasks: tasks}}}
		for _, fw := range Frameworks {
			p := DefaultProfile(fw)
			a := Alloc{Machine: Comet(), Nodes: 1, CoresPerNode: cores}
			res := Estimate(p, a, w)
			if res.Failed != "" {
				return false
			}
			// Lower bounds: compute spread over cores, dispatch serialization.
			ideal := p.Startup + total/float64(min(cores, nTasks))
			if res.Makespan < ideal-1e-9 {
				return false
			}
			if res.Makespan < p.Startup+float64(nTasks)*p.DispatchLatency-1e-9 {
				return false
			}
			// Near-monotonicity: greedy list scheduling admits Graham
			// anomalies (adding workers can lengthen the schedule by a
			// bounded factor), so allow a small regression.
			more := Estimate(p, Alloc{Machine: Comet(), Nodes: 1, CoresPerNode: cores + 4}, w)
			if more.Failed == "" && more.Makespan > res.Makespan*1.25+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
