package cluster

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The analytic Estimate and the event-driven Simulate are independent
// implementations of the same scheduling model; they must agree.

func TestSimulateMatchesEstimateUniform(t *testing.T) {
	w := Workload{Phases: []Phase{{Name: "p", Tasks: UniformTasks(200, 0.5)}}}
	for _, fw := range Frameworks {
		p := DefaultProfile(fw)
		a := alloc(Comet(), 2, 16)
		est := Estimate(p, a, w)
		if est.Failed != "" {
			t.Fatalf("%v: estimate failed: %s", fw, est.Failed)
		}
		trc, err := Simulate(p, a, w)
		if err != nil {
			t.Fatalf("%v: %v", fw, err)
		}
		if math.Abs(trc.Result.Makespan-est.Makespan) > 1e-6*est.Makespan+1e-9 {
			t.Errorf("%v: simulated %.6f vs estimated %.6f", fw, trc.Result.Makespan, est.Makespan)
		}
		if len(trc.Tasks) != 200 {
			t.Errorf("%v: %d task events", fw, len(trc.Tasks))
		}
	}
}

func TestSimulateMatchesEstimateHeterogeneous(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	tasks := make([]float64, 300)
	for i := range tasks {
		tasks[i] = 0.1 + r.Float64()
	}
	w := Workload{Phases: []Phase{{Name: "p", Tasks: tasks}}}
	for _, fw := range []Framework{Spark, Dask} { // dispatch-scheduled engines
		p := DefaultProfile(fw)
		a := alloc(Comet(), 1, 24)
		est := Estimate(p, a, w)
		trc, err := Simulate(p, a, w)
		if err != nil {
			t.Fatalf("%v: %v", fw, err)
		}
		// Both are greedy earliest-free schedules; they must agree
		// closely even for heterogeneous tasks.
		if math.Abs(trc.Result.Makespan-est.Makespan) > 0.05*est.Makespan {
			t.Errorf("%v: simulated %.4f vs estimated %.4f", fw, trc.Result.Makespan, est.Makespan)
		}
	}
}

func TestSimulateMultiPhase(t *testing.T) {
	w := Workload{Phases: []Phase{
		{Name: "a", Tasks: UniformTasks(50, 0.2), BroadcastBytes: 1 << 20},
		{Name: "b", Tasks: UniformTasks(50, 0.1), ShuffleBytes: 1 << 20, SerialSeconds: 0.5},
	}}
	p := DefaultProfile(Spark)
	a := alloc(Wrangler(), 2, 24)
	est := Estimate(p, a, w)
	trc, err := Simulate(p, a, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(trc.Result.Makespan-est.Makespan) > 1e-6*est.Makespan {
		t.Errorf("multi-phase: %.6f vs %.6f", trc.Result.Makespan, est.Makespan)
	}
	if len(trc.Tasks) != 100 {
		t.Errorf("task events = %d", len(trc.Tasks))
	}
	// Phase b tasks must all start after phase a tasks finish.
	var aMax, bMin float64 = 0, math.Inf(1)
	for _, ev := range trc.Tasks {
		if ev.Phase == "a" && ev.Finish > aMax {
			aMax = ev.Finish
		}
		if ev.Phase == "b" && ev.Start < bMin {
			bMin = ev.Start
		}
	}
	if bMin < aMax {
		t.Errorf("phase barrier violated: b starts %.3f before a ends %.3f", bMin, aMax)
	}
}

func TestSimulateTaskEventInvariants(t *testing.T) {
	w := Workload{Phases: []Phase{{Name: "p", Tasks: UniformTasks(64, 0.3)}}}
	p := DefaultProfile(Dask)
	trc, err := Simulate(p, alloc(Comet(), 1, 8), w)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, ev := range trc.Tasks {
		if ev.Start < ev.Dispatched {
			t.Errorf("task %d started %.4f before dispatch %.4f", ev.Index, ev.Start, ev.Dispatched)
		}
		if ev.Finish <= ev.Start {
			t.Errorf("task %d finish %.4f <= start %.4f", ev.Index, ev.Finish, ev.Start)
		}
		if ev.Worker < 0 || ev.Worker >= 8 {
			t.Errorf("task %d on worker %d", ev.Index, ev.Worker)
		}
		if seen[ev.Index] {
			t.Errorf("task %d executed twice", ev.Index)
		}
		seen[ev.Index] = true
	}
	if len(seen) != 64 {
		t.Errorf("executed %d distinct tasks", len(seen))
	}
	// No worker overlap: tasks on the same worker must not overlap.
	byWorker := make(map[int][]TaskEvent)
	for _, ev := range trc.Tasks {
		byWorker[ev.Worker] = append(byWorker[ev.Worker], ev)
	}
	for wkr, evs := range byWorker {
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				a, b := evs[i], evs[j]
				if a.Start < b.Finish && b.Start < a.Finish {
					t.Errorf("worker %d: tasks %d and %d overlap", wkr, a.Index, b.Index)
				}
			}
		}
	}
}

func TestSimulateUtilizationAndOrder(t *testing.T) {
	w := Workload{Phases: []Phase{{Name: "p", Tasks: UniformTasks(32, 0.5)}}}
	trc, err := Simulate(DefaultProfile(MPI), alloc(Comet(), 1, 8), w)
	if err != nil {
		t.Fatal(err)
	}
	util := trc.WorkerUtilization()
	if len(util) != 8 {
		t.Fatalf("utilization for %d workers", len(util))
	}
	for wkr, u := range util {
		if u < 0.5 || u > 1.001 {
			t.Errorf("worker %d utilization %.2f", wkr, u)
		}
	}
	order := trc.CompletionOrder()
	if len(order) != 32 {
		t.Errorf("completion order has %d entries", len(order))
	}
}

func TestSimulateFailures(t *testing.T) {
	if _, err := Simulate(DefaultProfile(Spark), alloc(Comet(), 0, 0), Workload{}); err == nil {
		t.Error("empty allocation accepted")
	}
	p := DefaultProfile(Spark)
	p.MaxTasks = 10
	w := Workload{Phases: []Phase{{Name: "p", Tasks: UniformTasks(11, 0)}}}
	if _, err := Simulate(p, alloc(Comet(), 1, 4), w); err == nil {
		t.Error("task limit not enforced")
	}
	w2 := Workload{Phases: []Phase{{Name: "p", Tasks: UniformTasks(4, 0), MemPerTaskBytes: 1 << 62}}}
	if _, err := Simulate(DefaultProfile(Spark), alloc(Comet(), 1, 4), w2); err == nil {
		t.Error("memory limit not enforced")
	}
}
