// Package cluster models the HPC machines and framework runtimes of the
// paper's evaluation so that every figure's node/core sweep can be
// regenerated deterministically. Real kernels measured by the engines
// supply per-task compute durations; this package supplies the machine
// (Comet-like and Wrangler-like presets) and the per-framework
// coordination costs (dispatch serialization, worker-side task overhead,
// startup, broadcast/shuffle models), and schedules task phases onto
// cores with a discrete dispatch model to produce virtual makespans.
//
// The constants in the framework profiles are calibration parameters,
// not measurements of the real systems; they are chosen so the *shape*
// of the paper's results holds (Dask > Spark >> RADICAL-Pilot task
// throughput with an RP plateau below 100 tasks/s; MPI broadcast cheap
// but growing with ranks while Spark's stays flat; Dask broadcast and
// shuffle weaker than Spark's), as documented in DESIGN.md §1.
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Machine describes a compute resource.
type Machine struct {
	Name          string
	Nodes         int     // nodes available
	CoresPerNode  int     // schedulable cores (logical if HT enabled)
	PhysPerNode   int     // physical cores per node
	HTSpeedup     float64 // total throughput gain from filling logical cores (e.g. 1.3)
	CoreSpeed     float64 // relative single-core speed (1.0 = reference)
	NetLatency    float64 // seconds per message
	NetBandwidth  float64 // bytes/second per link
	FSBandwidth   float64 // shared filesystem bytes/second (pilot staging)
	MemPerNode    int64   // bytes of RAM per node
	MemLimitFrac  float64 // fraction of MemPerNode a worker may use before failing
	HyperThreaded bool
}

// Comet returns an SDSC-Comet-like machine: 24 Haswell cores/node,
// 128 GB/node, no hyper-threading oversubscription.
func Comet() Machine {
	return Machine{
		Name:         "comet",
		Nodes:        6400,
		CoresPerNode: 24,
		PhysPerNode:  24,
		HTSpeedup:    1,
		CoreSpeed:    1.0,
		NetLatency:   20e-6,
		NetBandwidth: 6e9,
		FSBandwidth:  3e9,
		MemPerNode:   128 << 30,
		MemLimitFrac: 0.95,
	}
}

// Wrangler returns a TACC-Wrangler-like machine: 24 physical Haswell
// cores with hyper-threading enabled (48 logical; the paper schedules 32
// per node), 128 GB/node. Packing more tasks than physical cores slows
// each task, which is why the paper observes smaller speedups on
// Wrangler for the same total core count (§4.2).
func Wrangler() Machine {
	return Machine{
		Name:          "wrangler",
		Nodes:         120,
		CoresPerNode:  48,
		PhysPerNode:   24,
		HTSpeedup:     1.15,
		CoreSpeed:     0.97,
		NetLatency:    25e-6,
		NetBandwidth:  5e9,
		FSBandwidth:   3e9,
		MemPerNode:    128 << 30,
		MemLimitFrac:  0.95,
		HyperThreaded: true,
	}
}

// Slowdown returns the per-task compute dilation when running
// coresUsedPerNode concurrent tasks on one node. Using at most the
// physical core count costs nothing; oversubscribing into hyper-threads
// dilates tasks so total node throughput caps at PhysPerNode*HTSpeedup.
func (m Machine) Slowdown(coresUsedPerNode int) float64 {
	if coresUsedPerNode <= m.PhysPerNode || m.PhysPerNode == 0 {
		return 1 / m.CoreSpeed
	}
	ht := m.HTSpeedup
	if ht < 1 {
		ht = 1
	}
	return float64(coresUsedPerNode) / (float64(m.PhysPerNode) * ht) / m.CoreSpeed
}

// Framework identifies a task-parallel runtime model.
type Framework int

const (
	MPI Framework = iota
	Spark
	Dask
	RadicalPilot
)

// String returns the framework's display name.
func (f Framework) String() string {
	switch f {
	case MPI:
		return "MPI4py"
	case Spark:
		return "Spark"
	case Dask:
		return "Dask"
	case RadicalPilot:
		return "RADICAL-Pilot"
	default:
		return fmt.Sprintf("Framework(%d)", int(f))
	}
}

// Frameworks lists all modeled frameworks in the paper's comparison
// order.
var Frameworks = []Framework{MPI, Spark, Dask, RadicalPilot}

// Profile holds the coordination-cost parameters of a framework.
type Profile struct {
	Framework Framework
	// Startup is the fixed cost of bringing the runtime up on the
	// allocation (JVM start, pilot agent bootstrap, mpirun, ...).
	Startup float64
	// DispatchLatency serializes task launches at a central scheduler:
	// the client/scheduler spends this long per task, capping throughput
	// at 1/DispatchLatency regardless of worker count.
	DispatchLatency float64
	// TaskOverhead is the per-task worker-side cost (deserialization,
	// fork/exec, interpreter startup), paid in parallel across cores.
	TaskOverhead float64
	// StageOverhead is the per-stage/barrier scheduling cost.
	StageOverhead float64
	// BroadcastFactor multiplies the ideal bytes/bandwidth transfer time
	// of a broadcast; BroadcastPerRank adds a per-destination-rank cost.
	BroadcastFactor  float64
	BroadcastPerRank float64
	// ShuffleFactor multiplies the ideal cross-node shuffle transfer
	// time (Spark ~1 with its sort-based shuffle; Dask higher).
	ShuffleFactor float64
	// SupportsShuffle is false for runtimes with no data plane (RP
	// exchanges data through the shared filesystem instead).
	SupportsShuffle bool
	// MaxTasks is the largest task count the runtime sustains
	// (RADICAL-Pilot could not run >=32k tasks in the paper); 0 = no limit.
	MaxTasks int
	// PerTaskClientOverhead is extra client-side serial work per task
	// before dispatch (e.g. RP unit description creation + DB insert).
	PerTaskClientOverhead float64
	// MemOverheadFactor inflates each task's declared working set to
	// account for the runtime's object overhead (Python object graphs
	// and result accumulation make Dask's footprint several times the
	// raw array size; JVM+Python for Spark somewhat less; MPI ~ none).
	MemOverheadFactor float64
	// ColdStartOverhead is the extra per-task cost when a phase's tasks
	// cold-start an application process (RP fork/execs a fresh Python
	// interpreter importing the analysis stack per unit; Spark/Dask
	// reuse warm workers).
	ColdStartOverhead float64
	// BroadcastPerItem is a per-element serialization cost of broadcast
	// payloads (Dask's scatter pickles the dataset as a per-element
	// list, §4.3.1).
	BroadcastPerItem float64
}

// DefaultProfile returns the calibrated cost model for a framework.
func DefaultProfile(f Framework) Profile {
	switch f {
	case MPI:
		return Profile{
			Framework:       f,
			Startup:         1.0, // mpirun + interpreter start
			DispatchLatency: 0,   // static SPMD partitioning: no dispatcher
			TaskOverhead:    0.2e-3,
			StageOverhead:   1e-3,
			BroadcastFactor: 1.0,
			// Binomial-tree bcast grows with ranks.
			BroadcastPerRank:  120e-6,
			ShuffleFactor:     1.0, // gather over fast interconnect
			SupportsShuffle:   true,
			MemOverheadFactor: 1.0,
		}
	case Spark:
		return Profile{
			Framework:             f,
			Startup:               6.0, // JVM + executors + PySpark gateways
			DispatchLatency:       0.45e-3,
			TaskOverhead:          95e-3, // Python<->JVM serialization dominates
			StageOverhead:         0.35,
			BroadcastFactor:       1.8, // torrent broadcast: ~flat in node count
			BroadcastPerRank:      0,
			ShuffleFactor:         1.4, // sort-based shuffle with disk spill
			SupportsShuffle:       true,
			PerTaskClientOverhead: 0.05e-3,
			MemOverheadFactor:     1.5,
			BroadcastPerItem:      5e-6, // per-element pickling into the JVM
		}
	case Dask:
		return Profile{
			Framework:             f,
			Startup:               2.5, // dask-scheduler + workers via dask-ssh
			DispatchLatency:       0.04e-3,
			TaskOverhead:          9.5e-3, // pure-Python task spin-up
			StageOverhead:         8e-3,   // no stage barrier: near-free
			BroadcastFactor:       7.0,    // scatter broadcasts element lists
			BroadcastPerRank:      0,
			ShuffleFactor:         3.2, // weaker communication layer than Spark
			SupportsShuffle:       true,
			PerTaskClientOverhead: 0.01e-3,
			MemOverheadFactor:     3.0,
			BroadcastPerItem:      50e-6, // per-element list materialization
		}
	case RadicalPilot:
		return Profile{
			Framework:             f,
			Startup:               25.0, // pilot bootstrap on the resource
			DispatchLatency:       12e-3,
			TaskOverhead:          180e-3, // agent fork/exec per unit
			StageOverhead:         4.0,    // client/agent synchronization
			BroadcastFactor:       0,      // no data plane
			ShuffleFactor:         0,
			SupportsShuffle:       false,
			PerTaskClientOverhead: 1.2e-3, // CU description + MongoDB insert
			MemOverheadFactor:     1.0,
			// Each unit cold-starts a Python interpreter and imports the
			// analysis stack.
			ColdStartOverhead: 12.0,
		}
	default:
		panic(fmt.Sprintf("cluster: unknown framework %d", int(f)))
	}
}

// Phase is one barrier-delimited step of a workload: a bag of tasks with
// optional data movement around it.
type Phase struct {
	Name string
	// Tasks holds per-task compute durations in reference-core seconds.
	Tasks []float64
	// BroadcastBytes is data broadcast from the client to every node
	// before the phase runs (Leaflet Finder Approach 1).
	BroadcastBytes int64
	// ShuffleBytes is data exchanged across the cluster after the tasks
	// complete (edge lists or partial components, Table 2).
	ShuffleBytes int64
	// GatherBytes is data collected back to the client/rank 0.
	GatherBytes int64
	// SerialSeconds is client-side serial work in the phase (e.g. the
	// final connected-components computation on the master).
	SerialSeconds float64
	// MemPerTaskBytes is the peak working-set of one task; the estimator
	// fails the phase when concurrent tasks exceed the node memory limit
	// (reproducing the cdist out-of-memory walls of §4.3).
	MemPerTaskBytes int64
	// BroadcastItems is the element count of the broadcast payload, for
	// runtimes with per-element serialization costs.
	BroadcastItems int64
	// IOBytes is the total volume read from the shared filesystem by the
	// phase's tasks; it is paid at the machine's filesystem bandwidth
	// regardless of core count (the re-read amplification that limits
	// PSA speedups, §4.2).
	IOBytes int64
	// ColdStart marks tasks that fork fresh application processes
	// (import cost per task for interpreter-based runtimes).
	ColdStart bool
}

// TotalTasks returns the task count of the phase.
func (p Phase) TotalTasks() int { return len(p.Tasks) }

// Workload is a sequence of phases executed in order.
type Workload struct {
	Name   string
	Phases []Phase
}

// Alloc describes the slice of a machine given to a run.
type Alloc struct {
	Machine Machine
	Nodes   int
	// CoresPerNode is how many cores per node the run uses; 0 means all.
	CoresPerNode int
}

// Cores returns the total core count of the allocation.
func (a Alloc) Cores() int {
	cpn := a.CoresPerNode
	if cpn == 0 {
		cpn = a.Machine.CoresPerNode
	}
	return a.Nodes * cpn
}

// Result is the outcome of estimating a workload on an allocation.
type Result struct {
	Framework Framework
	Alloc     Alloc
	// Makespan is total virtual runtime in seconds including startup.
	Makespan float64
	// Breakdown per cost category, all in seconds.
	Startup, Dispatch, Compute, Overhead, Broadcast, Shuffle, Serial, IO float64
	// Failed is non-empty when the run could not complete (task-count or
	// memory limits), mirroring the paper's "did not scale" data points.
	Failed string
}

// Throughput returns tasks/second over the whole run; 0 when failed.
func (r Result) Throughput(tasks int) float64 {
	if r.Failed != "" || r.Makespan <= 0 {
		return 0
	}
	return float64(tasks) / r.Makespan
}

// Estimate schedules the workload on the allocation under the given
// framework profile and returns the virtual makespan with a cost
// breakdown. The scheduling model is a dispatch-serialized greedy list
// schedule: a central dispatcher emits tasks at 1/DispatchLatency while
// workers (cores) execute them with per-task overhead; MPI instead uses
// static block partitioning with no dispatcher.
func Estimate(p Profile, a Alloc, w Workload) Result {
	res := Result{Framework: p.Framework, Alloc: a}
	cpn := a.CoresPerNode
	if cpn == 0 {
		cpn = a.Machine.CoresPerNode
	}
	if a.Nodes < 1 || cpn < 1 {
		res.Failed = "empty allocation"
		return res
	}
	cores := a.Nodes * cpn
	slow := a.Machine.Slowdown(cpn)

	res.Startup = p.Startup
	now := p.Startup

	totalTasks := 0
	for _, ph := range w.Phases {
		totalTasks += len(ph.Tasks)
	}
	if p.MaxTasks > 0 && totalTasks > p.MaxTasks {
		res.Failed = fmt.Sprintf("%s cannot sustain %d tasks (limit %d)", p.Framework, totalTasks, p.MaxTasks)
		return res
	}

	for _, ph := range w.Phases {
		// Memory check: workers per node each hold one task working set,
		// inflated by the runtime's object overhead.
		if ph.MemPerTaskBytes > 0 {
			factor := p.MemOverheadFactor
			if factor <= 0 {
				factor = 1
			}
			// Compare in floating point: task working sets can be large
			// enough that integer arithmetic would overflow.
			limit := float64(a.Machine.MemPerNode) * a.Machine.MemLimitFrac
			need := float64(cpn) * float64(ph.MemPerTaskBytes) * factor
			if need > limit {
				res.Failed = fmt.Sprintf("phase %s: %d tasks/node x %d B (x%.1f overhead) exceeds %.0f B node memory",
					ph.Name, cpn, ph.MemPerTaskBytes, factor, limit)
				return res
			}
		}

		now += p.StageOverhead
		res.Overhead += p.StageOverhead

		if ph.BroadcastBytes > 0 || ph.BroadcastItems > 0 {
			bc := broadcastTime(p, a, ph.BroadcastBytes) + float64(ph.BroadcastItems)*p.BroadcastPerItem
			res.Broadcast += bc
			now += bc
		}
		if ph.IOBytes > 0 {
			t := float64(ph.IOBytes) / a.Machine.FSBandwidth
			res.IO += t
			now += t
		}

		clientSerial := float64(len(ph.Tasks)) * p.PerTaskClientOverhead
		res.Dispatch += clientSerial
		now += clientSerial

		// Worker-side overheads are CPU work, so they dilate with the
		// machine's core speed and oversubscription like task compute.
		overhead := p.TaskOverhead * slow
		if ph.ColdStart {
			overhead += p.ColdStartOverhead * slow
		}
		var phaseSpan float64
		if p.DispatchLatency == 0 {
			phaseSpan = staticSchedule(ph.Tasks, cores, slow, overhead)
		} else {
			phaseSpan = dispatchSchedule(ph.Tasks, cores, slow, overhead, p.DispatchLatency)
		}
		// Attribute the span between compute and coordination for the
		// breakdown (informational; the makespan uses phaseSpan itself).
		var compute float64
		for _, d := range ph.Tasks {
			compute += d * slow
		}
		ideal := compute / float64(cores)
		res.Compute += ideal
		res.Dispatch += phaseSpan - ideal
		now += phaseSpan

		if ph.ShuffleBytes > 0 {
			if !p.SupportsShuffle {
				// RP moves intermediate data over the shared filesystem:
				// write + read at filesystem bandwidth.
				t := 2 * float64(ph.ShuffleBytes) / a.Machine.FSBandwidth
				res.Shuffle += t
				now += t
			} else {
				t := shuffleTime(p, a, ph.ShuffleBytes)
				res.Shuffle += t
				now += t
			}
		}
		if ph.GatherBytes > 0 {
			t := gatherTime(p, a, ph.GatherBytes)
			res.Shuffle += t
			now += t
		}
		if ph.SerialSeconds > 0 {
			s := ph.SerialSeconds * slow
			res.Serial += s
			now += s
		}
	}
	res.Makespan = now
	return res
}

// dispatchSchedule computes the makespan of tasks on `cores` workers fed
// by a serial dispatcher.
func dispatchSchedule(tasks []float64, cores int, slow, overhead, dispatch float64) float64 {
	if len(tasks) == 0 {
		return 0
	}
	if cores > len(tasks) {
		cores = len(tasks)
	}
	free := make([]float64, cores) // min-heap of worker free times
	var dispatcher, makespan float64
	for _, d := range tasks {
		dispatcher += dispatch
		start := free[0]
		if dispatcher > start {
			start = dispatcher
		}
		end := start + overhead + d*slow
		if end > makespan {
			makespan = end
		}
		free[0] = end
		siftDown(free)
	}
	return makespan
}

// staticSchedule computes the makespan under static block partitioning
// (the MPI model): task i goes to worker i mod cores.
func staticSchedule(tasks []float64, cores int, slow, overhead float64) float64 {
	if len(tasks) == 0 {
		return 0
	}
	if cores > len(tasks) {
		cores = len(tasks)
	}
	load := make([]float64, cores)
	for i, d := range tasks {
		load[i%cores] += overhead + d*slow
	}
	var makespan float64
	for _, l := range load {
		if l > makespan {
			makespan = l
		}
	}
	return makespan
}

// siftDown restores the min-heap property after replacing the root.
func siftDown(h []float64) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l] < h[smallest] {
			smallest = l
		}
		if r < len(h) && h[r] < h[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// broadcastTime models distributing bytes to every node of the
// allocation before a phase.
func broadcastTime(p Profile, a Alloc, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	base := float64(bytes) / a.Machine.NetBandwidth
	switch p.Framework {
	case MPI:
		// Binomial tree: log2(P) transfer rounds plus a per-rank setup
		// term that makes MPI broadcast grow with process count, as the
		// paper observes.
		ranks := float64(a.Cores())
		rounds := math.Ceil(math.Log2(ranks + 1))
		return base*rounds*p.BroadcastFactor/8 + ranks*p.BroadcastPerRank
	default:
		// Spark/Dask: roughly flat in node count; factor captures how
		// efficient the implementation is (Dask's element-list scatter
		// is several times slower than Spark's torrent broadcast).
		return a.Machine.NetLatency*float64(a.Nodes) + base*p.BroadcastFactor
	}
}

// shuffleTime models the cross-node exchange of bytes after a phase.
func shuffleTime(p Profile, a Alloc, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	// Each node sends/receives its share in parallel over its link.
	perNode := float64(bytes) / float64(a.Nodes)
	return a.Machine.NetLatency*float64(a.Nodes) + perNode/a.Machine.NetBandwidth*p.ShuffleFactor
}

// gatherTime models collecting bytes to the client / rank 0 (single
// sink link is the bottleneck).
func gatherTime(p Profile, a Alloc, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	f := p.ShuffleFactor
	if f == 0 {
		// No data plane: filesystem round trip (RP).
		return 2 * float64(bytes) / a.Machine.FSBandwidth
	}
	return a.Machine.NetLatency + float64(bytes)/a.Machine.NetBandwidth*f
}

// UniformTasks returns n tasks of identical duration d, a convenience
// for workload construction.
func UniformTasks(n int, d float64) []float64 {
	t := make([]float64, n)
	for i := range t {
		t[i] = d
	}
	return t
}

// SortedDescending returns a copy of durations sorted longest first
// (LPT order), which the dispatch scheduler benefits from.
func SortedDescending(durations []float64) []float64 {
	out := make([]float64, len(durations))
	copy(out, durations)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
