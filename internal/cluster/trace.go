package cluster

import (
	"fmt"
	"sort"

	"mdtask/internal/sim"
)

// Trace runs a workload phase-by-phase through the discrete-event
// simulator (internal/sim), producing a per-task execution timeline.
// It models the same system as Estimate — a dispatch-serialized central
// scheduler feeding per-core workers — but as explicit events rather
// than closed-form scheduling, so the two implementations validate each
// other (see cluster tests) and the trace exposes per-task start/finish
// times for timeline analysis.
type Trace struct {
	Result Result
	// Tasks holds one event per executed task, in completion order.
	Tasks []TaskEvent
}

// TaskEvent is one task's simulated execution record.
type TaskEvent struct {
	Phase      string
	Index      int
	Worker     int
	Dispatched float64 // when the dispatcher released it
	Start      float64 // when a worker began executing
	Finish     float64 // when it completed (incl. overhead)
}

// Simulate produces the event-driven trace of the workload on the
// allocation. The makespan it reports agrees with Estimate's for
// supported workloads (it applies the same cost model).
func Simulate(p Profile, a Alloc, w Workload) (*Trace, error) {
	res := Result{Framework: p.Framework, Alloc: a}
	cpn := a.CoresPerNode
	if cpn == 0 {
		cpn = a.Machine.CoresPerNode
	}
	if a.Nodes < 1 || cpn < 1 {
		return nil, fmt.Errorf("cluster: Simulate: empty allocation")
	}
	cores := a.Nodes * cpn
	slow := a.Machine.Slowdown(cpn)

	totalTasks := 0
	for _, ph := range w.Phases {
		totalTasks += len(ph.Tasks)
	}
	if p.MaxTasks > 0 && totalTasks > p.MaxTasks {
		return nil, fmt.Errorf("cluster: Simulate: %d tasks exceed %s limit %d",
			totalTasks, p.Framework, p.MaxTasks)
	}

	tr := &Trace{}
	var eng sim.Engine
	now := p.Startup
	res.Startup = p.Startup

	for _, ph := range w.Phases {
		ph := ph
		if ph.MemPerTaskBytes > 0 {
			factor := p.MemOverheadFactor
			if factor <= 0 {
				factor = 1
			}
			limit := float64(a.Machine.MemPerNode) * a.Machine.MemLimitFrac
			if float64(cpn)*float64(ph.MemPerTaskBytes)*factor > limit {
				return nil, fmt.Errorf("cluster: Simulate: phase %s exceeds node memory", ph.Name)
			}
		}
		now += p.StageOverhead
		if ph.BroadcastBytes > 0 || ph.BroadcastItems > 0 {
			bc := broadcastTime(p, a, ph.BroadcastBytes) + float64(ph.BroadcastItems)*p.BroadcastPerItem
			res.Broadcast += bc
			now += bc
		}
		if ph.IOBytes > 0 {
			t := float64(ph.IOBytes) / a.Machine.FSBandwidth
			res.IO += t
			now += t
		}
		now += float64(len(ph.Tasks)) * p.PerTaskClientOverhead

		overhead := p.TaskOverhead * slow
		if ph.ColdStart {
			overhead += p.ColdStartOverhead * slow
		}
		phaseEnd := simulatePhase(&eng, tr, ph, now, cores, slow, overhead, p.DispatchLatency)
		res.Compute += phaseEnd - now // span attribution: coarse, like a profiler
		now = phaseEnd

		if ph.ShuffleBytes > 0 {
			var t float64
			if !p.SupportsShuffle {
				t = 2 * float64(ph.ShuffleBytes) / a.Machine.FSBandwidth
			} else {
				t = shuffleTime(p, a, ph.ShuffleBytes)
			}
			res.Shuffle += t
			now += t
		}
		if ph.GatherBytes > 0 {
			t := gatherTime(p, a, ph.GatherBytes)
			res.Shuffle += t
			now += t
		}
		if ph.SerialSeconds > 0 {
			res.Serial += ph.SerialSeconds * slow
			now += ph.SerialSeconds * slow
		}
	}
	res.Makespan = now
	tr.Result = res
	return tr, nil
}

// simulatePhase schedules one phase's tasks as discrete events starting
// at virtual time start and returns the phase completion time.
func simulatePhase(eng *sim.Engine, tr *Trace, ph Phase, start float64, cores int, slow, overhead, dispatch float64) float64 {
	if len(ph.Tasks) == 0 {
		return start
	}
	if cores > len(ph.Tasks) {
		cores = len(ph.Tasks)
	}

	type worker struct {
		id   int
		free float64
	}
	// Idle workers, earliest-free first (linear scan: core counts here
	// are small; the event queue carries the heavy lifting).
	idle := make([]worker, cores)
	for i := range idle {
		idle[i] = worker{id: i, free: start}
	}
	var queue []pendingTask // dispatched tasks waiting for a worker
	end := start

	popIdle := func() (worker, bool) {
		if len(idle) == 0 {
			return worker{}, false
		}
		best := 0
		for i := range idle {
			if idle[i].free < idle[best].free {
				best = i
			}
		}
		w := idle[best]
		idle = append(idle[:best], idle[best+1:]...)
		return w, true
	}

	var runTask func(w worker, t pendingTask)
	runTask = func(w worker, t pendingTask) {
		begin := float64(eng.Now())
		if w.free > begin {
			begin = w.free
		}
		finish := begin + overhead + t.dur*slow
		eng.At(sim.Time(finish), func() {
			tr.Tasks = append(tr.Tasks, TaskEvent{
				Phase:      ph.Name,
				Index:      t.index,
				Worker:     w.id,
				Dispatched: t.dispatched,
				Start:      begin,
				Finish:     finish,
			})
			if finish > end {
				end = finish
			}
			if len(queue) > 0 {
				next := queue[0]
				queue = queue[1:]
				runTask(worker{id: w.id, free: finish}, next)
			} else {
				idle = append(idle, worker{id: w.id, free: finish})
			}
		})
	}

	// The dispatcher releases tasks serially at the dispatch interval
	// (or all at once for static scheduling when dispatch == 0).
	dispatchAt := start
	for i, dur := range ph.Tasks {
		dispatchAt += dispatch
		t := pendingTask{index: i, dur: dur, dispatched: dispatchAt}
		eng.At(sim.Time(dispatchAt), func() {
			if w, ok := popIdle(); ok {
				runTask(w, t)
			} else {
				queue = append(queue, t)
			}
		})
	}
	eng.Run()
	return end
}

// pendingTask is a dispatched task waiting for execution.
type pendingTask struct {
	index      int
	dur        float64
	dispatched float64
}

// WorkerUtilization summarizes a trace: per-worker busy fraction over
// the phase span.
func (t *Trace) WorkerUtilization() map[int]float64 {
	if len(t.Tasks) == 0 {
		return nil
	}
	busy := make(map[int]float64)
	lo, hi := t.Tasks[0].Start, t.Tasks[0].Finish
	for _, ev := range t.Tasks {
		busy[ev.Worker] += ev.Finish - ev.Start
		if ev.Start < lo {
			lo = ev.Start
		}
		if ev.Finish > hi {
			hi = ev.Finish
		}
	}
	span := hi - lo
	if span <= 0 {
		return busy
	}
	for w := range busy {
		busy[w] /= span
	}
	return busy
}

// CompletionOrder returns task indices in finish order (for straggler
// analysis).
func (t *Trace) CompletionOrder() []int {
	evs := make([]TaskEvent, len(t.Tasks))
	copy(evs, t.Tasks)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Finish < evs[j].Finish })
	out := make([]int, len(evs))
	for i, ev := range evs {
		out[i] = ev.Index
	}
	return out
}
