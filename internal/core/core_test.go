package core

import (
	"math"
	"testing"

	"mdtask/internal/hausdorff"
	"mdtask/internal/leaflet"
	"mdtask/internal/psa"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func smallEnsemble() traj.Ensemble {
	ens := make(traj.Ensemble, 4)
	for i := range ens {
		ens[i] = synth.Walk("t", 6, 5, 99, uint64(i))
	}
	return ens
}

func TestPSAAllEngines(t *testing.T) {
	ens := smallEnsemble()
	want, err := psa.Serial(ens, psa.Opts{Method: hausdorff.Naive})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range Engines {
		eng := eng
		for _, full := range []bool{false, true} {
			full := full
			name := eng.String() + "/symmetric"
			if full {
				name = eng.String() + "/full"
			}
			t.Run(name, func(t *testing.T) {
				got, err := PSA(Config{Engine: eng, Parallelism: 4, FullMatrix: full}, ens, hausdorff.Naive)
				if err != nil {
					t.Fatal(err)
				}
				if got.N != want.N {
					t.Fatalf("N = %d", got.N)
				}
				for i := range want.Data {
					if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
						t.Fatalf("element %d: %v vs %v", i, got.Data[i], want.Data[i])
					}
				}
			})
		}
	}
}

func TestPSAEmptyEnsemble(t *testing.T) {
	got, err := PSA(Config{Engine: EngineDask}, nil, hausdorff.Naive)
	if err != nil || got.N != 0 {
		t.Fatalf("empty PSA = %v, %v", got, err)
	}
}

func TestLeafletFinderAllEngines(t *testing.T) {
	sys := synth.Bilayer(1500, 7)
	want := leaflet.Serial(sys.Coords, synth.BilayerCutoff)
	for _, eng := range Engines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			approach := leaflet.TreeSearch
			if eng == EnginePilot {
				approach = leaflet.TaskAPI2D
			}
			got, err := LeafletFinder(Config{Engine: eng, Parallelism: 4, Tasks: 16},
				sys.Coords, synth.BilayerCutoff, approach)
			if err != nil {
				t.Fatal(err)
			}
			if !leaflet.Equal(got, want) {
				t.Fatal("result differs from serial")
			}
		})
	}
}

func TestLeafletFinderValidation(t *testing.T) {
	sys := synth.Bilayer(100, 1)
	if _, err := LeafletFinder(Config{}, nil, 1, leaflet.TreeSearch); err == nil {
		t.Error("empty coords accepted")
	}
	if _, err := LeafletFinder(Config{}, sys.Coords, 0, leaflet.TreeSearch); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := LeafletFinder(Config{Engine: EnginePilot}, sys.Coords, 1, leaflet.TreeSearch); err == nil {
		t.Error("pilot accepted a non-2D approach")
	}
	if _, err := LeafletFinder(Config{Engine: Engine(9)}, sys.Coords, 1, leaflet.TreeSearch); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestRMSDSeries(t *testing.T) {
	tr := synth.Walk("w", 10, 6, 3, 0)
	ref := tr.Frames[0].Coords
	series, err := RMSDSeries(tr, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("len = %d", len(series))
	}
	if series[0] > 1e-9 {
		t.Errorf("RMSD to self = %v", series[0])
	}
	// The walk drifts, so later frames deviate more on average.
	if series[5] <= 0 {
		t.Errorf("series[5] = %v", series[5])
	}
	if _, err := RMSDSeries(tr, ref[:5]); err == nil {
		t.Error("mismatched reference accepted")
	}
}

func TestRecommend(t *testing.T) {
	// Throughput-oriented: Dask must rank first (Table 3: ++ vs + vs -).
	recs, err := Recommend(Requirements{Needs: []Criterion{LowLatency, Throughput}})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Engine != EngineDask {
		t.Errorf("first = %v, want Dask", recs[0].Engine)
	}
	// Shuffle/broadcast/caching-heavy: Spark wins.
	recs, err = Recommend(Requirements{Needs: []Criterion{Shuffle, BroadcastCrit, Caching}})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Engine != EngineSpark {
		t.Errorf("first = %v, want Spark", recs[0].Engine)
	}
	// HPC/MPI tasks with native code: RADICAL-Pilot wins.
	recs, err = Recommend(Requirements{Needs: []Criterion{MPIHPCTasks, PythonNative}})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Engine != EnginePilot {
		t.Errorf("first = %v, want RADICAL-Pilot", recs[0].Engine)
	}
}

func TestRecommendUnknownCriterion(t *testing.T) {
	if _, err := Recommend(Requirements{Needs: []Criterion{"Nonsense"}}); err == nil {
		t.Error("unknown criterion accepted")
	}
}

func TestDecisionTableComplete(t *testing.T) {
	for _, c := range append(append([]Criterion{}, TaskManagementCriteria...), ApplicationCriteria...) {
		row, ok := DecisionTable[c]
		if !ok {
			t.Errorf("criterion %q missing from table", c)
			continue
		}
		for _, e := range []Engine{EnginePilot, EngineSpark, EngineDask} {
			if _, ok := row[e]; !ok {
				t.Errorf("criterion %q missing engine %v", c, e)
			}
		}
	}
}

func TestSupportStrings(t *testing.T) {
	want := map[Support]string{Unsupported: "-", Minor: "o", Supported: "+", Major: "++"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if Support(9).String() != "?" {
		t.Error("unknown support string")
	}
}

func TestEngineStrings(t *testing.T) {
	for _, e := range Engines {
		if e.String() == "" {
			t.Errorf("engine %d has empty name", int(e))
		}
	}
}

func TestTable1Rows(t *testing.T) {
	if len(Table1) != 3 {
		t.Fatalf("Table1 has %d rows", len(Table1))
	}
	engines := map[Engine]bool{}
	for _, tr := range Table1 {
		engines[tr.Engine] = true
		if tr.Languages == "" || tr.Scheduler == "" {
			t.Errorf("%v traits incomplete", tr.Engine)
		}
	}
	if !engines[EnginePilot] || !engines[EngineSpark] || !engines[EngineDask] {
		t.Error("Table1 missing an engine")
	}
}

func TestOgresComplete(t *testing.T) {
	views := []OgreView{ExecutionView, DataSourceView, ProcessingView, ProblemArcheView}
	for _, o := range Ogres {
		if o.Application == "" {
			t.Error("unnamed ogre")
		}
		for _, v := range views {
			if len(o.Facets[v]) == 0 {
				t.Errorf("%s: view %q has no facets", o.Application, v)
			}
		}
	}
}

// TestFleetEngine checks the sixth engine through the public API: the
// loopback coordinator/worker fleet must match serial bit-for-bit on
// PSA and partition-for-partition on the Leaflet Finder.
func TestFleetEngine(t *testing.T) {
	ens := smallEnsemble()
	want, err := psa.Serial(ens, psa.Opts{Symmetric: true, Method: hausdorff.EarlyBreak})
	if err != nil {
		t.Fatal(err)
	}
	got, err := PSA(Config{Engine: EngineFleet, Parallelism: 2}, ens, hausdorff.EarlyBreak)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("fleet PSA differs from serial at %d", i)
		}
	}

	sys := synth.Bilayer(800, 7)
	wantLeaf := leaflet.Serial(sys.Coords, synth.BilayerCutoff)
	gotLeaf, err := LeafletFinder(Config{Engine: EngineFleet, Parallelism: 2, Tasks: 10},
		sys.Coords, synth.BilayerCutoff, leaflet.TreeSearch)
	if err != nil {
		t.Fatal(err)
	}
	if !leaflet.Equal(gotLeaf, wantLeaf) {
		t.Fatal("fleet Leaflet Finder differs from serial")
	}
	if EngineFleet.String() != "Fleet" {
		t.Errorf("EngineFleet.String() = %q", EngineFleet)
	}
}
