package core

import (
	"math"
	"testing"

	"mdtask/internal/linalg"
	"mdtask/internal/synth"
)

func TestPairwiseDistancesMatchesSerial(t *testing.T) {
	sys := synth.Bilayer(300, 3)
	want := linalg.Cdist(sys.Coords, sys.Coords)
	for _, eng := range []Engine{EngineMPI, EngineSpark, EngineDask} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			got, err := PairwiseDistances(Config{Engine: eng, Parallelism: 4, Tasks: 7}, sys.Coords)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("len = %d", len(got))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("element %d: %v vs %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestPairwiseDistancesUnsupportedEngine(t *testing.T) {
	sys := synth.Bilayer(10, 1)
	if _, err := PairwiseDistances(Config{Engine: EnginePilot}, sys.Coords); err == nil {
		t.Error("pilot engine accepted for matrix analysis")
	}
}

func TestRMSD2DProperties(t *testing.T) {
	tr := synth.Walk("w", 20, 12, 5, 0)
	m, err := RMSD2D(Config{Engine: EngineSpark, Parallelism: 4}, tr)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.NFrames()
	if len(m) != n*n {
		t.Fatalf("len = %d", len(m))
	}
	for i := 0; i < n; i++ {
		if m[i*n+i] > 1e-5 { // quaternion-method roundoff near zero
			t.Errorf("diagonal (%d,%d) = %v", i, i, m[i*n+i])
		}
		for j := 0; j < n; j++ {
			if math.Abs(m[i*n+j]-m[j*n+i]) > 1e-9 {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestRMSD2DEnginesAgree(t *testing.T) {
	tr := synth.Walk("w", 15, 8, 6, 0)
	ref, err := RMSD2D(Config{Engine: EngineMPI, Parallelism: 3}, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineSpark, EngineDask} {
		got, err := RMSD2D(Config{Engine: eng, Parallelism: 2, Tasks: 3}, tr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if math.Abs(got[i]-ref[i]) > 1e-12 {
				t.Fatalf("%v disagrees at %d", eng, i)
			}
		}
	}
}

func TestRMSD2DRejectsInvalid(t *testing.T) {
	tr := synth.Walk("w", 5, 3, 1, 0)
	tr.Frames[0].Coords = tr.Frames[0].Coords[:2]
	if _, err := RMSD2D(Config{Engine: EngineSpark}, tr); err == nil {
		t.Error("invalid trajectory accepted")
	}
}

func TestRowChunksCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100} {
		for _, parts := range []int{1, 3, 200} {
			pos := 0
			for _, c := range rowChunks(n, parts) {
				if c.lo != pos {
					t.Fatalf("n=%d parts=%d: gap at %d", n, parts, c.lo)
				}
				pos = c.hi
			}
			if pos != n {
				t.Fatalf("n=%d parts=%d: ends at %d", n, parts, pos)
			}
		}
	}
}
