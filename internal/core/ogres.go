package core

// The Big Data Ogres classification of the two analysis applications,
// as the paper characterizes them in §2 using the four Ogre views
// (execution, data source & style, processing, problem architecture).
// These are structured documentation: tooling can use them to reason
// about which engine features an analysis exercises.

// OgreView names one of the four classification views.
type OgreView string

// The four Ogre views.
const (
	ExecutionView    OgreView = "execution"
	DataSourceView   OgreView = "data source & style"
	ProcessingView   OgreView = "processing"
	ProblemArcheView OgreView = "problem architecture"
)

// Ogre classifies one application: its facets per view.
type Ogre struct {
	Application string
	Facets      map[OgreView][]string
}

// PSAOgre is the paper's classification of Path Similarity Analysis
// (§2.1.1).
var PSAOgre = Ogre{
	Application: "Path Similarity Analysis (Hausdorff)",
	Facets: map[OgreView][]string{
		ProblemArcheView: {"embarrassingly parallel", "O(n^2) complexity"},
		ProcessingView:   {"linear algebra kernels"},
		ExecutionView: {
			"HPC nodes",
			"numeric array libraries",
			"medium-to-large input volume",
			"small output",
		},
		DataSourceView: {
			"produced by HPC simulations",
			"stored on parallel filesystems (Lustre)",
		},
	},
}

// LeafletFinderOgre is the paper's classification of the Leaflet Finder
// (§2.1.2).
var LeafletFinderOgre = Ogre{
	Application: "Leaflet Finder",
	Facets: map[OgreView][]string{
		ProblemArcheView: {"MapReduce-efficient two-stage"},
		ProcessingView:   {"graph algorithms", "linear algebra kernels"},
		ExecutionView: {
			"HPC nodes",
			"matrix system representation",
			"graph output representation",
			"O(n^2) pairwise or O(n log n) tree edge discovery",
			"O(|V|+|E|) connected components",
		},
		DataSourceView: {
			"produced by HPC simulations",
			"stored on parallel filesystems (Lustre)",
		},
	},
}

// Ogres lists the classified applications.
var Ogres = []Ogre{PSAOgre, LeafletFinderOgre}
