package core

import (
	"fmt"

	"mdtask/internal/dask"
	"mdtask/internal/linalg"
	"mdtask/internal/mpi"
	"mdtask/internal/rdd"
	"mdtask/internal/traj"
)

// The remaining §2 analyses: Pairwise Distances (PD) and the 2D-RMSD
// matrix, both engine-parallel over row chunks. Sub-setting lives on
// traj.Trajectory (SelectAtoms / SelectFrames / SphereSelection).

// rowChunk is a half-open row range of an output matrix.
type rowChunk struct{ lo, hi int }

// rowChunks splits n rows into at most parts contiguous chunks.
func rowChunks(n, parts int) []rowChunk {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]rowChunk, 0, parts)
	for p := 0; p < parts; p++ {
		out = append(out, rowChunk{lo: p * n / parts, hi: (p + 1) * n / parts})
	}
	return out
}

// runRowChunks executes fn over row chunks on the configured engine and
// assembles the row-major result rows into out (each fn call returns
// the rows [c.lo, c.hi) × width).
func runRowChunks(cfg Config, n, width int, fn func(c rowChunk) []float64) ([]float64, error) {
	chunks := rowChunks(n, maxTasksFor(cfg))
	out := make([]float64, n*width)
	place := func(c rowChunk, rows []float64) error {
		if len(rows) != (c.hi-c.lo)*width {
			return fmt.Errorf("core: chunk [%d,%d) returned %d values, want %d",
				c.lo, c.hi, len(rows), (c.hi-c.lo)*width)
		}
		copy(out[c.lo*width:c.hi*width], rows)
		return nil
	}
	switch cfg.Engine {
	case EngineSpark:
		ctx := rdd.NewContext(cfg.parallelism())
		r := rdd.Parallelize(ctx, chunks, len(chunks))
		results, err := rdd.Map(r, func(c rowChunk) (struct {
			c    rowChunk
			rows []float64
		}, error) {
			return struct {
				c    rowChunk
				rows []float64
			}{c, fn(c)}, nil
		}).Collect()
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			if err := place(res.c, res.rows); err != nil {
				return nil, err
			}
		}
		return out, nil

	case EngineDask:
		client := dask.NewClient(cfg.parallelism())
		nodes := make([]*dask.Delayed, len(chunks))
		for i, c := range chunks {
			c := c
			nodes[i] = client.Delayed(fmt.Sprintf("rows-%d", i),
				func([]interface{}) (interface{}, error) { return fn(c), nil })
		}
		vals, err := client.Compute(nodes...)
		if err != nil {
			return nil, err
		}
		for i, v := range vals {
			if err := place(chunks[i], v.([]float64)); err != nil {
				return nil, err
			}
		}
		return out, nil

	case EngineMPI:
		type chunkRows struct {
			C    rowChunk
			Rows []float64
		}
		err := mpi.Run(cfg.ranks(), nil, func(c *mpi.Comm) error {
			var local []chunkRows
			for i := c.Rank(); i < len(chunks); i += c.Size() {
				local = append(local, chunkRows{chunks[i], fn(chunks[i])})
			}
			var bytes int64
			for _, cr := range local {
				bytes += int64(len(cr.Rows)) * 8
			}
			gathered := mpi.Gather(c, 0, local, bytes)
			if c.Rank() == 0 {
				for _, g := range gathered {
					for _, cr := range g {
						if err := place(cr.C, cr.Rows); err != nil {
							return err
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil

	default:
		return nil, fmt.Errorf("core: engine %v does not support matrix analyses", cfg.Engine)
	}
}

// maxTasksFor derives a task bound from the config.
func maxTasksFor(cfg Config) int {
	if cfg.Tasks > 0 {
		return cfg.Tasks
	}
	if cfg.Parallelism > 0 {
		return 4 * cfg.Parallelism
	}
	return 64
}

// PairwiseDistances computes the n×n Euclidean distance matrix between
// the atoms of a frame (the paper's PD analysis, §2), parallelized over
// row chunks on the configured engine (MPI, Spark, or Dask).
func PairwiseDistances(cfg Config, frame []linalg.Vec3) ([]float64, error) {
	n := len(frame)
	return runRowChunks(cfg, n, n, func(c rowChunk) []float64 {
		return linalg.Cdist(frame[c.lo:c.hi], frame)
	})
}

// RMSD2D computes the frame-by-frame RMSD matrix of a trajectory with
// optimal superposition per pair: element (i, j) is the superposed RMSD
// between frames i and j. This is the "2D-RMSD" self-comparison used to
// detect conformational transitions, parallelized over row chunks.
func RMSD2D(cfg Config, t *traj.Trajectory) ([]float64, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.NFrames()
	return runRowChunks(cfg, n, n, func(c rowChunk) []float64 {
		rows := make([]float64, (c.hi-c.lo)*n)
		for i := c.lo; i < c.hi; i++ {
			for j := 0; j < n; j++ {
				rows[(i-c.lo)*n+j] = linalg.RMSD(t.FrameCoords(i), t.FrameCoords(j))
			}
		}
		return rows
	})
}
