package core

import (
	"fmt"
	"sort"
)

// Support grades how well a framework supports a criterion, following
// the paper's Table 3 legend.
type Support int

const (
	// Unsupported: "-" — unsupported or low performance.
	Unsupported Support = iota
	// Minor: "o" — minor support.
	Minor
	// Supported: "+" — supported.
	Supported
	// Major: "++" — major support.
	Major
)

// String renders the paper's symbols.
func (s Support) String() string {
	switch s {
	case Unsupported:
		return "-"
	case Minor:
		return "o"
	case Supported:
		return "+"
	case Major:
		return "++"
	default:
		return "?"
	}
}

// Criterion is one row of the decision framework (Table 3).
type Criterion string

// The criteria of Table 3, grouped as in the paper.
const (
	// Task management criteria.
	LowLatency  Criterion = "Low Latency"
	Throughput  Criterion = "Throughput"
	MPIHPCTasks Criterion = "MPI/HPC Tasks"
	TaskAPI     Criterion = "Task API"
	ManyTasks   Criterion = "Large Number of Tasks"
	// Application characteristics criteria.
	PythonNative   Criterion = "Python/native Code"
	JavaCode       Criterion = "Java"
	HighLevelAbstr Criterion = "Higher-Level Abstraction"
	Shuffle        Criterion = "Shuffle"
	BroadcastCrit  Criterion = "Broadcast"
	Caching        Criterion = "Caching"
)

// TaskManagementCriteria and ApplicationCriteria list Table 3's rows in
// order.
var (
	TaskManagementCriteria = []Criterion{LowLatency, Throughput, MPIHPCTasks, TaskAPI, ManyTasks}
	ApplicationCriteria    = []Criterion{PythonNative, JavaCode, HighLevelAbstr, Shuffle, BroadcastCrit, Caching}
)

// DecisionTable is the paper's Table 3: per-criterion support rankings
// for RADICAL-Pilot, Spark and Dask.
var DecisionTable = map[Criterion]map[Engine]Support{
	LowLatency:     {EnginePilot: Unsupported, EngineSpark: Minor, EngineDask: Supported},
	Throughput:     {EnginePilot: Unsupported, EngineSpark: Supported, EngineDask: Major},
	MPIHPCTasks:    {EnginePilot: Supported, EngineSpark: Minor, EngineDask: Minor},
	TaskAPI:        {EnginePilot: Supported, EngineSpark: Minor, EngineDask: Major},
	ManyTasks:      {EnginePilot: Unsupported, EngineSpark: Major, EngineDask: Major},
	PythonNative:   {EnginePilot: Major, EngineSpark: Minor, EngineDask: Supported},
	JavaCode:       {EnginePilot: Minor, EngineSpark: Major, EngineDask: Minor},
	HighLevelAbstr: {EnginePilot: Unsupported, EngineSpark: Major, EngineDask: Supported},
	Shuffle:        {EnginePilot: Unsupported, EngineSpark: Major, EngineDask: Supported},
	BroadcastCrit:  {EnginePilot: Unsupported, EngineSpark: Major, EngineDask: Supported},
	Caching:        {EnginePilot: Unsupported, EngineSpark: Major, EngineDask: Minor},
}

// Traits summarizes the paper's Table 1 (framework comparison) for
// documentation and tooling.
type Traits struct {
	Engine          Engine
	Languages       string
	TaskAbstraction string
	FunctionalAPI   string
	HigherLevel     string
	ResourceMgmt    string
	Scheduler       string
	Shuffle         string
	Limitations     string
}

// Table1 reproduces the paper's framework-comparison table.
var Table1 = []Traits{
	{
		Engine:          EnginePilot,
		Languages:       "Python",
		TaskAbstraction: "Task (Compute-Unit)",
		FunctionalAPI:   "-",
		HigherLevel:     "EnTK",
		ResourceMgmt:    "Pilot-Job",
		Scheduler:       "Individual Tasks",
		Shuffle:         "-",
		Limitations:     "no shuffle, filesystem-based communication",
	},
	{
		Engine:          EngineSpark,
		Languages:       "Java, Scala, Python, R",
		TaskAbstraction: "Map-Task",
		FunctionalAPI:   "RDD API",
		HigherLevel:     "Dataframe, ML Pipeline, MLlib",
		ResourceMgmt:    "Spark Execution Engines",
		Scheduler:       "Stage-oriented DAG",
		Shuffle:         "hash/sort-based shuffle",
		Limitations:     "high overheads for Python tasks (serialization)",
	},
	{
		Engine:          EngineDask,
		Languages:       "Python",
		TaskAbstraction: "Delayed",
		FunctionalAPI:   "Bag",
		HigherLevel:     "Dataframe, Arrays for block computations",
		ResourceMgmt:    "Dask Distributed Scheduler",
		Scheduler:       "DAG",
		Shuffle:         "hash/sort-based shuffle",
		Limitations:     "Dask Array can not deal with dynamic output shapes",
	},
}

// Requirements describes an application for Recommend, mirroring the
// criteria of the paper's conceptual framework (§4.4).
type Requirements struct {
	// Criteria the application needs; each is weighted equally.
	Needs []Criterion
}

// Recommendation is a ranked engine with its score and the per-criterion
// support that produced it.
type Recommendation struct {
	Engine  Engine
	Score   int
	Support map[Criterion]Support
}

// Recommend ranks the three task-parallel frameworks (MPI is the
// baseline, not ranked, as in Table 3) against the application's needs
// using the paper's decision framework. Engines are ordered by
// descending score; ties preserve Table 3's column order.
func Recommend(req Requirements) ([]Recommendation, error) {
	candidates := []Engine{EnginePilot, EngineSpark, EngineDask}
	recs := make([]Recommendation, 0, len(candidates))
	for _, e := range candidates {
		rec := Recommendation{Engine: e, Support: make(map[Criterion]Support)}
		for _, c := range req.Needs {
			row, ok := DecisionTable[c]
			if !ok {
				return nil, fmt.Errorf("core: unknown criterion %q", c)
			}
			s := row[e]
			rec.Support[c] = s
			rec.Score += int(s)
		}
		recs = append(recs, rec)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Score > recs[j].Score })
	return recs, nil
}
