// Package core is the public high-level API of the library: it runs MD
// trajectory analyses (Path Similarity Analysis, Leaflet Finder) on a
// selectable task-parallel engine, and encodes the paper's qualitative
// framework comparison (Table 1) and decision framework (Table 3) as a
// programmatic recommendation facility.
//
// Typical use:
//
//	cfg := core.Config{Engine: core.EngineDask, Parallelism: 8}
//	m, err := core.PSA(cfg, ensemble, hausdorff.EarlyBreak)
//	res, err := core.LeafletFinder(cfg, coords, cutoff, leaflet.TreeSearch)
package core

import (
	"fmt"
	"os"

	"mdtask/internal/dask"
	"mdtask/internal/fleet"
	"mdtask/internal/hausdorff"
	"mdtask/internal/leaflet"
	"mdtask/internal/linalg"
	"mdtask/internal/pilot"
	"mdtask/internal/psa"
	"mdtask/internal/rdd"
	"mdtask/internal/traj"
)

// Engine selects the task-parallel runtime to execute an analysis on.
type Engine int

const (
	// EngineMPI runs the SPMD MPI-like runtime.
	EngineMPI Engine = iota
	// EngineSpark runs the Spark-like RDD engine.
	EngineSpark
	// EngineDask runs the Dask-like delayed/task-graph engine.
	EngineDask
	// EnginePilot runs the RADICAL-Pilot-like pilot-job engine.
	EnginePilot
	// EngineSerial runs the single-goroutine reference implementation —
	// the baseline every parallel engine is validated against. It is not
	// part of Engines (the paper's comparison set).
	EngineSerial
	// EngineFleet runs the multi-process coordinator/worker engine
	// (internal/fleet): work units lease out over the HTTP worker
	// protocol. Through this API it boots an in-process loopback fleet
	// with Parallelism workers; servers embed the coordinator directly.
	// Like EngineSerial it is not part of Engines.
	EngineFleet
)

// String returns the engine's display name.
func (e Engine) String() string {
	switch e {
	case EngineMPI:
		return "MPI"
	case EngineSpark:
		return "Spark"
	case EngineDask:
		return "Dask"
	case EnginePilot:
		return "RADICAL-Pilot"
	case EngineSerial:
		return "Serial"
	case EngineFleet:
		return "Fleet"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Engines lists all runtimes in the paper's comparison order.
var Engines = []Engine{EngineMPI, EngineSpark, EngineDask, EnginePilot}

// Config selects and sizes the execution engine for an analysis run.
type Config struct {
	Engine Engine
	// Parallelism is the worker/rank count (< 1: GOMAXPROCS for the
	// shared-memory engines, 4 for MPI/pilot).
	Parallelism int
	// Tasks bounds the task count of partitioned analyses (0: one task
	// per worker for PSA, 1024 for Leaflet Finder, matching the paper).
	Tasks int
	// FullMatrix disables PSA's symmetry-aware scheduler and computes
	// all N² pairs including the mirror half and the zero diagonal —
	// the paper-faithful Algorithm 2 schedule, useful for figure
	// reproduction. The zero value keeps the ~2× cheaper symmetric
	// schedule, which produces bit-identical matrices.
	FullMatrix bool
	// PilotDir is the staging directory for EnginePilot (default: a
	// fresh temporary directory).
	PilotDir string
	// PilotConfig tunes the pilot coordination latencies (zero value:
	// pilot.Defaults()).
	PilotConfig pilot.Config
}

func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return 0 // engines interpret 0 as GOMAXPROCS
}

func (c Config) ranks() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return 4
}

// PSA computes the all-pairs Hausdorff distance matrix of the ensemble
// on the configured engine (the paper's §4.2 analysis).
func PSA(cfg Config, ens traj.Ensemble, method hausdorff.Method) (*psa.Matrix, error) {
	if err := ens.Validate(); err != nil {
		return nil, err
	}
	if len(ens) == 0 {
		return psa.NewMatrix(0), nil
	}
	wantTasks := cfg.Tasks
	if wantTasks <= 0 {
		wantTasks = cfg.ranks()
	}
	n1 := psa.DefaultGroupSize(len(ens), wantTasks)
	opts := psa.Opts{Symmetric: !cfg.FullMatrix, Method: method}
	switch cfg.Engine {
	case EngineSerial:
		return psa.Serial(ens, opts)
	case EngineSpark:
		return psa.RunRDD(rdd.NewContext(cfg.parallelism()), ens, n1, opts)
	case EngineDask:
		return psa.RunDask(dask.NewClient(cfg.parallelism()), ens, n1, opts)
	case EngineMPI:
		return psa.RunMPI(cfg.ranks(), ens, n1, opts)
	case EnginePilot:
		p, cleanup, err := cfg.startPilot()
		if err != nil {
			return nil, err
		}
		defer cleanup()
		return psa.RunPilot(p, ens, n1, opts)
	case EngineFleet:
		lf, err := fleet.StartLocal(cfg.ranks(), fleet.LocalOptions())
		if err != nil {
			return nil, err
		}
		defer lf.Close()
		job, err := lf.C.SubmitPSA(ens, n1, opts, nil)
		if err != nil {
			return nil, err
		}
		defer lf.C.Drop(job)
		if err := job.Wait(nil); err != nil {
			return nil, err
		}
		return job.Matrix(), nil
	default:
		return nil, fmt.Errorf("core: unknown engine %v", cfg.Engine)
	}
}

// LeafletFinder identifies the lipid leaflets of a membrane snapshot on
// the configured engine using the selected architectural approach (the
// paper's §4.3). EnginePilot supports only leaflet.TaskAPI2D, the
// configuration the paper evaluates.
func LeafletFinder(cfg Config, coords []linalg.Vec3, cutoff float64, approach leaflet.Approach) (*leaflet.Result, error) {
	if len(coords) == 0 {
		return nil, fmt.Errorf("core: empty coordinate set")
	}
	if cutoff <= 0 {
		return nil, fmt.Errorf("core: cutoff must be positive, got %g", cutoff)
	}
	tasks := cfg.Tasks
	if tasks <= 0 {
		tasks = 1024
	}
	switch cfg.Engine {
	case EngineSerial:
		return leaflet.Serial(coords, cutoff), nil
	case EngineSpark:
		return leaflet.RunRDD(rdd.NewContext(cfg.parallelism()), approach, coords, cutoff, tasks)
	case EngineDask:
		return leaflet.RunDask(dask.NewClient(cfg.parallelism()), approach, coords, cutoff, tasks)
	case EngineMPI:
		return leaflet.RunMPI(cfg.ranks(), approach, coords, cutoff, tasks)
	case EnginePilot:
		if approach != leaflet.TaskAPI2D {
			return nil, fmt.Errorf("core: pilot engine supports only the Task-API 2-D approach, got %v", approach)
		}
		p, cleanup, err := cfg.startPilot()
		if err != nil {
			return nil, err
		}
		defer cleanup()
		return leaflet.RunPilot(p, coords, cutoff, tasks)
	case EngineFleet:
		lf, err := fleet.StartLocal(cfg.ranks(), fleet.LocalOptions())
		if err != nil {
			return nil, err
		}
		defer lf.Close()
		job, err := lf.C.SubmitLeaflet(coords, cutoff, tasks, approach == leaflet.TreeSearch, nil)
		if err != nil {
			return nil, err
		}
		defer lf.C.Drop(job)
		if err := job.Wait(nil); err != nil {
			return nil, err
		}
		return job.Leaflet(), nil
	default:
		return nil, fmt.Errorf("core: unknown engine %v", cfg.Engine)
	}
}

// startPilot brings up a pilot with the config's staging directory and
// latencies, returning a cleanup function that shuts it down.
func (c Config) startPilot() (*pilot.Pilot, func(), error) {
	dir := c.PilotDir
	cleanupDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "mdtask-pilot-*")
		if err != nil {
			return nil, nil, fmt.Errorf("core: creating pilot staging dir: %w", err)
		}
		dir = d
		cleanupDir = true
	}
	pcfg := c.PilotConfig
	if pcfg == (pilot.Config{}) {
		pcfg = pilot.Defaults()
	}
	db := pilot.NewDB(pcfg.DBLatency)
	p, err := pilot.NewPilot(c.ranks(), dir, db, pcfg, nil)
	if err != nil {
		if cleanupDir {
			os.RemoveAll(dir)
		}
		return nil, nil, err
	}
	return p, func() {
		p.Shutdown()
		if cleanupDir {
			os.RemoveAll(dir)
		}
	}, nil
}

// RMSDSeries computes the RMSD (with optimal superposition) of every
// frame of a trajectory against a reference frame: the per-frame
// analysis of §2 ("RMSD is used to identify the deviation of atom
// positions between frames").
func RMSDSeries(t *traj.Trajectory, ref []linalg.Vec3) ([]float64, error) {
	if len(ref) != t.NAtoms {
		return nil, fmt.Errorf("core: reference has %d atoms, trajectory has %d", len(ref), t.NAtoms)
	}
	out := make([]float64, len(t.Frames))
	for i, f := range t.Frames {
		out[i] = linalg.RMSD(f.Coords, ref)
	}
	return out, nil
}
