package balltree

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

func randSigs(r *rand.Rand, n int) []Point4 {
	pts := make([]Point4, n)
	for i := range pts {
		pts[i] = Point4{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10, r.Float64()}
	}
	return pts
}

// TestFrameTreeInvariants checks the structural contract over random
// point sets: the permutation is a permutation, every node's children
// partition its range, and every member signature lies within the
// node's bounding ball.
func TestFrameTreeInvariants(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{0, 1, 2, 7, 8, 9, 33, 100} {
		pts := randSigs(r, n)
		tr := NewFrameTree(pts, 0)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, tr.Len())
		}
		if n == 0 {
			if len(tr.Nodes) != 0 {
				t.Fatalf("empty tree has %d nodes", len(tr.Nodes))
			}
			continue
		}
		seen := make([]bool, n)
		for _, ix := range tr.Perm {
			if seen[ix] {
				t.Fatalf("n=%d: duplicate index %d in Perm", n, ix)
			}
			seen[ix] = true
		}
		root := tr.Nodes[0]
		if root.Start != 0 || int(root.End) != n {
			t.Fatalf("n=%d: root covers [%d,%d)", n, root.Start, root.End)
		}
		for id, nd := range tr.Nodes {
			if nd.Members() <= 0 {
				t.Fatalf("n=%d: node %d empty", n, id)
			}
			for _, ix := range tr.Perm[nd.Start:nd.End] {
				if d := nd.Center.Dist(pts[ix]); d > nd.Radius*(1+1e-12)+1e-300 {
					t.Fatalf("n=%d: node %d member %d at %v outside radius %v", n, id, ix, d, nd.Radius)
				}
			}
			if nd.Leaf() {
				if nd.Members() > DefaultFrameLeafSize {
					t.Fatalf("n=%d: leaf %d holds %d members", n, id, nd.Members())
				}
				continue
			}
			l, rr := tr.Nodes[nd.Left], tr.Nodes[nd.Right]
			if l.Start != nd.Start || l.End != rr.Start || rr.End != nd.End {
				t.Fatalf("n=%d: node %d children do not partition [%d,%d): left [%d,%d) right [%d,%d)",
					n, id, nd.Start, nd.End, l.Start, l.End, rr.Start, rr.End)
			}
		}
	}
}

// TestFrameTreeDeterministic pins build determinism — the indexed
// kernel's counter trajectories are only reproducible across runs and
// engines if the same signatures always yield the same tree.
func TestFrameTreeDeterministic(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 3))
	pts := randSigs(r, 50)
	// Duplicate coordinates exercise the index tie-break.
	pts[10] = pts[20]
	pts[30] = pts[20]
	a := NewFrameTree(pts, 0)
	b := NewFrameTree(append([]Point4(nil), pts...), 0)
	if !reflect.DeepEqual(a.Perm, b.Perm) || !reflect.DeepEqual(a.Nodes, b.Nodes) {
		t.Fatal("identical inputs produced different trees")
	}
}

// TestFrameTreeLeafSize checks custom and defaulted leaf sizes.
func TestFrameTreeLeafSize(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	pts := randSigs(r, 40)
	one := NewFrameTree(pts, 1)
	for id, nd := range one.Nodes {
		if nd.Leaf() && nd.Members() != 1 {
			t.Fatalf("leafSize=1: leaf %d holds %d members", id, nd.Members())
		}
	}
	if big := NewFrameTree(pts, 100); len(big.Nodes) != 1 || !big.Nodes[0].Leaf() {
		t.Fatal("leafSize=100 over 40 points should be a single leaf")
	}
}
