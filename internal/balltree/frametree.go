package balltree

import (
	"math"
	"sort"
)

// The frame-space sibling of the 3-D point tree: PSA's indexed
// Hausdorff kernel (hausdorff.Indexed) views every trajectory frame as
// a 4-D signature — centroid x, y, z plus radius of gyration — because
// the exact pruning bound
//
//	dRMS(a, b) ≥ sqrt(|centroid(a)−centroid(b)|² + (rg(a)−rg(b))²)
//
// is precisely the Euclidean distance between the two signatures. A
// ball tree over the signatures therefore aggregates the flat kernel's
// per-pair bound into per-node bounds: for a query signature q and a
// node with center c and radius r, every member frame p satisfies
// dRMS(q, p) ≥ ‖q − sig(p)‖ ≥ ‖q − c‖ − r by the triangle inequality,
// so one comparison can dismiss a whole subtree. The tree structure is
// exported (Nodes, Perm, Pts) so the kernel can run its own best-first
// branch-and-bound descent with its own counter accounting and its own
// floating-point slack discipline.

// DefaultFrameLeafSize is the member count below which FrameTree nodes
// become leaves. Frame signatures guard O(atoms) dRMS evaluations — far
// more expensive than the O(1) node checks — so leaves are kept small
// enough that trees over even short trajectory windows (tens of frames)
// still get a few levels of node-granularity pruning.
const DefaultFrameLeafSize = 8

// Point4 is a frame signature: centroid x, y, z and radius of gyration.
type Point4 [4]float64

// Dist2 returns the squared Euclidean distance between two signatures.
func (p Point4) Dist2(q Point4) float64 {
	dx := p[0] - q[0]
	dy := p[1] - q[1]
	dz := p[2] - q[2]
	dw := p[3] - q[3]
	return dx*dx + dy*dy + dz*dz + dw*dw
}

// Dist returns the Euclidean distance between two signatures.
func (p Point4) Dist(q Point4) float64 { return math.Sqrt(p.Dist2(q)) }

// FrameNode is one ball of a FrameTree. Leaves have Left == Right == -1
// and cover Perm[Start:End]; internal nodes cover the union of their
// children, which partition the same permutation range.
type FrameNode struct {
	// Center is the arithmetic mean of the member signatures.
	Center Point4
	// Radius is the largest distance from Center to a member signature.
	Radius float64
	// Start and End delimit the node's members in the tree's Perm.
	Start, End int32
	// Left and Right are child node indices, -1 for leaves.
	Left, Right int32
}

// Members reports how many signatures the node covers.
func (n FrameNode) Members() int { return int(n.End - n.Start) }

// Leaf reports whether the node has no children.
func (n FrameNode) Leaf() bool { return n.Left < 0 }

// FrameTree is an immutable ball tree over frame signatures. The Pts
// slice is referenced, not copied; it must not be mutated while the
// tree is in use. Construction is deterministic: the same signature
// slice always yields the same tree, so counter trajectories derived
// from descents are reproducible across runs and engines.
type FrameTree struct {
	Pts   []Point4
	Perm  []int32
	Nodes []FrameNode
}

// NewFrameTree builds a ball tree over the signatures with the given
// leaf size (values < 1 default to DefaultFrameLeafSize). An empty
// point set yields a tree with no nodes.
func NewFrameTree(pts []Point4, leafSize int) *FrameTree {
	if leafSize < 1 {
		leafSize = DefaultFrameLeafSize
	}
	t := &FrameTree{Pts: pts, Perm: make([]int32, len(pts))}
	for i := range t.Perm {
		t.Perm[i] = int32(i)
	}
	if len(pts) > 0 {
		t.build(0, int32(len(pts)), leafSize)
	}
	return t
}

// Len returns the number of indexed signatures.
func (t *FrameTree) Len() int { return len(t.Pts) }

// build creates the node covering Perm[start:end] and returns its id.
func (t *FrameTree) build(start, end int32, leafSize int) int32 {
	id := int32(len(t.Nodes))
	t.Nodes = append(t.Nodes, FrameNode{Start: start, End: end, Left: -1, Right: -1})

	// Bounding ball: centroid of the range plus max member distance.
	var c Point4
	for _, ix := range t.Perm[start:end] {
		p := t.Pts[ix]
		c[0] += p[0]
		c[1] += p[1]
		c[2] += p[2]
		c[3] += p[3]
	}
	inv := 1 / float64(end-start)
	for k := range c {
		c[k] *= inv
	}
	var r2 float64
	for _, ix := range t.Perm[start:end] {
		if d := c.Dist2(t.Pts[ix]); d > r2 {
			r2 = d
		}
	}
	t.Nodes[id].Center = c
	t.Nodes[id].Radius = math.Sqrt(r2)

	if int(end-start) <= leafSize {
		return id
	}

	// Split along the dimension of largest spread at the median. Ties
	// between equal coordinates are broken by the original frame index
	// to keep construction fully deterministic.
	lo, hi := t.Pts[t.Perm[start]], t.Pts[t.Perm[start]]
	for _, ix := range t.Perm[start+1 : end] {
		p := t.Pts[ix]
		for k := 0; k < 4; k++ {
			if p[k] < lo[k] {
				lo[k] = p[k]
			}
			if p[k] > hi[k] {
				hi[k] = p[k]
			}
		}
	}
	dim := 0
	for k := 1; k < 4; k++ {
		if hi[k]-lo[k] > hi[dim]-lo[dim] {
			dim = k
		}
	}
	mid := (start + end) / 2
	seg := t.Perm[start:end]
	sort.Slice(seg, func(i, j int) bool {
		a, b := t.Pts[seg[i]][dim], t.Pts[seg[j]][dim]
		if a != b {
			return a < b
		}
		return seg[i] < seg[j]
	})
	left := t.build(start, mid, leafSize)
	right := t.build(mid, end, leafSize)
	t.Nodes[id].Left = left
	t.Nodes[id].Right = right
	return id
}
