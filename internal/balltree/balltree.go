// Package balltree implements ball-tree metric indexes for the two
// branch-and-bound consumers in this repository:
//
//   - Tree, over 3-D atom positions, replaces the Scikit-Learn BallTree
//     used by the paper's Leaflet Finder Approach 4 ("Tree-Search",
//     §4.3.4): radius and k-NN queries over membrane coordinates.
//   - FrameTree, over 4-D frame signatures (centroid + radius of
//     gyration), is the metric index behind PSA's indexed Hausdorff
//     kernel (hausdorff.Indexed): each trajectory window's frames are
//     indexed once (cached on traj.Packed), and every row's min-dRMS
//     search becomes a best-first tree descent instead of an O(frames)
//     scan. See docs/kernels.md for the kernel-method contract it
//     serves.
//
// Construction is O(n log n); queries are O(log n) for the clustered
// point distributions both workloads exhibit, which is what flips the
// crossover against brute-force pairwise computation for large systems.
package balltree

import (
	"container/heap"
	"math"
	"sort"

	"mdtask/internal/linalg"
)

// DefaultLeafSize is the point count below which nodes become leaves.
const DefaultLeafSize = 32

type node struct {
	center      linalg.Vec3
	radius      float64
	start, end  int32 // index range into the permutation
	left, right int32 // child node ids; -1 for leaves
}

// Tree is an immutable BallTree over a point set. The points slice is
// referenced, not copied; it must not be mutated while the tree is used.
type Tree struct {
	pts      []linalg.Vec3
	perm     []int32
	nodes    []node
	leafSize int
}

// New builds a BallTree with the default leaf size.
func New(pts []linalg.Vec3) *Tree { return NewLeafSize(pts, DefaultLeafSize) }

// NewLeafSize builds a BallTree with a custom leaf size (minimum 1).
func NewLeafSize(pts []linalg.Vec3, leafSize int) *Tree {
	if leafSize < 1 {
		leafSize = 1
	}
	t := &Tree{pts: pts, perm: make([]int32, len(pts)), leafSize: leafSize}
	for i := range t.perm {
		t.perm[i] = int32(i)
	}
	if len(pts) > 0 {
		t.build(0, int32(len(pts)))
	}
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// build creates the node covering perm[start:end] and returns its id.
func (t *Tree) build(start, end int32) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{start: start, end: end, left: -1, right: -1})

	// Bounding ball: centroid of the range plus max distance.
	var c linalg.Vec3
	for _, ix := range t.perm[start:end] {
		p := t.pts[ix]
		c[0] += p[0]
		c[1] += p[1]
		c[2] += p[2]
	}
	inv := 1 / float64(end-start)
	c = c.Scale(inv)
	var r2 float64
	for _, ix := range t.perm[start:end] {
		if d := linalg.Dist2(c, t.pts[ix]); d > r2 {
			r2 = d
		}
	}
	t.nodes[id].center = c
	t.nodes[id].radius = math.Sqrt(r2)

	if int(end-start) <= t.leafSize {
		return id
	}

	// Split along the dimension of largest spread at the median.
	lo, hi := t.rangeBounds(start, end)
	dim := 0
	if hi[1]-lo[1] > hi[dim]-lo[dim] {
		dim = 1
	}
	if hi[2]-lo[2] > hi[dim]-lo[dim] {
		dim = 2
	}
	mid := (start + end) / 2
	seg := t.perm[start:end]
	sort.Slice(seg, func(i, j int) bool {
		return t.pts[seg[i]][dim] < t.pts[seg[j]][dim]
	})
	left := t.build(start, mid)
	right := t.build(mid, end)
	t.nodes[id].left = left
	t.nodes[id].right = right
	return id
}

func (t *Tree) rangeBounds(start, end int32) (lo, hi linalg.Vec3) {
	lo = t.pts[t.perm[start]]
	hi = lo
	for _, ix := range t.perm[start+1 : end] {
		p := t.pts[ix]
		for k := 0; k < 3; k++ {
			if p[k] < lo[k] {
				lo[k] = p[k]
			}
			if p[k] > hi[k] {
				hi[k] = p[k]
			}
		}
	}
	return lo, hi
}

// QueryRadius returns the indices of all points within radius of q, in
// ascending index order.
func (t *Tree) QueryRadius(q linalg.Vec3, radius float64) []int32 {
	out := t.QueryRadiusAppend(nil, q, radius)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QueryRadiusAppend appends the indices of points within radius of q to
// dst (unsorted) and returns the extended slice. It performs no
// allocations beyond growing dst.
func (t *Tree) QueryRadiusAppend(dst []int32, q linalg.Vec3, radius float64) []int32 {
	if len(t.nodes) == 0 {
		return dst
	}
	r2 := radius * radius
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		n := &t.nodes[stack[sp]]
		d := linalg.Dist(q, n.center)
		if d > radius+n.radius {
			continue // ball cannot intersect the query sphere
		}
		if n.left == -1 {
			for _, ix := range t.perm[n.start:n.end] {
				if linalg.Dist2(q, t.pts[ix]) <= r2 {
					dst = append(dst, ix)
				}
			}
			continue
		}
		// Entire ball inside the query sphere: take all points.
		if d+n.radius <= radius {
			dst = append(dst, t.perm[n.start:n.end]...)
			continue
		}
		stack[sp] = n.left
		sp++
		stack[sp] = n.right
		sp++
	}
	return dst
}

// kHeap is a max-heap of (dist2, index) pairs bounded by k.
type kHeap []knnItem

type knnItem struct {
	d2 float64
	ix int32
}

func (h kHeap) Len() int            { return len(h) }
func (h kHeap) Less(i, j int) bool  { return h[i].d2 > h[j].d2 }
func (h kHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *kHeap) Push(x interface{}) { *h = append(*h, x.(knnItem)) }
func (h *kHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// QueryKNN returns the indices of the k points nearest to q, closest
// first. If the tree holds fewer than k points, all are returned.
func (t *Tree) QueryKNN(q linalg.Vec3, k int) []int32 {
	if k <= 0 || len(t.nodes) == 0 {
		return nil
	}
	h := make(kHeap, 0, k+1)
	var visit func(id int32)
	visit = func(id int32) {
		n := &t.nodes[id]
		if len(h) == k {
			if linalg.Dist(q, n.center)-n.radius > math.Sqrt(h[0].d2) {
				return
			}
		}
		if n.left == -1 {
			for _, ix := range t.perm[n.start:n.end] {
				d2 := linalg.Dist2(q, t.pts[ix])
				if len(h) < k {
					heap.Push(&h, knnItem{d2, ix})
				} else if d2 < h[0].d2 {
					h[0] = knnItem{d2, ix}
					heap.Fix(&h, 0)
				}
			}
			return
		}
		// Visit the closer child first for tighter pruning.
		dl := linalg.Dist2(q, t.nodes[n.left].center)
		dr := linalg.Dist2(q, t.nodes[n.right].center)
		if dl <= dr {
			visit(n.left)
			visit(n.right)
		} else {
			visit(n.right)
			visit(n.left)
		}
	}
	visit(0)
	out := make([]int32, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(knnItem).ix
	}
	return out
}

// BruteRadius is the reference implementation of QueryRadius used by
// tests and by the crossover ablation benchmark.
func BruteRadius(pts []linalg.Vec3, q linalg.Vec3, radius float64) []int32 {
	r2 := radius * radius
	var out []int32
	for i, p := range pts {
		if linalg.Dist2(q, p) <= r2 {
			out = append(out, int32(i))
		}
	}
	return out
}
