package balltree

import (
	mathrand "math/rand"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"mdtask/internal/linalg"
)

func randPoints(r *rand.Rand, n int, scale float64) []linalg.Vec3 {
	pts := make([]linalg.Vec3, n)
	for i := range pts {
		pts[i] = linalg.Vec3{r.Float64() * scale, r.Float64() * scale, r.Float64() * scale}
	}
	return pts
}

func TestQueryRadiusMatchesBruteQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(args []reflect.Value, r *mathrand.Rand) {
			args[0] = reflect.ValueOf(uint64(r.Int63()))
			args[1] = reflect.ValueOf(r.Intn(300))
			args[2] = reflect.ValueOf(0.5 + 5*r.Float64())
		},
	}
	f := func(seed uint64, n int, radius float64) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		pts := randPoints(r, n, 10)
		tree := New(pts)
		q := linalg.Vec3{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
		got := tree.QueryRadius(q, radius)
		want := BruteRadius(pts, q, radius)
		return reflect.DeepEqual(got, want) || (len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQueryRadiusLeafSizes(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	pts := randPoints(r, 500, 20)
	q := linalg.Vec3{10, 10, 10}
	want := BruteRadius(pts, q, 4)
	for _, leaf := range []int{1, 2, 8, 64, 1000} {
		tree := NewLeafSize(pts, leaf)
		got := tree.QueryRadius(q, 4)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("leafSize=%d: got %d hits, want %d", leaf, len(got), len(want))
		}
	}
}

func TestQueryRadiusEmptyAndSingle(t *testing.T) {
	empty := New(nil)
	if got := empty.QueryRadius(linalg.Vec3{}, 1); len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
	if empty.Len() != 0 {
		t.Errorf("Len = %d", empty.Len())
	}
	single := New([]linalg.Vec3{{1, 1, 1}})
	if got := single.QueryRadius(linalg.Vec3{1, 1, 1}, 0.1); len(got) != 1 || got[0] != 0 {
		t.Errorf("single tree returned %v", got)
	}
	if got := single.QueryRadius(linalg.Vec3{5, 5, 5}, 0.1); len(got) != 0 {
		t.Errorf("miss returned %v", got)
	}
}

func TestQueryKNN(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	pts := randPoints(r, 400, 10)
	tree := New(pts)
	q := linalg.Vec3{5, 5, 5}
	for _, k := range []int{1, 3, 17, 400, 500} {
		got := tree.QueryKNN(q, k)
		// Brute-force reference: sort all indices by distance.
		idx := make([]int32, len(pts))
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.Slice(idx, func(a, b int) bool {
			return linalg.Dist2(q, pts[idx[a]]) < linalg.Dist2(q, pts[idx[b]])
		})
		wantLen := k
		if wantLen > len(pts) {
			wantLen = len(pts)
		}
		if len(got) != wantLen {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for i, ix := range got {
			// Compare distances, not indices, to tolerate ties.
			if d1, d2 := linalg.Dist2(q, pts[ix]), linalg.Dist2(q, pts[idx[i]]); d1 != d2 {
				t.Fatalf("k=%d result %d: dist %v, want %v", k, i, d1, d2)
			}
		}
	}
	if got := tree.QueryKNN(q, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
}

func TestQueryRadiusAppendReuse(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	pts := randPoints(r, 200, 5)
	tree := New(pts)
	buf := make([]int32, 0, 64)
	total := 0
	for i := range pts {
		buf = tree.QueryRadiusAppend(buf[:0], pts[i], 1.0)
		total += len(buf)
		// Every query must at least find the point itself.
		found := false
		for _, ix := range buf {
			if ix == int32(i) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %d did not find itself", i)
		}
	}
	if total < len(pts) {
		t.Error("implausibly few results")
	}
}

func TestDegeneratePoints(t *testing.T) {
	// All points identical: tree must still terminate and answer.
	pts := make([]linalg.Vec3, 100)
	tree := New(pts)
	if got := tree.QueryRadius(linalg.Vec3{}, 0.5); len(got) != 100 {
		t.Fatalf("got %d hits, want 100", len(got))
	}
	// Collinear points.
	for i := range pts {
		pts[i] = linalg.Vec3{float64(i), 0, 0}
	}
	tree = New(pts)
	got := tree.QueryRadius(linalg.Vec3{50, 0, 0}, 2.5)
	if len(got) != 5 {
		t.Fatalf("collinear: got %v", got)
	}
}
