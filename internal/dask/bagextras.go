package dask

import "fmt"

// Additional Bag operations from the Dask Bag API surface.

// BagFlatMap applies f and concatenates the per-element result slices.
func BagFlatMap[T, U any](b *Bag[T], f func(T) ([]U, error)) *Bag[U] {
	parts := make([]*Delayed, len(b.parts))
	for i, p := range b.parts {
		parts[i] = b.client.Delayed(fmt.Sprintf("flatMap-%d", i), func(args []interface{}) (interface{}, error) {
			var out []U
			for _, v := range args[0].([]T) {
				us, err := f(v)
				if err != nil {
					return nil, err
				}
				out = append(out, us...)
			}
			return out, nil
		}, p)
	}
	return &Bag[U]{client: b.client, parts: parts}
}

// BagCount evaluates the bag and returns its element count.
func BagCount[T any](b *Bag[T]) (int, error) {
	counts := make([]*Delayed, len(b.parts))
	for i, p := range b.parts {
		counts[i] = b.client.Delayed(fmt.Sprintf("count-%d", i), func(args []interface{}) (interface{}, error) {
			return len(args[0].([]T)), nil
		}, p)
	}
	vals, err := b.client.Compute(counts...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, v := range vals {
		total += v.(int)
	}
	return total, nil
}

// BagGroupBy groups elements by key into a map, computed with
// per-partition grouping and a final merge (Dask's groupby is similarly
// a full-shuffle operation).
func BagGroupBy[T any, K comparable](b *Bag[T], key func(T) K) (map[K][]T, error) {
	partials := make([]*Delayed, len(b.parts))
	for i, p := range b.parts {
		partials[i] = b.client.Delayed(fmt.Sprintf("groupby-%d", i), func(args []interface{}) (interface{}, error) {
			m := make(map[K][]T)
			for _, v := range args[0].([]T) {
				k := key(v)
				m[k] = append(m[k], v)
			}
			return m, nil
		}, p)
	}
	vals, err := b.client.Compute(partials...)
	if err != nil {
		return nil, err
	}
	out := make(map[K][]T)
	var items int64
	for _, v := range vals {
		for k, vs := range v.(map[K][]T) {
			out[k] = append(out[k], vs...)
			items += int64(len(vs))
		}
	}
	b.client.Metrics.AddShuffle(items * 24)
	return out, nil
}

// BagDistinct evaluates the bag and returns its distinct elements
// (order unspecified within partitions, stable across runs).
func BagDistinct[T comparable](b *Bag[T]) ([]T, error) {
	all, err := b.Compute()
	if err != nil {
		return nil, err
	}
	seen := make(map[T]bool, len(all))
	var out []T
	for _, v := range all {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out, nil
}
