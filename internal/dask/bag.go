package dask

import "fmt"

// Bag is Dask's unordered partitioned collection, built here on top of
// Delayed nodes: each partition is one graph node evaluating to []T.
// The paper maps its MapReduce-style Leaflet Finder implementations to
// Bags (§3.2, Table 1).
type Bag[T any] struct {
	client *Client
	parts  []*Delayed // each evaluates to []T
}

// BagFromSequence splits data into numParts contiguous partitions
// (0 uses the client's worker count).
func BagFromSequence[T any](c *Client, data []T, numParts int) *Bag[T] {
	if numParts <= 0 {
		numParts = c.Workers()
	}
	if numParts > len(data) && len(data) > 0 {
		numParts = len(data)
	}
	if numParts == 0 {
		numParts = 1
	}
	n := len(data)
	parts := make([]*Delayed, numParts)
	for i := 0; i < numParts; i++ {
		lo := i * n / numParts
		hi := (i + 1) * n / numParts
		seg := data[lo:hi]
		parts[i] = c.Value(fmt.Sprintf("bag-part-%d", i), seg)
	}
	return &Bag[T]{client: c, parts: parts}
}

// BagFromDelayed builds a bag from existing nodes, each of which must
// evaluate to []T.
func BagFromDelayed[T any](c *Client, parts []*Delayed) *Bag[T] {
	return &Bag[T]{client: c, parts: parts}
}

// NumPartitions returns the bag's partition count.
func (b *Bag[T]) NumPartitions() int { return len(b.parts) }

// BagMap applies f to every element.
func BagMap[T, U any](b *Bag[T], f func(T) (U, error)) *Bag[U] {
	parts := make([]*Delayed, len(b.parts))
	for i, p := range b.parts {
		parts[i] = b.client.Delayed(fmt.Sprintf("map-%d", i), func(args []interface{}) (interface{}, error) {
			in := args[0].([]T)
			out := make([]U, len(in))
			var err error
			for j, v := range in {
				if out[j], err = f(v); err != nil {
					return nil, err
				}
			}
			return out, nil
		}, p)
	}
	return &Bag[U]{client: b.client, parts: parts}
}

// BagMapPartitions applies f to each whole partition.
func BagMapPartitions[T, U any](b *Bag[T], f func(part int, in []T) ([]U, error)) *Bag[U] {
	parts := make([]*Delayed, len(b.parts))
	for i, p := range b.parts {
		i := i
		parts[i] = b.client.Delayed(fmt.Sprintf("mapPartitions-%d", i), func(args []interface{}) (interface{}, error) {
			out, err := f(i, args[0].([]T))
			if err != nil {
				return nil, err
			}
			return out, nil
		}, p)
	}
	return &Bag[U]{client: b.client, parts: parts}
}

// BagFilter keeps elements matching pred.
func BagFilter[T any](b *Bag[T], pred func(T) bool) *Bag[T] {
	parts := make([]*Delayed, len(b.parts))
	for i, p := range b.parts {
		parts[i] = b.client.Delayed(fmt.Sprintf("filter-%d", i), func(args []interface{}) (interface{}, error) {
			in := args[0].([]T)
			var out []T
			for _, v := range in {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out, nil
		}, p)
	}
	return &Bag[T]{client: b.client, parts: parts}
}

// BagFold reduces the bag with a per-partition accumulator and a
// pairwise combiner of accumulators (Dask's bag.fold). As in Dask, the
// zero value seeds every partition's accumulation, so it must be an
// identity of combine. The combine tree is binary, so reduction depth
// is logarithmic like Dask's.
func BagFold[T, A any](b *Bag[T], zero A, acc func(A, T) A, combine func(A, A) A) *Delayed {
	partials := make([]*Delayed, len(b.parts))
	for i, p := range b.parts {
		partials[i] = b.client.Delayed(fmt.Sprintf("fold-acc-%d", i), func(args []interface{}) (interface{}, error) {
			a := zero
			for _, v := range args[0].([]T) {
				a = acc(a, v)
			}
			return a, nil
		}, p)
	}
	for len(partials) > 1 {
		var next []*Delayed
		for i := 0; i < len(partials); i += 2 {
			if i+1 == len(partials) {
				next = append(next, partials[i])
				continue
			}
			next = append(next, b.client.Delayed("fold-combine", func(args []interface{}) (interface{}, error) {
				return combine(args[0].(A), args[1].(A)), nil
			}, partials[i], partials[i+1]))
		}
		partials = next
	}
	if len(partials) == 0 {
		return b.client.Value("fold-empty", zero)
	}
	return partials[0]
}

// Compute evaluates the bag and concatenates its partitions.
func (b *Bag[T]) Compute() ([]T, error) {
	vals, err := b.client.Compute(b.parts...)
	if err != nil {
		return nil, err
	}
	var out []T
	for _, v := range vals {
		out = append(out, v.([]T)...)
	}
	return out, nil
}
