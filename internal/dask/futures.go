package dask

import "fmt"

// Futures API: dask.distributed's submit/gather interface, built on the
// same scheduler as Delayed. A Future is a handle to an asynchronously
// computed value; Submit dispatches immediately (fire-and-forget) and
// Gather blocks for results.

// Future is a handle to an asynchronously computed value.
type Future struct {
	node *Delayed
	done chan struct{}
}

// Submit schedules fn(args...) for immediate execution on the cluster
// and returns a Future. Dependencies expressed as Futures are awaited
// by the scheduler, not the caller.
func (c *Client) Submit(name string, fn func(args []interface{}) (interface{}, error), deps ...*Future) *Future {
	depNodes := make([]*Delayed, len(deps))
	for i, d := range deps {
		depNodes[i] = d.node
	}
	node := c.Delayed(name, fn, depNodes...)
	f := &Future{node: node, done: make(chan struct{})}
	go func() {
		defer close(f.done)
		// Compute memoizes, so concurrent graphs sharing nodes are safe.
		_, _ = c.Compute(node)
	}()
	return f
}

// Done reports whether the future has completed.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Result blocks until the future completes and returns its value.
func (f *Future) Result() (interface{}, error) {
	<-f.done
	if f.node.err != nil {
		return nil, f.node.err
	}
	return f.node.val, nil
}

// Gather blocks for all futures and returns their values in order,
// failing on the first error, like distributed.Client.gather.
func (c *Client) Gather(futures ...*Future) ([]interface{}, error) {
	out := make([]interface{}, len(futures))
	for i, f := range futures {
		v, err := f.Result()
		if err != nil {
			return nil, fmt.Errorf("dask: gathering future %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
