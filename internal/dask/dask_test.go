package dask

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDelayedSingle(t *testing.T) {
	c := NewClient(2)
	d := c.Delayed("answer", func([]interface{}) (interface{}, error) { return 42, nil })
	vals, err := c.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(int) != 42 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestDelayedDependencies(t *testing.T) {
	c := NewClient(4)
	a := c.Value("a", 3)
	b := c.Value("b", 4)
	sum := c.Delayed("sum", func(args []interface{}) (interface{}, error) {
		return args[0].(int) + args[1].(int), nil
	}, a, b)
	sq := c.Delayed("square", func(args []interface{}) (interface{}, error) {
		v := args[0].(int)
		return v * v, nil
	}, sum)
	vals, err := c.Compute(sq)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(int) != 49 {
		t.Fatalf("got %v", vals[0])
	}
}

func TestDiamondDependencyComputesOnce(t *testing.T) {
	c := NewClient(4)
	var runs int64
	base := c.Delayed("base", func([]interface{}) (interface{}, error) {
		atomic.AddInt64(&runs, 1)
		return 1, nil
	})
	left := c.Delayed("left", func(args []interface{}) (interface{}, error) {
		return args[0].(int) + 10, nil
	}, base)
	right := c.Delayed("right", func(args []interface{}) (interface{}, error) {
		return args[0].(int) + 20, nil
	}, base)
	top := c.Delayed("top", func(args []interface{}) (interface{}, error) {
		return args[0].(int) + args[1].(int), nil
	}, left, right)
	vals, err := c.Compute(top)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(int) != 32 {
		t.Fatalf("got %v", vals[0])
	}
	if runs != 1 {
		t.Errorf("base ran %d times", runs)
	}
}

func TestMemoizationAcrossComputes(t *testing.T) {
	c := NewClient(2)
	var runs int64
	d := c.Delayed("once", func([]interface{}) (interface{}, error) {
		atomic.AddInt64(&runs, 1)
		return "x", nil
	})
	for i := 0; i < 3; i++ {
		if _, err := c.Compute(d); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 1 {
		t.Errorf("node ran %d times across Computes", runs)
	}
}

func TestErrorPropagation(t *testing.T) {
	c := NewClient(2)
	bad := c.Delayed("bad", func([]interface{}) (interface{}, error) {
		return nil, errors.New("exploded")
	})
	dep := c.Delayed("dep", func(args []interface{}) (interface{}, error) {
		return args[0], nil
	}, bad)
	if _, err := c.Compute(dep); err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicCapture(t *testing.T) {
	c := NewClient(2)
	d := c.Delayed("panics", func([]interface{}) (interface{}, error) { panic("ouch") })
	if _, err := c.Compute(d); err == nil || !strings.Contains(err.Error(), "ouch") {
		t.Fatalf("err = %v", err)
	}
}

func TestMemoryLimitRestartsWorker(t *testing.T) {
	c := NewClient(2)
	c.MemoryLimit = 1 << 20
	d := c.DelayedMem("huge", 2<<20, func([]interface{}) (interface{}, error) { return 1, nil })
	_, err := c.Compute(d)
	if !errors.Is(err, ErrWorkerRestarted) {
		t.Fatalf("err = %v, want ErrWorkerRestarted", err)
	}
	// Small tasks are unaffected.
	ok := c.DelayedMem("small", 1000, func([]interface{}) (interface{}, error) { return 2, nil })
	if _, err := c.Compute(ok); err != nil {
		t.Fatal(err)
	}
}

func TestScatterAccountsBroadcast(t *testing.T) {
	c := NewClient(2)
	s := c.Scatter("data", []int{1, 2, 3}, 24)
	vals, err := c.Compute(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals[0], []int{1, 2, 3}) {
		t.Fatalf("vals = %v", vals)
	}
	if c.Metrics.Snapshot().BytesBroadcast != 24 {
		t.Error("scatter bytes not accounted")
	}
}

func TestComputeMultipleRoots(t *testing.T) {
	c := NewClient(3)
	ds := make([]*Delayed, 10)
	for i := range ds {
		i := i
		ds[i] = c.Delayed("n", func([]interface{}) (interface{}, error) { return i * i, nil })
	}
	vals, err := c.Compute(ds...)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v.(int) != i*i {
			t.Fatalf("vals[%d] = %v", i, v)
		}
	}
}

func TestBagMapFilterCompute(t *testing.T) {
	c := NewClient(4)
	data := make([]int, 30)
	for i := range data {
		data[i] = i
	}
	b := BagFromSequence(c, data, 5)
	if b.NumPartitions() != 5 {
		t.Fatalf("partitions = %d", b.NumPartitions())
	}
	mapped := BagMap(b, func(x int) (int, error) { return x * 3, nil })
	filtered := BagFilter(mapped, func(x int) bool { return x%2 == 0 })
	got, err := filtered.Compute()
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for _, x := range data {
		if x*3%2 == 0 {
			want = append(want, x*3)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestBagFold(t *testing.T) {
	c := NewClient(4)
	data := make([]int, 101)
	for i := range data {
		data[i] = i
	}
	b := BagFromSequence(c, data, 7)
	sum := BagFold(b, 0,
		func(acc, x int) int { return acc + x },
		func(a, b int) int { return a + b })
	vals, err := c.Compute(sum)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(int) != 5050 {
		t.Fatalf("sum = %v", vals[0])
	}
}

func TestBagFoldEmpty(t *testing.T) {
	c := NewClient(2)
	b := BagFromSequence(c, []int(nil), 3)
	// The zero value must be an identity of combine (seeded per
	// partition, as in Dask).
	sum := BagFold(b, 0,
		func(acc, x int) int { return acc + x },
		func(a, b int) int { return a + b })
	vals, err := c.Compute(sum)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(int) != 0 {
		t.Fatalf("fold of empty = %v, want 0", vals[0])
	}
}

func TestBagMapPartitions(t *testing.T) {
	c := NewClient(2)
	b := BagFromSequence(c, []int{1, 2, 3, 4}, 2)
	sums := BagMapPartitions(b, func(part int, in []int) ([]int, error) {
		s := 0
		for _, v := range in {
			s += v
		}
		return []int{s}, nil
	})
	got, err := sums.Compute()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("got %v", got)
	}
}

func TestBagMatchesSerialQuick(t *testing.T) {
	c := NewClient(4)
	f := func(data []int8, parts uint8) bool {
		np := int(parts%6) + 1
		ints := make([]int, len(data))
		for i, v := range data {
			ints[i] = int(v)
		}
		b := BagMap(BagFromSequence(c, ints, np), func(x int) (int, error) { return x + 1, nil })
		got, err := b.Compute()
		if err != nil || len(got) != len(ints) {
			return false
		}
		for i := range ints {
			if got[i] != ints[i]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWorkersDefault(t *testing.T) {
	if NewClient(0).Workers() < 1 {
		t.Error("Workers < 1")
	}
}
