package dask

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestSubmitAndResult(t *testing.T) {
	c := NewClient(2)
	f := c.Submit("answer", func([]interface{}) (interface{}, error) { return 41 + 1, nil })
	v, err := f.Result()
	if err != nil || v.(int) != 42 {
		t.Fatalf("Result = %v, %v", v, err)
	}
	if !f.Done() {
		t.Error("Done = false after Result")
	}
}

func TestSubmitDependencies(t *testing.T) {
	c := NewClient(4)
	a := c.Submit("a", func([]interface{}) (interface{}, error) {
		time.Sleep(2 * time.Millisecond)
		return 10, nil
	})
	b := c.Submit("b", func(args []interface{}) (interface{}, error) {
		return args[0].(int) * 3, nil
	}, a)
	vals, err := c.Gather(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(int) != 10 || vals[1].(int) != 30 {
		t.Fatalf("Gather = %v", vals)
	}
}

func TestGatherPropagatesError(t *testing.T) {
	c := NewClient(2)
	bad := c.Submit("bad", func([]interface{}) (interface{}, error) {
		return nil, errors.New("future failed")
	})
	if _, err := c.Gather(bad); err == nil || !strings.Contains(err.Error(), "future failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestManyConcurrentFutures(t *testing.T) {
	c := NewClient(8)
	futures := make([]*Future, 200)
	for i := range futures {
		i := i
		futures[i] = c.Submit("n", func([]interface{}) (interface{}, error) { return i, nil })
	}
	vals, err := c.Gather(futures...)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v.(int) != i {
			t.Fatalf("vals[%d] = %v", i, v)
		}
	}
}

func TestBagFlatMap(t *testing.T) {
	c := NewClient(2)
	b := BagFromSequence(c, []int{1, 2, 3}, 2)
	fm := BagFlatMap(b, func(x int) ([]int, error) { return []int{x, -x}, nil })
	got, err := fm.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, -1, 2, -2, 3, -3}) {
		t.Fatalf("got %v", got)
	}
}

func TestBagCount(t *testing.T) {
	c := NewClient(2)
	b := BagFromSequence(c, make([]int, 37), 5)
	n, err := BagCount(b)
	if err != nil || n != 37 {
		t.Fatalf("BagCount = %d, %v", n, err)
	}
}

func TestBagGroupBy(t *testing.T) {
	c := NewClient(3)
	b := BagFromSequence(c, []int{1, 2, 3, 4, 5, 6, 7}, 3)
	groups, err := BagGroupBy(b, func(x int) int { return x % 2 })
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(groups[0])
	sort.Ints(groups[1])
	if !reflect.DeepEqual(groups[0], []int{2, 4, 6}) || !reflect.DeepEqual(groups[1], []int{1, 3, 5, 7}) {
		t.Fatalf("groups = %v", groups)
	}
}

func TestBagDistinct(t *testing.T) {
	c := NewClient(2)
	b := BagFromSequence(c, []string{"a", "b", "a", "c", "b"}, 2)
	got, err := BagDistinct(b)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("distinct = %v", got)
	}
}
