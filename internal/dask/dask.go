// Package dask is a Dask-like task-graph engine: delayed nodes form an
// arbitrary DAG that a dependency-driven distributed scheduler executes
// on worker goroutines, plus a Bag collection API layered on top. It
// reproduces the execution semantics the paper exercises through
// Dask.distributed (§3.2): tasks run as soon as their inputs are
// satisfied — there are no stage barriers — and the per-task overhead is
// low, which is what gives Dask its task-throughput advantage in the
// paper's Figures 2 and 3.
//
// The scheduler also models Dask's operational memory guard: workers
// restart when a task's declared working set exceeds the memory limit
// (the behaviour that stopped the paper's 4M-atom Approach-3 run,
// §4.3.3). Use DelayedMem to declare working sets.
package dask

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mdtask/internal/engine"
)

// Client owns the scheduler, worker pool, and metrics of a Dask-like
// cluster.
type Client struct {
	workers int
	// Metrics accumulates task and byte accounting.
	Metrics *engine.Metrics
	// MemoryLimit, when > 0, causes tasks whose declared working set
	// exceeds it to fail with ErrWorkerRestarted.
	MemoryLimit int64

	mu     sync.Mutex
	nextID int64
}

// NewClient creates a client with the given worker parallelism
// (< 1 defaults to GOMAXPROCS).
func NewClient(workers int) *Client {
	m := &engine.Metrics{}
	p := engine.NewPool(workers, m)
	return &Client{workers: p.Workers(), Metrics: m}
}

// Workers returns the scheduler's parallelism.
func (c *Client) Workers() int { return c.workers }

// ErrWorkerRestarted signals that a worker exceeded its memory budget
// and was restarted, losing the task (Dask's nanny behaviour at 95%
// utilization).
var ErrWorkerRestarted = errors.New("dask: worker restarted: memory utilization reached 95%")

// Delayed is a lazy task: a function of the results of its dependencies.
// Results are memoized, so a node shared by several graphs computes
// once.
type Delayed struct {
	client *Client
	id     int64
	name   string
	fn     func(args []interface{}) (interface{}, error)
	deps   []*Delayed
	mem    int64

	onceRun sync.Once
	ran     atomic.Bool
	val     interface{}
	err     error
}

// Delayed wraps fn as a graph node depending on deps. At execution, fn
// receives the dependency results in order.
func (c *Client) Delayed(name string, fn func(args []interface{}) (interface{}, error), deps ...*Delayed) *Delayed {
	return c.DelayedMem(name, 0, fn, deps...)
}

// DelayedMem is Delayed with a declared peak working set in bytes,
// checked against the client's MemoryLimit.
func (c *Client) DelayedMem(name string, memBytes int64, fn func(args []interface{}) (interface{}, error), deps ...*Delayed) *Delayed {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	return &Delayed{client: c, id: id, name: name, fn: fn, deps: deps, mem: memBytes}
}

// Value wraps an already-computed value as a graph node.
func (c *Client) Value(name string, v interface{}) *Delayed {
	d := c.Delayed(name, func([]interface{}) (interface{}, error) { return v, nil })
	return d
}

// Scatter ships data to the workers ahead of computation, accounting
// the broadcast bytes. In-process this is a reference, but the byte
// accounting feeds the experiment harness's broadcast measurements.
func (c *Client) Scatter(name string, v interface{}, bytes int64) *Delayed {
	c.Metrics.AddBroadcast(bytes)
	return c.Value(name+"/scattered", v)
}

// Compute executes the graphs rooted at the given nodes and returns
// their results in order. Execution is dependency-driven: a node runs as
// soon as all dependencies finish, with no global barriers.
func (c *Client) Compute(roots ...*Delayed) ([]interface{}, error) {
	// Discover the graph.
	indeg := make(map[*Delayed]int)
	dependents := make(map[*Delayed][]*Delayed)
	var order []*Delayed
	var visit func(d *Delayed)
	seen := make(map[*Delayed]bool)
	visit = func(d *Delayed) {
		if seen[d] {
			return
		}
		seen[d] = true
		order = append(order, d)
		todo := 0
		for _, dep := range d.deps {
			if !dep.computed() {
				todo++
				dependents[dep] = append(dependents[dep], d)
				visit(dep)
			}
		}
		indeg[d] = todo
	}
	for _, r := range roots {
		visit(r)
	}

	ready := make(chan *Delayed, len(order))
	pending := 0
	for _, d := range order {
		if d.computed() {
			continue
		}
		pending++
		if indeg[d] == 0 {
			ready <- d
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		left     = pending
	)
	if pending == 0 {
		close(ready)
	}
	workers := c.workers
	if workers > pending {
		workers = pending
	}
	complete := func(d *Delayed) {
		mu.Lock()
		defer mu.Unlock()
		if d.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dask: task %s: %w", d.name, d.err)
		}
		for _, dep := range dependents[d] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready <- dep
			}
		}
		left--
		if left == 0 {
			close(ready)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range ready {
				d.run()
				complete(d)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	out := make([]interface{}, len(roots))
	for i, r := range roots {
		if r.err != nil {
			return nil, fmt.Errorf("dask: task %s: %w", r.name, r.err)
		}
		out[i] = r.val
	}
	return out, nil
}

// computed reports whether the node already ran (successfully or not).
func (d *Delayed) computed() bool { return d.ran.Load() }

func (d *Delayed) run() {
	d.onceRun.Do(func() {
		defer func() {
			if v := recover(); v != nil {
				d.err = fmt.Errorf("dask: task %s panicked: %v", d.name, v)
			}
			d.ran.Store(true)
		}()
		if d.client.MemoryLimit > 0 && d.mem > 0 {
			if float64(d.mem) > 0.95*float64(d.client.MemoryLimit) {
				d.err = fmt.Errorf("%w (task %s needs %d bytes, limit %d)",
					ErrWorkerRestarted, d.name, d.mem, d.client.MemoryLimit)
				d.client.Metrics.RecordFailure()
				return
			}
		}
		args := make([]interface{}, len(d.deps))
		for i, dep := range d.deps {
			if dep.err != nil {
				d.err = dep.err
				return
			}
			args[i] = dep.val
		}
		dur, err := engine.Timed(func() error {
			v, err := d.fn(args)
			d.val = v
			return err
		})
		d.client.Metrics.RecordTask(dur)
		d.err = err
	})
}
