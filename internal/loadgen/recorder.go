package loadgen

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"text/tabwriter"
	"time"
)

// Recorder accumulates per-endpoint latency samples for one scenario.
// Sample storage is exact — percentiles come from the sorted sample
// set, not from bucketed approximation — which is affordable because
// scenario request counts are thousands, not millions.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	samples map[string][]time.Duration
	errors  map[string]int
}

// NewRecorder starts a recorder; elapsed time (for throughput) counts
// from this call.
func NewRecorder() *Recorder {
	return &Recorder{
		start:   time.Now(),
		samples: make(map[string][]time.Duration),
		errors:  make(map[string]int),
	}
}

// Observe records one request's latency under an endpoint label.
// Transport failures record as errors instead (Error below), so the
// latency profile only describes completed requests.
func (r *Recorder) Observe(endpoint string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples[endpoint] = append(r.samples[endpoint], d)
}

// Error records one failed (transport-level) request.
func (r *Recorder) Error(endpoint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.errors[endpoint]++
}

// EndpointStats is one endpoint's aggregate: request count, error
// count, closed-loop throughput over the scenario window, and latency
// percentiles. Latency NEVER gates — it is recorded for the report.
type EndpointStats struct {
	Endpoint   string  `json:"endpoint"`
	Count      int     `json:"count"`
	Errors     int     `json:"errors"`
	Throughput float64 `json:"throughput_rps"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// samples using nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	ix := int(float64(len(sorted))*p/100+0.5) - 1
	if ix < 0 {
		ix = 0
	}
	if ix >= len(sorted) {
		ix = len(sorted) - 1
	}
	return sorted[ix]
}

// Stats snapshots every endpoint's aggregate, sorted by endpoint name.
func (r *Recorder) Stats() []EndpointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	elapsed := time.Since(r.start).Seconds()
	names := make([]string, 0, len(r.samples)+len(r.errors))
	for n := range r.samples {
		names = append(names, n)
	}
	for n := range r.errors {
		if _, ok := r.samples[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]EndpointStats, 0, len(names))
	for _, n := range names {
		s := append([]time.Duration(nil), r.samples[n]...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		st := EndpointStats{Endpoint: n, Count: len(s), Errors: r.errors[n]}
		if elapsed > 0 {
			st.Throughput = float64(len(s)) / elapsed
		}
		if len(s) > 0 {
			ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
			st.P50Ms = ms(percentile(s, 50))
			st.P95Ms = ms(percentile(s, 95))
			st.P99Ms = ms(percentile(s, 99))
			st.MaxMs = ms(s[len(s)-1])
		}
		out = append(out, st)
	}
	return out
}

// WriteTable renders the report's latency profile as an aligned text
// table, one section per scenario.
func WriteTable(w io.Writer, rep *Report) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tendpoint\tcount\terrs\trps\tp50 ms\tp95 ms\tp99 ms\tmax ms")
	for _, sc := range rep.Scenarios {
		if sc.Skipped {
			fmt.Fprintf(tw, "%s\t(skipped: %s)\t\t\t\t\t\t\t\n", sc.Scenario, sc.SkipReason)
			continue
		}
		for _, e := range sc.Endpoints {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\n",
				sc.Scenario, e.Endpoint, e.Count, e.Errors, e.Throughput,
				e.P50Ms, e.P95Ms, e.P99Ms, e.MaxMs)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
	fmt.Fprintln(w, "invariants:")
	for _, sc := range rep.Scenarios {
		for _, inv := range sc.Invariants {
			mark := "ok  "
			if !inv.OK {
				mark = "FAIL"
			}
			fmt.Fprintf(w, "  [%s] %s/%s", mark, sc.Scenario, inv.Name)
			if inv.Detail != "" {
				fmt.Fprintf(w, " — %s", inv.Detail)
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteCSV renders one row per scenario × endpoint.
func WriteCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "endpoint", "count", "errors",
		"throughput_rps", "p50_ms", "p95_ms", "p99_ms", "max_ms"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, sc := range rep.Scenarios {
		for _, e := range sc.Endpoints {
			if err := cw.Write([]string{sc.Scenario, e.Endpoint,
				strconv.Itoa(e.Count), strconv.Itoa(e.Errors),
				f(e.Throughput), f(e.P50Ms), f(e.P95Ms), f(e.P99Ms), f(e.MaxMs)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
