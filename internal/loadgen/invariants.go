package loadgen

import (
	"fmt"
	"strings"
	"time"
)

// runScenario executes one scenario with before/after metric snapshots
// and evaluates the shared deterministic invariants plus whatever
// scenario-specific checks the run registered via h.check. Harness
// errors (server unreachable, protocol violations) return err;
// invariant failures land in the report.
func (h *Harness) runScenario(sc Scenario) (*ScenarioReport, error) {
	rep := &ScenarioReport{Scenario: sc.Name, Description: sc.Description}
	if sc.NeedsWorkers {
		if n := h.workers(); n == 0 {
			if h.cfg.RequireWorkers {
				return nil, fmt.Errorf("no fleet workers registered (scenario needs them; started with -require-workers)")
			}
			rep.Skipped = true
			rep.SkipReason = "no fleet workers registered"
			h.cfg.Logf("scenario %-16s SKIPPED (no fleet workers)", sc.Name)
			return rep, nil
		}
	}
	h.cfg.Logf("scenario %-16s starting", sc.Name)
	h.reset()

	// The before snapshot must land on an idle scheduler, or counter
	// deltas would fold in the tail of the previous scenario.
	if err := h.drain(60 * time.Second); err != nil {
		return nil, err
	}
	before, err := h.snapshot()
	if err != nil {
		return nil, err
	}
	goBefore, goBeforeErr := h.goroutines()

	start := time.Now()
	if err := sc.run(h); err != nil {
		return nil, err
	}
	if err := h.drain(120 * time.Second); err != nil {
		return nil, err
	}
	rep.ElapsedMS = time.Since(start).Milliseconds()

	after, err := h.snapshot()
	if err != nil {
		return nil, err
	}

	h.mu.Lock()
	rep.Accepted = len(h.accepted)
	rep.Shed = h.shed
	rep.Oversized = h.oversized413
	rep.CacheHits = h.cacheHits
	rep.Cancelled = h.cancelled
	lost := append([]string(nil), h.lost...)
	retryMissing := h.retryAfterMissing
	sent := h.oversizedSent
	extra := append([]Invariant(nil), h.extra...)
	h.mu.Unlock()

	inv := func(name string, ok bool, format string, args ...interface{}) {
		rep.Invariants = append(rep.Invariants, Invariant{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}

	// Zero lost jobs: every accepted submission reached an allowed
	// terminal state. This is THE load-shedding contract — the server
	// may refuse work, it must never lose admitted work.
	inv("zero-lost-jobs", len(lost) == 0, "%d accepted jobs lost or mis-terminated %s", len(lost), strings.Join(lost, ","))

	// Accounting: counter deltas must match what the harness actually
	// did, exactly. Submitted counts acceptances (cache hits included);
	// rejected counts 429 sheds.
	if d, ok := Delta(before.prom, after.prom, "mdtask_jobs_submitted_total"); ok {
		inv("submitted-counter-exact", int(d) == rep.Accepted,
			"server counted %d submissions, harness had %d accepted", int(d), rep.Accepted)
	} else {
		inv("submitted-counter-exact", false, "mdtask_jobs_submitted_total not exposed")
	}
	if d, ok := Delta(before.prom, after.prom, "mdtask_jobs_rejected_total"); ok {
		inv("rejected-counter-exact", int(d) == rep.Shed,
			"server counted %d rejections, harness saw %d 429s", int(d), rep.Shed)
	} else if rep.Shed > 0 {
		inv("rejected-counter-exact", false, "saw %d 429s but mdtask_jobs_rejected_total not exposed", rep.Shed)
	}

	// Every 429 must carry Retry-After — shed clients need to know when
	// to come back.
	inv("429-has-retry-after", retryMissing == 0, "%d of %d 429 responses lacked Retry-After", retryMissing, rep.Shed)

	// Every oversized probe must be refused by the body bound.
	if sent > 0 {
		inv("oversized-rejected-413", rep.Oversized == sent, "%d of %d oversized bodies rejected", rep.Oversized, sent)
	}

	// Durability: the WAL must never skip records under load.
	if v, ok := after.prom.Value("mdtask_wal_records_skipped_total"); ok {
		inv("wal-records-skipped-zero", v == 0, "mdtask_wal_records_skipped_total=%g", v)
	}

	// Goroutine hygiene: after the drain the server must return to its
	// baseline (plus slack for idle HTTP keep-alive conns and timer
	// goroutines). Sampled with retries — goroutine exit is async.
	if goBeforeErr == nil {
		const slack = 20
		ok, goAfter := false, 0.0
		for i := 0; i < 20 && !ok; i++ {
			var err error
			if goAfter, err = h.goroutines(); err == nil && goAfter <= goBefore+slack {
				ok = true
				break
			}
			time.Sleep(250 * time.Millisecond)
		}
		inv("no-goroutine-leak", ok, "go_goroutines %g -> %g (slack %d)", goBefore, goAfter, slack)
	}

	// Chaos evidence: when the run is declared chaotic the coordinator
	// must show the faults actually fired — requeues, plus failed units
	// or lost workers. A chaos gate that passes with zero faults proves
	// nothing.
	if sc.ChaosOnly && h.cfg.Chaos {
		if after.fleet == nil {
			inv("chaos-faults-observed", false, "fleet stats unavailable: %v", after.fleetErr)
		} else {
			fb := before.fleet
			var reqB, failB, lostB int64
			if fb != nil {
				reqB, failB, lostB = fb.Requeues, fb.UnitFailures, fb.WorkersLost
			}
			dReq := after.fleet.Requeues - reqB
			dFail := after.fleet.UnitFailures - failB
			dLost := after.fleet.WorkersLost - lostB
			inv("chaos-faults-observed", dReq >= 1 && (dFail >= 1 || dLost >= 1),
				"requeues+%d unit_failures+%d workers_lost+%d", dReq, dFail, dLost)
		}
	}

	rep.Invariants = append(rep.Invariants, extra...)
	rep.Endpoints = h.rec.Stats()
	status := "ok"
	if !rep.OK() {
		status = "INVARIANT FAILURES"
	}
	h.cfg.Logf("scenario %-16s %s  accepted=%d shed=%d cache_hits=%d cancelled=%d elapsed=%dms",
		sc.Name, status, rep.Accepted, rep.Shed, rep.CacheHits, rep.Cancelled, rep.ElapsedMS)
	return rep, nil
}
