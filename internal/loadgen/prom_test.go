package loadgen

import (
	"strings"
	"testing"
)

func TestParseProm(t *testing.T) {
	in := `
# HELP mdtask_jobs_submitted_total jobs accepted
# TYPE mdtask_jobs_submitted_total counter
mdtask_jobs_submitted_total 12
mdtask_http_requests_total{code="200",route="/v1/jobs"} 7
mdtask_http_requests_total{code="429",route="/v1/jobs"} 3
go_goroutines 41
mdtask_latency_seconds_bucket{le="0.1"} 5
`
	pm, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	if v, ok := pm.Value("mdtask_jobs_submitted_total"); !ok || v != 12 {
		t.Fatalf("submitted = %v,%v, want 12,true", v, ok)
	}
	// Labelled series sum across label sets.
	if v, ok := pm.Value("mdtask_http_requests_total"); !ok || v != 10 {
		t.Fatalf("requests = %v,%v, want 10,true", v, ok)
	}
	// Prefix matching must not leak into longer names: the bucket series
	// belongs to mdtask_latency_seconds_bucket, not mdtask_latency_seconds.
	if _, ok := pm.Value("mdtask_latency_seconds"); ok {
		t.Fatal("mdtask_latency_seconds should not match the _bucket series")
	}
	if _, ok := pm.Value("absent_metric"); ok {
		t.Fatal("absent metric reported found")
	}
}

func TestParsePromMalformed(t *testing.T) {
	if _, err := ParseProm(strings.NewReader("mdtask_x notanumber\n")); err == nil {
		t.Fatal("malformed value parsed without error")
	}
	if _, err := ParseProm(strings.NewReader("loneword\n")); err == nil {
		t.Fatal("valueless line parsed without error")
	}
}

func TestDelta(t *testing.T) {
	before := PromMetrics{"c": 5, `l{a="x"}`: 2}
	after := PromMetrics{"c": 9, `l{a="x"}`: 2, `l{a="y"}`: 4}
	if d, ok := Delta(before, after, "c"); !ok || d != 4 {
		t.Fatalf("delta c = %v,%v, want 4,true", d, ok)
	}
	// A label set appearing only after still counts toward the delta.
	if d, ok := Delta(before, after, "l"); !ok || d != 4 {
		t.Fatalf("delta l = %v,%v, want 4,true", d, ok)
	}
	if _, ok := Delta(before, after, "nope"); ok {
		t.Fatal("absent metric reported found")
	}
}
