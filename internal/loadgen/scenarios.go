package loadgen

import (
	"hash/fnv"
	"sync"
	"time"

	"mdtask/internal/jobs"
)

// Scenario is one named load mode. Scenarios scale from Config.Jobs
// and Config.Concurrency, clamping where the mode needs fewer, and
// derive every generated spec from Config.Seed plus the scenario name,
// so two runs with the same knobs submit byte-identical specs.
type Scenario struct {
	Name        string
	Description string
	// NeedsWorkers marks scenarios that only make sense with fleet
	// workers registered (skipped when none, unless RequireWorkers).
	NeedsWorkers bool
	// ChaosOnly marks the chaos scenario: its fault-evidence
	// invariants arm only under Config.Chaos.
	ChaosOnly bool
	run       func(h *Harness) error
}

// Scenarios returns every scenario in suite order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "resubmit-storm",
			Description: "cache-hot storm: one seeded job, then identical resubmissions that must all be whole-job cache hits",
			run:         runResubmitStorm,
		},
		{
			Name:        "delta-append",
			Description: "growing-ensemble storm: each job appends a trajectory, so block-level cache reuse must kick in",
			run:         runDeltaAppend,
		},
		{
			Name:         "fleet-fanout",
			Description:  "fleet jobs across all four Hausdorff methods fanned out to live mdworkers",
			NeedsWorkers: true,
			run:          runFleetFanout,
		},
		{
			Name:        "cancel-storm",
			Description: "submit-then-cancel storm racing DELETE against the queue and the runner",
			run:         runCancelStorm,
		},
		{
			Name:        "stream-mix",
			Description: "streamed and in-memory twins of the same input; the second of each pair must be a cache hit",
			run:         runStreamMix,
		},
		{
			Name:        "overload",
			Description: "burst past the queue depth for 429s and probe the body bound for 413",
			run:         runOverload,
		},
		{
			Name:         "chaos",
			Description:  "fleet jobs against MDTASK_FAULTS-armed workers; jobs must still complete via requeue",
			NeedsWorkers: true,
			ChaosOnly:    true,
			run:          runChaos,
		},
	}
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// seedFor folds the scenario name into the run seed so no two
// scenarios ever submit the same generated input.
func (h *Harness) seedFor(scenario string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(scenario))
	return h.cfg.Seed*0x9E3779B9 + f.Sum64()
}

// psaSpec builds the harness's standard small PSA job.
func psaSpec(engine, method string, count, atoms, frames int, seed uint64) jobs.Spec {
	return jobs.Spec{
		Analysis: jobs.AnalysisPSA,
		Engine:   engine,
		Method:   method,
		Synth:    &jobs.SynthSpec{Count: count, Atoms: atoms, Frames: frames, Seed: seed},
	}
}

// runResubmitStorm seeds the cache with one job, then storms the API
// with identical submissions: every one must be answered from the
// whole-job cache (CacheHit true) and reach done.
func runResubmitStorm(h *Harness) error {
	seed := h.seedFor("resubmit-storm")
	spec := psaSpec(jobs.EngineSerial, "pruned", 4, 32, 16, seed)
	st, err := h.submitRetry(spec)
	if err != nil {
		return err
	}
	if _, err := h.waitTerminal(st.ID); err != nil {
		return err
	}
	warm := 0
	deadline := h.deadline()
	err = h.parallel(h.cfg.Concurrency, h.cfg.Jobs, func(i int) error {
		if expired(deadline) {
			return nil
		}
		st, err := h.submitRetry(spec)
		if err != nil {
			return err
		}
		if st.CacheHit {
			h.mu.Lock()
			warm++
			h.mu.Unlock()
		}
		_, err = h.waitTerminal(st.ID)
		return err
	})
	if err != nil {
		return err
	}
	h.mu.Lock()
	n := len(h.accepted) - 1 // minus the seeding job
	h.mu.Unlock()
	h.check("all-resubmissions-cache-hit", warm == n, "%d/%d storm submissions were cache hits", warm, n)
	return nil
}

// runDeltaAppend grows the ensemble by one trajectory per job. Synth
// trajectory i is a pure function of (seed, i), so every grown job
// shares all pairs of the seeded base — its block hit ratio must be
// positive even though the whole-job key differs. Tasks is pinned high
// enough to force pair-granular blocks (group size 1): the default
// group size varies with the ensemble size, and blocks whose
// trajectory groups straddle different boundaries never share a
// content address.
func runDeltaAppend(h *Harness) error {
	seed := h.seedFor("delta-append")
	const baseCount, atoms, frames = 4, 24, 12
	const pairTasks = 4096
	jobsN := h.cfg.Jobs
	if jobsN > 12 {
		jobsN = 12 // pair count grows quadratically with the ensemble
	}
	baseSpec := psaSpec(jobs.EngineSerial, "pruned", baseCount, atoms, frames, seed)
	baseSpec.Tasks = pairTasks
	base, err := h.submitRetry(baseSpec)
	if err != nil {
		return err
	}
	if _, err := h.waitTerminal(base.ID); err != nil {
		return err
	}
	reused := 0
	err = h.parallel(h.cfg.Concurrency, jobsN, func(i int) error {
		spec := psaSpec(jobs.EngineSerial, "pruned", baseCount+1+i, atoms, frames, seed)
		spec.Tasks = pairTasks
		st, err := h.submitRetry(spec)
		if err != nil {
			return err
		}
		final, err := h.waitTerminal(st.ID)
		if err != nil {
			return err
		}
		if final.BlockHitRatio > 0 {
			h.mu.Lock()
			reused++
			h.mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return err
	}
	h.mu.Lock()
	n := len(h.accepted) - 1
	h.mu.Unlock()
	h.check("delta-jobs-reuse-blocks", reused == n, "%d/%d grown jobs had block_hit_ratio > 0", reused, n)
	return nil
}

// runFleetFanout spreads fleet-engine jobs across all four Hausdorff
// kernel methods with distinct seeds (the method is normalized out of
// the cache key, so identical seeds would collapse into cache hits
// instead of exercising the workers).
func runFleetFanout(h *Harness) error {
	seed := h.seedFor("fleet-fanout")
	methods := []string{"naive", "early-break", "pruned", "indexed"}
	deadline := h.deadline()
	return h.parallel(h.cfg.Concurrency, h.cfg.Jobs, func(i int) error {
		if expired(deadline) {
			return nil
		}
		spec := psaSpec(jobs.EngineFleet, methods[i%len(methods)], 4, 24, 12, seed+uint64(i))
		spec.Tasks = 8
		st, err := h.submitRetry(spec)
		if err != nil {
			return err
		}
		if _, err := h.waitTerminal(st.ID); err != nil {
			return err
		}
		return h.fetchResult(st.ID)
	})
}

// runCancelStorm submits slow jobs and races DELETE against them: even
// cancels fire immediately (mostly catching jobs still queued), odd
// cancels after a short delay (often catching them running). Every job
// must reach a terminal state — cancelled or done are both legal, the
// race is the point — and none may fail or hang.
func runCancelStorm(h *Harness) error {
	seed := h.seedFor("cancel-storm")
	deadline := h.deadline()
	return h.parallel(h.cfg.Concurrency, h.cfg.Jobs, func(i int) error {
		if expired(deadline) {
			return nil
		}
		// Distinct seeds: a cache-hit submission completes instantly and
		// would turn the cancel race into a no-op. Slow specs (naive
		// kernel, long trajectories) keep jobs alive long enough for the
		// DELETE to land while they are still queued or running.
		spec := psaSpec(jobs.EngineSerial, "naive", 4, 64, 256, seed+uint64(i))
		st, err := h.submitRetry(spec)
		if err != nil {
			return err
		}
		if i%2 == 1 {
			time.Sleep(10 * time.Millisecond)
		}
		if err := h.cancel(st.ID); err != nil {
			return err
		}
		_, err = h.waitTerminal(st.ID, jobs.StateCancelled, jobs.StateDone)
		return err
	})
}

// runStreamMix submits in-memory/streamed twins of the same input in
// both orders. MaxResidentFrames is normalized out of the cache key —
// the streamed kernel is bit-identical to the in-memory one — so the
// second twin of each pair must be a whole-job cache hit.
func runStreamMix(h *Harness) error {
	seed := h.seedFor("stream-mix")
	pairs := h.cfg.Jobs / 2
	if pairs < 1 {
		pairs = 1
	}
	hits := 0
	err := h.parallel(h.cfg.Concurrency, pairs, func(i int) error {
		first := psaSpec(jobs.EngineSerial, "pruned", 4, 24, 16, seed+uint64(i))
		second := first
		if i%2 == 0 {
			second.MaxResidentFrames = 8 // in-memory first, streamed twin second
		} else {
			first.MaxResidentFrames = 8 // streamed first, in-memory twin second
		}
		st1, err := h.submitRetry(first)
		if err != nil {
			return err
		}
		if _, err := h.waitTerminal(st1.ID); err != nil {
			return err
		}
		st2, err := h.submitRetry(second)
		if err != nil {
			return err
		}
		if st2.CacheHit {
			h.mu.Lock()
			hits++
			h.mu.Unlock()
		}
		_, err = h.waitTerminal(st2.ID)
		return err
	})
	if err != nil {
		return err
	}
	h.check("stream-twin-cache-hit", hits == pairs, "%d/%d second twins were cache hits", hits, pairs)
	return nil
}

// runOverload bursts distinct slow jobs well past the queue depth —
// cache misses only, since whole-job hits legitimately bypass
// admission control — then probes the request-body bound with an
// oversized spec. The shared invariants audit the 429/413 bookkeeping;
// here the storm only has to produce pressure and then prove every
// accepted job still completes.
func runOverload(h *Harness) error {
	seed := h.seedFor("overload")
	if err := h.submitOversized(); err != nil {
		return err
	}
	var ids []string
	var idsMu sync.Mutex
	deadline := h.deadline()
	// Twice the configured job count, and deliberately slow specs (the
	// naive kernel over long trajectories): the burst must outlive its
	// own submission window, or the queue drains as fast as it fills
	// and the full-queue path never triggers.
	err := h.parallel(h.cfg.Concurrency, h.cfg.Jobs*2, func(i int) error {
		if expired(deadline) {
			return nil
		}
		spec := psaSpec(jobs.EngineSerial, "naive", 4, 64, 256, seed+uint64(i))
		st, code, err := h.submit(spec)
		if err != nil || code != 202 {
			return err
		}
		idsMu.Lock()
		ids = append(ids, st.ID)
		idsMu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	if h.cfg.ExpectShedding {
		h.mu.Lock()
		shed := h.shed
		h.mu.Unlock()
		h.check("shedding-observed", shed > 0,
			"queue sized below harness concurrency yet %d requests were shed", shed)
	}
	// Now drain: every accepted submission must reach done — load
	// shedding may refuse work, but it must never lose accepted work.
	return h.parallel(h.cfg.Concurrency, len(ids), func(i int) error {
		_, err := h.waitTerminal(ids[i])
		return err
	})
}

// runChaos runs fleet jobs while (per the loadgate script) one worker
// is armed with MDTASK_FAULTS on fleet.unit.execute: slowdowns, failed
// units (nacked and requeued), and a mid-run worker crash (leases
// requeued by the failure detector). Every job must still complete
// bit-correctly; under Config.Chaos the invariants also demand scraped
// evidence that the faults actually fired.
func runChaos(h *Harness) error {
	seed := h.seedFor("chaos")
	jobsN := h.cfg.Jobs
	if jobsN > 12 {
		jobsN = 12 // each job fans out ~8 units through a deliberately degraded fleet
	}
	deadline := h.deadline()
	return h.parallel(h.cfg.Concurrency, jobsN, func(i int) error {
		if expired(deadline) {
			return nil
		}
		spec := psaSpec(jobs.EngineFleet, "pruned", 4, 24, 12, seed+uint64(i))
		spec.Tasks = 8
		st, err := h.submitRetry(spec)
		if err != nil {
			return err
		}
		_, err = h.waitTerminal(st.ID)
		return err
	})
}
