package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mdtask/internal/fleet"
	"mdtask/internal/jobs"
)

// Harness is the shared client machinery every scenario runs on: a
// keep-alive HTTP client sized for the closed-loop pool, the latency
// recorder of the scenario in flight, and the counters the invariant
// checks audit afterwards.
type Harness struct {
	cfg  Config
	base string
	hc   *http.Client
	rec  *Recorder

	mu                sync.Mutex
	accepted          []string
	shed              int
	retryAfterMissing int
	oversizedSent     int
	oversized413      int
	cacheHits         int
	cancelled         int
	lost              []string    // accepted jobs that never reached an allowed terminal state
	extra             []Invariant // scenario-specific checks
}

func newHarness(cfg Config) *Harness {
	tr := &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}
	return &Harness{
		cfg:  cfg,
		base: strings.TrimRight(cfg.Server, "/"),
		hc:   &http.Client{Transport: tr, Timeout: 60 * time.Second},
	}
}

// reset clears per-scenario state.
func (h *Harness) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rec = NewRecorder()
	h.accepted = nil
	h.shed, h.retryAfterMissing = 0, 0
	h.oversizedSent, h.oversized413 = 0, 0
	h.cacheHits, h.cancelled = 0, 0
	h.lost = nil
	h.extra = nil
}

// check appends a scenario-specific invariant verdict.
func (h *Harness) check(name string, ok bool, format string, args ...interface{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.extra = append(h.extra, Invariant{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// waitHealthy polls /healthz until the server answers.
func (h *Harness) waitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := h.hc.Get(h.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("loadgen: server %s unreachable: %w", h.base, err)
			}
			return fmt.Errorf("loadgen: server %s unhealthy", h.base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// warmup exercises the read path unrecorded so connection setup and
// first-hit allocation costs don't land in the first scenario's tail.
func (h *Harness) warmup(d time.Duration) {
	until := time.Now().Add(d)
	for time.Now().Before(until) {
		if resp, err := h.hc.Get(h.base + "/v1/metrics"); err == nil {
			resp.Body.Close()
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// parallel fans total items over n closed-loop clients; each worker
// processes its next item only after the previous one's requests
// completed. The first harness-level error wins; nil items are fine.
func (h *Harness) parallel(n, total int, fn func(i int) error) error {
	if n > total {
		n = total
	}
	var wg sync.WaitGroup
	next := make(chan int)
	errc := make(chan error, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		select {
		case err := <-errc:
			close(next)
			wg.Wait()
			return err
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// submit posts one job spec, recording latency under POST /v1/jobs and
// classifying the outcome into the harness counters. The returned
// Status is zero-valued unless the submission was accepted.
func (h *Harness) submit(spec jobs.Spec) (jobs.Status, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return jobs.Status{}, 0, err
	}
	start := time.Now()
	resp, err := h.hc.Post(h.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		h.rec.Error("POST /v1/jobs")
		return jobs.Status{}, 0, fmt.Errorf("loadgen: submit: %w", err)
	}
	h.rec.Observe("POST /v1/jobs", time.Since(start))
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var st jobs.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return jobs.Status{}, resp.StatusCode, fmt.Errorf("loadgen: decoding submit response: %w", err)
		}
		h.mu.Lock()
		h.accepted = append(h.accepted, st.ID)
		if st.CacheHit {
			h.cacheHits++
		}
		h.mu.Unlock()
		return st, resp.StatusCode, nil
	case http.StatusTooManyRequests:
		h.mu.Lock()
		h.shed++
		if resp.Header.Get("Retry-After") == "" {
			h.retryAfterMissing++
		}
		h.mu.Unlock()
		return jobs.Status{}, resp.StatusCode, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return jobs.Status{}, resp.StatusCode, fmt.Errorf("loadgen: submit answered %s: %s", resp.Status, msg)
	}
}

// submitRetry submits like a well-behaved production client: a 429 is
// backed off and retried until the queue admits the job. Functional
// scenarios use this so a storm on a small queue still completes its
// configured work; only the overload scenario treats a 429 as final.
// Every 429 still lands in the shed counter, so the rejected-counter
// accounting stays exact.
func (h *Harness) submitRetry(spec jobs.Spec) (jobs.Status, error) {
	deadline := time.Now().Add(90 * time.Second)
	for {
		st, code, err := h.submit(spec)
		if err != nil {
			return st, err
		}
		if code == http.StatusAccepted {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("loadgen: queue still full after 90s of retries")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// submitOversized sends a syntactically valid spec padded past the
// server's body bound and expects 413 — the harness's own probe of the
// MaxBytesReader path.
func (h *Harness) submitOversized() error {
	pad := strings.Repeat("x", int(h.cfg.OversizedBytes))
	body := `{"analysis":"psa","path":"` + pad + `"}`
	h.mu.Lock()
	h.oversizedSent++
	h.mu.Unlock()
	start := time.Now()
	resp, err := h.hc.Post(h.base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		// MaxBytesReader may reset the connection mid-upload instead of
		// draining it; that still proves the bound. Count it as tripped.
		h.rec.Error("POST /v1/jobs (oversized)")
		h.mu.Lock()
		h.oversized413++
		h.mu.Unlock()
		return nil
	}
	h.rec.Observe("POST /v1/jobs (oversized)", time.Since(start))
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		h.mu.Lock()
		h.oversized413++
		h.mu.Unlock()
	}
	return nil
}

// status fetches one job's status, recording latency.
func (h *Harness) status(id string) (jobs.Status, error) {
	start := time.Now()
	resp, err := h.hc.Get(h.base + "/v1/jobs/" + id)
	if err != nil {
		h.rec.Error("GET /v1/jobs/{id}")
		return jobs.Status{}, err
	}
	h.rec.Observe("GET /v1/jobs/{id}", time.Since(start))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobs.Status{}, fmt.Errorf("loadgen: status of %s: %s", id, resp.Status)
	}
	var st jobs.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// cancel issues DELETE /v1/jobs/{id}; 200 and 409 (already terminal)
// are both fine — the storm races completion by design.
func (h *Harness) cancel(id string) error {
	req, err := http.NewRequest(http.MethodDelete, h.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	start := time.Now()
	resp, err := h.hc.Do(req)
	if err != nil {
		h.rec.Error("DELETE /v1/jobs/{id}")
		return err
	}
	h.rec.Observe("DELETE /v1/jobs/{id}", time.Since(start))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("loadgen: cancel of %s: %s", id, resp.Status)
	}
	return nil
}

// waitTerminal polls one job until it reaches a terminal state,
// returning the final status. States outside allowed are registered as
// lost work for the invariant check (nil allowed: done only).
func (h *Harness) waitTerminal(id string, allowed ...jobs.State) (jobs.Status, error) {
	if len(allowed) == 0 {
		allowed = []jobs.State{jobs.StateDone}
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := h.status(id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			ok := false
			for _, a := range allowed {
				if st.State == a {
					ok = true
					break
				}
			}
			if !ok {
				h.mu.Lock()
				h.lost = append(h.lost, fmt.Sprintf("%s:%s(%s)", id, st.State, st.Error))
				h.mu.Unlock()
			}
			if st.State == jobs.StateCancelled {
				h.mu.Lock()
				h.cancelled++
				h.mu.Unlock()
			}
			return st, nil
		}
		if time.Now().After(deadline) {
			h.mu.Lock()
			h.lost = append(h.lost, id+":stuck-"+string(st.State))
			h.mu.Unlock()
			return st, fmt.Errorf("loadgen: job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchResult downloads a done job's result body, recording latency;
// the body is decoded only far enough to prove it parses.
func (h *Harness) fetchResult(id string) error {
	start := time.Now()
	resp, err := h.hc.Get(h.base + "/v1/jobs/" + id + "/result")
	if err != nil {
		h.rec.Error("GET /v1/jobs/{id}/result")
		return err
	}
	h.rec.Observe("GET /v1/jobs/{id}/result", time.Since(start))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: result of %s: %s", id, resp.Status)
	}
	var res struct{}
	return json.NewDecoder(resp.Body).Decode(&res)
}

// snapshot scrapes the server's three observability surfaces at once.
type snapshot struct {
	prom     PromMetrics
	svc      jobs.ServiceMetrics
	fleet    *fleet.StatsView
	promErr  error
	fleetErr error
}

func (h *Harness) snapshot() (snapshot, error) {
	var s snapshot
	resp, err := h.hc.Get(h.base + "/v1/metrics")
	if err != nil {
		return s, fmt.Errorf("loadgen: scraping /v1/metrics: %w", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&s.svc)
	resp.Body.Close()
	if err != nil {
		return s, fmt.Errorf("loadgen: decoding /v1/metrics: %w", err)
	}
	if resp, err = h.hc.Get(h.base + "/metrics"); err == nil {
		s.prom, s.promErr = ParseProm(resp.Body)
		resp.Body.Close()
	} else {
		s.promErr = err
	}
	if resp, err = h.hc.Get(h.base + "/v1/fleet"); err == nil {
		if resp.StatusCode == http.StatusOK {
			var fs fleet.StatsView
			if err := json.NewDecoder(resp.Body).Decode(&fs); err == nil {
				s.fleet = &fs
			} else {
				s.fleetErr = err
			}
		}
		resp.Body.Close()
	} else {
		s.fleetErr = err
	}
	return s, nil
}

// drain waits for the scheduler to go idle: no queued or running jobs.
func (h *Harness) drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s, err := h.snapshot()
		if err != nil {
			return err
		}
		if s.svc.Jobs[jobs.StateQueued] == 0 && s.svc.Jobs[jobs.StateRunning] == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: scheduler not drained after %s (queued=%d running=%d)",
				timeout, s.svc.Jobs[jobs.StateQueued], s.svc.Jobs[jobs.StateRunning])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// workers returns how many fleet workers are currently registered.
func (h *Harness) workers() int {
	s, err := h.snapshot()
	if err != nil || s.fleet == nil {
		return 0
	}
	return s.fleet.Workers
}

// goroutines samples the server's go_goroutines gauge.
func (h *Harness) goroutines() (float64, error) {
	resp, err := h.hc.Get(h.base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	pm, err := ParseProm(resp.Body)
	if err != nil {
		return 0, err
	}
	v, ok := pm.Value("go_goroutines")
	if !ok {
		return 0, fmt.Errorf("loadgen: go_goroutines not exposed")
	}
	return v, nil
}

// deadline returns the storm cutoff implied by cfg.Duration (zero
// time: no cap) for scenarios that honor -duration.
func (h *Harness) deadline() time.Time {
	if h.cfg.Duration <= 0 {
		return time.Time{}
	}
	return time.Now().Add(h.cfg.Duration)
}

// expired reports whether the storm cutoff passed.
func expired(deadline time.Time) bool {
	return !deadline.IsZero() && time.Now().After(deadline)
}
