package loadgen

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	var s []time.Duration
	for i := 1; i <= 100; i++ {
		s = append(s, time.Duration(i)*time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(s, c.p); got != c.want {
			t.Errorf("p%g = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if got := percentile([]time.Duration{7 * time.Millisecond}, 99); got != 7*time.Millisecond {
		t.Errorf("single-sample p99 = %v, want 7ms", got)
	}
}

func TestRecorderStats(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 10; i++ {
		r.Observe("POST /v1/jobs", time.Duration(i)*time.Millisecond)
	}
	r.Error("POST /v1/jobs")
	r.Error("GET /v1/jobs/{id}")
	st := r.Stats()
	if len(st) != 2 {
		t.Fatalf("got %d endpoints, want 2", len(st))
	}
	// Sorted by endpoint name: GET first.
	if st[0].Endpoint != "GET /v1/jobs/{id}" || st[0].Count != 0 || st[0].Errors != 1 {
		t.Fatalf("error-only endpoint = %+v", st[0])
	}
	post := st[1]
	if post.Count != 10 || post.Errors != 1 {
		t.Fatalf("post stats = %+v", post)
	}
	if post.P50Ms != 5 || post.MaxMs != 10 {
		t.Fatalf("p50=%v max=%v, want 5 and 10", post.P50Ms, post.MaxMs)
	}
	if post.Throughput <= 0 {
		t.Fatalf("throughput = %v, want > 0", post.Throughput)
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	rep := &Report{
		Benchmark: "mdserver-load",
		Scenarios: []ScenarioReport{
			{
				Scenario: "resubmit-storm",
				Endpoints: []EndpointStats{
					{Endpoint: "POST /v1/jobs", Count: 24, Throughput: 120.5, P50Ms: 1.2, P95Ms: 3.4, P99Ms: 5.6, MaxMs: 9.9},
				},
				Invariants: []Invariant{
					{Name: "zero-lost-jobs", OK: true, Detail: "0 accepted jobs lost"},
					{Name: "submitted-counter-exact", OK: false, Detail: "server counted 23, harness had 24"},
				},
			},
			{Scenario: "fleet-fanout", Skipped: true, SkipReason: "no fleet workers registered"},
		},
	}
	var table bytes.Buffer
	WriteTable(&table, rep)
	out := table.String()
	for _, want := range []string{"resubmit-storm", "POST /v1/jobs", "skipped: no fleet workers",
		"[ok  ] resubmit-storm/zero-lost-jobs", "[FAIL] resubmit-storm/submitted-counter-exact"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	var csvOut bytes.Buffer
	if err := WriteCSV(&csvOut, rep); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 2 { // header + one data row; skipped scenario has no endpoints
		t.Fatalf("csv has %d lines, want 2:\n%s", len(lines), csvOut.String())
	}
	if !strings.HasPrefix(lines[1], "resubmit-storm,POST /v1/jobs,24,0,120.500") {
		t.Fatalf("csv row = %q", lines[1])
	}
}
