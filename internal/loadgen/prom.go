package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromMetrics is a parsed Prometheus text exposition: every sample
// keyed by its full series name (name plus label set, verbatim), with
// helpers that aggregate across label sets.
type PromMetrics map[string]float64

// ParseProm reads the text exposition format the obs registry (and
// every Prometheus endpoint) emits: `name{labels} value` samples, with
// `#` comment lines. Histogram series parse like any other sample
// (name_bucket/name_sum/name_count). Malformed value fields are an
// error — a gate scraping garbage must say so, not read zeros.
func ParseProm(r io.Reader) (PromMetrics, error) {
	out := make(PromMetrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the series name
		// (which may itself contain spaces inside label values) is
		// everything before it.
		cut := strings.LastIndexByte(line, ' ')
		if cut < 1 {
			return nil, fmt.Errorf("loadgen: malformed metric line %q", line)
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: metric %q: %w", line[:cut], err)
		}
		out[strings.TrimSpace(line[:cut])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Value returns the sum of every series of the named metric across
// label sets (for an unlabelled metric, just its value), and whether
// any series of that name exists.
func (m PromMetrics) Value(name string) (float64, bool) {
	total, found := 0.0, false
	for series, v := range m {
		if series == name || strings.HasPrefix(series, name+"{") {
			total += v
			found = true
		}
	}
	return total, found
}

// Delta returns after[name] - before[name] summed across label sets;
// a metric absent on both sides reports found=false.
func Delta(before, after PromMetrics, name string) (float64, bool) {
	b, okB := before.Value(name)
	a, okA := after.Value(name)
	return a - b, okA || okB
}
