// Package loadgen is the production load harness behind cmd/mdload: a
// Savina-style suite of named scenarios driven closed-loop against a
// live mdserver, with per-endpoint latency/throughput recording and a
// set of deterministic invariants that gate CI.
//
// Each scenario exercises one production failure or contention mode —
// a cache-hot resubmit storm, a delta-append storm over growing
// ensembles, fleet fan-out across all four Hausdorff kernel methods, a
// cancellation storm, a streamed-versus-in-memory mix, queue overload
// (429) plus an oversized-body probe (413), and a chaos run against
// MDTASK_FAULTS-armed workers. Scenarios share one Harness: a bounded
// pool of closed-loop clients (each waits for its response before
// issuing the next request), a latency Recorder, and before/after
// metric snapshots scraped from /v1/metrics, /v1/fleet, and the
// Prometheus /metrics exposition.
//
// The gate deliberately checks only deterministic bookkeeping — jobs
// accepted equals the submitted-counter delta, shed requests equal the
// rejected-counter delta, every 429 carries Retry-After, every
// accepted job reaches a terminal state, wal_records_skipped stays
// zero, goroutine counts return to baseline — never wall-clock
// latency. Latency percentiles are recorded and reported (table, CSV,
// BENCH_load.json) so regressions are visible, but a slow CI runner
// cannot fail the build.
package loadgen

import (
	"fmt"
	"time"
)

// Config sizes one harness run. The zero value of any knob falls back
// to the default noted on it.
type Config struct {
	// Server is the base URL of the live mdserver, e.g. "http://127.0.0.1:8077".
	Server string
	// Jobs scales every scenario's submission count (default 24;
	// scenarios derive their own working sizes from it, clamping where
	// a mode needs fewer).
	Jobs int
	// Concurrency is the closed-loop client count (default 8).
	Concurrency int
	// Warmup exercises the server unrecorded before measurement
	// (default 0: no warmup).
	Warmup time.Duration
	// Duration caps each scenario's storm phase; 0 means run to
	// completion of the configured job count.
	Duration time.Duration
	// Seed makes every generated job spec deterministic; scenario
	// names are folded in so the same seed never collides across
	// scenarios within one run.
	Seed uint64
	// Chaos arms the chaos expectations: the chaos scenario then
	// REQUIRES evidence of injected faults (requeues, and unit
	// failures or lost workers) scraped from the coordinator. Leave
	// false when no worker runs with MDTASK_FAULTS.
	Chaos bool
	// OversizedBytes sizes the 413 probe body (default 2 MiB — above
	// mdserver's default -max-spec-bytes of 1 MiB).
	OversizedBytes int64
	// RequireWorkers makes scenarios that need fleet workers fail
	// instead of skipping when none are registered.
	RequireWorkers bool
	// ExpectShedding arms the overload scenario's "shedding-observed"
	// check: set it when the server's queue depth is sized below the
	// harness concurrency (as the loadgate script does), so a run that
	// never provokes a 429 fails instead of silently proving nothing.
	ExpectShedding bool
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Jobs < 1 {
		c.Jobs = 24
	}
	if c.Concurrency < 1 {
		c.Concurrency = 8
	}
	if c.OversizedBytes < 1 {
		c.OversizedBytes = 2 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// Invariant is one gate check's outcome.
type Invariant struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ScenarioReport is one scenario's outcome: harness-side counters, the
// invariant verdicts, and the per-endpoint latency profile.
type ScenarioReport struct {
	Scenario    string          `json:"scenario"`
	Description string          `json:"description,omitempty"`
	Skipped     bool            `json:"skipped,omitempty"`
	SkipReason  string          `json:"skip_reason,omitempty"`
	ElapsedMS   int64           `json:"elapsed_ms"`
	Accepted    int             `json:"jobs_accepted"`
	Shed        int             `json:"jobs_shed_429"`
	Oversized   int             `json:"oversized_413"`
	CacheHits   int             `json:"cache_hits"`
	Cancelled   int             `json:"jobs_cancelled"`
	Invariants  []Invariant     `json:"invariants"`
	Endpoints   []EndpointStats `json:"endpoints"`
}

// OK reports whether every invariant of the scenario held.
func (r ScenarioReport) OK() bool {
	for _, inv := range r.Invariants {
		if !inv.OK {
			return false
		}
	}
	return true
}

// Report is the whole run: what cmd/mdload serializes to
// BENCH_load.json next to BENCH_psa.json.
type Report struct {
	Benchmark string           `json:"benchmark"`
	Server    string           `json:"server"`
	Jobs      int              `json:"jobs"`
	Conc      int              `json:"concurrency"`
	Seed      uint64           `json:"seed"`
	Chaos     bool             `json:"chaos"`
	Scenarios []ScenarioReport `json:"scenarios"`
	OK        bool             `json:"invariants_ok"`
}

// Run executes the named scenarios (nil or empty: every scenario) in
// order against one live server and returns the aggregate report. A
// scenario that needs fleet workers is skipped — not failed — when
// none are registered, unless cfg.RequireWorkers is set. The error is
// non-nil only for harness-level failures (unreachable server, unknown
// scenario); invariant violations are reported in the Report so the
// caller decides whether they gate.
func Run(cfg Config, names []string) (*Report, error) {
	cfg = cfg.withDefaults()
	list, err := resolve(names)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Benchmark: "mdserver-load",
		Server:    cfg.Server,
		Jobs:      cfg.Jobs,
		Conc:      cfg.Concurrency,
		Seed:      cfg.Seed,
		Chaos:     cfg.Chaos,
		OK:        true,
	}
	h := newHarness(cfg)
	if err := h.waitHealthy(30 * time.Second); err != nil {
		return nil, err
	}
	if cfg.Warmup > 0 {
		h.warmup(cfg.Warmup)
	}
	for _, sc := range list {
		sr, err := h.runScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		rep.Scenarios = append(rep.Scenarios, *sr)
		if !sr.OK() {
			rep.OK = false
		}
	}
	return rep, nil
}

// resolve maps scenario names to definitions, defaulting to all.
func resolve(names []string) ([]Scenario, error) {
	if len(names) == 0 {
		return Scenarios(), nil
	}
	var out []Scenario
	for _, n := range names {
		if n == "all" {
			return Scenarios(), nil
		}
		sc, ok := Lookup(n)
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown scenario %q (use -list)", n)
		}
		out = append(out, sc)
	}
	return out, nil
}
