package loadgen

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mdtask/internal/blockstore"
	"mdtask/internal/faultinject"
	"mdtask/internal/fleet"
	"mdtask/internal/jobs"
	"mdtask/internal/obs"
)

// startTestServer wires the same stack cmd/mdserver serves — scheduler
// with a shared block store, fleet coordinator, Prometheus registry —
// behind an httptest listener, plus nWorkers in-process fleet workers.
func startTestServer(t *testing.T, queueDepth, nWorkers int) (*httptest.Server, func()) {
	t.Helper()
	store := blockstore.New(0)
	ob := obs.New("mdserver-test")
	obs.RegisterRuntimeMetrics(ob.Metrics)
	coord := fleet.NewCoordinator(fleet.Options{
		BlockStore:   store,
		Tracer:       ob.Tracer,
		LeaseTTL:     30 * time.Second,
		HeartbeatTTL: 30 * time.Second,
	})
	sched := jobs.NewScheduler(jobs.RegistryWithFleet(coord), jobs.Options{
		Workers:    2,
		QueueDepth: queueDepth,
		BlockStore: store,
		Obs:        ob,
	})
	fh := coord.Handler()
	mux := http.NewServeMux()
	mux.Handle("/v1/workers", fh)
	mux.Handle("/v1/workers/", fh)
	mux.Handle("/v1/fleet", fh)
	mux.Handle("/v1/fleet/", fh)
	mux.Handle("/metrics", ob.Metrics.Handler())
	mux.Handle("/", jobs.NewServerWith(sched, jobs.ServerOptions{MaxSpecBytes: 64 << 10}))
	srv := httptest.NewServer(obs.Middleware(mux, ob, nil, "mdserver-test"))

	var workers []*fleet.Worker
	for i := 0; i < nWorkers; i++ {
		w, err := fleet.StartWorker(fleet.WorkerOptions{Coordinator: srv.URL, Name: "load-test-worker"})
		if err != nil {
			srv.Close()
			t.Fatalf("starting fleet worker: %v", err)
		}
		workers = append(workers, w)
	}
	return srv, func() {
		for _, w := range workers {
			w.Close()
		}
		srv.Close()
		sched.Close()
		coord.Close()
	}
}

func requireScenario(t *testing.T, rep *Report, name string) ScenarioReport {
	t.Helper()
	for _, sc := range rep.Scenarios {
		if sc.Scenario == name {
			return sc
		}
	}
	t.Fatalf("report has no scenario %q", name)
	return ScenarioReport{}
}

// TestRunSuiteEndToEnd drives the non-chaos scenarios against an
// in-process mdserver stack with live fleet workers and requires every
// deterministic invariant to hold.
func TestRunSuiteEndToEnd(t *testing.T) {
	srv, stop := startTestServer(t, 2, 2)
	defer stop()

	cfg := Config{
		Server:         srv.URL,
		Jobs:           6,
		Concurrency:    4,
		Seed:           42,
		OversizedBytes: 128 << 10, // above the test server's 64 KiB spec bound
		RequireWorkers: true,
		ExpectShedding: true, // queue depth 2 < concurrency 4
		Logf:           t.Logf,
	}
	names := []string{"resubmit-storm", "delta-append", "fleet-fanout",
		"cancel-storm", "stream-mix", "overload"}
	rep, err := Run(cfg, names)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Scenarios) != len(names) {
		t.Fatalf("got %d scenario reports, want %d", len(rep.Scenarios), len(names))
	}
	for _, sc := range rep.Scenarios {
		if sc.Skipped {
			t.Errorf("scenario %s unexpectedly skipped: %s", sc.Scenario, sc.SkipReason)
		}
		for _, inv := range sc.Invariants {
			if !inv.OK {
				t.Errorf("scenario %s invariant %s failed: %s", sc.Scenario, inv.Name, inv.Detail)
			}
		}
		if !sc.Skipped && len(sc.Endpoints) == 0 {
			t.Errorf("scenario %s recorded no endpoint stats", sc.Scenario)
		}
	}
	if !rep.OK {
		t.Fatal("report marked not OK")
	}

	// Spot-check the modes actually exercised what they claim.
	if sc := requireScenario(t, rep, "resubmit-storm"); sc.CacheHits == 0 {
		t.Error("resubmit-storm produced no cache hits")
	}
	if sc := requireScenario(t, rep, "cancel-storm"); sc.Cancelled == 0 {
		t.Error("cancel-storm cancelled nothing")
	}
	ov := requireScenario(t, rep, "overload")
	if ov.Shed == 0 {
		t.Error("overload provoked no 429s despite queue depth 2")
	}
	if ov.Oversized != 1 {
		t.Errorf("overload oversized_413 = %d, want 1", ov.Oversized)
	}
}

// TestRunChaosScenario arms fault injection in-process (the loadgate
// script arms it via MDTASK_FAULTS on a worker process) and requires
// the chaos gate to find evidence of the faults: failure nacks and
// requeues, with every job still completing.
func TestRunChaosScenario(t *testing.T) {
	if err := faultinject.Activate("fleet.unit.execute=error@3,fleet.unit.execute=sleep:50ms@2"); err != nil {
		t.Fatalf("arming faults: %v", err)
	}
	defer faultinject.Deactivate()

	srv, stop := startTestServer(t, 8, 2)
	defer stop()

	rep, err := Run(Config{
		Server:         srv.URL,
		Jobs:           4,
		Concurrency:    2,
		Seed:           7,
		Chaos:          true,
		RequireWorkers: true,
		Logf:           t.Logf,
	}, []string{"chaos"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sc := requireScenario(t, rep, "chaos")
	if sc.Skipped {
		t.Fatalf("chaos skipped: %s", sc.SkipReason)
	}
	for _, inv := range sc.Invariants {
		if !inv.OK {
			t.Errorf("chaos invariant %s failed: %s", inv.Name, inv.Detail)
		}
	}
	if !rep.OK {
		t.Fatal("chaos report marked not OK")
	}
}

// TestRunUnknownScenario and the skip path are cheap API checks.
func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run(Config{Server: "http://127.0.0.1:1"}, []string{"no-such-mode"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestFleetScenarioSkipsWithoutWorkers(t *testing.T) {
	srv, stop := startTestServer(t, 8, 0)
	defer stop()
	rep, err := Run(Config{Server: srv.URL, Jobs: 2, Concurrency: 2, Seed: 3, Logf: t.Logf},
		[]string{"fleet-fanout"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sc := requireScenario(t, rep, "fleet-fanout")
	if !sc.Skipped {
		t.Fatal("fleet-fanout should skip with no workers registered")
	}
	if !rep.OK {
		t.Fatal("a skipped scenario must not fail the report")
	}
}
