package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mdtask/internal/engine"
	"mdtask/internal/graph"
	"mdtask/internal/hausdorff"
	"mdtask/internal/leaflet"
	"mdtask/internal/linalg"
	"mdtask/internal/obs"
	"mdtask/internal/psa"
	"mdtask/internal/traj"
)

// Coordinator owns the fleet's state: registered workers, active
// leases, and the jobs being assembled. It is the server half of the
// worker protocol; Handler exposes it over HTTP, the Submit* methods
// are the Go API the jobs layer drives it with.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	workers  map[string]*workerState
	jobs     map[string]*Job
	jobOrder []*Job
	leases   map[string]*lease
	wseq     int64
	jseq     int64
	lseq     int64
	closed   bool

	unitsCompleted int64
	requeues       int64
	unitFailures   int64
	workersSeen    int64
	workersLost    int64

	stop    chan struct{}
	sweepWG sync.WaitGroup
}

// workerState tracks one registered worker.
type workerState struct {
	id       string
	name     string
	lastSeen time.Time
	leases   map[string]*lease
}

// lease grants one unit of one job to one worker until deadline.
type lease struct {
	id       string
	job      *Job
	unit     int
	worker   string
	deadline time.Time
	// span is the coordinator-side fleet.lease span, open from grant to
	// outcome (completed, rejected, requeued, or revoked); nil when
	// tracing is off.
	span *obs.Span
}

// endLocked finishes the lease span with its outcome. Callers hold
// the coordinator's mu; ending twice no-ops, so every outcome path can
// call it unconditionally.
func (l *lease) endLocked(outcome string) {
	l.span.SetAttr("outcome", outcome)
	l.span.End()
}

// NewCoordinator starts a coordinator (and its failure-detector
// sweeper) with the given options.
func NewCoordinator(opts Options) *Coordinator {
	c := &Coordinator{
		opts:    opts.withDefaults(),
		workers: make(map[string]*workerState),
		jobs:    make(map[string]*Job),
		leases:  make(map[string]*lease),
		stop:    make(chan struct{}),
	}
	c.sweepWG.Add(1)
	go c.sweeper()
	return c
}

// Close stops the sweeper and aborts every unfinished job.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, j := range c.jobOrder {
		j.finishLocked(ErrClosed)
	}
	c.mu.Unlock()
	close(c.stop)
	c.sweepWG.Wait()
}

// Job is one fleet-scheduled analysis being assembled from unit
// results. Exactly one of the psa/leaflet field sets is populated.
type Job struct {
	c        *Coordinator
	id       string
	analysis string
	input    []byte

	// PSA
	n       int
	blocks  []psa.Block
	sym     bool
	method  hausdorff.Method
	results []psa.BlockResult
	// Streamed PSA: refs replaces the eagerly encoded input — workers
	// fetch window-sized MDT blobs on demand — and window is the frame
	// budget per window.
	refs   traj.RefEnsemble
	window int

	// Leaflet
	nAtoms  int
	tiles   []leaflet.BlockSpec
	cutoff  float64
	tree    bool
	parts   [][]graph.Component
	edges   int64
	shuffle int64

	metrics *engine.Metrics

	// keys holds the per-unit content addresses in the coordinator's
	// block store (nil when the store is absent or the input could not
	// be digested — the job then runs fully uncached).
	keys []string

	pending   []int // unit queue; requeued units go to the front
	done      []bool
	remaining int
	requeues  int64

	// Tracing: span is the fleet.job span (open from admit to finish);
	// traceParent is the submitter's context it nests under; lastLease
	// remembers each unit's most recent lease id so a retry's lease
	// span can carry a requeue_of link to the grant it replaces.
	span        *obs.Span
	traceParent obs.SpanContext
	lastLease   []string

	finished bool
	err      error
	doneCh   chan struct{}

	matrix  *psa.Matrix
	leafRes *leaflet.Result
}

// ID returns the job's fleet-scoped identifier.
func (j *Job) ID() string { return j.id }

// Requeues returns how many of the job's units were revoked and
// rescheduled (lease expiry or worker death).
func (j *Job) Requeues() int64 {
	j.c.mu.Lock()
	defer j.c.mu.Unlock()
	return j.requeues
}

// Matrix returns the assembled PSA matrix of a completed PSA job.
func (j *Job) Matrix() *psa.Matrix {
	j.c.mu.Lock()
	defer j.c.mu.Unlock()
	return j.matrix
}

// Leaflet returns the assembled result of a completed Leaflet job.
func (j *Job) Leaflet() *leaflet.Result {
	j.c.mu.Lock()
	defer j.c.mu.Unlock()
	return j.leafRes
}

// Wait blocks until the job finishes (assembled, aborted, or the
// coordinator closed) and returns its terminal error. The optional
// cancel flag is polled cooperatively; once it reports true the job is
// aborted and Wait returns ErrAborted.
func (j *Job) Wait(cancel func() bool) error {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		if cancel != nil && cancel() {
			j.c.Abort(j)
		}
		select {
		case <-j.doneCh:
			// err is written before doneCh closes (same critical
			// section), so this read is ordered by the channel close.
			return j.err
		case <-tick.C:
		}
	}
}

// finishLocked moves the job to its terminal state. Callers hold c.mu.
func (j *Job) finishLocked(err error) {
	if j.finished {
		return
	}
	j.finished = true
	j.err = err
	j.pending = nil
	if err != nil {
		j.span.SetAttr("error", err.Error())
	}
	j.span.SetAttrInt("requeues", j.requeues)
	j.span.End()
	close(j.doneCh)
}

// SubmitPSA schedules an all-pairs Hausdorff job over the ensemble
// with block edge n1 (the schedule of psa.Partition). Only the
// Symmetric, Method and MaxResidentFrames fields of opts apply —
// cancellation and metrics run coordinator-side: per-unit task times
// and kernel counters are folded into m as results arrive (nil m:
// accounting is discarded).
func (c *Coordinator) SubmitPSA(ens traj.Ensemble, n1 int, opts psa.Opts, m *engine.Metrics) (*Job, error) {
	if err := ens.Validate(); err != nil {
		return nil, err
	}
	return c.SubmitPSARefs(traj.RefsOf(ens), n1, opts, m)
}

// SubmitPSARefs is SubmitPSA over trajectory handles. With
// opts.MaxResidentFrames set the job is streamed: no whole-ensemble
// payload is encoded — workers fetch window-sized MDT blobs on demand
// (GET …/input?traj=I&win=K), encoded from the refs at request time,
// so neither side ever materializes an ensemble.
func (c *Coordinator) SubmitPSARefs(refs traj.RefEnsemble, n1 int, opts psa.Opts, m *engine.Metrics) (*Job, error) {
	if err := refs.Validate(); err != nil {
		return nil, err
	}
	blocks, err := psa.Partition(len(refs), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	j := &Job{
		c:        c,
		analysis: AnalysisPSA,
		n:        len(refs),
		blocks:   blocks,
		sym:      opts.Symmetric,
		method:   opts.Method,
		results:  make([]psa.BlockResult, len(blocks)),
		refs:     refs,
		metrics:  m,
		// The submitter's span context (the jobs layer's engine.fleet
		// span) parents the coordinator-side job span.
		traceParent: opts.TraceParent,
	}
	if opts.MaxResidentFrames > 0 {
		j.window = opts.MaxResidentFrames
	} else {
		ens, err := refs.Load()
		if err != nil {
			return nil, err
		}
		j.input, err = EncodeEnsemble(ens)
		if err != nil {
			return nil, err
		}
	}
	// Content-address the units so admit can serve already-cached blocks
	// without leasing them. The keys are the very same ones the
	// in-process engines use, so blocks cross between engines freely. A
	// digest failure (unreadable source) just disables caching.
	if c.opts.BlockStore != nil {
		keys := make([]string, len(blocks))
		for i, b := range blocks {
			k, kerr := psa.BlockKey(refs, b, opts.Symmetric)
			if kerr != nil {
				keys = nil
				break
			}
			keys[i] = k
		}
		j.keys = keys
	}
	return c.admit(j, len(blocks))
}

// SubmitLeaflet schedules a Leaflet Finder job over the coordinate
// set: the 2-D tiling of leaflet.Blocks with at most maxTasks tiles,
// each computing partial connected components (tree selects BallTree
// edge discovery). Per-unit accounting folds into m as results arrive.
// An optional trailing span context parents the job's trace under the
// submitter's span (variadic so pre-tracing call sites read unchanged;
// only the first value is used).
func (c *Coordinator) SubmitLeaflet(coords []linalg.Vec3, cutoff float64, maxTasks int, tree bool, m *engine.Metrics, parent ...obs.SpanContext) (*Job, error) {
	if len(coords) == 0 {
		return nil, fmt.Errorf("fleet: empty coordinate set")
	}
	if cutoff <= 0 {
		return nil, fmt.Errorf("fleet: cutoff must be positive, got %g", cutoff)
	}
	tiles := leaflet.Blocks(len(coords), maxTasks)
	j := &Job{
		c:        c,
		analysis: AnalysisLeaflet,
		input:    EncodeCoords(coords),
		nAtoms:   len(coords),
		tiles:    tiles,
		cutoff:   cutoff,
		tree:     tree,
		parts:    make([][]graph.Component, len(tiles)),
		metrics:  m,
	}
	if len(parent) > 0 {
		j.traceParent = parent[0]
	}
	if c.opts.BlockStore != nil {
		digest := leaflet.CoordsDigest(coords)
		keys := make([]string, len(tiles))
		for i, t := range tiles {
			keys[i] = leaflet.TileKey(digest, cutoff, tree, t.RLo, t.RHi, t.CLo, t.CHi)
		}
		j.keys = keys
	}
	return c.admit(j, len(tiles))
}

// admit registers a prepared job with units work units. The block
// store is consulted before any lease is granted: units whose content
// address is already cached are recorded here and never enter the
// queue, so a job sharing input with an earlier one — whatever engine
// or worker computed it — fans out only its missing units.
func (c *Coordinator) admit(j *Job, units int) (*Job, error) {
	if j.metrics == nil {
		j.metrics = &engine.Metrics{}
	}
	j.done = make([]bool, units)
	j.remaining = units
	j.pending = make([]int, 0, units)
	store := c.opts.BlockStore
	for i := 0; i < units; i++ {
		if store != nil && j.keys != nil {
			if v, ok := store.Get(j.keys[i]); ok && j.prefill(i, v) {
				j.done[i] = true
				j.remaining--
				continue
			}
			j.metrics.AddBlockCache(0, 1, 0)
		}
		j.pending = append(j.pending, i)
	}
	j.doneCh = make(chan struct{})
	j.lastLease = make([]string, units)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.jseq++
	j.id = fmt.Sprintf("fj-%06d", c.jseq)
	j.span = c.opts.Tracer.StartChild(j.traceParent, "fleet.job")
	j.span.SetAttr("fleet_job", j.id)
	j.span.SetAttr("analysis", j.analysis)
	j.span.SetAttrInt("units", int64(units))
	j.span.SetAttrInt("units_cached", int64(units-j.remaining))
	c.jobs[j.id] = j
	c.jobOrder = append(c.jobOrder, j)
	if j.remaining == 0 {
		j.assembleLocked()
	}
	return j, nil
}

// prefill records one unit from a cached store value, reporting whether
// the value had the expected shape (a mismatch leaves the unit to be
// computed normally). It runs before the job is registered, so no lock
// is held.
func (j *Job) prefill(unit int, v any) bool {
	switch j.analysis {
	case AnalysisPSA:
		vals, ok := v.([]float64)
		if !ok || len(vals) != j.blocks[unit].TaskPairs(j.sym) {
			return false
		}
		j.results[unit] = psa.BlockResult{Block: j.blocks[unit], Values: vals, Symmetric: j.sym}
		j.metrics.AddBlockCache(1, 0, int64(len(vals))*8)
	case AnalysisLeaflet:
		tp, ok := v.(leaflet.TilePartial)
		if !ok {
			return false
		}
		j.parts[unit] = tp.Comps
		j.edges += tp.Edges
		j.shuffle += graph.ComponentBytes(tp.Comps)
		j.metrics.AddBlockCache(1, 0, tp.SizeBytes())
	default:
		return false
	}
	return true
}

// Abort cancels a job: pending units are dropped, Wait returns
// ErrAborted, and any in-flight leases become stale. Aborting a
// finished job is a no-op.
func (c *Coordinator) Abort(j *Job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !j.finished {
		c.revokeJobLeasesLocked(j)
		j.finishLocked(ErrAborted)
	}
}

// Drop removes a finished (or abandoned) job from the coordinator so
// its input payload and results can be collected. Dropping an
// unfinished job aborts it first.
func (c *Coordinator) Drop(j *Job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !j.finished {
		c.revokeJobLeasesLocked(j)
		j.finishLocked(ErrAborted)
	}
	delete(c.jobs, j.id)
	for i, o := range c.jobOrder {
		if o == j {
			c.jobOrder = append(c.jobOrder[:i], c.jobOrder[i+1:]...)
			break
		}
	}
}

// revokeJobLeasesLocked retires every active lease of one job without
// requeueing (the job is going away). Callers hold c.mu.
func (c *Coordinator) revokeJobLeasesLocked(j *Job) {
	for id, l := range c.leases {
		if l.job == j {
			delete(c.leases, id)
			if w, ok := c.workers[l.worker]; ok {
				delete(w.leases, id)
			}
			l.endLocked("revoked")
		}
	}
}

// register admits a worker and returns its identity and cadence.
func (c *Coordinator) register(req RegisterRequest) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wseq++
	c.workersSeen++
	w := &workerState{
		id:       fmt.Sprintf("w-%06d", c.wseq),
		name:     req.Name,
		lastSeen: time.Now(),
		leases:   make(map[string]*lease),
	}
	c.workers[w.id] = w
	return RegisterResponse{
		ID:              w.id,
		LeaseTTLMillis:  c.opts.LeaseTTL.Milliseconds(),
		HeartbeatMillis: c.opts.HeartbeatEvery.Milliseconds(),
		PollMillis:      c.opts.PollEvery.Milliseconds(),
	}
}

// heartbeat refreshes a worker's liveness; false means the worker is
// unknown (likely declared dead) and must re-register.
func (c *Coordinator) heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if ok {
		c.touchLocked(w, time.Now())
	}
	return ok
}

// touchLocked records worker contact: liveness refreshes, and every
// lease the worker holds renews to a fresh TTL — a unit slower than
// LeaseTTL on a live, heartbeating worker is never revoked. The lease
// deadline therefore only fires for workers that also went silent, as
// a backstop narrower than the heartbeat detector. Callers hold c.mu.
func (c *Coordinator) touchLocked(w *workerState, now time.Time) {
	w.lastSeen = now
	for _, l := range w.leases {
		l.deadline = now.Add(c.opts.LeaseTTL)
	}
}

// deregister gracefully removes a worker, requeueing its leases
// immediately.
func (c *Coordinator) deregister(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	for _, l := range w.leases {
		c.requeueLocked(l)
	}
	delete(c.workers, id)
	return true
}

// lease grants the oldest pending unit to the worker. A nil lease with
// ok=true means no work is available right now.
func (c *Coordinator) lease(workerID string) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return nil, ErrUnknownWorker
	}
	now := time.Now()
	c.touchLocked(w, now)
	for _, j := range c.jobOrder {
		if j.finished || len(j.pending) == 0 {
			continue
		}
		unit := j.pending[0]
		j.pending = j.pending[1:]
		c.lseq++
		l := &lease{
			id:       fmt.Sprintf("l-%06d", c.lseq),
			job:      j,
			unit:     unit,
			worker:   workerID,
			deadline: now.Add(c.opts.LeaseTTL),
		}
		l.span = c.opts.Tracer.StartChild(j.span.Context(), "fleet.lease")
		l.span.SetAttr("lease", l.id)
		l.span.SetAttr("worker", workerID)
		l.span.SetAttrInt("unit", int64(unit))
		if prev := j.lastLease[unit]; prev != "" {
			// This grant retries a unit whose earlier lease was revoked
			// (expiry or worker death) — link the retry to the original so
			// a SIGKILL-requeue reads as one causal chain in the trace.
			l.span.SetAttr("requeue_of", prev)
		}
		j.lastLease[unit] = l.id
		c.leases[l.id] = l
		w.leases[l.id] = l
		out := &Lease{
			Lease:          l.id,
			Job:            j.id,
			Unit:           unit,
			Analysis:       j.analysis,
			DeadlineMillis: l.deadline.UnixMilli(),
		}
		if ctx := l.span.Context(); ctx.Valid() {
			out.TraceParent = ctx.TraceParent()
		}
		switch j.analysis {
		case AnalysisPSA:
			b := j.blocks[unit]
			out.PSA = &PSAUnit{
				I0: b.I0, I1: b.I1, J0: b.J0, J1: b.J1,
				Symmetric: j.sym, Method: j.method.String(),
				Window: j.window,
			}
			if j.window > 0 {
				for _, ix := range b.TrajIndices() {
					r := j.refs[ix]
					out.PSA.Trajs = append(out.PSA.Trajs, PSATrajShape{
						Index: ix, Name: r.Name(), NAtoms: r.NAtoms(), NFrames: r.NFrames(),
					})
				}
			}
		case AnalysisLeaflet:
			t := j.tiles[unit]
			out.Leaflet = &LeafletUnit{
				RLo: t.RLo, RHi: t.RHi, CLo: t.CLo, CHi: t.CHi,
				Cutoff: j.cutoff, Tree: j.tree,
			}
		}
		return out, nil
	}
	return nil, nil
}

// inputOf serves a job's input payload. Streamed jobs have none (ok is
// false): their workers fetch windows through windowOf.
func (c *Coordinator) inputOf(jobID string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok || j.input == nil {
		return nil, false
	}
	return j.input, true
}

// windowOf encodes one window of one trajectory of a streamed PSA job
// as an MDT blob. The encode runs outside the coordinator lock — it
// may read a file or a remote source — so a slow window fetch never
// stalls the lease/heartbeat path.
func (c *Coordinator) windowOf(jobID string, trajIx, win int) ([]byte, error) {
	c.mu.Lock()
	j, ok := c.jobs[jobID]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: no such job %q", jobID)
	}
	w := j.window
	if w <= 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: job %s is not streamed", jobID)
	}
	if trajIx < 0 || trajIx >= len(j.refs) {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: job %s has no trajectory %d", jobID, trajIx)
	}
	r := j.refs[trajIx]
	c.mu.Unlock()
	if win < 0 || win >= r.NumWindows(w) {
		return nil, fmt.Errorf("fleet: trajectory %d of job %s has no window %d", trajIx, jobID, win)
	}
	return r.EncodeMDTWindow(win*w, w, 8)
}

// complete records one unit result. The lease must still be held: a
// revoked lease (expired, worker dead, job gone) returns ErrStaleLease
// and the payload is discarded — the requeued copy of the unit is (or
// was) completed by someone else.
func (c *Coordinator) complete(workerID string, res UnitResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[res.Lease]
	if !ok || l.worker != workerID || l.job.id != res.Job || l.unit != res.Unit {
		return ErrStaleLease
	}
	if res.Failed {
		// A failure nack hands the lease back immediately. This must not
		// wait for lease expiry: expiry only fires on silent workers —
		// every heartbeat from this (live) worker renews the lease — so
		// without the nack the unit would stay pinned to a worker that
		// already gave up on it.
		if w, ok := c.workers[workerID]; ok {
			c.touchLocked(w, time.Now())
		}
		if res.Error != "" {
			l.span.SetAttr("error", res.Error)
		}
		c.opts.Tracer.Import(res.Spans)
		c.unitFailures++
		c.requeueLocked(l)
		return nil
	}
	delete(c.leases, l.id)
	if w, ok := c.workers[workerID]; ok {
		delete(w.leases, l.id)
		c.touchLocked(w, time.Now())
	}
	j := l.job
	if j.finished || j.done[l.unit] {
		l.endLocked("stale")
		return ErrStaleLease
	}
	recSpan := c.opts.Tracer.StartChild(l.span.Context(), "fleet.record")
	if err := j.recordLocked(l.unit, res); err != nil {
		// A malformed payload is a worker bug, not lost work: requeue
		// the unit so a healthy worker redoes it.
		recSpan.SetAttr("error", err.Error())
		recSpan.End()
		l.endLocked("rejected")
		j.pending = append([]int{l.unit}, j.pending...)
		return err
	}
	// The worker's spans (its kernel span and children) are already
	// parented under this lease's span; importing them completes the
	// cross-process trace.
	c.opts.Tracer.Import(res.Spans)
	j.done[l.unit] = true
	j.remaining--
	c.unitsCompleted++
	// Record the validated unit into the block store. Only complete,
	// shape-checked payloads reach this point — an aborted job bails out
	// above with ErrStaleLease — so no partial result is ever observable
	// under a content address.
	if store := c.opts.BlockStore; store != nil && j.keys != nil {
		switch j.analysis {
		case AnalysisPSA:
			vals := j.results[l.unit].Values
			store.Put(j.keys[l.unit], vals, int64(len(vals))*8)
		case AnalysisLeaflet:
			tp := leaflet.TilePartial{Comps: res.Comps, Edges: res.Edges}
			store.Put(j.keys[l.unit], tp, tp.SizeBytes())
		}
	}
	j.metrics.RecordTask(time.Duration(res.ElapsedNS))
	j.metrics.AddPairs(res.Counters.Evaluated, res.Counters.Pruned, res.Counters.Abandoned)
	j.metrics.AddNodes(res.Counters.NodesVisited, res.Counters.NodesPruned)
	j.metrics.ObservePeakResident(res.PeakResidentFrames)
	j.metrics.AddStreamed(res.BytesStreamed)
	recSpan.End()
	l.endLocked("completed")
	if j.remaining == 0 {
		j.assembleLocked()
	}
	return nil
}

// recordLocked validates and stores one unit's payload. Callers hold
// c.mu.
func (j *Job) recordLocked(unit int, res UnitResult) error {
	switch j.analysis {
	case AnalysisPSA:
		vals, err := UnpackFloats(res.ValuesB64)
		if err != nil {
			return err
		}
		b := j.blocks[unit]
		if want := b.TaskPairs(j.sym); len(vals) != want {
			return fmt.Errorf("fleet: unit %d returned %d values, want %d", unit, len(vals), want)
		}
		j.results[unit] = psa.BlockResult{Block: b, Values: vals, Symmetric: j.sym}
	case AnalysisLeaflet:
		for _, comp := range res.Comps {
			for _, a := range comp {
				if a < 0 || int(a) >= j.nAtoms {
					return fmt.Errorf("fleet: unit %d component references atom %d of %d", unit, a, j.nAtoms)
				}
			}
		}
		j.parts[unit] = res.Comps
		j.edges += res.Edges
		j.shuffle += graph.ComponentBytes(res.Comps)
	}
	return nil
}

// assembleLocked builds the job's final result from its recorded
// units. Callers hold c.mu.
func (j *Job) assembleLocked() {
	switch j.analysis {
	case AnalysisPSA:
		j.matrix = psa.Assemble(j.n, j.results)
	case AnalysisLeaflet:
		j.leafRes = leaflet.FromPartials(j.nAtoms, j.parts, leaflet.Stats{
			Tasks:        len(j.tiles),
			Edges:        j.edges,
			ShuffleBytes: j.shuffle,
		})
	}
	j.metrics.RecordStage()
	j.finishLocked(nil)
}

// requeueLocked revokes one lease and puts its unit back at the front
// of the queue. Callers hold c.mu.
func (c *Coordinator) requeueLocked(l *lease) {
	delete(c.leases, l.id)
	if w, ok := c.workers[l.worker]; ok {
		delete(w.leases, l.id)
	}
	j := l.job
	if j.finished || j.done[l.unit] {
		l.endLocked("stale")
		return
	}
	l.endLocked("requeued")
	j.pending = append([]int{l.unit}, j.pending...)
	j.requeues++
	c.requeues++
}

// sweeper is the failure detector: it declares silent workers dead
// (requeueing all their leases) and revokes individually expired
// leases.
func (c *Coordinator) sweeper() {
	defer c.sweepWG.Done()
	tick := time.NewTicker(c.opts.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.sweep(time.Now())
		}
	}
}

// sweep runs one failure-detection pass at the given instant.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.opts.HeartbeatTTL {
			for _, l := range w.leases {
				c.requeueLocked(l)
			}
			delete(c.workers, id)
			c.workersLost++
		}
	}
	for _, l := range c.leases {
		if now.After(l.deadline) {
			c.requeueLocked(l)
		}
	}
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() StatsView {
	c.mu.Lock()
	defer c.mu.Unlock()
	active := 0
	for _, j := range c.jobOrder {
		if !j.finished {
			active++
		}
	}
	now := time.Now()
	var list []WorkerView
	for _, w := range c.workers {
		list = append(list, WorkerView{
			ID:           w.id,
			Name:         w.name,
			ActiveLeases: len(w.leases),
			LastSeenMS:   now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	return StatsView{
		Workers:        len(c.workers),
		ActiveLeases:   len(c.leases),
		JobsActive:     active,
		UnitsCompleted: c.unitsCompleted,
		Requeues:       c.requeues,
		UnitFailures:   c.unitFailures,
		WorkersSeen:    c.workersSeen,
		WorkersLost:    c.workersLost,
		WorkerList:     list,
	}
}
