package fleet

import (
	"math"
	"testing"

	"mdtask/internal/engine"
	"mdtask/internal/hausdorff"
	"mdtask/internal/leaflet"
	"mdtask/internal/linalg"
	"mdtask/internal/psa"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func testEnsemble(n, atoms, frames int, seed uint64) traj.Ensemble {
	ens := make(traj.Ensemble, n)
	for i := range ens {
		ens[i] = synth.Walk("t", atoms, frames, seed, uint64(i))
	}
	return ens
}

func TestPackFloatsRoundTrip(t *testing.T) {
	vals := []float64{0, -0, 1.5, -2.75, math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, math.MaxFloat64, 1e-300, math.Pi}
	got, err := UnpackFloats(PackFloats(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Errorf("value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}
	if _, err := UnpackFloats("!!!"); err == nil {
		t.Error("invalid base64 accepted")
	}
	if _, err := UnpackFloats("AAAA"); err == nil {
		t.Error("non-multiple-of-8 payload accepted")
	}
}

func TestEnsembleCodecRoundTrip(t *testing.T) {
	ens := testEnsemble(3, 5, 4, 42)
	raw, err := EncodeEnsemble(ens)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnsemble(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ens) {
		t.Fatalf("got %d trajectories, want %d", len(got), len(ens))
	}
	for i, tr := range ens {
		g := got[i]
		if g.NAtoms != tr.NAtoms || g.NFrames() != tr.NFrames() {
			t.Fatalf("trajectory %d shape mismatch", i)
		}
		for f := range tr.Frames {
			for a, p := range tr.Frames[f].Coords {
				if g.Frames[f].Coords[a] != p {
					t.Fatalf("trajectory %d frame %d atom %d: coordinates differ", i, f, a)
				}
			}
		}
	}
	if _, err := DecodeEnsemble(raw[:len(raw)-3]); err == nil {
		t.Error("truncated ensemble payload accepted")
	}
	if _, err := DecodeEnsemble([]byte{'L', 0, 0, 0, 0}); err == nil {
		t.Error("leaflet payload accepted as ensemble")
	}
}

func TestCoordsCodecRoundTrip(t *testing.T) {
	coords := []linalg.Vec3{{0, -1.5, 2}, {math.Pi, 1e-12, -3e7}}
	got, err := DecodeCoords(EncodeCoords(coords))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(coords) {
		t.Fatalf("got %d coords, want %d", len(got), len(coords))
	}
	for i := range coords {
		if got[i] != coords[i] {
			t.Errorf("coord %d: %v != %v", i, got[i], coords[i])
		}
	}
	if _, err := DecodeCoords(EncodeCoords(coords)[:10]); err == nil {
		t.Error("truncated coords payload accepted")
	}
}

// TestFleetPSAMatchesSerial checks the fleet engine assembles matrices
// bit-identical to the serial reference over the full wire protocol,
// across kernel methods, both schedules, and several ensembles.
func TestFleetPSAMatchesSerial(t *testing.T) {
	lf, err := StartLocal(3, LocalOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	for _, seed := range []uint64{7, 11, 99} {
		ens := testEnsemble(4, 6, 5, seed)
		for _, method := range hausdorff.Methods {
			for _, sym := range []bool{true, false} {
				opts := psa.Opts{Symmetric: sym, Method: method}
				want, err := psa.Serial(ens, opts)
				if err != nil {
					t.Fatal(err)
				}
				job, err := lf.C.SubmitPSA(ens, 2, opts, nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := job.Wait(nil); err != nil {
					t.Fatalf("seed=%d %v sym=%v: %v", seed, method, sym, err)
				}
				got := job.Matrix()
				lf.C.Drop(job)
				if got.N != want.N {
					t.Fatalf("N = %d, want %d", got.N, want.N)
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("seed=%d %v sym=%v: matrix differs from serial at %d", seed, method, sym, i)
					}
				}
			}
		}
	}
}

// TestFleetPSAMetrics checks the coordinator-side accounting: one task
// per block, one stage, and the kernel counter sum invariant (every
// scheduled frame pair lands in exactly one bucket).
func TestFleetPSAMetrics(t *testing.T) {
	lf, err := StartLocal(2, LocalOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	ens := testEnsemble(4, 6, 5, 3)
	var m engine.Metrics
	job, err := lf.C.SubmitPSA(ens, 2, psa.Opts{Symmetric: true, Method: hausdorff.Pruned}, &m)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(nil); err != nil {
		t.Fatal(err)
	}
	defer lf.C.Drop(job)
	snap := m.Snapshot()
	blocks, _ := psa.Partition(len(ens), 2, true)
	if snap.Tasks != int64(len(blocks)) {
		t.Errorf("tasks = %d, want %d", snap.Tasks, len(blocks))
	}
	if snap.Stages != 1 {
		t.Errorf("stages = %d, want 1", snap.Stages)
	}
	// Symmetric schedule: 6 unordered trajectory pairs, each scanning
	// 2·F·F directed frame pairs.
	wantPairs := int64(6 * 2 * 5 * 5)
	if got := snap.PairsEvaluated + snap.PairsPruned + snap.PairsAbandoned; got != wantPairs {
		t.Errorf("counter sum = %d, want %d", got, wantPairs)
	}
}

// TestFleetLeafletMatchesSerial checks the fleet engine partitions
// atoms identically to the serial reference with both edge kernels.
func TestFleetLeafletMatchesSerial(t *testing.T) {
	lf, err := StartLocal(3, LocalOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	coords := synth.Bilayer(800, 21).Coords
	cutoff := synth.BilayerCutoff
	want := leaflet.Serial(coords, cutoff)
	if len(want.Components) != 2 {
		t.Fatalf("reference found %d components, want 2", len(want.Components))
	}
	for _, tree := range []bool{false, true} {
		job, err := lf.C.SubmitLeaflet(coords, cutoff, 16, tree, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(nil); err != nil {
			t.Fatalf("tree=%v: %v", tree, err)
		}
		got := job.Leaflet()
		lf.C.Drop(job)
		if !leaflet.Equal(got, want) {
			t.Fatalf("tree=%v: assignment differs from serial", tree)
		}
		if got.Stats.Tasks != len(leaflet.Blocks(len(coords), 16)) {
			t.Errorf("tree=%v: tasks = %d", tree, got.Stats.Tasks)
		}
	}
}

// TestFleetSubmitValidation checks bad submissions fail fast.
func TestFleetSubmitValidation(t *testing.T) {
	c := NewCoordinator(LocalOptions())
	defer c.Close()
	if _, err := c.SubmitPSA(testEnsemble(4, 4, 3, 1), 3, psa.Opts{}, nil); err == nil {
		t.Error("non-divisor group size accepted")
	}
	if _, err := c.SubmitLeaflet(nil, 1, 4, false, nil); err == nil {
		t.Error("empty coordinate set accepted")
	}
	if _, err := c.SubmitLeaflet([]linalg.Vec3{{0, 0, 0}}, -1, 4, false, nil); err == nil {
		t.Error("negative cutoff accepted")
	}
	c.Close()
	if _, err := c.SubmitPSA(testEnsemble(2, 4, 3, 1), 1, psa.Opts{}, nil); err != ErrClosed {
		t.Errorf("submit after close: got %v, want ErrClosed", err)
	}
}
