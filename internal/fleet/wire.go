package fleet

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"

	"mdtask/internal/graph"
	"mdtask/internal/linalg"
	"mdtask/internal/obs"
	"mdtask/internal/traj"
)

// The wire types of the worker protocol. Work-unit geometry and
// parameters travel as JSON; coordinate and distance payloads travel as
// exact little-endian float64 bit patterns (base64 in JSON, raw bytes
// for the input endpoint), so a fleet run is bit-identical to a serial
// one — decimal formatting never touches a float.

// Analysis names carried in leases (mirrors the jobs layer without
// importing it).
const (
	AnalysisPSA     = "psa"
	AnalysisLeaflet = "leaflet"
)

// RegisterRequest is the body of POST /v1/workers.
type RegisterRequest struct {
	// Name is a display name for logs and stats (default: anonymous).
	Name string `json:"name,omitempty"`
}

// RegisterResponse tells a new worker its identity and cadence.
type RegisterResponse struct {
	ID string `json:"id"`
	// LeaseTTLMillis is how long the worker may hold a unit.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// HeartbeatMillis is how often the worker must check in.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
	// PollMillis is how long to sleep when a lease request returns 204.
	PollMillis int64 `json:"poll_ms"`
}

// PSAUnit is one block of the PSA distance-matrix schedule.
type PSAUnit struct {
	I0 int `json:"i0"`
	I1 int `json:"i1"`
	J0 int `json:"j0"`
	J1 int `json:"j1"`
	// Symmetric marks the symmetry-aware schedule (diagonal blocks
	// compute only their strict upper triangle).
	Symmetric bool `json:"symmetric,omitempty"`
	// Method is the Hausdorff kernel: naive | early-break | pruned |
	// indexed.
	Method string `json:"method,omitempty"`
	// Window, when positive, selects the streamed kernel: the worker
	// fetches the block's trajectories window by window (at most Window
	// frames each, GET …/input?traj=I&win=K) instead of downloading the
	// whole ensemble, holding at most two windows of frames resident.
	Window int `json:"window,omitempty"`
	// Trajs carries the shapes of the trajectories the block reads —
	// what a streamed worker needs to rebuild handles without fetching
	// any frame data.
	Trajs []PSATrajShape `json:"trajs,omitempty"`
}

// PSATrajShape is the identity and shape of one streamed trajectory.
type PSATrajShape struct {
	Index   int    `json:"index"`
	Name    string `json:"name,omitempty"`
	NAtoms  int    `json:"natoms"`
	NFrames int    `json:"nframes"`
}

// LeafletUnit is one 2-D tile of the Leaflet Finder comparison space.
type LeafletUnit struct {
	RLo int `json:"rlo"`
	RHi int `json:"rhi"`
	CLo int `json:"clo"`
	CHi int `json:"chi"`
	// Cutoff is the neighbor cutoff in Å.
	Cutoff float64 `json:"cutoff"`
	// Tree selects BallTree edge discovery (Approach 4) over pairwise
	// distances.
	Tree bool `json:"tree,omitempty"`
}

// Lease grants one work unit to one worker until a deadline.
type Lease struct {
	Lease    string `json:"lease"`
	Job      string `json:"job"`
	Unit     int    `json:"unit"`
	Analysis string `json:"analysis"`
	// DeadlineMillis is the revocation time as Unix milliseconds
	// (informative; the coordinator's clock is authoritative).
	DeadlineMillis int64 `json:"deadline_ms"`
	// TraceParent is the W3C trace context of the coordinator-side
	// lease span: a tracing worker parents its kernel span under it, so
	// the unit's cross-process execution lands in the submitting job's
	// trace (empty when coordinator tracing is off).
	TraceParent string `json:"traceparent,omitempty"`

	PSA     *PSAUnit     `json:"psa,omitempty"`
	Leaflet *LeafletUnit `json:"leaflet,omitempty"`
}

// Counters mirrors hausdorff.Counters on the wire.
type Counters struct {
	Evaluated int64 `json:"evaluated"`
	Pruned    int64 `json:"pruned"`
	Abandoned int64 `json:"abandoned"`
	// NodesVisited/NodesPruned carry the indexed kernel's ball-tree
	// descent accounting (zero for the flat methods).
	NodesVisited int64 `json:"nodes_visited,omitempty"`
	NodesPruned  int64 `json:"nodes_pruned,omitempty"`
}

// UnitResult is the body of POST /v1/workers/{id}/results: one
// completed unit plus its engine accounting.
type UnitResult struct {
	Lease string `json:"lease"`
	Job   string `json:"job"`
	Unit  int    `json:"unit"`

	// Failed marks a failure nack: the worker could not execute the
	// unit (kernel error, input fetch failure, injected fault) and is
	// handing the lease back so the coordinator requeues the unit NOW.
	// Without the nack a failed unit on a live worker would hang the
	// job: heartbeats renew every held lease, so the expiry that was
	// supposed to reclaim the unit never fires. Error carries the
	// worker-side reason for logs and traces; the payload fields below
	// are all empty on a nack.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`

	// ValuesB64 carries a PSA block's distances: base64 of packed
	// little-endian float64s, in ComputeBlock's iteration order.
	ValuesB64 string `json:"values_b64,omitempty"`

	// Comps carries a Leaflet tile's partial connected components.
	Comps []graph.Component `json:"comps,omitempty"`
	// Edges is the tile's discovered edge count.
	Edges int64 `json:"edges,omitempty"`

	// Counters is the unit's Hausdorff frame-pair accounting.
	Counters Counters `json:"counters"`
	// PeakResidentFrames / BytesStreamed carry the unit's streamed-path
	// residency and volume accounting (zero for in-memory units).
	PeakResidentFrames int64 `json:"peak_resident_frames,omitempty"`
	BytesStreamed      int64 `json:"bytes_streamed,omitempty"`
	// ElapsedNS is the unit's wall time on the worker.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Spans carries the worker-side spans of the unit (the kernel span
	// and its children), finished and exported; the coordinator imports
	// them into its tracer so one job trace covers both processes.
	Spans []obs.WireSpan `json:"spans,omitempty"`
}

// StatsView is the JSON body of GET /v1/fleet.
type StatsView struct {
	Workers        int   `json:"workers"`
	ActiveLeases   int   `json:"active_leases"`
	JobsActive     int   `json:"jobs_active"`
	UnitsCompleted int64 `json:"units_completed"`
	// Requeues counts units revoked and rescheduled (lease expiry,
	// worker death, or a failure nack); > 0 after a mid-job worker kill.
	Requeues int64 `json:"requeues"`
	// UnitFailures counts failure nacks: units a live worker executed
	// and handed back with an error (each also counts as a requeue).
	UnitFailures int64 `json:"unit_failures"`
	WorkersSeen  int64 `json:"workers_seen"`
	WorkersLost  int64 `json:"workers_lost"`
	// WorkerList details the currently registered workers.
	WorkerList []WorkerView `json:"worker_list,omitempty"`
}

// WorkerView is one registered worker in the stats view.
type WorkerView struct {
	ID           string `json:"id"`
	Name         string `json:"name,omitempty"`
	ActiveLeases int    `json:"active_leases"`
	LastSeenMS   int64  `json:"last_seen_ms_ago"`
}

// PackFloats encodes float64 values as base64 little-endian bit
// patterns — exact, whatever the values.
func PackFloats(vals []float64) string {
	raw := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// UnpackFloats decodes a PackFloats payload.
func UnpackFloats(s string) ([]float64, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("fleet: float payload: %w", err)
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("fleet: float payload length %d not a multiple of 8", len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}

// Input payload format (GET /v1/fleet/jobs/{id}/input), little endian:
//
//	tag 'P': uint32 count, then per trajectory uint64 blobLen + MDT blob
//	tag 'L': uint32 nAtoms, then nAtoms × 3 float64 coordinates

const (
	inputTagPSA     = 'P'
	inputTagLeaflet = 'L'
)

// EncodeEnsemble serializes a PSA input ensemble.
func EncodeEnsemble(ens traj.Ensemble) ([]byte, error) {
	out := []byte{inputTagPSA}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ens)))
	for _, t := range ens {
		blob, err := traj.EncodeMDT(t, 8)
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint64(out, uint64(len(blob)))
		out = append(out, blob...)
	}
	return out, nil
}

// DecodeEnsemble deserializes a PSA input payload.
func DecodeEnsemble(b []byte) (traj.Ensemble, error) {
	if len(b) < 5 || b[0] != inputTagPSA {
		return nil, fmt.Errorf("fleet: not a PSA input payload")
	}
	count := int(binary.LittleEndian.Uint32(b[1:]))
	b = b[5:]
	ens := make(traj.Ensemble, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("fleet: truncated PSA input payload (trajectory %d)", i)
		}
		n := binary.LittleEndian.Uint64(b)
		b = b[8:]
		if uint64(len(b)) < n {
			return nil, fmt.Errorf("fleet: truncated PSA input payload (trajectory %d)", i)
		}
		t, err := traj.DecodeMDT(b[:n])
		if err != nil {
			return nil, fmt.Errorf("fleet: trajectory %d: %w", i, err)
		}
		ens = append(ens, t)
		b = b[n:]
	}
	return ens, nil
}

// EncodeCoords serializes a Leaflet Finder input coordinate set.
func EncodeCoords(coords []linalg.Vec3) []byte {
	out := make([]byte, 0, 5+len(coords)*24)
	out = append(out, inputTagLeaflet)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(coords)))
	for _, p := range coords {
		for k := 0; k < 3; k++ {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p[k]))
		}
	}
	return out
}

// DecodeCoords deserializes a Leaflet Finder input payload.
func DecodeCoords(b []byte) ([]linalg.Vec3, error) {
	if len(b) < 5 || b[0] != inputTagLeaflet {
		return nil, fmt.Errorf("fleet: not a Leaflet input payload")
	}
	n := int(binary.LittleEndian.Uint32(b[1:]))
	b = b[5:]
	if len(b) != n*24 {
		return nil, fmt.Errorf("fleet: Leaflet input payload has %d bytes, want %d", len(b), n*24)
	}
	coords := make([]linalg.Vec3, n)
	for i := range coords {
		for k := 0; k < 3; k++ {
			coords[i][k] = math.Float64frombits(binary.LittleEndian.Uint64(b[(i*3+k)*8:]))
		}
	}
	return coords, nil
}
