package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mdtask/internal/psa"
)

// protoClient drives the worker protocol by hand, playing the part of
// a worker whose behaviour (or death) the test controls exactly.
type protoClient struct {
	t    *testing.T
	base string
	id   string
}

func newProtoClient(t *testing.T, base string) *protoClient {
	t.Helper()
	pc := &protoClient{t: t, base: base}
	resp, err := http.Post(base+"/v1/workers", "application/json",
		bytes.NewReader([]byte(`{"name":"manual"}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %s", resp.Status)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	pc.id = rr.ID
	return pc
}

// lease pulls one unit; nil means no work.
func (pc *protoClient) lease() *Lease {
	pc.t.Helper()
	resp, err := http.Post(pc.base+"/v1/workers/"+pc.id+"/lease", "application/json", nil)
	if err != nil {
		pc.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		pc.t.Fatalf("lease: %s", resp.Status)
	}
	var l Lease
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		pc.t.Fatal(err)
	}
	return &l
}

// post ships a result and returns the HTTP status.
func (pc *protoClient) post(res UnitResult) int {
	pc.t.Helper()
	body, err := json.Marshal(res)
	if err != nil {
		pc.t.Fatal(err)
	}
	resp, err := http.Post(pc.base+"/v1/workers/"+pc.id+"/results", "application/json", bytes.NewReader(body))
	if err != nil {
		pc.t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// heartbeat keeps the manual worker alive in the failure detector.
func (pc *protoClient) heartbeat() {
	pc.t.Helper()
	resp, err := http.Post(pc.base+"/v1/workers/"+pc.id+"/heartbeat", "application/json", nil)
	if err != nil {
		pc.t.Fatal(err)
	}
	resp.Body.Close()
}

// startCoordinator serves a coordinator over httptest.
func startCoordinator(t *testing.T, opts Options) (*Coordinator, string) {
	t.Helper()
	c := NewCoordinator(opts)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts.URL
}

// TestLeaseExpiryRequeues holds one unit hostage on a heartbeating but
// never-reporting worker: the lease must expire, the unit requeue, and
// a healthy worker must complete the job with the correct matrix.
func TestLeaseExpiryRequeues(t *testing.T) {
	c, url := startCoordinator(t, Options{
		LeaseTTL:     200 * time.Millisecond,
		HeartbeatTTL: 30 * time.Second, // isolate the lease-expiry path
		SweepEvery:   20 * time.Millisecond,
		PollEvery:    5 * time.Millisecond,
	})
	ens := testEnsemble(4, 6, 5, 13)
	opts := psa.Opts{Symmetric: true}
	want, err := psa.Serial(ens, opts)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitPSA(ens, 2, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job)

	// The hostage-taker leases the first unit and sits on it.
	bad := newProtoClient(t, url)
	hostage := bad.lease()
	if hostage == nil {
		t.Fatal("no lease granted")
	}

	// A healthy worker drains the rest — and, after the TTL, the
	// requeued hostage unit.
	good, err := StartWorker(WorkerOptions{Coordinator: url, Name: "good"})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	if err := job.Wait(nil); err != nil {
		t.Fatal(err)
	}
	if job.Requeues() < 1 {
		t.Errorf("requeues = %d, want >= 1", job.Requeues())
	}
	got := job.Matrix()
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("matrix differs from serial at %d after requeue", i)
		}
	}

	// The hostage-taker finally reports: its lease is long revoked.
	if code := bad.post(UnitResult{Lease: hostage.Lease, Job: hostage.Job, Unit: hostage.Unit}); code != http.StatusConflict {
		t.Errorf("stale post: got %d, want 409", code)
	}
	if got := c.Stats(); got.Requeues < 1 {
		t.Errorf("coordinator stats requeues = %d, want >= 1", got.Requeues)
	}
}

// TestDeadWorkerRequeues kills a worker silently (no heartbeats, long
// lease): the heartbeat failure detector must declare it dead and
// requeue its leases well before the lease TTL, and the job must still
// complete correctly.
func TestDeadWorkerRequeues(t *testing.T) {
	c, url := startCoordinator(t, Options{
		LeaseTTL:     30 * time.Second, // isolate the dead-worker path
		HeartbeatTTL: 400 * time.Millisecond,
		SweepEvery:   20 * time.Millisecond,
		PollEvery:    5 * time.Millisecond,
	})
	ens := testEnsemble(4, 6, 5, 17)
	opts := psa.Opts{Symmetric: true}
	want, err := psa.Serial(ens, opts)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitPSA(ens, 2, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job)

	// The doomed worker grabs a unit and then goes silent — the manual
	// client never heartbeats, exactly like a kill -9.
	doomed := newProtoClient(t, url)
	if doomed.lease() == nil {
		t.Fatal("no lease granted")
	}

	good, err := StartWorker(WorkerOptions{Coordinator: url, Name: "survivor"})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	start := time.Now()
	if err := job.Wait(nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("job took %s; dead-worker detection should beat the 30s lease TTL", elapsed)
	}
	if job.Requeues() < 1 {
		t.Errorf("requeues = %d, want >= 1", job.Requeues())
	}
	got := job.Matrix()
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("matrix differs from serial at %d after worker death", i)
		}
	}
	if st := c.Stats(); st.WorkersLost < 1 {
		t.Errorf("workers lost = %d, want >= 1", st.WorkersLost)
	}
}

// TestAbortStalePostsAndUnknownWorker checks cooperative abort: Wait
// returns ErrAborted, in-flight posts are rejected, and requests from
// never-registered workers 404.
func TestAbortStalePostsAndUnknownWorker(t *testing.T) {
	c, url := startCoordinator(t, LocalOptions())
	job, err := c.SubmitPSA(testEnsemble(4, 6, 5, 29), 2, psa.Opts{Symmetric: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job)

	pc := newProtoClient(t, url)
	l := pc.lease()
	if l == nil {
		t.Fatal("no lease granted")
	}
	cancelled := true
	if err := job.Wait(func() bool { return cancelled }); err != ErrAborted {
		t.Fatalf("Wait on aborted job: got %v, want ErrAborted", err)
	}
	if code := pc.post(UnitResult{Lease: l.Lease, Job: l.Job, Unit: l.Unit}); code != http.StatusConflict {
		t.Errorf("post after abort: got %d, want 409", code)
	}

	// Unknown worker ids 404 everywhere.
	resp, err := http.Post(url+"/v1/workers/w-zzz/lease", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown worker lease: got %d, want 404", resp.StatusCode)
	}

	// Graceful deregister requeues immediately.
	pc2 := newProtoClient(t, url)
	job2, err := c.SubmitPSA(testEnsemble(2, 4, 3, 1), 1, psa.Opts{Symmetric: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job2)
	if pc2.lease() == nil {
		t.Fatal("no lease granted")
	}
	req, _ := http.NewRequest(http.MethodDelete, url+"/v1/workers/"+pc2.id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job2.Requeues() < 1 {
		t.Errorf("deregister did not requeue: %d", job2.Requeues())
	}
}

// TestMalformedResultRequeues checks a corrupt payload is rejected
// with 400 and the unit is requeued rather than lost.
func TestMalformedResultRequeues(t *testing.T) {
	c, url := startCoordinator(t, Options{
		LeaseTTL:     30 * time.Second,
		HeartbeatTTL: 30 * time.Second,
		SweepEvery:   20 * time.Millisecond,
		PollEvery:    5 * time.Millisecond,
	})
	ens := testEnsemble(2, 4, 3, 5)
	opts := psa.Opts{Symmetric: true}
	job, err := c.SubmitPSA(ens, 1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job)
	pc := newProtoClient(t, url)
	l := pc.lease()
	if l == nil {
		t.Fatal("no lease granted")
	}
	// Wrong value count for the block.
	if code := pc.post(UnitResult{Lease: l.Lease, Job: l.Job, Unit: l.Unit, ValuesB64: PackFloats([]float64{1})}); code != http.StatusBadRequest {
		t.Fatalf("malformed post: got %d, want 400", code)
	}
	// The unit comes back to the queue immediately.
	if l2 := pc.lease(); l2 == nil || l2.Unit != l.Unit {
		t.Fatalf("unit not requeued after malformed post: %+v", l2)
	}
	pc.heartbeat() // keep the test honest about liveness semantics
}

// TestSlowUnitOnLiveWorkerNotRevoked checks lease renewal: a worker
// that computes longer than LeaseTTL but keeps heartbeating never has
// its unit revoked, and its eventual post is accepted.
func TestSlowUnitOnLiveWorkerNotRevoked(t *testing.T) {
	c, url := startCoordinator(t, Options{
		LeaseTTL:     150 * time.Millisecond,
		HeartbeatTTL: 30 * time.Second,
		SweepEvery:   20 * time.Millisecond,
		PollEvery:    5 * time.Millisecond,
	})
	ens := testEnsemble(2, 4, 3, 31)
	opts := psa.Opts{Symmetric: true}
	job, err := c.SubmitPSA(ens, 1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job)

	pc := newProtoClient(t, url)
	l := pc.lease()
	if l == nil {
		t.Fatal("no lease granted")
	}
	// "Compute" for 3× the lease TTL, heartbeating the whole time.
	for i := 0; i < 9; i++ {
		time.Sleep(50 * time.Millisecond)
		pc.heartbeat()
	}
	b := psa.Block{I0: l.PSA.I0, I1: l.PSA.I1, J0: l.PSA.J0, J1: l.PSA.J1}
	br := psa.ComputeBlock(ens, b, psa.Opts{Symmetric: l.PSA.Symmetric})
	if code := pc.post(UnitResult{Lease: l.Lease, Job: l.Job, Unit: l.Unit, ValuesB64: PackFloats(br.Values)}); code != http.StatusOK {
		t.Fatalf("slow-but-alive worker's post rejected with %d", code)
	}
	if got := job.Requeues(); got != 0 {
		t.Errorf("requeues = %d, want 0 (live worker must keep its lease)", got)
	}
}
