package fleet

import (
	"net/http"
	"testing"
	"time"

	"mdtask/internal/faultinject"
	"mdtask/internal/psa"
)

// TestFailedUnitNackRequeues drives the nack protocol by hand: a
// worker that posts a Failed result hands its lease back, the unit is
// immediately re-leasable, and the coordinator accounts the failure.
// Both TTLs are far beyond the test runtime, so only the nack path can
// free the unit.
func TestFailedUnitNackRequeues(t *testing.T) {
	c, url := startCoordinator(t, Options{
		LeaseTTL:     30 * time.Second,
		HeartbeatTTL: 30 * time.Second,
		SweepEvery:   20 * time.Millisecond,
		PollEvery:    5 * time.Millisecond,
	})
	job, err := c.SubmitPSA(testEnsemble(2, 4, 3, 7), 1, psa.Opts{Symmetric: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job)

	pc := newProtoClient(t, url)
	l := pc.lease()
	if l == nil {
		t.Fatal("no lease granted")
	}
	if code := pc.post(UnitResult{Lease: l.Lease, Job: l.Job, Unit: l.Unit, Failed: true, Error: "boom"}); code != http.StatusOK {
		t.Fatalf("failure nack: got %d, want 200", code)
	}
	// The unit must be back at the front of the queue right now — no
	// expiry, no failure detection, just the nack.
	l2 := pc.lease()
	if l2 == nil || l2.Unit != l.Unit {
		t.Fatalf("unit not requeued after nack: %+v", l2)
	}
	if l2.Lease == l.Lease {
		t.Fatal("nacked lease was reissued verbatim; want a fresh lease")
	}
	st := c.Stats()
	if st.UnitFailures != 1 {
		t.Errorf("unit failures = %d, want 1", st.UnitFailures)
	}
	if st.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1", st.Requeues)
	}
	// A second nack against the now-revoked lease is stale, not a
	// double requeue.
	if code := pc.post(UnitResult{Lease: l.Lease, Job: l.Job, Unit: l.Unit, Failed: true}); code != http.StatusConflict {
		t.Errorf("stale nack: got %d, want 409", code)
	}
}

// TestWorkerNacksFailedUnit is the end-to-end regression for the
// lease-pinning bug: a unit that fails on a live worker used to wait
// for lease expiry — which never fires, because the worker's own
// heartbeats renew every lease it holds — so the job hung for as long
// as the worker lived. With the nack the failed unit requeues
// immediately and the retry completes the job well inside the 30s TTL
// that would otherwise pin it.
func TestWorkerNacksFailedUnit(t *testing.T) {
	if err := faultinject.Activate("fleet.unit.execute=error@1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Deactivate()

	c, url := startCoordinator(t, Options{
		LeaseTTL:       30 * time.Second,
		HeartbeatTTL:   30 * time.Second,
		SweepEvery:     20 * time.Millisecond,
		HeartbeatEvery: 100 * time.Millisecond,
		PollEvery:      5 * time.Millisecond,
	})
	ens := testEnsemble(2, 4, 3, 11)
	opts := psa.Opts{Symmetric: true}
	want, err := psa.Serial(ens, opts)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitPSA(ens, 1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job)

	w, err := StartWorker(WorkerOptions{Coordinator: url, Name: "flaky"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	start := time.Now()
	deadline := func() bool { return time.Since(start) > 15*time.Second }
	if err := job.Wait(deadline); err != nil {
		t.Fatalf("job did not complete after a failed unit: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("job took %s; the nack must beat the 30s lease TTL", elapsed)
	}
	if job.Requeues() < 1 {
		t.Errorf("requeues = %d, want >= 1", job.Requeues())
	}
	if st := c.Stats(); st.UnitFailures < 1 {
		t.Errorf("unit failures = %d, want >= 1", st.UnitFailures)
	}
	got := job.Matrix()
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("matrix differs from serial at %d after nacked retry", i)
		}
	}
}
