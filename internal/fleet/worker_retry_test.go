package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryDelayBounds checks the jittered exponential schedule: each
// attempt lands in [cap/2·?, cap], grows with the attempt number, and
// never exceeds the cap.
func TestRetryDelayBounds(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	for attempt := 0; attempt < 10; attempt++ {
		full := base << uint(attempt)
		if full > max || full <= 0 {
			full = max
		}
		for i := 0; i < 50; i++ {
			d := retryDelay(attempt, base, max)
			if d < full/2 || d > full {
				t.Fatalf("retryDelay(%d) = %v, want within [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
}

// TestPostRetriesTransientFailures checks a unit result survives a
// coordinator blip: 5xx responses are retried until one lands, and the
// kernel work is not thrown away.
func TestPostRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "coordinator mid-restart", http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	w := &Worker{
		o:    WorkerOptions{Logf: t.Logf},
		base: ts.URL,
		ctl:  ts.Client(),
		stop: make(chan struct{}),
	}
	if !w.post("", UnitResult{Job: "j", Unit: 1}) {
		t.Fatal("post gave up despite the coordinator recovering")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("post made %d attempts, want 3 (two 502s then a 200)", got)
	}
}

// TestPostDoesNotRetryRejection checks a 4xx (stale lease) is final:
// the unit was requeued to someone else, retrying would double-record.
func TestPostDoesNotRetryRejection(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "stale lease", http.StatusConflict)
	}))
	defer ts.Close()
	w := &Worker{
		o:    WorkerOptions{Logf: t.Logf},
		base: ts.URL,
		ctl:  ts.Client(),
		stop: make(chan struct{}),
	}
	if w.post("", UnitResult{Job: "j", Unit: 1}) {
		t.Fatal("post reported success on a rejected result")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("post made %d attempts on a 409, want exactly 1", got)
	}
}
