package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdtask/internal/engine"
	"mdtask/internal/faultinject"
	"mdtask/internal/hausdorff"
	"mdtask/internal/leaflet"
	"mdtask/internal/linalg"
	"mdtask/internal/obs"
	"mdtask/internal/psa"
	"mdtask/internal/traj"
)

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8077".
	Coordinator string
	// Name is a display name reported at registration.
	Name string
	// Parallel is the number of concurrent unit executors (< 1: 1).
	Parallel int
	// RegisterWait bounds how long the initial registration retries
	// while the coordinator is unreachable (default 10s) — workers may
	// legitimately boot before their coordinator.
	RegisterWait time.Duration
	// Client, when non-nil, overrides BOTH per-endpoint clients —
	// useful in tests that need a single instrumented transport.
	Client *http.Client
	// ControlTimeout bounds control-plane calls — register, heartbeat,
	// lease, result post (default 15s). These carry small payloads; a
	// call that takes longer is stuck, and a stuck heartbeat must fail
	// fast enough to retry before the coordinator's failure detector
	// declares this worker dead.
	ControlTimeout time.Duration
	// TransferTimeout bounds bulk input/window downloads (default 2m).
	TransferTimeout time.Duration
	// MaxTransferBytes bounds the size of one input or window download
	// (default 1 GiB). The transfer-size contract: a whole-job input is
	// the largest legitimate payload, a streamed window is far smaller,
	// and either way a coordinator (or an interloper on its address)
	// must not be able to balloon worker memory with one unbounded
	// response body.
	MaxTransferBytes int64
	// Logf, when non-nil, receives worker lifecycle log lines.
	Logf func(format string, args ...interface{})
	// Obs, when non-nil, instruments the worker: kernel spans parented
	// under each lease's coordinator-side span (shipped back with the
	// result), a lease round-trip latency histogram, and a block kernel
	// histogram, all registered on Obs.Metrics (cmd/mdworker serves
	// them at its own /metrics endpoint).
	Obs *obs.Obs
}

// Worker is the pull-based execution agent: it registers with a
// coordinator, heartbeats, leases work units, runs them with the
// in-process kernels, and posts results back. On a 404 from the
// coordinator (restart, or this worker declared dead during a long
// pause) it transparently re-registers under a fresh id.
type Worker struct {
	o    WorkerOptions
	base string
	ctl  *http.Client // control plane: register, heartbeat, lease, result post
	xfer *http.Client // bulk transfers: input and window downloads

	mu   sync.Mutex
	id   string
	resp RegisterResponse

	inputs inputCache

	// Observability handles, all nil-safe (unset when o.Obs is nil).
	tracer     *obs.Tracer
	leaseHist  *obs.Histogram
	kernelHist *obs.Histogram
	leaseRetry *obs.Counter
	hbRetry    *obs.Counter
	postRetry  *obs.Counter

	// UnitsDone counts results the coordinator accepted.
	UnitsDone atomic.Int64
	// Metrics accounts executed units locally (for logs; the
	// coordinator keeps the authoritative per-job accounting).
	Metrics engine.Metrics

	stop chan struct{}
	wg   sync.WaitGroup
}

// StartWorker registers with the coordinator and starts the heartbeat
// and executor loops.
func StartWorker(o WorkerOptions) (*Worker, error) {
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	if o.RegisterWait <= 0 {
		o.RegisterWait = 10 * time.Second
	}
	if o.ControlTimeout <= 0 {
		o.ControlTimeout = 15 * time.Second
	}
	if o.TransferTimeout <= 0 {
		o.TransferTimeout = 2 * time.Minute
	}
	if o.MaxTransferBytes <= 0 {
		o.MaxTransferBytes = 1 << 30
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	w := &Worker{
		o:    o,
		base: strings.TrimRight(o.Coordinator, "/"),
		ctl:  &http.Client{Timeout: o.ControlTimeout},
		xfer: &http.Client{Timeout: o.TransferTimeout},
		stop: make(chan struct{}),
	}
	if o.Client != nil {
		w.ctl, w.xfer = o.Client, o.Client
	}
	if o.Obs != nil {
		w.tracer = o.Obs.Tracer
		w.leaseHist = o.Obs.Metrics.Histogram("mdtask_fleet_lease_roundtrip_seconds",
			"Latency of lease requests to the coordinator, including grants and empty polls.", nil)
		w.kernelHist = o.Obs.Metrics.Histogram("mdtask_block_kernel_seconds",
			"Wall time of block kernels (PSA blocks and Leaflet tiles) executed by this worker.", nil)
		retries := func(op string) *obs.Counter {
			return o.Obs.Metrics.Counter("mdtask_fleet_worker_retries_total",
				"Control-plane calls retried after a transient failure, by operation.", "op", op)
		}
		w.leaseRetry, w.hbRetry, w.postRetry = retries("lease"), retries("heartbeat"), retries("post")
	}
	w.inputs.init(4)
	deadline := time.Now().Add(o.RegisterWait)
	for {
		err := w.register()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fleet: registering with %s: %w", w.base, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	w.wg.Add(1 + o.Parallel)
	go w.heartbeatLoop()
	for i := 0; i < o.Parallel; i++ {
		go w.executorLoop()
	}
	return w, nil
}

// ID returns the worker's current coordinator-assigned id.
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Close stops leasing, waits for in-flight units to finish posting,
// and deregisters so the coordinator requeues nothing.
func (w *Worker) Close() {
	select {
	case <-w.stop:
		return
	default:
	}
	close(w.stop)
	w.wg.Wait()
	req, err := http.NewRequest(http.MethodDelete, w.base+"/v1/workers/"+w.ID(), nil)
	if err == nil {
		if resp, err := w.ctl.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// retryDelay computes the nth (0-based) jittered exponential backoff
// delay: base·2ⁿ capped at max, then jittered to 50–100% of that so a
// fleet of workers cut off by one coordinator restart does not retry
// in lockstep.
func retryDelay(attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// register (re-)registers the worker. Concurrent callers coalesce: if
// another goroutine re-registered since staleID was read, the fresh
// identity is kept.
func (w *Worker) register() error {
	return w.reregister("")
}

func (w *Worker) reregister(staleID string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if staleID != "" && w.id != staleID {
		return nil // someone else already re-registered
	}
	body, err := json.Marshal(RegisterRequest{Name: w.o.Name})
	if err != nil {
		return err
	}
	resp, err := w.ctl.Post(w.base+"/v1/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("fleet: register: coordinator returned %s", resp.Status)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return err
	}
	w.id = rr.ID
	w.resp = rr
	w.o.Logf("fleet worker %s registered with %s (heartbeat %dms, poll %dms)",
		rr.ID, w.base, rr.HeartbeatMillis, rr.PollMillis)
	return nil
}

// intervals returns the advertised cadence.
func (w *Worker) intervals() (heartbeat, poll time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	heartbeat = time.Duration(w.resp.HeartbeatMillis) * time.Millisecond
	poll = time.Duration(w.resp.PollMillis) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	return heartbeat, poll
}

// heartbeatLoop keeps the worker alive in the coordinator's failure
// detector. A failed beat is retried on a jittered backoff that stays
// SHORTER than the advertised cadence — after a transient network
// blip the worker races to land a beat before the lease TTL declares
// it dead, instead of idling a full interval.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	fails := 0
	for {
		hb, _ := w.intervals()
		wait := hb
		if fails > 0 {
			wait = retryDelay(fails-1, hb/8, hb)
		}
		select {
		case <-w.stop:
			return
		case <-time.After(wait):
		}
		id := w.ID()
		resp, err := w.ctl.Post(w.base+"/v1/workers/"+id+"/heartbeat", "application/json", nil)
		if err != nil {
			fails++
			w.hbRetry.Inc()
			continue
		}
		fails = 0
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			_ = w.reregister(id)
		}
	}
}

// executorLoop pulls and runs units until stopped. Lease errors back
// off exponentially (jittered, capped at 5s) so an unreachable
// coordinator is probed gently; an empty poll keeps the flat
// advertised cadence — no work is not a failure.
func (w *Worker) executorLoop() {
	defer w.wg.Done()
	leaseFails := 0
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		_, poll := w.intervals()
		l, err := w.lease()
		if err != nil {
			w.leaseRetry.Inc()
			wait := retryDelay(leaseFails, poll, 5*time.Second)
			leaseFails++
			select {
			case <-w.stop:
				return
			case <-time.After(wait):
			}
			continue
		}
		leaseFails = 0
		if l == nil {
			select {
			case <-w.stop:
				return
			case <-time.After(poll):
			}
			continue
		}
		res, err := w.execute(l)
		if err != nil {
			// Nack the unit so the coordinator requeues it immediately. A
			// live worker's heartbeats renew every lease it holds, so
			// "leave the lease to expire" is not an option here — the
			// expiry would be pushed out on every beat and the unit would
			// stay pinned to this worker forever. If the nack itself fails
			// to land, the unit is still reclaimed when this worker dies
			// or goes silent (the lease-expiry backstop).
			w.o.Logf("fleet worker %s: unit %s/%d failed: %v", w.ID(), l.Job, l.Unit, err)
			w.Metrics.RecordFailure()
			nack := UnitResult{Lease: l.Lease, Job: l.Job, Unit: l.Unit,
				Failed: true, Error: err.Error(), Spans: res.Spans}
			w.post(l.TraceParent, nack)
			continue
		}
		if w.post(l.TraceParent, res) {
			w.UnitsDone.Add(1)
		}
	}
}

// lease pulls one unit; nil means no work available.
func (w *Worker) lease() (*Lease, error) {
	id := w.ID()
	start := time.Now()
	resp, err := w.ctl.Post(w.base+"/v1/workers/"+id+"/lease", "application/json", nil)
	w.leaseHist.Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusNotFound:
		return nil, w.reregister(id)
	case http.StatusOK:
		var l Lease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return nil, err
		}
		return &l, nil
	default:
		return nil, fmt.Errorf("fleet: lease: coordinator returned %s", resp.Status)
	}
}

// execute runs one leased unit with the shared in-process kernels.
// The unit runs inside a worker.kernel span parented under the lease's
// coordinator-side span (via the lease's traceparent); the finished
// worker-side spans are taken from the local tracer and shipped back
// inside the result, so the coordinator can complete the job's trace.
func (w *Worker) execute(l *Lease) (res UnitResult, err error) {
	res = UnitResult{Lease: l.Lease, Job: l.Job, Unit: l.Unit}
	// Chaos hook: `MDTASK_FAULTS='fleet.unit.execute=…'` makes this
	// worker fail units (error), stall on them (sleep), or die outright
	// (crash) — the load harness's chaos scenarios arm it to prove that
	// failed units requeue via the nack path and a killed worker's
	// leases requeue via the failure detector.
	if err := faultinject.Fire("fleet.unit.execute"); err != nil {
		return res, err
	}
	parent, _ := obs.ParseTraceParent(l.TraceParent)
	span := w.tracer.StartChild(parent, "worker.kernel")
	span.SetAttr("job", l.Job)
	span.SetAttr("lease", l.Lease)
	span.SetAttrInt("unit", int64(l.Unit))
	span.SetAttr("analysis", l.Analysis)
	defer func() {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
		// Taking the spans here (success or failure) keeps the worker
		// tracer's buffers from accumulating; on failure the executor
		// loop ships them inside the nack so the error is visible in the
		// job's trace.
		res.Spans = w.tracer.Take(span.Context().Trace)
	}()
	start := time.Now()
	switch l.Analysis {
	case AnalysisPSA:
		if l.PSA == nil {
			return res, fmt.Errorf("fleet: PSA lease without unit geometry")
		}
		method, err := hausdorff.ParseMethod(l.PSA.Method)
		if err != nil {
			return res, err
		}
		block := psa.Block{I0: l.PSA.I0, I1: l.PSA.I1, J0: l.PSA.J0, J1: l.PSA.J1}
		opts := psa.Opts{
			Symmetric: l.PSA.Symmetric, Method: method,
			Tracer: w.tracer, TraceParent: span.Context(), KernelHist: w.kernelHist,
		}
		var m engine.Metrics
		opts.Metrics = &m
		var br psa.BlockResult
		if l.PSA.Window > 0 {
			// Streamed unit: never download the ensemble — rebuild each
			// trajectory as a window-by-window fetch from the coordinator
			// and run the out-of-core kernel (two windows resident).
			refs, err := w.streamRefs(l, span.Context())
			if err != nil {
				return res, err
			}
			opts.MaxResidentFrames = l.PSA.Window
			br, err = psa.ComputeBlockRefs(refs, block, opts)
			if err != nil {
				return res, err
			}
		} else {
			in, err := w.inputs.ensemble(w, l.Job)
			if err != nil {
				return res, err
			}
			var cerr error
			br, cerr = psa.ComputeBlockRefs(traj.RefsOf(in), block, opts)
			if cerr != nil {
				return res, cerr
			}
		}
		snap := m.Snapshot()
		res.ValuesB64 = PackFloats(br.Values)
		res.Counters = Counters{
			Evaluated:    snap.PairsEvaluated,
			Pruned:       snap.PairsPruned,
			Abandoned:    snap.PairsAbandoned,
			NodesVisited: snap.NodesVisited,
			NodesPruned:  snap.NodesPruned,
		}
		res.PeakResidentFrames = snap.PeakResidentFrames
		res.BytesStreamed = snap.BytesStreamed
	case AnalysisLeaflet:
		if l.Leaflet == nil {
			return res, fmt.Errorf("fleet: Leaflet lease without unit geometry")
		}
		coords, err := w.inputs.coords(w, l.Job)
		if err != nil {
			return res, err
		}
		spec := leaflet.BlockSpec{RLo: l.Leaflet.RLo, RHi: l.Leaflet.RHi, CLo: l.Leaflet.CLo, CHi: l.Leaflet.CHi}
		if err := spec.Valid(len(coords)); err != nil {
			return res, err
		}
		kernelStart := time.Now()
		comps, edges := leaflet.BlockPartial(coords, spec, l.Leaflet.Cutoff, l.Leaflet.Tree)
		w.kernelHist.Observe(time.Since(kernelStart).Seconds())
		res.Comps = comps
		res.Edges = edges
	default:
		return res, fmt.Errorf("fleet: unknown analysis %q", l.Analysis)
	}
	elapsed := time.Since(start)
	res.ElapsedNS = elapsed.Nanoseconds()
	w.Metrics.RecordTask(elapsed)
	return res, nil
}

// post ships a unit result; false means the result did not land (a
// stale lease was rejected outright, or retries ran out — either way
// the lease expires and the unit is requeued). Transport errors and
// 5xx responses are retried with jittered backoff: the computed block
// is already in hand, and a blip on the result path must not throw the
// kernel work away. A non-empty traceparent is forwarded so the
// coordinator's access log and server span land in the job's trace.
func (w *Worker) post(traceparent string, res UnitResult) bool {
	body, err := json.Marshal(res)
	if err != nil {
		return false
	}
	const attempts = 4
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, w.base+"/v1/workers/"+w.ID()+"/results", bytes.NewReader(body))
		if err != nil {
			return false
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := w.ctl.Do(req)
		retryable := err != nil
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				resp.Body.Close()
				return true
			}
			retryable = resp.StatusCode >= 500
			if !retryable {
				w.o.Logf("fleet worker %s: unit %s/%d rejected: %s", w.ID(), res.Job, res.Unit, resp.Status)
			}
			resp.Body.Close()
		}
		if !retryable || attempt == attempts-1 {
			return false
		}
		w.postRetry.Inc()
		select {
		case <-w.stop:
			return false
		case <-time.After(retryDelay(attempt, 100*time.Millisecond, 2*time.Second)):
		}
	}
}

// fetchInput downloads a job's input payload.
func (w *Worker) fetchInput(jobID string) ([]byte, error) {
	resp, err := w.xfer.Get(w.base + "/v1/fleet/jobs/" + jobID + "/input")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: input of job %s: coordinator returned %s", jobID, resp.Status)
	}
	return w.readTransfer(resp.Body)
}

// readTransfer drains one download under the transfer-size contract:
// at most MaxTransferBytes land in memory, and a longer body is an
// error, not a truncation — a silently clipped payload would fail
// shape validation later with a far less useful message.
func (w *Worker) readTransfer(r io.Reader) ([]byte, error) {
	max := w.o.MaxTransferBytes
	data, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > max {
		return nil, fmt.Errorf("fleet: transfer exceeds the %d-byte limit", max)
	}
	return data, nil
}

// fetchWindow downloads one window of one trajectory of a streamed
// job, forwarding the unit's traceparent (if any) so the fetch shows
// up in the job's trace on the coordinator side.
func (w *Worker) fetchWindow(jobID string, trajIx, win int, traceparent string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/v1/fleet/jobs/%s/input?traj=%d&win=%d", w.base, jobID, trajIx, win), nil)
	if err != nil {
		return nil, err
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := w.xfer.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: window %d/%d of job %s: coordinator returned %s", trajIx, win, jobID, resp.Status)
	}
	return w.readTransfer(resp.Body)
}

// streamRefs rebuilds the trajectory handles of a streamed PSA lease:
// each handle opens as a chain of window fetches, so no more than one
// window's blob is decoded at a time and nothing is cached. Window
// fetches carry the kernel span's traceparent.
func (w *Worker) streamRefs(l *Lease, kernel obs.SpanContext) (traj.RefEnsemble, error) {
	tp := ""
	if kernel.Valid() {
		tp = kernel.TraceParent()
	}
	maxIx := 0
	for _, s := range l.PSA.Trajs {
		if s.Index > maxIx {
			maxIx = s.Index
		}
	}
	refs := make(traj.RefEnsemble, maxIx+1)
	for _, s := range l.PSA.Trajs {
		s := s
		nwin := (s.NFrames + l.PSA.Window - 1) / l.PSA.Window
		r, err := traj.WindowChainRef(s.Name, s.NAtoms, s.NFrames, nwin,
			func(win int) ([]byte, error) { return w.fetchWindow(l.Job, s.Index, win, tp) })
		if err != nil {
			return nil, err
		}
		refs[s.Index] = r
	}
	block := psa.Block{I0: l.PSA.I0, I1: l.PSA.I1, J0: l.PSA.J0, J1: l.PSA.J1}
	for _, ix := range block.TrajIndices() {
		if ix >= len(refs) || refs[ix] == nil {
			return nil, fmt.Errorf("fleet: streamed lease %s lacks the shape of trajectory %d", l.Lease, ix)
		}
	}
	return refs, nil
}

// inputCache holds decoded job inputs, fetched once per job per worker
// whatever the executor parallelism, evicting the least recently used
// beyond a small bound (workers typically serve one or two jobs at a
// time; inputs dominate worker memory).
type inputCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*inputEntry
	order   []string // LRU, most recent last
}

type inputEntry struct {
	once   sync.Once
	ens    traj.Ensemble
	coords []linalg.Vec3
	err    error
}

func (ic *inputCache) init(limit int) {
	ic.cap = limit
	ic.entries = make(map[string]*inputEntry)
}

// entry returns the cache slot for a job, fetching and decoding its
// payload on first use (concurrent executors block on the same fetch).
func (ic *inputCache) entry(w *Worker, jobID string) *inputEntry {
	ic.mu.Lock()
	e, ok := ic.entries[jobID]
	if ok {
		for i, id := range ic.order {
			if id == jobID {
				ic.order = append(ic.order[:i], ic.order[i+1:]...)
				break
			}
		}
	} else {
		e = &inputEntry{}
		ic.entries[jobID] = e
		if len(ic.order) >= ic.cap {
			evict := ic.order[0]
			ic.order = ic.order[1:]
			delete(ic.entries, evict)
		}
	}
	ic.order = append(ic.order, jobID)
	ic.mu.Unlock()
	e.once.Do(func() {
		raw, err := w.fetchInput(jobID)
		if err != nil {
			e.err = err
			return
		}
		switch {
		case len(raw) > 0 && raw[0] == inputTagPSA:
			e.ens, e.err = DecodeEnsemble(raw)
		case len(raw) > 0 && raw[0] == inputTagLeaflet:
			e.coords, e.err = DecodeCoords(raw)
		default:
			e.err = fmt.Errorf("fleet: unrecognized input payload for job %s", jobID)
		}
	})
	return e
}

// ensemble returns a job's decoded PSA input.
func (ic *inputCache) ensemble(w *Worker, jobID string) (traj.Ensemble, error) {
	e := ic.entry(w, jobID)
	if e.err != nil {
		ic.forget(jobID, e)
		return nil, e.err
	}
	if e.ens == nil {
		return nil, fmt.Errorf("fleet: job %s input is not a PSA ensemble", jobID)
	}
	return e.ens, nil
}

// coords returns a job's decoded Leaflet input.
func (ic *inputCache) coords(w *Worker, jobID string) ([]linalg.Vec3, error) {
	e := ic.entry(w, jobID)
	if e.err != nil {
		ic.forget(jobID, e)
		return nil, e.err
	}
	if e.coords == nil {
		return nil, fmt.Errorf("fleet: job %s input is not a coordinate set", jobID)
	}
	return e.coords, nil
}

// forget drops a failed fetch so the next attempt retries instead of
// replaying a cached transient error.
func (ic *inputCache) forget(jobID string, failed *inputEntry) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if ic.entries[jobID] == failed {
		delete(ic.entries, jobID)
		for i, id := range ic.order {
			if id == jobID {
				ic.order = append(ic.order[:i], ic.order[i+1:]...)
				break
			}
		}
	}
}
