package fleet

import (
	"path/filepath"
	"testing"

	"mdtask/internal/engine"
	"mdtask/internal/hausdorff"
	"mdtask/internal/psa"
	"mdtask/internal/traj"
)

// A streamed fleet PSA job must be bit-identical to the serial
// reference for every method and both schedules, with workers fetching
// window blobs (never the whole-ensemble payload), and the
// coordinator's metrics carrying the streamed residency/volume
// accounting.
func TestFleetPSAStreamedMatchesSerial(t *testing.T) {
	lf, err := StartLocal(2, LocalOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	const n, atoms, frames, window = 4, 6, 5, 2
	ens := testEnsemble(n, atoms, frames, 17)

	// File-backed refs: the coordinator serves windows straight from
	// disk, so neither side materializes the ensemble.
	dir := t.TempDir()
	refs := make(traj.RefEnsemble, n)
	for i, tr := range ens {
		path := filepath.Join(dir, trName(i)+".mdt")
		if err := traj.WriteMDTFile(path, tr, 8); err != nil {
			t.Fatal(err)
		}
		refs[i], err = traj.FileRef(path)
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, method := range hausdorff.Methods {
		for _, sym := range []bool{true, false} {
			want, err := psa.Serial(ens, psa.Opts{Symmetric: sym, Method: method})
			if err != nil {
				t.Fatal(err)
			}
			var m engine.Metrics
			opts := psa.Opts{Symmetric: sym, Method: method, MaxResidentFrames: window}
			job, err := lf.C.SubmitPSARefs(refs, 2, opts, &m)
			if err != nil {
				t.Fatal(err)
			}
			if err := job.Wait(nil); err != nil {
				t.Fatalf("%v sym=%v: %v", method, sym, err)
			}
			got := job.Matrix()
			lf.C.Drop(job)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%v sym=%v: streamed fleet matrix differs from serial at %d", method, sym, i)
				}
			}
			snap := m.Snapshot()
			if snap.PeakResidentFrames == 0 || snap.PeakResidentFrames > 2*window {
				t.Fatalf("%v sym=%v: peak resident %d frames, want 1..%d", method, sym, snap.PeakResidentFrames, 2*window)
			}
			if snap.BytesStreamed <= 0 {
				t.Fatalf("%v sym=%v: no streamed bytes recorded", method, sym)
			}
			pairs := int64(n*n) * 2 * frames * frames
			if sym {
				pairs = int64(n*(n-1)/2) * 2 * frames * frames
			}
			if total := snap.PairsEvaluated + snap.PairsPruned + snap.PairsAbandoned; total != pairs {
				t.Fatalf("%v sym=%v: counters sum %d, want %d", method, sym, total, pairs)
			}
		}
	}
}

func trName(i int) string { return string([]byte{'t', byte('0' + i)}) }

// A streamed job serves windows, not a whole-input payload; window
// requests outside the job's geometry are rejected.
func TestCoordinatorWindowEndpointBounds(t *testing.T) {
	c := NewCoordinator(LocalOptions())
	defer c.Close()
	ens := testEnsemble(2, 4, 5, 5)
	job, err := c.SubmitPSARefs(traj.RefsOf(ens), 1, psa.Opts{Symmetric: true, MaxResidentFrames: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job)
	if _, ok := c.inputOf(job.ID()); ok {
		t.Fatal("streamed job serves a whole-input payload")
	}
	blob, err := c.windowOf(job.ID(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	part, err := traj.DecodeMDT(blob)
	if err != nil {
		t.Fatal(err)
	}
	if part.NFrames() != 2 || part.NAtoms != 4 {
		t.Fatalf("window 0 is %d×%d, want 2 frames × 4 atoms", part.NFrames(), part.NAtoms)
	}
	// Final window is the remainder.
	last, err := c.windowOf(job.ID(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := traj.DecodeMDT(last)
	if err != nil {
		t.Fatal(err)
	}
	if lt.NFrames() != 1 {
		t.Fatalf("last window has %d frames, want 1", lt.NFrames())
	}
	for _, bad := range [][2]int{{0, 3}, {0, -1}, {2, 0}, {-1, 0}} {
		if _, err := c.windowOf(job.ID(), bad[0], bad[1]); err == nil {
			t.Fatalf("window request traj=%d win=%d accepted", bad[0], bad[1])
		}
	}
	if _, err := c.windowOf("fj-none", 0, 0); err == nil {
		t.Fatal("window request for unknown job accepted")
	}
	// Non-streamed jobs refuse window requests.
	job2, err := c.SubmitPSA(ens, 1, psa.Opts{Symmetric: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Drop(job2)
	if _, err := c.windowOf(job2.ID(), 0, 0); err == nil {
		t.Fatal("window request for in-memory job accepted")
	}
}
