package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler exposes the coordinator over HTTP: the worker protocol
// (register, heartbeat, lease, results, deregister), the job input
// endpoint, and the stats view. It is mountable into a larger mux —
// cmd/mdserver serves it alongside the jobs API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if r.ContentLength != 0 {
			r.Body = http.MaxBytesReader(w, r.Body, c.opts.MaxControlBytes)
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeError(w, decodeStatus(err), fmt.Errorf("decoding register request: %w", err))
				return
			}
		}
		writeJSON(w, http.StatusCreated, c.register(req))
	})
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if !c.heartbeat(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, ErrUnknownWorker)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/workers/{id}/lease", func(w http.ResponseWriter, r *http.Request) {
		l, err := c.lease(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		if l == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, l)
	})
	mux.HandleFunc("POST /v1/workers/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		// Result bodies are bounded too — generously, since they carry
		// base64 block values — so one misbehaving worker cannot balloon
		// coordinator memory. The intentionally large input transfers run
		// over GET …/input and are governed by the worker's own limit.
		r.Body = http.MaxBytesReader(w, r.Body, c.opts.MaxResultBytes)
		var res UnitResult
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
			writeError(w, decodeStatus(err), fmt.Errorf("decoding unit result: %w", err))
			return
		}
		switch err := c.complete(r.PathValue("id"), res); {
		case errors.Is(err, ErrStaleLease):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}
	})
	mux.HandleFunc("DELETE /v1/workers/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !c.deregister(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, ErrUnknownWorker)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Stats())
	})
	mux.HandleFunc("GET /v1/fleet/jobs/{id}/input", func(w http.ResponseWriter, r *http.Request) {
		// ?traj=I&win=K serves one window of a streamed job as an MDT
		// blob; without the parameters, the whole input payload of an
		// in-memory job.
		if tq := r.URL.Query().Get("traj"); tq != "" {
			trajIx, err1 := strconv.Atoi(tq)
			win, err2 := strconv.Atoi(r.URL.Query().Get("win"))
			if err1 != nil || err2 != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("traj and win must be integers"))
				return
			}
			blob, err := c.windowOf(r.PathValue("id"), trajIx, win)
			if err != nil {
				writeError(w, http.StatusNotFound, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(blob)
			return
		}
		payload, ok := c.inputOf(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such fleet job %q", r.PathValue("id")))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(payload)
	})
	return mux
}

// decodeStatus maps a request-body decode error to its status: 413
// when the MaxBytesReader bound tripped, 400 for malformed JSON.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// writeJSON encodes v with status code.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError encodes a JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
