package fleet

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"mdtask/internal/obs"
)

// Local is an in-process fleet: a coordinator served over a loopback
// HTTP listener plus n workers pulling from it. `-engine fleet` on the
// CLIs (and the fleet property tests) run through a Local, so the full
// wire protocol — registration, heartbeats, leases, result posts — is
// exercised even without separate processes.
type Local struct {
	// C is the coordinator; submit jobs against it.
	C *Coordinator
	// URL is the coordinator's base URL.
	URL string

	srv     *http.Server
	workers []*Worker
}

// StartLocal boots a loopback coordinator with the given options and
// n workers (< 1: 1) attached to it.
func StartLocal(n int, opts Options) (*Local, error) {
	if n < 1 {
		n = 1
	}
	c := NewCoordinator(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("fleet: local listener: %w", err)
	}
	lf := &Local{
		C:   c,
		URL: "http://" + ln.Addr().String(),
		srv: &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 10 * time.Second},
	}
	go func() { _ = lf.srv.Serve(ln) }()
	for i := 0; i < n; i++ {
		wo := WorkerOptions{
			Coordinator: lf.URL,
			Name:        fmt.Sprintf("local-%d", i),
		}
		if opts.Tracer != nil {
			// A tracing coordinator gets tracing workers, so even an
			// ephemeral loopback fleet produces complete traces (the
			// worker-side spans ship back inside each unit result).
			wo.Obs = obs.New(wo.Name)
		}
		w, err := StartWorker(wo)
		if err != nil {
			lf.Close()
			return nil, err
		}
		lf.workers = append(lf.workers, w)
	}
	return lf, nil
}

// Close stops the workers (gracefully), the HTTP server, and the
// coordinator.
func (lf *Local) Close() {
	for _, w := range lf.workers {
		w.Close()
	}
	_ = lf.srv.Close()
	lf.C.Close()
}
