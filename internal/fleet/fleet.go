// Package fleet is the distributed execution layer of the repository:
// a coordinator that decomposes PSA and Leaflet Finder jobs into the
// same block schedules the in-process engines run, and a pull-based
// HTTP worker protocol that fans those blocks out across processes and
// machines — the reproduction of the paper's pilot-agent split
// (a coordinator decomposes work into tasks; independent agent
// processes pull, execute, and ship results back).
//
// # Protocol
//
// Workers drive everything; the coordinator never dials out:
//
//	POST   /v1/workers                  register   → worker id + intervals
//	POST   /v1/workers/{id}/heartbeat   liveness
//	POST   /v1/workers/{id}/lease       pull one work unit (204: none)
//	POST   /v1/workers/{id}/results     ship a unit result back
//	DELETE /v1/workers/{id}             graceful deregister (requeues leases)
//	GET    /v1/fleet                    coordinator stats
//	GET    /v1/fleet/jobs/{id}/input    job input payload (fetched once per job)
//
// # Lease semantics
//
// A lease grants one worker one work unit (a PSA matrix block or a
// Leaflet 2-D tile) until a deadline, LeaseTTL after the grant. Every
// contact from the holding worker — a heartbeat, another lease
// request, a result post — renews its held leases to a fresh TTL, so
// a unit that computes for longer than LeaseTTL on a live worker is
// never revoked. Exactly three things can happen to a lease:
//
//   - The worker posts the unit's result: the lease is retired, the
//     result recorded, and the unit is done.
//   - The deadline passes with no renewing contact: the sweeper
//     revokes the lease and requeues the unit at the front of the
//     queue, so the next lease request picks it up. A late post
//     against a revoked lease is rejected with 409 and discarded —
//     whichever worker completes the requeued unit first wins, and
//     since every unit is a deterministic pure function of the job
//     input, either result is the same.
//   - The worker misses heartbeats for HeartbeatTTL: the worker is
//     declared dead and all of its leases are revoked and requeued at
//     once, without waiting for the individual deadlines.
//
// Units are therefore at-least-once; recording is exactly-once (the
// first accepted result wins, duplicates are rejected), so killing a
// worker mid-job never loses a block and never double-counts metrics.
// Assembled results are bit-identical to the serial reference because
// the unit bodies are the very same ComputeBlock/BlockPartial kernels
// the in-process engines run, and all floats cross the wire as exact
// little-endian bit patterns, never as decimal text.
package fleet

import (
	"errors"
	"time"

	"mdtask/internal/blockstore"
	"mdtask/internal/obs"
)

// Errors surfaced by the coordinator.
var (
	// ErrAborted is returned by Job.Wait when the job was aborted (the
	// cooperative-cancellation path of the jobs layer).
	ErrAborted = errors.New("fleet: job aborted")
	// ErrClosed is returned by Submit* after Close.
	ErrClosed = errors.New("fleet: coordinator closed")
	// ErrStaleLease rejects a result posted against a lease that was
	// revoked (expired, worker declared dead, or job gone).
	ErrStaleLease = errors.New("fleet: lease no longer held")
	// ErrUnknownWorker rejects requests from unregistered worker ids;
	// workers respond by re-registering.
	ErrUnknownWorker = errors.New("fleet: unknown worker")
)

// Options tunes the coordinator's failure detectors. The zero value
// gets production defaults; tests and local fleets shrink everything.
type Options struct {
	// LeaseTTL is how long a worker may hold one work unit without any
	// renewing contact before the sweeper requeues it (default 15s).
	// Unit compute time does not bound it: heartbeats renew held
	// leases, so only a silent worker's lease expires.
	LeaseTTL time.Duration
	// HeartbeatTTL is how long a worker may stay silent — no heartbeat,
	// lease, or result — before it is declared dead and its leases are
	// requeued (default 5s).
	HeartbeatTTL time.Duration
	// SweepEvery is the failure-detector period (default 500ms).
	SweepEvery time.Duration
	// HeartbeatEvery is the interval advertised to workers at
	// registration (default HeartbeatTTL/3).
	HeartbeatEvery time.Duration
	// PollEvery is the idle-poll interval advertised to workers when no
	// work is available (default 200ms).
	PollEvery time.Duration
	// MaxControlBytes bounds small worker-facing request bodies —
	// registration and heartbeats — which legitimately carry at most a
	// short JSON document (default 1 MiB). Oversized bodies answer 413.
	MaxControlBytes int64
	// MaxResultBytes bounds POST …/results bodies. Unit results carry
	// base64 block values plus shipped spans, so the bound is generous
	// (default 64 MiB) — but not absent: without it one misbehaving
	// worker could balloon coordinator memory with a single request.
	// The input-transfer path (GET …/input) is not governed here; the
	// worker side bounds those downloads with its own transfer limit.
	MaxResultBytes int64
	// BlockStore, when set, is the content-addressed result store the
	// coordinator consults before leasing any work unit: units whose
	// block is already cached are recorded at admission and never fan
	// out, and every validated worker result is recorded back, so
	// blocks computed by in-process engines, earlier fleet jobs, or
	// other workers are shared. Nil disables unit-level caching.
	BlockStore *blockstore.Store
	// Tracer, when set, records the coordinator-side spans of every
	// job: a fleet.job span per submission, a fleet.lease span per
	// grant (carrying its outcome, and a requeue_of link when the unit
	// is a retry of a revoked lease), and a fleet.record span per
	// accepted result. Worker-shipped spans are imported into it, so
	// one trace covers both sides of the wire. Nil disables coordinator
	// tracing.
	Tracer *obs.Tracer
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.HeartbeatTTL <= 0 {
		o.HeartbeatTTL = 5 * time.Second
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = 500 * time.Millisecond
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = o.HeartbeatTTL / 3
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 200 * time.Millisecond
	}
	if o.MaxControlBytes <= 0 {
		o.MaxControlBytes = 1 << 20
	}
	if o.MaxResultBytes <= 0 {
		o.MaxResultBytes = 64 << 20
	}
	return o
}

// LocalOptions returns the aggressive timings in-process loopback
// fleets use: short enough that test- and CLI-sized jobs never stall
// on a detector period, long enough to stay clear of false positives.
func LocalOptions() Options {
	return Options{
		LeaseTTL:       5 * time.Second,
		HeartbeatTTL:   2 * time.Second,
		SweepEvery:     50 * time.Millisecond,
		HeartbeatEvery: 250 * time.Millisecond,
		PollEvery:      5 * time.Millisecond,
	}
}
