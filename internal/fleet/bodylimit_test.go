package fleet

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestReadTransferBound covers the worker side of the transfer-size
// contract: a download longer than MaxTransferBytes errors out instead
// of landing in memory (or being silently truncated), and a payload
// exactly at the limit passes through intact.
func TestReadTransferBound(t *testing.T) {
	w := &Worker{o: WorkerOptions{MaxTransferBytes: 64}}
	if _, err := w.readTransfer(bytes.NewReader(make([]byte, 65))); err == nil {
		t.Fatal("oversized transfer read without error")
	} else if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized transfer: %v, want a transfer-limit error", err)
	}
	data, err := w.readTransfer(bytes.NewReader(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 64 {
		t.Fatalf("at-limit transfer read %d bytes, want 64", len(data))
	}
}

// TestWorkerFacingBodyBounds is the regression test for the unbounded
// coordinator decodes: oversized register and result bodies must
// answer 413 instead of being buffered, while in-bound requests keep
// working. Heartbeats carry no body; lease requests carry none either.
func TestWorkerFacingBodyBounds(t *testing.T) {
	c := NewCoordinator(Options{MaxControlBytes: 256, MaxResultBytes: 1024})
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("/v1/workers", `{"name":"`+strings.Repeat("n", 4096)+`"}`); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized register: got %d, want 413", code)
	}
	if code := post("/v1/workers", `{"name":"ok"}`); code != http.StatusCreated {
		t.Errorf("in-bound register: got %d, want 201", code)
	}

	// An oversized result must trip the bound before the lease check:
	// nothing about a huge body should be buffered or inspected.
	big := `{"lease":"l-000001","values_b64":"` + strings.Repeat("A", 8192) + `"}`
	if code := post("/v1/workers/w-000001/results", big); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized result: got %d, want 413", code)
	}
	// An in-bound but stale result still answers 409 as before.
	if code := post("/v1/workers/w-000001/results", `{"lease":"l-000001"}`); code != http.StatusConflict {
		t.Errorf("stale result: got %d, want 409", code)
	}
}
