package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"mdtask/internal/blockstore"
	"mdtask/internal/engine"
	"mdtask/internal/hausdorff"
	"mdtask/internal/psa"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

// The BenchmarkHausdorff* family compares the four exact Hausdorff
// kernels — naive, early-break (Taha & Hanbury), pruned (centroid/
// radius-of-gyration lower bounds + bounded-dRMS early-abandon +
// temporal-coherence ordering) and indexed (the same bounds aggregated
// into a ball tree over frame signatures, searched best-first) — on two
// synthetic regimes:
//
//   - walk: every trajectory equilibrates in place around its own random
//     configuration (the existing benchPSAEnsemble). Centroids barely
//     move, so pruning must come from bounded evaluation and the
//     early-break row cut.
//   - path: trajectories diverge from a shared starting configuration
//     along different directions (synth.PathEnsemble), the
//     transition-path regime Path Similarity Analysis targets. Frame
//     centroids separate over time, so the O(1) centroid bound and the
//     temporal row bound dominate.
//
// Each benchmark reports the exact frame-pair counter values alongside
// wall time. Run with:
//
//	go test -bench Hausdorff ./internal/bench
//
// make bench-json records the numbers (ns/op + counters + the
// full-evaluation reduction versus early-break) in BENCH_psa.json.

// benchPathEnsemble mirrors benchPSAEnsemble's dimensions in the
// diverging-path regime.
func benchPathEnsemble() traj.Ensemble {
	return synth.PathEnsemble(benchPSATrajs, benchPSAAtoms, benchPSAFrames, 43)
}

// kernelCounters runs one serial PSA pass and returns the kernel's
// frame-pair accounting. The counters are a pure function of the
// ensemble and method — identical on every engine and every run.
func kernelCounters(ens traj.Ensemble, m hausdorff.Method) engine.Metrics {
	sink := &engine.Metrics{}
	if _, err := psa.Serial(ens, psa.Opts{Symmetric: true, Method: m, Metrics: sink}); err != nil {
		panic(err)
	}
	return sink.Snapshot()
}

// benchHausdorff times one kernel over one ensemble and reports its
// exact pair accounting.
func benchHausdorff(b *testing.B, ens traj.Ensemble, m hausdorff.Method) {
	b.Helper()
	s := kernelCounters(ens, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psa.Serial(ens, psa.Opts{Symmetric: true, Method: m}); err != nil {
			b.Fatal(err)
		}
	}
	total := s.PairsEvaluated + s.PairsPruned + s.PairsAbandoned
	b.ReportMetric(float64(s.PairsEvaluated), "evaluated-pairs")
	b.ReportMetric(float64(s.PairsPruned), "pruned-pairs")
	b.ReportMetric(float64(s.PairsAbandoned), "abandoned-pairs")
	if total > 0 {
		b.ReportMetric(float64(total-s.PairsEvaluated)/float64(total), "pruned-fraction")
	}
	if s.NodesVisited+s.NodesPruned > 0 {
		b.ReportMetric(float64(s.NodesVisited), "nodes-visited")
		b.ReportMetric(float64(s.NodesPruned), "nodes-pruned")
	}
}

func benchHausdorffEnsembles(b *testing.B, m hausdorff.Method) {
	b.Helper()
	b.Run("walk", func(b *testing.B) { benchHausdorff(b, benchPSAEnsemble(), m) })
	b.Run("path", func(b *testing.B) { benchHausdorff(b, benchPathEnsemble(), m) })
}

func BenchmarkHausdorffNaive(b *testing.B)      { benchHausdorffEnsembles(b, hausdorff.Naive) }
func BenchmarkHausdorffEarlyBreak(b *testing.B) { benchHausdorffEnsembles(b, hausdorff.EarlyBreak) }
func BenchmarkHausdorffPruned(b *testing.B)     { benchHausdorffEnsembles(b, hausdorff.Pruned) }
func BenchmarkHausdorffIndexed(b *testing.B)    { benchHausdorffEnsembles(b, hausdorff.Indexed) }

// TestPrunedKernelEvalReduction pins the headline number of the pruned
// kernel pipeline: on both synthetic ensemble regimes it must perform
// at least 3× fewer full dRMS evaluations than early-break while
// producing the identical matrix, with self-consistent counters. The
// counters are deterministic, so this is an exact assertion, not a
// timing-dependent one.
func TestPrunedKernelEvalReduction(t *testing.T) {
	for _, tc := range []struct {
		name string
		ens  traj.Ensemble
	}{
		{"walk", benchPSAEnsemble()},
		{"path", benchPathEnsemble()},
	} {
		want, err := psa.Serial(tc.ens, psa.Opts{Method: hausdorff.Naive})
		if err != nil {
			t.Fatal(err)
		}
		got, err := psa.Serial(tc.ens, psa.Opts{Symmetric: true, Method: hausdorff.Pruned})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%s: element %d: pruned %v != naive %v", tc.name, i, got.Data[i], want.Data[i])
			}
		}
		eb := kernelCounters(tc.ens, hausdorff.EarlyBreak)
		pr := kernelCounters(tc.ens, hausdorff.Pruned)
		if pr.PairsEvaluated == 0 {
			t.Fatalf("%s: pruned kernel recorded no evaluations", tc.name)
		}
		if ratio := float64(eb.PairsEvaluated) / float64(pr.PairsEvaluated); ratio < 3 {
			t.Errorf("%s: pruned performs only %.2fx fewer full dRMS evaluations than early-break "+
				"(early-break %d, pruned %d), want >= 3x",
				tc.name, ratio, eb.PairsEvaluated, pr.PairsEvaluated)
		}
		ebTotal := eb.PairsEvaluated + eb.PairsPruned + eb.PairsAbandoned
		prTotal := pr.PairsEvaluated + pr.PairsPruned + pr.PairsAbandoned
		if ebTotal != prTotal {
			t.Errorf("%s: kernel pair totals disagree: early-break %d, pruned %d", tc.name, ebTotal, prTotal)
		}
	}
}

// TestIndexedKernelEvalReduction pins the headline number of the
// indexed kernel: on both ensemble regimes it must complete strictly
// fewer full dRMS evaluations than the flat pruned kernel — the whole
// point of aggregating the bound into tree nodes — while producing the
// bit-identical matrix with the same pair total. The counters are
// deterministic, so this is an exact assertion.
func TestIndexedKernelEvalReduction(t *testing.T) {
	for _, tc := range []struct {
		name string
		ens  traj.Ensemble
	}{
		{"walk", benchPSAEnsemble()},
		{"path", benchPathEnsemble()},
	} {
		want, err := psa.Serial(tc.ens, psa.Opts{Method: hausdorff.Naive})
		if err != nil {
			t.Fatal(err)
		}
		got, err := psa.Serial(tc.ens, psa.Opts{Symmetric: true, Method: hausdorff.Indexed})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%s: element %d: indexed %v != naive %v", tc.name, i, got.Data[i], want.Data[i])
			}
		}
		pr := kernelCounters(tc.ens, hausdorff.Pruned)
		ix := kernelCounters(tc.ens, hausdorff.Indexed)
		if ix.PairsEvaluated == 0 {
			t.Fatalf("%s: indexed kernel recorded no evaluations", tc.name)
		}
		if ix.PairsEvaluated >= pr.PairsEvaluated {
			t.Errorf("%s: indexed completed %d full dRMS evaluations, pruned %d — want strictly fewer",
				tc.name, ix.PairsEvaluated, pr.PairsEvaluated)
		}
		if ix.NodesVisited == 0 {
			t.Errorf("%s: indexed kernel visited no tree nodes", tc.name)
		}
		prTotal := pr.PairsEvaluated + pr.PairsPruned + pr.PairsAbandoned
		ixTotal := ix.PairsEvaluated + ix.PairsPruned + ix.PairsAbandoned
		if prTotal != ixTotal {
			t.Errorf("%s: kernel pair totals disagree: pruned %d, indexed %d", tc.name, prTotal, ixTotal)
		}
	}
}

// benchJSONEntry is one method's record in BENCH_psa.json.
type benchJSONEntry struct {
	Method         string  `json:"method"`
	NsPerOp        int64   `json:"ns_per_op"`
	PairsEvaluated int64   `json:"pairs_evaluated"`
	PairsPruned    int64   `json:"pairs_pruned"`
	PairsAbandoned int64   `json:"pairs_abandoned"`
	PrunedFraction float64 `json:"pruned_fraction"`
	NodesVisited   int64   `json:"nodes_visited,omitempty"`
	NodesPruned    int64   `json:"nodes_pruned,omitempty"`
}

type benchJSONEnsemble struct {
	Kind           string           `json:"kind"`
	Trajectories   int              `json:"trajectories"`
	Atoms          int              `json:"atoms"`
	Frames         int              `json:"frames"`
	Methods        []benchJSONEntry `json:"methods"`
	EvalReduction  float64          `json:"full_eval_reduction_vs_early_break"`
	SpeedupVsNaive float64          `json:"pruned_speedup_vs_naive"`
	// IndexedEvalReduction is the headline number of the indexed
	// kernel: full dRMS evaluations of pruned over indexed (> 1 means
	// the tree descent settles more pairs without touching atoms).
	IndexedEvalReduction float64 `json:"indexed_eval_reduction_vs_pruned"`
}

// benchBlockCacheJSON records the block store's effectiveness in
// BENCH_psa.json: the lookup counters of a cold run, a warm rerun, and
// a one-trajectory-grown delta run over one shared store. Every field
// is a deterministic function of the synth ensemble and the n1=1
// schedule, so cmd/benchgate compares them exactly.
type benchBlockCacheJSON struct {
	Trajectories      int   `json:"trajectories"`
	GrownTrajectories int   `json:"grown_trajectories"`
	Blocks            int   `json:"blocks"`
	GrownBlocks       int   `json:"grown_blocks"`
	ColdMisses        int64 `json:"cold_misses"`
	WarmHits          int64 `json:"warm_hits"`
	WarmBytesSaved    int64 `json:"warm_bytes_saved"`
	DeltaHits         int64 `json:"delta_hits"`
	DeltaMisses       int64 `json:"delta_misses"`
}

// measureBlockCache runs the cold/warm/delta scenario and returns its
// counters.
func measureBlockCache() benchBlockCacheJSON {
	const (
		baseN, grownN = 8, 9
		atoms, frames = 16, 8
	)
	refsOf := func(n int) traj.RefEnsemble {
		ens := make(traj.Ensemble, n)
		for i := range ens {
			ens[i] = synth.Walk(fmt.Sprintf("bc-%02d", i), atoms, frames, 61, uint64(i))
		}
		return traj.RefsOf(ens)
	}
	store := blockstore.New(0)
	run := func(n int) engine.Metrics {
		refs := refsOf(n)
		blocks, err := psa.Partition(n, 1, true)
		if err != nil {
			panic(err)
		}
		sink := &engine.Metrics{}
		for _, b := range blocks {
			if _, err := psa.ComputeBlockRefs(refs, b, psa.Opts{Symmetric: true, Cache: store, Metrics: sink}); err != nil {
				panic(err)
			}
		}
		return sink.Snapshot()
	}
	cold := run(baseN)
	warm := run(baseN)
	delta := run(grownN)
	return benchBlockCacheJSON{
		Trajectories:      baseN,
		GrownTrajectories: grownN,
		Blocks:            baseN * (baseN + 1) / 2,
		GrownBlocks:       grownN * (grownN + 1) / 2,
		ColdMisses:        cold.BlockCacheMisses,
		WarmHits:          warm.BlockCacheHits,
		WarmBytesSaved:    warm.BlockCacheBytesSaved,
		DeltaHits:         delta.BlockCacheHits,
		DeltaMisses:       delta.BlockCacheMisses,
	}
}

// TestWriteBenchPSAJSON records the kernel perf trajectory to the file
// named by MDTASK_BENCH_JSON (skipped when unset — it is driven by
// `make bench-json`, which CI runs as a non-gating step).
func TestWriteBenchPSAJSON(t *testing.T) {
	out := os.Getenv("MDTASK_BENCH_JSON")
	if out == "" {
		t.Skip("MDTASK_BENCH_JSON not set; run via make bench-json")
	}
	report := struct {
		Benchmark  string               `json:"benchmark"`
		Ensembles  []benchJSONEnsemble  `json:"ensembles"`
		BlockCache *benchBlockCacheJSON `json:"block_cache,omitempty"`
	}{Benchmark: "psa-hausdorff-kernel"}
	bc := measureBlockCache()
	report.BlockCache = &bc
	for _, tc := range []struct {
		kind string
		ens  traj.Ensemble
	}{
		{"walk", benchPSAEnsemble()},
		{"path", benchPathEnsemble()},
	} {
		e := benchJSONEnsemble{
			Kind:         tc.kind,
			Trajectories: benchPSATrajs,
			Atoms:        benchPSAAtoms,
			Frames:       benchPSAFrames,
		}
		nsPerOp := make(map[string]int64)
		evaluated := make(map[string]int64)
		for _, m := range hausdorff.Methods {
			m := m
			r := testing.Benchmark(func(b *testing.B) { benchHausdorff(b, tc.ens, m) })
			s := kernelCounters(tc.ens, m)
			total := s.PairsEvaluated + s.PairsPruned + s.PairsAbandoned
			entry := benchJSONEntry{
				Method:         m.String(),
				NsPerOp:        r.NsPerOp(),
				PairsEvaluated: s.PairsEvaluated,
				PairsPruned:    s.PairsPruned,
				PairsAbandoned: s.PairsAbandoned,
				NodesVisited:   s.NodesVisited,
				NodesPruned:    s.NodesPruned,
			}
			if total > 0 {
				entry.PrunedFraction = float64(total-s.PairsEvaluated) / float64(total)
			}
			nsPerOp[m.String()] = r.NsPerOp()
			evaluated[m.String()] = s.PairsEvaluated
			e.Methods = append(e.Methods, entry)
		}
		if evaluated["pruned"] > 0 {
			e.EvalReduction = float64(evaluated["early-break"]) / float64(evaluated["pruned"])
		}
		if nsPerOp["pruned"] > 0 {
			e.SpeedupVsNaive = float64(nsPerOp["naive"]) / float64(nsPerOp["pruned"])
		}
		if evaluated["indexed"] > 0 {
			e.IndexedEvalReduction = float64(evaluated["pruned"]) / float64(evaluated["indexed"])
		}
		report.Ensembles = append(report.Ensembles, e)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
