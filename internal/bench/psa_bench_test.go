package bench

import (
	"testing"

	"mdtask/internal/dask"
	"mdtask/internal/hausdorff"
	"mdtask/internal/psa"
	"mdtask/internal/rdd"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

// The BenchmarkPSAFull / BenchmarkPSASymmetric family proves the
// symmetry-aware scheduler's ~2× kernel-work reduction: at equal
// parallelism the symmetric schedule evaluates N(N−1)/2 Hausdorff pairs
// instead of N², reported per op as hausdorff-pairs alongside the wall
// time. Run with:
//
//	go test -bench PSA ./internal/bench
const (
	benchPSATrajs  = 16
	benchPSAGroup  = 4
	benchPSACores  = 4
	benchPSAAtoms  = 96
	benchPSAFrames = 16
)

func benchPSAEnsemble() traj.Ensemble {
	return synth.Ensemble(synth.EnsemblePreset{
		Name: "bench", NAtoms: benchPSAAtoms, NFrames: benchPSAFrames,
	}, benchPSATrajs, 41)
}

// benchPSA times one engine under one schedule, reporting the exact
// number of Hausdorff kernel invocations the schedule performs.
func benchPSA(b *testing.B, sym bool, run func(traj.Ensemble, psa.Opts) (*psa.Matrix, error)) {
	b.Helper()
	ens := benchPSAEnsemble()
	opts := psa.Opts{Symmetric: sym, Method: hausdorff.Naive}
	blocks, err := psa.Partition(len(ens), benchPSAGroup, sym)
	if err != nil {
		b.Fatal(err)
	}
	pairs := 0
	for _, blk := range blocks {
		pairs += blk.TaskPairs(sym)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(ens, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pairs), "hausdorff-pairs")
	b.ReportMetric(float64(len(blocks)), "tasks")
}

func benchPSAEngines(b *testing.B, sym bool) {
	b.Helper()
	b.Run("serial", func(b *testing.B) {
		benchPSA(b, sym, func(ens traj.Ensemble, opts psa.Opts) (*psa.Matrix, error) {
			return psa.Serial(ens, opts)
		})
	})
	b.Run("rdd", func(b *testing.B) {
		benchPSA(b, sym, func(ens traj.Ensemble, opts psa.Opts) (*psa.Matrix, error) {
			return psa.RunRDD(rdd.NewContext(benchPSACores), ens, benchPSAGroup, opts)
		})
	})
	b.Run("dask", func(b *testing.B) {
		benchPSA(b, sym, func(ens traj.Ensemble, opts psa.Opts) (*psa.Matrix, error) {
			return psa.RunDask(dask.NewClient(benchPSACores), ens, benchPSAGroup, opts)
		})
	})
	b.Run("mpi", func(b *testing.B) {
		benchPSA(b, sym, func(ens traj.Ensemble, opts psa.Opts) (*psa.Matrix, error) {
			return psa.RunMPI(benchPSACores, ens, benchPSAGroup, opts)
		})
	})
}

// BenchmarkPSAFull is the paper-faithful Algorithm 2 schedule: all N²
// pairs, mirror halves and zero diagonal included.
func BenchmarkPSAFull(b *testing.B) { benchPSAEngines(b, false) }

// BenchmarkPSASymmetric is the symmetry-aware schedule: diagonal and
// upper-triangle blocks only, lower triangle mirrored at assembly.
func BenchmarkPSASymmetric(b *testing.B) { benchPSAEngines(b, true) }

// TestPSASchedulesAgreeInBench pins the benchmark configuration itself:
// both schedules must produce the identical matrix, and the symmetric
// schedule must do at most half the kernel invocations.
func TestPSASchedulesAgreeInBench(t *testing.T) {
	ens := benchPSAEnsemble()
	full, err := psa.Serial(ens, psa.Opts{Method: hausdorff.Naive})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := psa.RunRDD(rdd.NewContext(benchPSACores), ens, benchPSAGroup,
		psa.Opts{Symmetric: true, Method: hausdorff.Naive})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Data {
		if full.Data[i] != sym.Data[i] {
			t.Fatalf("element %d: full %v != symmetric %v", i, full.Data[i], sym.Data[i])
		}
	}
	count := func(symmetric bool) int {
		blocks, err := psa.Partition(len(ens), benchPSAGroup, symmetric)
		if err != nil {
			t.Fatal(err)
		}
		pairs := 0
		for _, blk := range blocks {
			pairs += blk.TaskPairs(symmetric)
		}
		return pairs
	}
	fullPairs, symPairs := count(false), count(true)
	if 2*symPairs > fullPairs {
		t.Fatalf("symmetric schedule does %d of %d kernel invocations, want <= half",
			symPairs, fullPairs)
	}
}
