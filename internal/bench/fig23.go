package bench

import (
	"fmt"

	"mdtask/internal/cluster"
	"mdtask/internal/stats"
)

// throughputFrameworks are the frameworks of the paper's §4.1 throughput
// experiments (MPI is not part of Figures 2-3).
var throughputFrameworks = []cluster.Framework{cluster.Spark, cluster.Dask, cluster.RadicalPilot}

// nullWorkload builds n zero-compute tasks (the paper's /bin/hostname
// tasks).
func nullWorkload(n int) cluster.Workload {
	return cluster.Workload{
		Name:   "null-tasks",
		Phases: []cluster.Phase{{Name: "tasks", Tasks: cluster.UniformTasks(n, 0)}},
	}
}

// rpSingleNodeTaskLimit is the task count past which the paper could not
// scale RADICAL-Pilot in the single-node throughput experiment ("we were
// not able to scale RADICAL-Pilot to 32k or more tasks", §4.1).
const rpSingleNodeTaskLimit = 32768

// Fig2 regenerates Figure 2: single-node time and throughput executing
// 16..131k zero-workload tasks on a Wrangler-like node for Spark, Dask
// and RADICAL-Pilot.
func Fig2(cal *Calibration) *Table {
	t := &Table{
		ID:     "fig2",
		Title:  "Task throughput by framework (single Wrangler node, zero-workload tasks)",
		Header: []string{"tasks"},
	}
	for _, fw := range throughputFrameworks {
		t.Header = append(t.Header, fw.String()+" time(s)", fw.String()+" tasks/s")
	}
	alloc := cluster.Alloc{Machine: cluster.Wrangler(), Nodes: 1, CoresPerNode: 24}
	for n := 16; n <= 131072; n *= 2 {
		row := []interface{}{n}
		for _, fw := range throughputFrameworks {
			prof := cluster.DefaultProfile(fw)
			prof.Startup = 0 // the cluster is up before the measurement
			if fw == cluster.RadicalPilot && n >= rpSingleNodeTaskLimit {
				row = append(row, "FAIL", "-")
				continue
			}
			res := cluster.Estimate(prof, alloc, nullWorkload(n))
			row = append(row, stats.FormatSeconds(res.Makespan), stats.FormatRate(res.Throughput(n)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"RADICAL-Pilot did not sustain >=32k tasks on a single node in the paper; marked FAIL.",
		"expected shape: Dask fastest, Spark ~1 order slower, RADICAL-Pilot <100 tasks/s.")
	return t
}

// Fig3 regenerates Figure 3: throughput for 100k zero-workload tasks on
// 1-4 nodes of Comet and Wrangler for each framework.
func Fig3(cal *Calibration) *Table {
	const nTasks = 100_000
	t := &Table{
		ID:     "fig3",
		Title:  "Task throughput by framework (100k zero-workload tasks, multiple nodes)",
		Header: []string{"machine", "nodes"},
	}
	for _, fw := range throughputFrameworks {
		t.Header = append(t.Header, fw.String()+" tasks/s")
	}
	for _, m := range []cluster.Machine{cluster.Comet(), cluster.Wrangler()} {
		for nodes := 1; nodes <= 4; nodes++ {
			row := []interface{}{m.Name, nodes}
			for _, fw := range throughputFrameworks {
				prof := cluster.DefaultProfile(fw)
				prof.Startup = 0
				alloc := cluster.Alloc{Machine: m, Nodes: nodes, CoresPerNode: 24}
				res := cluster.Estimate(prof, alloc, nullWorkload(nTasks))
				row = append(row, stats.FormatRate(res.Throughput(nTasks)))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: Dask grows near-linearly with nodes; Spark one order lower; RADICAL-Pilot plateaus below 100 tasks/s.",
		fmt.Sprintf("dispatch-serialization caps: Dask %.0f/s, Spark %.0f/s, RP %.0f/s",
			1/cluster.DefaultProfile(cluster.Dask).DispatchLatency,
			1/cluster.DefaultProfile(cluster.Spark).DispatchLatency,
			1/cluster.DefaultProfile(cluster.RadicalPilot).DispatchLatency))
	return t
}
