package bench

import (
	"fmt"

	"mdtask/internal/core"
	"mdtask/internal/leaflet"
	"mdtask/internal/rdd"
	"mdtask/internal/stats"
	"mdtask/internal/synth"
)

// Tab1 renders the paper's Table 1 (framework comparison) from the
// structured data in the core package.
func Tab1(cal *Calibration) *Table {
	t := &Table{
		ID:     "tab1",
		Title:  "Frameworks comparison (paper Table 1)",
		Header: []string{"property", "RADICAL-Pilot", "Spark", "Dask"},
	}
	get := func(f func(core.Traits) string) []interface{} {
		row := make([]interface{}, 0, 3)
		for _, tr := range core.Table1 {
			row = append(row, f(tr))
		}
		return row
	}
	add := func(name string, f func(core.Traits) string) {
		t.AddRow(append([]interface{}{name}, get(f)...)...)
	}
	add("Languages", func(tr core.Traits) string { return tr.Languages })
	add("Task Abstraction", func(tr core.Traits) string { return tr.TaskAbstraction })
	add("Functional Abstraction", func(tr core.Traits) string { return tr.FunctionalAPI })
	add("Higher-Level Abstractions", func(tr core.Traits) string { return tr.HigherLevel })
	add("Resource Management", func(tr core.Traits) string { return tr.ResourceMgmt })
	add("Scheduler", func(tr core.Traits) string { return tr.Scheduler })
	add("Shuffle", func(tr core.Traits) string { return tr.Shuffle })
	add("Limitations", func(tr core.Traits) string { return tr.Limitations })
	return t
}

// tab2Atoms sizes the real runs backing Table 2's measured columns.
const tab2Atoms = 8192

// Tab2 regenerates Table 2 (MapReduce operations per Leaflet Finder
// approach), augmenting the paper's structural description with
// data-movement volumes measured from real runs of the four approaches
// on the Spark-like engine.
func Tab2(cal *Calibration) *Table {
	t := &Table{
		ID:    "tab2",
		Title: fmt.Sprintf("Leaflet Finder MapReduce operations (measured on a %d-atom membrane)", tab2Atoms),
		Header: []string{"approach", "partitioning", "map", "shuffle payload", "reduce",
			"tasks", "edges", "broadcast", "shuffle"},
	}
	rows := []struct {
		a           leaflet.Approach
		part        string
		mapDesc     string
		shuffleDesc string
		reduceDesc  string
	}{
		{leaflet.Broadcast1D, "1D", "edge discovery via pairwise distance", "edge list (O(E))", "connected components"},
		{leaflet.TaskAPI2D, "2D", "edge discovery via pairwise distance", "edge list (O(E))", "connected components"},
		{leaflet.ParallelCC, "2D", "pairwise distance + partial components", "partial components (O(n))", "join components"},
		{leaflet.TreeSearch, "2D", "tree search + partial components", "partial components (O(n))", "join components"},
	}
	sys := synth.Bilayer(tab2Atoms, 11)
	for _, r := range rows {
		res, err := leaflet.RunRDD(rdd.NewContext(0), r.a, sys.Coords, synth.BilayerCutoff, 64)
		if err != nil {
			t.AddRow(r.a.String(), r.part, r.mapDesc, r.shuffleDesc, r.reduceDesc, "-", "-", "-", "ERR: "+err.Error())
			continue
		}
		t.AddRow(r.a.String(), r.part, r.mapDesc, r.shuffleDesc, r.reduceDesc,
			res.Stats.Tasks, res.Stats.Edges,
			stats.FormatBytes(res.Stats.BroadcastBytes), stats.FormatBytes(res.Stats.ShuffleBytes))
	}
	t.Notes = append(t.Notes,
		"expected shape: approaches 3-4 shuffle far fewer bytes than 1-2 (components vs edges).")
	return t
}

// Tab3 renders the paper's Table 3 (decision framework) from the core
// package's DecisionTable, plus a worked recommendation example.
func Tab3(cal *Calibration) *Table {
	t := &Table{
		ID:     "tab3",
		Title:  "Decision framework: criteria and ranking (paper Table 3)",
		Header: []string{"criterion", "RADICAL-Pilot", "Spark", "Dask"},
	}
	section := func(name string, crits []core.Criterion) {
		t.AddRow("["+name+"]", "", "", "")
		for _, c := range crits {
			row := core.DecisionTable[c]
			t.AddRow(string(c),
				row[core.EnginePilot].String(),
				row[core.EngineSpark].String(),
				row[core.EngineDask].String())
		}
	}
	section("Task Management", core.TaskManagementCriteria)
	section("Application Characteristics", core.ApplicationCriteria)

	recs, err := core.Recommend(core.Requirements{Needs: []core.Criterion{
		core.Throughput, core.ManyTasks, core.Shuffle,
	}})
	if err == nil && len(recs) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"example: for {throughput, many tasks, shuffle}, Recommend ranks %s first (score %d)",
			recs[0].Engine, recs[0].Score))
	}
	return t
}
