package bench

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mdtask/internal/cluster"
	"mdtask/internal/leaflet"
	"mdtask/internal/synth"
)

var (
	calOnce sync.Once
	calVal  *Calibration
)

// sharedCal returns the fixed reference calibration: the shape
// assertions must not depend on how fast this machine (or this build
// mode — race instrumentation slows kernels ~10x) runs the kernels.
// TestCalibrationSanity exercises the real measurement path.
func sharedCal() *Calibration {
	calOnce.Do(func() { calVal = FixedCalibration() })
	return calVal
}

func TestCalibrationSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping real calibration in -short mode")
	}
	cal := Calibrate()
	if cal.HausdorffPair["small"] <= 0 {
		t.Error("hausdorff pair cost not measured")
	}
	if cal.HausdorffPair["large"] <= cal.HausdorffPair["small"] {
		t.Error("large pairs should cost more than small")
	}
	if cal.CdistPerPair <= 0 || cal.CdistPerPair > 1e-6 {
		t.Errorf("cdist per pair = %g implausible", cal.CdistPerPair)
	}
	if cal.EdgesPerAtom < 3 || cal.EdgesPerAtom > 12 {
		t.Errorf("edges/atom = %v outside membrane range", cal.EdgesPerAtom)
	}
}

func TestCalibrationKernelGap(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping real calibration in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts kernel timing")
	}
	cal := Calibrate()
	naive := cal.CPPTrajPair["GNU"]
	blocked := cal.CPPTrajPair["Intel -Wall -O3 (no MKL)"]
	if naive <= 0 || blocked <= 0 {
		t.Fatalf("kernel costs = %v / %v", naive, blocked)
	}
	if blocked >= naive {
		t.Errorf("blocked kernel (%g) not faster than naive (%g)", blocked, naive)
	}
}

// parse a cell like "123.4" to float; returns NaN-like failure via ok.
func cell(tb *Table, row int, col string) (float64, bool) {
	ci := -1
	for i, h := range tb.Header {
		if h == col {
			ci = i
			break
		}
	}
	if ci < 0 || row >= len(tb.Rows) {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(tb.Rows[row][ci]), 64)
	return v, err == nil
}

func findRow(tb *Table, prefix ...string) int {
	for i, row := range tb.Rows {
		match := true
		for j, p := range prefix {
			if j >= len(row) || row[j] != p {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func TestFig2Shapes(t *testing.T) {
	tb := Fig2(sharedCal())
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	// At 4096 tasks: Dask > Spark > RP throughput, RP < 100/s.
	row := findRow(tb, "4096")
	if row < 0 {
		t.Fatal("4096-task row missing")
	}
	dask, ok1 := cell(tb, row, "Dask tasks/s")
	spark, ok2 := cell(tb, row, "Spark tasks/s")
	rp, ok3 := cell(tb, row, "RADICAL-Pilot tasks/s")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("cells missing in row %v", tb.Rows[row])
	}
	if !(dask > spark && spark > rp) {
		t.Errorf("ordering: dask=%v spark=%v rp=%v", dask, spark, rp)
	}
	if rp >= 100 {
		t.Errorf("RP = %v tasks/s, paper plateau is <100", rp)
	}
	if dask < 10*spark/4 {
		t.Errorf("Dask (%v) should be ~an order over Spark (%v)", dask, spark)
	}
	// RP fails at >=32k tasks.
	row = findRow(tb, "32768")
	if row < 0 || tb.Rows[row][5] != "FAIL" {
		t.Errorf("RP 32k row = %v, want FAIL", tb.Rows[row])
	}
}

func TestFig3Shapes(t *testing.T) {
	tb := Fig3(sharedCal())
	// Dask scales with nodes; RP plateaus.
	r1 := findRow(tb, "wrangler", "1")
	r4 := findRow(tb, "wrangler", "4")
	d1, _ := cell(tb, r1, "Dask tasks/s")
	d4, _ := cell(tb, r4, "Dask tasks/s")
	if d4 < 2.5*d1 {
		t.Errorf("Dask not scaling: %v -> %v", d1, d4)
	}
	p1, _ := cell(tb, r1, "RADICAL-Pilot tasks/s")
	p4, _ := cell(tb, r4, "RADICAL-Pilot tasks/s")
	if p4 > 1.2*p1 {
		t.Errorf("RP should plateau: %v -> %v", p1, p4)
	}
}

func TestFig4Shapes(t *testing.T) {
	tb := Fig4(sharedCal())
	// 18 rows: 2 traj counts x 3 sizes x 3 core points.
	if len(tb.Rows) != 18 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// MPI <= all frameworks on every row; scaling ~4-10x from 16->256.
	for _, size := range []string{"small", "medium", "large"} {
		lo := findRow(tb, "128", size, "16/1")
		hi := findRow(tb, "128", size, "256/8")
		mpiLo, _ := cell(tb, lo, "MPI4py")
		mpiHi, _ := cell(tb, hi, "MPI4py")
		scale := mpiLo / mpiHi
		if scale < 4 || scale > 12 {
			t.Errorf("%s: MPI 16->256 scaling = %.1fx, want ~6x", size, scale)
		}
		for _, fw := range []string{"Spark", "Dask", "RADICAL-Pilot"} {
			v, ok := cell(tb, lo, fw)
			if !ok {
				t.Fatalf("missing %s", fw)
			}
			if v < mpiLo {
				t.Errorf("%s at 16 cores (%v) beats MPI (%v)", fw, v, mpiLo)
			}
			if v > 2*mpiLo {
				t.Errorf("%s at 16 cores (%v) not within 2x of MPI (%v)", fw, v, mpiLo)
			}
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	tb := Fig5(sharedCal())
	// Wrangler speedup at 256 cores must be below Comet's.
	cometRow := findRow(tb, "comet", "256/16")
	wranglerRow := findRow(tb, "wrangler", "256/8")
	cs, ok1 := cell(tb, cometRow, "MPI4py speedup")
	ws, ok2 := cell(tb, wranglerRow, "MPI4py speedup")
	if !ok1 || !ok2 {
		t.Fatal("speedup cells missing")
	}
	if ws >= cs {
		t.Errorf("Wrangler speedup %v >= Comet %v; paper says lower", ws, cs)
	}
}

func TestFig6Shapes(t *testing.T) {
	tb := Fig6(sharedCal())
	// Optimized kernel faster in absolute time at 1 core.
	r0 := findRow(tb, "1")
	gnu, _ := cell(tb, r0, "GNU time(s)")
	intel, _ := cell(tb, r0, "Intel -Wall -O3 (no MKL) time(s)")
	if intel >= gnu {
		t.Errorf("optimized kernel (%v) not faster than naive (%v)", intel, gnu)
	}
	// Substantial scaling at 240 cores.
	last := findRow(tb, "240")
	sp, _ := cell(tb, last, "GNU speedup")
	if sp < 30 {
		t.Errorf("GNU speedup at 240 cores = %v, want >>1", sp)
	}
}

func TestFig7FailurePattern(t *testing.T) {
	tb := Fig7(sharedCal())
	get := func(approach leaflet.Approach, atoms, cores string, col string) string {
		row := findRow(tb, approach.String(), atoms, cores)
		if row < 0 {
			t.Fatalf("row %v/%s/%s missing", approach, atoms, cores)
		}
		for i, h := range tb.Header {
			if h == col {
				return tb.Rows[row][i]
			}
		}
		t.Fatalf("column %s missing", col)
		return ""
	}
	// Dask Approach-1 scatter fails at 524k+ (paper §4.3.1).
	if got := get(leaflet.Broadcast1D, "524k", "32/1", "Dask"); got != "FAIL(scatter)" {
		t.Errorf("Dask 524k A1 = %q", got)
	}
	if got := get(leaflet.Broadcast1D, "262k", "32/1", "Dask"); strings.HasPrefix(got, "FAIL") {
		t.Errorf("Dask 262k A1 = %q, should run", got)
	}
	// Approach 2 cannot run 4M (cdist memory, §4.3.2).
	for _, fw := range []string{"Spark", "Dask", "MPI4py"} {
		if got := get(leaflet.TaskAPI2D, "4M", "32/1", fw); !strings.HasPrefix(got, "FAIL") {
			t.Errorf("%s 4M A2 = %q, should fail", fw, got)
		}
	}
	// Approach 3 runs 4M for Spark and MPI (42k tasks) but not Dask.
	if got := get(leaflet.ParallelCC, "4M", "32/1", "Spark"); strings.HasPrefix(got, "FAIL") {
		t.Errorf("Spark 4M A3 = %q, should run with 42k tasks", got)
	}
	if got := get(leaflet.ParallelCC, "4M", "32/1", "MPI4py"); strings.HasPrefix(got, "FAIL") {
		t.Errorf("MPI 4M A3 = %q, should run", got)
	}
	if got := get(leaflet.ParallelCC, "4M", "32/1", "Dask"); !strings.HasPrefix(got, "FAIL") {
		t.Errorf("Dask 4M A3 = %q, should fail (worker restarts)", got)
	}
	// Tree search runs everything.
	for _, atoms := range []string{"131k", "262k", "524k", "4M"} {
		for _, fw := range []string{"Spark", "Dask", "MPI4py"} {
			if got := get(leaflet.TreeSearch, atoms, "32/1", fw); strings.HasPrefix(got, "FAIL") {
				t.Errorf("%s %s A4 = %q, should run", fw, atoms, got)
			}
		}
	}
}

func TestFig7Crossover(t *testing.T) {
	tb := Fig7(sharedCal())
	val := func(approach leaflet.Approach, atoms string) float64 {
		row := findRow(tb, approach.String(), atoms, "32/1")
		v, ok := cell(tb, row, "Spark")
		if !ok {
			t.Fatalf("no Spark value for %v/%s", approach, atoms)
		}
		return v
	}
	// Brute (Approach 3) beats tree below the crossover, loses above.
	if !(val(leaflet.ParallelCC, "131k") < val(leaflet.TreeSearch, "131k")) {
		t.Error("131k: pairwise should beat tree")
	}
	if !(val(leaflet.ParallelCC, "262k") < val(leaflet.TreeSearch, "262k")) {
		t.Error("262k: pairwise should beat tree")
	}
	if !(val(leaflet.TreeSearch, "524k") < val(leaflet.ParallelCC, "524k")) {
		t.Error("524k: tree should win")
	}
	if !(val(leaflet.TreeSearch, "4M") < val(leaflet.ParallelCC, "4M")) {
		t.Error("4M: tree should win decisively")
	}
}

func TestFig8Shapes(t *testing.T) {
	tb := Fig8(sharedCal())
	row := findRow(tb, "131k", "256/8")
	daskB, _ := cell(tb, row, "Dask bcast(s)")
	daskT, _ := cell(tb, row, "Dask total(s)")
	sparkB, _ := cell(tb, row, "Spark bcast(s)")
	sparkT, _ := cell(tb, row, "Spark total(s)")
	mpiB, _ := cell(tb, row, "MPI4py bcast(s)")
	if daskB/daskT < 0.3 {
		t.Errorf("Dask broadcast share = %.2f, paper reports 40-65%%", daskB/daskT)
	}
	if sparkB/sparkT > 0.2 {
		t.Errorf("Spark broadcast share = %.2f, paper reports 3-15%%", sparkB/sparkT)
	}
	if mpiB >= sparkB {
		t.Errorf("MPI bcast (%v) should be below Spark's (%v)", mpiB, sparkB)
	}
	// MPI broadcast grows with ranks.
	lo := findRow(tb, "131k", "32/1")
	mpiLo, _ := cell(tb, lo, "MPI4py bcast(s)")
	if mpiB <= mpiLo {
		t.Errorf("MPI bcast flat: %v -> %v", mpiLo, mpiB)
	}
}

func TestFig9Shapes(t *testing.T) {
	tb := Fig9(sharedCal())
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Overhead-dominated: 131k and 524k runtimes within 2x at 32 cores.
	small, _ := cell(tb, 0, "131k")
	big, _ := cell(tb, 0, "524k")
	if big > 2*small {
		t.Errorf("sizes should run in similar times (%v vs %v)", small, big)
	}
	// Strong improvement from 32 to 256 cores.
	small256, _ := cell(tb, 3, "131k")
	if small/small256 < 3 {
		t.Errorf("RP improved only %.1fx from 32->256 cores", small/small256)
	}
}

func TestTab2Measured(t *testing.T) {
	tb := Tab2(sharedCal())
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[len(row)-1], "ERR") {
			t.Errorf("row failed: %v", row)
		}
	}
}

func TestTab1AndTab3Render(t *testing.T) {
	for _, tb := range []*Table{Tab1(sharedCal()), Tab3(sharedCal())} {
		var buf bytes.Buffer
		if err := tb.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Error("empty render")
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"a", "b"}}
	tb.AddRow(1, "two")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,two\n"
	if buf.String() != want {
		t.Errorf("CSV = %q", buf.String())
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, e := range Registry {
		got, err := Lookup(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("Lookup(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestCompIDsCached(t *testing.T) {
	cal := sharedCal()
	v1 := cal.CompIDs(64)
	v2 := cal.CompIDs(64)
	if v1 != v2 || v1 <= 0 {
		t.Errorf("CompIDs = %v, %v", v1, v2)
	}
}

func TestTreeQueryCostScaling(t *testing.T) {
	cal := sharedCal()
	small := cal.TreeQueryCost(64)
	big := cal.TreeQueryCost(1 << 20)
	if big <= small {
		t.Errorf("tree query cost should grow with chunk: %g vs %g", small, big)
	}
	if cal.TreeQueryCost(1) <= 0 {
		t.Error("degenerate chunk cost")
	}
}

func TestLeafletWorkloadPhases(t *testing.T) {
	cal := sharedCal()
	for _, a := range leaflet.Approaches {
		w := leafletWorkload(cal, a, synth.M131k.NAtoms, 128, cluster.Spark, false)
		if len(w.Phases) != 1 {
			t.Fatalf("%v: phases = %d", a, len(w.Phases))
		}
		ph := w.Phases[0]
		if len(ph.Tasks) == 0 || len(ph.Tasks) > 128 {
			t.Errorf("%v: %d tasks", a, len(ph.Tasks))
		}
		if ph.ShuffleBytes <= 0 {
			t.Errorf("%v: shuffle bytes = %d", a, ph.ShuffleBytes)
		}
		if a == leaflet.Broadcast1D && ph.BroadcastBytes == 0 {
			t.Errorf("broadcast missing")
		}
	}
}
