package bench

import (
	"strconv"
	"testing"

	"mdtask/internal/engine"
	"mdtask/internal/hausdorff"
	"mdtask/internal/psa"
	"mdtask/internal/traj"
)

// The BenchmarkPSAStreamed family measures the out-of-core window
// kernel against the fully-resident baseline, and *asserts the memory
// bound it exists for*: every iteration checks that the engine's peak
// frame residency never exceeded 2 × the window (one window per side
// of a comparison). The full-ensemble baseline runs the untouched
// in-memory path. Run with:
//
//	go test -bench PSAStreamed ./internal/bench
const benchStreamTrajs = 6

func benchStreamEnsemble() traj.Ensemble {
	ens := benchPSAEnsemble()
	return ens[:benchStreamTrajs]
}

// benchPSAStreamed times the streamed serial kernel at one window size,
// asserting the ≤ 2×window residency bound, and reports the window
// read amplification (streamed bytes per iteration over the raw
// coordinate payload).
func benchPSAStreamed(b *testing.B, method hausdorff.Method, window int) {
	b.Helper()
	ens := benchStreamEnsemble()
	refs := traj.RefsOf(ens)
	b.ResetTimer()
	var lastPeak, lastBytes int64
	for i := 0; i < b.N; i++ {
		sink := &engine.Metrics{}
		if _, err := psa.SerialRefs(refs, psa.Opts{
			Symmetric: true, Method: method,
			MaxResidentFrames: window, Metrics: sink,
		}); err != nil {
			b.Fatal(err)
		}
		s := sink.Snapshot()
		if s.PeakResidentFrames > int64(2*window) {
			b.Fatalf("window=%d: peak resident %d frames exceeds the 2×window bound %d",
				window, s.PeakResidentFrames, 2*window)
		}
		if s.BytesStreamed <= 0 {
			b.Fatal("streamed run accounted no bytes")
		}
		lastPeak, lastBytes = s.PeakResidentFrames, s.BytesStreamed
	}
	b.ReportMetric(float64(lastPeak), "peak-frames")
	b.ReportMetric(float64(lastBytes)/float64(traj.Ensemble(ens).Bytes()), "read-amplification")
}

func BenchmarkPSAStreamed(b *testing.B) {
	for _, method := range []hausdorff.Method{hausdorff.Naive, hausdorff.Pruned} {
		for _, window := range []int{4, benchPSAFrames} {
			method, window := method, window
			b.Run(method.String()+"/w"+strconv.Itoa(window), func(b *testing.B) {
				benchPSAStreamed(b, method, window)
			})
		}
	}
	// Baseline: the fully-resident path on the same ensemble, untouched
	// by the streaming changes.
	b.Run("in-memory-baseline", func(b *testing.B) {
		ens := benchStreamEnsemble()
		opts := psa.Opts{Symmetric: true, Method: hausdorff.Naive}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := psa.Serial(ens, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestStreamedBenchBitIdentical pins the benchmark configuration: the
// streamed run used for timing produces exactly the in-memory matrix.
func TestStreamedBenchBitIdentical(t *testing.T) {
	ens := benchStreamEnsemble()
	want, err := psa.Serial(ens, psa.Opts{Symmetric: true, Method: hausdorff.Naive})
	if err != nil {
		t.Fatal(err)
	}
	got, err := psa.SerialRefs(traj.RefsOf(ens), psa.Opts{
		Symmetric: true, Method: hausdorff.Pruned, MaxResidentFrames: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("streamed bench matrix differs at %d", i)
		}
	}
}
