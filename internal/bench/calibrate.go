package bench

import (
	"math"
	"time"

	"mdtask/internal/balltree"
	"mdtask/internal/cpptraj"
	"mdtask/internal/graph"
	"mdtask/internal/hausdorff"
	"mdtask/internal/leaflet"
	"mdtask/internal/linalg"
	"mdtask/internal/synth"
)

// Calibration holds per-operation compute costs measured by running the
// repository's real kernels on this machine. Figure sweeps feed these
// into the cluster performance model so that absolute magnitudes come
// from real measurements while node/core scaling comes from the model.
type Calibration struct {
	// HausdorffPair is the cost (seconds) of one naive Hausdorff
	// trajectory-pair comparison per ensemble preset name.
	HausdorffPair map[string]float64
	// CPPTrajPair is the cost of one full 2D-RMSD pair per kernel label.
	CPPTrajPair map[string]float64
	// CdistPerPair is the cost of one pairwise-distance comparison in
	// brute-force edge discovery.
	CdistPerPair float64
	// TreeBuildPerAtom and TreeQueryPerAtom are the BallTree costs at
	// reference chunk size TreeRefChunk.
	TreeBuildPerAtom float64
	TreeQueryPerAtom float64
	TreeRefChunk     int
	// CCPerOp is the union-find cost per (node+edge) operation.
	CCPerOp float64
	// EdgesPerAtom is the contact-graph edge density of the synthetic
	// membranes at the standard cutoff.
	EdgesPerAtom float64
	// CompIDsPerAtom is the number of partial-component atom ids crossing
	// the Approach-3 shuffle per system atom, keyed by task count
	// (depends on the tiling granularity).
	CompIDsPerAtom map[int]float64

	// calFrames is the frame count used for trajectory timing, scaled up
	// to the presets' 102 frames quadratically.
	calFrames int
}

// timeIt measures fn's wall time, repeating until at least minDur has
// elapsed, and returns seconds per call.
func timeIt(minDur time.Duration, fn func()) float64 {
	reps := 0
	start := time.Now()
	for time.Since(start) < minDur || reps == 0 {
		fn()
		reps++
	}
	return time.Since(start).Seconds() / float64(reps)
}

// Calibrate measures every kernel cost. It takes a few seconds; results
// should be reused across experiments.
func Calibrate() *Calibration {
	cal := &Calibration{
		HausdorffPair:  make(map[string]float64),
		CPPTrajPair:    make(map[string]float64),
		CompIDsPerAtom: make(map[int]float64),
		calFrames:      20,
	}

	// Hausdorff pair cost: time a reduced-frame pair of the small preset
	// and scale quadratically in frames, linearly in atoms.
	small := synth.Small
	t1 := synth.Walk("cal-a", small.NAtoms, cal.calFrames, 1, 0)
	t2 := synth.Walk("cal-b", small.NAtoms, cal.calFrames, 1, 1)
	fa, fb := hausdorff.Frames(t1), hausdorff.Frames(t2)
	frameScale := float64(small.NFrames*small.NFrames) / float64(cal.calFrames*cal.calFrames)
	perPairSmall := timeIt(30*time.Millisecond, func() {
		hausdorff.DistanceFrames(fa, fb, hausdorff.Naive)
	}) * frameScale
	for _, p := range synth.EnsemblePresets {
		cal.HausdorffPair[p.Name] = perPairSmall * float64(p.NAtoms) / float64(small.NAtoms)
	}

	// CPPTraj kernels on the same pair.
	for _, k := range []cpptraj.Kernel{cpptraj.Naive, cpptraj.Blocked} {
		k := k
		cal.CPPTrajPair[k.String()] = timeIt(30*time.Millisecond, func() {
			if _, err := cpptraj.Matrix2DRMS(t1, t2, k); err != nil {
				panic(err)
			}
		}) * frameScale
	}

	// cdist cost per pairwise comparison on a real membrane patch.
	patch := synth.Bilayer(4096, 7)
	nPairs := float64(len(patch.Coords)) * float64(len(patch.Coords)-1) / 2
	cal.CdistPerPair = timeIt(30*time.Millisecond, func() {
		linalg.PairsWithinSelf(patch.Coords, synth.BilayerCutoff)
	}) / nPairs

	// BallTree costs on a larger patch.
	big := synth.Bilayer(16384, 8)
	cal.TreeRefChunk = len(big.Coords)
	cal.TreeBuildPerAtom = timeIt(30*time.Millisecond, func() {
		balltree.New(big.Coords)
	}) / float64(len(big.Coords))
	tree := balltree.New(big.Coords)
	var edgeTotal int64
	cal.TreeQueryPerAtom = timeIt(30*time.Millisecond, func() {
		var buf []int32
		edgeTotal = 0
		for _, p := range big.Coords {
			buf = tree.QueryRadiusAppend(buf[:0], p, synth.BilayerCutoff)
			edgeTotal += int64(len(buf))
		}
	}) / float64(len(big.Coords))
	// Each undirected edge was counted twice (once per endpoint), and
	// self-matches once per atom.
	cal.EdgesPerAtom = float64(edgeTotal-int64(len(big.Coords))) / 2 / float64(len(big.Coords))

	// Union-find cost per operation on the measured graph.
	edges := make([]graph.Edge, 0, int(cal.EdgesPerAtom*float64(len(big.Coords))))
	var buf []int32
	for i, p := range big.Coords {
		buf = tree.QueryRadiusAppend(buf[:0], p, synth.BilayerCutoff)
		for _, j := range buf {
			if j > int32(i) {
				edges = append(edges, graph.Edge{U: int32(i), V: j})
			}
		}
	}
	ops := float64(len(big.Coords) + len(edges))
	cal.CCPerOp = timeIt(30*time.Millisecond, func() {
		graph.ComponentsUnionFind(len(big.Coords), edges)
	}) / ops

	return cal
}

// FixedCalibration returns a machine-independent calibration with
// representative values measured once on the development machine. The
// shape tests use it so their assertions do not depend on the
// measurement conditions of the machine running the tests (e.g. race
// instrumentation slows the kernels by an order of magnitude, which
// would distort the modeled compute/coordination ratios).
func FixedCalibration() *Calibration {
	return &Calibration{
		HausdorffPair: map[string]float64{
			"small":  0.187,
			"medium": 0.374,
			"large":  0.749,
		},
		CPPTrajPair: map[string]float64{
			"GNU":                      0.0886,
			"Intel -Wall -O3 (no MKL)": 0.0607,
		},
		CdistPerPair:     2.28e-9,
		TreeBuildPerAtom: 1.20e-6,
		TreeQueryPerAtom: 1.16e-6,
		TreeRefChunk:     16384,
		CCPerOp:          9.4e-9,
		EdgesPerAtom:     5.11,
		CompIDsPerAtom: map[int]float64{
			leafletTasksPaper: 1.795,
			leafletTasks4M:    4.479,
		},
		calFrames: 20,
	}
}

// CompIDs returns the calibrated partial-component shuffle ids per atom
// for a tiling of nTasks tasks, measuring (and caching) it on a 16k-atom
// membrane with proportionally scaled tiling.
func (c *Calibration) CompIDs(nTasks int) float64 {
	if v, ok := c.CompIDsPerAtom[nTasks]; ok {
		return v
	}
	sys := synth.Bilayer(16384, 9)
	st := leaflet.SampleDataMovement(sys.Coords, synth.BilayerCutoff, nTasks)
	v := float64(st.ShuffleBytes) / 4 / float64(len(sys.Coords))
	c.CompIDsPerAtom[nTasks] = v
	return v
}

// TreeQueryCost returns the per-query cost against a chunk of the given
// size, scaling the reference measurement logarithmically.
func (c *Calibration) TreeQueryCost(chunk int) float64 {
	if chunk < 2 {
		chunk = 2
	}
	scale := math.Log2(float64(chunk)) / math.Log2(float64(c.TreeRefChunk))
	if scale < 0.25 {
		scale = 0.25
	}
	return c.TreeQueryPerAtom * scale
}

// TrajBytes is the on-disk size of one trajectory of the preset
// (float64 coordinates).
func TrajBytes(p synth.EnsemblePreset) int64 {
	return int64(p.NFrames) * int64(p.NAtoms) * 24
}
