package bench

import (
	"fmt"
	"sort"
)

// Experiment is a named generator of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cal *Calibration) *Table
}

// Registry lists every reproducible artifact of the paper's evaluation,
// in paper order.
var Registry = []Experiment{
	{"fig2", "Task throughput by framework (single node)", Fig2},
	{"fig3", "Task throughput by framework (multiple nodes)", Fig3},
	{"fig4", "Hausdorff PSA on Wrangler", Fig4},
	{"fig5", "Hausdorff PSA on Comet and Wrangler", Fig5},
	{"fig6", "Hausdorff via CPPTraj kernels", Fig6},
	{"fig7", "Leaflet Finder approaches across frameworks", Fig7},
	{"fig8", "Leaflet Finder Approach-1 broadcast decomposition", Fig8},
	{"fig9", "RADICAL-Pilot Leaflet Finder (Approach 2)", Fig9},
	{"tab1", "Frameworks comparison", Tab1},
	{"tab2", "Leaflet Finder MapReduce operations", Tab2},
	{"tab3", "Decision framework", Tab3},
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
