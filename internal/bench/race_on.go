//go:build race

package bench

// raceEnabled reports whether the binary was built with the race
// detector, whose instrumentation distorts kernel timing measurements.
const raceEnabled = true
