package bench

import (
	"fmt"

	"mdtask/internal/cluster"
	"mdtask/internal/leaflet"
	"mdtask/internal/stats"
	"mdtask/internal/synth"
)

// Wire sizes of shuffled records, reproducing the paper's measured
// volumes (§4.3.3: 524k atoms -> ~100MB edge lists; 12MB Spark / 48MB
// Dask partial components).
const (
	edgeWireBytes     = 28 // a pythonic (int, int) edge tuple
	compWireSpark     = 24 // atom ids in Spark's component lists
	compWireDask      = 96 // Dask's less compact component representation
	compWireMPI       = 24
	leafletTasksPaper = 1024 // the paper's partition count
	// The paper repartitioned the 4M Approach-3 run into 42k tasks to fit
	// cdist blocks in memory (§4.3).
	leafletTasks4M = 42_000
)

// Python-stack cost factors. The paper's implementations run on
// NumPy/SciPy/Scikit-Learn/NetworkX; the Go kernels in this repository
// are one to two orders of magnitude faster per operation. Feeding raw
// Go costs into the cluster model would understate compute relative to
// coordination overheads and erase the paper's crossovers, so the
// workload builders restore the Python stack's cost levels with these
// factors (see DESIGN.md §1 and EXPERIMENTS.md):
const (
	// pyCdistFactor scales the measured Go pairwise-distance cost to
	// scipy.cdist + numpy filtering levels (~50ns/pair).
	pyCdistFactor = 20
	// pyCCFactor scales the Go union-find cost to NetworkX
	// connected-components levels (~µs/op).
	pyCCFactor = 100
	// pyTreePerQuery is the effective cost of one tree radius query in
	// the Python stack (sklearn BallTree query plus per-neighbor
	// Python-level graph construction). Under the paper's 2-D tiling
	// each atom is queried once per column block, so total tree work is
	// ~(p+1)/2 queries per atom for p chunks. The value is chosen to
	// reproduce the paper's measured crossover: pairwise distances win
	// up to 262k atoms, the tree wins from 524k (§4.3.4).
	pyTreePerQuery = 0.39e-3
)

// compWire returns the per-atom-id shuffle size of partial components
// for a framework.
func compWire(fw cluster.Framework) int64 {
	switch fw {
	case cluster.Dask:
		return compWireDask
	case cluster.Spark:
		return compWireSpark
	default:
		return compWireMPI
	}
}

// leafletFrameworks are the frameworks of Figure 7 (RADICAL-Pilot is
// evaluated separately in Figure 9).
var leafletFrameworks = []cluster.Framework{cluster.Spark, cluster.Dask, cluster.MPI}

// wranglerLeafletPoints are Figure 7's core allocations (32 cores/node).
var wranglerLeafletPoints = []corePoint{{32, 1}, {64, 2}, {128, 4}, {256, 8}}

// leafletWorkload models one Leaflet Finder run: per-task edge-discovery
// durations from the calibrated kernels, plus the approach's data
// movement (Table 2).
func leafletWorkload(cal *Calibration, approach leaflet.Approach, natoms, nTasks int, fw cluster.Framework, coldStart bool) cluster.Workload {
	pairCost := cal.CdistPerPair * pyCdistFactor
	ccOp := cal.CCPerOp * pyCCFactor
	edges := cal.EdgesPerAtom * float64(natoms)
	ccSerial := (float64(natoms) + edges) * ccOp
	var ph cluster.Phase
	ph.Name = approach.String()
	ph.ColdStart = coldStart

	switch approach {
	case leaflet.Broadcast1D:
		lens, pairs := leaflet.Plan1D(natoms, nTasks)
		durs := make([]float64, len(pairs))
		maxChunk := 0
		for i, p := range pairs {
			durs[i] = float64(p) * pairCost
			if lens[i] > maxChunk {
				maxChunk = lens[i]
			}
		}
		ph.Tasks = durs
		ph.BroadcastBytes = leaflet.CoordBytes(natoms)
		ph.BroadcastItems = int64(natoms)
		ph.ShuffleBytes = int64(edges) * edgeWireBytes
		ph.SerialSeconds = ccSerial
		ph.MemPerTaskBytes = int64(maxChunk) * int64(natoms) * 8

	case leaflet.TaskAPI2D, leaflet.ParallelCC:
		blocks := leaflet.Plan2D(natoms, nTasks)
		durs := make([]float64, len(blocks))
		var maxMem int64
		perBlockCC := edges / float64(len(blocks)) * ccOp
		for i, b := range blocks {
			p := float64(b.Rows) * float64(b.Cols)
			if b.Diagonal {
				p = float64(b.Rows) * float64(b.Rows-1) / 2
			}
			durs[i] = p * pairCost
			if approach == leaflet.ParallelCC {
				durs[i] += perBlockCC
			}
			if m := int64(b.Rows) * int64(b.Cols) * 8; m > maxMem {
				maxMem = m
			}
		}
		ph.Tasks = durs
		ph.MemPerTaskBytes = maxMem
		if approach == leaflet.TaskAPI2D {
			ph.ShuffleBytes = int64(edges) * edgeWireBytes
			ph.SerialSeconds = ccSerial
		} else {
			compIDs := cal.CompIDs(nTasks) * float64(natoms)
			ph.ShuffleBytes = int64(compIDs) * compWire(fw)
			ph.SerialSeconds = compIDs * ccOp
		}

	case leaflet.TreeSearch:
		blocks := leaflet.Plan2D(natoms, nTasks)
		durs := make([]float64, len(blocks))
		perBlockCC := edges / float64(len(blocks)) * ccOp
		for i, b := range blocks {
			durs[i] = float64(b.Rows)*pyTreePerQuery + perBlockCC
		}
		ph.Tasks = durs
		compIDs := cal.CompIDs(nTasks) * float64(natoms)
		ph.ShuffleBytes = int64(compIDs) * compWire(fw)
		ph.SerialSeconds = compIDs * ccOp
	}
	return cluster.Workload{Name: fmt.Sprintf("leaflet-%dk", natoms/1000), Phases: []cluster.Phase{ph}}
}

// estimateLeaflet runs the model, retrying the 4M Approach-3 case with
// the paper's 42k-task repartitioning when the 1024-task tiling exceeds
// node memory.
func estimateLeaflet(cal *Calibration, approach leaflet.Approach, natoms int, fw cluster.Framework, alloc cluster.Alloc) (cluster.Result, int) {
	w := leafletWorkload(cal, approach, natoms, leafletTasksPaper, fw, false)
	res := cluster.Estimate(cluster.DefaultProfile(fw), alloc, w)
	if res.Failed != "" && approach == leaflet.ParallelCC {
		w = leafletWorkload(cal, approach, natoms, leafletTasks4M, fw, false)
		res2 := cluster.Estimate(cluster.DefaultProfile(fw), alloc, w)
		if res2.Failed == "" {
			return res2, leafletTasks4M
		}
	}
	return res, leafletTasksPaper
}

// Fig7 regenerates Figure 7: Leaflet Finder runtimes and speedups for
// the four architectural approaches across Spark, Dask and MPI on the
// four system sizes over 32..256 Wrangler cores.
func Fig7(cal *Calibration) *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Leaflet Finder: runtime (s) and speedup by approach, framework, system size",
		Header: []string{"approach", "atoms", "cores/nodes"},
	}
	for _, fw := range leafletFrameworks {
		t.Header = append(t.Header, fw.String(), fw.String()+" spdup")
	}
	m := cluster.Wrangler()
	for _, approach := range leaflet.Approaches {
		for _, preset := range synth.MembranePresets {
			base := make(map[cluster.Framework]float64)
			for _, pt := range wranglerLeafletPoints {
				row := []interface{}{approach.String(), preset.Name,
					fmt.Sprintf("%d/%d", pt.cores, pt.nodes)}
				alloc := cluster.Alloc{Machine: m, Nodes: pt.nodes, CoresPerNode: pt.cores / pt.nodes}
				for _, fw := range leafletFrameworks {
					if approach == leaflet.Broadcast1D && fw == cluster.Dask &&
						preset.NAtoms > leaflet.DaskScatterAtomLimit {
						row = append(row, "FAIL(scatter)", "-")
						continue
					}
					res, _ := estimateLeaflet(cal, approach, preset.NAtoms, fw, alloc)
					if res.Failed != "" {
						row = append(row, "FAIL(mem)", "-")
						continue
					}
					if _, ok := base[fw]; !ok {
						base[fw] = res.Makespan
					}
					row = append(row, stats.FormatSeconds(res.Makespan),
						fmt.Sprintf("%.1f", base[fw]/res.Makespan))
				}
				t.AddRow(row...)
			}
		}
	}
	t.Notes = append(t.Notes,
		"speedups are relative to each framework's first non-failing core count (32 cores).",
		"expected shape: Approach 1 worst; Approach 3 ~20% faster than 2 for Spark/Dask; tree search wins only for >=524k atoms; MPI near-linear while Spark/Dask cap around 4.5-5x; 4M runs only under Approach 3 (42k tasks, Spark/MPI) and Approach 4.")
	return t
}

// Fig8 regenerates Figure 8: the broadcast-vs-total decomposition of
// Approach 1 for the 131k and 262k systems.
func Fig8(cal *Calibration) *Table {
	t := &Table{
		ID:     "fig8",
		Title:  "Leaflet Finder Approach 1: broadcast time vs total runtime",
		Header: []string{"atoms", "cores/nodes"},
	}
	for _, fw := range leafletFrameworks {
		t.Header = append(t.Header, fw.String()+" bcast(s)", fw.String()+" total(s)", fw.String()+" share")
	}
	m := cluster.Wrangler()
	for _, preset := range []synth.MembranePreset{synth.M131k, synth.M262k} {
		for _, pt := range wranglerLeafletPoints {
			row := []interface{}{preset.Name, fmt.Sprintf("%d/%d", pt.cores, pt.nodes)}
			alloc := cluster.Alloc{Machine: m, Nodes: pt.nodes, CoresPerNode: pt.cores / pt.nodes}
			for _, fw := range leafletFrameworks {
				w := leafletWorkload(cal, leaflet.Broadcast1D, preset.NAtoms, leafletTasksPaper, fw, false)
				res := cluster.Estimate(cluster.DefaultProfile(fw), alloc, w)
				if res.Failed != "" {
					row = append(row, "-", "FAIL", "-")
					continue
				}
				row = append(row, stats.FormatSeconds(res.Broadcast),
					stats.FormatSeconds(res.Makespan),
					fmt.Sprintf("%.0f%%", 100*res.Broadcast/res.Makespan))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: MPI broadcast smallest and growing with ranks; Spark's flat and small; Dask's a large share of the runtime (per-element scatter).")
	return t
}

// Fig9 regenerates Figure 9: RADICAL-Pilot running the Approach-2
// Leaflet Finder on 131k-524k atoms; overheads dominate, so runtimes are
// similar despite the system size.
func Fig9(cal *Calibration) *Table {
	t := &Table{
		ID:     "fig9",
		Title:  "RADICAL-Pilot Leaflet Finder (Approach 2): runtime (s) by system size and cores",
		Header: []string{"cores/nodes", "131k", "262k", "524k"},
	}
	m := cluster.Wrangler()
	prof := cluster.DefaultProfile(cluster.RadicalPilot)
	for _, pt := range wranglerLeafletPoints {
		row := []interface{}{fmt.Sprintf("%d/%d", pt.cores, pt.nodes)}
		alloc := cluster.Alloc{Machine: m, Nodes: pt.nodes, CoresPerNode: pt.cores / pt.nodes}
		for _, preset := range []synth.MembranePreset{synth.M131k, synth.M262k, synth.M524k} {
			w := leafletWorkload(cal, leaflet.TaskAPI2D, preset.NAtoms, leafletTasksPaper, cluster.RadicalPilot, true)
			res := cluster.Estimate(prof, alloc, w)
			if res.Failed != "" {
				row = append(row, "FAIL")
				continue
			}
			row = append(row, stats.FormatSeconds(res.Makespan))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: runtimes dominated by per-unit overheads (similar across sizes), improving sharply beyond 64 cores.")
	return t
}
