package bench

import (
	"fmt"

	"mdtask/internal/cluster"
	"mdtask/internal/cpptraj"
	"mdtask/internal/stats"
	"mdtask/internal/synth"
)

// haswell20 models the 20-core Haswell nodes of the paper's CPPTraj
// experiment (§4.2, Fig 6).
func haswell20() cluster.Machine {
	m := cluster.Comet()
	m.Name = "haswell20"
	m.CoresPerNode = 20
	m.PhysPerNode = 20
	return m
}

// Fig6 regenerates Figure 6: CPPTraj-style 2D-RMSD over 128 small
// trajectories, 1..240 cores, comparing the naive ("GNU") and blocked
// ("Intel -O3") kernels. Per-pair kernel costs are real measurements of
// this repository's kernels (see Calibration.CPPTrajPair).
func Fig6(cal *Calibration) *Table {
	const nTraj = 128
	kernels := []cpptraj.Kernel{cpptraj.Naive, cpptraj.Blocked}
	t := &Table{
		ID:     "fig6",
		Title:  "CPPTraj 2D-RMSD, 128 small trajectories: runtime and speedup vs cores",
		Header: []string{"cores"},
	}
	for _, k := range kernels {
		t.Header = append(t.Header, k.String()+" time(s)", k.String()+" speedup")
	}
	pairs := nTraj * (nTraj + 1) / 2
	m := haswell20()
	base := make(map[cpptraj.Kernel]float64)
	coresList := []int{1, 20, 40, 80, 120, 160, 200, 240}
	for _, cores := range coresList {
		nodes := (cores + m.CoresPerNode - 1) / m.CoresPerNode
		row := []interface{}{cores}
		for _, k := range kernels {
			prof := cluster.DefaultProfile(cluster.MPI)
			// mpirun process spawn grows with rank count.
			prof.Startup = 1 + 0.02*float64(cores)
			w := cluster.Workload{
				Name: "cpptraj-2drmsd",
				Phases: []cluster.Phase{{
					Name:    "pairs",
					Tasks:   cluster.UniformTasks(pairs, cal.CPPTrajPair[k.String()]),
					IOBytes: int64(nTraj) * TrajBytes(synth.Small),
				}},
			}
			alloc := cluster.Alloc{Machine: m, Nodes: nodes, CoresPerNode: min(cores, m.CoresPerNode)}
			res := cluster.Estimate(prof, alloc, w)
			if cores == coresList[0] {
				base[k] = res.Makespan
			}
			row = append(row, stats.FormatSeconds(res.Makespan), fmt.Sprintf("%.1f", base[k]/res.Makespan))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured kernel costs per pair: naive %.4fs, blocked %.4fs (x%.1f)",
			cal.CPPTrajPair[cpptraj.Naive.String()], cal.CPPTrajPair[cpptraj.Blocked.String()],
			cal.CPPTrajPair[cpptraj.Naive.String()]/cal.CPPTrajPair[cpptraj.Blocked.String()]),
		"expected shape: optimized kernel several times faster in absolute time; both scale to ~100x at 240 cores with the naive kernel showing the higher speedup.")
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
