package bench

import (
	"fmt"
	"math"

	"mdtask/internal/cluster"
	"mdtask/internal/stats"
	"mdtask/internal/synth"
)

// psaFrameworks are the frameworks of the PSA comparison (§4.2).
var psaFrameworks = []cluster.Framework{cluster.MPI, cluster.Spark, cluster.Dask, cluster.RadicalPilot}

// psaWorkload models the paper's PSA execution: the N² Hausdorff
// comparisons are 2-D partitioned into one task per core (Algorithm 2);
// each task reads its 2×n1 input trajectories from the shared
// filesystem (the re-read amplification that limits speedup) and the
// distance blocks are gathered at the client.
func psaWorkload(cal *Calibration, preset synth.EnsemblePreset, nTraj, cores int) cluster.Workload {
	k := int(math.Round(math.Sqrt(float64(cores))))
	if k < 1 {
		k = 1
	}
	tasks := k * k
	pairsPerTask := float64(nTraj) * float64(nTraj) / float64(tasks)
	dur := pairsPerTask * cal.HausdorffPair[preset.Name]
	n1 := nTraj / k
	ioBytes := int64(tasks) * 2 * int64(n1) * TrajBytes(preset)
	return cluster.Workload{
		Name: fmt.Sprintf("psa-%s-%d", preset.Name, nTraj),
		Phases: []cluster.Phase{{
			Name:        "hausdorff-blocks",
			Tasks:       cluster.UniformTasks(tasks, dur),
			IOBytes:     ioBytes,
			GatherBytes: int64(nTraj) * int64(nTraj) * 8,
			ColdStart:   true, // each task launches a fresh analysis process
		}},
	}
}

// corePoint is one cores/nodes configuration of a machine sweep.
type corePoint struct{ cores, nodes int }

// The paper's Figure 4/5 core allocations.
var (
	wranglerPSAPoints = []corePoint{{16, 1}, {64, 2}, {256, 8}}
	cometPSAPoints    = []corePoint{{16, 1}, {64, 4}, {256, 16}}
)

// Fig4 regenerates Figure 4: PSA (Hausdorff) runtimes on Wrangler for
// 128 and 256 trajectories of each size class over 16/64/256 cores, for
// all four frameworks.
func Fig4(cal *Calibration) *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Hausdorff PSA on Wrangler: runtime (s) by trajectory count, size, cores",
		Header: []string{"trajs", "size", "cores/nodes"},
	}
	for _, fw := range psaFrameworks {
		t.Header = append(t.Header, fw.String())
	}
	m := cluster.Wrangler()
	for _, nTraj := range []int{128, 256} {
		for _, preset := range synth.EnsemblePresets {
			for _, pt := range wranglerPSAPoints {
				row := []interface{}{nTraj, preset.Name, fmt.Sprintf("%d/%d", pt.cores, pt.nodes)}
				w := psaWorkload(cal, preset, nTraj, pt.cores)
				for _, fw := range psaFrameworks {
					alloc := cluster.Alloc{Machine: m, Nodes: pt.nodes, CoresPerNode: pt.cores / pt.nodes}
					res := cluster.Estimate(cluster.DefaultProfile(fw), alloc, w)
					if res.Failed != "" {
						row = append(row, "FAIL")
						continue
					}
					row = append(row, stats.FormatSeconds(res.Makespan))
				}
				t.AddRow(row...)
			}
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: all frameworks within a small factor of MPI; ~6x scaling from 16 to 256 cores.")
	return t
}

// Fig5 regenerates Figure 5: PSA runtime and speedup for 128 large
// trajectories on Comet and Wrangler.
func Fig5(cal *Calibration) *Table {
	t := &Table{
		ID:     "fig5",
		Title:  "Hausdorff PSA, 128 large trajectories: runtime and speedup on Comet vs Wrangler",
		Header: []string{"machine", "cores/nodes"},
	}
	for _, fw := range psaFrameworks {
		t.Header = append(t.Header, fw.String()+" time(s)", fw.String()+" speedup")
	}
	for _, mp := range []struct {
		m      cluster.Machine
		points []corePoint
	}{
		{cluster.Comet(), cometPSAPoints},
		{cluster.Wrangler(), wranglerPSAPoints},
	} {
		base := make(map[cluster.Framework]float64)
		for _, pt := range mp.points {
			row := []interface{}{mp.m.Name, fmt.Sprintf("%d/%d", pt.cores, pt.nodes)}
			w := psaWorkload(cal, synth.Large, 128, pt.cores)
			for _, fw := range psaFrameworks {
				alloc := cluster.Alloc{Machine: mp.m, Nodes: pt.nodes, CoresPerNode: pt.cores / pt.nodes}
				res := cluster.Estimate(cluster.DefaultProfile(fw), alloc, w)
				if res.Failed != "" {
					row = append(row, "FAIL", "-")
					continue
				}
				if pt.cores == mp.points[0].cores {
					base[fw] = res.Makespan
				}
				row = append(row, stats.FormatSeconds(res.Makespan),
					fmt.Sprintf("%.1f", base[fw]/res.Makespan))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: similar runtimes on both machines; Wrangler speedup lower than Comet's (hyper-threaded packing).")
	return t
}
