// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§4). Each experiment builds the
// paper's workload, calibrates per-task compute costs by timing the real
// kernels in this repository, and projects node/core sweeps through the
// cluster performance model, printing the same rows/series the paper
// reports. EXPERIMENTS.md records the expected shapes.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated artifact: a figure's data series or a table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(t.Header) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
