// Package synth generates deterministic synthetic MD datasets that stand
// in for the paper's real-world inputs (which came from production
// simulations on XSEDE storage):
//
//   - Trajectory ensembles for Path Similarity Analysis, with the paper's
//     three atom-count presets (small 3341, medium 6682, large 13364
//     atoms per frame; 102 frames) — see Ensemble.
//   - Lipid-bilayer systems for the Leaflet Finder, with the paper's four
//     size presets (131k, 262k, 524k, 4M atoms) — see Bilayer. The
//     generator produces two locally-parallel sheets whose inter-sheet
//     distance exceeds the neighbor cutoff, so the contact graph has
//     exactly two connected components and roughly the paper's
//     edges-per-atom density (~6.7).
//
// All generators are deterministic functions of their seed.
package synth

import (
	"fmt"
	"math"
	"math/rand/v2"

	"mdtask/internal/linalg"
	"mdtask/internal/traj"
)

// EnsemblePreset names a trajectory size class from the paper (§4.2).
type EnsemblePreset struct {
	Name    string
	NAtoms  int
	NFrames int
}

// The paper's three PSA trajectory size classes, each with 102 frames.
var (
	Small  = EnsemblePreset{Name: "small", NAtoms: 3341, NFrames: 102}
	Medium = EnsemblePreset{Name: "medium", NAtoms: 6682, NFrames: 102}
	Large  = EnsemblePreset{Name: "large", NAtoms: 13364, NFrames: 102}
)

// EnsemblePresets lists the paper's size classes in ascending order.
var EnsemblePresets = []EnsemblePreset{Small, Medium, Large}

// rng returns a deterministic PCG generator for a (seed, stream) pair.
func rng(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, stream^0x9e3779b97f4a7c15))
}

// Ensemble generates n random-walk trajectories of the given preset.
// Each trajectory starts from a random configuration in a cubic box and
// evolves by small Gaussian displacements, which yields smoothly varying
// frames like a thermostatted MD run.
func Ensemble(p EnsemblePreset, n int, seed uint64) traj.Ensemble {
	out := make(traj.Ensemble, n)
	for i := range out {
		out[i] = Walk(fmt.Sprintf("%s-%03d", p.Name, i), p.NAtoms, p.NFrames, seed, uint64(i))
	}
	return out
}

// Walk generates a single random-walk trajectory: nAtoms atoms over
// nFrames frames. The (seed, stream) pair fully determines the output.
func Walk(name string, nAtoms, nFrames int, seed, stream uint64) *traj.Trajectory {
	r := rng(seed, stream)
	const (
		box  = 50.0 // initial box edge, Å
		step = 0.15 // per-frame Gaussian displacement σ, Å
		dt   = 1.0  // frame spacing, ps
	)
	t := traj.New(name, nAtoms)
	cur := make([]linalg.Vec3, nAtoms)
	for i := range cur {
		cur[i] = linalg.Vec3{r.Float64() * box, r.Float64() * box, r.Float64() * box}
	}
	for f := 0; f < nFrames; f++ {
		coords := make([]linalg.Vec3, nAtoms)
		copy(coords, cur)
		t.Frames = append(t.Frames, traj.Frame{Time: float64(f) * dt, Coords: coords})
		for i := range cur {
			cur[i][0] += r.NormFloat64() * step
			cur[i][1] += r.NormFloat64() * step
			cur[i][2] += r.NormFloat64() * step
		}
	}
	return t
}

// PathWalk generates a transition-path-like trajectory for Path
// Similarity Analysis: all members of a (seed-determined) ensemble
// share the same initial configuration and each drifts coherently along
// its own stream-determined direction while the atoms jitter, like
// independent simulations escaping a common starting basin toward
// different end states. Unlike Walk, whose frames all occupy the same
// region, PathWalk frames traverse space: frame centroids separate
// roughly linearly in time, which is the structure the pruned Hausdorff
// kernel's centroid bounds and temporal-coherence pruning exploit.
func PathWalk(name string, nAtoms, nFrames int, seed, stream uint64) *traj.Trajectory {
	const (
		box    = 50.0 // initial box edge, Å
		drift  = 1.0  // coherent per-frame displacement, Å
		jitter = 0.15 // per-frame per-atom Gaussian displacement σ, Å
		dt     = 1.0  // frame spacing, ps
	)
	// The shared starting configuration depends only on the seed.
	base := rng(seed, 0x9A7B)
	start := make([]linalg.Vec3, nAtoms)
	for i := range start {
		start[i] = linalg.Vec3{base.Float64() * box, base.Float64() * box, base.Float64() * box}
	}
	// Drift direction and jitter are per-trajectory.
	r := rng(seed, stream^0x5EED)
	dir := linalg.Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	if n := dir.Norm(); n > 0 {
		dir = dir.Scale(drift / n)
	}
	t := traj.New(name, nAtoms)
	cur := make([]linalg.Vec3, nAtoms)
	copy(cur, start)
	for f := 0; f < nFrames; f++ {
		coords := make([]linalg.Vec3, nAtoms)
		copy(coords, cur)
		t.Frames = append(t.Frames, traj.Frame{Time: float64(f) * dt, Coords: coords})
		for i := range cur {
			cur[i] = cur[i].Add(dir)
			cur[i][0] += r.NormFloat64() * jitter
			cur[i][1] += r.NormFloat64() * jitter
			cur[i][2] += r.NormFloat64() * jitter
		}
	}
	return t
}

// PathEnsemble generates n PathWalk trajectories diverging from the
// seed's shared starting configuration.
func PathEnsemble(n, nAtoms, nFrames int, seed uint64) traj.Ensemble {
	out := make(traj.Ensemble, n)
	for i := range out {
		out[i] = PathWalk(fmt.Sprintf("path-%03d", i), nAtoms, nFrames, seed, uint64(i))
	}
	return out
}

// MembranePreset names a Leaflet Finder system size from the paper
// (§4.3): total atom count across both leaflets.
type MembranePreset struct {
	Name   string
	NAtoms int
}

// The paper's four Leaflet Finder system sizes.
var (
	M131k = MembranePreset{Name: "131k", NAtoms: 131072}
	M262k = MembranePreset{Name: "262k", NAtoms: 262144}
	M524k = MembranePreset{Name: "524k", NAtoms: 524288}
	M4M   = MembranePreset{Name: "4M", NAtoms: 4_000_000}
)

// MembranePresets lists the paper's membrane sizes in ascending order.
var MembranePresets = []MembranePreset{M131k, M262k, M524k, M4M}

// BilayerSpacing is the in-plane lattice constant of generated bilayers
// in Å (roughly a lipid headgroup spacing).
const BilayerSpacing = 8.0

// BilayerCutoff is the neighbor cutoff (Å) that, at BilayerSpacing,
// connects first and second lattice shells within a leaflet (≈13
// neighbors/atom, matching the paper's edge density) while the two
// leaflets — separated by BilayerSeparation — stay disconnected.
const BilayerCutoff = 1.8 * BilayerSpacing

// BilayerSeparation is the z distance between the two leaflets in Å,
// chosen well above BilayerCutoff.
const BilayerSeparation = 3.5 * BilayerSpacing

// BilayerSystem is a generated membrane snapshot with the ground-truth
// leaflet assignment of every atom.
type BilayerSystem struct {
	Coords []linalg.Vec3
	// Leaflet[i] is 0 for the lower sheet and 1 for the upper sheet.
	Leaflet []uint8
}

// Bilayer generates a two-leaflet membrane with the given total atom
// count. Each leaflet is a jittered triangular lattice; the jitter σ is
// small relative to the lattice constant, keeping the sheets locally
// parallel as the Leaflet Finder assumes.
func Bilayer(nAtoms int, seed uint64) *BilayerSystem {
	if nAtoms < 2 {
		panic(fmt.Sprintf("synth: Bilayer needs at least 2 atoms, got %d", nAtoms))
	}
	r := rng(seed, 0xB17A)
	perLeaflet := nAtoms / 2
	nLower := perLeaflet + nAtoms%2
	sys := &BilayerSystem{
		Coords:  make([]linalg.Vec3, 0, nAtoms),
		Leaflet: make([]uint8, 0, nAtoms),
	}
	sheet(sys, nLower, 0, 0, r)
	sheet(sys, perLeaflet, BilayerSeparation, 1, r)
	return sys
}

// sheet appends one jittered triangular-lattice sheet at height z.
func sheet(sys *BilayerSystem, n int, z float64, label uint8, r *rand.Rand) {
	const jitter = 0.08 * BilayerSpacing
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	if cols < 1 {
		cols = 1
	}
	rowH := BilayerSpacing * math.Sqrt(3) / 2
	for i := 0; i < n; i++ {
		row := i / cols
		col := i % cols
		x := float64(col) * BilayerSpacing
		if row%2 == 1 {
			x += BilayerSpacing / 2
		}
		y := float64(row) * rowH
		sys.Coords = append(sys.Coords, linalg.Vec3{
			x + r.NormFloat64()*jitter,
			y + r.NormFloat64()*jitter,
			z + r.NormFloat64()*jitter,
		})
		sys.Leaflet = append(sys.Leaflet, label)
	}
}

// Membrane generates the bilayer for a named preset.
func Membrane(p MembranePreset, seed uint64) *BilayerSystem {
	return Bilayer(p.NAtoms, seed)
}

// CountLeaflets returns the sizes of the two ground-truth leaflets.
func (b *BilayerSystem) CountLeaflets() (lower, upper int) {
	for _, l := range b.Leaflet {
		if l == 0 {
			lower++
		} else {
			upper++
		}
	}
	return lower, upper
}
