package synth

import (
	"math"
	"testing"

	"mdtask/internal/linalg"
)

func TestWalkDeterministic(t *testing.T) {
	a := Walk("x", 10, 5, 42, 0)
	b := Walk("x", 10, 5, 42, 0)
	for f := range a.Frames {
		for i := range a.Frames[f].Coords {
			if a.Frames[f].Coords[i] != b.Frames[f].Coords[i] {
				t.Fatalf("frame %d atom %d differs between identical seeds", f, i)
			}
		}
	}
	c := Walk("x", 10, 5, 43, 0)
	if a.Frames[0].Coords[0] == c.Frames[0].Coords[0] {
		t.Error("different seeds produced identical first coordinates")
	}
}

func TestWalkShape(t *testing.T) {
	tr := Walk("w", 7, 9, 1, 2)
	if tr.NAtoms != 7 || tr.NFrames() != 9 {
		t.Fatalf("shape = %d/%d", tr.NAtoms, tr.NFrames())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Frames should evolve: consecutive frames differ but only slightly.
	d := linalg.DRMS(tr.Frames[0].Coords, tr.Frames[1].Coords)
	if d == 0 {
		t.Error("consecutive frames identical")
	}
	if d > 1 {
		t.Errorf("consecutive frames too far apart: dRMS=%v", d)
	}
}

func TestEnsemblePresets(t *testing.T) {
	if Small.NAtoms != 3341 || Medium.NAtoms != 6682 || Large.NAtoms != 13364 {
		t.Error("preset atom counts do not match the paper")
	}
	for _, p := range EnsemblePresets {
		if p.NFrames != 102 {
			t.Errorf("%s frames = %d, want 102", p.Name, p.NFrames)
		}
	}
	ens := Ensemble(EnsemblePreset{Name: "tiny", NAtoms: 5, NFrames: 3}, 4, 7)
	if len(ens) != 4 {
		t.Fatalf("ensemble size = %d", len(ens))
	}
	names := map[string]bool{}
	for _, tr := range ens {
		if names[tr.Name] {
			t.Errorf("duplicate name %s", tr.Name)
		}
		names[tr.Name] = true
	}
	// Members must differ from each other.
	if linalg.DRMS(ens[0].Frames[0].Coords, ens[1].Frames[0].Coords) == 0 {
		t.Error("ensemble members identical")
	}
}

func TestBilayerLeafletCounts(t *testing.T) {
	for _, n := range []int{2, 3, 100, 2048} {
		sys := Bilayer(n, 1)
		if len(sys.Coords) != n || len(sys.Leaflet) != n {
			t.Fatalf("n=%d: got %d coords", n, len(sys.Coords))
		}
		lo, hi := sys.CountLeaflets()
		if lo+hi != n || lo < hi || lo-hi > 1 {
			t.Fatalf("n=%d: leaflets %d/%d", n, lo, hi)
		}
	}
}

func TestBilayerSeparation(t *testing.T) {
	sys := Bilayer(2000, 3)
	// Minimum distance between leaflets must exceed the cutoff, so the
	// contact graph has exactly two components.
	var lower, upper []linalg.Vec3
	for i, p := range sys.Coords {
		if sys.Leaflet[i] == 0 {
			lower = append(lower, p)
		} else {
			upper = append(upper, p)
		}
	}
	minDist := math.Inf(1)
	for _, p := range upper {
		if d := linalg.MinDistPointSet(p, lower); d < minDist {
			minDist = d
		}
	}
	if minDist <= BilayerCutoff {
		t.Fatalf("leaflet separation %v <= cutoff %v", minDist, BilayerCutoff)
	}
}

func TestBilayerConnectivityWithinLeaflet(t *testing.T) {
	sys := Bilayer(512, 5)
	// Every atom should have at least one neighbor within the cutoff in
	// its own leaflet (no isolated atoms).
	for i, p := range sys.Coords {
		found := false
		for j, q := range sys.Coords {
			if i != j && sys.Leaflet[i] == sys.Leaflet[j] && linalg.Dist(p, q) <= BilayerCutoff {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("atom %d isolated within its leaflet", i)
		}
	}
}

func TestBilayerDeterministic(t *testing.T) {
	a := Bilayer(300, 9)
	b := Bilayer(300, 9)
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatal("bilayer not deterministic")
		}
	}
}

func TestBilayerPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bilayer accepted n=1")
		}
	}()
	Bilayer(1, 0)
}

func TestMembranePresets(t *testing.T) {
	want := map[string]int{"131k": 131072, "262k": 262144, "524k": 524288, "4M": 4_000_000}
	for _, p := range MembranePresets {
		if want[p.Name] != p.NAtoms {
			t.Errorf("preset %s = %d atoms, want %d", p.Name, p.NAtoms, want[p.Name])
		}
	}
}
