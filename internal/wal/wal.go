// Package wal is a minimal, stdlib-only write-ahead record log with
// periodic snapshot + compaction, built for the durable job store but
// agnostic to what the records mean.
//
// On-disk layout under a data directory:
//
//	wal.log   append-only records: [len uint32 LE][crc32 uint32 LE][payload]
//	snapshot  latest compacted state: "MDTSNAP1" magic + one framed record
//
// Durability contract: a record whose Append returned nil under the
// SyncAlways policy survives a process kill at any instant; an Append
// that returned an error leaves no frame behind (a frame written but
// not fsynced is truncated away). Recovery tolerates a torn tail (a
// crash mid-write truncates back to the last complete record) and
// skips bit-flipped records — payload or header — by resynchronizing
// at the next frame whose CRC validates, so corruption orphans one
// region, not every later record; skipped regions are counted, with
// their byte size, so callers can alert instead of silently dropping
// state. Snapshots are written to a temp file, fsynced, and
// renamed into place, so a crash anywhere in Compact leaves either the
// old snapshot + full log or the new snapshot + (possibly) a log still
// carrying pre-snapshot records — callers make replay-over-snapshot a
// no-op by tagging records with a sequence number (see jobs.WALStore).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mdtask/internal/faultinject"
)

const (
	logName      = "wal.log"
	snapName     = "snapshot"
	snapMagic    = "MDTSNAP1"
	headerSize   = 8        // uint32 length + uint32 CRC
	maxRecordLen = 64 << 20 // structural sanity bound: larger lengths are treated as corruption
)

// SyncPolicy selects when Append fsyncs the log.
type SyncPolicy string

// Sync policies. SyncAlways fsyncs every append (the durability
// default: an acknowledged record survives SIGKILL). SyncInterval
// fsyncs at most once per Options.SyncInterval, piggybacked on
// appends — bounded data loss for bursty workloads. SyncNever leaves
// flushing to the OS.
const (
	SyncAlways   SyncPolicy = "always"
	SyncInterval SyncPolicy = "interval"
	SyncNever    SyncPolicy = "never"
)

// ParseSyncPolicy validates a policy name ("" defaults to SyncAlways).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "":
		return SyncAlways, nil
	case SyncAlways, SyncInterval, SyncNever:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("wal: unknown sync policy %q (want always|interval|never)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval bounds the unsynced window under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration
}

// Recovery is what Open found on disk: the latest snapshot payload
// (nil if none), every decodable record appended after it was taken,
// and the corruption accounting.
type Recovery struct {
	// Snapshot is the latest snapshot payload, nil when none exists.
	Snapshot []byte
	// Records are the log's decodable records, in append order.
	Records [][]byte
	// Skipped counts undecodable regions: a torn tail, a
	// CRC-mismatched record, or a corrupted-header gap the scan
	// resynchronized past. Zero on a healthy log.
	Skipped int
	// SkippedBytes is the total size of the skipped regions — the
	// telltale separating one flipped bit (a single frame's worth)
	// from a lost log suffix (everything after the damage).
	SkippedBytes int64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	off      int64 // end of the last complete record; appends go here
	policy   SyncPolicy
	interval time.Duration
	lastSync time.Time
	closed   bool

	appends   int64
	syncs     int64
	snapshots int64
}

// Open creates or recovers the log under o.Dir, returning the log
// positioned for appends and everything recovery found. A torn tail is
// truncated away so subsequent appends land on a clean boundary.
func Open(o Options) (*Log, Recovery, error) {
	if o.Sync == "" {
		o.Sync = SyncAlways
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	var rec Recovery
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("wal: creating %s: %w", o.Dir, err)
	}
	snap, err := readSnapshot(filepath.Join(o.Dir, snapName))
	if err != nil {
		return nil, rec, err
	}
	rec.Snapshot = snap

	f, err := os.OpenFile(filepath.Join(o.Dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("wal: opening log: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, rec, fmt.Errorf("wal: reading log: %w", err)
	}
	records, off, skipped, skippedBytes := scan(data)
	rec.Records = records
	rec.Skipped = skipped
	rec.SkippedBytes = skippedBytes
	if off < int64(len(data)) {
		// Torn tail: drop it so the next append starts a clean frame.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, rec, err
	}
	l := &Log{
		dir: o.Dir, f: f, off: off,
		policy: o.Sync, interval: o.SyncInterval, lastSync: time.Now(),
	}
	return l, rec, nil
}

// scan decodes the framed records in data, returning them, the offset
// just past the last decodable record (where appends resume — any
// trailing bytes beyond it are truncated by Open), the count of
// skipped regions, and the skipped regions' total size. A frame that
// fails to validate — implausible length, running past EOF, or a CRC
// mismatch — starts a skipped region; the scan resynchronizes at the
// next offset holding a frame whose payload CRC validates, so a
// flipped bit (in a payload OR a header) orphans one region, not
// every later record. A region with no valid frame after it is the
// torn tail and ends the scan.
func scan(data []byte) (records [][]byte, off int64, skipped int, skippedBytes int64) {
	pos := 0
	for pos < len(data) {
		if n, ok := validFrameAt(data, pos); ok {
			payload := data[pos+headerSize : pos+headerSize+n]
			records = append(records, append([]byte(nil), payload...))
			pos += headerSize + n
			off = int64(pos)
			continue
		}
		skipped++
		next := resync(data, pos+1)
		if next < 0 {
			skippedBytes += int64(len(data) - pos)
			return records, off, skipped, skippedBytes
		}
		skippedBytes += int64(next - pos)
		pos = next
	}
	return records, off, skipped, skippedBytes
}

// validFrameAt reports whether pos holds a structurally plausible
// frame whose payload checksum validates, and its payload length.
func validFrameAt(data []byte, pos int) (n int, ok bool) {
	if len(data)-pos < headerSize {
		return 0, false
	}
	ln := binary.LittleEndian.Uint32(data[pos:])
	if ln > maxRecordLen || pos+headerSize+int(ln) > len(data) {
		return 0, false
	}
	crc := binary.LittleEndian.Uint32(data[pos+4:])
	if crc32.ChecksumIEEE(data[pos+headerSize:pos+headerSize+int(ln)]) != crc {
		return 0, false
	}
	return int(ln), true
}

// resync scans forward from pos for the next offset holding a valid
// frame — the point the log becomes trustworthy again after a
// corrupted region. The CRC check makes a false resync (random bytes
// parsing as a valid frame) a ~2^-32 event per offset. Returns -1
// when nothing before EOF validates: the region is the torn tail.
func resync(data []byte, pos int) int {
	for ; len(data)-pos >= headerSize; pos++ {
		if _, ok := validFrameAt(data, pos); ok {
			return pos
		}
	}
	return -1
}

// Append writes one record and, per the sync policy, fsyncs before
// returning. On any error — a failed write OR a failed post-write
// fsync — the log rolls back to the last good boundary (truncating
// the frame away), so a failed Append never leaves a frame a future
// recovery could half-trust. Callers that key state off Append's
// success (e.g. LSN assignment) should still treat a duplicate as
// possible after a crash, since the rollback itself is not guaranteed
// to reach the disk before a power loss.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecordLen {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), maxRecordLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	if ferr := faultinject.Fire("wal.append"); ferr != nil {
		if errors.Is(ferr, faultinject.ErrPartial) {
			// Simulated torn write: half a frame hits the disk and the log
			// declares itself dead, as a crashed process would. Recovery
			// (a fresh Open on the same dir) must truncate the tail away.
			_, _ = l.f.Write(frame[:len(frame)/2])
			_ = l.f.Sync()
			l.closed = true
		}
		return ferr
	}
	n, err := l.f.Write(frame)
	if err != nil {
		l.rollback(int64(n))
		return fmt.Errorf("wal: append: %w", err)
	}
	l.off += int64(len(frame))
	if err := l.maybeSyncLocked(); err != nil {
		// The frame reached the file but its durability is unknown. Roll
		// it back so the failed Append leaves nothing behind: otherwise a
		// submission rejected here would resurface at the next recovery,
		// and a caller reusing its sequence number would silently collide
		// with the ghost frame.
		l.off -= int64(len(frame))
		l.rollback(int64(n))
		return err
	}
	l.appends++
	return nil
}

// rollback best-effort truncates a partial or unsyncable frame after a
// failed append, restoring the last good boundary at l.off. The
// truncation is followed by a raw fsync so the removal itself is as
// durable as the environment allows; both are best effort — replay
// layers must tolerate a frame that survives anyway (see Append).
func (l *Log) rollback(wrote int64) {
	if wrote > 0 {
		_ = l.f.Truncate(l.off)
		_, _ = l.f.Seek(l.off, io.SeekStart)
		_ = l.f.Sync()
	}
}

// maybeSyncLocked applies the sync policy after an append.
func (l *Log) maybeSyncLocked() error {
	switch l.policy {
	case SyncNever:
		return nil
	case SyncInterval:
		if time.Since(l.lastSync) < l.interval {
			return nil
		}
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := faultinject.Fire("wal.sync"); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs++
	l.lastSync = time.Now()
	return nil
}

// Sync forces an fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	return l.syncLocked()
}

// Compact atomically replaces the snapshot with state and resets the
// log: temp write + fsync + rename + directory fsync, then truncate.
// After Compact returns, recovery sees state plus only the records
// appended afterwards. A crash between rename and truncate leaves old
// records in the log; callers must make replaying them over the new
// snapshot a no-op.
func (l *Log) Compact(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if err := writeSnapshot(l.dir, state); err != nil {
		return err
	}
	if err := faultinject.Fire("wal.compact.truncate"); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating log after snapshot: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.off = 0
	l.snapshots++
	if l.policy != SyncNever {
		return l.syncLocked()
	}
	return nil
}

// Close fsyncs (unless SyncNever) and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.policy != SyncNever {
		if serr := l.f.Sync(); serr == nil {
			l.syncs++
		} else {
			err = serr
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats is the log's operation accounting plus its current size.
type Stats struct {
	Appends   int64
	Syncs     int64
	Snapshots int64
	LogBytes  int64
}

// Stats snapshots the log's accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Appends: l.appends, Syncs: l.syncs, Snapshots: l.snapshots, LogBytes: l.off}
}

// LogBytes returns the current log size (appended, structurally valid
// bytes).
func (l *Log) LogBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// writeSnapshot writes state to dir/snapshot via temp + fsync + atomic
// rename + directory fsync.
func writeSnapshot(dir string, state []byte) error {
	if err := faultinject.Fire("wal.snapshot.write"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, snapName+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	frame := make([]byte, len(snapMagic)+headerSize+len(state))
	copy(frame, snapMagic)
	binary.LittleEndian.PutUint32(frame[len(snapMagic):], uint32(len(state)))
	binary.LittleEndian.PutUint32(frame[len(snapMagic)+4:], crc32.ChecksumIEEE(state))
	copy(frame[len(snapMagic)+headerSize:], state)
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return syncDir(dir)
}

// readSnapshot loads and validates dir/snapshot; a missing file is
// (nil, nil). The rename protocol makes a torn snapshot impossible
// short of disk corruption, so validation failures are fatal rather
// than silently discarded state.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+headerSize || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: snapshot %s is corrupt (bad magic)", path)
	}
	n := binary.LittleEndian.Uint32(data[len(snapMagic):])
	crc := binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	payload := data[len(snapMagic)+headerSize:]
	if int(n) != len(payload) {
		return nil, fmt.Errorf("wal: snapshot %s is corrupt (length %d, have %d bytes)", path, n, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("wal: snapshot %s is corrupt (CRC mismatch)", path)
	}
	return payload, nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}
