package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mdtask/internal/faultinject"
)

func openT(t *testing.T, dir string) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func appendAll(t *testing.T, l *Log, recs [][]byte) {
	t.Helper()
	for i, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append(#%d): %v", i, err)
		}
	}
}

func mkRecords(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 1+rng.Intn(200))
		rng.Read(b)
		out[i] = b
	}
	return out
}

func sameRecords(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := mkRecords(50, 1)
	l, rec := openT(t, dir)
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Skipped != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec2 := openT(t, dir)
	defer l2.Close()
	if !sameRecords(rec2.Records, recs) {
		t.Fatalf("recovered %d records, want %d identical", len(rec2.Records), len(recs))
	}
	if rec2.Skipped != 0 {
		t.Fatalf("healthy log skipped %d records", rec2.Skipped)
	}
}

// TestTornTailAtEveryByte is the crash-point sweep: for a log of known
// records, truncating the file at EVERY byte offset must recover
// exactly the records whose frames are complete, count at most one
// skipped region, and leave the log appendable (the torn tail is
// truncated away so a post-recovery append round-trips).
func TestTornTailAtEveryByte(t *testing.T) {
	src := t.TempDir()
	recs := mkRecords(8, 2)
	l, _ := openT(t, src)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(src, logName))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, to know how many records each prefix holds.
	bounds := []int{0}
	for pos := 0; pos < len(data); {
		n := int(uint32(data[pos]) | uint32(data[pos+1])<<8 | uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24)
		pos += headerSize + n
		bounds = append(bounds, pos)
	}
	complete := func(cut int) int {
		n := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := filepath.Join(t.TempDir(), "cut")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, logName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec := openT(t, dir)
		want := complete(cut)
		if len(rec.Records) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(rec.Records), want)
		}
		if !sameRecords(rec.Records, recs[:want]) {
			t.Fatalf("cut=%d: recovered records differ from the original prefix", cut)
		}
		torn := cut != bounds[want]
		if torn && rec.Skipped != 1 {
			t.Fatalf("cut=%d: torn tail counted %d skips, want 1", cut, rec.Skipped)
		}
		if !torn && rec.Skipped != 0 {
			t.Fatalf("cut=%d: clean boundary counted %d skips, want 0", cut, rec.Skipped)
		}
		// The log must be appendable after recovery, on a clean boundary.
		extra := []byte("post-recovery")
		if err := l2.Append(extra); err != nil {
			t.Fatalf("cut=%d: post-recovery append: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, rec3 := openT(t, dir)
		if err := l3.Close(); err != nil {
			t.Fatal(err)
		}
		wantAll := append(append([][]byte{}, recs[:want]...), extra)
		if !sameRecords(rec3.Records, wantAll) || rec3.Skipped != 0 {
			t.Fatalf("cut=%d: reopen after append: %d records (skipped %d), want %d clean",
				cut, len(rec3.Records), rec3.Skipped, len(wantAll))
		}
	}
}

// TestBitFlipSkipsOneRecord flips a payload byte of a middle record:
// recovery must skip exactly that record, keep both neighbours, and
// count the skip.
func TestBitFlipSkipsOneRecord(t *testing.T) {
	dir := t.TempDir()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	l, _ := openT(t, dir)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first payload byte of record 1 (after frame 0 and its
	// header).
	off := headerSize + len(recs[0]) + headerSize
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir)
	defer l2.Close()
	want := [][]byte{recs[0], recs[2]}
	if !sameRecords(rec.Records, want) {
		t.Fatalf("recovered %d records after bit flip, want alpha+gamma", len(rec.Records))
	}
	if rec.Skipped != 1 {
		t.Fatalf("bit flip counted %d skips, want 1", rec.Skipped)
	}
}

func TestCompactReplacesSnapshotAndResetsLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	appendAll(t, l, mkRecords(10, 3))
	if err := l.Compact([]byte("state-1")); err != nil {
		t.Fatal(err)
	}
	post := [][]byte{[]byte("after-1"), []byte("after-2")}
	appendAll(t, l, post)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir)
	defer l2.Close()
	if string(rec.Snapshot) != "state-1" {
		t.Fatalf("snapshot = %q, want state-1", rec.Snapshot)
	}
	if !sameRecords(rec.Records, post) || rec.Skipped != 0 {
		t.Fatalf("recovered %d records after compaction, want the 2 post-snapshot ones", len(rec.Records))
	}
}

// TestCrashBetweenSnapshotAndTruncate arms the fault point in the
// compaction window where the new snapshot is durable but the log has
// not been reset: recovery must surface the new snapshot AND the old
// records (the caller's replay layer makes re-applying them a no-op).
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	dir := t.TempDir()
	recs := mkRecords(5, 4)
	l, _ := openT(t, dir)
	appendAll(t, l, recs)
	if err := faultinject.Activate("wal.compact.truncate=error"); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]byte("state-2")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Compact under injection = %v, want ErrInjected", err)
	}
	faultinject.Deactivate()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir)
	defer l2.Close()
	if string(rec.Snapshot) != "state-2" {
		t.Fatalf("snapshot = %q, want state-2 (rename happened before the crash)", rec.Snapshot)
	}
	if !sameRecords(rec.Records, recs) {
		t.Fatalf("pre-snapshot records lost: got %d, want %d", len(rec.Records), len(recs))
	}
}

// TestInjectedPartialAppendRecovers arms the torn-write fault: Append
// fails after half a frame hits the disk, and a fresh Open recovers
// every previous record, counts one skip, and truncates the tail.
func TestInjectedPartialAppendRecovers(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	dir := t.TempDir()
	recs := mkRecords(4, 5)
	l, _ := openT(t, dir)
	appendAll(t, l, recs)
	if err := faultinject.Activate("wal.append=partial"); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("doomed-record-payload")); !errors.Is(err, faultinject.ErrPartial) {
		t.Fatalf("Append under partial injection = %v, want ErrPartial", err)
	}
	faultinject.Deactivate()
	l2, rec := openT(t, dir)
	defer l2.Close()
	if !sameRecords(rec.Records, recs) {
		t.Fatalf("recovered %d records, want the %d acknowledged ones", len(rec.Records), len(recs))
	}
	if rec.Skipped != 1 {
		t.Fatalf("torn write counted %d skips, want 1", rec.Skipped)
	}
}

func TestInjectedAppendErrorLeavesLogClean(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	dir := t.TempDir()
	l, _ := openT(t, dir)
	if err := l.Append([]byte("ok-1")); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Activate("wal.append=error"); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("rejected")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Append under error injection = %v", err)
	}
	faultinject.Deactivate()
	if err := l.Append([]byte("ok-2")); err != nil {
		t.Fatalf("append after recovered injection: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir)
	if !sameRecords(rec.Records, [][]byte{[]byte("ok-1"), []byte("ok-2")}) || rec.Skipped != 0 {
		t.Fatalf("log after injected error: %d records, skipped %d", len(rec.Records), rec.Skipped)
	}
}

// TestSyncFailureRollsBackFrame arms the wal.sync fault point: an
// Append whose post-write fsync fails must roll its frame back, so the
// rejected record cannot resurface at the next recovery (and a caller
// reusing its sequence number cannot collide with a ghost frame).
func TestSyncFailureRollsBackFrame(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	dir := t.TempDir()
	l, _ := openT(t, dir)
	if err := l.Append([]byte("ok-1")); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Activate("wal.sync=error"); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("ghost")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Append under fsync failure = %v, want ErrInjected", err)
	}
	faultinject.Deactivate()
	if err := l.Append([]byte("ok-2")); err != nil {
		t.Fatalf("append after recovered fsync failure: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir)
	if !sameRecords(rec.Records, [][]byte{[]byte("ok-1"), []byte("ok-2")}) || rec.Skipped != 0 {
		t.Fatalf("log after failed fsync: %d records, skipped %d — the unsynced frame must not survive",
			len(rec.Records), rec.Skipped)
	}
}

// TestHeaderCorruptionResyncs flips every byte of a middle record's
// header in turn: whether the damage lands in the length or the CRC
// field, recovery must lose only that record — the scan resynchronizes
// at the next valid frame instead of truncating the rest of the log —
// and must report the skipped region with its byte size.
func TestHeaderCorruptionResyncs(t *testing.T) {
	src := t.TempDir()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma"), []byte("delta")}
	l, _ := openT(t, src)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(src, logName))
	if err != nil {
		t.Fatal(err)
	}
	start := (headerSize + len(recs[0])) + (headerSize + len(recs[1])) // record 2's header
	want := [][]byte{recs[0], recs[1], recs[3]}
	for b := 0; b < headerSize; b++ {
		dir := filepath.Join(t.TempDir(), "flip")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), data...)
		mut[start+b] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, logName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec := openT(t, dir)
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		if !sameRecords(rec.Records, want) {
			t.Fatalf("header byte %d flipped: recovered %d records, want all but the damaged one", b, len(rec.Records))
		}
		if rec.Skipped != 1 {
			t.Errorf("header byte %d flipped: skipped = %d, want 1", b, rec.Skipped)
		}
		if rec.SkippedBytes != int64(headerSize+len(recs[2])) {
			t.Errorf("header byte %d flipped: skipped bytes = %d, want the one damaged frame (%d)",
				b, rec.SkippedBytes, headerSize+len(recs[2]))
		}
	}
}

// TestReplayDeterministic: opening the same directory twice (read-only
// crash replay) yields byte-identical recoveries.
func TestReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	appendAll(t, l, mkRecords(20, 6))
	if err := l.Compact([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mkRecords(7, 7))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec1 := openT(t, dir)
	_, rec2 := openT(t, dir)
	if !bytes.Equal(rec1.Snapshot, rec2.Snapshot) || !sameRecords(rec1.Records, rec2.Records) || rec1.Skipped != rec2.Skipped {
		t.Fatal("two recoveries of the same directory differ")
	}
}

func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	if err := l.Compact([]byte("precious")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(string(p), func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(Options{Dir: dir, Sync: p})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			st := l.Stats()
			if st.Appends != 5 {
				t.Fatalf("appends = %d, want 5", st.Appends)
			}
			if p == SyncAlways && st.Syncs != 5 {
				t.Fatalf("always: syncs = %d, want 5", st.Syncs)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec := openT(t, dir)
			if len(rec.Records) != 5 {
				t.Fatalf("recovered %d records, want 5", len(rec.Records))
			}
		})
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
	if p, err := ParseSyncPolicy(""); err != nil || p != SyncAlways {
		t.Fatalf("ParseSyncPolicy(\"\") = %v, %v", p, err)
	}
}
