package graph

import (
	mathrand "math/rand"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestComponentsBFSSimple(t *testing.T) {
	// 0-1-2 connected, 3 isolated, 4-5 connected.
	edges := []Edge{{0, 1}, {1, 2}, {4, 5}}
	labels := ComponentsBFS(6, edges)
	want := []int32{0, 0, 0, 3, 4, 4}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	if err := CheckLabels(labels); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(4)
	if uf.Len() != 4 {
		t.Fatalf("Len = %d", uf.Len())
	}
	if !uf.Union(0, 1) {
		t.Error("first union reported no-op")
	}
	if uf.Union(1, 0) {
		t.Error("repeated union reported merge")
	}
	if uf.Find(0) != uf.Find(1) {
		t.Error("0 and 1 not merged")
	}
	if uf.Find(2) == uf.Find(0) {
		t.Error("2 spuriously merged")
	}
}

func randEdges(r *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{int32(r.IntN(n)), int32(r.IntN(n))}
	}
	return edges
}

func TestBFSMatchesUnionFindQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *mathrand.Rand) {
			args[0] = reflect.ValueOf(uint64(r.Int63()))
			args[1] = reflect.ValueOf(1 + r.Intn(60))
			args[2] = reflect.ValueOf(r.Intn(120))
		},
	}
	f := func(seed uint64, n, m int) bool {
		r := rand.New(rand.NewPCG(seed, 0))
		edges := randEdges(r, n, m)
		return EqualLabels(ComponentsBFS(n, edges), ComponentsUnionFind(n, edges))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPartialComponentsOnlyTouchedNodes(t *testing.T) {
	comps := PartialComponents([]Edge{{5, 7}, {7, 9}, {20, 21}})
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if !reflect.DeepEqual(comps[0], Component{5, 7, 9}) {
		t.Errorf("comp[0] = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], Component{20, 21}) {
		t.Errorf("comp[1] = %v", comps[1])
	}
	if PartialComponents(nil) != nil {
		t.Error("empty edge list should produce nil")
	}
}

// Property: splitting the edge list into arbitrary partitions, computing
// partial components per partition, and merging must equal the global
// components (the correctness core of the paper's Approach 3).
func TestMergePartialsEqualsGlobalQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(args []reflect.Value, r *mathrand.Rand) {
			args[0] = reflect.ValueOf(uint64(r.Int63()))
			args[1] = reflect.ValueOf(2 + r.Intn(80))
			args[2] = reflect.ValueOf(r.Intn(160))
			args[3] = reflect.ValueOf(1 + r.Intn(8))
		},
	}
	f := func(seed uint64, n, m, parts int) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		edges := randEdges(r, n, m)
		global := ComponentsBFS(n, edges)

		partitioned := make([][]Edge, parts)
		for _, e := range edges {
			p := r.IntN(parts)
			partitioned[p] = append(partitioned[p], e)
		}
		partials := make([][]Component, parts)
		for i, es := range partitioned {
			partials[i] = PartialComponents(es)
		}
		merged := MergeComponents(n, partials...)
		return EqualLabels(global, merged)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGroupsOrdering(t *testing.T) {
	labels := ComponentsBFS(7, []Edge{{0, 1}, {2, 3}, {3, 4}, {5, 6}})
	groups := Groups(labels)
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 {
		t.Errorf("largest group first, got %v", groups)
	}
	// Ties broken by smallest member: {0,1} before {5,6}.
	if groups[1][0] != 0 || groups[2][0] != 5 {
		t.Errorf("tie ordering wrong: %v", groups)
	}
}

func TestCheckLabels(t *testing.T) {
	if err := CheckLabels([]int32{0, 0, 2}); err != nil {
		t.Errorf("valid labels rejected: %v", err)
	}
	if err := CheckLabels([]int32{1, 1}); err == nil {
		t.Error("non-canonical labels accepted (node 0 labeled 1)")
	}
	if err := CheckLabels([]int32{5}); err == nil {
		t.Error("out-of-range label accepted")
	}
	if err := CheckLabels([]int32{0, 0, 1}); err == nil {
		t.Error("label pointing at non-root accepted")
	}
}

func TestAdjacency(t *testing.T) {
	adj := Adjacency(4, []Edge{{0, 1}, {1, 2}, {3, 3}})
	if len(adj[1]) != 2 {
		t.Errorf("adj[1] = %v", adj[1])
	}
	if len(adj[3]) != 1 { // self loop kept once
		t.Errorf("adj[3] = %v", adj[3])
	}
}

func TestByteAccounting(t *testing.T) {
	if EdgeBytes(10) != 80 {
		t.Errorf("EdgeBytes = %d", EdgeBytes(10))
	}
	comps := []Component{{1, 2, 3}, {4}}
	if ComponentBytes(comps) != 16 {
		t.Errorf("ComponentBytes = %d", ComponentBytes(comps))
	}
}

func TestEqualLabels(t *testing.T) {
	if EqualLabels([]int32{0, 1}, []int32{0}) {
		t.Error("different lengths reported equal")
	}
	if !EqualLabels([]int32{0, 0}, []int32{0, 0}) {
		t.Error("equal labels reported different")
	}
}

func TestMergeComponentsSingletons(t *testing.T) {
	// Nodes untouched by any partial stay singletons.
	labels := MergeComponents(5, []Component{{1, 3}})
	want := []int32{0, 1, 2, 1, 4}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
}
