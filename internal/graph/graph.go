// Package graph provides the graph algorithms behind the Leaflet Finder:
// edge/adjacency representations, connected components (BFS and
// union–find variants), and the partial-component merge that implements
// the paper's "Parallel Connected Components" reduce (§4.3.3, Table 2).
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between node indices U and V.
type Edge struct{ U, V int32 }

// Adjacency builds an adjacency list for n nodes from an edge list.
// Self loops are kept (harmless for components); duplicate edges are
// preserved as parallel entries.
func Adjacency(n int, edges []Edge) [][]int32 {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.U]++
		if e.U != e.V {
			deg[e.V]++
		}
	}
	adj := make([][]int32, n)
	for i, d := range deg {
		adj[i] = make([]int32, 0, d)
	}
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		if e.U != e.V {
			adj[e.V] = append(adj[e.V], e.U)
		}
	}
	return adj
}

// ComponentsBFS labels each of n nodes with the smallest node index of
// its connected component using breadth-first search: the canonical
// labeling used by all component implementations in this repository.
func ComponentsBFS(n int, edges []Edge) []int32 {
	adj := Adjacency(n, edges)
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		root := int32(start)
		labels[start] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if labels[v] == -1 {
					labels[v] = root
					queue = append(queue, v)
				}
			}
		}
	}
	return labels
}

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int32
	rank   []uint8
}

// NewUnionFind creates a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), rank: make([]uint8, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Len returns the number of elements in the forest.
func (uf *UnionFind) Len() int { return len(uf.parent) }

// Find returns the representative of x's set, compressing the path.
func (uf *UnionFind) Find(x int32) int32 {
	root := x
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for uf.parent[x] != root {
		uf.parent[x], x = root, uf.parent[x]
	}
	return root
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (uf *UnionFind) Union(x, y int32) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	switch {
	case uf.rank[rx] < uf.rank[ry]:
		uf.parent[rx] = ry
	case uf.rank[rx] > uf.rank[ry]:
		uf.parent[ry] = rx
	default:
		uf.parent[ry] = rx
		uf.rank[rx]++
	}
	return true
}

// Labels returns the canonical labeling: each node is labeled with the
// smallest node index in its set.
func (uf *UnionFind) Labels() []int32 {
	n := len(uf.parent)
	minOf := make([]int32, n)
	for i := range minOf {
		minOf[i] = -1
	}
	for i := 0; i < n; i++ {
		r := uf.Find(int32(i))
		if minOf[r] == -1 || int32(i) < minOf[r] {
			minOf[r] = int32(i)
		}
	}
	labels := make([]int32, n)
	for i := 0; i < n; i++ {
		labels[i] = minOf[uf.Find(int32(i))]
	}
	return labels
}

// ComponentsUnionFind labels components of n nodes via union–find,
// producing the same canonical labeling as ComponentsBFS.
func ComponentsUnionFind(n int, edges []Edge) []int32 {
	uf := NewUnionFind(n)
	for _, e := range edges {
		uf.Union(e.U, e.V)
	}
	return uf.Labels()
}

// Component is a sorted set of node indices belonging to one connected
// component.
type Component []int32

// PartialComponents computes the connected components induced by a
// partial edge list (the map-side computation of the paper's Approach 3):
// only nodes that appear in at least one edge are included, so isolated
// nodes of the full graph do not leak into shuffle payloads.
func PartialComponents(edges []Edge) []Component {
	if len(edges) == 0 {
		return nil
	}
	// Compact the touched node ids.
	ids := make(map[int32]int32)
	var nodes []int32
	idOf := func(v int32) int32 {
		if id, ok := ids[v]; ok {
			return id
		}
		id := int32(len(nodes))
		ids[v] = id
		nodes = append(nodes, v)
		return id
	}
	compact := make([]Edge, len(edges))
	for i, e := range edges {
		compact[i] = Edge{idOf(e.U), idOf(e.V)}
	}
	uf := NewUnionFind(len(nodes))
	for _, e := range compact {
		uf.Union(e.U, e.V)
	}
	groups := make(map[int32]Component)
	for i := range nodes {
		r := uf.Find(int32(i))
		groups[r] = append(groups[r], nodes[i])
	}
	out := make([]Component, 0, len(groups))
	for _, c := range groups {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// MergeComponents joins partial components that share at least one node
// (the paper's Approach-3 reduce). n is the total node count of the full
// graph; nodes not present in any partial component remain singletons
// and receive their own label. The result is the canonical labeling.
func MergeComponents(n int, partials ...[]Component) []int32 {
	uf := NewUnionFind(n)
	for _, ps := range partials {
		for _, c := range ps {
			for i := 1; i < len(c); i++ {
				uf.Union(c[0], c[i])
			}
		}
	}
	return uf.Labels()
}

// Groups converts a canonical labeling into sorted components, largest
// first (ties broken by smallest member).
func Groups(labels []int32) []Component {
	byLabel := make(map[int32]Component)
	for i, l := range labels {
		byLabel[l] = append(byLabel[l], int32(i))
	}
	out := make([]Component, 0, len(byLabel))
	for _, c := range byLabel {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// EqualLabels reports whether two labelings partition nodes identically.
// Both must be canonical labelings (as produced by the functions in this
// package) of the same node count.
func EqualLabels(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ComponentBytes returns the shuffle payload size of a set of partial
// components, at 4 bytes per node id, used by the experiment harness to
// report Table 2's shuffle volumes.
func ComponentBytes(cs []Component) int64 {
	var n int64
	for _, c := range cs {
		n += int64(len(c)) * 4
	}
	return n
}

// EdgeBytes returns the shuffle payload size of an edge list at 8 bytes
// per edge (two int32 ids).
func EdgeBytes(nEdges int) int64 { return int64(nEdges) * 8 }

// CheckLabels validates that a labeling is canonical: every label is the
// smallest node index of its component.
func CheckLabels(labels []int32) error {
	for i, l := range labels {
		if l < 0 || int(l) >= len(labels) {
			return fmt.Errorf("graph: node %d has out-of-range label %d", i, l)
		}
		if labels[l] != l {
			return fmt.Errorf("graph: node %d labeled %d, but %d is labeled %d (not canonical)",
				i, l, l, labels[l])
		}
		if l > int32(i) {
			return fmt.Errorf("graph: node %d labeled %d > itself (not canonical)", i, l)
		}
	}
	return nil
}
