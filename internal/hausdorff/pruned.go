package hausdorff

import (
	"math"

	"mdtask/internal/linalg"
	"mdtask/internal/traj"
)

// boundSlack is the relative safety margin applied to every pruning
// bound in the pruned kernel. The bounds below are exact in real
// arithmetic; the computed quantities (centroids, radii of gyration,
// step dRMS, and the bounds assembled from them) carry floating-point
// rounding error of at most ~n·2⁻⁵² relative for n-atom frames. Lower
// bounds are therefore deflated — and upper bounds inflated — by a
// margin that dwarfs that error for any realistic atom count (safe to a
// few million atoms), so a frame pair is only ever skipped when its
// fully evaluated dRMS provably could not have changed the result. The
// cost is evaluating a handful of pairs that land within one part in
// 10⁹ of a bound.
const boundSlack = 1e-9

// DirectedPruned computes the directed Hausdorff distance
// h(A→B) = max over a of min over b of dRMS(a, b) on packed
// trajectories, returning exactly the same value as DirectedNaive —
// bit for bit — while skipping every evaluation that cannot change it.
// Three exact pruning devices are combined:
//
//  1. Whole-pair skip by lower bound: writing each frame as its
//     centroid c plus a centered residue of radius of gyration r,
//     dRMS(x, y)² = |c(x)−c(y)|² + mean|u−v|², and by Cauchy–Schwarz
//     mean|u−v|² ≥ (r(x)−r(y))², so
//     dRMS(x, y) ≥ sqrt(|c(x)−c(y)|² + (r(x)−r(y))²).
//     Pairs whose bound already reaches the row's running minimum are
//     dismissed in O(1) using only precomputed per-frame statistics.
//  2. Bounded evaluation: pairs that survive the bound run through
//     linalg.DRMSWithin with the running minimum as the bound, so most
//     of them abandon after a fraction of the atom sum. A completed
//     evaluation is bit-identical to linalg.DRMS.
//  3. Temporal coherence: the inner scan starts at the previous outer
//     frame's argmin (consecutive MD frames have nearby nearest
//     neighbours, driving the running minimum down immediately), and
//     whole rows are skipped through the dRMS triangle inequality:
//     d(aᵢ, b*) ≤ d(aᵢ₋₁, b*) + dRMS(aᵢ₋₁, aᵢ) chains an upper bound on
//     each row's minimum along the trajectory, and a row whose bound
//     does not exceed the running maximum cannot raise it.
//
// The Taha & Hanbury early break of DirectedEarlyBreak is applied as
// well. Empty inputs follow DirectedNaive: 0 when A is empty, +Inf when
// A is non-empty but B is empty.
func DirectedPruned(a, b *traj.Packed, c *Counters) float64 {
	na, nb := a.NFrames, b.NFrames
	if na == 0 {
		return 0
	}
	if nb == 0 {
		return math.Inf(1)
	}
	var cmax float64
	// jstar anchors the temporal-coherence chain: a column index whose
	// distance to the current outer frame is known to be at most dstar.
	// After each scanned row it is the row's argmin with dstar the exact
	// evaluated distance; across skipped rows dstar grows by the step
	// dRMS (triangle inequality), keeping the bound valid.
	jstar := 0
	dstar := math.Inf(1)
	for i := 0; i < na; i++ {
		if i > 0 {
			dstar += a.StepDRMS[i]
			dstar += dstar * boundSlack
		}
		if dstar <= cmax {
			// Row skip: min over b of d(a_i, ·) ≤ d(a_i, b_jstar) ≤ dstar
			// ≤ cmax, so this row cannot raise the max.
			c.prune(int64(nb))
			continue
		}
		rowA := a.Row(i)
		ca := a.Centroids[i]
		ra := a.RadGyr[i]
		cmin := math.Inf(1)
		argmin := jstar
		for k := 0; k < nb; k++ {
			j := jstar + k
			if j >= nb {
				j -= nb
			}
			dc := ca.Sub(b.Centroids[j])
			dr := ra - b.RadGyr[j]
			lb2 := dc.Norm2() + dr*dr
			lb2 -= lb2 * (2 * boundSlack)
			if lb2 >= cmin*cmin {
				// The pair provably cannot lower the running minimum.
				c.prune(1)
				continue
			}
			d, ok := linalg.DRMSWithin(rowA, b.Row(j), cmin)
			if !ok {
				c.abandon()
				continue
			}
			c.eval()
			if d < cmin {
				cmin, argmin = d, j
			}
			if cmin < cmax {
				// Taha & Hanbury: the row's minimum is already below the
				// running maximum, so the row cannot raise it.
				c.prune(int64(nb - k - 1))
				break
			}
		}
		// cmin is the exact distance to argmin: the first surviving pair
		// of a row always completes (nothing skips or abandons against an
		// infinite minimum), and updates thereafter are completed
		// evaluations.
		jstar, dstar = argmin, cmin
		if cmin > cmax {
			cmax = cmin
		}
	}
	return cmax
}

// DistancePacked computes the symmetric Hausdorff distance
// H(A,B) = max(h(A→B), h(B→A)) with the pruned kernel, folding
// frame-pair accounting into c (which may be nil). It returns exactly
// the same value as DistanceFrames with the Naive method.
func DistancePacked(a, b *traj.Packed, c *Counters) float64 {
	h1 := DirectedPruned(a, b, c)
	h2 := DirectedPruned(b, a, c)
	return math.Max(h1, h2)
}
