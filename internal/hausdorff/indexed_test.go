package hausdorff

import (
	"math"
	"math/rand/v2"
	"testing"

	"mdtask/internal/balltree"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

// checkIndexedPair asserts the indexed kernel's contracts on one
// trajectory pair: bit-identical output to the naive scan,
// self-consistent pair counters (every frame pair in exactly one
// bucket), and non-negative node counters.
func checkIndexedPair(t *testing.T, a, b *traj.Trajectory) {
	t.Helper()
	want := Distance(a, b, Naive)
	var c Counters
	got := DistanceCounted(a, b, Indexed, &c)
	if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Fatalf("indexed H(%s,%s) = %v, naive = %v (na=%d nb=%d atoms=%d)",
			a.Name, b.Name, got, want, a.NFrames(), b.NFrames(), a.NAtoms)
	}
	if total, want := c.Total(), expectedPairs(a.NFrames(), b.NFrames()); total != want {
		t.Fatalf("counters not self-consistent: evaluated=%d + pruned=%d + abandoned=%d = %d, want %d",
			c.Evaluated, c.Pruned, c.Abandoned, total, want)
	}
	if c.Evaluated < 0 || c.Pruned < 0 || c.Abandoned < 0 || c.NodesVisited < 0 || c.NodesPruned < 0 {
		t.Fatalf("negative counter: %+v", c)
	}
}

// TestIndexedEqualsNaiveRandom is the bit-identicality property test of
// the indexed kernel, mirroring TestPrunedEqualsNaiveRandom: randomized
// synthetic ensembles spanning empty, single-frame, zero-atom and
// asymmetric shapes, across the stay-in-place Walk, diverging PathWalk
// and near-duplicate regimes.
func TestIndexedEqualsNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewPCG(99, 9))
	frameChoices := []int{0, 1, 2, 3, 5, 8, 13, 21}
	atomChoices := []int{0, 1, 2, 7, 24}
	for trial := 0; trial < 120; trial++ {
		seed := r.Uint64()
		atoms := atomChoices[r.IntN(len(atomChoices))]
		fa := frameChoices[r.IntN(len(frameChoices))]
		fb := frameChoices[r.IntN(len(frameChoices))]
		var a, b *traj.Trajectory
		switch trial % 3 {
		case 0:
			a = synth.Walk("a", atoms, fa, seed, 0)
			b = synth.Walk("b", atoms, fb, seed, 1)
		case 1:
			a = synth.PathWalk("a", atoms, fa, seed, 0)
			b = synth.PathWalk("b", atoms, fb, seed, 1)
		default:
			a = synth.Walk("a", atoms, fa, seed, 0)
			b = synth.Walk("b", atoms, fb, seed, 0)
			if fa == fb {
				b = a.Clone()
				b.Name = "b"
			}
		}
		checkIndexedPair(t, a, b)
	}
}

// TestIndexedMatchesPrunedCounterClass asserts the indexed kernel does
// its job on the benchmark regimes: it descends the tree (nodes
// visited), dismisses subtrees whole (nodes pruned), and completes no
// more full dRMS evaluations than the flat pruned kernel.
func TestIndexedMatchesPrunedCounterClass(t *testing.T) {
	var nodesPruned int64
	for _, mk := range []func(string, uint64) *traj.Trajectory{
		func(n string, s uint64) *traj.Trajectory { return synth.Walk(n, 32, 24, 9, s) },
		func(n string, s uint64) *traj.Trajectory { return synth.PathWalk(n, 32, 24, 9, s) },
	} {
		a, b := mk("a", 0), mk("b", 1)
		var cp, ci Counters
		DistanceCounted(a, b, Pruned, &cp)
		DistanceCounted(a, b, Indexed, &ci)
		if ci.Evaluated > cp.Evaluated {
			t.Errorf("indexed evaluated %d > pruned %d", ci.Evaluated, cp.Evaluated)
		}
		if ci.NodesVisited == 0 {
			t.Errorf("indexed visited no tree nodes: %+v", ci)
		}
		nodesPruned += ci.NodesPruned
	}
	// Node-granularity pruning fires where signatures separate (the
	// diverging-path regime); the stay-in-place Walk regime prunes at
	// the row level instead, so only the sum is asserted.
	if nodesPruned == 0 {
		t.Error("indexed dismissed no tree nodes whole on either regime")
	}
}

// TestIndexedSelfDistanceZero pins the degenerate identical-trajectory
// case: the warm start finds distance 0 immediately and the whole tree
// frontier is dismissed per row.
func TestIndexedSelfDistanceZero(t *testing.T) {
	tr := synth.Walk("a", 20, 10, 1, 0)
	var c Counters
	if got := DistanceCounted(tr, tr, Indexed, &c); got != 0 {
		t.Fatalf("indexed H(a,a) = %v, want 0", got)
	}
	if c.Total() != expectedPairs(10, 10) {
		t.Fatalf("counters: %+v", c)
	}
}

// TestIndexedEmptyConventions mirrors TestPrunedEmptyConventions.
func TestIndexedEmptyConventions(t *testing.T) {
	empty := traj.New("e", 3)
	full := synth.Walk("f", 3, 4, 5, 0)
	if got := Distance(empty, empty.Clone(), Indexed); got != 0 {
		t.Errorf("H(empty,empty) = %v, want 0", got)
	}
	if got := Distance(empty, full, Indexed); !math.IsInf(got, 1) {
		t.Errorf("H(empty,full) = %v, want +Inf", got)
	}
	if got := Distance(full, empty, Indexed); !math.IsInf(got, 1) {
		t.Errorf("H(full,empty) = %v, want +Inf", got)
	}
}

// TestDistanceFramesIndexedMatchesNaive covers the on-the-fly packing
// path of DistanceFramesCounted.
func TestDistanceFramesIndexedMatchesNaive(t *testing.T) {
	ts := randTrajs(23, 2, 9, 6)
	fa, fb := Frames(ts[0]), Frames(ts[1])
	if got, want := DistanceFrames(fa, fb, Indexed), DistanceFrames(fa, fb, Naive); got != want {
		t.Errorf("frames indexed = %v, naive = %v", got, want)
	}
}

// TestNodeBoundNeverTighterThanPairBound is the satellite property
// test: for every tree node and every query frame, the deflated node
// bound frameNodeBound must not exceed the deflated pairwise
// centroid/rg bound of any member frame — tree pruning can only skip
// pairs the flat pruned kernel could also prove skippable. Quick-checked
// over random ensembles in both synthesis regimes.
func TestNodeBoundNeverTighterThanPairBound(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 31))
	for trial := 0; trial < 40; trial++ {
		atoms := 1 + r.IntN(16)
		frames := 1 + r.IntN(40)
		seed := r.Uint64()
		var q, tr *traj.Trajectory
		if trial%2 == 0 {
			q = synth.Walk("q", atoms, frames, seed, 0)
			tr = synth.Walk("t", atoms, frames, seed, 1)
		} else {
			q = synth.PathWalk("q", atoms, frames, seed, 0)
			tr = synth.PathWalk("t", atoms, frames, seed, 1)
		}
		pq, pt := q.Packed(), tr.Packed()
		tree := pt.FrameTree()
		for i := 0; i < pq.NFrames; i++ {
			ca, ra := pq.Centroids[i], pq.RadGyr[i]
			sig := balltree.Point4{ca[0], ca[1], ca[2], ra}
			for ni := range tree.Nodes {
				n := &tree.Nodes[ni]
				lbn := frameNodeBound(sig, n)
				for _, ix := range tree.Perm[n.Start:n.End] {
					j := int(ix)
					dc := ca.Sub(pt.Centroids[j])
					dr := ra - pt.RadGyr[j]
					lb2 := dc.Norm2() + dr*dr
					lb2 -= lb2 * (2 * boundSlack)
					if pair := math.Sqrt(lb2); lbn > pair {
						t.Fatalf("node %d bound %v tighter than member %d pair bound %v (trial %d)",
							ni, lbn, j, pair, trial)
					}
				}
			}
		}
	}
}

// TestIndexedNodeCountersNilSafe ensures the node-counter helpers are
// nil-safe like the pair helpers.
func TestIndexedNodeCountersNilSafe(t *testing.T) {
	var c *Counters
	c.visitNode()
	c.pruneNodes(2)
	a := synth.Walk("a", 4, 6, 2, 0)
	b := synth.Walk("b", 4, 6, 2, 1)
	if got, want := DistanceCounted(a, b, Indexed, nil), Distance(a, b, Naive); got != want {
		t.Errorf("nil-counter indexed = %v, want %v", got, want)
	}
}
