package hausdorff

import (
	"math"
	"math/rand/v2"
	"testing"

	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

// expectedPairs is the frame-pair total a symmetric-distance call must
// account: both directed scans do real work only when both sides are
// non-empty (an empty side short-circuits to 0 or +Inf).
func expectedPairs(na, nb int) int64 {
	if na == 0 || nb == 0 {
		return 0
	}
	return 2 * int64(na) * int64(nb)
}

// checkPrunedPair asserts the pruned kernel's two contracts on one
// trajectory pair: bit-identical output to the naive scan, and
// self-consistent counters (every frame pair lands in exactly one
// bucket).
func checkPrunedPair(t *testing.T, a, b *traj.Trajectory) {
	t.Helper()
	want := Distance(a, b, Naive)
	var c Counters
	got := DistanceCounted(a, b, Pruned, &c)
	if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Fatalf("pruned H(%s,%s) = %v, naive = %v (na=%d nb=%d atoms=%d)",
			a.Name, b.Name, got, want, a.NFrames(), b.NFrames(), a.NAtoms)
	}
	if total, want := c.Total(), expectedPairs(a.NFrames(), b.NFrames()); total != want {
		t.Fatalf("counters not self-consistent: evaluated=%d + pruned=%d + abandoned=%d = %d, want %d",
			c.Evaluated, c.Pruned, c.Abandoned, total, want)
	}
	if c.Evaluated < 0 || c.Pruned < 0 || c.Abandoned < 0 {
		t.Fatalf("negative counter: %+v", c)
	}
}

// TestPrunedEqualsNaiveRandom is the property test of the pruned
// kernel: on randomized synthetic ensembles spanning empty,
// single-frame, zero-atom and asymmetric shapes — and both the
// stay-in-place Walk and the diverging PathWalk regimes — the pruned
// result must equal the naive result bit for bit, with counters
// accounting every frame pair exactly once.
func TestPrunedEqualsNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewPCG(77, 7))
	frameChoices := []int{0, 1, 2, 3, 5, 8, 13}
	atomChoices := []int{0, 1, 2, 7, 24}
	for trial := 0; trial < 120; trial++ {
		seed := r.Uint64()
		atoms := atomChoices[r.IntN(len(atomChoices))]
		fa := frameChoices[r.IntN(len(frameChoices))]
		fb := frameChoices[r.IntN(len(frameChoices))]
		var a, b *traj.Trajectory
		switch trial % 3 {
		case 0: // independent random-walk configurations (far apart)
			a = synth.Walk("a", atoms, fa, seed, 0)
			b = synth.Walk("b", atoms, fb, seed, 1)
		case 1: // diverging paths from a shared start (pruning regime)
			a = synth.PathWalk("a", atoms, fa, seed, 0)
			b = synth.PathWalk("b", atoms, fb, seed, 1)
		default: // near-duplicate trajectories (tiny distances, ties)
			a = synth.Walk("a", atoms, fa, seed, 0)
			b = synth.Walk("b", atoms, fb, seed, 0)
			if fa == fb {
				b = a.Clone()
				b.Name = "b"
			}
		}
		checkPrunedPair(t, a, b)
	}
}

// TestPrunedSelfDistanceZero pins the degenerate identical-trajectory
// case: every row's first evaluation finds distance 0 and the remaining
// pairs are pruned.
func TestPrunedSelfDistanceZero(t *testing.T) {
	tr := synth.Walk("a", 20, 10, 1, 0)
	var c Counters
	if got := DistanceCounted(tr, tr, Pruned, &c); got != 0 {
		t.Fatalf("pruned H(a,a) = %v, want 0", got)
	}
	if c.Total() != expectedPairs(10, 10) {
		t.Fatalf("counters: %+v", c)
	}
}

// TestPrunedEmptyConventions mirrors TestEmptyInputConsistency for the
// packed path: 0 for empty-both, +Inf for half-empty.
func TestPrunedEmptyConventions(t *testing.T) {
	empty := traj.New("e", 3)
	full := synth.Walk("f", 3, 4, 5, 0)
	if got := Distance(empty, empty.Clone(), Pruned); got != 0 {
		t.Errorf("H(empty,empty) = %v, want 0", got)
	}
	if got := Distance(empty, full, Pruned); !math.IsInf(got, 1) {
		t.Errorf("H(empty,full) = %v, want +Inf", got)
	}
	if got := Distance(full, empty, Pruned); !math.IsInf(got, 1) {
		t.Errorf("H(full,empty) = %v, want +Inf", got)
	}
}

// TestPrunedPrunesOnPaths asserts the kernel actually prunes in its
// target regime: on a diverging-path pair the full-evaluation count
// must be well below the naive pair total.
func TestPrunedPrunesOnPaths(t *testing.T) {
	a := synth.PathWalk("a", 32, 24, 9, 0)
	b := synth.PathWalk("b", 32, 24, 9, 1)
	var c Counters
	checkPrunedPair(t, a, b)
	DistanceCounted(a, b, Pruned, &c)
	if total := expectedPairs(24, 24); c.Evaluated*2 > total {
		t.Errorf("pruned kernel evaluated %d of %d pairs fully on a diverging-path pair", c.Evaluated, total)
	}
}

// TestCounterMethodsNilSafe ensures nil-counter accounting is a no-op
// everywhere.
func TestCounterMethodsNilSafe(t *testing.T) {
	var c *Counters
	c.eval()
	c.prune(3)
	c.abandon()
	c.Add(Counters{Evaluated: 1})
	a := synth.Walk("a", 4, 3, 2, 0)
	b := synth.Walk("b", 4, 3, 2, 1)
	if got, want := DistanceCounted(a, b, Pruned, nil), Distance(a, b, Naive); got != want {
		t.Errorf("nil-counter pruned = %v, want %v", got, want)
	}
}

// TestNaiveAndEarlyBreakCounters pins the accounting of the two
// baseline kernels, which the benchmark comparisons rely on: naive
// evaluates every pair; early-break's buckets still sum to the total.
func TestNaiveAndEarlyBreakCounters(t *testing.T) {
	a := synth.Walk("a", 6, 7, 3, 0)
	b := synth.Walk("b", 6, 5, 3, 1)
	var cn Counters
	DistanceCounted(a, b, Naive, &cn)
	if cn.Evaluated != expectedPairs(7, 5) || cn.Pruned != 0 || cn.Abandoned != 0 {
		t.Errorf("naive counters: %+v", cn)
	}
	var ce Counters
	DistanceCounted(a, b, EarlyBreak, &ce)
	if ce.Total() != expectedPairs(7, 5) || ce.Abandoned != 0 {
		t.Errorf("early-break counters: %+v", ce)
	}
	if ce.Evaluated > cn.Evaluated {
		t.Errorf("early-break evaluated %d > naive %d", ce.Evaluated, cn.Evaluated)
	}
}

// TestDistanceFramesPrunedMatchesNaive covers the on-the-fly packing
// path of DistanceFramesCounted.
func TestDistanceFramesPrunedMatchesNaive(t *testing.T) {
	ts := randTrajs(21, 2, 9, 6)
	fa, fb := Frames(ts[0]), Frames(ts[1])
	if got, want := DistanceFrames(fa, fb, Pruned), DistanceFrames(fa, fb, Naive); got != want {
		t.Errorf("frames pruned = %v, naive = %v", got, want)
	}
}
