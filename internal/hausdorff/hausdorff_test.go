package hausdorff

import (
	"math"
	mathrand "math/rand"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"mdtask/internal/linalg"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func randTrajs(seed uint64, n, atoms, frames int) []*traj.Trajectory {
	out := make([]*traj.Trajectory, n)
	for i := range out {
		out[i] = synth.Walk("t", atoms, frames, seed, uint64(i))
	}
	return out
}

func TestDistanceSelfZero(t *testing.T) {
	tr := synth.Walk("a", 20, 10, 1, 0)
	for _, m := range Methods {
		if got := Distance(tr, tr, m); got != 0 {
			t.Errorf("%v H(a,a) = %v, want 0", m, got)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	ts := randTrajs(2, 2, 15, 8)
	for _, m := range Methods {
		d1 := Distance(ts[0], ts[1], m)
		d2 := Distance(ts[1], ts[0], m)
		if d1 != d2 {
			t.Errorf("%v: H not symmetric: %v vs %v", m, d1, d2)
		}
		if d1 <= 0 {
			t.Errorf("%v: distinct trajectories at distance %v", m, d1)
		}
	}
}

// The early-break optimization must be exact (Taha & Hanbury compute the
// same value as the naive scan).
func TestEarlyBreakEqualsNaiveQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *mathrand.Rand) {
			args[0] = reflect.ValueOf(uint64(r.Int63()))
			args[1] = reflect.ValueOf(1 + r.Intn(10))
			args[2] = reflect.ValueOf(1 + r.Intn(12))
		},
	}
	f := func(seed uint64, atoms, frames int) bool {
		ts := randTrajs(seed, 2, atoms, frames)
		return Distance(ts[0], ts[1], Naive) == Distance(ts[0], ts[1], EarlyBreak)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The Hausdorff distance over the dRMS metric is itself a metric on
// trajectories, so the triangle inequality must hold.
func TestTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 50; trial++ {
		ts := randTrajs(uint64(r.Int64()), 3, 8, 6)
		dab := Distance(ts[0], ts[1], Naive)
		dbc := Distance(ts[1], ts[2], Naive)
		dac := Distance(ts[0], ts[2], Naive)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle violated: %v > %v + %v", dac, dab, dbc)
		}
	}
}

func TestDirectedEmptySets(t *testing.T) {
	fr := [][]linalg.Vec3{{{1, 2, 3}}}
	if got := DirectedNaive(nil, fr); got != 0 {
		t.Errorf("h(empty->X) = %v, want 0", got)
	}
	if got := DirectedNaive(fr, nil); !math.IsInf(got, 1) {
		t.Errorf("h(X->empty) = %v, want +Inf", got)
	}
	if got := DirectedEarlyBreak(nil, fr); got != 0 {
		t.Errorf("early-break h(empty->X) = %v", got)
	}
}

func TestFromMatrixEqualsDirect(t *testing.T) {
	ts := randTrajs(11, 2, 12, 9)
	fa, fb := Frames(ts[0]), Frames(ts[1])
	m := Matrix2DRMS(fa, fb)
	want := DistanceFrames(fa, fb, Naive)
	got := FromMatrix(m, len(fa), len(fb))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("FromMatrix = %v, want %v", got, want)
	}
}

func TestFromMatrixEdgeCases(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromMatrix accepted wrong dimensions")
		}
	}()
	FromMatrix(make([]float64, 5), 2, 3)
}

// Regression: FromMatrix and DistanceFrames must agree on empty inputs
// (FromMatrix used to return 0 for half-empty matrices while
// DistanceFrames returned +Inf).
func TestEmptyInputConsistency(t *testing.T) {
	ts := randTrajs(13, 1, 6, 5)
	nonEmpty := Frames(ts[0])
	inf := math.Inf(1)
	cases := []struct {
		name   string
		fa, fb [][]linalg.Vec3
		want   float64
	}{
		{"empty-A", nil, nonEmpty, inf},
		{"empty-B", nonEmpty, nil, inf},
		{"empty-both", nil, nil, 0},
	}
	for _, tc := range cases {
		for _, m := range Methods {
			if got := DistanceFrames(tc.fa, tc.fb, m); got != tc.want {
				t.Errorf("%s: DistanceFrames(%v) = %v, want %v", tc.name, m, got, tc.want)
			}
		}
		if got := FromMatrix(Matrix2DRMS(tc.fa, tc.fb), len(tc.fa), len(tc.fb)); got != tc.want {
			t.Errorf("%s: FromMatrix = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMatrix2DRMSShape(t *testing.T) {
	ts := randTrajs(12, 2, 5, 4)
	fa, fb := Frames(ts[0]), Frames(ts[1])
	m := Matrix2DRMS(fa, fb)
	if len(m) != len(fa)*len(fb) {
		t.Fatalf("matrix len = %d", len(m))
	}
	// Spot check one element.
	if got, want := m[1*len(fb)+2], linalg.DRMS(fa[1], fb[2]); got != want {
		t.Errorf("m[1][2] = %v, want %v", got, want)
	}
}

func TestMethodString(t *testing.T) {
	if Naive.String() != "naive" || EarlyBreak.String() != "early-break" || Pruned.String() != "pruned" {
		t.Error("method names wrong")
	}
	if Method(99).String() != "unknown" {
		t.Error("unknown method name wrong")
	}
}

func TestParseMethod(t *testing.T) {
	for _, m := range Methods {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if got, err := ParseMethod(""); err != nil || got != Naive {
		t.Errorf("empty method: got %v, %v", got, err)
	}
	if _, err := ParseMethod("exact"); err == nil {
		t.Error("unknown method accepted")
	}
}

// Known-value check: two single-frame trajectories reduce Hausdorff to
// plain dRMS.
func TestSingleFrameReducesToDRMS(t *testing.T) {
	a := traj.New("a", 2)
	b := traj.New("b", 2)
	_ = a.AppendFrame(traj.Frame{Coords: []linalg.Vec3{{0, 0, 0}, {1, 0, 0}}})
	_ = b.AppendFrame(traj.Frame{Coords: []linalg.Vec3{{0, 1, 0}, {1, 1, 0}}})
	want := linalg.DRMS(a.Frames[0].Coords, b.Frames[0].Coords)
	if got := Distance(a, b, Naive); got != want {
		t.Errorf("H = %v, want %v", got, want)
	}
}
