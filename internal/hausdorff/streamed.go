package hausdorff

import (
	"io"
	"math"

	"mdtask/internal/balltree"
	"mdtask/internal/linalg"
	"mdtask/internal/traj"
)

// The streamed Hausdorff kernel: the symmetric distance computed over
// bounded frame windows instead of fully resident trajectories.
//
// The min–max structure of the Hausdorff distance decomposes over any
// partition of the frame-pair grid: keeping one running minimum per
// frame of each side (rowMin[i] = min over j of dRMS(aᵢ, bⱼ), colMin[j]
// symmetrically) and folding window × window tiles into them in any
// order yields
//
//	H(A,B) = max(maxᵢ rowMin[i], maxⱼ colMin[j])
//
// — the minimum and maximum of a fixed value set are order-independent,
// and every distance entering the set is a completed linalg.DRMSWithin
// evaluation, bit-identical to linalg.DRMS. The streamed result is
// therefore bit-identical to the in-memory kernels for every method.
//
// Memory: the running minima cost O(na+nb) floats; frames cost two
// windows — the outer side holds one window while the inner side is
// re-streamed window by window (the inner trajectory is decoded once
// per outer window, the price of boundedness that BytesStreamed makes
// visible).
//
// Methods map onto exact window-local pruning:
//
//   - Naive evaluates every pair to completion.
//   - EarlyBreak bounds each evaluation by max(rowMin[i], colMin[j]):
//     an evaluation that abandons proves d ≥ both minima, so the pair
//     cannot change either. (The row-cut of the in-memory early break
//     has no window analogue; the bounded evaluation plays its role.)
//   - Pruned additionally dismisses pairs in O(1) with the exact
//     centroid/radius-of-gyration lower bound of DirectedPruned,
//     computed from the windows' packed side data.
//   - Indexed runs two directional best-first descents per tile over
//     the windows' frame-signature ball trees (window-local — built
//     from each window's own Packed, so the ≤2-window residency bound
//     is untouched): rows of the outer window against the inner
//     window's tree pruned by rowMin, then rows of the inner window
//     against the outer window's tree pruned by colMin. Each pass
//     settles every tile pair once, and completed evaluations update
//     both minima opportunistically.
//
// Counter accounting stays on the directed-pair scale of the in-memory
// kernels: one streamed evaluation settles a pair for both directions
// at once, so it accounts 2 directed pairs — and the indexed kernel's
// two one-directional passes account each pair once apiece — keeping
// the invariant Evaluated + Pruned + Abandoned = 2·na·nb per
// trajectory pair for every method.

// StreamStats accumulates the residency and volume accounting of
// streamed evaluations: the peak number of simultaneously materialized
// frames and the total coordinate bytes decoded from sources
// (re-scans count every time — that is the cost being measured).
type StreamStats struct {
	PeakResidentFrames int64
	BytesStreamed      int64
}

// observe folds one window-pair residency into the peak.
func (s *StreamStats) observe(frames int64) {
	if s != nil && frames > s.PeakResidentFrames {
		s.PeakResidentFrames = frames
	}
}

// stream accounts materialized coordinate bytes.
func (s *StreamStats) stream(bytes int64) {
	if s != nil {
		s.BytesStreamed += bytes
	}
}

// DistanceStreamed computes the symmetric Hausdorff distance between
// two trajectory refs holding at most one window of each resident
// (window < 1 streams whole trajectories as single windows). The
// result is bit-identical to Distance on the loaded trajectories for
// every method; c and st may be nil.
func DistanceStreamed(a, b *traj.Ref, window int, m Method, c *Counters, st *StreamStats) (float64, error) {
	na, nb := a.NFrames(), b.NFrames()
	if na == 0 && nb == 0 {
		return 0, nil
	}
	if na == 0 || nb == 0 {
		return math.Inf(1), nil
	}
	rowMin := make([]float64, na)
	colMin := make([]float64, nb)
	for i := range rowMin {
		rowMin[i] = math.Inf(1)
	}
	for j := range colMin {
		colMin[j] = math.Inf(1)
	}
	ita := a.Windows(window)
	defer ita.Close()
	for {
		wa, err := ita.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		st.stream(wa.CoordBytes())
		itb := b.Windows(window)
		for {
			wb, err := itb.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				itb.Close()
				return 0, err
			}
			st.stream(wb.CoordBytes())
			st.observe(int64(wa.NFrames()) + int64(wb.NFrames()))
			foldWindowPair(wa, wb, rowMin, colMin, m, c)
		}
		itb.Close()
	}
	var h float64
	for _, v := range rowMin {
		if v > h {
			h = v
		}
	}
	for _, v := range colMin {
		if v > h {
			h = v
		}
	}
	return h, nil
}

// foldWindowPair folds one window × window tile of exact frame
// distances into the running minima.
func foldWindowPair(wa, wb *traj.Window, rowMin, colMin []float64, m Method, c *Counters) {
	if m == Indexed {
		foldIndexedPass(wa, wb, rowMin, colMin, c)
		foldIndexedPass(wb, wa, colMin, rowMin, c)
		return
	}
	pa, pb := wa.Packed, wb.Packed
	for i := 0; i < pa.NFrames; i++ {
		gi := wa.Start + i
		ra := pa.Row(i)
		for j := 0; j < pb.NFrames; j++ {
			gj := wb.Start + j
			// A pair only matters if it can lower one of the two minima,
			// so every bound below is taken against the larger of them.
			t := rowMin[gi]
			if colMin[gj] > t {
				t = colMin[gj]
			}
			switch m {
			case EarlyBreak, Pruned:
				if m == Pruned {
					dc := pa.Centroids[i].Sub(pb.Centroids[j])
					dr := pa.RadGyr[i] - pb.RadGyr[j]
					lb2 := dc.Norm2() + dr*dr
					lb2 -= lb2 * (2 * boundSlack)
					if lb2 >= t*t {
						c.Add(Counters{Pruned: 2})
						continue
					}
				}
				d, ok := linalg.DRMSWithin(ra, pb.Row(j), t)
				if !ok {
					c.Add(Counters{Abandoned: 2})
					continue
				}
				c.Add(Counters{Evaluated: 2})
				if d < rowMin[gi] {
					rowMin[gi] = d
				}
				if d < colMin[gj] {
					colMin[gj] = d
				}
			default: // Naive
				d, _ := linalg.DRMSWithin(ra, pb.Row(j), math.Inf(1))
				c.Add(Counters{Evaluated: 2})
				if d < rowMin[gi] {
					rowMin[gi] = d
				}
				if d < colMin[gj] {
					colMin[gj] = d
				}
			}
		}
	}
}

// foldIndexedPass folds one directional pass of a tile for the indexed
// kernel: every frame of the query window wq runs a best-first descent
// over the target window wt's frame-signature ball tree, pruned by the
// query side's running minimum. Each tile pair is settled exactly once
// per pass (weight 1), so the tile's two passes together preserve the
// 2·na·nb directed-pair invariant; completed evaluations update both
// sides' minima opportunistically.
func foldIndexedPass(wq, wt *traj.Window, qMin, tMin []float64, c *Counters) {
	pq, pt := wq.Packed, wt.Packed
	if pq.NFrames == 0 || pt.NFrames == 0 {
		return
	}
	tree := pt.FrameTree()
	frontier := make([]nodeItem, 0, 64)
	for i := 0; i < pq.NFrames; i++ {
		gi := wq.Start + i
		ra := pq.Row(i)
		cq := pq.Centroids[i]
		rq := pq.RadGyr[i]
		sig := balltree.Point4{cq[0], cq[1], cq[2], rq}
		cmin := qMin[gi]
		settled := 0
		frontier = frontier[:0]
		frontier = heapPush(frontier, nodeItem{frameNodeBound(sig, &tree.Nodes[0]), 0})
		for len(frontier) > 0 {
			var top nodeItem
			top, frontier = heapPop(frontier)
			if top.lb >= cmin {
				// No remaining candidate can lower this side's minimum;
				// the unsettled pairs are accounted wholesale below.
				nn := remainingNodes(frontier)
				if top.id >= 0 {
					nn++
				}
				c.pruneNodes(nn)
				break
			}
			if top.id < 0 {
				j := int(^top.id)
				d, ok := linalg.DRMSWithin(ra, pt.Row(j), cmin)
				settled++
				if !ok {
					c.abandon()
					continue
				}
				c.eval()
				if d < cmin {
					cmin = d
				}
				if gj := wt.Start + j; d < tMin[gj] {
					tMin[gj] = d
				}
				continue
			}
			c.visitNode()
			n := &tree.Nodes[top.id]
			if !n.Leaf() {
				frontier = heapPush(frontier, nodeItem{frameNodeBound(sig, &tree.Nodes[n.Left]), n.Left})
				frontier = heapPush(frontier, nodeItem{frameNodeBound(sig, &tree.Nodes[n.Right]), n.Right})
				continue
			}
			for _, ix := range tree.Perm[n.Start:n.End] {
				j := int(ix)
				dc := cq.Sub(pt.Centroids[j])
				dr := rq - pt.RadGyr[j]
				lb2 := dc.Norm2() + dr*dr
				lb2 -= lb2 * (2 * boundSlack)
				if lb2 >= cmin*cmin {
					c.prune(1)
					settled++
					continue
				}
				frontier = heapPush(frontier, nodeItem{math.Sqrt(lb2), ^int32(j)})
			}
		}
		if settled < pt.NFrames {
			c.prune(int64(pt.NFrames - settled))
		}
		qMin[gi] = cmin
	}
}
