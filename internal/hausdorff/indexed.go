package hausdorff

import (
	"math"

	"mdtask/internal/balltree"
	"mdtask/internal/linalg"
	"mdtask/internal/traj"
)

// nodeItem is one entry of the best-first descent frontier, ordered by
// a conservative lower bound on dRMS between the current row frame and
// the candidate. id encodes the candidate kind: id ≥ 0 is a ball-tree
// node (bounding all its member frames); id < 0 is an individual frame
// pair j = ^id that survived its leaf's bound check and waits for
// evaluation. Keeping pairs in the same heap makes the descent
// best-first at pair granularity: a dRMS evaluation runs only when that
// pair's bound is the smallest remaining, which is what lets the
// indexed kernel complete fewer full evaluations than the flat pruned
// scan.
type nodeItem struct {
	lb float64
	id int32
}

// remainingNodes counts the node-typed items in a frontier, for the
// NodesPruned accounting of a wholesale dismissal (pair-typed items are
// settled by the caller's unsettled-pair count instead).
func remainingNodes(h []nodeItem) int64 {
	var n int64
	for _, it := range h {
		if it.id >= 0 {
			n++
		}
	}
	return n
}

// heapPush adds an item to the min-heap (ordered by lb) and returns the
// extended slice. A hand-rolled slice heap avoids the per-item interface
// boxing of container/heap in the kernel's hot loop.
func heapPush(h []nodeItem, it nodeItem) []nodeItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].lb <= h[i].lb {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// heapPop removes and returns the minimum-bound item.
func heapPop(h []nodeItem) (nodeItem, []nodeItem) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && h[l].lb < h[small].lb {
			small = l
		}
		if r := 2*i + 2; r < n && h[r].lb < h[small].lb {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top, h
}

// frameNodeBound returns a conservative lower bound on dRMS between the
// query signature q and any member frame of the node: the exact bound
// ‖q − center‖ − radius (triangle inequality over the 4-D signature
// metric, see balltree.FrameTree) deflated by an absolute margin of
// (‖q − center‖ + radius)·boundSlack. The margin is absolute rather
// than relative because the subtraction can cancel catastrophically
// when the query sits near the ball's surface — the deflation must
// dominate the rounding error of the inputs, not of the difference.
func frameNodeBound(q balltree.Point4, n *balltree.FrameNode) float64 {
	d := q.Dist(n.Center)
	return (d - n.Radius) - (d+n.Radius)*boundSlack
}

// DirectedIndexed computes the directed Hausdorff distance
// h(A→B) = max over a of min over b of dRMS(a, b) on packed
// trajectories, returning exactly the same value as DirectedNaive — bit
// for bit — by best-first branch-and-bound descent over B's frame-
// signature ball tree (traj.Packed.FrameTree). It applies the same
// three exact pruning devices as DirectedPruned — the centroid/rg lower
// bound, bounded evaluation through linalg.DRMSWithin, and the
// temporal-coherence row chain — but aggregates the pair bound into
// per-node bounds, so the inner search visits O(log |B|) nodes instead
// of scanning all |B| frames whenever the bound separates candidates:
//
//  1. Warm start: the previous row's argmin is evaluated exactly first,
//     seeding the running minimum before any tree node is touched
//     (consecutive MD frames have nearby nearest neighbours).
//  2. Best-first descent: frontier candidates — tree nodes and, once a
//     leaf is expanded, its surviving individual pairs — are processed
//     in ascending lower-bound order, so a dRMS evaluation runs only
//     when that pair's bound is the smallest remaining. The moment the
//     smallest frontier bound reaches the running minimum, every
//     remaining candidate is provably unable to lower it and the whole
//     frontier is dismissed at once.
//  3. Leaf pairs pass through exactly the pruned kernel's per-pair
//     discipline: the relative-slack centroid/rg bound dismisses them
//     in O(1), and the survivors evaluate via linalg.DRMSWithin seeded
//     with the running minimum.
//
// The Taha & Hanbury early break applies as in DirectedPruned: once the
// row's minimum drops below the running maximum the row is dismissed.
// Frame-pair accounting lands in the same three buckets as every other
// method (Evaluated + Pruned + Abandoned = |A|·|B| per directed call);
// node accounting lands in NodesVisited/NodesPruned on top. Empty
// inputs follow DirectedNaive: 0 when A is empty, +Inf when A is
// non-empty but B is empty.
func DirectedIndexed(a, b *traj.Packed, c *Counters) float64 {
	return directedIndexed(a, b, c, nil, nil)
}

// directedIndexed is DirectedIndexed with the cross-direction coupling
// of DistanceIndexed: rowUB[i], when non-nil, is a proven upper bound
// on row i's minimum (an exact distance the opposite direction already
// evaluated), letting the row skip without even its warm evaluation
// when the bound cannot raise the max; outUB, when non-nil, collects
// this direction's completed evaluations as column upper bounds
// (outUB[j] = smallest exact d(·, b_j) seen) for the opposite
// direction to consume. Both refinements only skip provably
// irrelevant work, so the returned value is unchanged.
func directedIndexed(a, b *traj.Packed, c *Counters, rowUB, outUB []float64) float64 {
	na, nb := a.NFrames, b.NFrames
	if na == 0 {
		return 0
	}
	if nb == 0 {
		return math.Inf(1)
	}
	tree := b.FrameTree()
	var cmax float64
	// jstar/dstar chain exactly as in DirectedPruned: a column index
	// whose distance to the current outer frame is known to be at most
	// dstar, grown by the step dRMS across rows (triangle inequality).
	jstar := 0
	dstar := math.Inf(1)
	frontier := make([]nodeItem, 0, 64)
	for i := 0; i < na; i++ {
		if i > 0 {
			dstar += a.StepDRMS[i]
			dstar += dstar * boundSlack
		}
		rowBound := dstar
		if rowUB != nil && rowUB[i] < rowBound {
			rowBound = rowUB[i]
		}
		if rowBound <= cmax {
			// Row skip: the row's minimum is provably ≤ cmax — through
			// the temporal chain (≤ dstar) or an exact distance the
			// opposite direction evaluated (≤ rowUB[i]) — so it cannot
			// raise the max.
			c.prune(int64(nb))
			continue
		}
		rowA := a.Row(i)
		ca := a.Centroids[i]
		ra := a.RadGyr[i]
		q := balltree.Point4{ca[0], ca[1], ca[2], ra}
		// Warm start: an evaluation against an infinite bound always
		// completes, so cmin is exact from the first pair on.
		warm := jstar
		d, _ := linalg.DRMSWithin(rowA, b.Row(warm), math.Inf(1))
		c.eval()
		if outUB != nil && d < outUB[warm] {
			outUB[warm] = d
		}
		cmin, argmin := d, warm
		settled := 1
		if cmin >= cmax && settled < nb {
			frontier = frontier[:0]
			frontier = heapPush(frontier, nodeItem{frameNodeBound(q, &tree.Nodes[0]), 0})
			for len(frontier) > 0 {
				var top nodeItem
				top, frontier = heapPop(frontier)
				if top.lb >= cmin {
					// The smallest frontier bound cannot lower the running
					// minimum, so no remaining candidate can: dismiss them
					// all. Unsettled pairs are accounted below.
					nn := remainingNodes(frontier)
					if top.id >= 0 {
						nn++
					}
					c.pruneNodes(nn)
					break
				}
				if top.id < 0 {
					// Pair candidate: its bound is the smallest remaining.
					j := int(^top.id)
					dj, ok := linalg.DRMSWithin(rowA, b.Row(j), cmin)
					settled++
					if !ok {
						c.abandon()
						continue
					}
					c.eval()
					if outUB != nil && dj < outUB[j] {
						outUB[j] = dj
					}
					if dj < cmin {
						cmin, argmin = dj, j
					}
					if cmin < cmax {
						// Taha & Hanbury: the row cannot raise the max.
						c.pruneNodes(remainingNodes(frontier))
						break
					}
					continue
				}
				c.visitNode()
				n := &tree.Nodes[top.id]
				if !n.Leaf() {
					frontier = heapPush(frontier, nodeItem{frameNodeBound(q, &tree.Nodes[n.Left]), n.Left})
					frontier = heapPush(frontier, nodeItem{frameNodeBound(q, &tree.Nodes[n.Right]), n.Right})
					continue
				}
				for _, ix := range tree.Perm[n.Start:n.End] {
					j := int(ix)
					if j == warm {
						continue // settled by the warm start
					}
					dc := ca.Sub(b.Centroids[j])
					dr := ra - b.RadGyr[j]
					lb2 := dc.Norm2() + dr*dr
					lb2 -= lb2 * (2 * boundSlack)
					if lb2 >= cmin*cmin {
						c.prune(1)
						settled++
						continue
					}
					frontier = heapPush(frontier, nodeItem{math.Sqrt(lb2), ^int32(j)})
				}
			}
		}
		if settled < nb {
			// Pairs dismissed wholesale — by a node bound, the early
			// break, or the warm start undercutting cmax — without being
			// touched individually.
			c.prune(int64(nb - settled))
		}
		jstar, dstar = argmin, cmin
		if cmin > cmax {
			cmax = cmin
		}
	}
	return cmax
}

// DistanceIndexed computes the symmetric Hausdorff distance
// H(A,B) = max(h(A→B), h(B→A)) with the indexed kernel, folding
// frame-pair and tree-node accounting into c (which may be nil). It
// returns exactly the same value as DistanceFrames with the Naive
// method; each side's ball tree is built (and cached on the Packed)
// the first time it serves as the inner search structure. The two
// directed passes are coupled: every distance the first pass evaluates
// to completion is an exact upper bound on one of the second pass's
// row minima, letting reverse rows skip wholesale — a reduction the
// independent directed scans of the flat kernels cannot express.
func DistanceIndexed(a, b *traj.Packed, c *Counters) float64 {
	var colUB []float64
	if b.NFrames > 0 {
		colUB = make([]float64, b.NFrames)
		for j := range colUB {
			colUB[j] = math.Inf(1)
		}
	}
	h1 := directedIndexed(a, b, c, nil, colUB)
	h2 := directedIndexed(b, a, c, colUB, nil)
	return math.Max(h1, h2)
}
