// Package hausdorff implements the Hausdorff distance between MD
// trajectories (the paper's Algorithm 1) with the dRMS frame metric,
// in four exact kernels that all produce bit-identical matrices: the
// naive full scan, the early-break optimization of Taha & Hanbury that
// the paper cites as the known sequential speedup, a pruned kernel
// combining exact centroid/radius-of-gyration lower bounds with
// bounded-dRMS early-abandon (pruned.go), and an indexed kernel
// answering each row's min by best-first descent over a ball tree of
// 4-D frame signatures (indexed.go, balltree.FrameTree). The package
// also carries the streamed out-of-core fold (streamed.go), the
// frame-pair and tree-node Counters every engine reports, and the
// 2D-RMSD matrix variant computed by CPPTraj (Algorithm 1 with no
// min–max reduction). The full kernel-method contract — bounds, slack
// discipline, counter invariants — is docs/kernels.md.
package hausdorff

import (
	"fmt"
	"math"

	"mdtask/internal/linalg"
	"mdtask/internal/traj"
)

// Method selects the Hausdorff inner-loop algorithm. All methods are
// exact: they produce bit-identical distances.
type Method int

const (
	// Naive computes every frame-pair distance (the paper's Algorithm 1).
	Naive Method = iota
	// EarlyBreak aborts the inner scan as soon as a frame distance drops
	// below the running maximum (Taha & Hanbury 2015).
	EarlyBreak
	// Pruned adds O(1) frame-pair pruning on top of EarlyBreak: the exact
	// centroid/radius-of-gyration lower bound skips whole pairs, dRMS
	// evaluations early-abandon once their partial sum exceeds the
	// running minimum, and the inner scan starts at the previous outer
	// frame's argmin to exploit the temporal coherence of MD
	// trajectories. It operates on the packed representation of
	// traj.Packed.
	Pruned
	// Indexed replaces Pruned's O(frames) inner scan with a best-first
	// ball-tree descent: each trajectory's frames are indexed once by
	// their (centroid, rg) signatures (balltree.FrameTree, cached on
	// traj.Packed), and the same exact centroid/rg lower bound that
	// Pruned applies per pair is aggregated into per-node bounds, so one
	// comparison dismisses a whole subtree. Leaves early-abandon through
	// linalg.DRMSWithin seeded with the running best, warm-started from
	// the previous row's argmin. Sub-quadratic in frames whenever the
	// bound separates candidates; degrades to Pruned-like behaviour plus
	// O(log frames) node checks otherwise.
	Indexed
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Naive:
		return "naive"
	case EarlyBreak:
		return "early-break"
	case Pruned:
		return "pruned"
	case Indexed:
		return "indexed"
	default:
		return "unknown"
	}
}

// ParseMethod canonicalizes a method name ("" defaults to naive).
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", "naive":
		return Naive, nil
	case "early-break":
		return EarlyBreak, nil
	case "pruned":
		return Pruned, nil
	case "indexed":
		return Indexed, nil
	default:
		return 0, fmt.Errorf("hausdorff: unknown method %q (want naive|early-break|pruned|indexed)", s)
	}
}

// Methods lists every kernel method.
var Methods = []Method{Naive, EarlyBreak, Pruned, Indexed}

// Counters tallies the frame-pair work of one or more kernel
// invocations. Every frame pair a directed scan considers lands in
// exactly one bucket, so for non-empty inputs
// Evaluated + Pruned + Abandoned equals the directed pair count
// (2·|A|·|B| for the symmetric distance). The zero value is ready to
// use; methods are nil-safe so callers that don't account can pass nil.
// A Counters is not safe for concurrent use — accumulate per task and
// merge (see engine.Metrics.AddPairs for the concurrent aggregate).
type Counters struct {
	// Evaluated counts dRMS evaluations run to completion over all atoms.
	Evaluated int64
	// Pruned counts frame pairs dismissed in O(1), without touching any
	// atom: skipped by the centroid/radius-of-gyration lower bound, by
	// the temporal-coherence row bound, or by the early-break row cut.
	Pruned int64
	// Abandoned counts dRMS evaluations abandoned mid-sum once the
	// partial sum proved the pair could not lower the running minimum.
	Abandoned int64

	// NodesVisited and NodesPruned account the indexed kernel's
	// ball-tree descents, on top of (never instead of) the frame-pair
	// buckets above: a visited node was expanded (children pushed, or
	// its leaf frames settled pair by pair), a pruned node was dismissed
	// whole by its aggregate lower bound — its member pairs land in
	// Pruned. Both stay zero for the flat methods, and
	// Evaluated + Pruned + Abandoned still equals the scheduled directed
	// pair total whatever the method.
	NodesVisited int64
	NodesPruned  int64
}

// Add folds another tally into c.
func (c *Counters) Add(o Counters) {
	if c == nil {
		return
	}
	c.Evaluated += o.Evaluated
	c.Pruned += o.Pruned
	c.Abandoned += o.Abandoned
	c.NodesVisited += o.NodesVisited
	c.NodesPruned += o.NodesPruned
}

// Total returns the number of frame pairs accounted.
func (c Counters) Total() int64 { return c.Evaluated + c.Pruned + c.Abandoned }

func (c *Counters) eval() {
	if c != nil {
		c.Evaluated++
	}
}

func (c *Counters) prune(n int64) {
	if c != nil {
		c.Pruned += n
	}
}

func (c *Counters) abandon() {
	if c != nil {
		c.Abandoned++
	}
}

func (c *Counters) visitNode() {
	if c != nil {
		c.NodesVisited++
	}
}

func (c *Counters) pruneNodes(n int64) {
	if c != nil {
		c.NodesPruned += n
	}
}

// DirectedNaive computes the directed Hausdorff distance
// h(A→B) = max over a in A of min over b in B of dRMS(a, b),
// evaluating every pair. It returns 0 when A is empty and +Inf when A is
// non-empty but B is empty.
func DirectedNaive(a, b [][]linalg.Vec3) float64 {
	return directedNaive(a, b, nil)
}

func directedNaive(a, b [][]linalg.Vec3, c *Counters) float64 {
	var cmax float64
	for _, fa := range a {
		cmin := math.Inf(1)
		for _, fb := range b {
			c.eval()
			if d := linalg.DRMS(fa, fb); d < cmin {
				cmin = d
			}
		}
		if cmin > cmax {
			cmax = cmin
		}
	}
	return cmax
}

// DirectedEarlyBreak computes the same directed distance as
// DirectedNaive but breaks out of the inner scan once a distance below
// the running maximum proves the current frame cannot raise it.
func DirectedEarlyBreak(a, b [][]linalg.Vec3) float64 {
	return directedEarlyBreak(a, b, nil)
}

func directedEarlyBreak(a, b [][]linalg.Vec3, c *Counters) float64 {
	var cmax float64
	for _, fa := range a {
		cmin := math.Inf(1)
		for j, fb := range b {
			c.eval()
			d := linalg.DRMS(fa, fb)
			if d < cmax {
				cmin = d
				c.prune(int64(len(b) - j - 1))
				break
			}
			if d < cmin {
				cmin = d
			}
		}
		if cmin > cmax {
			cmax = cmin
		}
	}
	return cmax
}

// Frames extracts the coordinate view of a trajectory for the distance
// kernels (no copying).
func Frames(t *traj.Trajectory) [][]linalg.Vec3 {
	out := make([][]linalg.Vec3, len(t.Frames))
	for i := range t.Frames {
		out[i] = t.Frames[i].Coords
	}
	return out
}

// Distance computes the symmetric Hausdorff distance
// H(A,B) = max(h(A→B), h(B→A)) between two trajectories with the chosen
// method. Both trajectories must have the same atom count.
func Distance(a, b *traj.Trajectory, m Method) float64 {
	return DistanceCounted(a, b, m, nil)
}

// DistanceCounted is Distance with frame-pair accounting folded into c
// (which may be nil). The Pruned and Indexed methods consume the
// trajectories' cached packed representation (traj.Trajectory.Packed);
// Indexed additionally consumes the cached frame-signature ball tree
// (traj.Packed.FrameTree).
func DistanceCounted(a, b *traj.Trajectory, m Method, c *Counters) float64 {
	switch m {
	case Pruned:
		return DistancePacked(a.Packed(), b.Packed(), c)
	case Indexed:
		return DistanceIndexed(a.Packed(), b.Packed(), c)
	}
	return DistanceFramesCounted(Frames(a), Frames(b), m, c)
}

// DistanceFrames is Distance on raw frame views. Empty inputs follow
// the directed-distance convention: 0 when both sides are empty, +Inf
// when exactly one side is empty (no frame of the non-empty side has a
// nearest neighbour).
func DistanceFrames(fa, fb [][]linalg.Vec3, m Method) float64 {
	return DistanceFramesCounted(fa, fb, m, nil)
}

// DistanceFramesCounted is DistanceFrames with frame-pair accounting
// folded into c (which may be nil). For the Pruned method it packs both
// frame sets on the fly; callers comparing whole trajectories should
// prefer Distance/DistancePacked, which reuse the per-trajectory packing.
func DistanceFramesCounted(fa, fb [][]linalg.Vec3, m Method, c *Counters) float64 {
	switch m {
	case EarlyBreak:
		h1 := directedEarlyBreak(fa, fb, c)
		h2 := directedEarlyBreak(fb, fa, c)
		return math.Max(h1, h2)
	case Pruned:
		return DistancePacked(packViews(fa), packViews(fb), c)
	case Indexed:
		return DistanceIndexed(packViews(fa), packViews(fb), c)
	default:
		h1 := directedNaive(fa, fb, c)
		h2 := directedNaive(fb, fa, c)
		return math.Max(h1, h2)
	}
}

// packViews packs raw frame views, deriving the atom count from the
// first frame (zero frames pack as an empty trajectory).
func packViews(frames [][]linalg.Vec3) *traj.Packed {
	nAtoms := 0
	if len(frames) > 0 {
		nAtoms = len(frames[0])
	}
	return traj.PackFrames(frames, nAtoms)
}

// Matrix2DRMS computes the full frame-by-frame dRMS matrix between two
// trajectories: element i*len(b)+j is dRMS(a_i, b_j). This is the
// CPPTraj "2D-RMSD" kernel of §4.2: Algorithm 1 with no min–max
// reduction, from which the Hausdorff distance is recovered by
// FromMatrix.
func Matrix2DRMS(a, b [][]linalg.Vec3) []float64 {
	out := make([]float64, len(a)*len(b))
	for i, fa := range a {
		row := out[i*len(b) : (i+1)*len(b)]
		for j, fb := range b {
			row[j] = linalg.DRMS(fa, fb)
		}
	}
	return out
}

// FromMatrix recovers the symmetric Hausdorff distance from a
// precomputed na×nb frame distance matrix (row-major). Empty inputs
// follow DistanceFrames: 0 when both dimensions are empty, +Inf when
// exactly one is.
func FromMatrix(m []float64, na, nb int) float64 {
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return math.Inf(1)
	}
	if len(m) != na*nb {
		panic("hausdorff: FromMatrix dimensions do not match matrix length")
	}
	var h1 float64 // max over rows of min over cols
	for i := 0; i < na; i++ {
		row := m[i*nb : (i+1)*nb]
		cmin := row[0]
		for _, d := range row[1:] {
			if d < cmin {
				cmin = d
			}
		}
		if cmin > h1 {
			h1 = cmin
		}
	}
	var h2 float64 // max over cols of min over rows
	for j := 0; j < nb; j++ {
		cmin := m[j]
		for i := 1; i < na; i++ {
			if d := m[i*nb+j]; d < cmin {
				cmin = d
			}
		}
		if cmin > h2 {
			h2 = cmin
		}
	}
	return math.Max(h1, h2)
}
