// Package hausdorff implements the Hausdorff distance between MD
// trajectories (the paper's Algorithm 1) with the dRMS frame metric,
// plus the early-break optimization of Taha & Hanbury that the paper
// cites as the known sequential speedup, and the 2D-RMSD matrix variant
// computed by CPPTraj (Algorithm 1 with no min–max reduction).
package hausdorff

import (
	"math"

	"mdtask/internal/linalg"
	"mdtask/internal/traj"
)

// Method selects the Hausdorff inner-loop algorithm.
type Method int

const (
	// Naive computes every frame-pair distance (the paper's Algorithm 1).
	Naive Method = iota
	// EarlyBreak aborts the inner scan as soon as a frame distance drops
	// below the running maximum (Taha & Hanbury 2015).
	EarlyBreak
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Naive:
		return "naive"
	case EarlyBreak:
		return "early-break"
	default:
		return "unknown"
	}
}

// DirectedNaive computes the directed Hausdorff distance
// h(A→B) = max over a in A of min over b in B of dRMS(a, b),
// evaluating every pair. It returns 0 when A is empty and +Inf when A is
// non-empty but B is empty.
func DirectedNaive(a, b [][]linalg.Vec3) float64 {
	var cmax float64
	for _, fa := range a {
		cmin := math.Inf(1)
		for _, fb := range b {
			if d := linalg.DRMS(fa, fb); d < cmin {
				cmin = d
			}
		}
		if cmin > cmax {
			cmax = cmin
		}
	}
	return cmax
}

// DirectedEarlyBreak computes the same directed distance as
// DirectedNaive but breaks out of the inner scan once a distance below
// the running maximum proves the current frame cannot raise it.
func DirectedEarlyBreak(a, b [][]linalg.Vec3) float64 {
	var cmax float64
	for _, fa := range a {
		cmin := math.Inf(1)
		for _, fb := range b {
			d := linalg.DRMS(fa, fb)
			if d < cmax {
				cmin = d
				break
			}
			if d < cmin {
				cmin = d
			}
		}
		if cmin > cmax {
			cmax = cmin
		}
	}
	return cmax
}

// Frames extracts the coordinate view of a trajectory for the distance
// kernels (no copying).
func Frames(t *traj.Trajectory) [][]linalg.Vec3 {
	out := make([][]linalg.Vec3, len(t.Frames))
	for i := range t.Frames {
		out[i] = t.Frames[i].Coords
	}
	return out
}

// Distance computes the symmetric Hausdorff distance
// H(A,B) = max(h(A→B), h(B→A)) between two trajectories with the chosen
// method. Both trajectories must have the same atom count.
func Distance(a, b *traj.Trajectory, m Method) float64 {
	fa, fb := Frames(a), Frames(b)
	return DistanceFrames(fa, fb, m)
}

// DistanceFrames is Distance on raw frame views. Empty inputs follow
// the directed-distance convention: 0 when both sides are empty, +Inf
// when exactly one side is empty (no frame of the non-empty side has a
// nearest neighbour).
func DistanceFrames(fa, fb [][]linalg.Vec3, m Method) float64 {
	var h1, h2 float64
	switch m {
	case EarlyBreak:
		h1 = DirectedEarlyBreak(fa, fb)
		h2 = DirectedEarlyBreak(fb, fa)
	default:
		h1 = DirectedNaive(fa, fb)
		h2 = DirectedNaive(fb, fa)
	}
	return math.Max(h1, h2)
}

// Matrix2DRMS computes the full frame-by-frame dRMS matrix between two
// trajectories: element i*len(b)+j is dRMS(a_i, b_j). This is the
// CPPTraj "2D-RMSD" kernel of §4.2: Algorithm 1 with no min–max
// reduction, from which the Hausdorff distance is recovered by
// FromMatrix.
func Matrix2DRMS(a, b [][]linalg.Vec3) []float64 {
	out := make([]float64, len(a)*len(b))
	for i, fa := range a {
		row := out[i*len(b) : (i+1)*len(b)]
		for j, fb := range b {
			row[j] = linalg.DRMS(fa, fb)
		}
	}
	return out
}

// FromMatrix recovers the symmetric Hausdorff distance from a
// precomputed na×nb frame distance matrix (row-major). Empty inputs
// follow DistanceFrames: 0 when both dimensions are empty, +Inf when
// exactly one is.
func FromMatrix(m []float64, na, nb int) float64 {
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return math.Inf(1)
	}
	if len(m) != na*nb {
		panic("hausdorff: FromMatrix dimensions do not match matrix length")
	}
	var h1 float64 // max over rows of min over cols
	for i := 0; i < na; i++ {
		row := m[i*nb : (i+1)*nb]
		cmin := row[0]
		for _, d := range row[1:] {
			if d < cmin {
				cmin = d
			}
		}
		if cmin > h1 {
			h1 = cmin
		}
	}
	var h2 float64 // max over cols of min over rows
	for j := 0; j < nb; j++ {
		cmin := m[j]
		for i := 1; i < na; i++ {
			if d := m[i*nb+j]; d < cmin {
				cmin = d
			}
		}
		if cmin > h2 {
			h2 = cmin
		}
	}
	return math.Max(h1, h2)
}
