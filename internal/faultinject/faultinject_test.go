package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	Deactivate()
	if Enabled() {
		t.Fatal("Enabled() = true after Deactivate")
	}
	if err := Fire("wal.append"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if Hits("wal.append") != 0 {
		t.Fatal("disarmed Fire counted a hit")
	}
}

func TestErrorArm(t *testing.T) {
	t.Cleanup(Deactivate)
	if err := Activate("wal.append=error"); err != nil {
		t.Fatal(err)
	}
	if err := Fire("wal.append"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Fire = %v, want ErrInjected", err)
	}
	if err := Fire("wal.sync"); err != nil {
		t.Fatalf("unarmed sibling point fired: %v", err)
	}
	if got := Hits("wal.append"); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
}

func TestNthHitArm(t *testing.T) {
	t.Cleanup(Deactivate)
	if err := Activate("p=error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Fire("p")
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d: got %v, want nil", i, err)
		}
	}
}

func TestPartialAndSleepArms(t *testing.T) {
	t.Cleanup(Deactivate)
	if err := Activate("w=partial,s=sleep:10ms"); err != nil {
		t.Fatal(err)
	}
	if err := Fire("w"); !errors.Is(err, ErrPartial) {
		t.Fatalf("partial arm = %v, want ErrPartial", err)
	}
	start := time.Now()
	if err := Fire("s"); err != nil {
		t.Fatalf("sleep arm = %v, want nil", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("sleep arm returned after %v, want >= 10ms", d)
	}
}

func TestMalformedSpecs(t *testing.T) {
	t.Cleanup(Deactivate)
	for _, spec := range []string{"noequals", "=error", "p=bogus", "p=sleep:xyz", "p=error@0", "p=error@x"} {
		if err := Activate(spec); err == nil {
			t.Errorf("Activate(%q) accepted a malformed spec", spec)
		}
	}
	// A failed Activate must not leave stale arms behind.
	if err := Activate(""); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("empty spec left points armed")
	}
}
