// Package faultinject is an env-gated registry of named fault points.
// Production code plants points at its failure-relevant boundaries
// (fire-and-check one-liners); by default every point is inert — a
// single atomic load — so the instrumented paths cost nothing in
// normal operation. Activating a spec (programmatically in tests, or
// via the MDTASK_FAULTS environment variable in a live process) arms
// selected points to return errors, inject latency, truncate writes,
// or kill the process outright, which is how the WAL crash-point
// tests and `make smoke-crash` exercise recovery paths that healthy
// hardware never takes.
//
// Spec grammar (comma-separated arms):
//
//	point=kind[:arg][@n]
//
//	kind: error           the point returns ErrInjected
//	      crash           the point exits the process (code 137, like SIGKILL)
//	      sleep:DURATION  the point sleeps, then succeeds
//	      partial         the point asks its caller to tear the write
//	                      (callers that support it write a prefix and fail)
//	@n:   arm only the n-th hit of the point (1-based); default every hit
//
// Example:
//
//	MDTASK_FAULTS='wal.append=error@3,wal.sync=sleep:50ms' mdserver ...
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error armed `error` points return.
var ErrInjected = errors.New("faultinject: injected failure")

// ErrPartial is the error armed `partial` points return; callers that
// support torn writes emit a prefix of the payload before failing.
var ErrPartial = errors.New("faultinject: injected partial write")

// EnvVar is the environment variable ActivateFromEnv reads.
const EnvVar = "MDTASK_FAULTS"

type kind int

const (
	kindError kind = iota
	kindCrash
	kindSleep
	kindPartial
)

type arm struct {
	kind  kind
	sleep time.Duration
	nth   int64 // 0: every hit; >0: exactly that hit
}

var (
	// active short-circuits Fire when no point is armed: the only cost
	// of a planted point in a healthy process is this load.
	active atomic.Bool

	mu   sync.Mutex
	arms map[string][]arm
	hits map[string]*int64
)

// Activate arms the points named in spec (see package doc for the
// grammar), replacing any previous activation.
func Activate(spec string) error {
	parsed := make(map[string][]arm)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultinject: malformed arm %q (want point=kind[:arg][@n])", part)
		}
		var a arm
		if at := strings.LastIndex(rest, "@"); at >= 0 {
			n, err := strconv.ParseInt(rest[at+1:], 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("faultinject: malformed hit count in %q", part)
			}
			a.nth = n
			rest = rest[:at]
		}
		k, arg, _ := strings.Cut(rest, ":")
		switch k {
		case "error":
			a.kind = kindError
		case "crash":
			a.kind = kindCrash
		case "partial":
			a.kind = kindPartial
		case "sleep":
			a.kind = kindSleep
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faultinject: malformed sleep duration in %q: %v", part, err)
			}
			a.sleep = d
		default:
			return fmt.Errorf("faultinject: unknown kind %q in %q (want error|crash|sleep|partial)", k, part)
		}
		parsed[name] = append(parsed[name], a)
	}
	mu.Lock()
	defer mu.Unlock()
	arms = parsed
	hits = make(map[string]*int64)
	active.Store(len(parsed) > 0)
	return nil
}

// ActivateFromEnv arms the points named in $MDTASK_FAULTS; an empty or
// unset variable deactivates everything. Malformed specs are returned
// (callers typically make them fatal — a half-armed harness is worse
// than none).
func ActivateFromEnv() error {
	return Activate(os.Getenv(EnvVar))
}

// Deactivate disarms every point.
func Deactivate() {
	mu.Lock()
	defer mu.Unlock()
	arms, hits = nil, nil
	active.Store(false)
}

// Enabled reports whether any point is armed.
func Enabled() bool { return active.Load() }

// Hits returns how many times the named point has fired its check
// since activation (armed or not for that particular hit).
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if c, ok := hits[name]; ok {
		return atomic.LoadInt64(c)
	}
	return 0
}

// Fire checks the named point. Disarmed (the common case) it returns
// nil after one atomic load. Armed, it performs the configured fault:
// ErrInjected / ErrPartial returns, a sleep, or a process exit.
func Fire(name string) error {
	if !active.Load() {
		return nil
	}
	mu.Lock()
	as, ok := arms[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	c := hits[name]
	if c == nil {
		c = new(int64)
		hits[name] = c
	}
	n := atomic.AddInt64(c, 1)
	mu.Unlock()
	for _, a := range as {
		if a.nth != 0 && a.nth != n {
			continue
		}
		switch a.kind {
		case kindError:
			return ErrInjected
		case kindPartial:
			return ErrPartial
		case kindSleep:
			time.Sleep(a.sleep)
		case kindCrash:
			fmt.Fprintf(os.Stderr, "faultinject: crash point %q hit %d — exiting\n", name, n)
			os.Exit(137)
		}
	}
	return nil
}
