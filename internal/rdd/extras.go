package rdd

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Additional RDD operations mirroring the PySpark surface the paper's
// implementations use.

// Union concatenates two RDDs partition-wise (narrow: no shuffle), like
// Spark's union.
func Union[T any](a, b *RDD[T]) *RDD[T] {
	if a.ctx != b.ctx {
		panic("rdd: Union across contexts")
	}
	na := a.numParts
	return &RDD[T]{
		ctx:      a.ctx,
		name:     a.name + "|union",
		numParts: na + b.numParts,
		compute: func(part int) ([]T, error) {
			if part < na {
				return a.materializedPartition(part)
			}
			return b.materializedPartition(part - na)
		},
	}
}

// ZipWithIndex pairs every element with its global index in partition
// order. Like Spark, this triggers a pass to size the partitions.
func ZipWithIndex[T any](r *RDD[T]) (*RDD[KV[int64, T]], error) {
	parts, err := r.runStage()
	if err != nil {
		return nil, err
	}
	offsets := make([]int64, len(parts))
	var total int64
	for i, p := range parts {
		offsets[i] = total
		total += int64(len(p))
	}
	return &RDD[KV[int64, T]]{
		ctx:      r.ctx,
		name:     r.name + "|zipWithIndex",
		numParts: r.numParts,
		compute: func(part int) ([]KV[int64, T], error) {
			in := parts[part]
			out := make([]KV[int64, T], len(in))
			for i, v := range in {
				out[i] = KV[int64, T]{offsets[part] + int64(i), v}
			}
			return out, nil
		},
	}, nil
}

// Sample returns a Bernoulli sample of the RDD with the given fraction,
// deterministic for a (seed, partition) pair, like Spark's
// sample(withReplacement=false).
func Sample[T any](r *RDD[T], fraction float64, seed uint64) *RDD[T] {
	return &RDD[T]{
		ctx:      r.ctx,
		name:     r.name + "|sample",
		numParts: r.numParts,
		compute: func(part int) ([]T, error) {
			in, err := r.materializedPartition(part)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewPCG(seed, uint64(part)))
			var out []T
			for _, v := range in {
				if rng.Float64() < fraction {
					out = append(out, v)
				}
			}
			return out, nil
		},
	}
}

// SortBy returns all elements sorted by the key function. Like Spark's
// sortBy, this is an action-like global operation; the result is a
// single-partition RDD (sufficient for the analysis result sizes here).
func SortBy[T any, K interface {
	~int | ~int64 | ~float64 | ~string
}](r *RDD[T], key func(T) K) (*RDD[T], error) {
	all, err := r.Collect()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(all, func(i, j int) bool { return key(all[i]) < key(all[j]) })
	return FromPartitions(r.ctx, [][]T{all}), nil
}

// CountByKey returns a map from key to occurrence count (action).
func CountByKey[K comparable, V any](r *RDD[KV[K, V]]) (map[K]int64, error) {
	parts, err := r.runStage()
	if err != nil {
		return nil, err
	}
	out := make(map[K]int64)
	for _, p := range parts {
		for _, kv := range p {
			out[kv.Key]++
		}
	}
	return out, nil
}

// Join inner-joins two keyed RDDs, producing every pairing of values
// that share a key (a full shuffle on both sides).
func Join[K comparable, V, W any](a *RDD[KV[K, V]], b *RDD[KV[K, W]], numParts int) (*RDD[KV[K, struct {
	Left  V
	Right W
}]], error) {
	if numParts <= 0 {
		numParts = a.numParts
	}
	left := GroupByKey(a, numParts)
	right := GroupByKey(b, numParts)
	lparts, err := left.runStage()
	if err != nil {
		return nil, err
	}
	rparts, err := right.runStage()
	if err != nil {
		return nil, err
	}
	type pair = KV[K, struct {
		Left  V
		Right W
	}]
	return &RDD[pair]{
		ctx:      a.ctx,
		name:     a.name + "|join",
		numParts: numParts,
		compute: func(part int) ([]pair, error) {
			rm := make(map[K][]W)
			for _, kv := range rparts[part] {
				rm[kv.Key] = kv.Value
			}
			var out []pair
			for _, kv := range lparts[part] {
				ws, ok := rm[kv.Key]
				if !ok {
					continue
				}
				for _, v := range kv.Value {
					for _, w := range ws {
						out = append(out, pair{kv.Key, struct {
							Left  V
							Right W
						}{v, w}})
					}
				}
			}
			return out, nil
		},
	}, nil
}

// TreeAggregate aggregates with a per-partition sequence function and a
// logarithmic-depth combine tree, like Spark's treeAggregate — the
// pattern that keeps large reduce fan-ins off the driver. As in Spark,
// zero seeds every partition, so it must be an identity of comb.
func TreeAggregate[T, A any](r *RDD[T], zero A, seq func(A, T) A, comb func(A, A) A) (A, error) {
	parts, err := r.runStage()
	if err != nil {
		var z A
		return z, err
	}
	partials := make([]A, len(parts))
	err = r.ctx.pool.ForEach(len(parts), func(i int) error {
		acc := zero
		for _, v := range parts[i] {
			acc = seq(acc, v)
		}
		partials[i] = acc
		return nil
	})
	if err != nil {
		var z A
		return z, err
	}
	for len(partials) > 1 {
		half := (len(partials) + 1) / 2
		next := make([]A, half)
		nerr := r.ctx.pool.ForEach(half, func(i int) error {
			if 2*i+1 < len(partials) {
				next[i] = comb(partials[2*i], partials[2*i+1])
			} else {
				next[i] = partials[2*i]
			}
			return nil
		})
		if nerr != nil {
			var z A
			return z, nerr
		}
		partials = next
	}
	if len(partials) == 0 {
		return zero, nil
	}
	return partials[0], nil
}

// Foreach applies fn to every element for its side effects (action).
// fn must be safe for concurrent use.
func Foreach[T any](r *RDD[T], fn func(T)) error {
	parts, err := r.runStage()
	if err != nil {
		return err
	}
	return r.ctx.pool.ForEach(len(parts), func(i int) error {
		for _, v := range parts[i] {
			fn(v)
		}
		return nil
	})
}

// First returns the first element in partition order.
func First[T any](r *RDD[T]) (T, error) {
	var zero T
	parts, err := r.runStage()
	if err != nil {
		return zero, err
	}
	for _, p := range parts {
		if len(p) > 0 {
			return p[0], nil
		}
	}
	return zero, fmt.Errorf("rdd: First of empty RDD: %w", ErrEmptyRDD)
}

// Take returns up to n elements in partition order.
func Take[T any](r *RDD[T], n int) ([]T, error) {
	parts, err := r.runStage()
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		for _, v := range p {
			if len(out) == n {
				return out, nil
			}
			out = append(out, v)
		}
	}
	return out, nil
}
