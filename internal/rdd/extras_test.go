package rdd

import (
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func TestUnion(t *testing.T) {
	ctx := NewContext(3)
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{3, 4, 5}, 2)
	u := Union(a, b)
	if u.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", u.NumPartitions())
	}
	got, err := u.Collect()
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("Union = %v, %v", got, err)
	}
}

func TestZipWithIndex(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, []string{"a", "b", "c", "d", "e"}, 3)
	z, err := ZipWithIndex(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := z.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i, kv := range got {
		if kv.Key != int64(i) {
			t.Fatalf("element %d indexed %d", i, kv.Key)
		}
	}
}

func TestSampleDeterministicFraction(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, intRange(10000), 8)
	s1, err := Sample(r, 0.3, 42).Count()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Sample(r, 0.3, 42).Count()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("sample not deterministic: %d vs %d", s1, s2)
	}
	if s1 < 2500 || s1 > 3500 {
		t.Errorf("sample size %d far from 3000", s1)
	}
	empty, _ := Sample(r, 0, 1).Count()
	if empty != 0 {
		t.Errorf("fraction 0 sampled %d", empty)
	}
}

func TestSortBy(t *testing.T) {
	ctx := NewContext(3)
	r := Parallelize(ctx, []int{5, 3, 9, 1, 7}, 3)
	s, err := SortBy(r, func(x int) int { return -x })
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Collect()
	if !reflect.DeepEqual(got, []int{9, 7, 5, 3, 1}) {
		t.Fatalf("SortBy = %v", got)
	}
}

func TestCountByKey(t *testing.T) {
	ctx := NewContext(2)
	kvs := []KV[string, int]{{"a", 1}, {"b", 2}, {"a", 3}}
	counts, err := CountByKey(Parallelize(ctx, kvs, 2))
	if err != nil {
		t.Fatal(err)
	}
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestJoin(t *testing.T) {
	ctx := NewContext(3)
	left := Parallelize(ctx, []KV[int, string]{{1, "a"}, {2, "b"}, {1, "c"}}, 2)
	right := Parallelize(ctx, []KV[int, int]{{1, 10}, {3, 30}}, 2)
	j, err := Join(left, right, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Key 1 joins {a,c}x{10}; keys 2 and 3 have no partner.
	if len(got) != 2 {
		t.Fatalf("join produced %v", got)
	}
	var vals []string
	for _, kv := range got {
		if kv.Key != 1 || kv.Value.Right != 10 {
			t.Fatalf("unexpected pair %v", kv)
		}
		vals = append(vals, kv.Value.Left)
	}
	sort.Strings(vals)
	if !reflect.DeepEqual(vals, []string{"a", "c"}) {
		t.Fatalf("joined lefts = %v", vals)
	}
}

func TestTreeAggregate(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, intRange(1000), 16)
	sum, err := TreeAggregate(r, 0,
		func(a, x int) int { return a + x },
		func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 999*1000/2 {
		t.Errorf("sum = %d", sum)
	}
}

func TestTreeAggregateEmpty(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, []int(nil), 0)
	// As in Spark, the zero value seeds every partition, so it must be
	// an identity of the combine function.
	got, err := TreeAggregate(r, 0,
		func(a, x int) int { return a + x },
		func(a, b int) int { return a + b })
	if err != nil || got != 0 {
		t.Fatalf("TreeAggregate(empty) = %d, %v", got, err)
	}
}

func TestForeach(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, intRange(100), 8)
	var mu sync.Mutex
	sum := 0
	err := Foreach(r, func(x int) {
		mu.Lock()
		sum += x
		mu.Unlock()
	})
	if err != nil || sum != 4950 {
		t.Fatalf("Foreach sum = %d, %v", sum, err)
	}
}

func TestFirstAndTake(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, []int{7, 8, 9}, 2)
	first, err := First(r)
	if err != nil || first != 7 {
		t.Fatalf("First = %d, %v", first, err)
	}
	take, err := Take(r, 2)
	if err != nil || !reflect.DeepEqual(take, []int{7, 8}) {
		t.Fatalf("Take = %v, %v", take, err)
	}
	all, err := Take(r, 10)
	if err != nil || len(all) != 3 {
		t.Fatalf("Take(10) = %v", all)
	}
	empty := Parallelize(ctx, []int(nil), 0)
	if _, err := First(empty); !errors.Is(err, ErrEmptyRDD) {
		t.Fatalf("First(empty) err = %v", err)
	}
}
