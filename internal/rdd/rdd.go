// Package rdd is a Spark-like data-parallel engine: an RDD abstraction
// with lazy narrow transformations, eager shuffle boundaries, actions,
// broadcast variables, caching, and a stage-oriented execution model.
// It reproduces — natively in Go, on goroutine workers — the execution
// semantics the paper exercises through PySpark: a job is a DAG of
// stages; each stage is a set of parallel tasks separated by barriers at
// shuffle points (§3.1).
//
// Narrow transformations (Map, Filter, FlatMap, MapPartitions) chain
// lazily and collapse into a single stage at the next action, exactly
// like Spark pipelining. Shuffle operations (ReduceByKey, GroupByKey,
// Repartition) materialize their map side eagerly, recording a stage
// barrier and the shuffled byte volume.
package rdd

import (
	"errors"
	"fmt"
	"sync"

	"mdtask/internal/engine"
)

// Context owns the worker pool and metrics of one "application".
type Context struct {
	pool *engine.Pool
	// Metrics accumulates task counts, stages and shuffle volumes.
	Metrics *engine.Metrics
	// DefaultParallelism is the partition count used when callers pass 0.
	DefaultParallelism int
}

// NewContext creates a context running at the given parallelism
// (worker goroutines); values < 1 default to GOMAXPROCS.
func NewContext(parallelism int) *Context {
	m := &engine.Metrics{}
	p := engine.NewPool(parallelism, m)
	return &Context{pool: p, Metrics: m, DefaultParallelism: p.Workers()}
}

// RDD is a resilient-distributed-dataset analogue: a partitioned
// collection with a per-partition compute function. RDDs are immutable;
// transformations return new RDDs.
type RDD[T any] struct {
	ctx      *Context
	name     string
	numParts int
	compute  func(part int) ([]T, error)

	persist sync.Once
	cached  [][]T
	cacheOn bool
	cacheMu sync.Mutex
}

// Context returns the owning context.
func (r *RDD[T]) Context() *Context { return r.ctx }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.numParts }

// Name returns the RDD's debug name.
func (r *RDD[T]) Name() string { return r.name }

// Parallelize distributes data across numParts partitions (0 uses the
// context default). Elements are split into contiguous ranges, like
// Spark's parallelize.
func Parallelize[T any](ctx *Context, data []T, numParts int) *RDD[T] {
	if numParts <= 0 {
		numParts = ctx.DefaultParallelism
	}
	if numParts > len(data) && len(data) > 0 {
		numParts = len(data)
	}
	if numParts == 0 {
		numParts = 1
	}
	n := len(data)
	return &RDD[T]{
		ctx:      ctx,
		name:     "parallelize",
		numParts: numParts,
		compute: func(part int) ([]T, error) {
			lo := part * n / numParts
			hi := (part + 1) * n / numParts
			return data[lo:hi], nil
		},
	}
}

// FromPartitions builds an RDD with one partition per element of parts.
// The slices are referenced, not copied.
func FromPartitions[T any](ctx *Context, parts [][]T) *RDD[T] {
	return &RDD[T]{
		ctx:      ctx,
		name:     "fromPartitions",
		numParts: len(parts),
		compute:  func(part int) ([]T, error) { return parts[part], nil },
	}
}

// Range creates an RDD of the integers [0, n) in numParts partitions,
// the idiom the paper uses to map "one task per partition".
func Range(ctx *Context, n, numParts int) *RDD[int] {
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return Parallelize(ctx, data, numParts)
}

// Map applies f to every element (narrow; pipelined into the current
// stage).
func Map[T, U any](r *RDD[T], f func(T) (U, error)) *RDD[U] {
	return &RDD[U]{
		ctx:      r.ctx,
		name:     r.name + "|map",
		numParts: r.numParts,
		compute: func(part int) ([]U, error) {
			in, err := r.materializedPartition(part)
			if err != nil {
				return nil, err
			}
			out := make([]U, len(in))
			for i, v := range in {
				if out[i], err = f(v); err != nil {
					return nil, err
				}
			}
			return out, nil
		},
	}
}

// Filter keeps the elements for which pred is true (narrow).
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return &RDD[T]{
		ctx:      r.ctx,
		name:     r.name + "|filter",
		numParts: r.numParts,
		compute: func(part int) ([]T, error) {
			in, err := r.materializedPartition(part)
			if err != nil {
				return nil, err
			}
			var out []T
			for _, v := range in {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out, nil
		},
	}
}

// FlatMap applies f and concatenates the results (narrow).
func FlatMap[T, U any](r *RDD[T], f func(T) ([]U, error)) *RDD[U] {
	return &RDD[U]{
		ctx:      r.ctx,
		name:     r.name + "|flatMap",
		numParts: r.numParts,
		compute: func(part int) ([]U, error) {
			in, err := r.materializedPartition(part)
			if err != nil {
				return nil, err
			}
			var out []U
			for _, v := range in {
				us, err := f(v)
				if err != nil {
					return nil, err
				}
				out = append(out, us...)
			}
			return out, nil
		},
	}
}

// MapPartitions transforms each whole partition at once (narrow), the
// transformation the paper's 2-D partitioned implementations use.
func MapPartitions[T, U any](r *RDD[T], f func(part int, in []T) ([]U, error)) *RDD[U] {
	return &RDD[U]{
		ctx:      r.ctx,
		name:     r.name + "|mapPartitions",
		numParts: r.numParts,
		compute: func(part int) ([]U, error) {
			in, err := r.materializedPartition(part)
			if err != nil {
				return nil, err
			}
			return f(part, in)
		},
	}
}

// materializedPartition returns partition part, from cache if persisted.
func (r *RDD[T]) materializedPartition(part int) ([]T, error) {
	r.cacheMu.Lock()
	if r.cached != nil {
		p := r.cached[part]
		r.cacheMu.Unlock()
		return p, nil
	}
	r.cacheMu.Unlock()
	return r.compute(part)
}

// Persist marks the RDD for caching: the first action materializes all
// partitions and later actions reuse them, like Spark's MEMORY_ONLY
// persistence.
func (r *RDD[T]) Persist() *RDD[T] {
	r.cacheOn = true
	return r
}

// runStage computes every partition on the pool and returns them.
// It records one stage in the metrics.
func (r *RDD[T]) runStage() ([][]T, error) {
	r.cacheMu.Lock()
	if r.cached != nil {
		c := r.cached
		r.cacheMu.Unlock()
		return c, nil
	}
	r.cacheMu.Unlock()

	r.ctx.Metrics.RecordStage()
	parts := make([][]T, r.numParts)
	err := r.ctx.pool.ForEach(r.numParts, func(i int) error {
		p, err := r.compute(i)
		if err != nil {
			return fmt.Errorf("rdd %s partition %d: %w", r.name, i, err)
		}
		parts[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	if r.cacheOn {
		r.cacheMu.Lock()
		if r.cached == nil {
			r.cached = parts
		}
		r.cacheMu.Unlock()
	}
	return parts, nil
}

// Collect runs the job and returns all elements in partition order.
func (r *RDD[T]) Collect() ([]T, error) {
	parts, err := r.runStage()
	if err != nil {
		return nil, err
	}
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count runs the job and returns the element count.
func (r *RDD[T]) Count() (int, error) {
	parts, err := r.runStage()
	if err != nil {
		return 0, err
	}
	var n int
	for _, p := range parts {
		n += len(p)
	}
	return n, nil
}

// ErrEmptyRDD is returned by Reduce on an empty dataset.
var ErrEmptyRDD = errors.New("rdd: reduce of empty RDD")

// Reduce combines all elements with the associative function f.
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, error) {
	var zero T
	parts, err := r.runStage()
	if err != nil {
		return zero, err
	}
	acc := zero
	have := false
	for _, p := range parts {
		for _, v := range p {
			if !have {
				acc, have = v, true
			} else {
				acc = f(acc, v)
			}
		}
	}
	if !have {
		return zero, ErrEmptyRDD
	}
	return acc, nil
}
