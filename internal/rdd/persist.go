package rdd

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Disk persistence: Spark's MEMORY_AND_DISK behaviour — partitions are
// materialized once and spilled to disk files, then served from disk on
// later accesses (§3.1: "Spark offloads to disk when an executor does
// not have enough free memory").

// DiskRDD wraps an RDD whose partitions are persisted as gob files.
type DiskRDD[T any] struct {
	*RDD[T]
	dir   string
	once  sync.Once
	err   error
	paths []string
}

// PersistDisk materializes the RDD's partitions to gob files under dir
// (one file per partition) on first action and serves all later
// accesses from disk. The caller owns dir's lifecycle.
func PersistDisk[T any](r *RDD[T], dir string) *DiskRDD[T] {
	d := &DiskRDD[T]{dir: dir}
	d.RDD = &RDD[T]{
		ctx:      r.ctx,
		name:     r.name + "|persistDisk",
		numParts: r.numParts,
		compute: func(part int) ([]T, error) {
			if err := d.materialize(r); err != nil {
				return nil, err
			}
			return d.readPartition(part)
		},
	}
	return d
}

// materialize runs the upstream once and spills every partition.
func (d *DiskRDD[T]) materialize(r *RDD[T]) error {
	d.once.Do(func() {
		if err := os.MkdirAll(d.dir, 0o755); err != nil {
			d.err = fmt.Errorf("rdd: persistDisk: %w", err)
			return
		}
		parts, err := r.runStage()
		if err != nil {
			d.err = err
			return
		}
		d.paths = make([]string, len(parts))
		for i, p := range parts {
			path := filepath.Join(d.dir, fmt.Sprintf("part-%05d.gob", i))
			if err := writeGob(path, p); err != nil {
				d.err = err
				return
			}
			d.paths[i] = path
		}
	})
	return d.err
}

// readPartition loads one spilled partition.
func (d *DiskRDD[T]) readPartition(part int) ([]T, error) {
	if part < 0 || part >= len(d.paths) {
		return nil, fmt.Errorf("rdd: persistDisk: partition %d out of range", part)
	}
	var out []T
	if err := readGob(d.paths[part], &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SpilledBytes reports the on-disk footprint of the persisted RDD
// (0 before the first action).
func (d *DiskRDD[T]) SpilledBytes() int64 {
	var n int64
	for _, p := range d.paths {
		if fi, err := os.Stat(p); err == nil {
			n += fi.Size()
		}
	}
	return n
}

func writeGob(path string, v interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("rdd: spilling partition: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("rdd: encoding partition: %w", err)
	}
	return f.Close()
}

func readGob(path string, v interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("rdd: reading spilled partition: %w", err)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("rdd: decoding spilled partition: %w", err)
	}
	return nil
}
