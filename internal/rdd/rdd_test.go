package rdd

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizePartitioning(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, intRange(10), 3)
	if r.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, intRange(10)) {
		t.Fatalf("Collect = %v", got)
	}
}

func TestParallelizeMorePartitionsThanData(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, intRange(3), 10)
	if r.NumPartitions() != 3 {
		t.Errorf("partitions clamped to %d, want 3", r.NumPartitions())
	}
	n, err := r.Count()
	if err != nil || n != 3 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestParallelizeEmpty(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, []int(nil), 0)
	got, err := r.Collect()
	if err != nil || len(got) != 0 {
		t.Errorf("Collect = %v, %v", got, err)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext(3)
	r := Parallelize(ctx, intRange(20), 4)
	doubled := Map(r, func(x int) (int, error) { return 2 * x, nil })
	evens := Filter(doubled, func(x int) bool { return x%4 == 0 })
	expanded := FlatMap(evens, func(x int) ([]int, error) { return []int{x, x + 1}, nil })
	got, err := expanded.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for _, x := range intRange(20) {
		if 2*x%4 == 0 {
			want = append(want, 2*x, 2*x+1)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMapMatchesSerialQuick(t *testing.T) {
	ctx := NewContext(4)
	f := func(data []int16, parts uint8) bool {
		np := int(parts%8) + 1
		ints := make([]int, len(data))
		for i, v := range data {
			ints[i] = int(v)
		}
		r := Map(Parallelize(ctx, ints, np), func(x int) (int, error) { return x * x, nil })
		got, err := r.Collect()
		if err != nil {
			return false
		}
		for i, v := range ints {
			if got[i] != v*v {
				return false
			}
		}
		return len(got) == len(ints)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMapPartitionsIndex(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, intRange(8), 4)
	tagged := MapPartitions(r, func(part int, in []int) ([]int, error) {
		out := make([]int, len(in))
		for i := range in {
			out[i] = part
		}
		return out, nil
	})
	got, err := tagged.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestReduce(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, intRange(101), 7)
	sum, err := Reduce(r, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5050 {
		t.Errorf("sum = %d", sum)
	}
}

func TestReduceEmpty(t *testing.T) {
	ctx := NewContext(2)
	_, err := Reduce(Parallelize(ctx, []int(nil), 0), func(a, b int) int { return a + b })
	if !errors.Is(err, ErrEmptyRDD) {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorPropagation(t *testing.T) {
	ctx := NewContext(2)
	r := Map(Parallelize(ctx, intRange(10), 2), func(x int) (int, error) {
		if x == 5 {
			return 0, errors.New("bad element")
		}
		return x, nil
	})
	if _, err := r.Collect(); err == nil || !strings.Contains(err.Error(), "bad element") {
		t.Fatalf("err = %v", err)
	}
}

func TestPersistComputesOnce(t *testing.T) {
	ctx := NewContext(4)
	var computations int64
	r := Map(Parallelize(ctx, intRange(10), 2), func(x int) (int, error) {
		atomic.AddInt64(&computations, 1)
		return x, nil
	}).Persist()
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Count(); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&computations); got != 10 {
		t.Errorf("map ran %d times, want 10 (cached)", got)
	}
}

func TestWithoutPersistRecomputes(t *testing.T) {
	ctx := NewContext(4)
	var computations int64
	r := Map(Parallelize(ctx, intRange(10), 2), func(x int) (int, error) {
		atomic.AddInt64(&computations, 1)
		return x, nil
	})
	_, _ = r.Collect()
	_, _ = r.Collect()
	if got := atomic.LoadInt64(&computations); got != 20 {
		t.Errorf("map ran %d times, want 20 (no cache)", got)
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := NewContext(4)
	var kvs []KV[string, int]
	for i := 0; i < 100; i++ {
		kvs = append(kvs, KV[string, int]{Key: []string{"a", "b", "c"}[i%3], Value: 1})
	}
	r := ReduceByKey(Parallelize(ctx, kvs, 8), func(a, b int) int { return a + b }, 4)
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, kv := range got {
		counts[kv.Key] += kv.Value
	}
	if counts["a"] != 34 || counts["b"] != 33 || counts["c"] != 33 {
		t.Fatalf("counts = %v", counts)
	}
	if ctx.Metrics.Snapshot().BytesShuffled == 0 {
		t.Error("shuffle bytes not accounted")
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := NewContext(3)
	kvs := []KV[int, string]{{1, "a"}, {2, "b"}, {1, "c"}, {2, "d"}, {3, "e"}}
	r := GroupByKey(Parallelize(ctx, kvs, 2), 2)
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[int][]string{}
	for _, kv := range got {
		vs := append([]string(nil), kv.Value...)
		sort.Strings(vs)
		byKey[kv.Key] = vs
	}
	if !reflect.DeepEqual(byKey[1], []string{"a", "c"}) ||
		!reflect.DeepEqual(byKey[2], []string{"b", "d"}) ||
		!reflect.DeepEqual(byKey[3], []string{"e"}) {
		t.Fatalf("byKey = %v", byKey)
	}
}

func TestRepartitionPreservesMultiset(t *testing.T) {
	ctx := NewContext(4)
	r := Repartition(Parallelize(ctx, intRange(50), 2), 7)
	if r.NumPartitions() != 7 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, intRange(50)) {
		t.Fatalf("multiset changed: %v", got)
	}
}

func TestBroadcastAccounting(t *testing.T) {
	ctx := NewContext(2)
	b := NewBroadcast(ctx, []int{1, 2, 3}, 24)
	if b.Value[1] != 2 || b.Bytes != 24 {
		t.Errorf("broadcast = %+v", b)
	}
	if ctx.Metrics.Snapshot().BytesBroadcast != 24 {
		t.Error("broadcast bytes not accounted")
	}
}

func TestStageCounting(t *testing.T) {
	ctx := NewContext(2)
	r := Map(Parallelize(ctx, intRange(10), 2), func(x int) (int, error) { return x, nil })
	_, _ = r.Collect() // stage 1: narrow chain collapses to one stage
	s := ctx.Metrics.Snapshot()
	if s.Stages != 1 {
		t.Errorf("stages = %d, want 1 (pipelined narrow ops)", s.Stages)
	}
	_ = ReduceByKey(Map(r, func(x int) (KV[int, int], error) {
		return KV[int, int]{x % 2, x}, nil
	}), func(a, b int) int { return a + b }, 2)
	s = ctx.Metrics.Snapshot()
	// The shuffle's map side is one more stage; the narrow re-run of r
	// pipelines into it.
	if s.Stages != 2 {
		t.Errorf("stages = %d, want 2", s.Stages)
	}
}

func TestRangeRDD(t *testing.T) {
	ctx := NewContext(2)
	r := Range(ctx, 5, 5)
	got, err := r.Collect()
	if err != nil || !reflect.DeepEqual(got, intRange(5)) {
		t.Fatalf("Range = %v, %v", got, err)
	}
}

func TestFromPartitions(t *testing.T) {
	ctx := NewContext(2)
	r := FromPartitions(ctx, [][]string{{"a"}, {"b", "c"}})
	got, err := r.Collect()
	if err != nil || !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestShuffleErrorPropagates(t *testing.T) {
	ctx := NewContext(2)
	bad := Map(Parallelize(ctx, intRange(4), 2), func(x int) (KV[int, int], error) {
		return KV[int, int]{}, errors.New("map failed")
	})
	r := ReduceByKey(bad, func(a, b int) int { return a + b }, 2)
	if _, err := r.Collect(); err == nil {
		t.Fatal("shuffle over failing parent succeeded")
	}
}
