package rdd

import (
	"fmt"
	"hash/maphash"
)

// KV is a key-value pair for the shuffle operations.
type KV[K comparable, V any] struct {
	Key   K
	Value V
}

var shuffleSeed = maphash.MakeSeed()

// hashKey maps a key to a partition.
func hashKey[K comparable](k K, numParts int) int {
	return int(maphash.Comparable(shuffleSeed, k) % uint64(numParts))
}

// shuffleBytes estimates the wire size of n shuffled items; an item is
// accounted at itemBytes. Callers that know exact payload sizes (the
// Leaflet Finder drivers) account them separately.
const defaultItemBytes = 24

// ReduceByKey merges values per key with the associative function
// combine, shuffling map-side pre-combined partials across a hash
// partitioner into numParts reduce partitions (0 keeps the parent's
// partition count). This is a stage boundary: the map side executes
// eagerly, like a Spark shuffle write.
func ReduceByKey[K comparable, V any](r *RDD[KV[K, V]], combine func(V, V) V, numParts int) *RDD[KV[K, V]] {
	if numParts <= 0 {
		numParts = r.numParts
	}
	// Map-side stage: compute partitions and pre-combine locally.
	parts, err := r.runStage()
	buckets := make([][]map[K]V, numParts) // [reduce partition][map partition]
	for i := range buckets {
		buckets[i] = make([]map[K]V, len(parts))
	}
	var shuffled int64
	if err == nil {
		for mp, part := range parts {
			local := make(map[K]V)
			for _, kv := range part {
				if old, ok := local[kv.Key]; ok {
					local[kv.Key] = combine(old, kv.Value)
				} else {
					local[kv.Key] = kv.Value
				}
			}
			for k, v := range local {
				rp := hashKey(k, numParts)
				if buckets[rp][mp] == nil {
					buckets[rp][mp] = make(map[K]V)
				}
				buckets[rp][mp][k] = v
				shuffled++
			}
		}
		r.ctx.Metrics.AddShuffle(shuffled * defaultItemBytes)
	}
	capturedErr := err
	return &RDD[KV[K, V]]{
		ctx:      r.ctx,
		name:     r.name + "|reduceByKey",
		numParts: numParts,
		compute: func(part int) ([]KV[K, V], error) {
			if capturedErr != nil {
				return nil, fmt.Errorf("rdd: shuffle parent failed: %w", capturedErr)
			}
			merged := make(map[K]V)
			for _, m := range buckets[part] {
				for k, v := range m {
					if old, ok := merged[k]; ok {
						merged[k] = combine(old, v)
					} else {
						merged[k] = v
					}
				}
			}
			out := make([]KV[K, V], 0, len(merged))
			for k, v := range merged {
				out = append(out, KV[K, V]{k, v})
			}
			return out, nil
		},
	}
}

// GroupByKey shuffles all values for each key to one reduce partition.
// Unlike ReduceByKey there is no map-side combining, so the full value
// stream crosses the shuffle (the expensive pattern the paper's
// Approach 3 avoids by pre-merging components map-side).
func GroupByKey[K comparable, V any](r *RDD[KV[K, V]], numParts int) *RDD[KV[K, []V]] {
	if numParts <= 0 {
		numParts = r.numParts
	}
	parts, err := r.runStage()
	buckets := make([]map[K][]V, numParts)
	for i := range buckets {
		buckets[i] = make(map[K][]V)
	}
	var shuffled int64
	if err == nil {
		for _, part := range parts {
			for _, kv := range part {
				rp := hashKey(kv.Key, numParts)
				buckets[rp][kv.Key] = append(buckets[rp][kv.Key], kv.Value)
				shuffled++
			}
		}
		r.ctx.Metrics.AddShuffle(shuffled * defaultItemBytes)
	}
	capturedErr := err
	return &RDD[KV[K, []V]]{
		ctx:      r.ctx,
		name:     r.name + "|groupByKey",
		numParts: numParts,
		compute: func(part int) ([]KV[K, []V], error) {
			if capturedErr != nil {
				return nil, fmt.Errorf("rdd: shuffle parent failed: %w", capturedErr)
			}
			out := make([]KV[K, []V], 0, len(buckets[part]))
			for k, vs := range buckets[part] {
				out = append(out, KV[K, []V]{k, vs})
			}
			return out, nil
		},
	}
}

// Repartition redistributes elements round-robin into numParts
// partitions through a full shuffle.
func Repartition[T any](r *RDD[T], numParts int) *RDD[T] {
	if numParts <= 0 {
		numParts = r.ctx.DefaultParallelism
	}
	parts, err := r.runStage()
	buckets := make([][]T, numParts)
	if err == nil {
		i := 0
		var items int64
		for _, part := range parts {
			for _, v := range part {
				buckets[i%numParts] = append(buckets[i%numParts], v)
				i++
				items++
			}
		}
		r.ctx.Metrics.AddShuffle(items * defaultItemBytes)
	}
	capturedErr := err
	return &RDD[T]{
		ctx:      r.ctx,
		name:     r.name + "|repartition",
		numParts: numParts,
		compute: func(part int) ([]T, error) {
			if capturedErr != nil {
				return nil, fmt.Errorf("rdd: shuffle parent failed: %w", capturedErr)
			}
			return buckets[part], nil
		},
	}
}

// Broadcast is a read-only value shipped once to every worker, like
// Spark's torrent broadcast. Bytes is the caller-declared payload size
// used for accounting.
type Broadcast[T any] struct {
	Value T
	Bytes int64
}

// NewBroadcast registers a broadcast variable with the context,
// accounting its payload size against the metrics.
func NewBroadcast[T any](ctx *Context, value T, bytes int64) *Broadcast[T] {
	ctx.Metrics.AddBroadcast(bytes)
	return &Broadcast[T]{Value: value, Bytes: bytes}
}
