package rdd

import (
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestPersistDiskServesFromDisk(t *testing.T) {
	ctx := NewContext(4)
	var computations int64
	src := Map(Parallelize(ctx, intRange(100), 5), func(x int) (int, error) {
		atomic.AddInt64(&computations, 1)
		return x * 2, nil
	})
	d := PersistDisk(src, t.TempDir())

	got1, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Fatal("disk round trip changed data")
	}
	for i, v := range got1 {
		if v != 2*i {
			t.Fatalf("element %d = %d", i, v)
		}
	}
	if c := atomic.LoadInt64(&computations); c != 100 {
		t.Errorf("upstream computed %d times, want 100 (once)", c)
	}
	if d.SpilledBytes() == 0 {
		t.Error("nothing spilled to disk")
	}
}

func TestPersistDiskDownstreamOps(t *testing.T) {
	ctx := NewContext(2)
	d := PersistDisk(Parallelize(ctx, intRange(20), 4), t.TempDir())
	sum, err := Reduce(Map(d.RDD, func(x int) (int, error) { return x, nil }),
		func(a, b int) int { return a + b })
	if err != nil || sum != 190 {
		t.Fatalf("sum = %d, %v", sum, err)
	}
}

func TestPersistDiskStructPayload(t *testing.T) {
	type rec struct {
		Name string
		Vals []float64
	}
	ctx := NewContext(2)
	data := []rec{{"a", []float64{1, 2}}, {"b", []float64{3}}}
	d := PersistDisk(Parallelize(ctx, data, 2), t.TempDir())
	got, err := d.Collect()
	if err != nil || !reflect.DeepEqual(got, data) {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestPersistDiskBadDir(t *testing.T) {
	ctx := NewContext(2)
	// A file path where a directory is needed.
	bad := filepath.Join(t.TempDir(), "file")
	if err := writeGob(bad, 1); err != nil {
		t.Fatal(err)
	}
	d := PersistDisk(Parallelize(ctx, intRange(4), 2), filepath.Join(bad, "sub"))
	if _, err := d.Collect(); err == nil {
		t.Fatal("unwritable spill dir accepted")
	}
}
