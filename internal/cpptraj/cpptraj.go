// Package cpptraj reproduces the paper's CPPTraj comparison (§2.2,
// §4.2, Fig 6): an optimized native implementation of the 2D-RMSD
// kernel, parallelized over trajectory pairs with the MPI runtime.
//
// The paper compares CPPTraj built with GNU (no optimization) against
// Intel -O3; here the two compiler variants become two kernel
// implementations with genuinely different performance:
//
//   - Naive: the straightforward triple loop (one dRMS per frame pair).
//   - Blocked: an algebraically restructured kernel that expands
//     dRMS² = (|a|² + |b|² - 2 a·b)/N, precomputes per-frame norms, and
//     computes the cross terms as a cache-blocked matrix product.
//
// Both produce identical matrices (verified by tests); the blocked one
// is several times faster, mirroring the paper's GNU-vs-Intel gap.
package cpptraj

import (
	"fmt"
	"math"

	"mdtask/internal/hausdorff"
	"mdtask/internal/linalg"
	"mdtask/internal/mpi"
	"mdtask/internal/traj"
)

// Kernel selects the 2D-RMSD implementation.
type Kernel int

const (
	// Naive is the unoptimized triple loop ("GNU, no optimizations").
	Naive Kernel = iota
	// Blocked is the cache-blocked restructured kernel ("Intel -O3").
	Blocked
)

// String returns the kernel's display name, following the paper's
// compiler labels.
func (k Kernel) String() string {
	switch k {
	case Naive:
		return "GNU"
	case Blocked:
		return "Intel -Wall -O3 (no MKL)"
	default:
		return "unknown"
	}
}

// blockSize is the frame-block edge for the cache-blocked kernel.
const blockSize = 16

// Matrix2DRMS computes the frame-by-frame dRMS matrix between two
// trajectories with the selected kernel.
func Matrix2DRMS(a, b *traj.Trajectory, k Kernel) ([]float64, error) {
	if a.NAtoms != b.NAtoms {
		return nil, fmt.Errorf("cpptraj: atom counts differ: %d vs %d", a.NAtoms, b.NAtoms)
	}
	fa, fb := hausdorff.Frames(a), hausdorff.Frames(b)
	switch k {
	case Naive:
		return hausdorff.Matrix2DRMS(fa, fb), nil
	case Blocked:
		return matrixBlocked(fa, fb), nil
	default:
		return nil, fmt.Errorf("cpptraj: unknown kernel %d", int(k))
	}
}

// flatten packs frames into a contiguous row-major [nFrames][3*nAtoms]
// buffer and returns it with the per-frame squared norms.
func flatten(frames [][]linalg.Vec3) (flat []float64, norms []float64, width int) {
	if len(frames) == 0 {
		return nil, nil, 0
	}
	width = 3 * len(frames[0])
	flat = make([]float64, len(frames)*width)
	norms = make([]float64, len(frames))
	for i, f := range frames {
		row := flat[i*width : (i+1)*width]
		var n float64
		for j, p := range f {
			row[3*j], row[3*j+1], row[3*j+2] = p[0], p[1], p[2]
			n += p.Norm2()
		}
		norms[i] = n
	}
	return flat, norms, width
}

// matrixBlocked computes the dRMS matrix via the norm/cross-term
// decomposition with cache blocking over frame tiles.
func matrixBlocked(a, b [][]linalg.Vec3) []float64 {
	na, nb := len(a), len(b)
	out := make([]float64, na*nb)
	if na == 0 || nb == 0 {
		return out
	}
	nAtoms := len(a[0])
	fa, normA, w := flatten(a)
	fb, normB, _ := flatten(b)
	inv := 1 / float64(nAtoms)

	for i0 := 0; i0 < na; i0 += blockSize {
		i1 := min(i0+blockSize, na)
		for j0 := 0; j0 < nb; j0 += blockSize {
			j1 := min(j0+blockSize, nb)
			for i := i0; i < i1; i++ {
				ra := fa[i*w : (i+1)*w]
				row := out[i*nb:]
				j := j0
				// Register blocking: four j-frames per pass reuse each
				// loaded ra element four times, quartering memory
				// traffic on this memory-bound kernel.
				for ; j+4 <= j1; j += 4 {
					rb0 := fb[j*w : (j+1)*w]
					rb1 := fb[(j+1)*w : (j+2)*w]
					rb2 := fb[(j+2)*w : (j+3)*w]
					rb3 := fb[(j+3)*w : (j+4)*w]
					var d0, d1, d2, d3 float64
					for k, a := range ra {
						d0 += a * rb0[k]
						d1 += a * rb1[k]
						d2 += a * rb2[k]
						d3 += a * rb3[k]
					}
					row[j] = finishMSD(normA[i], normB[j], d0, inv)
					row[j+1] = finishMSD(normA[i], normB[j+1], d1, inv)
					row[j+2] = finishMSD(normA[i], normB[j+2], d2, inv)
					row[j+3] = finishMSD(normA[i], normB[j+3], d3, inv)
				}
				for ; j < j1; j++ {
					rb := fb[j*w : (j+1)*w]
					var dot float64
					for k, a := range ra {
						dot += a * rb[k]
					}
					row[j] = finishMSD(normA[i], normB[j], dot, inv)
				}
			}
		}
	}
	return out
}

// finishMSD converts norm/cross terms to a dRMS value, clamping tiny
// negative round-off.
func finishMSD(na, nb, dot, inv float64) float64 {
	msd := (na + nb - 2*dot) * inv
	if msd < 0 {
		msd = 0
	}
	return math.Sqrt(msd)
}

// PairResult is the Hausdorff distance of one trajectory pair computed
// from its full 2D-RMSD matrix.
type PairResult struct {
	I, J int
	H    float64
}

// RunEnsemble computes the all-pairs Hausdorff distance matrix of the
// ensemble the CPPTraj way: the 2D-RMSD between every trajectory pair is
// computed in parallel over MPI ranks (frames equally distributed, at
// least one rank per ensemble member per §2.2), results are gathered at
// rank 0, and the Hausdorff distances are extracted from the full
// matrices. Returns the N×N distance matrix row-major.
func RunEnsemble(ens traj.Ensemble, k Kernel, ranks int) ([]float64, error) {
	n := len(ens)
	if err := ens.Validate(); err != nil {
		return nil, err
	}
	pairs := make([][2]int, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	out := make([]float64, n*n)
	err := mpi.Run(ranks, nil, func(c *mpi.Comm) error {
		var local []PairResult
		for idx := c.Rank(); idx < len(pairs); idx += c.Size() {
			i, j := pairs[idx][0], pairs[idx][1]
			m, err := Matrix2DRMS(ens[i], ens[j], k)
			if err != nil {
				return err
			}
			h := hausdorff.FromMatrix(m, ens[i].NFrames(), ens[j].NFrames())
			local = append(local, PairResult{I: i, J: j, H: h})
		}
		gathered := mpi.Gather(c, 0, local, int64(len(local))*24)
		if c.Rank() == 0 {
			for _, rs := range gathered {
				for _, r := range rs {
					out[r.I*n+r.J] = r.H
					out[r.J*n+r.I] = r.H
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
