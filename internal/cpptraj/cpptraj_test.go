package cpptraj

import (
	"math"
	mathrand "math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mdtask/internal/hausdorff"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func TestBlockedMatchesNaiveQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(args []reflect.Value, r *mathrand.Rand) {
			args[0] = reflect.ValueOf(uint64(r.Int63()))
			args[1] = reflect.ValueOf(1 + r.Intn(15))
			args[2] = reflect.ValueOf(1 + r.Intn(40))
		},
	}
	f := func(seed uint64, atoms, frames int) bool {
		a := synth.Walk("a", atoms, frames, seed, 0)
		b := synth.Walk("b", atoms, frames, seed, 1)
		naive, err1 := Matrix2DRMS(a, b, Naive)
		blocked, err2 := Matrix2DRMS(a, b, Blocked)
		if err1 != nil || err2 != nil || len(naive) != len(blocked) {
			return false
		}
		for i := range naive {
			if math.Abs(naive[i]-blocked[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatrixRejectsMismatchedAtoms(t *testing.T) {
	a := synth.Walk("a", 5, 3, 1, 0)
	b := synth.Walk("b", 6, 3, 1, 1)
	if _, err := Matrix2DRMS(a, b, Naive); err == nil {
		t.Fatal("mismatched atom counts accepted")
	}
	if _, err := Matrix2DRMS(a, a, Kernel(9)); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestKernelStrings(t *testing.T) {
	if Naive.String() != "GNU" {
		t.Errorf("Naive = %q", Naive.String())
	}
	if Blocked.String() == "unknown" || Kernel(7).String() != "unknown" {
		t.Error("kernel names wrong")
	}
}

func TestRunEnsembleMatchesHausdorff(t *testing.T) {
	ens := traj.Ensemble{
		synth.Walk("t0", 8, 6, 3, 0),
		synth.Walk("t1", 8, 6, 3, 1),
		synth.Walk("t2", 8, 6, 3, 2),
	}
	for _, k := range []Kernel{Naive, Blocked} {
		got, err := RunEnsemble(ens, k, 3)
		if err != nil {
			t.Fatal(err)
		}
		n := len(ens)
		// The blocked kernel's norm decomposition loses ~half the
		// mantissa near zero (catastrophic cancellation), so compare at
		// 1e-5 absolute.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := hausdorff.Distance(ens[i], ens[j], hausdorff.Naive)
				if math.Abs(got[i*n+j]-want) > 1e-5 {
					t.Fatalf("kernel %v: D[%d][%d] = %v, want %v", k, i, j, got[i*n+j], want)
				}
			}
		}
	}
}

func TestRunEnsembleValidates(t *testing.T) {
	bad := traj.Ensemble{nil}
	if _, err := RunEnsemble(bad, Naive, 2); err == nil {
		t.Fatal("nil ensemble member accepted")
	}
}

func TestRunEnsembleMoreRanksThanPairs(t *testing.T) {
	ens := traj.Ensemble{synth.Walk("t0", 4, 3, 5, 0)}
	got, err := RunEnsemble(ens, Blocked, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("self distance = %v", got[0])
	}
}

func TestEmptyTrajectories(t *testing.T) {
	a := traj.New("a", 3)
	b := traj.New("b", 3)
	m, err := Matrix2DRMS(a, b, Blocked)
	if err != nil || len(m) != 0 {
		t.Errorf("empty matrix = %v, %v", m, err)
	}
}
