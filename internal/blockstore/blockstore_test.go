package blockstore

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// Eviction is byte-budget LRU: inserting past the budget drops the
// least-recently-used entries, and a Get refreshes recency.
func TestByteBudgetEvictionOrder(t *testing.T) {
	s := New(100)
	s.Put("a", "A", 40)
	s.Put("b", "B", 40)
	// Touch a so b becomes the eviction candidate.
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	s.Put("c", "C", 40) // 120 > 100: evicts b (LRU), not a
	if _, ok := s.index["b"]; ok {
		t.Fatal("b survived eviction; want LRU order a,c retained")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently-used a was evicted")
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatal("just-inserted c was evicted")
	}
	if got := s.Bytes(); got != 80 {
		t.Fatalf("bytes = %d, want 80", got)
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}

	// An entry larger than the whole budget is refused outright.
	s.Put("huge", "H", 1000)
	if _, ok := s.index["huge"]; ok {
		t.Fatal("over-budget entry was stored")
	}

	// Replacing an entry accounts the size delta.
	s.Put("a", "A2", 60)
	if got := s.Bytes(); got != 100 {
		t.Fatalf("bytes after resize = %d, want 100", got)
	}
}

// Do computes each key once across concurrent callers; followers share
// the leader's stored value and count as hits with bytes saved.
func TestDoSingleFlight(t *testing.T) {
	s := New(1 << 20)
	var computes atomic.Int64
	release := make(chan struct{})
	const callers = 8

	var wg sync.WaitGroup
	vals := make([]any, callers)
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := s.Do("k", func(any) int64 { return 10 }, func() (any, error) {
				computes.Add(1)
				<-release
				return "value", nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i], hits[i] = v, hit
		}()
	}
	// Let every goroutine reach Do before the leader finishes.
	for computes.Load() == 0 {
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < callers; i++ {
		if vals[i] != "value" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		if !hits[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers reported a miss, want exactly 1 leader", leaders)
	}
	st := s.Stats()
	if st.Hits != int64(callers-1) || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, callers-1)
	}
	if st.BytesSaved != int64(callers-1)*10 {
		t.Fatalf("bytes saved = %d, want %d", st.BytesSaved, (callers-1)*10)
	}
}

// A failing leader stores nothing; a waiting follower is promoted and
// its successful compute lands in the store.
func TestDoLeaderFailurePromotesFollower(t *testing.T) {
	s := New(1 << 20)
	boom := errors.New("boom")
	var calls atomic.Int64
	firstRunning := make(chan struct{})
	secondWaiting := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, hit, err := s.Do("k", func(any) int64 { return 1 }, func() (any, error) {
			calls.Add(1)
			close(firstRunning)
			<-secondWaiting
			return nil, boom
		})
		if hit || !errors.Is(err, boom) {
			t.Errorf("leader: hit=%v err=%v, want miss with boom", hit, err)
		}
	}()

	<-firstRunning
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		v, hit, err := s.Do("k", func(any) int64 { return 1 }, func() (any, error) {
			calls.Add(1)
			return "recovered", nil
		})
		if err != nil || hit || v != "recovered" {
			t.Errorf("follower: v=%v hit=%v err=%v, want recovered miss", v, hit, err)
		}
	}()
	// The follower must be parked on the leader's flight before the
	// leader fails, or it would just lead its own flight.
	for {
		s.mu.Lock()
		_, inflight := s.flights["k"]
		s.mu.Unlock()
		if inflight {
			break
		}
	}
	close(secondWaiting)
	wg.Wait()
	wg2.Wait()

	if got := calls.Load(); got != 2 {
		t.Fatalf("compute ran %d times, want 2 (failed leader + promoted follower)", got)
	}
	if v, ok := s.Get("k"); !ok || v != "recovered" {
		t.Fatalf("stored value = %v (ok=%v), want recovered", v, ok)
	}
}

// A failed compute never leaves an entry behind (cancelled blocks use
// this contract via the incomplete-block sentinel).
func TestDoFailureStoresNothing(t *testing.T) {
	s := New(1 << 20)
	sentinel := errors.New("incomplete")
	v, hit, err := s.Do("k", func(any) int64 { return 8 }, func() (any, error) {
		return []float64{1, 0, 0}, sentinel
	})
	if !errors.Is(err, sentinel) || hit {
		t.Fatalf("hit=%v err=%v, want sentinel miss", hit, err)
	}
	// The partial value is passed through to the caller...
	if v == nil {
		t.Fatal("compute value was not passed through on error")
	}
	// ...but never observable to anyone else.
	if s.Len() != 0 {
		t.Fatalf("store holds %d entries after failed compute, want 0", s.Len())
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("failed compute's value is observable")
	}
}
