// Package blockstore implements the content-addressed result store
// that backs block-level caching across jobs, engines, and the fleet.
//
// # Keys
//
// Entries are keyed by content, not by job: a PSA block key digests the
// block layout (rectangular vs. triangle-packed diagonal) and the
// content digests of the trajectories in its row and column ranges
// (psa.BlockKey); a Leaflet tile key digests the frame's coordinates,
// the cutoff, the edge algorithm, and the tile bounds (leaflet.TileKey);
// whole-job results are stored under their jobs.CacheKey. Because keys
// carry no absolute matrix coordinates and no job identity, the same
// trajectory pair hits the cache wherever it lands in the schedule —
// which is what makes delta resubmission work: a job sharing K of N
// trajectories with cached work re-computes only the O(ΔN·N) blocks
// involving new trajectories, and assembles the rest from the store.
//
// Method, schedule, and frame-residency parameters are deliberately
// excluded from PSA block keys: every Hausdorff method is exact and the
// streamed kernel is bit-identical to the in-memory one, so the values
// of a block depend only on trajectory content and block layout.
//
// # Eviction
//
// The store holds a byte budget, not an entry count: each Put carries
// the entry's payload size and the least-recently-used entries are
// evicted until the budget holds. An entry larger than the whole budget
// is not stored.
//
// # Single flight
//
// Do de-duplicates concurrent identical blocks: the first caller
// computes, later callers wait and share the stored value. If the
// leader fails (or its block was cancelled mid-run), one waiter is
// promoted to compute instead, so a transient failure never poisons
// the key.
//
// # Cancellation
//
// Values are recorded only for completed kernels. A cancelled block's
// zero-filled remainder is never written: compute functions signal an
// incomplete result with an error (the psa and leaflet hooks use a
// sentinel), which Do passes through without storing.
package blockstore

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxBytes is the byte budget used when New is given a
// non-positive budget (mdserver's -cache-bytes default).
const DefaultMaxBytes = 256 << 20

// Stats is a point-in-time snapshot of store accounting.
type Stats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	MaxBytes   int64 `json:"max_bytes"`
	BytesSaved int64 `json:"bytes_saved"`
	Evictions  int64 `json:"evictions"`
}

type entry struct {
	key  string
	val  any
	size int64
}

// flight is one in-progress computation of a key.
type flight struct {
	done chan struct{}
	val  any
	ok   bool // leader completed and stored a value
}

// Store is a byte-budget LRU of content-addressed results, safe for
// concurrent use.
type Store struct {
	mu         sync.Mutex
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used; values are *entry
	index      map[string]*list.Element
	flights    map[string]*flight
	hits       int64
	misses     int64
	bytesSaved int64
	evictions  int64

	// waitObserver, when set, receives the time each follower of a
	// single-flight Do spent blocked on another caller's computation —
	// the contention signal of the store (leaders and plain hits never
	// wait and are not observed).
	waitObserver atomic.Pointer[func(time.Duration)]
}

// SetWaitObserver installs the follower-wait observer (nil clears it).
// The observability layer points it at a latency histogram.
func (s *Store) SetWaitObserver(fn func(time.Duration)) {
	if fn == nil {
		s.waitObserver.Store(nil)
		return
	}
	s.waitObserver.Store(&fn)
}

// New returns a store with the given byte budget; non-positive budgets
// fall back to DefaultMaxBytes.
func New(maxBytes int64) *Store {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{
		maxBytes: maxBytes,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// Get returns the value stored under key, counting a hit or miss and
// refreshing the entry's recency.
func (s *Store) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		return el.Value.(*entry).val, true
	}
	s.misses++
	return nil, false
}

// Put stores val under key with the given payload size, evicting
// least-recently-used entries until the byte budget holds. Entries
// larger than the whole budget are not stored; sizes below zero are
// treated as zero.
func (s *Store) Put(key string, val any, size int64) {
	if size < 0 {
		size = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(key, val, size)
}

func (s *Store) putLocked(key string, val any, size int64) {
	if size > s.maxBytes {
		return
	}
	if el, ok := s.index[key]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.val, e.size = val, size
		s.ll.MoveToFront(el)
	} else {
		e := &entry{key: key, val: val, size: size}
		s.index[key] = s.ll.PushFront(e)
		s.bytes += size
	}
	for s.bytes > s.maxBytes {
		oldest := s.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		s.ll.Remove(oldest)
		delete(s.index, e.key)
		s.bytes -= e.size
		s.evictions++
	}
}

// Do returns the value for key, computing it at most once across
// concurrent callers. On a hit (stored entry, or a concurrent leader's
// freshly stored value) it reports hit=true and credits sizeOf(val)
// bytes as saved work. On a miss the caller becomes the leader: it runs
// compute, stores the value only when compute succeeds, and passes
// compute's value and error through either way. If a leader fails,
// one waiting caller is promoted to leader and retries.
func (s *Store) Do(key string, sizeOf func(val any) int64, compute func() (any, error)) (val any, hit bool, err error) {
	for {
		s.mu.Lock()
		if el, ok := s.index[key]; ok {
			s.ll.MoveToFront(el)
			e := el.Value.(*entry)
			s.hits++
			s.bytesSaved += e.size
			s.mu.Unlock()
			return e.val, true, nil
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			waitStart := time.Now()
			<-f.done
			if fn := s.waitObserver.Load(); fn != nil {
				(*fn)(time.Since(waitStart))
			}
			if f.ok {
				s.mu.Lock()
				s.hits++
				s.bytesSaved += sizeOf(f.val)
				s.mu.Unlock()
				return f.val, true, nil
			}
			// Leader failed; loop and race to become the next leader.
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.misses++
		s.mu.Unlock()

		val, err = compute()
		s.mu.Lock()
		delete(s.flights, key)
		if err == nil {
			s.putLocked(key, val, sizeOf(val))
			f.val, f.ok = val, true
		}
		s.mu.Unlock()
		close(f.done)
		return val, false, err
	}
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the stored payload bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:       s.hits,
		Misses:     s.misses,
		Entries:    s.ll.Len(),
		Bytes:      s.bytes,
		MaxBytes:   s.maxBytes,
		BytesSaved: s.bytesSaved,
		Evictions:  s.evictions,
	}
}
