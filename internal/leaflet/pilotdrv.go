package leaflet

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"mdtask/internal/graph"
	"mdtask/internal/linalg"
	"mdtask/internal/pilot"
)

// RunPilot executes the Leaflet Finder on the pilot engine using
// Approach 2 (the configuration the paper evaluates in Figure 9): one
// Compute-Unit per 2-D block, each unit staging its two coordinate
// chunks in as files, writing its edge list out as a file, and the
// client computing the connected components after all units finish. All
// intermediate data moves through the filesystem, as RADICAL-Pilot's
// architecture requires (§3.3, Table 1: "no shuffle, filesystem-based
// communication").
func RunPilot(p *pilot.Pilot, coords []linalg.Vec3, cutoff float64, nTasks int, opts ...Option) (*Result, error) {
	o := gatherOpts(opts)
	n := len(coords)
	blocks := blocks2D(n, nTasks)
	descs := make([]pilot.UnitDescription, len(blocks))
	for i, b := range blocks {
		b := b
		inputs := map[string][]byte{
			"rows.bin": encodeCoords(coords[b.rows.lo:b.rows.hi]),
		}
		if b.rows != b.cols {
			inputs["cols.bin"] = encodeCoords(coords[b.cols.lo:b.cols.hi])
		}
		descs[i] = pilot.UnitDescription{
			Name:        fmt.Sprintf("leaflet-block-%d", i),
			InputFiles:  inputs,
			OutputFiles: []string{"edges.bin"},
			Fn: func(sandbox string) error {
				if o.cancelled() {
					// Emit an empty edge file; the job layer discards the
					// result of a cancelled run.
					return os.WriteFile(filepath.Join(sandbox, "edges.bin"), nil, 0o644)
				}
				rows, err := readCoords(filepath.Join(sandbox, "rows.bin"))
				if err != nil {
					return err
				}
				var edges []graph.Edge
				if b.rows == b.cols {
					for _, e := range linalg.PairsWithinSelf(rows, cutoff) {
						edges = append(edges, graph.Edge{
							U: e[0] + int32(b.rows.lo),
							V: e[1] + int32(b.rows.lo),
						})
					}
				} else {
					cols, err := readCoords(filepath.Join(sandbox, "cols.bin"))
					if err != nil {
						return err
					}
					for _, e := range linalg.PairsWithin(rows, cols, cutoff) {
						edges = append(edges, graph.Edge{
							U: e[0] + int32(b.rows.lo),
							V: e[1] + int32(b.cols.lo),
						})
					}
				}
				return os.WriteFile(filepath.Join(sandbox, "edges.bin"), encodeEdges(edges), 0o644)
			},
		}
	}
	units, err := p.Submit(descs)
	if err != nil {
		return nil, err
	}
	if err := p.Wait(units); err != nil {
		return nil, err
	}
	var edges []graph.Edge
	for _, u := range units {
		raw, ok := u.Output("edges.bin")
		if !ok {
			return nil, fmt.Errorf("leaflet: unit %d produced no edge file", u.ID)
		}
		es, err := decodeEdges(raw)
		if err != nil {
			return nil, fmt.Errorf("leaflet: unit %d: %w", u.ID, err)
		}
		edges = append(edges, es...)
	}
	return finish(graph.ComponentsUnionFind(n, edges), Stats{
		Tasks:        len(blocks),
		Edges:        int64(len(edges)),
		ShuffleBytes: graph.EdgeBytes(len(edges)), // via the filesystem
	}), nil
}

// encodeCoords packs points as little-endian float64 triples.
func encodeCoords(pts []linalg.Vec3) []byte {
	out := make([]byte, 0, len(pts)*24)
	for _, p := range pts {
		for k := 0; k < 3; k++ {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p[k]))
		}
	}
	return out
}

// readCoords loads points written by encodeCoords.
func readCoords(path string) ([]linalg.Vec3, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b)%24 != 0 {
		return nil, fmt.Errorf("leaflet: coordinate file %s has odd length %d", path, len(b))
	}
	out := make([]linalg.Vec3, len(b)/24)
	for i := range out {
		for k := 0; k < 3; k++ {
			out[i][k] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*24+k*8:]))
		}
	}
	return out, nil
}

// encodeEdges packs edges as little-endian int32 pairs.
func encodeEdges(edges []graph.Edge) []byte {
	out := make([]byte, 0, len(edges)*8)
	for _, e := range edges {
		out = binary.LittleEndian.AppendUint32(out, uint32(e.U))
		out = binary.LittleEndian.AppendUint32(out, uint32(e.V))
	}
	return out
}

// decodeEdges unpacks edges written by encodeEdges.
func decodeEdges(b []byte) ([]graph.Edge, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("leaflet: edge payload length %d not a multiple of 8", len(b))
	}
	out := make([]graph.Edge, len(b)/8)
	for i := range out {
		out[i].U = int32(binary.LittleEndian.Uint32(b[i*8:]))
		out[i].V = int32(binary.LittleEndian.Uint32(b[i*8+4:]))
	}
	return out, nil
}
