package leaflet

import (
	"errors"
	"testing"
	"time"

	"mdtask/internal/dask"
	"mdtask/internal/linalg"
	"mdtask/internal/pilot"
	"mdtask/internal/rdd"
	"mdtask/internal/synth"
)

// Integration: every approach on every engine must produce exactly the
// serial reference partition.
func TestAllApproachesAllEnginesMatchSerial(t *testing.T) {
	sys := membrane(3000)
	want := Serial(sys.Coords, synth.BilayerCutoff)
	if len(want.Components) != 2 {
		t.Fatalf("reference found %d components", len(want.Components))
	}
	const nTasks = 24

	for _, approach := range Approaches {
		approach := approach
		t.Run(approach.String(), func(t *testing.T) {
			t.Run("rdd", func(t *testing.T) {
				got, err := RunRDD(rdd.NewContext(4), approach, sys.Coords, synth.BilayerCutoff, nTasks)
				if err != nil {
					t.Fatal(err)
				}
				if !Equal(got, want) {
					t.Fatal("rdd result differs from serial")
				}
				checkStats(t, got, want)
			})
			t.Run("dask", func(t *testing.T) {
				got, err := RunDask(dask.NewClient(4), approach, sys.Coords, synth.BilayerCutoff, nTasks)
				if err != nil {
					t.Fatal(err)
				}
				if !Equal(got, want) {
					t.Fatal("dask result differs from serial")
				}
				checkStats(t, got, want)
			})
			t.Run("mpi", func(t *testing.T) {
				got, err := RunMPI(4, approach, sys.Coords, synth.BilayerCutoff, nTasks)
				if err != nil {
					t.Fatal(err)
				}
				if !Equal(got, want) {
					t.Fatal("mpi result differs from serial")
				}
				checkStats(t, got, want)
			})
		})
	}
}

// checkStats verifies the data-movement profile is consistent with the
// reference result.
func checkStats(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Stats.Edges != want.Stats.Edges {
		t.Errorf("edges = %d, want %d", got.Stats.Edges, want.Stats.Edges)
	}
	if got.Stats.Tasks <= 0 {
		t.Errorf("tasks = %d", got.Stats.Tasks)
	}
	if got.Stats.ShuffleBytes <= 0 {
		t.Errorf("shuffle bytes = %d", got.Stats.ShuffleBytes)
	}
}

func TestApproach3ShufflesLessThanApproach2(t *testing.T) {
	sys := membrane(4096)
	a2, err := RunRDD(rdd.NewContext(4), TaskAPI2D, sys.Coords, synth.BilayerCutoff, 32)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := RunRDD(rdd.NewContext(4), ParallelCC, sys.Coords, synth.BilayerCutoff, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Stats.ShuffleBytes*2 > a2.Stats.ShuffleBytes {
		t.Errorf("Approach 3 shuffle (%d B) not <50%% of Approach 2 (%d B)",
			a3.Stats.ShuffleBytes, a2.Stats.ShuffleBytes)
	}
}

func TestApproach1BroadcastAccounted(t *testing.T) {
	sys := membrane(1500)
	res, err := RunRDD(rdd.NewContext(2), Broadcast1D, sys.Coords, synth.BilayerCutoff, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BroadcastBytes != CoordBytes(len(sys.Coords)) {
		t.Errorf("broadcast = %d, want %d", res.Stats.BroadcastBytes, CoordBytes(len(sys.Coords)))
	}
	res2, err := RunRDD(rdd.NewContext(2), TaskAPI2D, sys.Coords, synth.BilayerCutoff, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.BroadcastBytes != 0 {
		t.Errorf("approach 2 broadcast = %d, want 0", res2.Stats.BroadcastBytes)
	}
}

func TestDaskScatterLimit(t *testing.T) {
	// Reproduce §4.3.1: Dask's scatter cannot broadcast systems above
	// the per-element-list limit. The driver rejects by atom count
	// before doing any work, so a zeroed slice suffices.
	big := make([]linalg.Vec3, DaskScatterAtomLimit+1)
	_, err := RunDask(dask.NewClient(2), Broadcast1D, big, 1.0, 8)
	if !errors.Is(err, ErrDaskScatter) {
		t.Fatalf("err = %v, want ErrDaskScatter", err)
	}
	// The same system size works on the other approaches' path checks
	// (no scatter); we do not run them here to keep the test fast.
}

func TestPilotDriverMatchesSerial(t *testing.T) {
	sys := membrane(1200)
	want := Serial(sys.Coords, synth.BilayerCutoff)
	cfg := pilot.Config{
		DBLatency:          50 * time.Microsecond,
		AgentPollInterval:  500 * time.Microsecond,
		ClientPollInterval: 500 * time.Microsecond,
	}
	p, err := pilot.NewPilot(4, t.TempDir(), pilot.NewDB(cfg.DBLatency), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	got, err := RunPilot(p, sys.Coords, synth.BilayerCutoff, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("pilot result differs from serial")
	}
	if got.Stats.Edges != want.Stats.Edges {
		t.Errorf("edges = %d, want %d", got.Stats.Edges, want.Stats.Edges)
	}
}

func TestDaskWorkerMemoryLimit(t *testing.T) {
	// With a tiny memory limit, cdist-based approaches fail with the
	// worker-restart error while the tree approach (no cdist matrix)
	// succeeds — the paper's §4.3.3/§4.3.4 contrast.
	sys := membrane(3000)
	client := dask.NewClient(4)
	client.MemoryLimit = 64 << 10
	_, err := RunDask(client, TaskAPI2D, sys.Coords, synth.BilayerCutoff, 8)
	if !errors.Is(err, dask.ErrWorkerRestarted) {
		t.Fatalf("err = %v, want ErrWorkerRestarted", err)
	}
	client2 := dask.NewClient(4)
	client2.MemoryLimit = 64 << 10
	res, err := RunDask(client2, TreeSearch, sys.Coords, synth.BilayerCutoff, 8)
	if err != nil {
		t.Fatalf("tree approach failed under memory limit: %v", err)
	}
	if len(res.Components) != 2 {
		t.Errorf("components = %d", len(res.Components))
	}
}

func TestRunRDDUnknownApproach(t *testing.T) {
	sys := membrane(100)
	if _, err := RunRDD(rdd.NewContext(2), Approach(9), sys.Coords, 1, 4); err == nil {
		t.Error("unknown approach accepted (rdd)")
	}
	if _, err := RunDask(dask.NewClient(2), Approach(9), sys.Coords, 1, 4); err == nil {
		t.Error("unknown approach accepted (dask)")
	}
	if _, err := RunMPI(2, Approach(9), sys.Coords, 1, 4); err == nil {
		t.Error("unknown approach accepted (mpi)")
	}
}

func TestSingleTaskDegenerate(t *testing.T) {
	sys := membrane(600)
	want := Serial(sys.Coords, synth.BilayerCutoff)
	got, err := RunRDD(rdd.NewContext(2), TaskAPI2D, sys.Coords, synth.BilayerCutoff, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("single-task run differs")
	}
	if got.Stats.Tasks != 1 {
		t.Errorf("tasks = %d", got.Stats.Tasks)
	}
}
