package leaflet

import (
	"fmt"
	"sync/atomic"

	"mdtask/internal/graph"
	"mdtask/internal/linalg"
	"mdtask/internal/rdd"
)

// RunRDD executes the Leaflet Finder on the Spark-like engine with the
// selected architectural approach. nTasks bounds the number of map
// tasks (the paper uses 1024 partitions).
func RunRDD(ctx *rdd.Context, approach Approach, coords []linalg.Vec3, cutoff float64, nTasks int, opts ...Option) (*Result, error) {
	o := gatherOpts(opts)
	n := len(coords)
	switch approach {
	case Broadcast1D:
		// Broadcast the whole system; 1-D partition the rows; map to edge
		// lists; collect and compute components on the master.
		bc := rdd.NewBroadcast(ctx, coords, CoordBytes(n))
		chunks := chunks1D(n, nTasks)
		r := rdd.Parallelize(ctx, chunks, len(chunks))
		edges, err := rdd.FlatMap(r, func(s span) ([]graph.Edge, error) {
			if o.cancelled() {
				return nil, nil
			}
			return rowChunkEdges(bc.Value, s, cutoff), nil
		}).Collect()
		if err != nil {
			return nil, err
		}
		ctx.Metrics.AddShuffle(graph.EdgeBytes(len(edges)))
		return finish(graph.ComponentsUnionFind(n, edges), Stats{
			Tasks:          len(chunks),
			Edges:          int64(len(edges)),
			BroadcastBytes: CoordBytes(n),
			ShuffleBytes:   graph.EdgeBytes(len(edges)),
		}), nil

	case TaskAPI2D:
		// 2-D pre-partitioned blocks; map to edge lists; collect; master
		// computes components.
		blocks := blocks2D(n, nTasks)
		r := rdd.Parallelize(ctx, blocks, len(blocks))
		edges, err := rdd.FlatMap(r, func(b block) ([]graph.Edge, error) {
			if o.cancelled() {
				return nil, nil
			}
			return blockEdgesBrute(coords, b, cutoff), nil
		}).Collect()
		if err != nil {
			return nil, err
		}
		ctx.Metrics.AddShuffle(graph.EdgeBytes(len(edges)))
		return finish(graph.ComponentsUnionFind(n, edges), Stats{
			Tasks:        len(blocks),
			Edges:        int64(len(edges)),
			ShuffleBytes: graph.EdgeBytes(len(edges)),
		}), nil

	case ParallelCC, TreeSearch:
		// Map: edges + partial components per block. Reduce: merge
		// component sets sharing nodes. Only components cross the shuffle.
		blocks := blocks2D(n, nTasks)
		useTree := approach == TreeSearch
		var edgeCount, shuffleBytes int64
		r := rdd.Parallelize(ctx, blocks, len(blocks))
		partials := rdd.Map(r, func(b block) (partialOut, error) {
			if o.cancelled() {
				return partialOut{}, nil
			}
			tp := o.tilePartial(coords, b, cutoff, useTree)
			atomic.AddInt64(&edgeCount, tp.Edges)
			atomic.AddInt64(&shuffleBytes, graph.ComponentBytes(tp.Comps))
			return partialOut{Comps: tp.Comps, Edges: tp.Edges}, nil
		})
		merged, err := rdd.Reduce(partials, func(a, b partialOut) partialOut {
			return partialOut{Comps: mergePartialSets(a.Comps, b.Comps), Edges: a.Edges + b.Edges}
		})
		if err != nil {
			return nil, err
		}
		ctx.Metrics.AddShuffle(shuffleBytes)
		return finish(labelsFromComponents(n, merged.Comps), Stats{
			Tasks:        len(blocks),
			Edges:        edgeCount,
			ShuffleBytes: shuffleBytes,
		}), nil

	default:
		return nil, fmt.Errorf("leaflet: unknown approach %v", approach)
	}
}
