package leaflet

import (
	"time"

	"mdtask/internal/blockstore"
	"mdtask/internal/engine"
	"mdtask/internal/obs"
)

// Option configures a driver run. The zero set of options preserves the
// historical behaviour of every driver.
type Option func(*runOpts)

type runOpts struct {
	cancel  func() bool
	metrics *engine.Metrics

	// Tile cache (WithBlockCache): the content-addressed store the
	// Parallel-CC / Tree-Search tile bodies consult, the coordinate
	// digest tiles are keyed under, and the sink cache accounting goes
	// to (distinct from metrics, which only RunMPI routes task timing
	// through).
	store        *blockstore.Store
	coordsDigest string
	cacheMetrics *engine.Metrics

	// Tracing (WithTrace): each tile body records a leaflet.tile span
	// parented under traceParent.
	tracer      *obs.Tracer
	traceParent obs.SpanContext
}

func (o runOpts) cancelled() bool { return o.cancel != nil && o.cancel() }

// recordTask accounts one task started at start into the metrics sink,
// if one was supplied.
func (o runOpts) recordTask(start time.Time) {
	if o.metrics != nil {
		o.metrics.RecordTask(time.Since(start))
	}
}

func gatherOpts(opts []Option) runOpts {
	var o runOpts
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithCancel installs a cooperative cancellation flag: tasks poll it at
// block boundaries and skip their remaining work once it reports true,
// so a run drains quickly instead of completing. The caller is
// responsible for discarding the partial result of a cancelled run.
func WithCancel(fn func() bool) Option { return func(o *runOpts) { o.cancel = fn } }

// WithMetrics directs the engine accounting of runners that do not carry
// their own metrics-bearing context (RunMPI) into m. The rdd, dask and
// pilot runners account through their Context/Client/Pilot instead.
func WithMetrics(m *engine.Metrics) Option { return func(o *runOpts) { o.metrics = m } }

// WithTrace makes each tile body record a leaflet.tile span (with tile
// bounds and cache outcome) into t, parented under parent. A nil t
// disables tracing.
func WithTrace(t *obs.Tracer, parent obs.SpanContext) Option {
	return func(o *runOpts) {
		o.tracer = t
		o.traceParent = parent
	}
}
