package leaflet

import (
	mathrand "math/rand"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"mdtask/internal/graph"
	"mdtask/internal/linalg"
	"mdtask/internal/synth"
)

func membrane(n int) *synth.BilayerSystem { return synth.Bilayer(n, 4242) }

func TestSerialFindsTwoLeaflets(t *testing.T) {
	sys := membrane(2048)
	res := Serial(sys.Coords, synth.BilayerCutoff)
	if len(res.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(res.Components))
	}
	// The two components must match the generator's ground truth.
	for i, l := range sys.Leaflet {
		sameAsFirst := res.Labels[i] == res.Labels[0]
		if (l == sys.Leaflet[0]) != sameAsFirst {
			t.Fatalf("atom %d assigned to wrong leaflet", i)
		}
	}
	lo, hi := sys.CountLeaflets()
	if len(res.Components[0]) != lo && len(res.Components[0]) != hi {
		t.Errorf("component sizes %d/%d vs ground truth %d/%d",
			len(res.Components[0]), len(res.Components[1]), lo, hi)
	}
}

func TestSerialOnGas(t *testing.T) {
	// A dilute random gas with a tiny cutoff: mostly singletons; the
	// result must still be a valid canonical labeling.
	r := rand.New(rand.NewPCG(1, 2))
	pts := make([]linalg.Vec3, 500)
	for i := range pts {
		pts[i] = linalg.Vec3{r.Float64() * 1000, r.Float64() * 1000, r.Float64() * 1000}
	}
	res := Serial(pts, 5)
	if err := graph.CheckLabels(res.Labels); err != nil {
		t.Fatal(err)
	}
}

// Every unordered pair must be examined by exactly one 2-D block.
func TestBlocks2DPairCoverageQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(args []reflect.Value, r *mathrand.Rand) {
			args[0] = reflect.ValueOf(1 + r.Intn(60))
			args[1] = reflect.ValueOf(1 + r.Intn(40))
		},
	}
	f := func(n, maxTasks int) bool {
		blocks := blocks2D(n, maxTasks)
		if len(blocks) > maxTasks && maxTasks >= 1 {
			return false
		}
		count := make(map[[2]int]int)
		for _, b := range blocks {
			if b.rows == b.cols {
				for i := b.rows.lo; i < b.rows.hi; i++ {
					for j := i + 1; j < b.rows.hi; j++ {
						count[[2]int{i, j}]++
					}
				}
			} else {
				for i := b.rows.lo; i < b.rows.hi; i++ {
					for j := b.cols.lo; j < b.cols.hi; j++ {
						a, bb := i, j
						if a > bb {
							a, bb = bb, a
						}
						count[[2]int{a, bb}]++
					}
				}
			}
		}
		want := n * (n - 1) / 2
		if len(count) != want {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestChunks1DCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, parts := range []int{1, 3, 7, 200} {
			ch := chunks1D(n, parts)
			pos := 0
			for _, s := range ch {
				if s.lo != pos {
					t.Fatalf("n=%d parts=%d: gap at %d", n, parts, s.lo)
				}
				pos = s.hi
			}
			if pos != n {
				t.Fatalf("n=%d parts=%d: ends at %d", n, parts, pos)
			}
		}
	}
}

func TestTreeEdgesMatchBruteEdges(t *testing.T) {
	sys := membrane(1024)
	blocks := blocks2D(len(sys.Coords), 12)
	for _, b := range blocks {
		brute := blockEdgesBrute(sys.Coords, b, synth.BilayerCutoff)
		tree := blockEdgesTree(sys.Coords, b, synth.BilayerCutoff)
		if !sameEdgeSet(brute, tree) {
			t.Fatalf("block %+v: tree edges differ from brute (%d vs %d)",
				b, len(brute), len(tree))
		}
	}
}

func sameEdgeSet(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	norm := func(e graph.Edge) graph.Edge {
		if e.U > e.V {
			return graph.Edge{U: e.V, V: e.U}
		}
		return e
	}
	set := make(map[graph.Edge]int, len(a))
	for _, e := range a {
		set[norm(e)]++
	}
	for _, e := range b {
		set[norm(e)]--
	}
	for _, c := range set {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestRowChunkEdgesCoverUpperTriangle(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	pts := make([]linalg.Vec3, 80)
	for i := range pts {
		pts[i] = linalg.Vec3{r.Float64() * 20, r.Float64() * 20, r.Float64() * 20}
	}
	const cutoff = 5.0
	var all []graph.Edge
	for _, s := range chunks1D(len(pts), 7) {
		all = append(all, rowChunkEdges(pts, s, cutoff)...)
	}
	want := PairsAsEdges(linalg.PairsWithinSelf(pts, cutoff))
	if !sameEdgeSet(all, want) {
		t.Fatalf("1-D chunked edges (%d) differ from global (%d)", len(all), len(want))
	}
}

// PairsAsEdges converts index pairs to edges (test helper).
func PairsAsEdges(pairs [][2]int32) []graph.Edge {
	out := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = graph.Edge{U: p[0], V: p[1]}
	}
	return out
}

func TestMergePartialSets(t *testing.T) {
	a := []graph.Component{{1, 2}, {5}}
	b := []graph.Component{{2, 3}, {8, 9}}
	got := mergePartialSets(a, b)
	// {1,2}+{2,3} -> {1,2,3}; {5}; {8,9}
	if len(got) != 3 {
		t.Fatalf("merged = %v", got)
	}
	if !reflect.DeepEqual(got[0], graph.Component{1, 2, 3}) {
		t.Errorf("merged[0] = %v", got[0])
	}
	if !reflect.DeepEqual(got[1], graph.Component{5}) {
		t.Errorf("merged[1] = %v (singleton must survive)", got[1])
	}
}

func TestLabelsFromComponents(t *testing.T) {
	labels := labelsFromComponents(6, []graph.Component{{1, 4}, {2, 5}})
	want := []int32{0, 1, 2, 3, 1, 2}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
}

func TestPlanHelpers(t *testing.T) {
	dims := Plan2D(100, 10)
	if len(dims) == 0 || len(dims) > 10 {
		t.Fatalf("Plan2D returned %d blocks", len(dims))
	}
	var totalPairs int64
	for _, d := range dims {
		if d.Diagonal {
			totalPairs += int64(d.Rows) * int64(d.Rows-1) / 2
		} else {
			totalPairs += int64(d.Rows) * int64(d.Cols)
		}
	}
	if totalPairs != 100*99/2 {
		t.Errorf("Plan2D pairs = %d, want %d", totalPairs, 100*99/2)
	}
	lens, pairs := Plan1D(100, 8)
	var sumLen int
	var sumPairs int64
	for i := range lens {
		sumLen += lens[i]
		sumPairs += pairs[i]
	}
	if sumLen != 100 || sumPairs != 100*99/2 {
		t.Errorf("Plan1D sums = %d atoms, %d pairs", sumLen, sumPairs)
	}
}

func TestSampleDataMovement(t *testing.T) {
	sys := membrane(2048)
	st := SampleDataMovement(sys.Coords, synth.BilayerCutoff, 32)
	if st.Edges <= 0 || st.ShuffleBytes <= 0 || st.Tasks <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Component ids crossing the shuffle must be far fewer bytes than
	// the edge list (the point of Approach 3).
	if st.ShuffleBytes >= graph.EdgeBytes(int(st.Edges)) {
		t.Errorf("component shuffle %d B not smaller than edges %d B",
			st.ShuffleBytes, graph.EdgeBytes(int(st.Edges)))
	}
}

func TestCoordBytes(t *testing.T) {
	if CoordBytes(100) != 2400 {
		t.Errorf("CoordBytes = %d", CoordBytes(100))
	}
}

func TestApproachStrings(t *testing.T) {
	for _, a := range Approaches {
		if a.String() == "" || a.String() == "Approach(0)" {
			t.Errorf("approach %d has bad name", int(a))
		}
	}
	if Approach(9).String() != "Approach(9)" {
		t.Error("unknown approach string")
	}
}

func TestRecommended(t *testing.T) {
	if Recommended(131_072) != ParallelCC || Recommended(262_144) != ParallelCC {
		t.Error("small systems should use pairwise distances (Approach 3)")
	}
	if Recommended(524_288) != TreeSearch || Recommended(4_000_000) != TreeSearch {
		t.Error("large systems should use the tree search (Approach 4)")
	}
}
