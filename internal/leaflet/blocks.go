package leaflet

import (
	"fmt"

	"mdtask/internal/graph"
	"mdtask/internal/linalg"
)

// BlockSpec addresses one 2-D tile of the pairwise comparison space by
// atom index ranges: rows [RLo,RHi) against columns [CLo,CHi). It is
// the distributable unit of the fleet engine — plain integers that
// survive a trip over the wire, unlike the unexported block type the
// in-process drivers share.
type BlockSpec struct {
	RLo, RHi, CLo, CHi int
}

// Diagonal reports whether the tile compares a chunk against itself.
func (b BlockSpec) Diagonal() bool { return b.RLo == b.CLo && b.RHi == b.CHi }

// Valid checks the spec's ranges against an n-atom system.
func (b BlockSpec) Valid(n int) error {
	if b.RLo < 0 || b.RLo > b.RHi || b.RHi > n || b.CLo < 0 || b.CLo > b.CHi || b.CHi > n {
		return fmt.Errorf("leaflet: block %+v out of range for %d atoms", b, n)
	}
	return nil
}

// Blocks returns the 2-D tiling of Plan2D as addressable specs: the
// same upper-triangular chunk-pair schedule Approaches 2-4 run, with
// every unordered atom pair covered by exactly one tile.
func Blocks(n, maxTasks int) []BlockSpec {
	blocks := blocks2D(n, maxTasks)
	out := make([]BlockSpec, len(blocks))
	for i, b := range blocks {
		out[i] = BlockSpec{RLo: b.rows.lo, RHi: b.rows.hi, CLo: b.cols.lo, CHi: b.cols.hi}
	}
	return out
}

// BlockPartial computes one tile's partial connected components and its
// discovered edge count — the map side of the Parallel-CC architecture
// (tree selects the BallTree kernel of Approach 4, otherwise pairwise
// distances). This is the task body fleet workers execute.
func BlockPartial(coords []linalg.Vec3, b BlockSpec, cutoff float64, tree bool) ([]graph.Component, int64) {
	blk := block{
		rows: span{lo: b.RLo, hi: b.RHi},
		cols: span{lo: b.CLo, hi: b.CHi},
	}
	edges := blockEdges(coords, blk, cutoff, tree)
	return graph.PartialComponents(edges), int64(len(edges))
}

// FromPartials folds per-unit partial component sets (in unit order)
// into a full Result over n atoms, exactly as the in-process drivers'
// reduce does: sets sharing a node merge, and the merged components
// expand into the canonical labeling.
func FromPartials(n int, partials [][]graph.Component, stats Stats) *Result {
	var merged []graph.Component
	for _, p := range partials {
		merged = mergePartialSets(merged, p)
	}
	return finish(labelsFromComponents(n, merged), stats)
}
