// Package leaflet implements the Leaflet Finder algorithm (the paper's
// §2.1.2, Algorithm 3): assign lipid atoms to the two leaflets of a
// bilayer by building the graph of atoms closer than a cutoff and
// computing its connected components.
//
// Four architectural approaches are implemented, mirroring Table 2:
//
//	Approach 1 — Broadcast & 1-D partitioning: the whole system is
//	  broadcast; each task computes pairwise distances of a row chunk
//	  against all atoms; edge lists are collected and components
//	  computed on the master.
//	Approach 2 — Task API & 2-D partitioning: tasks receive
//	  pre-partitioned 2-D blocks, compute edges via pairwise distance,
//	  edges are collected and components computed on the master.
//	Approach 3 — Parallel Connected Components: like 2, but each task
//	  also computes the partial connected components of its block so
//	  only components (O(n)) are shuffled instead of edges (O(E)).
//	Approach 4 — Tree-Search: like 3, but edge discovery uses a
//	  BallTree nearest-neighbor query instead of pairwise distances.
//
// Each approach has drivers for the Spark-like (rdd), Dask-like (dask)
// and MPI engines; Approach 2 additionally runs on the pilot engine
// (the paper's Figure 9). All drivers are validated against Serial.
package leaflet

import (
	"fmt"

	"mdtask/internal/balltree"
	"mdtask/internal/graph"
	"mdtask/internal/linalg"
)

// Approach selects one of the paper's four architectures (Table 2).
type Approach int

const (
	// Broadcast1D is Approach 1: broadcast & 1-D partitioning.
	Broadcast1D Approach = iota + 1
	// TaskAPI2D is Approach 2: task API & 2-D partitioning.
	TaskAPI2D
	// ParallelCC is Approach 3: parallel connected components.
	ParallelCC
	// TreeSearch is Approach 4: tree-based search & parallel CC.
	TreeSearch
)

// String returns the approach's display name from Table 2.
func (a Approach) String() string {
	switch a {
	case Broadcast1D:
		return "Broadcast & 1-D Partitioning"
	case TaskAPI2D:
		return "Task API & 2-D Partitioning"
	case ParallelCC:
		return "Parallel Connected Components"
	case TreeSearch:
		return "Tree-Search"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Approaches lists all four in the paper's order.
var Approaches = []Approach{Broadcast1D, TaskAPI2D, ParallelCC, TreeSearch}

// TreeCrossoverAtoms is the system size above which tree-based edge
// discovery beats pairwise distances in the paper's evaluation (faster
// from 524k atoms up, slower at 262k and below, §4.3.4).
const TreeCrossoverAtoms = 400_000

// Recommended returns the architectural approach the paper's findings
// select for a system size: parallel connected components with pairwise
// distances below the crossover, tree search above it.
func Recommended(nAtoms int) Approach {
	if nAtoms >= TreeCrossoverAtoms {
		return TreeSearch
	}
	return ParallelCC
}

// Stats records the data-movement profile of a run, the quantities
// Table 2 and Figure 8 report.
type Stats struct {
	Tasks          int
	Edges          int64
	BroadcastBytes int64
	ShuffleBytes   int64
}

// Result is the outcome of a Leaflet Finder run.
type Result struct {
	// Labels is the canonical component labeling of every atom.
	Labels []int32
	// Components are the connected components, largest first. For a
	// well-formed bilayer the first two are the leaflets.
	Components []graph.Component
	Stats      Stats
}

// Serial computes the reference result on one goroutine, using a
// BallTree for edge discovery so it stays usable on paper-sized systems.
// A WithCancel option is polled every few thousand atoms; a cancelled
// run returns its partial result, which the caller must discard.
func Serial(coords []linalg.Vec3, cutoff float64, opts ...Option) *Result {
	o := gatherOpts(opts)
	n := len(coords)
	tree := balltree.New(coords)
	uf := graph.NewUnionFind(n)
	var edges int64
	var buf []int32
	for i := 0; i < n; i++ {
		if i%4096 == 0 && o.cancelled() {
			break
		}
		buf = tree.QueryRadiusAppend(buf[:0], coords[i], cutoff)
		for _, j := range buf {
			if j > int32(i) {
				uf.Union(int32(i), j)
				edges++
			}
		}
	}
	labels := uf.Labels()
	return &Result{
		Labels:     labels,
		Components: graph.Groups(labels),
		Stats:      Stats{Tasks: 1, Edges: edges},
	}
}

// Equal reports whether two results partition the atoms identically.
func Equal(a, b *Result) bool { return graph.EqualLabels(a.Labels, b.Labels) }

// finish converts a canonical labeling plus stats into a Result.
func finish(labels []int32, stats Stats) *Result {
	return &Result{Labels: labels, Components: graph.Groups(labels), Stats: stats}
}

// span is a half-open index range of atoms.
type span struct{ lo, hi int }

func (s span) len() int { return s.hi - s.lo }

// chunks1D splits [0, n) into parts contiguous spans (Approach 1's row
// partitioning).
func chunks1D(n, parts int) []span {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]span, 0, parts)
	for p := 0; p < parts; p++ {
		out = append(out, span{lo: p * n / parts, hi: (p + 1) * n / parts})
	}
	return out
}

// block is one 2-D tile: rows × cols of the (upper-triangular) pairwise
// comparison space.
type block struct{ rows, cols span }

// blocks2D tiles the upper triangle of the n×n comparison space into at
// most maxTasks blocks: the atom range is cut into p chunks with
// p(p+1)/2 <= maxTasks, and every chunk pair (i <= j) becomes a task.
// This is the paper's 2-D pre-partitioning (Approaches 2-4).
func blocks2D(n, maxTasks int) []block {
	p := 1
	for (p+1)*(p+2)/2 <= maxTasks {
		p++
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	ch := chunks1D(n, p)
	var out []block
	for i := 0; i < len(ch); i++ {
		for j := i; j < len(ch); j++ {
			out = append(out, block{rows: ch[i], cols: ch[j]})
		}
	}
	return out
}

// blockEdgesBrute finds all edges of one block by pairwise distance
// (SciPy-cdist style, Approaches 2 and 3). Diagonal blocks scan i<j;
// off-diagonal blocks scan the full cross product. Every unordered pair
// of the global graph is covered exactly once across the tiling.
func blockEdgesBrute(coords []linalg.Vec3, b block, cutoff float64) []graph.Edge {
	c2 := cutoff * cutoff
	var out []graph.Edge
	if b.rows == b.cols {
		for i := b.rows.lo; i < b.rows.hi; i++ {
			p := coords[i]
			for j := i + 1; j < b.rows.hi; j++ {
				if linalg.Dist2(p, coords[j]) <= c2 {
					out = append(out, graph.Edge{U: int32(i), V: int32(j)})
				}
			}
		}
		return out
	}
	for i := b.rows.lo; i < b.rows.hi; i++ {
		p := coords[i]
		for j := b.cols.lo; j < b.cols.hi; j++ {
			if linalg.Dist2(p, coords[j]) <= c2 {
				out = append(out, graph.Edge{U: int32(i), V: int32(j)})
			}
		}
	}
	return out
}

// blockEdgesTree finds the same edges as blockEdgesBrute using a
// BallTree over the column chunk queried by each row atom (Approach 4).
func blockEdgesTree(coords []linalg.Vec3, b block, cutoff float64) []graph.Edge {
	tree := balltree.New(coords[b.cols.lo:b.cols.hi])
	var out []graph.Edge
	var buf []int32
	for i := b.rows.lo; i < b.rows.hi; i++ {
		buf = tree.QueryRadiusAppend(buf[:0], coords[i], cutoff)
		for _, local := range buf {
			j := int32(b.cols.lo) + local
			if b.rows == b.cols {
				if j <= int32(i) {
					continue
				}
			}
			out = append(out, graph.Edge{U: int32(i), V: j})
		}
	}
	return out
}

// blockEdges dispatches on the approach's edge-discovery kernel.
func blockEdges(coords []linalg.Vec3, b block, cutoff float64, tree bool) []graph.Edge {
	if tree {
		return blockEdgesTree(coords, b, cutoff)
	}
	return blockEdgesBrute(coords, b, cutoff)
}

// rowChunkEdges finds edges between a row chunk and all atoms with the
// second index greater than the first (Approach 1's map task over the
// broadcast system).
func rowChunkEdges(coords []linalg.Vec3, rows span, cutoff float64) []graph.Edge {
	c2 := cutoff * cutoff
	var out []graph.Edge
	for i := rows.lo; i < rows.hi; i++ {
		p := coords[i]
		for j := i + 1; j < len(coords); j++ {
			if linalg.Dist2(p, coords[j]) <= c2 {
				out = append(out, graph.Edge{U: int32(i), V: int32(j)})
			}
		}
	}
	return out
}

// partialOut is the map-side output of Approaches 3 and 4: the block's
// partial components plus its discovered edge count.
type partialOut struct {
	Comps []graph.Component
	Edges int64
}

// mergePartialSets joins two partial-component sets, combining
// components that share a node (the associative reduce of Approach 3).
func mergePartialSets(a, b []graph.Component) []graph.Component {
	pseudo := make([]graph.Edge, 0, len(a)+len(b))
	collect := func(cs []graph.Component) {
		for _, c := range cs {
			for i := 1; i < len(c); i++ {
				pseudo = append(pseudo, graph.Edge{U: c[0], V: c[i]})
			}
			if len(c) == 1 {
				pseudo = append(pseudo, graph.Edge{U: c[0], V: c[0]})
			}
		}
	}
	collect(a)
	collect(b)
	return graph.PartialComponents(pseudo)
}

// labelsFromComponents expands merged components into a full canonical
// labeling of n atoms (untouched atoms stay singletons).
func labelsFromComponents(n int, comps []graph.Component) []int32 {
	uf := graph.NewUnionFind(n)
	for _, c := range comps {
		for i := 1; i < len(c); i++ {
			uf.Union(c[0], c[i])
		}
	}
	return uf.Labels()
}

// CoordBytes is the broadcast payload size of a coordinate set
// (3 × float64 per atom).
func CoordBytes(n int) int64 { return int64(n) * 24 }

// BlockDims describes one 2-D tile of the comparison space for workload
// modeling (experiment harness use).
type BlockDims struct {
	Rows, Cols int
	Diagonal   bool
}

// Plan2D exposes the 2-D tiling used by Approaches 2-4 so the experiment
// harness can model per-task costs without running the tasks.
func Plan2D(n, maxTasks int) []BlockDims {
	blocks := blocks2D(n, maxTasks)
	out := make([]BlockDims, len(blocks))
	for i, b := range blocks {
		out[i] = BlockDims{Rows: b.rows.len(), Cols: b.cols.len(), Diagonal: b.rows == b.cols}
	}
	return out
}

// Plan1D exposes Approach 1's row chunking: it returns, per chunk, the
// chunk length and the number of pair comparisons the chunk performs
// (scanning all j > i).
func Plan1D(n, parts int) (lens []int, pairs []int64) {
	for _, s := range chunks1D(n, parts) {
		lens = append(lens, s.len())
		var p int64
		for i := s.lo; i < s.hi; i++ {
			p += int64(n - i - 1)
		}
		pairs = append(pairs, p)
	}
	return lens, pairs
}

// SampleDataMovement runs the map side of Approach 3 (tree-based edge
// discovery + partial components per block) serially on a real system
// and returns the measured data-movement profile, used by the
// experiment harness to calibrate edges-per-atom and shuffle volumes.
func SampleDataMovement(coords []linalg.Vec3, cutoff float64, nTasks int) Stats {
	blocks := blocks2D(len(coords), nTasks)
	var st Stats
	st.Tasks = len(blocks)
	for _, b := range blocks {
		edges := blockEdgesTree(coords, b, cutoff)
		comps := graph.PartialComponents(edges)
		st.Edges += int64(len(edges))
		st.ShuffleBytes += graph.ComponentBytes(comps)
	}
	return st
}

// DaskScatterAtomLimit models the Dask limitation the paper hit in
// §4.3.1: dask's scatter turns the dataset into a per-element list,
// which failed to broadcast the 524k-atom system. Approach-1 Dask runs
// above this atom count return ErrDaskScatter.
const DaskScatterAtomLimit = 300_000

// ErrDaskScatter is returned by the Dask Approach-1 driver for systems
// larger than DaskScatterAtomLimit.
var ErrDaskScatter = fmt.Errorf("leaflet: dask scatter cannot broadcast systems larger than %d atoms (per-element list materialization)", DaskScatterAtomLimit)
