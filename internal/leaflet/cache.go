package leaflet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"

	"mdtask/internal/blockstore"
	"mdtask/internal/engine"
	"mdtask/internal/graph"
	"mdtask/internal/linalg"
)

// CoordsDigest returns the hex SHA-256 of a coordinate set's content
// (count plus every coordinate's float64 bits) — the content-addressing
// unit of Leaflet tile caching and of the jobs layer's whole-job keys.
func CoordsDigest(coords []linalg.Vec3) string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(coords)))
	h.Write(n[:])
	buf := make([]byte, 0, 24*256)
	for _, p := range coords {
		for k := 0; k < 3; k++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p[k]))
		}
		if len(buf) >= 24*256 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil))
}

// TileKey returns the content address of one tile's partial result:
// the coordinate digest, the cutoff, the edge kernel (pairwise vs.
// BallTree — both find the same edge set, but Stats count them
// differently), and the tile bounds.
func TileKey(digest string, cutoff float64, tree bool, rlo, rhi, clo, chi int) string {
	return fmt.Sprintf("leaflet-tile|%s|c=%x|tree=%t|%d:%d|%d:%d",
		digest, math.Float64bits(cutoff), tree, rlo, rhi, clo, chi)
}

// TilePartial is the cached value of one tile: its partial connected
// components and the number of edges the kernel discovered (needed so
// warm runs report the same Stats as cold ones).
type TilePartial struct {
	Comps []graph.Component
	Edges int64
}

// SizeBytes reports the payload size used for byte-budget accounting.
func (t TilePartial) SizeBytes() int64 { return graph.ComponentBytes(t.Comps) + 16 }

func tileSizeOf(v any) int64 { return v.(TilePartial).SizeBytes() }

// WithBlockCache makes the per-tile task bodies of the Parallel-CC and
// Tree-Search drivers consult store before running their edge kernel,
// keyed under the given coordinate content digest. Cache lookup
// accounting goes to m (hits skip the kernel entirely). The broadcast
// and task-API approaches ship raw edges, not per-tile partials, so
// they have no per-tile unit to cache and ignore this option.
func WithBlockCache(store *blockstore.Store, digest string, m *engine.Metrics) Option {
	return func(o *runOpts) {
		o.store = store
		o.coordsDigest = digest
		o.cacheMetrics = m
	}
}

// tilePartial computes (or recalls) one tile's partial components.
// Callers poll cancellation before invoking it: the kernel itself never
// aborts mid-tile, so any value that reaches the store is complete.
func (o runOpts) tilePartial(coords []linalg.Vec3, b block, cutoff float64, useTree bool) TilePartial {
	span := o.tracer.StartChild(o.traceParent, "leaflet.tile")
	span.SetAttr("tile", fmt.Sprintf("[%d:%d)x[%d:%d)", b.rows.lo, b.rows.hi, b.cols.lo, b.cols.hi))
	defer span.End()
	compute := func() TilePartial {
		edges := blockEdges(coords, b, cutoff, useTree)
		return TilePartial{Comps: graph.PartialComponents(edges), Edges: int64(len(edges))}
	}
	if o.store == nil || o.coordsDigest == "" {
		return compute()
	}
	key := TileKey(o.coordsDigest, cutoff, useTree, b.rows.lo, b.rows.hi, b.cols.lo, b.cols.hi)
	doSpan := o.tracer.StartChild(span.Context(), "cache.do")
	val, hit, _ := o.store.Do(key, tileSizeOf, func() (any, error) {
		return compute(), nil
	})
	doSpan.End()
	tp := val.(TilePartial)
	span.SetAttr("cache_hit", strconv.FormatBool(hit))
	if o.cacheMetrics != nil {
		if hit {
			o.cacheMetrics.AddBlockCache(1, 0, tp.SizeBytes())
		} else {
			o.cacheMetrics.AddBlockCache(0, 1, 0)
		}
	}
	return tp
}
