package leaflet

import (
	"fmt"
	"time"

	"mdtask/internal/graph"
	"mdtask/internal/linalg"
	"mdtask/internal/mpi"
)

// RunMPI executes the Leaflet Finder as an SPMD MPI program with the
// selected architectural approach: rank 0 holds the system, broadcasts
// or partitions it, every rank computes its share of the edge discovery
// (the paper's "realized as a loop for MPI"), and results are gathered
// to rank 0 where the final components are computed. nTasks bounds the
// 2-D tiling granularity; the tiles are cycled over the ranks.
func RunMPI(ranks int, approach Approach, coords []linalg.Vec3, cutoff float64, nTasks int, opts ...Option) (*Result, error) {
	o := gatherOpts(opts)
	n := len(coords)
	var result *Result
	err := mpi.Run(ranks, o.metrics, func(c *mpi.Comm) error {
		switch approach {
		case Broadcast1D:
			// MPI_Bcast the system; each rank computes one row chunk.
			var system []linalg.Vec3
			if c.Rank() == 0 {
				system = coords
			}
			system = mpi.Bcast(c, 0, system, CoordBytes(n))
			chunks := chunks1D(n, c.Size())
			var local []graph.Edge
			if c.Rank() < len(chunks) && !o.cancelled() {
				start := time.Now()
				local = rowChunkEdges(system, chunks[c.Rank()], cutoff)
				o.recordTask(start)
			}
			gathered := mpi.Gather(c, 0, local, graph.EdgeBytes(len(local)))
			if c.Rank() == 0 {
				var edges []graph.Edge
				for _, g := range gathered {
					edges = append(edges, g...)
				}
				result = finish(graph.ComponentsUnionFind(n, edges), Stats{
					Tasks:          len(chunks),
					Edges:          int64(len(edges)),
					BroadcastBytes: CoordBytes(n),
					ShuffleBytes:   graph.EdgeBytes(len(edges)),
				})
			}
			return nil

		case TaskAPI2D:
			blocks := blocks2D(n, nTasks)
			var local []graph.Edge
			for i := c.Rank(); i < len(blocks); i += c.Size() {
				if o.cancelled() {
					break
				}
				start := time.Now()
				local = append(local, blockEdgesBrute(coords, blocks[i], cutoff)...)
				o.recordTask(start)
			}
			gathered := mpi.Gather(c, 0, local, graph.EdgeBytes(len(local)))
			if c.Rank() == 0 {
				var edges []graph.Edge
				for _, g := range gathered {
					edges = append(edges, g...)
				}
				result = finish(graph.ComponentsUnionFind(n, edges), Stats{
					Tasks:        len(blocks),
					Edges:        int64(len(edges)),
					ShuffleBytes: graph.EdgeBytes(len(edges)),
				})
			}
			return nil

		case ParallelCC, TreeSearch:
			useTree := approach == TreeSearch
			blocks := blocks2D(n, nTasks)
			local := partialOut{}
			for i := c.Rank(); i < len(blocks); i += c.Size() {
				if o.cancelled() {
					break
				}
				start := time.Now()
				tp := o.tilePartial(coords, blocks[i], cutoff, useTree)
				o.recordTask(start)
				local.Comps = mergePartialSets(local.Comps, tp.Comps)
				local.Edges += tp.Edges
			}
			localBytes := graph.ComponentBytes(local.Comps)
			shuffleBytes := mpi.Allreduce(c, localBytes, 8, func(a, b int64) int64 { return a + b })
			merged, isRoot := mpi.Reduce(c, 0, local, localBytes, func(a, b partialOut) partialOut {
				return partialOut{Comps: mergePartialSets(a.Comps, b.Comps), Edges: a.Edges + b.Edges}
			})
			if isRoot {
				result = finish(labelsFromComponents(n, merged.Comps), Stats{
					Tasks:        len(blocks),
					Edges:        merged.Edges,
					ShuffleBytes: shuffleBytes,
				})
			}
			return nil

		default:
			return fmt.Errorf("leaflet: unknown approach %v", approach)
		}
	})
	if err != nil {
		return nil, err
	}
	if result == nil {
		return nil, fmt.Errorf("leaflet: MPI run produced no result")
	}
	return result, nil
}
