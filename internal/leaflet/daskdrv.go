package leaflet

import (
	"fmt"
	"sync/atomic"

	"mdtask/internal/dask"
	"mdtask/internal/graph"
	"mdtask/internal/linalg"
)

// RunDask executes the Leaflet Finder on the Dask-like engine with the
// selected architectural approach.
//
// Approach 1 inherits the paper's Dask limitation: scatter materializes
// the dataset as a per-element list, so systems above
// DaskScatterAtomLimit fail with ErrDaskScatter (§4.3.1, where the
// 524k-atom broadcast failed). Approaches 3 and 4 declare each task's
// cdist working set, so a client MemoryLimit triggers Dask's
// worker-restart behaviour on oversized blocks (§4.3.3).
func RunDask(client *dask.Client, approach Approach, coords []linalg.Vec3, cutoff float64, nTasks int, opts ...Option) (*Result, error) {
	o := gatherOpts(opts)
	n := len(coords)
	switch approach {
	case Broadcast1D:
		if n > DaskScatterAtomLimit {
			return nil, ErrDaskScatter
		}
		scattered := client.Scatter("system", coords, CoordBytes(n))
		chunks := chunks1D(n, nTasks)
		nodes := make([]*dask.Delayed, len(chunks))
		for i, s := range chunks {
			s := s
			nodes[i] = client.Delayed(fmt.Sprintf("edges-%d", i),
				func(args []interface{}) (interface{}, error) {
					if o.cancelled() {
						return []graph.Edge(nil), nil
					}
					return rowChunkEdges(args[0].([]linalg.Vec3), s, cutoff), nil
				}, scattered)
		}
		vals, err := client.Compute(nodes...)
		if err != nil {
			return nil, err
		}
		var edges []graph.Edge
		for _, v := range vals {
			edges = append(edges, v.([]graph.Edge)...)
		}
		client.Metrics.AddShuffle(graph.EdgeBytes(len(edges)))
		return finish(graph.ComponentsUnionFind(n, edges), Stats{
			Tasks:          len(chunks),
			Edges:          int64(len(edges)),
			BroadcastBytes: CoordBytes(n),
			ShuffleBytes:   graph.EdgeBytes(len(edges)),
		}), nil

	case TaskAPI2D:
		blocks := blocks2D(n, nTasks)
		nodes := make([]*dask.Delayed, len(blocks))
		for i, b := range blocks {
			b := b
			nodes[i] = client.DelayedMem(fmt.Sprintf("edges-%d", i), blockMemBytes(b),
				func([]interface{}) (interface{}, error) {
					if o.cancelled() {
						return []graph.Edge(nil), nil
					}
					return blockEdgesBrute(coords, b, cutoff), nil
				})
		}
		vals, err := client.Compute(nodes...)
		if err != nil {
			return nil, err
		}
		var edges []graph.Edge
		for _, v := range vals {
			edges = append(edges, v.([]graph.Edge)...)
		}
		client.Metrics.AddShuffle(graph.EdgeBytes(len(edges)))
		return finish(graph.ComponentsUnionFind(n, edges), Stats{
			Tasks:        len(blocks),
			Edges:        int64(len(edges)),
			ShuffleBytes: graph.EdgeBytes(len(edges)),
		}), nil

	case ParallelCC, TreeSearch:
		blocks := blocks2D(n, nTasks)
		useTree := approach == TreeSearch
		var edgeCount, shuffleBytes int64
		parts := make([]*dask.Delayed, len(blocks))
		for i, b := range blocks {
			b := b
			mem := int64(0)
			if !useTree {
				mem = blockMemBytes(b) // the tree kernel avoids the cdist matrix
			}
			parts[i] = client.DelayedMem(fmt.Sprintf("partial-%d", i), mem,
				func([]interface{}) (interface{}, error) {
					if o.cancelled() {
						return []partialOut{{}}, nil
					}
					tp := o.tilePartial(coords, b, cutoff, useTree)
					atomic.AddInt64(&edgeCount, tp.Edges)
					atomic.AddInt64(&shuffleBytes, graph.ComponentBytes(tp.Comps))
					return []partialOut{{Comps: tp.Comps, Edges: tp.Edges}}, nil
				})
		}
		bag := dask.BagFromDelayed[partialOut](client, parts)
		merged := dask.BagFold(bag, partialOut{},
			func(a partialOut, v partialOut) partialOut {
				return partialOut{Comps: mergePartialSets(a.Comps, v.Comps), Edges: a.Edges + v.Edges}
			},
			func(a, b partialOut) partialOut {
				return partialOut{Comps: mergePartialSets(a.Comps, b.Comps), Edges: a.Edges + b.Edges}
			})
		vals, err := client.Compute(merged)
		if err != nil {
			return nil, err
		}
		out := vals[0].(partialOut)
		client.Metrics.AddShuffle(shuffleBytes)
		return finish(labelsFromComponents(n, out.Comps), Stats{
			Tasks:        len(blocks),
			Edges:        edgeCount,
			ShuffleBytes: shuffleBytes,
		}), nil

	default:
		return nil, fmt.Errorf("leaflet: unknown approach %v", approach)
	}
}

// blockMemBytes is the cdist working set of one block: rows × cols
// float64 distances (the memory wall of §4.3.2/4.3.3).
func blockMemBytes(b block) int64 {
	return int64(b.rows.len()) * int64(b.cols.len()) * 8
}
