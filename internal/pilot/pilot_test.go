package pilot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mdtask/internal/engine"
)

// fastConfig keeps tests quick while exercising the coordination path.
func fastConfig() Config {
	return Config{
		DBLatency:          50 * time.Microsecond,
		AgentPollInterval:  500 * time.Microsecond,
		ClientPollInterval: 500 * time.Microsecond,
	}
}

func newTestPilot(t *testing.T, cores int) *Pilot {
	t.Helper()
	db := NewDB(fastConfig().DBLatency)
	p, err := NewPilot(cores, t.TempDir(), db, fastConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Shutdown)
	return p
}

func TestSubmitAndWait(t *testing.T) {
	p := newTestPilot(t, 4)
	var ran int64
	descs := make([]UnitDescription, 20)
	for i := range descs {
		descs[i] = UnitDescription{
			Name: fmt.Sprintf("u%d", i),
			Fn: func(string) error {
				atomic.AddInt64(&ran, 1)
				return nil
			},
		}
	}
	units, err := p.Submit(descs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(units); err != nil {
		t.Fatal(err)
	}
	if ran != 20 {
		t.Errorf("ran = %d", ran)
	}
	if got := p.Metrics().Snapshot().Tasks; got != 20 {
		t.Errorf("metrics tasks = %d", got)
	}
}

func TestInputStagingAndOutputCollection(t *testing.T) {
	p := newTestPilot(t, 2)
	units, err := p.Submit([]UnitDescription{{
		Name:        "copy",
		InputFiles:  map[string][]byte{"in.txt": []byte("hello staging")},
		OutputFiles: []string{"out.txt"},
		Fn: func(sandbox string) error {
			data, err := os.ReadFile(filepath.Join(sandbox, "in.txt"))
			if err != nil {
				return err
			}
			return os.WriteFile(filepath.Join(sandbox, "out.txt"),
				[]byte(strings.ToUpper(string(data))), 0o644)
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(units); err != nil {
		t.Fatal(err)
	}
	out, ok := units[0].Output("out.txt")
	if !ok || string(out) != "HELLO STAGING" {
		t.Fatalf("output = %q, ok=%v", out, ok)
	}
	if p.Metrics().Snapshot().BytesStaged == 0 {
		t.Error("staging bytes not accounted")
	}
}

func TestUnitFailureReported(t *testing.T) {
	p := newTestPilot(t, 2)
	units, err := p.Submit([]UnitDescription{
		{Name: "good", Fn: func(string) error { return nil }},
		{Name: "bad", Fn: func(string) error { return errors.New("task exploded") }},
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := p.Wait(units)
	if werr == nil || !strings.Contains(werr.Error(), "task exploded") {
		t.Fatalf("Wait = %v", werr)
	}
}

func TestUnitPanicBecomesFailure(t *testing.T) {
	p := newTestPilot(t, 2)
	units, err := p.Submit([]UnitDescription{{
		Name: "panics",
		Fn:   func(string) error { panic("agent should survive") },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if werr := p.Wait(units); werr == nil || !strings.Contains(werr.Error(), "panicked") {
		t.Fatalf("Wait = %v", werr)
	}
	// The agent must still execute subsequent units.
	units2, err := p.Submit([]UnitDescription{{Name: "after", Fn: func(string) error { return nil }}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(units2); err != nil {
		t.Fatal(err)
	}
}

func TestMissingOutputIsFailure(t *testing.T) {
	p := newTestPilot(t, 1)
	units, err := p.Submit([]UnitDescription{{
		Name:        "forgetful",
		OutputFiles: []string{"never-written.bin"},
		Fn:          func(string) error { return nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if werr := p.Wait(units); werr == nil {
		t.Fatal("missing output not reported")
	}
}

func TestDBDownFailsSubmit(t *testing.T) {
	db := NewDB(fastConfig().DBLatency)
	p, err := NewPilot(2, t.TempDir(), db, fastConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	db.SetDown(true)
	if _, err := p.Submit([]UnitDescription{{Name: "x"}}); !errors.Is(err, ErrDBDown) {
		t.Fatalf("Submit = %v, want ErrDBDown", err)
	}
}

func TestDBOutageDuringWait(t *testing.T) {
	db := NewDB(fastConfig().DBLatency)
	p, err := NewPilot(2, t.TempDir(), db, fastConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	units, err := p.Submit([]UnitDescription{{Name: "x", Fn: func(string) error {
		time.Sleep(20 * time.Millisecond)
		return nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	db.SetDown(true)
	if werr := p.Wait(units); !errors.Is(werr, ErrDBDown) {
		t.Fatalf("Wait = %v, want ErrDBDown", werr)
	}
	// Recovery: the DB comes back and the unit completes.
	db.SetDown(false)
	if werr := p.Wait(units); werr != nil {
		t.Fatalf("Wait after recovery = %v", werr)
	}
}

func TestConcurrencyBoundedByCores(t *testing.T) {
	p := newTestPilot(t, 3)
	var current, peak int64
	descs := make([]UnitDescription, 12)
	for i := range descs {
		descs[i] = UnitDescription{Name: "c", Fn: func(string) error {
			c := atomic.AddInt64(&current, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if c <= old || atomic.CompareAndSwapInt64(&peak, old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&current, -1)
			return nil
		}}
	}
	units, err := p.Submit(descs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(units); err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Errorf("peak concurrency %d exceeds cores", peak)
	}
}

func TestDBStateTransitions(t *testing.T) {
	db := NewDB(0)
	if err := db.Insert(1); err != nil {
		t.Fatal(err)
	}
	st, _, err := db.GetState(1)
	if err != nil || st != StateNew {
		t.Fatalf("state = %v, %v", st, err)
	}
	ids, err := db.ClaimNew(10)
	if err != nil || len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("ClaimNew = %v, %v", ids, err)
	}
	st, _, _ = db.GetState(1)
	if st != StateScheduling {
		t.Fatalf("state after claim = %v", st)
	}
	if err := db.SetState(1, StateFailed, "boom"); err != nil {
		t.Fatal(err)
	}
	st, msg, _ := db.GetState(1)
	if st != StateFailed || msg != "boom" {
		t.Fatalf("state = %v msg = %q", st, msg)
	}
	if err := db.SetState(99, StateDone, ""); err == nil {
		t.Error("SetState on unknown unit succeeded")
	}
	if _, _, err := db.GetState(99); err == nil {
		t.Error("GetState on unknown unit succeeded")
	}
}

func TestClaimNewBatchLimit(t *testing.T) {
	db := NewDB(0)
	for i := 0; i < 10; i++ {
		if err := db.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := db.ClaimNew(4)
	if err != nil || len(ids) != 4 {
		t.Fatalf("ClaimNew = %d ids, %v", len(ids), err)
	}
	rest, err := db.ClaimNew(100)
	if err != nil || len(rest) != 6 {
		t.Fatalf("second ClaimNew = %d ids, %v", len(rest), err)
	}
}

func TestMetricsSharedSink(t *testing.T) {
	m := &engine.Metrics{}
	db := NewDB(0)
	p, err := NewPilot(1, t.TempDir(), db, fastConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	units, _ := p.Submit([]UnitDescription{{Name: "x", Fn: func(string) error { return nil }}})
	if err := p.Wait(units); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot().Tasks != 1 {
		t.Error("external metrics sink not used")
	}
}
