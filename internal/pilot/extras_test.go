package pilot

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestCompressedStagingRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("coordinates "), 4096)
	compressed, err := CompressStaged(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) >= len(payload) {
		t.Errorf("compression grew payload: %d -> %d", len(payload), len(compressed))
	}
	got, err := DecompressStaged(compressed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
	if _, err := DecompressStaged([]byte("not gzip")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCompressedStagingThroughUnits(t *testing.T) {
	p := newTestPilot(t, 2)
	payload := bytes.Repeat([]byte("xyzxyz "), 1000)
	compressed, err := CompressStaged(payload)
	if err != nil {
		t.Fatal(err)
	}
	units, err := p.Submit([]UnitDescription{{
		Name:        "decompress",
		InputFiles:  map[string][]byte{"in.gz": compressed},
		OutputFiles: []string{"out.bin"},
		Fn: func(sandbox string) error {
			return unitDecompress(sandbox)
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(units); err != nil {
		t.Fatal(err)
	}
	out, ok := units[0].Output("out.bin")
	if !ok || !bytes.Equal(out, payload) {
		t.Fatal("compressed staging round trip failed")
	}
	// Staged bytes must reflect the compressed input, not the raw size.
	staged := p.Metrics().Snapshot().BytesStaged
	if staged >= int64(len(payload))*2 {
		t.Errorf("staged %d bytes; compression not effective", staged)
	}
}

func TestResizeGrowsConcurrency(t *testing.T) {
	p := newTestPilot(t, 1)
	var current, peak int64
	mkUnits := func(n int) []UnitDescription {
		descs := make([]UnitDescription, n)
		for i := range descs {
			descs[i] = UnitDescription{Name: "r", Fn: func(string) error {
				c := atomic.AddInt64(&current, 1)
				for {
					old := atomic.LoadInt64(&peak)
					if c <= old || atomic.CompareAndSwapInt64(&peak, old, c) {
						break
					}
				}
				time.Sleep(3 * time.Millisecond)
				atomic.AddInt64(&current, -1)
				return nil
			}}
		}
		return descs
	}
	units, err := p.Submit(mkUnits(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(units); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&peak) > 1 {
		t.Fatalf("peak %d with 1 core", peak)
	}
	// Grow the pilot and run again: concurrency must rise.
	p.Resize(4)
	if p.Cores() != 4 {
		t.Fatalf("Cores = %d", p.Cores())
	}
	atomic.StoreInt64(&peak, 0)
	units, err = p.Submit(mkUnits(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(units); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&peak) < 2 {
		t.Errorf("peak %d after growing to 4 cores", peak)
	}
	if atomic.LoadInt64(&peak) > 4 {
		t.Errorf("peak %d exceeds 4 cores", peak)
	}
}

func TestSemaphoreShrink(t *testing.T) {
	s := newSemaphore(3)
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		if !s.acquire(stop) {
			t.Fatal("acquire failed")
		}
	}
	s.setCapacity(1)
	if s.capacity() != 1 {
		t.Fatalf("capacity = %d", s.capacity())
	}
	// A new acquire must block until enough holders release.
	acquired := make(chan struct{})
	go func() {
		if s.acquire(stop) {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("acquire succeeded over capacity")
	case <-time.After(5 * time.Millisecond):
	}
	s.release()
	s.release()
	s.release() // used drops to 0 < cap 1
	select {
	case <-acquired:
	case <-time.After(100 * time.Millisecond):
		t.Fatal("acquire did not proceed after releases")
	}
}

func TestSemaphoreStop(t *testing.T) {
	s := newSemaphore(1)
	stop := make(chan struct{})
	if !s.acquire(stop) {
		t.Fatal("first acquire failed")
	}
	result := make(chan bool)
	go func() { result <- s.acquire(stop) }()
	close(stop)
	select {
	case ok := <-result:
		if ok {
			t.Fatal("acquire succeeded after stop")
		}
	case <-time.After(time.Second):
		t.Fatal("acquire did not observe stop")
	}
}

// unitDecompress is the unit body of the compressed-staging test: read
// in.gz, decompress, write out.bin.
func unitDecompress(sandbox string) error {
	data, err := os.ReadFile(filepath.Join(sandbox, "in.gz"))
	if err != nil {
		return err
	}
	raw, err := DecompressStaged(data)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(sandbox, "out.bin"), raw, 0o644)
}
