package pilot

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"
)

// Extensions beyond the paper's evaluated configuration, implementing
// two items from its future-work list (§6): reducing data-transfer
// sizes / optimizing filesystem usage (compressed staging) and dynamic
// resource management (resizing the pilot's core pool at runtime).

// CompressStaged gzip-compresses a staging payload; units can stage
// compressed inputs to cut shared-filesystem traffic, the optimization
// the paper lists as future work.
func CompressStaged(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecompressStaged reverses CompressStaged.
func DecompressStaged(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("pilot: decompressing staged payload: %w", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("pilot: decompressing staged payload: %w", err)
	}
	return out, nil
}

// semaphore is a resizable counting semaphore: capacity can grow or
// shrink while holders are active (shrinking takes effect as holders
// release).
type semaphore struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
}

func newSemaphore(capacity int) *semaphore {
	s := &semaphore{cap: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// acquire blocks until a slot is free or stop is closed; it reports
// whether a slot was obtained.
func (s *semaphore) acquire(stop <-chan struct{}) bool {
	// Wake waiters when stop closes.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-stop:
			s.cond.Broadcast()
		case <-done:
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.used >= s.cap {
		select {
		case <-stop:
			return false
		default:
		}
		s.cond.Wait()
		select {
		case <-stop:
			return false
		default:
		}
	}
	s.used++
	return true
}

func (s *semaphore) release() {
	s.mu.Lock()
	s.used--
	s.mu.Unlock()
	s.cond.Broadcast()
}

// setCapacity resizes the semaphore. Growing wakes waiters immediately;
// shrinking lets in-flight holders finish.
func (s *semaphore) setCapacity(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.cap = n
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *semaphore) capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap
}
