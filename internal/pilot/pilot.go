// Package pilot is a RADICAL-Pilot-like task runtime: a pilot acquires a
// resource slice and an agent executes Compute-Units submitted through a
// coordination database. The package reproduces the architectural
// properties the paper measures (§3.3, §4.1):
//
//   - every unit's life cycle (NEW → SCHEDULING → EXECUTING → DONE) is
//     driven through a DB with a configurable round-trip latency, which
//     serializes coordination and caps task throughput;
//   - units exchange data through real files in a shared staging
//     directory (there is no shuffle data plane);
//   - the agent polls the DB on an interval, adding dispatch delay.
//
// The DB supports failure injection (Down) so tests can exercise the
// communication-sensitivity the paper reports for RADICAL-Pilot.
package pilot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mdtask/internal/engine"
)

// State is a Compute-Unit life-cycle state.
type State string

// Unit life-cycle states, in order.
const (
	StateNew        State = "NEW"
	StateScheduling State = "SCHEDULING"
	StateExecuting  State = "EXECUTING"
	StateDone       State = "DONE"
	StateFailed     State = "FAILED"
)

// ErrDBDown is returned while the coordination database is unreachable.
var ErrDBDown = errors.New("pilot: coordination database unreachable")

// DB simulates the MongoDB coordination store: a key-value unit table
// whose every operation costs one network round trip.
type DB struct {
	latency time.Duration
	down    atomic.Bool

	mu    sync.Mutex
	units map[int]*record
}

type record struct {
	state State
	err   string
}

// NewDB creates a store with the given per-operation round-trip latency.
func NewDB(latency time.Duration) *DB {
	return &DB{latency: latency, units: make(map[int]*record)}
}

// SetDown toggles failure injection: while down, every operation
// returns ErrDBDown.
func (db *DB) SetDown(down bool) { db.down.Store(down) }

func (db *DB) roundTrip() error {
	if db.latency > 0 {
		time.Sleep(db.latency)
	}
	if db.down.Load() {
		return ErrDBDown
	}
	return nil
}

// Insert registers a unit in state NEW.
func (db *DB) Insert(id int) error {
	if err := db.roundTrip(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.units[id] = &record{state: StateNew}
	return nil
}

// SetState transitions a unit, recording an error message for FAILED.
func (db *DB) SetState(id int, s State, errMsg string) error {
	if err := db.roundTrip(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.units[id]
	if !ok {
		return fmt.Errorf("pilot: unknown unit %d", id)
	}
	r.state = s
	r.err = errMsg
	return nil
}

// GetState reads a unit's state.
func (db *DB) GetState(id int) (State, string, error) {
	if err := db.roundTrip(); err != nil {
		return "", "", err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.units[id]
	if !ok {
		return "", "", fmt.Errorf("pilot: unknown unit %d", id)
	}
	return r.state, r.err, nil
}

// ClaimNew atomically claims up to max units in state NEW, moving them
// to SCHEDULING, and returns their ids (one round trip for the batch,
// like the agent's bulk pull).
func (db *DB) ClaimNew(max int) ([]int, error) {
	if err := db.roundTrip(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []int
	for id, r := range db.units {
		if r.state == StateNew {
			r.state = StateScheduling
			out = append(out, id)
			if len(out) == max {
				break
			}
		}
	}
	return out, nil
}

// UnitFunc is the "executable" of a Compute-Unit. It runs in a sandbox
// directory where input files have been staged; anything it writes there
// becomes retrievable output.
type UnitFunc func(sandbox string) error

// UnitDescription describes a task prior to submission.
type UnitDescription struct {
	Name string
	Fn   UnitFunc
	// InputFiles are staged into the sandbox before execution.
	InputFiles map[string][]byte
	// OutputFiles are collected from the sandbox after execution.
	OutputFiles []string
}

// Unit is a submitted Compute-Unit.
type Unit struct {
	ID      int
	Desc    UnitDescription
	Sandbox string

	mu      sync.Mutex
	outputs map[string][]byte
}

// Output returns the bytes of a collected output file.
func (u *Unit) Output(name string) ([]byte, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	b, ok := u.outputs[name]
	return b, ok
}

// Config tunes the runtime's simulated coordination costs. The zero
// value gives a fast configuration suitable for tests; Defaults gives
// paper-like latencies.
type Config struct {
	// DBLatency is the coordination-database round-trip time.
	DBLatency time.Duration
	// AgentPollInterval is how often the agent pulls NEW units.
	AgentPollInterval time.Duration
	// ClientPollInterval is how often Wait polls unit states.
	ClientPollInterval time.Duration
}

// Defaults returns paper-like latencies scaled down ~100x so that test
// suites finish quickly while preserving the ordering of costs
// (DB round trip >> agent poll > client poll).
func Defaults() Config {
	return Config{
		DBLatency:          500 * time.Microsecond,
		AgentPollInterval:  2 * time.Millisecond,
		ClientPollInterval: 2 * time.Millisecond,
	}
}

// Pilot is an acquired resource slice plus its agent.
type Pilot struct {
	sem     *semaphore
	db      *DB
	cfg     Config
	dir     string
	metrics *engine.Metrics

	mu      sync.Mutex
	units   map[int]*Unit
	nextID  int
	stopped chan struct{}
	done    sync.WaitGroup
}

// NewPilot starts a pilot with the given core count (worker goroutines)
// using dir for unit sandboxes. The agent runs until Shutdown.
func NewPilot(cores int, dir string, db *DB, cfg Config, m *engine.Metrics) (*Pilot, error) {
	if cores < 1 {
		cores = 1
	}
	if m == nil {
		m = &engine.Metrics{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pilot: creating sandbox root: %w", err)
	}
	p := &Pilot{
		sem:     newSemaphore(cores),
		db:      db,
		cfg:     cfg,
		dir:     dir,
		metrics: m,
		units:   make(map[int]*Unit),
		stopped: make(chan struct{}),
	}
	p.done.Add(1)
	go p.agent()
	return p, nil
}

// Metrics returns the pilot's metrics sink.
func (p *Pilot) Metrics() *engine.Metrics { return p.metrics }

// Cores returns the pilot's current worker parallelism.
func (p *Pilot) Cores() int { return p.sem.capacity() }

// Resize grows or shrinks the pilot's core pool at runtime (the dynamic
// resource management of the paper's future work, §6). Shrinking takes
// effect as in-flight units finish.
func (p *Pilot) Resize(cores int) { p.sem.setCapacity(cores) }

// Submit registers units with the coordination DB and returns handles.
func (p *Pilot) Submit(descs []UnitDescription) ([]*Unit, error) {
	units := make([]*Unit, len(descs))
	for i, d := range descs {
		p.mu.Lock()
		id := p.nextID
		p.nextID++
		u := &Unit{ID: id, Desc: d, Sandbox: filepath.Join(p.dir, fmt.Sprintf("unit.%06d", id))}
		p.units[id] = u
		p.mu.Unlock()
		if err := p.db.Insert(id); err != nil {
			return nil, fmt.Errorf("pilot: submitting unit %d: %w", id, err)
		}
		units[i] = u
	}
	return units, nil
}

// agent is the pilot's scheduler/executor loop: it claims NEW units from
// the DB and executes them on a bounded worker set.
func (p *Pilot) agent() {
	defer p.done.Done()
	var running sync.WaitGroup
	ticker := time.NewTicker(p.cfg.AgentPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopped:
			running.Wait()
			return
		case <-ticker.C:
		}
		ids, err := p.db.ClaimNew(4 * p.sem.capacity())
		if err != nil {
			continue // DB down: retry on next poll
		}
		for _, id := range ids {
			p.mu.Lock()
			u := p.units[id]
			p.mu.Unlock()
			if u == nil {
				continue
			}
			if !p.sem.acquire(p.stopped) {
				running.Wait()
				return // shutting down
			}
			running.Add(1)
			go func(u *Unit) {
				defer func() { p.sem.release(); running.Done() }()
				p.execute(u)
			}(u)
		}
	}
}

// setState drives a unit's state transition, retrying through DB
// outages (the agent keeps trying until the database is reachable again
// or the pilot shuts down).
func (p *Pilot) setState(id int, s State, msg string) {
	for {
		err := p.db.SetState(id, s, msg)
		if err == nil || !errors.Is(err, ErrDBDown) {
			return
		}
		select {
		case <-p.stopped:
			return
		case <-time.After(p.cfg.AgentPollInterval):
		}
	}
}

// execute stages, runs, and collects one unit, driving its state
// through the DB.
func (p *Pilot) execute(u *Unit) {
	fail := func(err error) {
		p.metrics.RecordFailure()
		p.setState(u.ID, StateFailed, err.Error())
	}
	if err := os.MkdirAll(u.Sandbox, 0o755); err != nil {
		fail(err)
		return
	}
	for name, data := range u.Desc.InputFiles {
		if err := os.WriteFile(filepath.Join(u.Sandbox, name), data, 0o644); err != nil {
			fail(fmt.Errorf("staging input %s: %w", name, err))
			return
		}
		p.metrics.AddStaged(int64(len(data)))
	}
	p.setState(u.ID, StateExecuting, "")
	start := time.Now()
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("unit %d panicked: %v", u.ID, v)
			}
		}()
		if u.Desc.Fn == nil {
			return nil
		}
		return u.Desc.Fn(u.Sandbox)
	}()
	p.metrics.RecordTask(time.Since(start))
	if err != nil {
		fail(err)
		return
	}
	outputs := make(map[string][]byte, len(u.Desc.OutputFiles))
	for _, name := range u.Desc.OutputFiles {
		data, rerr := os.ReadFile(filepath.Join(u.Sandbox, name))
		if rerr != nil {
			fail(fmt.Errorf("collecting output %s: %w", name, rerr))
			return
		}
		outputs[name] = data
		p.metrics.AddStaged(int64(len(data)))
	}
	u.mu.Lock()
	u.outputs = outputs
	u.mu.Unlock()
	p.setState(u.ID, StateDone, "")
}

// Wait blocks until every unit reaches DONE or FAILED, returning an
// error listing failures (or a DB error).
func (p *Pilot) Wait(units []*Unit) error {
	pendingSet := make(map[int]*Unit, len(units))
	for _, u := range units {
		pendingSet[u.ID] = u
	}
	var failures []string
	for len(pendingSet) > 0 {
		time.Sleep(p.cfg.ClientPollInterval)
		for id, u := range pendingSet {
			st, msg, err := p.db.GetState(id)
			if err != nil {
				return fmt.Errorf("pilot: waiting for unit %d: %w", id, err)
			}
			switch st {
			case StateDone:
				delete(pendingSet, id)
			case StateFailed:
				failures = append(failures, fmt.Sprintf("unit %d (%s): %s", id, u.Desc.Name, msg))
				delete(pendingSet, id)
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("pilot: %d unit(s) failed: %v", len(failures), failures)
	}
	return nil
}

// Shutdown stops the agent and waits for in-flight units.
func (p *Pilot) Shutdown() {
	close(p.stopped)
	p.done.Wait()
}
