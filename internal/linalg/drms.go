package linalg

import "math"

// drmsBoundSlack is the relative safety margin applied to the
// early-abandon threshold of DRMSWithin. The abandon test compares
// floating-point partial sums against bound²·n, both of which carry
// rounding error; inflating the threshold by a margin that dwarfs the
// worst-case accumulation error (~n·2⁻⁵² relative, so safe up to a few
// million atoms) guarantees an evaluation whose completed dRMS would
// compare below the bound is never abandoned. The only cost of the
// slack is finishing a handful of evaluations that land within one part
// in 10⁹ of the threshold.
const drmsBoundSlack = 1e-9

// DRMSWithin computes dRMS between two packed coordinate rows
// (x₀,y₀,z₀,x₁,y₁,z₁,…), early-abandoning the atom sum as soon as the
// partial sum proves the result must be at least bound: the squared
// per-atom distances are non-negative, so the running sum is monotone
// and crossing bound²·n is conclusive. It returns (d, true) when the
// evaluation completes — with d bit-identical to DRMS on the same
// coordinates, because the accumulation order and arithmetic are the
// same — and (0, false) when it abandons. A bound of +Inf never
// abandons; a NaN bound is treated like +Inf.
//
// DRMSWithin panics if the rows differ in length or are not a whole
// number of xyz triples. Two empty rows complete with d = 0.
func DRMSWithin(a, b []float64, bound float64) (float64, bool) {
	if len(a) != len(b) {
		panic("linalg: DRMSWithin rows have different lengths")
	}
	if len(a)%3 != 0 {
		panic("linalg: DRMSWithin rows must hold whole xyz triples")
	}
	n := len(a) / 3
	if n == 0 {
		return 0, true
	}
	limit := bound * bound * float64(n)
	limit += limit * drmsBoundSlack
	if math.IsNaN(limit) {
		limit = math.Inf(1)
	}
	var sum float64
	for i := 0; i < len(a); i += 3 {
		// Route through Dist2 exactly like DRMS does, so a completed
		// evaluation reproduces DRMS bit for bit.
		sum += Dist2(
			Vec3{a[i], a[i+1], a[i+2]},
			Vec3{b[i], b[i+1], b[i+2]},
		)
		if sum > limit {
			return 0, false
		}
	}
	return math.Sqrt(sum / float64(n)), true
}
