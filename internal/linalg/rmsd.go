package linalg

import "math"

// RMSD computes the root-mean-square deviation between two frames after
// translating both centroids to the origin and finding the optimal
// rotation (least-squares superposition) using the quaternion
// characteristic-polynomial method of Horn. This mirrors
// MDAnalysis.analysis.rms.rmsd(superposition=True).
//
// The inputs are not modified. RMSD panics if the frames have different
// lengths and returns 0 for empty frames.
func RMSD(a, b []Vec3) float64 {
	if len(a) != len(b) {
		panic("linalg: RMSD frames have different lengths")
	}
	n := len(a)
	if n == 0 {
		return 0
	}
	ca := Centroid(a)
	cb := Centroid(b)

	// Inner products and the 3x3 covariance matrix R of the centered frames.
	var ga, gb float64
	var r [3][3]float64
	for i := 0; i < n; i++ {
		p := a[i].Sub(ca)
		q := b[i].Sub(cb)
		ga += p.Norm2()
		gb += q.Norm2()
		for x := 0; x < 3; x++ {
			for y := 0; y < 3; y++ {
				r[x][y] += p[x] * q[y]
			}
		}
	}

	// Build the 4x4 key matrix K whose largest eigenvalue lambda gives
	// the optimal superposition: rmsd = sqrt((ga+gb-2*lambda)/n).
	k := [4][4]float64{
		{r[0][0] + r[1][1] + r[2][2], r[1][2] - r[2][1], r[2][0] - r[0][2], r[0][1] - r[1][0]},
		{r[1][2] - r[2][1], r[0][0] - r[1][1] - r[2][2], r[0][1] + r[1][0], r[2][0] + r[0][2]},
		{r[2][0] - r[0][2], r[0][1] + r[1][0], -r[0][0] + r[1][1] - r[2][2], r[1][2] + r[2][1]},
		{r[0][1] - r[1][0], r[2][0] + r[0][2], r[1][2] + r[2][1], -r[0][0] - r[1][1] + r[2][2]},
	}
	lambda := maxEigen4(k)
	msd := (ga + gb - 2*lambda) / float64(n)
	if msd < 0 {
		msd = 0 // guard against tiny negative values from roundoff
	}
	return math.Sqrt(msd)
}

// maxEigen4 returns the largest eigenvalue of a symmetric 4x4 matrix
// using the cyclic Jacobi rotation method.
func maxEigen4(a [4][4]float64) float64 {
	const (
		maxSweeps = 64
		eps       = 1e-14
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Sum of squares of off-diagonal elements.
		var off float64
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < eps {
			break
		}
		for p := 0; p < 4; p++ {
			for q := p + 1; q < 4; q++ {
				if math.Abs(a[p][q]) < eps/16 {
					continue
				}
				// Compute the Jacobi rotation that zeroes a[p][q].
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				app, aqq, apq := a[p][p], a[q][q], a[p][q]
				a[p][p] = app - t*apq
				a[q][q] = aqq + t*apq
				a[p][q] = 0
				a[q][p] = 0
				for i := 0; i < 4; i++ {
					if i == p || i == q {
						continue
					}
					aip, aiq := a[i][p], a[i][q]
					a[i][p] = c*aip - s*aiq
					a[p][i] = a[i][p]
					a[i][q] = s*aip + c*aiq
					a[q][i] = a[i][q]
				}
			}
		}
	}
	best := a[0][0]
	for i := 1; i < 4; i++ {
		if a[i][i] > best {
			best = a[i][i]
		}
	}
	return best
}

// RotateFrame applies the 3x3 rotation matrix m to every point of the
// frame in place.
func RotateFrame(frame []Vec3, m [3][3]float64) {
	for i, p := range frame {
		frame[i] = Vec3{
			m[0][0]*p[0] + m[0][1]*p[1] + m[0][2]*p[2],
			m[1][0]*p[0] + m[1][1]*p[1] + m[1][2]*p[2],
			m[2][0]*p[0] + m[2][1]*p[1] + m[2][2]*p[2],
		}
	}
}
