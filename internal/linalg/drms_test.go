package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
)

// packRows flattens two frames into packed rows.
func packRows(a, b []Vec3) (ra, rb []float64) {
	ra = make([]float64, 0, len(a)*3)
	rb = make([]float64, 0, len(b)*3)
	for _, p := range a {
		ra = append(ra, p[0], p[1], p[2])
	}
	for _, p := range b {
		rb = append(rb, p[0], p[1], p[2])
	}
	return ra, rb
}

// A completed DRMSWithin evaluation must reproduce DRMS bit for bit —
// the property the pruned Hausdorff kernel's exactness rests on.
func TestDRMSWithinMatchesDRMSBitwise(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 14))
	for trial := 0; trial < 200; trial++ {
		n := r.IntN(40)
		fa, fb := randFrame(r, n), randFrame(r, n)
		ra, rb := packRows(fa, fb)
		want := DRMS(fa, fb)
		got, ok := DRMSWithin(ra, rb, math.Inf(1))
		if !ok {
			t.Fatalf("infinite bound abandoned (n=%d)", n)
		}
		if got != want {
			t.Fatalf("DRMSWithin = %x, DRMS = %x (n=%d)", got, want, n)
		}
		// A bound just above the true value must also complete exactly.
		got, ok = DRMSWithin(ra, rb, math.Nextafter(want, math.Inf(1)))
		if n > 0 && (!ok || got != want) {
			t.Fatalf("tight bound: got %v ok=%v, want %v", got, ok, want)
		}
	}
}

func TestDRMSWithinAbandons(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 1))
	fa, fb := randFrame(r, 64), randFrame(r, 64)
	ra, rb := packRows(fa, fb)
	d := DRMS(fa, fb)
	if _, ok := DRMSWithin(ra, rb, d/2); ok {
		t.Error("bound of d/2 did not abandon")
	}
	// Bound zero abandons any pair with a positive distance.
	if _, ok := DRMSWithin(ra, rb, 0); ok {
		t.Error("zero bound did not abandon")
	}
	// ... but identical rows complete at distance 0 even under bound 0.
	if got, ok := DRMSWithin(ra, ra, 0); !ok || got != 0 {
		t.Errorf("identical rows under zero bound: %v, %v", got, ok)
	}
}

func TestDRMSWithinEdges(t *testing.T) {
	if d, ok := DRMSWithin(nil, nil, 0); !ok || d != 0 {
		t.Errorf("empty rows: %v, %v", d, ok)
	}
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("length mismatch", func() { DRMSWithin(make([]float64, 3), make([]float64, 6), 1) })
	assertPanics("partial triple", func() { DRMSWithin(make([]float64, 4), make([]float64, 4), 1) })
}
