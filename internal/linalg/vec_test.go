package linalg

import (
	"math"
	mathrand "math/rand"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Norm2(); got != 14 {
		t.Errorf("Norm2 = %v", got)
	}
	if !almostEqual(v.Norm(), math.Sqrt(14), 1e-15) {
		t.Errorf("Norm = %v", v.Norm())
	}
}

func TestCrossProperties(t *testing.T) {
	v := Vec3{1, 0, 0}
	w := Vec3{0, 1, 0}
	if got := v.Cross(w); got != (Vec3{0, 0, 1}) {
		t.Errorf("x cross y = %v, want z", got)
	}
	// Cross product is perpendicular to both operands.
	f := func(a, b Vec3) bool {
		c := a.Cross(b)
		return almostEqual(c.Dot(a), 0, 1e-6*(1+a.Norm2()*b.Norm2())) &&
			almostEqual(c.Dot(b), 0, 1e-6*(1+a.Norm2()*b.Norm2()))
	}
	if err := quick.Check(f, boundedVecs(17)); err != nil {
		t.Error(err)
	}
}

// boundedVecs makes testing/quick generate Vec3 values with components
// in [-100, 100] so products do not overflow.
func boundedVecs(seed uint64) *quick.Config {
	r := rand.New(rand.NewPCG(seed, seed+1))
	return &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, _ *mathrand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(Vec3{
					r.Float64()*200 - 100,
					r.Float64()*200 - 100,
					r.Float64()*200 - 100,
				})
			}
		},
	}
}

func TestDist(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{3, 4, 0}
	if got := Dist(a, b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist2(a, b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

func TestDistSymmetricQuick(t *testing.T) {
	f := func(a, b Vec3) bool { return Dist(a, b) == Dist(b, a) && Dist(a, a) == 0 }
	if err := quick.Check(f, boundedVecs(19)); err != nil {
		t.Error(err)
	}
}

func TestCentroidAndCenter(t *testing.T) {
	pts := []Vec3{{1, 2, 3}, {3, 2, 1}, {2, 2, 2}}
	c := Centroid(pts)
	if c != (Vec3{2, 2, 2}) {
		t.Fatalf("Centroid = %v", c)
	}
	removed := Center(pts)
	if removed != c {
		t.Errorf("Center returned %v, want %v", removed, c)
	}
	after := Centroid(pts)
	if after.Norm() > 1e-14 {
		t.Errorf("centroid after centering = %v, want ~0", after)
	}
}

func TestCentroidEmpty(t *testing.T) {
	if got := Centroid(nil); got != (Vec3{}) {
		t.Errorf("Centroid(nil) = %v", got)
	}
}

func TestBoundingBox(t *testing.T) {
	lo, hi := BoundingBox([]Vec3{{1, 5, -2}, {-1, 3, 4}, {0, 9, 0}})
	if lo != (Vec3{-1, 3, -2}) || hi != (Vec3{1, 9, 4}) {
		t.Errorf("BoundingBox = %v, %v", lo, hi)
	}
	lo, hi = BoundingBox(nil)
	if lo != (Vec3{}) || hi != (Vec3{}) {
		t.Errorf("BoundingBox(nil) = %v, %v", lo, hi)
	}
}

func randFrame(r *rand.Rand, n int) []Vec3 {
	out := make([]Vec3, n)
	for i := range out {
		out[i] = Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	}
	return out
}

func TestDRMSBasics(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	a := randFrame(r, 50)
	if got := DRMS(a, a); got != 0 {
		t.Errorf("DRMS(a,a) = %v, want 0", got)
	}
	b := make([]Vec3, len(a))
	for i := range b {
		b[i] = a[i].Add(Vec3{1, 0, 0})
	}
	if got := DRMS(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("DRMS of unit translation = %v, want 1", got)
	}
	if got := DRMS(nil, nil); got != 0 {
		t.Errorf("DRMS(empty) = %v", got)
	}
}

func TestDRMSPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DRMS did not panic on length mismatch")
		}
	}()
	DRMS(make([]Vec3, 2), make([]Vec3, 3))
}

// DRMS is a metric on fixed-length frames: symmetric, non-negative, and
// satisfies the triangle inequality (it is the L2 norm of the
// concatenated coordinates scaled by 1/sqrt(n)).
func TestDRMSMetricQuick(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.IntN(20)
		a, b, c := randFrame(r, n), randFrame(r, n), randFrame(r, n)
		dab, dba := DRMS(a, b), DRMS(b, a)
		if dab != dba {
			t.Fatalf("not symmetric: %v vs %v", dab, dba)
		}
		if dab < 0 {
			t.Fatalf("negative DRMS %v", dab)
		}
		dac, dcb := DRMS(a, c), DRMS(c, b)
		if dab > dac+dcb+1e-9 {
			t.Fatalf("triangle violated: d(a,b)=%v > d(a,c)+d(c,b)=%v", dab, dac+dcb)
		}
	}
}
