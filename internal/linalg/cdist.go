package linalg

import "math"

// Cdist computes the all-pairs Euclidean distance matrix between point
// sets a and b, equivalent to SciPy's scipy.spatial.distance.cdist.
// The result is row-major: element i*len(b)+j is the distance between
// a[i] and b[j]. The full matrix of len(a)*len(b) float64 values is
// materialized, mirroring the memory footprint that limits the paper's
// cdist-based Leaflet Finder approaches (§4.3).
func Cdist(a, b []Vec3) []float64 {
	out := make([]float64, len(a)*len(b))
	CdistInto(out, a, b)
	return out
}

// CdistInto computes the all-pairs distance matrix into dst, which must
// have length len(a)*len(b). It panics otherwise.
func CdistInto(dst []float64, a, b []Vec3) {
	if len(dst) != len(a)*len(b) {
		panic("linalg: CdistInto destination has wrong length")
	}
	for i, p := range a {
		row := dst[i*len(b) : (i+1)*len(b)]
		for j, q := range b {
			row[j] = Dist(p, q)
		}
	}
}

// CdistBytes returns the number of bytes a Cdist call over point sets of
// the given sizes materializes. Used by the memory-accounting in the
// Leaflet Finder drivers to reproduce the paper's out-of-memory limits.
func CdistBytes(na, nb int) int64 {
	return int64(na) * int64(nb) * 8
}

// PairsWithin scans all pairs (i, j) with a[i] within cutoff of b[j] and
// returns them as index pairs. This is the brute-force O(n*m) edge
// discovery used by Leaflet Finder approaches 1-3.
func PairsWithin(a, b []Vec3, cutoff float64) [][2]int32 {
	c2 := cutoff * cutoff
	var out [][2]int32
	for i, p := range a {
		for j, q := range b {
			if Dist2(p, q) <= c2 {
				out = append(out, [2]int32{int32(i), int32(j)})
			}
		}
	}
	return out
}

// PairsWithinSelf returns all unordered pairs (i, j), i < j, of points
// within cutoff of each other in a single point set.
func PairsWithinSelf(pts []Vec3, cutoff float64) [][2]int32 {
	c2 := cutoff * cutoff
	var out [][2]int32
	for i := 0; i < len(pts); i++ {
		p := pts[i]
		for j := i + 1; j < len(pts); j++ {
			if Dist2(p, pts[j]) <= c2 {
				out = append(out, [2]int32{int32(i), int32(j)})
			}
		}
	}
	return out
}

// MinDistPointSet returns the minimum distance from point p to any point
// in set, and math.Inf(1) for an empty set.
func MinDistPointSet(p Vec3, set []Vec3) float64 {
	best := math.Inf(1)
	for _, q := range set {
		if d := Dist2(p, q); d < best {
			best = d
		}
	}
	return math.Sqrt(best)
}
