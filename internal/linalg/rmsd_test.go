package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
)

// rotZ returns the rotation matrix about the z axis by theta.
func rotZ(theta float64) [3][3]float64 {
	c, s := math.Cos(theta), math.Sin(theta)
	return [3][3]float64{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
}

func TestRMSDIdentical(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	a := randFrame(r, 30)
	if got := RMSD(a, a); got > 1e-9 {
		t.Errorf("RMSD(a,a) = %v, want ~0", got)
	}
}

func TestRMSDInvariantUnderRigidMotion(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	a := randFrame(r, 40)
	b := make([]Vec3, len(a))
	copy(b, a)
	RotateFrame(b, rotZ(0.7))
	for i := range b {
		b[i] = b[i].Add(Vec3{5, -3, 2})
	}
	// Superposition should recover the rigid motion exactly.
	if got := RMSD(a, b); got > 1e-8 {
		t.Errorf("RMSD after rigid motion = %v, want ~0", got)
	}
}

func TestRMSDUpperBoundedByDRMS(t *testing.T) {
	// Optimal superposition can only reduce the deviation relative to
	// the unaligned dRMS of centered frames.
	r := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 100; trial++ {
		n := 3 + r.IntN(30)
		a, b := randFrame(r, n), randFrame(r, n)
		ca := make([]Vec3, n)
		cb := make([]Vec3, n)
		copy(ca, a)
		copy(cb, b)
		Center(ca)
		Center(cb)
		if RMSD(a, b) > DRMS(ca, cb)+1e-9 {
			t.Fatalf("RMSD %v exceeds centered dRMS %v", RMSD(a, b), DRMS(ca, cb))
		}
	}
}

func TestRMSDSymmetric(t *testing.T) {
	r := rand.New(rand.NewPCG(15, 16))
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.IntN(20)
		a, b := randFrame(r, n), randFrame(r, n)
		if d1, d2 := RMSD(a, b), RMSD(b, a); !almostEqual(d1, d2, 1e-9) {
			t.Fatalf("RMSD not symmetric: %v vs %v", d1, d2)
		}
	}
}

func TestRMSDKnownValue(t *testing.T) {
	// Two points on the x axis vs two points on the y axis: after
	// rotation they superpose exactly.
	a := []Vec3{{1, 0, 0}, {-1, 0, 0}}
	b := []Vec3{{0, 1, 0}, {0, -1, 0}}
	if got := RMSD(a, b); got > 1e-9 {
		t.Errorf("RMSD = %v, want 0 (rotation)", got)
	}
	// Different radii cannot superpose: residual is |2-1| per point.
	c := []Vec3{{2, 0, 0}, {-2, 0, 0}}
	if got := RMSD(a, c); !almostEqual(got, 1, 1e-9) {
		t.Errorf("RMSD = %v, want 1", got)
	}
}

func TestRMSDEmptyAndMismatch(t *testing.T) {
	if got := RMSD(nil, nil); got != 0 {
		t.Errorf("RMSD(empty) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RMSD did not panic on mismatch")
		}
	}()
	RMSD(make([]Vec3, 1), make([]Vec3, 2))
}

func TestRotateFrame(t *testing.T) {
	f := []Vec3{{1, 0, 0}}
	RotateFrame(f, rotZ(math.Pi/2))
	if !almostEqual(f[0][0], 0, 1e-12) || !almostEqual(f[0][1], 1, 1e-12) {
		t.Errorf("rotated = %v, want (0,1,0)", f[0])
	}
}

func TestMaxEigen4Diagonal(t *testing.T) {
	m := [4][4]float64{{1, 0, 0, 0}, {0, 7, 0, 0}, {0, 0, 3, 0}, {0, 0, 0, -2}}
	if got := maxEigen4(m); !almostEqual(got, 7, 1e-12) {
		t.Errorf("maxEigen4 = %v, want 7", got)
	}
}
