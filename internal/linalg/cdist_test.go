package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestCdist(t *testing.T) {
	a := []Vec3{{0, 0, 0}, {1, 0, 0}}
	b := []Vec3{{0, 0, 0}, {0, 3, 4}, {1, 0, 0}}
	got := Cdist(a, b)
	want := []float64{0, 5, 1, 1, math.Sqrt(1 + 25), 0}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Cdist[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCdistIntoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CdistInto did not panic on wrong length")
		}
	}()
	CdistInto(make([]float64, 3), make([]Vec3, 2), make([]Vec3, 2))
}

func TestCdistBytes(t *testing.T) {
	if got := CdistBytes(1000, 2000); got != 16_000_000 {
		t.Errorf("CdistBytes = %d", got)
	}
}

func TestPairsWithinMatchesCdist(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	a := randFrame(r, 40)
	b := randFrame(r, 30)
	const cutoff = 1.5
	pairs := PairsWithin(a, b, cutoff)
	seen := make(map[[2]int32]bool)
	for _, p := range pairs {
		seen[p] = true
	}
	d := Cdist(a, b)
	for i := range a {
		for j := range b {
			within := d[i*len(b)+j] <= cutoff
			if within != seen[[2]int32{int32(i), int32(j)}] {
				t.Fatalf("pair (%d,%d): within=%v but listed=%v", i, j, within, !within)
			}
		}
	}
}

func TestPairsWithinSelf(t *testing.T) {
	pts := []Vec3{{0, 0, 0}, {1, 0, 0}, {10, 0, 0}, {1.5, 0, 0}}
	pairs := PairsWithinSelf(pts, 1.0)
	want := map[[2]int32]bool{{0, 1}: true, {1, 3}: true}
	if len(pairs) != len(want) {
		t.Fatalf("got %d pairs %v, want %d", len(pairs), pairs, len(want))
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
		if p[0] >= p[1] {
			t.Errorf("pair %v not ordered i<j", p)
		}
	}
}

func TestPairsWithinSelfMatchesCross(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	pts := randFrame(r, 50)
	const cutoff = 1.2
	self := PairsWithinSelf(pts, cutoff)
	cross := PairsWithin(pts, pts, cutoff)
	// The cross version includes (i,i) and both orders; filter to i<j.
	var filtered [][2]int32
	for _, p := range cross {
		if p[0] < p[1] {
			filtered = append(filtered, p)
		}
	}
	if len(self) != len(filtered) {
		t.Fatalf("self %d pairs vs cross-filtered %d", len(self), len(filtered))
	}
	for i := range self {
		if self[i] != filtered[i] {
			t.Fatalf("pair %d: %v vs %v", i, self[i], filtered[i])
		}
	}
}

func TestMinDistPointSet(t *testing.T) {
	set := []Vec3{{1, 0, 0}, {0, 2, 0}, {0, 0, 3}}
	if got := MinDistPointSet(Vec3{0, 0, 0}, set); got != 1 {
		t.Errorf("MinDistPointSet = %v, want 1", got)
	}
	if got := MinDistPointSet(Vec3{}, nil); !math.IsInf(got, 1) {
		t.Errorf("MinDistPointSet(empty) = %v, want +Inf", got)
	}
}
