// Package linalg provides the small dense linear-algebra and distance
// kernels used by the MD trajectory analysis algorithms: 3-vector
// arithmetic, frame metrics (dRMS, RMSD with optimal superposition),
// all-pairs distance computation (cdist), and cutoff pair searches.
//
// All kernels operate on slices of Vec3 in double precision, mirroring
// the NumPy/SciPy kernels the paper's Python implementations rely on.
package linalg

import "math"

// Vec3 is a point or displacement in 3-dimensional space.
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v[0], s * v[1], s * v[2]} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Cross returns the vector product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between points a and b.
func Dist(a, b Vec3) float64 { return math.Sqrt(Dist2(a, b)) }

// Dist2 returns the squared Euclidean distance between points a and b.
func Dist2(a, b Vec3) float64 {
	dx := a[0] - b[0]
	dy := a[1] - b[1]
	dz := a[2] - b[2]
	return dx*dx + dy*dy + dz*dz
}

// Centroid returns the arithmetic mean of the points.
// It returns the zero vector for an empty slice.
func Centroid(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, p := range pts {
		c[0] += p[0]
		c[1] += p[1]
		c[2] += p[2]
	}
	inv := 1 / float64(len(pts))
	return c.Scale(inv)
}

// Center translates the points so their centroid is at the origin,
// in place, and returns the centroid that was removed.
func Center(pts []Vec3) Vec3 {
	c := Centroid(pts)
	for i := range pts {
		pts[i] = pts[i].Sub(c)
	}
	return c
}

// BoundingBox returns the axis-aligned bounding box (min, max corners)
// of the points. Both corners are zero for an empty slice.
func BoundingBox(pts []Vec3) (lo, hi Vec3) {
	if len(pts) == 0 {
		return Vec3{}, Vec3{}
	}
	lo, hi = pts[0], pts[0]
	for _, p := range pts[1:] {
		for k := 0; k < 3; k++ {
			if p[k] < lo[k] {
				lo[k] = p[k]
			}
			if p[k] > hi[k] {
				hi[k] = p[k]
			}
		}
	}
	return lo, hi
}

// DRMS computes the paper's per-frame metric dRMS(a, b): the root mean
// square of the Euclidean distances between corresponding points of two
// frames. It does not superimpose the frames first.
//
// DRMS panics if the frames have different lengths; it returns 0 for two
// empty frames.
func DRMS(a, b []Vec3) float64 {
	if len(a) != len(b) {
		panic("linalg: DRMS frames have different lengths")
	}
	if len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		sum += Dist2(a[i], b[i])
	}
	return math.Sqrt(sum / float64(len(a)))
}
