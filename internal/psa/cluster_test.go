package psa

import (
	"testing"

	"mdtask/internal/synth"
)

// twoGroupMatrix builds a distance matrix with two well-separated
// groups: {0,1,2} at distance ~1 internally, {3,4} at ~1 internally,
// ~10 across.
func twoGroupMatrix() *Matrix {
	m := NewMatrix(5)
	set := func(i, j int, v float64) { m.Set(i, j, v); m.Set(j, i, v) }
	group := map[int]int{0: 0, 1: 0, 2: 0, 3: 1, 4: 1}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if group[i] == group[j] {
				set(i, j, 1+0.01*float64(i+j))
			} else {
				set(i, j, 10+0.01*float64(i+j))
			}
		}
	}
	return m
}

func TestClusterTwoGroups(t *testing.T) {
	m := twoGroupMatrix()
	for _, l := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		d, err := m.Cluster(l)
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if len(d.Merges) != 4 {
			t.Fatalf("%v: %d merges", l, len(d.Merges))
		}
		labels, err := d.CutK(2)
		if err != nil {
			t.Fatal(err)
		}
		if labels[0] != labels[1] || labels[1] != labels[2] {
			t.Errorf("%v: group A split: %v", l, labels)
		}
		if labels[3] != labels[4] {
			t.Errorf("%v: group B split: %v", l, labels)
		}
		if labels[0] == labels[3] {
			t.Errorf("%v: groups merged: %v", l, labels)
		}
	}
}

func TestClusterHeightsMonotone(t *testing.T) {
	m := twoGroupMatrix()
	d, err := m.Cluster(AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d.Merges); i++ {
		if d.Merges[i].Height < d.Merges[i-1].Height {
			t.Fatalf("heights not monotone: %v", d.Merges)
		}
	}
}

func TestCutByHeight(t *testing.T) {
	m := twoGroupMatrix()
	d, err := m.Cluster(SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	// Cutting below the cross-group distance yields 2 clusters.
	labels := d.Cut(5)
	if got := len(Clusters(labels)); got != 2 {
		t.Errorf("Cut(5): %d clusters, want 2", got)
	}
	// Cutting below everything yields singletons.
	labels = d.Cut(0.5)
	if got := len(Clusters(labels)); got != 5 {
		t.Errorf("Cut(0.5): %d clusters, want 5", got)
	}
	// Cutting above everything yields one cluster.
	labels = d.Cut(100)
	if got := len(Clusters(labels)); got != 1 {
		t.Errorf("Cut(100): %d clusters, want 1", got)
	}
}

func TestCutKRange(t *testing.T) {
	m := twoGroupMatrix()
	d, _ := m.Cluster(AverageLinkage)
	for k := 1; k <= 5; k++ {
		labels, err := d.CutK(k)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(Clusters(labels)); got != k {
			t.Errorf("CutK(%d): %d clusters", k, got)
		}
	}
	if _, err := d.CutK(0); err == nil {
		t.Error("CutK(0) accepted")
	}
	if _, err := d.CutK(6); err == nil {
		t.Error("CutK(6) accepted")
	}
}

func TestClusterValidation(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 1) // asymmetric
	if _, err := m.Cluster(SingleLinkage); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	m2 := NewMatrix(2)
	m2.Set(0, 0, 1)
	if _, err := m2.Cluster(SingleLinkage); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	empty := NewMatrix(0)
	if _, err := empty.Cluster(SingleLinkage); err != nil {
		t.Error("empty matrix rejected")
	}
}

func TestClusterOnRealPSAMatrix(t *testing.T) {
	// Two ensembles generated from different seeds form two families;
	// clustering the real PSA matrix must separate them. Trajectories
	// within a family share a start configuration (same stream) and
	// differ only by later drift.
	var ens = testEnsemble(4, 8, 6)
	// Family B: clones of a distinct fifth walk (fresh stream) with tiny
	// perturbations.
	base := synth.Walk("base", 8, 6, 77, 10)
	for i := 0; i < 3; i++ {
		c := base.Clone()
		for f := range c.Frames {
			for a := range c.Frames[f].Coords {
				c.Frames[f].Coords[a][0] += 0.001 * float64(i)
			}
		}
		ens = append(ens, c)
	}
	m, err := Serial(ens, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Cluster(AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := d.CutK(5) // 4 singleton-ish walks + 1 clone family
	if err != nil {
		t.Fatal(err)
	}
	// The three clones (indices 4,5,6) must share a cluster.
	if labels[4] != labels[5] || labels[5] != labels[6] {
		t.Errorf("clone family split: %v", labels)
	}
}

func TestLinkageStrings(t *testing.T) {
	if SingleLinkage.String() != "single" || CompleteLinkage.String() != "complete" ||
		AverageLinkage.String() != "average" || Linkage(9).String() != "unknown" {
		t.Error("linkage names wrong")
	}
}
