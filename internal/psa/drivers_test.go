package psa

import (
	"testing"
	"time"

	"mdtask/internal/dask"
	"mdtask/internal/hausdorff"
	"mdtask/internal/pilot"
	"mdtask/internal/rdd"
)

// All engine drivers must produce exactly the serial reference matrix.
func TestDriversMatchSerial(t *testing.T) {
	ens := testEnsemble(6, 7, 5)
	want, err := Serial(ens, hausdorff.Naive)
	if err != nil {
		t.Fatal(err)
	}
	const n1 = 2

	t.Run("rdd", func(t *testing.T) {
		got, err := RunRDD(rdd.NewContext(4), ens, n1, hausdorff.Naive)
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(got, want, 0) {
			t.Fatal("rdd matrix != serial")
		}
	})
	t.Run("dask", func(t *testing.T) {
		got, err := RunDask(dask.NewClient(4), ens, n1, hausdorff.Naive)
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(got, want, 0) {
			t.Fatal("dask matrix != serial")
		}
	})
	t.Run("mpi", func(t *testing.T) {
		got, err := RunMPI(4, ens, n1, hausdorff.Naive)
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(got, want, 0) {
			t.Fatal("mpi matrix != serial")
		}
	})
	t.Run("pilot", func(t *testing.T) {
		cfg := pilot.Config{
			DBLatency:          50 * time.Microsecond,
			AgentPollInterval:  500 * time.Microsecond,
			ClientPollInterval: 500 * time.Microsecond,
		}
		p, err := pilot.NewPilot(4, t.TempDir(), pilot.NewDB(cfg.DBLatency), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Shutdown()
		got, err := RunPilot(p, ens, n1, hausdorff.Naive)
		if err != nil {
			t.Fatal(err)
		}
		// Pilot round-trips coordinates through MDT files at float64
		// precision, so results are exact.
		if !matricesEqual(got, want, 0) {
			t.Fatal("pilot matrix != serial")
		}
	})
}

func TestDriversEarlyBreakMethod(t *testing.T) {
	ens := testEnsemble(4, 6, 4)
	want, _ := Serial(ens, hausdorff.Naive) // early-break is exact
	got, err := RunRDD(rdd.NewContext(2), ens, 2, hausdorff.EarlyBreak)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, want, 0) {
		t.Fatal("early-break result differs")
	}
}

func TestDriversRejectBadGroupSize(t *testing.T) {
	ens := testEnsemble(4, 5, 3)
	if _, err := RunRDD(rdd.NewContext(2), ens, 3, hausdorff.Naive); err == nil {
		t.Error("rdd accepted non-divisor group size")
	}
	if _, err := RunDask(dask.NewClient(2), ens, 3, hausdorff.Naive); err == nil {
		t.Error("dask accepted non-divisor group size")
	}
	if _, err := RunMPI(2, ens, 3, hausdorff.Naive); err == nil {
		t.Error("mpi accepted non-divisor group size")
	}
}

func TestFloatCodec(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, 1e300}
	got, err := decodeFloats(encodeFloats(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("codec mismatch at %d: %v vs %v", i, got[i], vals[i])
		}
	}
	if _, err := decodeFloats([]byte{1, 2, 3}); err == nil {
		t.Error("odd-length payload accepted")
	}
}
