package psa

import (
	"testing"
	"time"

	"mdtask/internal/dask"
	"mdtask/internal/hausdorff"
	"mdtask/internal/pilot"
	"mdtask/internal/rdd"
)

// testPilot brings up a fast-polling pilot for driver tests.
func testPilot(t *testing.T) *pilot.Pilot {
	t.Helper()
	cfg := pilot.Config{
		DBLatency:          50 * time.Microsecond,
		AgentPollInterval:  500 * time.Microsecond,
		ClientPollInterval: 500 * time.Microsecond,
	}
	p, err := pilot.NewPilot(4, t.TempDir(), pilot.NewDB(cfg.DBLatency), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Shutdown)
	return p
}

// The cross-engine value contract — every engine × method × schedule ×
// residency mode bit-identical to the serial reference — is locked down
// by internal/engine/conformtest, which runs through the jobs registry
// (the dispatch surface the CLIs and the server use) and so covers the
// drivers here plus serial and fleet. The tests below keep the
// driver-local invariants: staging economics, input validation, and the
// pilot wire codecs.

// The symmetric pilot schedule must not stage blobs for mirror blocks:
// total staged inputs drop from N²/n1 (every block stages its rows and
// columns) to roughly half.
func TestPilotSymmetricStagesFewerBlobs(t *testing.T) {
	const n, n1 = 6, 2
	staged := func(sym bool) int {
		blocks, err := Partition(n, n1, sym)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range blocks {
			total += len(b.TrajIndices())
		}
		return total
	}
	full, sym := staged(false), staged(true)
	if sym >= full {
		t.Fatalf("symmetric schedule stages %d blobs, full stages %d", sym, full)
	}
	// k=3: full = 9 blocks × 4 each minus diagonal overlap = 9×4−3×2;
	// symmetric = 6 blocks, diagonal ones staging their rows once.
	if want := 3*2 + 3*4; sym != want {
		t.Fatalf("symmetric schedule stages %d blobs, want %d", sym, want)
	}
}

func TestDriversRejectBadGroupSize(t *testing.T) {
	ens := testEnsemble(4, 5, 3)
	for _, sym := range []bool{false, true} {
		opts := Opts{Symmetric: sym, Method: hausdorff.Naive}
		if _, err := RunRDD(rdd.NewContext(2), ens, 3, opts); err == nil {
			t.Errorf("rdd accepted non-divisor group size (sym=%v)", sym)
		}
		if _, err := RunDask(dask.NewClient(2), ens, 3, opts); err == nil {
			t.Errorf("dask accepted non-divisor group size (sym=%v)", sym)
		}
		if _, err := RunMPI(2, ens, 3, opts); err == nil {
			t.Errorf("mpi accepted non-divisor group size (sym=%v)", sym)
		}
	}
}

func TestFloatCodec(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, 1e300}
	got, err := decodeFloats(encodeFloats(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("codec mismatch at %d: %v vs %v", i, got[i], vals[i])
		}
	}
	if _, err := decodeFloats([]byte{1, 2, 3}); err == nil {
		t.Error("odd-length payload accepted")
	}
}
