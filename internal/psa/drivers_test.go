package psa

import (
	"testing"
	"time"

	"mdtask/internal/dask"
	"mdtask/internal/engine"
	"mdtask/internal/hausdorff"
	"mdtask/internal/pilot"
	"mdtask/internal/rdd"
)

// testPilot brings up a fast-polling pilot for driver tests.
func testPilot(t *testing.T) *pilot.Pilot {
	t.Helper()
	cfg := pilot.Config{
		DBLatency:          50 * time.Microsecond,
		AgentPollInterval:  500 * time.Microsecond,
		ClientPollInterval: 500 * time.Microsecond,
	}
	p, err := pilot.NewPilot(4, t.TempDir(), pilot.NewDB(cfg.DBLatency), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Shutdown)
	return p
}

// All engine drivers must produce exactly the serial reference matrix
// under both the full-matrix and the symmetry-aware schedule. Pilot
// round-trips coordinates through MDT files at float64 precision, so
// even its results are exact.
func TestDriversMatchSerial(t *testing.T) {
	ens := testEnsemble(6, 7, 5)
	want, err := Serial(ens, Opts{Method: hausdorff.Naive})
	if err != nil {
		t.Fatal(err)
	}
	const n1 = 2
	for _, sym := range []bool{false, true} {
		opts := Opts{Symmetric: sym, Method: hausdorff.Naive}
		name := func(engine string) string {
			if sym {
				return engine + "/symmetric"
			}
			return engine + "/full"
		}
		t.Run(name("rdd"), func(t *testing.T) {
			got, err := RunRDD(rdd.NewContext(4), ens, n1, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !matricesEqual(got, want, 0) {
				t.Fatal("rdd matrix != serial")
			}
		})
		t.Run(name("dask"), func(t *testing.T) {
			got, err := RunDask(dask.NewClient(4), ens, n1, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !matricesEqual(got, want, 0) {
				t.Fatal("dask matrix != serial")
			}
		})
		t.Run(name("mpi"), func(t *testing.T) {
			got, err := RunMPI(4, ens, n1, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !matricesEqual(got, want, 0) {
				t.Fatal("mpi matrix != serial")
			}
		})
		t.Run(name("pilot"), func(t *testing.T) {
			got, err := RunPilot(testPilot(t), ens, n1, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !matricesEqual(got, want, 0) {
				t.Fatal("pilot matrix != serial")
			}
		})
	}
}

// The symmetric pilot schedule must not stage blobs for mirror blocks:
// total staged inputs drop from N²/n1 (every block stages its rows and
// columns) to roughly half.
func TestPilotSymmetricStagesFewerBlobs(t *testing.T) {
	const n, n1 = 6, 2
	staged := func(sym bool) int {
		blocks, err := Partition(n, n1, sym)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range blocks {
			total += len(blockTrajIndices(b))
		}
		return total
	}
	full, sym := staged(false), staged(true)
	if sym >= full {
		t.Fatalf("symmetric schedule stages %d blobs, full stages %d", sym, full)
	}
	// k=3: full = 9 blocks × 4 each minus diagonal overlap = 9×4−3×2;
	// symmetric = 6 blocks, diagonal ones staging their rows once.
	if want := 3*2 + 3*4; sym != want {
		t.Fatalf("symmetric schedule stages %d blobs, want %d", sym, want)
	}
}

func TestDriversEarlyBreakMethod(t *testing.T) {
	ens := testEnsemble(4, 6, 4)
	want, _ := Serial(ens, Opts{Method: hausdorff.Naive}) // early-break is exact
	for _, sym := range []bool{false, true} {
		got, err := RunRDD(rdd.NewContext(2), ens, 2, Opts{Symmetric: sym, Method: hausdorff.EarlyBreak})
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(got, want, 0) {
			t.Fatalf("early-break result differs (sym=%v)", sym)
		}
	}
}

// The pruned kernel must be exact on every engine — serial, rdd, dask,
// mpi and pilot — under both schedules, and every engine must deliver
// self-consistent frame-pair counters through opts.Metrics (pilot ships
// them back through its staged counters.bin files).
func TestDriversPrunedMethod(t *testing.T) {
	const n, atoms, frames, n1 = 6, 7, 5, 2
	ens := testEnsemble(n, atoms, frames)
	want, err := Serial(ens, Opts{Method: hausdorff.Naive})
	if err != nil {
		t.Fatal(err)
	}
	runners := map[string]func(Opts) (*Matrix, error){
		"serial": func(o Opts) (*Matrix, error) { return Serial(ens, o) },
		"rdd":    func(o Opts) (*Matrix, error) { return RunRDD(rdd.NewContext(4), ens, n1, o) },
		"dask":   func(o Opts) (*Matrix, error) { return RunDask(dask.NewClient(4), ens, n1, o) },
		"mpi":    func(o Opts) (*Matrix, error) { return RunMPI(4, ens, n1, o) },
		"pilot":  func(o Opts) (*Matrix, error) { return RunPilot(testPilot(t), ens, n1, o) },
	}
	for _, sym := range []bool{false, true} {
		// Every trajectory-pair comparison accounts 2·frames² frame
		// pairs; the diagonal is only scheduled under the full grid.
		wantPairs := int64(n*n) * 2 * frames * frames
		if sym {
			wantPairs = int64(n*(n-1)/2) * 2 * frames * frames
		}
		for name, run := range runners {
			sink := &engine.Metrics{}
			got, err := run(Opts{Symmetric: sym, Method: hausdorff.Pruned, Metrics: sink})
			if err != nil {
				t.Fatalf("%s (sym=%v): %v", name, sym, err)
			}
			if !matricesEqual(got, want, 0) {
				t.Errorf("%s (sym=%v): pruned matrix != naive serial", name, sym)
			}
			s := sink.Snapshot()
			if total := s.PairsEvaluated + s.PairsPruned + s.PairsAbandoned; total != wantPairs {
				t.Errorf("%s (sym=%v): counters evaluated=%d pruned=%d abandoned=%d sum to %d, want %d",
					name, sym, s.PairsEvaluated, s.PairsPruned, s.PairsAbandoned, total, wantPairs)
			}
			if s.PairsEvaluated <= 0 || s.PairsPruned <= 0 {
				t.Errorf("%s (sym=%v): no pruning recorded: evaluated=%d pruned=%d abandoned=%d",
					name, sym, s.PairsEvaluated, s.PairsPruned, s.PairsAbandoned)
			}
		}
	}
}

func TestDriversRejectBadGroupSize(t *testing.T) {
	ens := testEnsemble(4, 5, 3)
	for _, sym := range []bool{false, true} {
		opts := Opts{Symmetric: sym, Method: hausdorff.Naive}
		if _, err := RunRDD(rdd.NewContext(2), ens, 3, opts); err == nil {
			t.Errorf("rdd accepted non-divisor group size (sym=%v)", sym)
		}
		if _, err := RunDask(dask.NewClient(2), ens, 3, opts); err == nil {
			t.Errorf("dask accepted non-divisor group size (sym=%v)", sym)
		}
		if _, err := RunMPI(2, ens, 3, opts); err == nil {
			t.Errorf("mpi accepted non-divisor group size (sym=%v)", sym)
		}
	}
}

func TestFloatCodec(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, 1e300}
	got, err := decodeFloats(encodeFloats(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("codec mismatch at %d: %v vs %v", i, got[i], vals[i])
		}
	}
	if _, err := decodeFloats([]byte{1, 2, 3}); err == nil {
		t.Error("odd-length payload accepted")
	}
}
