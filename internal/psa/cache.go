package psa

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"

	"mdtask/internal/traj"
)

// errIncompleteBlock marks a block whose kernel loop was cancelled
// before covering every pair: its zero-filled values satisfy the
// caller's shape contract but must never be recorded in the block
// store, where another job could observe them.
var errIncompleteBlock = errors.New("psa: block cancelled before completion")

// BlockKey returns the content address of one block's values: the
// layout (rectangular, or the triangle-packed diagonal of a symmetric
// schedule) and the content digests of the trajectories in the block's
// row and column ranges, in order. Absolute matrix coordinates are
// deliberately excluded, so the same trajectories hit the same entry
// wherever a schedule places them — the property that lets a job
// sharing K of N trajectories with cached work recompute only blocks
// involving new content. Method, full-matrix, and frame-residency
// options are likewise excluded: every Hausdorff method is exact and
// the streamed kernel is bit-identical to the in-memory one, so a
// block's values depend only on content and layout.
func BlockKey(refs traj.RefEnsemble, b Block, symmetric bool) (string, error) {
	h := sha256.New()
	layout := "rect"
	if symmetric && b.Diagonal() {
		layout = "tri"
	}
	h.Write([]byte("psa-block|" + layout))
	for i := b.I0; i < b.I1; i++ {
		d, err := refs[i].Digest()
		if err != nil {
			return "", err
		}
		h.Write([]byte("|r" + d))
	}
	for j := b.J0; j < b.J1; j++ {
		d, err := refs[j].Digest()
		if err != nil {
			return "", err
		}
		h.Write([]byte("|c" + d))
	}
	return "psa|" + hex.EncodeToString(h.Sum(nil)), nil
}

// blockValueBytes sizes a cached block payload ([]float64 values).
func blockValueBytes(v any) int64 { return int64(len(v.([]float64))) * 8 }
