package psa

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"mdtask/internal/dask"
	"mdtask/internal/engine"
	"mdtask/internal/hausdorff"
	"mdtask/internal/mpi"
	"mdtask/internal/pilot"
	"mdtask/internal/rdd"
	"mdtask/internal/traj"
)

// RunRDD computes PSA on the Spark-like engine: an RDD with one
// partition per block task and a map over partitions, as the paper's
// PySpark implementation does (§4.2: "an RDD with one partition per
// task; tasks executed in a map function").
func RunRDD(ctx *rdd.Context, ens traj.Ensemble, n1 int, opts Opts) (*Matrix, error) {
	return RunRDDRefs(ctx, traj.RefsOf(ens), n1, opts)
}

// RunRDDRefs is RunRDD over trajectory handles; stream-backed refs with
// opts.MaxResidentFrames make every partition's task body out-of-core.
func RunRDDRefs(ctx *rdd.Context, refs traj.RefEnsemble, n1 int, opts Opts) (*Matrix, error) {
	blocks, err := Partition(len(refs), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	r := rdd.Parallelize(ctx, blocks, len(blocks))
	results, err := rdd.Map(r, func(b Block) (BlockResult, error) {
		return ComputeBlockRefs(refs, b, opts)
	}).Collect()
	if err != nil {
		return nil, err
	}
	return Assemble(len(refs), results), nil
}

// RunDask computes PSA on the Dask-like engine: one delayed function per
// block task, computed by the distributed scheduler (§4.2: "tasks are
// defined as delayed functions").
func RunDask(client *dask.Client, ens traj.Ensemble, n1 int, opts Opts) (*Matrix, error) {
	return RunDaskRefs(client, traj.RefsOf(ens), n1, opts)
}

// RunDaskRefs is RunDask over trajectory handles.
func RunDaskRefs(client *dask.Client, refs traj.RefEnsemble, n1 int, opts Opts) (*Matrix, error) {
	blocks, err := Partition(len(refs), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	nodes := make([]*dask.Delayed, len(blocks))
	for i, b := range blocks {
		b := b
		nodes[i] = client.Delayed(fmt.Sprintf("psa-block-%d", i),
			func([]interface{}) (interface{}, error) {
				return ComputeBlockRefs(refs, b, opts)
			})
	}
	vals, err := client.Compute(nodes...)
	if err != nil {
		return nil, err
	}
	results := make([]BlockResult, len(vals))
	for i, v := range vals {
		results[i] = v.(BlockResult)
	}
	return Assemble(len(refs), results), nil
}

// RunMPI computes PSA on the MPI runtime: block tasks are statically
// partitioned over ranks (one task per process, cycling), results are
// gathered at rank 0.
func RunMPI(ranks int, ens traj.Ensemble, n1 int, opts Opts) (*Matrix, error) {
	return RunMPIRefs(ranks, traj.RefsOf(ens), n1, opts)
}

// RunMPIRefs is RunMPI over trajectory handles.
func RunMPIRefs(ranks int, refs traj.RefEnsemble, n1 int, opts Opts) (*Matrix, error) {
	blocks, err := Partition(len(refs), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	var out *Matrix
	err = mpi.Run(ranks, opts.Metrics, func(c *mpi.Comm) error {
		var local []BlockResult
		for i := c.Rank(); i < len(blocks); i += c.Size() {
			start := time.Now()
			br, err := ComputeBlockRefs(refs, blocks[i], opts)
			if err != nil {
				return err
			}
			local = append(local, br)
			if opts.Metrics != nil {
				opts.Metrics.RecordTask(time.Since(start))
			}
		}
		var bytes int64
		for _, r := range local {
			bytes += int64(len(r.Values)) * 8
		}
		gathered := mpi.Gather(c, 0, local, bytes)
		if c.Rank() == 0 {
			var all []BlockResult
			for _, g := range gathered {
				all = append(all, g...)
			}
			out = Assemble(len(refs), all)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunPilot computes PSA on the pilot engine: one Compute-Unit per block
// task. Faithful to RADICAL-Pilot's execution model, each unit reads its
// input trajectories from staged MDT files in its sandbox and writes its
// block of distances to an output file, which the client collects — all
// data exchange goes through the filesystem (§3.3).
func RunPilot(p *pilot.Pilot, ens traj.Ensemble, n1 int, opts Opts) (*Matrix, error) {
	return RunPilotRefs(p, traj.RefsOf(ens), n1, opts)
}

// RunPilotRefs is RunPilot over trajectory handles. With
// opts.MaxResidentFrames set, each trajectory is staged as a sequence
// of window-sized MDT files instead of one whole-trajectory file
// (traj.EncodeMDTWindow); the unit then replays the window chain
// through the streamed kernel, holding at most two windows of frames
// resident however long the trajectories are. The bound applies to the
// unit (worker) side only: the staging client holds every blob it
// stages until the units run, inherent to the in-process pilot's
// InputFiles staging model — truly out-of-core submission is the fleet
// engine's window endpoint.
func RunPilotRefs(p *pilot.Pilot, refs traj.RefEnsemble, n1 int, opts Opts) (*Matrix, error) {
	blocks, err := Partition(len(refs), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	// Block-cache prefilter: hits are resolved client-side before any
	// staging, so a cached block costs no blobs, no unit, no sandbox
	// round-trip. Units themselves run uncached (the sandbox boundary is
	// the point of the pilot model); the client records their completed
	// results afterwards.
	results := make([]BlockResult, len(blocks))
	var keys []string
	if opts.Cache != nil {
		keys = make([]string, len(blocks))
		for i, b := range blocks {
			k, kerr := BlockKey(refs, b, opts.Symmetric)
			if kerr != nil {
				keys = nil // undigestable ref: run the whole schedule uncached
				break
			}
			keys[i] = k
		}
	}
	missing := make([]int, 0, len(blocks))
	for i := range blocks {
		if keys != nil {
			if v, ok := opts.Cache.Get(keys[i]); ok {
				vals := v.([]float64)
				opts.recordBlockCache(1, 0, int64(len(vals))*8)
				results[i] = BlockResult{Block: blocks[i], Values: vals, Symmetric: opts.Symmetric}
				continue
			}
			opts.recordBlockCache(0, 1, 0)
		}
		missing = append(missing, i)
	}
	if len(missing) == 0 {
		return Assemble(len(refs), results), nil
	}
	// Serialize each trajectory once; units stage only what they read.
	// The symmetric schedule drops every lower-triangle mirror block, so
	// each blob shared by a (bi,bj)/(bj,bi) pair is staged once instead
	// of twice, and a diagonal block stages its row set only once.
	w := opts.MaxResidentFrames
	blobs := make(map[int][][]byte, len(refs)) // trajectory → window blobs (1 window when not streaming)
	blobsOf := func(ix int) ([][]byte, error) {
		if bs, ok := blobs[ix]; ok {
			return bs, nil
		}
		r := refs[ix]
		var bs [][]byte
		if opts.streaming() {
			for win := 0; win < r.NumWindows(w); win++ {
				blob, err := r.EncodeMDTWindow(win*w, w, 8)
				if err != nil {
					return nil, err
				}
				bs = append(bs, blob)
			}
		} else {
			blob, err := r.EncodeMDTWindow(0, r.NFrames(), 8)
			if err != nil {
				return nil, err
			}
			bs = [][]byte{blob}
		}
		blobs[ix] = bs
		return bs, nil
	}
	descs := make([]pilot.UnitDescription, len(missing))
	for di, bi := range missing {
		b := blocks[bi]
		inputs := make(map[string][]byte)
		shapes := make(map[int][2]int) // trajectory → {nAtoms, nFrames}
		wins := make(map[int]int)      // trajectory → staged window count
		for _, ix := range b.TrajIndices() {
			bs, err := blobsOf(ix)
			if err != nil {
				return nil, err
			}
			for win, blob := range bs {
				inputs[trajFile(ix, win)] = blob
			}
			shapes[ix] = [2]int{refs[ix].NAtoms(), refs[ix].NFrames()}
			wins[ix] = len(bs)
		}
		descs[di] = pilot.UnitDescription{
			Name:        fmt.Sprintf("psa-block-%d", bi),
			InputFiles:  inputs,
			OutputFiles: []string{"distances.bin", "counters.bin"},
			Fn: func(sandbox string) error {
				// Rebuild each staged trajectory as a stream over its
				// window files: at most one window's frames are decoded at
				// a time, and the streamed kernel never holds more than
				// two windows.
				unitRefs := make(traj.RefEnsemble, len(refs))
				for ix, shape := range shapes {
					ix := ix
					r, err := traj.WindowChainRef(fmt.Sprintf("traj-%d", ix), shape[0], shape[1], wins[ix],
						func(win int) ([]byte, error) {
							return os.ReadFile(filepath.Join(sandbox, trajFile(ix, win)))
						})
					if err != nil {
						return err
					}
					unitRefs[ix] = r
				}
				var m engine.Metrics
				unitOpts := opts
				unitOpts.Metrics = &m
				unitOpts.Cache = nil // lookups happened client-side; sandboxes stay isolated
				br, err := ComputeBlockRefs(unitRefs, b, unitOpts)
				if err != nil {
					return err
				}
				if err := os.WriteFile(filepath.Join(sandbox, "distances.bin"), encodeFloats(br.Values), 0o644); err != nil {
					return err
				}
				snap := m.Snapshot()
				kc := hausdorff.Counters{
					Evaluated: snap.PairsEvaluated, Pruned: snap.PairsPruned, Abandoned: snap.PairsAbandoned,
					NodesVisited: snap.NodesVisited, NodesPruned: snap.NodesPruned,
				}
				st := hausdorff.StreamStats{PeakResidentFrames: snap.PeakResidentFrames, BytesStreamed: snap.BytesStreamed}
				return os.WriteFile(filepath.Join(sandbox, "counters.bin"), encodeCounters(kc, st), 0o644)
			},
		}
	}
	units, err := p.Submit(descs)
	if err != nil {
		return nil, err
	}
	if err := p.Wait(units); err != nil {
		return nil, err
	}
	for ui, u := range units {
		bi := missing[ui]
		raw, ok := u.Output("distances.bin")
		if !ok {
			return nil, fmt.Errorf("psa: unit %d produced no output", u.ID)
		}
		vals, err := decodeFloats(raw)
		if err != nil {
			return nil, fmt.Errorf("psa: unit %d: %w", u.ID, err)
		}
		if want := blocks[bi].TaskPairs(opts.Symmetric); len(vals) != want {
			return nil, fmt.Errorf("psa: unit %d returned %d values, want %d", u.ID, len(vals), want)
		}
		rawKC, ok := u.Output("counters.bin")
		if !ok {
			return nil, fmt.Errorf("psa: unit %d produced no kernel counters", u.ID)
		}
		kc, st, err := decodeCounters(rawKC)
		if err != nil {
			return nil, fmt.Errorf("psa: unit %d: %w", u.ID, err)
		}
		opts.recordKernel(kc)
		opts.recordStream(st)
		results[bi] = BlockResult{Block: blocks[bi], Values: vals, Symmetric: opts.Symmetric}
		if keys != nil && !opts.cancelled() {
			// A completed unit's values are a full kernel result; record
			// them. After a cancellation request units zero-fill instead,
			// so nothing may be recorded.
			opts.Cache.Put(keys[bi], vals, int64(len(vals))*8)
		}
	}
	return Assemble(len(refs), results), nil
}

// trajFile names a staged trajectory window blob inside a unit sandbox
// (window 0 is the whole trajectory when not streaming).
func trajFile(ix, win int) string { return fmt.Sprintf("traj-%04d-w%05d.mdt", ix, win) }

// encodeFloats packs float64 values little-endian.
func encodeFloats(vals []float64) []byte {
	out := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// encodeCounters packs a unit's kernel and streaming accounting as
// seven little-endian uint64s: evaluated, pruned, abandoned, nodes
// visited, nodes pruned, peak resident frames, bytes streamed.
func encodeCounters(kc hausdorff.Counters, st hausdorff.StreamStats) []byte {
	out := make([]byte, 0, 56)
	out = binary.LittleEndian.AppendUint64(out, uint64(kc.Evaluated))
	out = binary.LittleEndian.AppendUint64(out, uint64(kc.Pruned))
	out = binary.LittleEndian.AppendUint64(out, uint64(kc.Abandoned))
	out = binary.LittleEndian.AppendUint64(out, uint64(kc.NodesVisited))
	out = binary.LittleEndian.AppendUint64(out, uint64(kc.NodesPruned))
	out = binary.LittleEndian.AppendUint64(out, uint64(st.PeakResidentFrames))
	out = binary.LittleEndian.AppendUint64(out, uint64(st.BytesStreamed))
	return out
}

// decodeCounters unpacks the counters payload of a pilot unit.
func decodeCounters(b []byte) (hausdorff.Counters, hausdorff.StreamStats, error) {
	if len(b) != 56 {
		return hausdorff.Counters{}, hausdorff.StreamStats{}, fmt.Errorf("psa: counters payload length %d, want 56", len(b))
	}
	kc := hausdorff.Counters{
		Evaluated:    int64(binary.LittleEndian.Uint64(b)),
		Pruned:       int64(binary.LittleEndian.Uint64(b[8:])),
		Abandoned:    int64(binary.LittleEndian.Uint64(b[16:])),
		NodesVisited: int64(binary.LittleEndian.Uint64(b[24:])),
		NodesPruned:  int64(binary.LittleEndian.Uint64(b[32:])),
	}
	st := hausdorff.StreamStats{
		PeakResidentFrames: int64(binary.LittleEndian.Uint64(b[40:])),
		BytesStreamed:      int64(binary.LittleEndian.Uint64(b[48:])),
	}
	return kc, st, nil
}

// decodeFloats unpacks little-endian float64 values.
func decodeFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("psa: float payload length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}
