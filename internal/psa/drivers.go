package psa

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"mdtask/internal/dask"
	"mdtask/internal/hausdorff"
	"mdtask/internal/mpi"
	"mdtask/internal/pilot"
	"mdtask/internal/rdd"
	"mdtask/internal/traj"
)

// RunRDD computes PSA on the Spark-like engine: an RDD with one
// partition per block task and a map over partitions, as the paper's
// PySpark implementation does (§4.2: "an RDD with one partition per
// task; tasks executed in a map function").
func RunRDD(ctx *rdd.Context, ens traj.Ensemble, n1 int, opts Opts) (*Matrix, error) {
	blocks, err := Partition(len(ens), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	r := rdd.Parallelize(ctx, blocks, len(blocks))
	results, err := rdd.Map(r, func(b Block) (BlockResult, error) {
		return ComputeBlock(ens, b, opts), nil
	}).Collect()
	if err != nil {
		return nil, err
	}
	return Assemble(len(ens), results), nil
}

// RunDask computes PSA on the Dask-like engine: one delayed function per
// block task, computed by the distributed scheduler (§4.2: "tasks are
// defined as delayed functions").
func RunDask(client *dask.Client, ens traj.Ensemble, n1 int, opts Opts) (*Matrix, error) {
	blocks, err := Partition(len(ens), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	nodes := make([]*dask.Delayed, len(blocks))
	for i, b := range blocks {
		b := b
		nodes[i] = client.Delayed(fmt.Sprintf("psa-block-%d", i),
			func([]interface{}) (interface{}, error) {
				return ComputeBlock(ens, b, opts), nil
			})
	}
	vals, err := client.Compute(nodes...)
	if err != nil {
		return nil, err
	}
	results := make([]BlockResult, len(vals))
	for i, v := range vals {
		results[i] = v.(BlockResult)
	}
	return Assemble(len(ens), results), nil
}

// RunMPI computes PSA on the MPI runtime: block tasks are statically
// partitioned over ranks (one task per process, cycling), results are
// gathered at rank 0.
func RunMPI(ranks int, ens traj.Ensemble, n1 int, opts Opts) (*Matrix, error) {
	blocks, err := Partition(len(ens), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	var out *Matrix
	err = mpi.Run(ranks, opts.Metrics, func(c *mpi.Comm) error {
		var local []BlockResult
		for i := c.Rank(); i < len(blocks); i += c.Size() {
			start := time.Now()
			local = append(local, ComputeBlock(ens, blocks[i], opts))
			if opts.Metrics != nil {
				opts.Metrics.RecordTask(time.Since(start))
			}
		}
		var bytes int64
		for _, r := range local {
			bytes += int64(len(r.Values)) * 8
		}
		gathered := mpi.Gather(c, 0, local, bytes)
		if c.Rank() == 0 {
			var all []BlockResult
			for _, g := range gathered {
				all = append(all, g...)
			}
			out = Assemble(len(ens), all)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunPilot computes PSA on the pilot engine: one Compute-Unit per block
// task. Faithful to RADICAL-Pilot's execution model, each unit reads its
// input trajectories from staged MDT files in its sandbox and writes its
// block of distances to an output file, which the client collects — all
// data exchange goes through the filesystem (§3.3).
func RunPilot(p *pilot.Pilot, ens traj.Ensemble, n1 int, opts Opts) (*Matrix, error) {
	blocks, err := Partition(len(ens), n1, opts.Symmetric)
	if err != nil {
		return nil, err
	}
	// Serialize each trajectory once; units stage only what they read.
	// The symmetric schedule drops every lower-triangle mirror block, so
	// each blob shared by a (bi,bj)/(bj,bi) pair is staged once instead
	// of twice, and a diagonal block stages its row set only once.
	blobs := make([][]byte, len(ens))
	for i, t := range ens {
		b, err := traj.EncodeMDT(t, 8)
		if err != nil {
			return nil, err
		}
		blobs[i] = b
	}
	descs := make([]pilot.UnitDescription, len(blocks))
	for bi, b := range blocks {
		b := b
		inputs := make(map[string][]byte)
		for _, ix := range blockTrajIndices(b) {
			inputs[trajFile(ix)] = blobs[ix]
		}
		descs[bi] = pilot.UnitDescription{
			Name:        fmt.Sprintf("psa-block-%d", bi),
			InputFiles:  inputs,
			OutputFiles: []string{"distances.bin", "counters.bin"},
			Fn: func(sandbox string) error {
				writeOutputs := func(vals []float64, kc hausdorff.Counters) error {
					if err := os.WriteFile(filepath.Join(sandbox, "distances.bin"), encodeFloats(vals), 0o644); err != nil {
						return err
					}
					return os.WriteFile(filepath.Join(sandbox, "counters.bin"), encodeCounters(kc), 0o644)
				}
				if opts.cancelled() {
					// Emit a zero-valued block of the expected shape; the
					// job layer discards the matrix of a cancelled run.
					return writeOutputs(make([]float64, b.TaskPairs(opts.Symmetric)), hausdorff.Counters{})
				}
				// Read each staged trajectory once per unit, not once
				// per pair. The packed representation is likewise built
				// once per trajectory per unit (traj.Trajectory.Packed
				// caches it on the loaded trajectory).
				cache := make(map[int]*traj.Trajectory)
				load := func(ix int) (*traj.Trajectory, error) {
					if t, ok := cache[ix]; ok {
						return t, nil
					}
					t, err := traj.ReadMDTFile(filepath.Join(sandbox, trajFile(ix)))
					if err != nil {
						return nil, err
					}
					cache[ix] = t
					return t, nil
				}
				vals := make([]float64, 0, b.TaskPairs(opts.Symmetric))
				var kc hausdorff.Counters
				for i := b.I0; i < b.I1; i++ {
					ti, err := load(i)
					if err != nil {
						return err
					}
					j0 := b.J0
					if opts.Symmetric && b.Diagonal() {
						j0 = i + 1
					}
					for j := j0; j < b.J1; j++ {
						tj, err := load(j)
						if err != nil {
							return err
						}
						vals = append(vals, hausdorff.DistanceCounted(ti, tj, opts.Method, &kc))
					}
				}
				return writeOutputs(vals, kc)
			},
		}
	}
	units, err := p.Submit(descs)
	if err != nil {
		return nil, err
	}
	if err := p.Wait(units); err != nil {
		return nil, err
	}
	results := make([]BlockResult, len(units))
	for i, u := range units {
		raw, ok := u.Output("distances.bin")
		if !ok {
			return nil, fmt.Errorf("psa: unit %d produced no output", u.ID)
		}
		vals, err := decodeFloats(raw)
		if err != nil {
			return nil, fmt.Errorf("psa: unit %d: %w", u.ID, err)
		}
		if want := blocks[i].TaskPairs(opts.Symmetric); len(vals) != want {
			return nil, fmt.Errorf("psa: unit %d returned %d values, want %d", u.ID, len(vals), want)
		}
		rawKC, ok := u.Output("counters.bin")
		if !ok {
			return nil, fmt.Errorf("psa: unit %d produced no kernel counters", u.ID)
		}
		kc, err := decodeCounters(rawKC)
		if err != nil {
			return nil, fmt.Errorf("psa: unit %d: %w", u.ID, err)
		}
		opts.recordKernel(kc)
		results[i] = BlockResult{Block: blocks[i], Values: vals, Symmetric: opts.Symmetric}
	}
	return Assemble(len(ens), results), nil
}

// trajFile names a staged trajectory blob inside a unit sandbox.
func trajFile(ix int) string { return fmt.Sprintf("traj-%04d.mdt", ix) }

// blockTrajIndices lists the distinct trajectory indices a block reads:
// its row range plus whatever of its column range does not overlap it.
func blockTrajIndices(b Block) []int {
	out := make([]int, 0, (b.I1-b.I0)+(b.J1-b.J0))
	for i := b.I0; i < b.I1; i++ {
		out = append(out, i)
	}
	for j := b.J0; j < b.J1; j++ {
		if j < b.I0 || j >= b.I1 {
			out = append(out, j)
		}
	}
	return out
}

// encodeFloats packs float64 values little-endian.
func encodeFloats(vals []float64) []byte {
	out := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// encodeCounters packs kernel counters as three little-endian uint64s.
func encodeCounters(c hausdorff.Counters) []byte {
	out := make([]byte, 0, 24)
	out = binary.LittleEndian.AppendUint64(out, uint64(c.Evaluated))
	out = binary.LittleEndian.AppendUint64(out, uint64(c.Pruned))
	out = binary.LittleEndian.AppendUint64(out, uint64(c.Abandoned))
	return out
}

// decodeCounters unpacks the counters payload of a pilot unit.
func decodeCounters(b []byte) (hausdorff.Counters, error) {
	if len(b) != 24 {
		return hausdorff.Counters{}, fmt.Errorf("psa: counters payload length %d, want 24", len(b))
	}
	return hausdorff.Counters{
		Evaluated: int64(binary.LittleEndian.Uint64(b)),
		Pruned:    int64(binary.LittleEndian.Uint64(b[8:])),
		Abandoned: int64(binary.LittleEndian.Uint64(b[16:])),
	}, nil
}

// decodeFloats unpacks little-endian float64 values.
func decodeFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("psa: float payload length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}
