package psa

import (
	"math"
	"testing"

	"mdtask/internal/hausdorff"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func testEnsemble(n, atoms, frames int) traj.Ensemble {
	ens := make(traj.Ensemble, n)
	for i := range ens {
		ens[i] = synth.Walk("t", atoms, frames, 77, uint64(i))
	}
	return ens
}

func TestPartition2DCoversAllPairs(t *testing.T) {
	for _, tc := range []struct{ n, n1 int }{{8, 2}, {8, 4}, {8, 8}, {6, 1}, {12, 3}} {
		blocks, err := Partition2D(tc.n, tc.n1)
		if err != nil {
			t.Fatal(err)
		}
		k := tc.n / tc.n1
		if len(blocks) != k*k {
			t.Fatalf("n=%d n1=%d: %d blocks, want %d", tc.n, tc.n1, len(blocks), k*k)
		}
		covered := make([][]int, tc.n)
		for i := range covered {
			covered[i] = make([]int, tc.n)
		}
		for _, b := range blocks {
			for i := b.I0; i < b.I1; i++ {
				for j := b.J0; j < b.J1; j++ {
					covered[i][j]++
				}
			}
		}
		for i := range covered {
			for j := range covered[i] {
				if covered[i][j] != 1 {
					t.Fatalf("pair (%d,%d) covered %d times", i, j, covered[i][j])
				}
			}
		}
	}
}

func TestPartition2DRejectsBadGroupSize(t *testing.T) {
	for _, n1 := range []int{0, -1, 3, 5} {
		if _, err := Partition2D(8, n1); err == nil {
			t.Errorf("n1=%d accepted for N=8", n1)
		}
		if _, err := PartitionTriangular(8, n1); err == nil {
			t.Errorf("triangular: n1=%d accepted for N=8", n1)
		}
	}
}

// The triangular schedule must cover every unordered pair exactly once:
// each (i, j) with i < j appears in exactly one block's range, and no
// block lies strictly below the diagonal.
func TestPartitionTriangularCoversUpperPairs(t *testing.T) {
	for _, tc := range []struct{ n, n1 int }{{8, 2}, {8, 4}, {8, 8}, {6, 1}, {12, 3}} {
		blocks, err := PartitionTriangular(tc.n, tc.n1)
		if err != nil {
			t.Fatal(err)
		}
		k := tc.n / tc.n1
		if want := k * (k + 1) / 2; len(blocks) != want {
			t.Fatalf("n=%d n1=%d: %d blocks, want %d", tc.n, tc.n1, len(blocks), want)
		}
		covered := make(map[[2]int]int)
		for _, b := range blocks {
			if b.J0 < b.I0 {
				t.Fatalf("block %+v lies below the diagonal", b)
			}
			for i := b.I0; i < b.I1; i++ {
				j0 := b.J0
				if b.Diagonal() {
					j0 = i + 1
				}
				for j := j0; j < b.J1; j++ {
					covered[[2]int{i, j}]++
				}
			}
		}
		for i := 0; i < tc.n; i++ {
			for j := i + 1; j < tc.n; j++ {
				if covered[[2]int{i, j}] != 1 {
					t.Fatalf("pair (%d,%d) covered %d times", i, j, covered[[2]int{i, j}])
				}
			}
		}
	}
}

// The symmetric schedule does k(k+1)/2 − k·n1-ish of the full grid's k²
// kernel evaluations: just over half the work, approaching exactly half
// as N grows.
func TestTaskPairsSymmetricHalvesWork(t *testing.T) {
	const n, n1 = 24, 4
	full, err := Partition2D(n, n1)
	if err != nil {
		t.Fatal(err)
	}
	tri, err := PartitionTriangular(n, n1)
	if err != nil {
		t.Fatal(err)
	}
	fullPairs, triPairs := 0, 0
	for _, b := range full {
		fullPairs += b.TaskPairs(false)
	}
	for _, b := range tri {
		triPairs += b.TaskPairs(true)
	}
	if fullPairs != n*n {
		t.Fatalf("full schedule evaluates %d pairs, want %d", fullPairs, n*n)
	}
	if want := n * (n - 1) / 2; triPairs != want {
		t.Fatalf("symmetric schedule evaluates %d pairs, want %d", triPairs, want)
	}
	if ratio := float64(triPairs) / float64(fullPairs); ratio > 0.5 {
		t.Fatalf("symmetric/full pair ratio = %.3f, want <= 0.5", ratio)
	}
}

func TestDefaultGroupSize(t *testing.T) {
	// 128 trajectories, 16 tasks: k=4, n1=32.
	if got := DefaultGroupSize(128, 16); got != 32 {
		t.Errorf("DefaultGroupSize(128,16) = %d, want 32", got)
	}
	// 128 trajectories, 256 tasks: k=16, n1=8.
	if got := DefaultGroupSize(128, 256); got != 8 {
		t.Errorf("DefaultGroupSize(128,256) = %d, want 8", got)
	}
	// Must always return a divisor.
	for n := 1; n <= 40; n++ {
		for w := 1; w <= 40; w++ {
			n1 := DefaultGroupSize(n, w)
			if n1 < 1 || n%n1 != 0 {
				t.Fatalf("DefaultGroupSize(%d,%d) = %d not a divisor", n, w, n1)
			}
		}
	}
}

func TestSerialProperties(t *testing.T) {
	ens := testEnsemble(5, 6, 4)
	m, err := Serial(ens, Opts{Method: hausdorff.Naive})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N; i++ {
		if m.At(i, i) != 0 {
			t.Errorf("diagonal (%d,%d) = %v", i, i, m.At(i, i))
		}
		for j := 0; j < m.N; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
			if i != j && m.At(i, j) <= 0 {
				t.Errorf("non-positive off-diagonal at (%d,%d)", i, j)
			}
		}
	}
}

func TestComputeBlockAndAssemble(t *testing.T) {
	ens := testEnsemble(4, 5, 3)
	want, _ := Serial(ens, Opts{Method: hausdorff.Naive})
	blocks, err := Partition2D(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]BlockResult, len(blocks))
	for i, b := range blocks {
		results[i] = ComputeBlock(ens, b, Opts{Method: hausdorff.Naive})
		if len(results[i].Values) != b.Pairs() {
			t.Fatalf("block %d: %d values, want %d", i, len(results[i].Values), b.Pairs())
		}
	}
	got := Assemble(4, results)
	if !matricesEqual(got, want, 0) {
		t.Fatal("assembled matrix != serial")
	}
}

// ComputeBlock and Assemble must handle blocks of any shape: ragged
// (non-square) blocks, 1×1 blocks, and diagonal blocks (I0==J0) under
// both schedules — including 1×1 diagonal blocks, whose symmetric
// result is empty (the self-distance is implied zero).
func TestComputeBlockShapes(t *testing.T) {
	ens := testEnsemble(5, 4, 3)
	want, _ := Serial(ens, Opts{Method: hausdorff.Naive})
	for _, sym := range []bool{false, true} {
		opts := Opts{Symmetric: sym, Method: hausdorff.Naive}
		for _, b := range []Block{
			{I0: 0, I1: 3, J0: 3, J1: 5}, // ragged 3×2 off-diagonal
			{I0: 1, I1: 2, J0: 4, J1: 5}, // 1×1 off-diagonal
			{I0: 1, I1: 4, J0: 1, J1: 4}, // 3×3 diagonal
			{I0: 2, I1: 3, J0: 2, J1: 3}, // 1×1 diagonal
		} {
			r := ComputeBlock(ens, b, opts)
			if len(r.Values) != b.TaskPairs(sym) {
				t.Fatalf("sym=%v block %+v: %d values, want %d", sym, b, len(r.Values), b.TaskPairs(sym))
			}
			got := Assemble(5, []BlockResult{r})
			for i := b.I0; i < b.I1; i++ {
				for j := b.J0; j < b.J1; j++ {
					if i == j {
						continue // symmetric diagonal blocks imply the zero
					}
					if got.At(i, j) != want.At(i, j) {
						t.Fatalf("sym=%v block %+v: (%d,%d) = %v, want %v",
							sym, b, i, j, got.At(i, j), want.At(i, j))
					}
					if sym && got.At(j, i) != want.At(j, i) {
						t.Fatalf("sym=%v block %+v: mirror (%d,%d) not assembled", sym, b, j, i)
					}
				}
			}
		}
	}
}

// Property test: for several (n, n1) pairs and both schedules,
// assembling the partition's computed blocks reproduces Serial exactly.
func TestAssemblePartitionEqualsSerial(t *testing.T) {
	for _, tc := range []struct{ n, n1 int }{{4, 1}, {4, 2}, {6, 3}, {6, 6}, {8, 2}, {9, 3}} {
		ens := testEnsemble(tc.n, 4, 3)
		want, err := Serial(ens, Opts{Method: hausdorff.Naive})
		if err != nil {
			t.Fatal(err)
		}
		for _, sym := range []bool{false, true} {
			opts := Opts{Symmetric: sym, Method: hausdorff.Naive}
			blocks, err := Partition(tc.n, tc.n1, sym)
			if err != nil {
				t.Fatal(err)
			}
			results := make([]BlockResult, len(blocks))
			for i, b := range blocks {
				results[i] = ComputeBlock(ens, b, opts)
			}
			if got := Assemble(tc.n, results); !matricesEqual(got, want, 0) {
				t.Fatalf("n=%d n1=%d sym=%v: assembled matrix != serial", tc.n, tc.n1, sym)
			}
		}
	}
}

// Symmetric Serial must be bit-identical to the full scan, not just
// close: the Hausdorff distance is exactly symmetric and the diagonal
// exactly zero.
func TestSerialSymmetricBitIdentical(t *testing.T) {
	ens := testEnsemble(6, 5, 4)
	for _, m := range []hausdorff.Method{hausdorff.Naive, hausdorff.EarlyBreak} {
		full, err := Serial(ens, Opts{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		sym, err := Serial(ens, Opts{Symmetric: true, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(sym, full, 0) {
			t.Fatalf("method %v: symmetric serial differs from full", m)
		}
	}
}

func matricesEqual(a, b *Matrix, tol float64) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestSerialRejectsInvalidEnsemble(t *testing.T) {
	if _, err := Serial(traj.Ensemble{nil}, Opts{Method: hausdorff.Naive}); err == nil {
		t.Fatal("nil member accepted")
	}
}
