package psa

import (
	"math"
	"testing"

	"mdtask/internal/hausdorff"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

func testEnsemble(n, atoms, frames int) traj.Ensemble {
	ens := make(traj.Ensemble, n)
	for i := range ens {
		ens[i] = synth.Walk("t", atoms, frames, 77, uint64(i))
	}
	return ens
}

func TestPartition2DCoversAllPairs(t *testing.T) {
	for _, tc := range []struct{ n, n1 int }{{8, 2}, {8, 4}, {8, 8}, {6, 1}, {12, 3}} {
		blocks, err := Partition2D(tc.n, tc.n1)
		if err != nil {
			t.Fatal(err)
		}
		k := tc.n / tc.n1
		if len(blocks) != k*k {
			t.Fatalf("n=%d n1=%d: %d blocks, want %d", tc.n, tc.n1, len(blocks), k*k)
		}
		covered := make([][]int, tc.n)
		for i := range covered {
			covered[i] = make([]int, tc.n)
		}
		for _, b := range blocks {
			for i := b.I0; i < b.I1; i++ {
				for j := b.J0; j < b.J1; j++ {
					covered[i][j]++
				}
			}
		}
		for i := range covered {
			for j := range covered[i] {
				if covered[i][j] != 1 {
					t.Fatalf("pair (%d,%d) covered %d times", i, j, covered[i][j])
				}
			}
		}
	}
}

func TestPartition2DRejectsBadGroupSize(t *testing.T) {
	for _, n1 := range []int{0, -1, 3, 5} {
		if _, err := Partition2D(8, n1); err == nil {
			t.Errorf("n1=%d accepted for N=8", n1)
		}
	}
}

func TestDefaultGroupSize(t *testing.T) {
	// 128 trajectories, 16 tasks: k=4, n1=32.
	if got := DefaultGroupSize(128, 16); got != 32 {
		t.Errorf("DefaultGroupSize(128,16) = %d, want 32", got)
	}
	// 128 trajectories, 256 tasks: k=16, n1=8.
	if got := DefaultGroupSize(128, 256); got != 8 {
		t.Errorf("DefaultGroupSize(128,256) = %d, want 8", got)
	}
	// Must always return a divisor.
	for n := 1; n <= 40; n++ {
		for w := 1; w <= 40; w++ {
			n1 := DefaultGroupSize(n, w)
			if n1 < 1 || n%n1 != 0 {
				t.Fatalf("DefaultGroupSize(%d,%d) = %d not a divisor", n, w, n1)
			}
		}
	}
}

func TestSerialProperties(t *testing.T) {
	ens := testEnsemble(5, 6, 4)
	m, err := Serial(ens, hausdorff.Naive)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N; i++ {
		if m.At(i, i) != 0 {
			t.Errorf("diagonal (%d,%d) = %v", i, i, m.At(i, i))
		}
		for j := 0; j < m.N; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
			if i != j && m.At(i, j) <= 0 {
				t.Errorf("non-positive off-diagonal at (%d,%d)", i, j)
			}
		}
	}
}

func TestComputeBlockAndAssemble(t *testing.T) {
	ens := testEnsemble(4, 5, 3)
	want, _ := Serial(ens, hausdorff.Naive)
	blocks, err := Partition2D(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]BlockResult, len(blocks))
	for i, b := range blocks {
		results[i] = ComputeBlock(ens, b, hausdorff.Naive)
		if len(results[i].Values) != b.Pairs() {
			t.Fatalf("block %d: %d values, want %d", i, len(results[i].Values), b.Pairs())
		}
	}
	got := Assemble(4, results)
	if !matricesEqual(got, want, 0) {
		t.Fatal("assembled matrix != serial")
	}
}

func matricesEqual(a, b *Matrix, tol float64) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestSerialRejectsInvalidEnsemble(t *testing.T) {
	if _, err := Serial(traj.Ensemble{nil}, hausdorff.Naive); err == nil {
		t.Fatal("nil member accepted")
	}
}
