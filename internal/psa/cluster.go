package psa

import (
	"fmt"
	"math"
	"sort"
)

// Hierarchical clustering of trajectories from the PSA distance matrix:
// the downstream step the paper names as PSA's purpose ("cluster the
// trajectories based on their distance matrix", §2.1.1, following
// Seyler et al.'s Path Similarity Analysis method).

// Linkage selects how inter-cluster distances are updated when merging.
type Linkage int

const (
	// SingleLinkage merges on the minimum pairwise distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges on the maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage merges on the unweighted average distance (UPGMA).
	AverageLinkage
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return "unknown"
	}
}

// Merge records one agglomeration step of the dendrogram: clusters A
// and B (identified by their smallest member index) merged at Height.
type Merge struct {
	A, B   int
	Height float64
}

// Dendrogram is the full agglomeration history of N leaves: N-1 merges
// in non-decreasing height order (heights are monotone for the
// implemented linkages on a metric matrix).
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Cluster agglomeratively clusters the matrix's N items. The matrix
// must be symmetric with a zero diagonal (as produced by the PSA
// drivers).
func (m *Matrix) Cluster(linkage Linkage) (*Dendrogram, error) {
	n := m.N
	if n == 0 {
		return &Dendrogram{}, nil
	}
	for i := 0; i < n; i++ {
		if m.At(i, i) != 0 {
			return nil, fmt.Errorf("psa: Cluster: nonzero diagonal at %d", i)
		}
		for j := i + 1; j < n; j++ {
			if m.At(i, j) != m.At(j, i) {
				return nil, fmt.Errorf("psa: Cluster: asymmetric at (%d,%d)", i, j)
			}
		}
	}

	// Working distance matrix between active clusters, identified by
	// their smallest member; size[] tracks member counts for UPGMA.
	dist := make([]float64, n*n)
	copy(dist, m.Data)
	active := make([]int, n)
	size := make([]int, n)
	for i := range active {
		active[i] = i
		size[i] = 1
	}
	d := &Dendrogram{N: n}

	for len(active) > 1 {
		// Find the closest active pair.
		bi, bj := 0, 1
		best := math.Inf(1)
		for x := 0; x < len(active); x++ {
			for y := x + 1; y < len(active); y++ {
				a, b := active[x], active[y]
				if dv := dist[a*n+b]; dv < best {
					best, bi, bj = dv, x, y
				}
			}
		}
		a, b := active[bi], active[bj] // a < b by construction order
		if b < a {
			a, b = b, a
		}
		d.Merges = append(d.Merges, Merge{A: a, B: b, Height: best})

		// Update distances from the merged cluster (kept under id a).
		for _, c := range active {
			if c == a || c == b {
				continue
			}
			da, db := dist[a*n+c], dist[b*n+c]
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(da, db)
			case CompleteLinkage:
				nd = math.Max(da, db)
			case AverageLinkage:
				nd = (da*float64(size[a]) + db*float64(size[b])) /
					float64(size[a]+size[b])
			default:
				return nil, fmt.Errorf("psa: unknown linkage %d", int(linkage))
			}
			dist[a*n+c], dist[c*n+a] = nd, nd
		}
		size[a] += size[b]
		// Deactivate b.
		out := active[:0]
		for _, c := range active {
			if c != b {
				out = append(out, c)
			}
		}
		active = out
	}
	return d, nil
}

// Cut returns the cluster assignment obtained by cutting the dendrogram
// at the given height: merges with Height <= height are applied. Labels
// are canonical (smallest member index), like the graph package's.
func (d *Dendrogram) Cut(height float64) []int32 {
	parent := make([]int32, d.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, mg := range d.Merges {
		if mg.Height > height {
			continue
		}
		ra, rb := find(int32(mg.A)), find(int32(mg.B))
		if ra == rb {
			continue
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	labels := make([]int32, d.N)
	for i := range labels {
		labels[i] = find(int32(i))
	}
	return labels
}

// CutK cuts the dendrogram into exactly k clusters (1 <= k <= N) by
// applying the first N-k merges.
func (d *Dendrogram) CutK(k int) ([]int32, error) {
	if k < 1 || k > d.N {
		return nil, fmt.Errorf("psa: CutK(%d) out of range [1,%d]", k, d.N)
	}
	parent := make([]int32, d.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, mg := range d.Merges[:d.N-k] {
		ra, rb := find(int32(mg.A)), find(int32(mg.B))
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	labels := make([]int32, d.N)
	for i := range labels {
		labels[i] = find(int32(i))
	}
	return labels, nil
}

// Clusters groups item indices by label, largest cluster first.
func Clusters(labels []int32) [][]int32 {
	byLabel := make(map[int32][]int32)
	for i, l := range labels {
		byLabel[l] = append(byLabel[l], int32(i))
	}
	out := make([][]int32, 0, len(byLabel))
	for _, c := range byLabel {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
