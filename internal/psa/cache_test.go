package psa

import (
	"testing"

	"mdtask/internal/blockstore"
	"mdtask/internal/engine"
	"mdtask/internal/traj"
)

// countingCancel fires true from the nth poll onward.
func countingCancel(n int) func() bool {
	calls := 0
	return func() bool {
		calls++
		return calls >= n
	}
}

func TestBlockKeyPositionIndependent(t *testing.T) {
	ens := testEnsemble(4, 6, 3)
	refs := traj.RefsOf(ens)
	// The same trajectory pair reached through different schedule
	// coordinates shares one key: block (2,3) of the 4-ensemble equals
	// block (0,1) of the sub-ensemble holding those two trajectories.
	k1, err := BlockKey(refs, Block{I0: 2, I1: 3, J0: 3, J1: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := BlockKey(refs[2:4], Block{I0: 0, I1: 1, J0: 1, J1: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("same trajectory pair keyed differently at different schedule positions")
	}
	// Different trajectories must not collide.
	k3, err := BlockKey(refs, Block{I0: 1, I1: 2, J0: 3, J1: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("distinct trajectory pairs collided")
	}
	// A symmetric diagonal block is triangle-packed, so it must not
	// share a key with the full-rect layout of the same coordinates.
	d1, err := BlockKey(refs, Block{I0: 0, I1: 2, J0: 0, J1: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := BlockKey(refs, Block{I0: 0, I1: 2, J0: 0, J1: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Error("triangular and full-rect layouts share a key")
	}
}

func TestComputeBlockRefsCachesAcrossCalls(t *testing.T) {
	refs := traj.RefsOf(testEnsemble(4, 6, 3))
	store := blockstore.New(0)
	b := Block{I0: 0, I1: 4, J0: 0, J1: 4}
	var m engine.Metrics
	opts := Opts{Symmetric: true, Cache: store, Metrics: &m}

	cold, err := ComputeBlockRefs(refs, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); s.BlockCacheHits != 0 || s.BlockCacheMisses != 1 {
		t.Fatalf("cold run accounting: hits=%d misses=%d", s.BlockCacheHits, s.BlockCacheMisses)
	}
	pairsCold := m.Snapshot().PairsEvaluated
	if pairsCold == 0 {
		t.Fatal("cold run evaluated no pairs")
	}

	warm, err := ComputeBlockRefs(refs, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); s.BlockCacheHits != 1 || s.PairsEvaluated != pairsCold {
		t.Fatalf("warm run ran the kernel: hits=%d pairs=%d (cold pairs %d)",
			s.BlockCacheHits, s.PairsEvaluated, pairsCold)
	}
	if len(warm.Values) != len(cold.Values) {
		t.Fatalf("warm block shape %d, want %d", len(warm.Values), len(cold.Values))
	}
	for i := range cold.Values {
		if warm.Values[i] != cold.Values[i] {
			t.Fatalf("value %d differs: %v vs %v", i, warm.Values[i], cold.Values[i])
		}
	}
}

// A block cancelled mid-kernel zero-fills its tail; that partial value
// must never become observable under the block's content address — the
// next computation of the same block runs fresh and stores the full
// result.
func TestCancelledBlockNeverRecorded(t *testing.T) {
	refs := traj.RefsOf(testEnsemble(4, 6, 3))
	store := blockstore.New(0)
	b := Block{I0: 0, I1: 4, J0: 0, J1: 4} // 6 triangle-packed pairs

	partial, err := ComputeBlockRefs(refs, b, Opts{
		Symmetric: true,
		Cache:     store,
		Cancel:    countingCancel(3), // cancel after two pairs
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(partial.Values); n != b.TaskPairs(true) {
		t.Fatalf("cancelled block shape %d, want %d", n, b.TaskPairs(true))
	}
	if last := partial.Values[len(partial.Values)-1]; last != 0 {
		t.Fatalf("cancelled block tail = %v, want zero-filled", last)
	}
	if store.Len() != 0 {
		t.Fatalf("cancelled block recorded: %d entries", store.Len())
	}

	full, err := ComputeBlockRefs(refs, b, Opts{Symmetric: true, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if full.Values[len(full.Values)-1] == 0 {
		t.Fatal("recompute after cancel returned a zero tail (poisoned entry?)")
	}
	if store.Len() != 1 {
		t.Fatalf("complete block not recorded: %d entries", store.Len())
	}

	// And the stored entry now serves hits with the complete values.
	again, err := ComputeBlockRefs(refs, b, Opts{Symmetric: true, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Values {
		if again.Values[i] != full.Values[i] {
			t.Fatalf("hit value %d differs", i)
		}
	}
}
