// Package psa implements Path Similarity Analysis (the paper's §2.1.1,
// Algorithm 1): the all-pairs Hausdorff distance matrix over an ensemble
// of trajectories, parallelized with the 2-D output partitioning of
// Algorithm 2 and runnable on each of the four task-parallel engines
// (§4.2). PSA is embarrassingly parallel; each task computes one block
// of the distance matrix serially.
package psa

import (
	"fmt"

	"mdtask/internal/hausdorff"
	"mdtask/internal/traj"
)

// Matrix is a dense symmetric N×N distance matrix.
type Matrix struct {
	N    int
	Data []float64 // row-major
}

// NewMatrix allocates an N×N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Block is one task of the 2-D partitioning: the sub-matrix
// [I0,I1) × [J0,J1) of the output distance matrix (Algorithm 2: an
// n1×n1 group of pairwise comparisons executed serially).
type Block struct {
	I0, I1, J0, J1 int
}

// Pairs returns the number of trajectory comparisons in the block.
func (b Block) Pairs() int { return (b.I1 - b.I0) * (b.J1 - b.J0) }

// Partition2D maps the N² distances onto (N/n1)² block tasks
// (Algorithm 2). n1 must be a positive divisor of N.
func Partition2D(n, n1 int) ([]Block, error) {
	if n1 <= 0 || n%n1 != 0 {
		return nil, fmt.Errorf("psa: group size %d must be a positive divisor of N=%d", n1, n)
	}
	k := n / n1
	blocks := make([]Block, 0, k*k)
	for bi := 0; bi < k; bi++ {
		for bj := 0; bj < k; bj++ {
			blocks = append(blocks, Block{
				I0: bi * n1, I1: (bi + 1) * n1,
				J0: bj * n1, J1: (bj + 1) * n1,
			})
		}
	}
	return blocks, nil
}

// BlockResult carries one computed block back to the assembler.
type BlockResult struct {
	Block Block
	// Values is row-major over the block: (I1-I0)×(J1-J0).
	Values []float64
}

// ComputeBlock evaluates every Hausdorff distance of one block serially
// (the task body shared by all engine drivers).
func ComputeBlock(ens traj.Ensemble, b Block, m hausdorff.Method) BlockResult {
	vals := make([]float64, 0, b.Pairs())
	for i := b.I0; i < b.I1; i++ {
		for j := b.J0; j < b.J1; j++ {
			vals = append(vals, hausdorff.Distance(ens[i], ens[j], m))
		}
	}
	return BlockResult{Block: b, Values: vals}
}

// Assemble writes block results into the full matrix.
func Assemble(n int, results []BlockResult) *Matrix {
	m := NewMatrix(n)
	for _, r := range results {
		w := r.Block.J1 - r.Block.J0
		for i := r.Block.I0; i < r.Block.I1; i++ {
			row := r.Values[(i-r.Block.I0)*w : (i-r.Block.I0+1)*w]
			copy(m.Data[i*n+r.Block.J0:i*n+r.Block.J1], row)
		}
	}
	return m
}

// Serial computes the full PSA distance matrix on one goroutine: the
// reference implementation every engine driver is validated against.
func Serial(ens traj.Ensemble, m hausdorff.Method) (*Matrix, error) {
	if err := ens.Validate(); err != nil {
		return nil, err
	}
	out := NewMatrix(len(ens))
	for i := range ens {
		for j := range ens {
			out.Set(i, j, hausdorff.Distance(ens[i], ens[j], m))
		}
	}
	return out, nil
}

// DefaultGroupSize picks the largest n1 dividing n with at least
// wantTasks = (n/n1)² tasks, the heuristic the drivers use to generate
// one task per core (§4.2: "one task per core").
func DefaultGroupSize(n, wantTasks int) int {
	best := 1
	for n1 := 1; n1 <= n; n1++ {
		if n%n1 != 0 {
			continue
		}
		k := n / n1
		if k*k >= wantTasks && n1 > best {
			best = n1
		}
	}
	return best
}
