// Package psa implements Path Similarity Analysis (the paper's §2.1.1,
// Algorithm 1): the all-pairs Hausdorff distance matrix over an ensemble
// of trajectories, parallelized with the 2-D output partitioning of
// Algorithm 2 and runnable on each of the four task-parallel engines
// (§4.2). PSA is embarrassingly parallel; each task computes one block
// of the distance matrix serially.
package psa

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"mdtask/internal/blockstore"
	"mdtask/internal/engine"
	"mdtask/internal/hausdorff"
	"mdtask/internal/obs"
	"mdtask/internal/traj"
)

// Matrix is a dense symmetric N×N distance matrix.
type Matrix struct {
	N    int
	Data []float64 // row-major
}

// NewMatrix allocates an N×N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Opts selects how the distance matrix is scheduled and computed.
type Opts struct {
	// Symmetric exploits H(A,B) = H(B,A): only diagonal and
	// upper-triangle blocks are scheduled, diagonal blocks skip the zero
	// self-distances and the j<i mirror pairs, and Assemble reflects
	// every value into the lower triangle. Roughly halves the kernel
	// work versus the paper-faithful full N×N schedule.
	Symmetric bool
	// Method selects the Hausdorff inner-loop algorithm.
	Method hausdorff.Method
	// Cancel, when non-nil, is polled cooperatively at block boundaries.
	// Once it reports true the remaining blocks are skipped (their values
	// are left zero), so a run drains quickly; the caller is responsible
	// for discarding the partial matrix. Serial additionally polls it
	// between rows.
	Cancel func() bool
	// Metrics, when non-nil, receives the Hausdorff kernel's frame-pair
	// counters (evaluated / pruned / abandoned) from every runner, and
	// engine task accounting for the runners that do not carry their own
	// metrics-bearing context (RunMPI; the rdd/dask/pilot runners account
	// tasks through their Context/Client/Pilot).
	Metrics *engine.Metrics
	// MaxResidentFrames, when positive, switches every task body to the
	// streamed window kernel: trajectories are consumed as bounded frame
	// windows (at most MaxResidentFrames frames per window, two windows
	// resident per comparison) instead of being fully materialized, so a
	// task's peak frame residency is ≤ 2 × MaxResidentFrames whatever
	// the ensemble size. Results are bit-identical to the in-memory path
	// for every method and schedule; the price is re-decoding the inner
	// trajectory of each comparison once per outer window, which the
	// BytesStreamed metric accounts. Zero keeps the fully-resident path.
	MaxResidentFrames int
	// Tracer and TraceParent, when set, give every task body a span:
	// each block records a psa.block span (child of TraceParent) with
	// its geometry and cache outcome, and cached lookups record a
	// nested cache.do span covering the store interaction. A nil Tracer
	// disables tracing at the cost of one nil check per block.
	Tracer      *obs.Tracer
	TraceParent obs.SpanContext
	// KernelHist, when non-nil, observes each block kernel's wall time
	// in seconds (cache hits do not run a kernel and are not observed).
	KernelHist *obs.Histogram
	// Cache, when non-nil, is the content-addressed block store every
	// task body consults before running its kernel: a block whose key
	// (BlockKey: layout × trajectory content digests) is already stored
	// skips its kernel entirely and counts a BlockCacheHits metric, and
	// a freshly computed complete block is recorded for later jobs.
	// Concurrent identical blocks are computed once (single flight), and
	// cancelled blocks are never recorded. Nil keeps the uncached path —
	// the one-shot CLI default.
	Cache *blockstore.Store
}

// streaming reports whether the windowed out-of-core kernel is
// selected.
func (o Opts) streaming() bool { return o.MaxResidentFrames > 0 }

// recordStream folds a task's streaming accounting into the metrics
// sink.
func (o Opts) recordStream(st hausdorff.StreamStats) {
	if o.Metrics != nil {
		o.Metrics.ObservePeakResident(st.PeakResidentFrames)
		o.Metrics.AddStreamed(st.BytesStreamed)
	}
}

// recordKernel folds a block's kernel counters into the metrics sink.
func (o Opts) recordKernel(c hausdorff.Counters) {
	if o.Metrics != nil {
		o.Metrics.AddPairs(c.Evaluated, c.Pruned, c.Abandoned)
		o.Metrics.AddNodes(c.NodesVisited, c.NodesPruned)
	}
}

// cancelled reports whether a cooperative cancellation was requested.
func (o Opts) cancelled() bool { return o.Cancel != nil && o.Cancel() }

// recordBlockCache folds block-store lookup accounting into the metrics
// sink.
func (o Opts) recordBlockCache(hits, misses, bytesSaved int64) {
	if o.Metrics != nil {
		o.Metrics.AddBlockCache(hits, misses, bytesSaved)
	}
}

// Block is one task of the 2-D partitioning: the sub-matrix
// [I0,I1) × [J0,J1) of the output distance matrix (Algorithm 2: an
// n1×n1 group of pairwise comparisons executed serially).
type Block struct {
	I0, I1, J0, J1 int
}

// Pairs returns the number of trajectory comparisons in the block.
func (b Block) Pairs() int { return (b.I1 - b.I0) * (b.J1 - b.J0) }

// Diagonal reports whether the block lies on the matrix diagonal
// (identical row and column ranges).
func (b Block) Diagonal() bool { return b.I0 == b.J0 && b.I1 == b.J1 }

// TrajIndices lists the distinct trajectory indices the block reads:
// its row range plus whatever of its column range does not overlap it.
// Pilot staging and fleet leases both derive their input sets from it.
func (b Block) TrajIndices() []int {
	out := make([]int, 0, (b.I1-b.I0)+(b.J1-b.J0))
	for i := b.I0; i < b.I1; i++ {
		out = append(out, i)
	}
	for j := b.J0; j < b.J1; j++ {
		if j < b.I0 || j >= b.I1 {
			out = append(out, j)
		}
	}
	return out
}

// TaskPairs returns the number of Hausdorff evaluations a block costs
// under the given scheduling: symmetric diagonal blocks compute only
// their strict upper triangle.
func (b Block) TaskPairs(symmetric bool) int {
	if symmetric && b.Diagonal() {
		n := b.I1 - b.I0
		return n * (n - 1) / 2
	}
	return b.Pairs()
}

// Partition2D maps the N² distances onto (N/n1)² block tasks
// (Algorithm 2). n1 must be a positive divisor of N.
func Partition2D(n, n1 int) ([]Block, error) {
	if n1 <= 0 || n%n1 != 0 {
		return nil, fmt.Errorf("psa: group size %d must be a positive divisor of N=%d", n1, n)
	}
	k := n / n1
	blocks := make([]Block, 0, k*k)
	for bi := 0; bi < k; bi++ {
		for bj := 0; bj < k; bj++ {
			blocks = append(blocks, Block{
				I0: bi * n1, I1: (bi + 1) * n1,
				J0: bj * n1, J1: (bj + 1) * n1,
			})
		}
	}
	return blocks, nil
}

// PartitionTriangular maps the distance matrix onto only its diagonal
// and upper-triangle blocks — (N/n1)·(N/n1+1)/2 tasks instead of
// Algorithm 2's (N/n1)². Each omitted lower-triangle block is recovered
// by Assemble mirroring its transpose. n1 must be a positive divisor
// of N.
func PartitionTriangular(n, n1 int) ([]Block, error) {
	if n1 <= 0 || n%n1 != 0 {
		return nil, fmt.Errorf("psa: group size %d must be a positive divisor of N=%d", n1, n)
	}
	k := n / n1
	blocks := make([]Block, 0, k*(k+1)/2)
	for bi := 0; bi < k; bi++ {
		for bj := bi; bj < k; bj++ {
			blocks = append(blocks, Block{
				I0: bi * n1, I1: (bi + 1) * n1,
				J0: bj * n1, J1: (bj + 1) * n1,
			})
		}
	}
	return blocks, nil
}

// Partition returns the block schedule for the given options: the
// triangular schedule when symmetric, Algorithm 2's full grid otherwise.
func Partition(n, n1 int, symmetric bool) ([]Block, error) {
	if symmetric {
		return PartitionTriangular(n, n1)
	}
	return Partition2D(n, n1)
}

// BlockResult carries one computed block back to the assembler.
type BlockResult struct {
	Block Block
	// Values is row-major over the block: (I1-I0)×(J1-J0) entries —
	// except for a Symmetric diagonal block, where it holds only the
	// strict upper triangle packed row-major (i ranging over rows,
	// j over i+1..J1).
	Values []float64
	// Symmetric marks a block computed under the symmetry-aware
	// schedule: Assemble mirrors its values into the transposed
	// position, and a diagonal block's Values are triangle-packed.
	Symmetric bool
}

// ComputeBlock evaluates the Hausdorff distances of one block serially
// (the task body shared by all engine drivers). Under opts.Symmetric a
// diagonal block computes only its strict upper triangle — the zero
// self-distances and the mirror pairs are skipped. With
// opts.MaxResidentFrames set the block runs the windowed kernel over
// the in-memory frames (bounding the packed working set); fully
// out-of-core callers hand ComputeBlockRefs stream-backed refs instead.
func ComputeBlock(ens traj.Ensemble, b Block, opts Opts) BlockResult {
	r, err := ComputeBlockRefs(traj.RefsOf(ens), b, opts)
	if err != nil {
		// Memory-backed refs cannot fail to stream.
		panic(err)
	}
	return r
}

// ComputeBlockRefs is ComputeBlock over trajectory handles: the task
// body of the streaming PSA path. With opts.MaxResidentFrames > 0 each
// comparison holds at most two windows resident (DistanceStreamed);
// otherwise the block's trajectories are materialized once each and the
// in-memory kernels run. Cancellation is polled between comparisons;
// the remaining values of a cancelled block are left zero, matching
// ComputeBlock's contract.
//
// With opts.Cache set the block store is consulted first: on a hit the
// stored values are returned without running any kernel (no frame-pair
// counters accrue; BlockCacheHits does); on a miss the block computes
// under single-flight de-duplication and, if it ran to completion, is
// recorded for later lookups. Cancelled (zero-filled) blocks are never
// recorded.
func ComputeBlockRefs(refs traj.RefEnsemble, b Block, opts Opts) (BlockResult, error) {
	span := opts.Tracer.StartChild(opts.TraceParent, "psa.block")
	span.SetAttr("block", fmt.Sprintf("[%d:%d)x[%d:%d)", b.I0, b.I1, b.J0, b.J1))
	defer span.End()
	// Nested psa.block spans (the cache.do child) parent under this one.
	opts.TraceParent = span.Context()

	res := BlockResult{Block: b, Symmetric: opts.Symmetric}
	if opts.Cache != nil {
		if key, kerr := BlockKey(refs, b, opts.Symmetric); kerr == nil {
			doSpan := opts.Tracer.StartChild(span.Context(), "cache.do")
			val, hit, err := opts.Cache.Do(key, blockValueBytes, func() (any, error) {
				vals, complete, cerr := computeBlockVals(refs, b, opts)
				if cerr != nil {
					return nil, cerr
				}
				if !complete {
					return vals, errIncompleteBlock
				}
				return vals, nil
			})
			doSpan.SetAttr("hit", strconv.FormatBool(hit))
			doSpan.End()
			span.SetAttr("cache_hit", strconv.FormatBool(hit))
			switch {
			case errors.Is(err, errIncompleteBlock):
				// Cancelled mid-block: pass the zero-filled values through
				// uncached, as the contract above requires.
			case err != nil:
				return BlockResult{}, err
			}
			vals := val.([]float64)
			if hit {
				opts.recordBlockCache(1, 0, int64(len(vals))*8)
			} else {
				opts.recordBlockCache(0, 1, 0)
			}
			res.Values = vals
			return res, nil
		}
		// A ref that cannot be digested (e.g. an unreadable source) still
		// computes; the kernel will surface any real I/O error itself.
	}
	vals, _, err := computeBlockVals(refs, b, opts)
	if err != nil {
		return BlockResult{}, err
	}
	res.Values = vals
	return res, nil
}

// computeBlockVals runs the block's kernel loop, reporting whether every
// pair was covered (complete=false means cancellation zero-filled the
// tail, which downstream shape checks still accept but the block store
// must not record).
func computeBlockVals(refs traj.RefEnsemble, b Block, opts Opts) (vals []float64, complete bool, err error) {
	vals = make([]float64, 0, b.TaskPairs(opts.Symmetric))
	var (
		kc hausdorff.Counters
		st hausdorff.StreamStats
	)
	if opts.KernelHist != nil {
		start := time.Now()
		defer func() { opts.KernelHist.Observe(time.Since(start).Seconds()) }()
	}
	defer func() {
		opts.recordKernel(kc)
		opts.recordStream(st)
	}()

	var loaded map[int]*traj.Trajectory
	load := func(ix int) (*traj.Trajectory, error) {
		if t, ok := loaded[ix]; ok {
			return t, nil
		}
		t, err := refs[ix].Load()
		if err != nil {
			return nil, err
		}
		if loaded == nil {
			loaded = make(map[int]*traj.Trajectory)
		}
		loaded[ix] = t
		return t, nil
	}

	skipMirror := opts.Symmetric && b.Diagonal()
	for i := b.I0; i < b.I1; i++ {
		j0 := b.J0
		if skipMirror {
			j0 = i + 1
		}
		for j := j0; j < b.J1; j++ {
			if opts.cancelled() {
				// Zero-fill the rest so downstream shape checks hold; the
				// job layer discards the matrix of a cancelled run.
				return append(vals, make([]float64, b.TaskPairs(opts.Symmetric)-len(vals))...), false, nil
			}
			var d float64
			if opts.streaming() {
				var err error
				d, err = hausdorff.DistanceStreamed(refs[i], refs[j], opts.MaxResidentFrames, opts.Method, &kc, &st)
				if err != nil {
					return nil, false, err
				}
			} else {
				ti, err := load(i)
				if err != nil {
					return nil, false, err
				}
				tj, err := load(j)
				if err != nil {
					return nil, false, err
				}
				d = hausdorff.DistanceCounted(ti, tj, opts.Method, &kc)
			}
			vals = append(vals, d)
		}
	}
	return vals, true, nil
}

// Assemble writes block results into the full matrix, mirroring
// symmetric results into the lower triangle.
func Assemble(n int, results []BlockResult) *Matrix {
	m := NewMatrix(n)
	for _, r := range results {
		b := r.Block
		switch {
		case r.Symmetric:
			// Values are packed in ComputeBlock's iteration order:
			// diagonal blocks hold only their strict upper triangle.
			skipMirror := b.Diagonal()
			k := 0
			for i := b.I0; i < b.I1; i++ {
				j0 := b.J0
				if skipMirror {
					j0 = i + 1
				}
				for j := j0; j < b.J1; j++ {
					v := r.Values[k]
					k++
					m.Set(i, j, v)
					m.Set(j, i, v)
				}
			}
		default:
			w := b.J1 - b.J0
			for i := b.I0; i < b.I1; i++ {
				row := r.Values[(i-b.I0)*w : (i-b.I0+1)*w]
				copy(m.Data[i*n+b.J0:i*n+b.J1], row)
			}
		}
	}
	return m
}

// Serial computes the full PSA distance matrix on one goroutine: the
// reference implementation every engine driver is validated against.
// Under opts.Symmetric each unordered pair is evaluated once and
// mirrored; the result is bit-identical to the full scan because the
// Hausdorff distance is exactly symmetric.
func Serial(ens traj.Ensemble, opts Opts) (*Matrix, error) {
	if err := ens.Validate(); err != nil {
		return nil, err
	}
	return SerialRefs(traj.RefsOf(ens), opts)
}

// SerialRefs is Serial over trajectory handles: with
// opts.MaxResidentFrames set it is the single-goroutine out-of-core
// reference (two windows resident per comparison), otherwise handles
// are materialized and the in-memory kernels run.
func SerialRefs(refs traj.RefEnsemble, opts Opts) (*Matrix, error) {
	if err := refs.Validate(); err != nil {
		return nil, err
	}
	out := NewMatrix(len(refs))
	var (
		kc hausdorff.Counters
		st hausdorff.StreamStats
	)
	defer func() {
		opts.recordKernel(kc)
		opts.recordStream(st)
	}()
	var ens traj.Ensemble
	if !opts.streaming() {
		loaded, err := refs.Load()
		if err != nil {
			return nil, err
		}
		if err := loaded.Validate(); err != nil {
			return nil, err
		}
		ens = loaded
	}
	dist := func(i, j int) (float64, error) {
		if opts.streaming() {
			return hausdorff.DistanceStreamed(refs[i], refs[j], opts.MaxResidentFrames, opts.Method, &kc, &st)
		}
		return hausdorff.DistanceCounted(ens[i], ens[j], opts.Method, &kc), nil
	}
	if opts.Symmetric {
		for i := range refs {
			if opts.cancelled() {
				return out, nil
			}
			for j := i + 1; j < len(refs); j++ {
				d, err := dist(i, j)
				if err != nil {
					return nil, err
				}
				out.Set(i, j, d)
				out.Set(j, i, d)
			}
		}
		return out, nil
	}
	for i := range refs {
		if opts.cancelled() {
			return out, nil
		}
		for j := range refs {
			d, err := dist(i, j)
			if err != nil {
				return nil, err
			}
			out.Set(i, j, d)
		}
	}
	return out, nil
}

// DefaultGroupSize picks the largest n1 dividing n with at least
// wantTasks = (n/n1)² tasks, the heuristic the drivers use to generate
// one task per core (§4.2: "one task per core").
func DefaultGroupSize(n, wantTasks int) int {
	best := 1
	for n1 := 1; n1 <= n; n1++ {
		if n%n1 != 0 {
			continue
		}
		k := n / n1
		if k*k >= wantTasks && n1 > best {
			best = n1
		}
	}
	return best
}
